#include "memsim/device_profile.h"

#include <algorithm>

namespace omega::memsim {

double BandwidthCurve::AggregateGbps(int active_threads) const {
  if (active_threads <= 0) active_threads = 1;
  return std::min(per_thread_gbps * active_threads, peak_gbps);
}

double BandwidthCurve::PerThreadGbps(int active_threads) const {
  if (active_threads <= 0) active_threads = 1;
  return AggregateGbps(active_threads) / active_threads;
}

namespace {

// Shorthand to populate one curve.
void Set(DeviceProfile* p, MemOp op, Pattern pat, Locality loc, double per_thread,
         double peak) {
  p->Curve(op, pat, loc) = BandwidthCurve{per_thread, peak};
}

DeviceProfile MakeDram() {
  DeviceProfile p;
  p.tier = Tier::kDram;
  // Per-socket DDR4 (6 channels): ~100 GB/s sequential read, writes ~85%.
  Set(&p, MemOp::kRead, Pattern::kSequential, Locality::kLocal, 12.0, 100.0);
  Set(&p, MemOp::kRead, Pattern::kSequential, Locality::kRemote, 9.0, 62.0);
  Set(&p, MemOp::kRead, Pattern::kRandom, Locality::kLocal, 4.5, 42.0);
  Set(&p, MemOp::kRead, Pattern::kRandom, Locality::kRemote, 3.0, 28.0);
  Set(&p, MemOp::kWrite, Pattern::kSequential, Locality::kLocal, 10.0, 85.0);
  Set(&p, MemOp::kWrite, Pattern::kSequential, Locality::kRemote, 6.0, 40.0);
  Set(&p, MemOp::kWrite, Pattern::kRandom, Locality::kLocal, 3.8, 34.0);
  Set(&p, MemOp::kWrite, Pattern::kRandom, Locality::kRemote, 2.2, 18.0);
  p.latency_ns = {80.0, 140.0};
  return p;
}

DeviceProfile MakePm() {
  DeviceProfile p;
  p.tier = Tier::kPm;
  // Sequential read ~1/3 of DRAM; remote sequential read peak comparable to
  // local (Fig. 9: "the peak bandwidth of sequential remote accesses is
  // comparable to that of local sequential"), and 2.41x / 2.45x the local /
  // remote random read peaks.
  Set(&p, MemOp::kRead, Pattern::kSequential, Locality::kLocal, 5.6, 33.0);
  Set(&p, MemOp::kRead, Pattern::kSequential, Locality::kRemote, 5.2, 31.5);
  Set(&p, MemOp::kRead, Pattern::kRandom, Locality::kLocal, 2.4, 13.7);   // 33/2.41
  Set(&p, MemOp::kRead, Pattern::kRandom, Locality::kRemote, 2.2, 13.5);  // 33/2.45
  // Sequential write ~1/6 of DRAM; local >> remote: local seq write is 3.23x
  // remote seq write and 4.99x remote random write (Fig. 9).
  Set(&p, MemOp::kWrite, Pattern::kSequential, Locality::kLocal, 3.4, 14.0);
  Set(&p, MemOp::kWrite, Pattern::kSequential, Locality::kRemote, 1.1, 4.33);  // /3.23
  Set(&p, MemOp::kWrite, Pattern::kRandom, Locality::kLocal, 1.6, 6.2);
  Set(&p, MemOp::kWrite, Pattern::kRandom, Locality::kRemote, 0.7, 2.81);  // /4.99
  // Local / remote PM read latency = 4.2x / 3.3x the corresponding DRAM
  // latencies (paper §I / §III-D).
  p.latency_ns = {80.0 * 4.2, 140.0 * 3.3};
  return p;
}

DeviceProfile MakeSsd() {
  DeviceProfile p;
  p.tier = Tier::kSsd;
  // Intel P5510-class NVMe: ~6.5/3.4 GB/s seq read/write, far lower for
  // random 4K reads; no NUMA distinction for a PCIe device, so local==remote.
  for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
    Set(&p, MemOp::kRead, Pattern::kSequential, loc, 1.8, 6.5);
    Set(&p, MemOp::kRead, Pattern::kRandom, loc, 0.35, 2.4);
    Set(&p, MemOp::kWrite, Pattern::kSequential, loc, 1.2, 3.4);
    Set(&p, MemOp::kWrite, Pattern::kRandom, loc, 0.25, 1.2);
  }
  p.latency_ns = {80000.0, 80000.0};
  return p;
}

DeviceProfile MakePim() {
  DeviceProfile p;
  p.tier = Tier::kPim;
  // Host <-> PIM DIMM link (ALPHA-PIM / UPMEM-class, CXL-attached scaling).
  // Transfers are gang DMAs across all banks driven by one controller stream,
  // so per_thread == peak: a single host thread saturates the link and extra
  // threads buy nothing (unlike the cacheable tiers). Broadcast (host->PIM
  // write) is somewhat slower than readback; random host access into MRAM is
  // punitive — the tier is built for bulk ship/compute/drain, not gathers.
  for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
    Set(&p, MemOp::kRead, Pattern::kSequential, loc, 28.0, 28.0);
    Set(&p, MemOp::kRead, Pattern::kRandom, loc, 0.3, 2.0);
    Set(&p, MemOp::kWrite, Pattern::kSequential, loc, 24.0, 24.0);
    Set(&p, MemOp::kWrite, Pattern::kRandom, loc, 0.25, 1.6);
  }
  // DMA descriptor setup + rank handshake per transfer.
  p.latency_ns = {1200.0, 1500.0};
  return p;
}

DeviceProfile MakeNetwork() {
  DeviceProfile p;
  p.tier = Tier::kNetwork;
  // 10 GbE-class cluster interconnect: ~1.2 GB/s per link; random (small
  // message) traffic pays per-message overheads, modeled as lower bandwidth.
  for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
    Set(&p, MemOp::kRead, Pattern::kSequential, loc, 0.6, 1.2);
    Set(&p, MemOp::kRead, Pattern::kRandom, loc, 0.12, 0.5);
    Set(&p, MemOp::kWrite, Pattern::kSequential, loc, 0.6, 1.2);
    Set(&p, MemOp::kWrite, Pattern::kRandom, loc, 0.12, 0.5);
  }
  p.latency_ns = {15000.0, 15000.0};
  return p;
}

}  // namespace

namespace {

DeviceProfile MakeCxl() {
  DeviceProfile p;
  p.tier = Tier::kPm;  // occupies the capacity-tier slot
  // CXL.mem DDR expander: ~half of local DRAM bandwidth through the link,
  // symmetric read/write, locality-insensitive (the link is the only hop).
  for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
    Set(&p, MemOp::kRead, Pattern::kSequential, loc, 7.0, 52.0);
    Set(&p, MemOp::kRead, Pattern::kRandom, loc, 2.8, 24.0);
    Set(&p, MemOp::kWrite, Pattern::kSequential, loc, 6.0, 44.0);
    Set(&p, MemOp::kWrite, Pattern::kRandom, loc, 2.4, 20.0);
  }
  p.latency_ns = {200.0, 240.0};
  return p;
}

}  // namespace

ProfileSet DefaultProfiles() {
  ProfileSet set;
  set.Get(Tier::kDram) = MakeDram();
  set.Get(Tier::kPm) = MakePm();
  set.Get(Tier::kSsd) = MakeSsd();
  set.Get(Tier::kNetwork) = MakeNetwork();
  set.Get(Tier::kPim) = MakePim();
  return set;
}

ProfileSet CxlProfiles() {
  ProfileSet set = DefaultProfiles();
  set.Get(Tier::kPm) = MakeCxl();
  return set;
}

}  // namespace omega::memsim
