#include "memsim/fault.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace omega::memsim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransientStall: return "transient-stall";
    case FaultKind::kMediaError: return "media-error";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kMachineLoss: return "machine-loss";
  }
  return "unknown";
}

void FaultPlan::SetTier(Tier t, FaultRates r) {
  for (int op = 0; op < 2; ++op)
    for (int pat = 0; pat < 2; ++pat)
      rates[static_cast<int>(t)][op][pat] = r;
}

namespace {

FaultPlan NamedProfile(const std::string& name) {
  FaultPlan plan;
  plan.enabled = true;
  if (name == "none") {
    plan.enabled = false;
  } else if (name == "pm-stall") {
    // Tail-stalling PM device: accesses succeed, a few cost extra.
    plan.SetTier(Tier::kPm, {/*stall=*/0.05, /*media=*/0.0, /*timeout=*/0.0});
  } else if (name == "pm-degraded") {
    // Worn PM partition: stalls plus read media errors — exercises ASL's
    // retry/backoff and the semi-external degradation path.
    plan.SetTier(Tier::kPm, {/*stall=*/0.02, /*media=*/0.0, /*timeout=*/0.0});
    plan.at(Tier::kPm, MemOp::kRead, Pattern::kSequential).media = 0.08;
    plan.at(Tier::kPm, MemOp::kRead, Pattern::kRandom).media = 0.08;
  } else if (name == "worn-ssd") {
    plan.SetTier(Tier::kSsd, {/*stall=*/0.05, /*media=*/0.0, /*timeout=*/0.0});
    plan.at(Tier::kSsd, MemOp::kRead, Pattern::kSequential).media = 0.05;
    plan.at(Tier::kSsd, MemOp::kRead, Pattern::kRandom).media = 0.10;
  } else if (name == "flaky-net") {
    plan.at(Tier::kNetwork, MemOp::kRead, Pattern::kSequential).timeout = 0.15;
    plan.at(Tier::kNetwork, MemOp::kRead, Pattern::kRandom).timeout = 0.15;
    plan.at(Tier::kNetwork, MemOp::kWrite, Pattern::kSequential).timeout = 0.15;
    plan.at(Tier::kNetwork, MemOp::kWrite, Pattern::kRandom).timeout = 0.15;
    // Only drawn by the durable distributed path; inert elsewhere.
    plan.machine_loss = 0.05;
  } else if (name == "flaky-pim") {
    // Unreliable PIM DIMM link: the gang DMAs time out — exercises PimSpmm's
    // retry-then-degrade-to-host path. Bulk transfers are sequential only, so
    // random rates stay zero.
    plan.at(Tier::kPim, MemOp::kRead, Pattern::kSequential).timeout = 0.15;
    plan.at(Tier::kPim, MemOp::kWrite, Pattern::kSequential).timeout = 0.15;
    plan.at(Tier::kPim, MemOp::kRead, Pattern::kSequential).stall = 0.05;
    plan.at(Tier::kPim, MemOp::kWrite, Pattern::kSequential).stall = 0.05;
  } else if (name == "chaos") {
    plan.SetTier(Tier::kPm, {0.02, 0.0, 0.0});
    plan.at(Tier::kPm, MemOp::kRead, Pattern::kSequential).media = 0.03;
    plan.at(Tier::kPm, MemOp::kRead, Pattern::kRandom).media = 0.03;
    plan.SetTier(Tier::kSsd, {0.02, 0.0, 0.0});
    plan.at(Tier::kSsd, MemOp::kRead, Pattern::kSequential).media = 0.05;
    plan.at(Tier::kSsd, MemOp::kRead, Pattern::kRandom).media = 0.05;
    plan.at(Tier::kNetwork, MemOp::kRead, Pattern::kRandom).timeout = 0.10;
    plan.at(Tier::kNetwork, MemOp::kWrite, Pattern::kSequential).timeout = 0.10;
    plan.machine_loss = 0.08;
  } else {
    plan.enabled = false;
    plan.seed = 0;  // sentinel; caller reports the error
  }
  return plan;
}

}  // namespace

Result<FaultPlan> FaultPlanFromProfile(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') {
    return FaultPlanFromFile(spec.substr(1));
  }
  std::string name = spec;
  uint64_t seed = FaultPlan{}.seed;
  const size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string seed_str = spec.substr(colon + 1);
    if (seed_str.empty() ||
        seed_str.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("fault profile seed must be a non-negative "
                                     "integer: " + spec);
    }
    seed = std::stoull(seed_str);
  }
  bool known = false;
  for (const std::string& p : FaultProfileNames()) known = known || p == name;
  if (!known) {
    std::string options;
    for (const std::string& p : FaultProfileNames()) {
      options += options.empty() ? p : " | " + p;
    }
    return Status::InvalidArgument("unknown fault profile '" + name +
                                   "' (expected " + options + ")");
  }
  FaultPlan plan = NamedProfile(name);
  plan.seed = seed;
  return plan;
}

namespace {

// One parse error with the conventional file:line: prefix.
Status ParseError(const std::string& path, int line, const std::string& msg) {
  return Status::InvalidArgument(path + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace

Result<FaultPlan> FaultPlanFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open fault profile file " + path);
  }
  FaultPlan plan;
  plan.enabled = true;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;  // blank / comment-only line
    if (key == "seed" || key == "stall-multiplier" ||
        key == "tail-stall-fraction" || key == "timeout-seconds") {
      double value = 0.0;
      if (!(tokens >> value) || value < 0.0) {
        return ParseError(path, lineno,
                          "'" + key + "' needs one non-negative number");
      }
      if (key == "seed") {
        plan.seed = static_cast<uint64_t>(value);
      } else if (key == "stall-multiplier") {
        plan.stall_multiplier = value;
      } else if (key == "tail-stall-fraction") {
        plan.tail_stall_fraction = value;
      } else {
        plan.timeout_seconds = value;
      }
    } else if (key == "machine-loss") {
      double value = 0.0;
      if (!(tokens >> value) || value < 0.0 || value > 1.0) {
        return ParseError(path, lineno,
                          "'machine-loss' needs one rate in [0, 1]");
      }
      plan.machine_loss = value;
    } else if (key == "kill") {
      long long machine = -1, round = -1;
      if (!(tokens >> machine >> round) || machine < 0 || round < 0) {
        return ParseError(
            path, lineno,
            "'kill' needs <machine> <round> (non-negative integers)");
      }
      plan.kills.emplace_back(static_cast<int>(machine),
                              static_cast<uint64_t>(round));
    } else if (key == "rate") {
      std::string tier_s, op_s, pat_s, kind_s;
      double rate = 0.0;
      if (!(tokens >> tier_s >> op_s >> pat_s >> kind_s >> rate)) {
        return ParseError(path, lineno,
                          "'rate' needs <tier> <op> <pattern> <kind> <rate>");
      }
      std::vector<Tier> tiers;
      if (tier_s == "*") {
        tiers = {Tier::kDram, Tier::kPm, Tier::kSsd, Tier::kNetwork, Tier::kPim};
      } else if (tier_s == "dram") {
        tiers = {Tier::kDram};
      } else if (tier_s == "pm") {
        tiers = {Tier::kPm};
      } else if (tier_s == "ssd") {
        tiers = {Tier::kSsd};
      } else if (tier_s == "net") {
        tiers = {Tier::kNetwork};
      } else if (tier_s == "pim") {
        tiers = {Tier::kPim};
      } else {
        return ParseError(path, lineno, "unknown tier '" + tier_s +
                                            "' (expected dram | pm | ssd | "
                                            "net | pim | *)");
      }
      std::vector<MemOp> ops;
      if (op_s == "*") {
        ops = {MemOp::kRead, MemOp::kWrite};
      } else if (op_s == "read") {
        ops = {MemOp::kRead};
      } else if (op_s == "write") {
        ops = {MemOp::kWrite};
      } else {
        return ParseError(path, lineno, "unknown op '" + op_s +
                                            "' (expected read | write | *)");
      }
      std::vector<Pattern> pats;
      if (pat_s == "*") {
        pats = {Pattern::kSequential, Pattern::kRandom};
      } else if (pat_s == "seq") {
        pats = {Pattern::kSequential};
      } else if (pat_s == "rand") {
        pats = {Pattern::kRandom};
      } else {
        return ParseError(path, lineno, "unknown pattern '" + pat_s +
                                            "' (expected seq | rand | *)");
      }
      if (kind_s != "stall" && kind_s != "media" && kind_s != "timeout") {
        return ParseError(path, lineno,
                          "unknown fault kind '" + kind_s +
                              "' (expected stall | media | timeout)");
      }
      if (rate < 0.0 || rate > 1.0) {
        return ParseError(path, lineno, "rate must be in [0, 1]");
      }
      for (Tier t : tiers) {
        for (MemOp op : ops) {
          for (Pattern pat : pats) {
            FaultRates& r = plan.at(t, op, pat);
            if (kind_s == "stall") {
              r.stall = rate;
            } else if (kind_s == "media") {
              r.media = rate;
            } else {
              r.timeout = rate;
            }
          }
        }
      }
    } else {
      return ParseError(path, lineno,
                        "unknown directive '" + key +
                            "' (expected seed | stall-multiplier | "
                            "tail-stall-fraction | timeout-seconds | rate | "
                            "machine-loss | kill)");
    }
  }
  return plan;
}

const std::vector<std::string>& FaultProfileNames() {
  static const std::vector<std::string> kNames = {
      "none",      "pm-stall",  "pm-degraded", "worn-ssd",
      "flaky-net", "flaky-pim", "chaos"};
  return kNames;
}

FaultCounters FaultCounters::operator-(const FaultCounters& other) const {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  FaultCounters out;
  out.stalls = sub(stalls, other.stalls);
  out.media = sub(media, other.media);
  out.timeouts = sub(timeouts, other.timeouts);
  out.machine_losses = sub(machine_losses, other.machine_losses);
  out.retried = sub(retried, other.retried);
  out.degraded = sub(degraded, other.degraded);
  out.surfaced = sub(surfaced, other.surfaced);
  out.recovered = sub(recovered, other.recovered);
  out.penalty_nanos = sub(penalty_nanos, other.penalty_nanos);
  return out;
}

bool FaultCounters::operator==(const FaultCounters& other) const {
  return stalls == other.stalls && media == other.media &&
         timeouts == other.timeouts &&
         machine_losses == other.machine_losses && retried == other.retried &&
         degraded == other.degraded && surfaced == other.surfaced &&
         recovered == other.recovered && penalty_nanos == other.penalty_nanos;
}

std::string FaultCountersSummary(const FaultCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "injected=%llu (stall=%llu media=%llu timeout=%llu loss=%llu) "
                "retried=%llu degraded=%llu surfaced=%llu recovered=%llu "
                "penalty=%.3es",
                static_cast<unsigned long long>(c.InjectedTotal()),
                static_cast<unsigned long long>(c.stalls),
                static_cast<unsigned long long>(c.media),
                static_cast<unsigned long long>(c.timeouts),
                static_cast<unsigned long long>(c.machine_losses),
                static_cast<unsigned long long>(c.retried),
                static_cast<unsigned long long>(c.degraded),
                static_cast<unsigned long long>(c.surfaced),
                static_cast<unsigned long long>(c.recovered),
                c.PenaltySeconds());
  return buf;
}

void FaultInjector::SetPlan(FaultPlan plan) {
  plan_ = plan;
  ResetCounters();
}

void FaultInjector::ResetCounters() {
  stalls_.store(0, std::memory_order_relaxed);
  media_.store(0, std::memory_order_relaxed);
  timeouts_.store(0, std::memory_order_relaxed);
  machine_losses_.store(0, std::memory_order_relaxed);
  retried_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  surfaced_.store(0, std::memory_order_relaxed);
  recovered_.store(0, std::memory_order_relaxed);
  penalty_nanos_.store(0, std::memory_order_relaxed);
}

FaultCounters FaultInjector::Counters() const {
  FaultCounters c;
  c.stalls = stalls_.load(std::memory_order_relaxed);
  c.media = media_.load(std::memory_order_relaxed);
  c.timeouts = timeouts_.load(std::memory_order_relaxed);
  c.machine_losses = machine_losses_.load(std::memory_order_relaxed);
  c.retried = retried_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  c.surfaced = surfaced_.load(std::memory_order_relaxed);
  c.recovered = recovered_.load(std::memory_order_relaxed);
  c.penalty_nanos = penalty_nanos_.load(std::memory_order_relaxed);
  return c;
}

namespace {

// Pure uniform draw in [0, 1) from the fault key. Must NOT depend on the
// rates, so the fault set is monotone in the rate (subset property).
double UniformOf(uint64_t seed, uint64_t stream, uint64_t site, uint32_t attempt) {
  uint64_t h = SplitMix64(seed ^ 0x0F417AB1EULL);
  h = SplitMix64(h ^ stream);
  h = SplitMix64(h ^ site);
  h = SplitMix64(h ^ attempt);
  return (h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultKind FaultInjector::Draw(Tier t, MemOp op, Pattern pat, uint64_t stream,
                              uint64_t site, uint32_t attempt) {
  if (!plan_.enabled) return FaultKind::kNone;
  const FaultRates& r = plan_.at(t, op, pat);
  if (!r.any()) return FaultKind::kNone;
  const double u = UniformOf(plan_.seed, stream, site, attempt);
  // Subrange order (media, timeout, stall) is fixed: raising one rate widens
  // its own band and shifts the milder bands upward, never shrinking the
  // total faulted interval.
  if (u < r.media) {
    media_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kMediaError;
  }
  if (u < r.media + r.timeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kTimeout;
  }
  if (u < r.media + r.timeout + r.stall) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kTransientStall;
  }
  return FaultKind::kNone;
}

bool FaultInjector::DrawTailStall(Tier t, MemOp op, Pattern pat,
                                  uint64_t stream, uint64_t site) {
  if (!plan_.enabled) return false;
  const FaultRates& r = plan_.at(t, op, pat);
  if (r.stall <= 0.0) return false;
  // Same uniform as Draw, compared only against the stall band's width, so a
  // media-rate sweep leaves the tail-stall set untouched.
  const double u = UniformOf(plan_.seed, stream, site, /*attempt=*/0);
  if (u >= r.stall) return false;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  retried_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::DrawMachineLoss(int machine, uint64_t round) {
  if (!plan_.enabled) return false;
  for (const auto& [m, r] : plan_.kills) {
    if (m == machine && r == round) {
      machine_losses_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (plan_.machine_loss <= 0.0) return false;
  const uint64_t site = (static_cast<uint64_t>(machine) << 32) | round;
  const double u = UniformOf(plan_.seed, kFaultStreamMachineLoss, site,
                             /*attempt=*/0);
  if (u >= plan_.machine_loss) return false;
  machine_losses_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::AddPenaltySeconds(double seconds) {
  if (seconds <= 0.0) return;
  const uint64_t nanos = static_cast<uint64_t>(std::llround(seconds * 1e9));
  penalty_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

}  // namespace omega::memsim
