// Calibrated device performance profiles for the simulated DRAM/PM/SSD/network
// tiers.
//
// The numbers are calibrated to the measurements reported in the OMeGa paper
// (§I, §III-D Fig. 9) and the Optane characterization literature it cites
// (Izraelevitz et al., Yang et al. FAST'20):
//   * PM read bandwidth  ~= 1/3 of DRAM, PM write bandwidth ~= 1/6 of DRAM.
//   * PM local sequential read ~= remote sequential read (global sequential
//     reads are cheap), but 2.41x / 2.45x higher than local / remote random
//     reads.
//   * PM local sequential write is 3.23x remote sequential write and 4.99x
//     remote random write; remote write peak is ~69% of local.
//   * PM local / remote read latency is 4.2x / 3.3x the DRAM baseline.
//   * Bandwidth saturates as threads are added (Fig. 9's flattening curves).

#pragma once

#include <array>

#include "memsim/types.h"

namespace omega::memsim {

/// Saturating bandwidth curve for one (op, pattern, locality) combination.
///
/// With `t` active threads on the device the aggregate bandwidth is
/// min(t * per_thread_gbps, peak_gbps); each thread receives an equal share.
struct BandwidthCurve {
  double per_thread_gbps = 0.0;
  double peak_gbps = 0.0;

  /// Aggregate GB/s delivered to `active_threads` concurrent streams.
  double AggregateGbps(int active_threads) const;

  /// GB/s available to one of `active_threads` concurrent streams.
  double PerThreadGbps(int active_threads) const;
};

/// Full performance description of one device tier.
struct DeviceProfile {
  Tier tier = Tier::kDram;

  /// Indexed by [op][pattern][locality].
  std::array<std::array<std::array<BandwidthCurve, 2>, 2>, 2> curves;

  /// Access latency in nanoseconds for [locality].
  std::array<double, 2> latency_ns = {0.0, 0.0};

  const BandwidthCurve& Curve(MemOp op, Pattern pat, Locality loc) const {
    return curves[static_cast<int>(op)][static_cast<int>(pat)][static_cast<int>(loc)];
  }
  BandwidthCurve& Curve(MemOp op, Pattern pat, Locality loc) {
    return curves[static_cast<int>(op)][static_cast<int>(pat)][static_cast<int>(loc)];
  }
  double LatencyNs(Locality loc) const { return latency_ns[static_cast<int>(loc)]; }
};

/// Profiles for all tiers plus the simulated CPU arithmetic throughput.
struct ProfileSet {
  std::array<DeviceProfile, kNumTiers> tiers;

  /// Simulated scalar multiply-accumulate throughput per core (ops/s); models
  /// the BW_CPU term of the paper's Eq. 2 cost analysis.
  double cpu_ops_per_second = 4.0e9;

  /// Per-bank multiply-accumulate throughput of the PIM tier (ops/s). A DPU
  /// core is far weaker than a host core (UPMEM: ~350 MHz in-order vs 2+ GHz
  /// OoO), but banks operate on MRAM-local data with no shared-bus contention;
  /// the aggregate across all banks is what PimSpmm's bank-straggler charge
  /// exploits. Calibrated so one bank ~= 1/4 of a host core.
  double pim_bank_ops_per_second = 1.0e9;

  /// Ordering cost of one persist barrier (CLWB+SFENCE on PM, fsync-ish on
  /// SSD) beyond the device's access latency. The durable log charges one per
  /// header-dance step, so checkpoint cost scales with entry count as well as
  /// bytes. Calibrated to the eADR-less Optane flush path (~0.5 us).
  double persist_barrier_ns = 500.0;

  const DeviceProfile& Get(Tier t) const { return tiers[static_cast<int>(t)]; }
  DeviceProfile& Get(Tier t) { return tiers[static_cast<int>(t)]; }
};

/// Returns the calibrated default profiles described in the file comment.
ProfileSet DefaultProfiles();

/// Profiles for a CXL-attached memory expander in place of Optane PM — the
/// paper's stated future direction (§VI: "The rise of CXL enables the
/// integration of PM into scalable memory architectures"). CXL.mem DDR
/// expanders deliver near-DRAM bandwidth at added (~2.5x DRAM) latency with
/// no read/write asymmetry and no NUMA-socket penalty beyond the link.
ProfileSet CxlProfiles();

}  // namespace omega::memsim
