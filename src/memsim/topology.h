// Simulated machine topology: sockets, cores, and per-socket DRAM/PM capacity.
//
// The default configuration mirrors the paper's testbed (two sockets, 18
// cores, 96 GB DRAM + 768 GB PM per socket) scaled down ~4000x — 1000x for
// the dataset analogues' node/edge counts times 4x for the reduced embedding
// dimension (32 vs 128) — so capacity-driven behaviour (which systems OOM on
// which graphs) matches the paper: 24 MB DRAM and 192 MB PM per socket.

#pragma once

#include <cstddef>
#include <cstdint>

#include "memsim/types.h"

namespace omega::memsim {

/// Static description of the simulated machine.
struct TopologyConfig {
  int num_sockets = 2;
  int cores_per_socket = 18;

  /// Per-socket capacities in bytes. SSD/network capacities are unbounded.
  size_t dram_bytes_per_socket = 24ULL << 20;  // 24 MB (paper: 96 GB, /4000)
  size_t pm_bytes_per_socket = 192ULL << 20;   // 192 MB (paper: 768 GB, /4000)

  /// Simulated PIM DIMMs: UPMEM-class hardware carries 2048 DPUs x 64 MB
  /// MRAM per machine; scaled by the same /4000 factor as the other tiers
  /// and split across sockets that gives 64 banks x 256 KB per socket.
  int pim_banks_per_socket = 64;
  size_t pim_mram_bytes_per_bank = 256ULL << 10;

  int TotalCores() const { return num_sockets * cores_per_socket; }
  int TotalPimBanks() const { return num_sockets * pim_banks_per_socket; }
  size_t TierCapacityPerSocket(Tier t) const {
    switch (t) {
      case Tier::kDram:
        return dram_bytes_per_socket;
      case Tier::kPm:
        return pm_bytes_per_socket;
      case Tier::kPim:
        return static_cast<size_t>(pim_banks_per_socket) *
               pim_mram_bytes_per_bank;
      default:
        return SIZE_MAX;
    }
  }
};

/// Maps worker threads to sockets and answers locality queries.
class Topology {
 public:
  explicit Topology(TopologyConfig config) : config_(config) {}

  const TopologyConfig& config() const { return config_; }
  int num_sockets() const { return config_.num_sockets; }

  /// Socket a worker is bound to under block assignment: with W workers,
  /// workers [0, W/S) go to socket 0, the next W/S to socket 1, and so on.
  /// This mirrors NaDP's CPU-binding-based computing (§III-D).
  int SocketOfWorker(int worker, int total_workers) const;

  /// Locality of an access from `cpu_socket` to data on `data_socket`.
  Locality LocalityOf(int cpu_socket, int data_socket) const {
    return cpu_socket == data_socket ? Locality::kLocal : Locality::kRemote;
  }

 private:
  TopologyConfig config_;
};

}  // namespace omega::memsim
