// Deterministic fault injection for the simulated memory hierarchy.
//
// The paper's premise is that the capacity tiers are slower AND less reliable
// than DRAM: PM devices exhibit tail stalls and media errors, SSDs wear, and
// remote nodes time out. A FaultPlan gives each (tier, op, pattern) class a
// rate for three typed faults:
//
//   kTransientStall — the access succeeds but costs extra simulated seconds
//                     (device-internal retry / thermal throttle); absorbed at
//                     the charge site, no caller action needed.
//   kMediaError     — the read fails after costing a full wasted attempt;
//                     the caller owns recovery (retry / fall back / surface).
//   kTimeout        — a remote access never answers; the caller waits out
//                     plan.timeout_seconds and recovers (e.g. the local
//                     replica in distributed_sim).
//
// Determinism: every draw is a pure hash of (plan.seed, stream, site,
// attempt) — no global counter, no RNG state — so a fixed seed reproduces the
// exact fault sequence regardless of thread interleaving, and the fault set
// at rate r1 is a subset of the set at r2 > r1 (the same uniform value is
// compared against a larger threshold), which makes simulated time monotone
// in the fault rate. `stream` namespaces independent draw sequences (one per
// consumer), `site` indexes the access within the stream, `attempt` indexes
// retries of the same access.
//
// Accounting identity: every drawn non-none fault lands in exactly one
// recovery bucket — injected == retried + degraded + surfaced + recovered.
// Stalls self-recover and are counted as retried at the draw site; media
// errors and timeouts are bucketed by the recovering caller; machine losses
// (whole simulated machines killed in the durable distributed path) are
// bucketed as recovered once the machine replays the shared log from its
// last checkpoint.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "memsim/types.h"

namespace omega::memsim {

enum class FaultKind {
  kNone = 0,
  kTransientStall,
  kMediaError,
  kTimeout,
  /// A whole simulated machine dies mid-run (durable distributed path only;
  /// drawn per (machine, round) via DrawMachineLoss, never by Draw).
  kMachineLoss,
};

/// Number of real (non-kNone) fault kinds.
inline constexpr int kNumFaultKinds = 4;

const char* FaultKindName(FaultKind kind);

/// Per-access-class fault probabilities (each in [0, 1]).
struct FaultRates {
  double stall = 0.0;
  double media = 0.0;
  double timeout = 0.0;

  bool any() const { return stall > 0.0 || media > 0.0 || timeout > 0.0; }
};

/// The seeded fault schedule owned by a MemorySystem. Value type: cheap to
/// copy, comparable runs install identical plans.
struct FaultPlan {
  /// An installed plan injects only when enabled; a zero-rate enabled plan is
  /// legal (draws happen, nothing fires) and must charge identically to a
  /// disabled one.
  bool enabled = false;
  uint64_t seed = 42;

  /// Extra simulated seconds of a transient stall, as a multiple of the
  /// stalled access's own cost.
  double stall_multiplier = 4.0;
  /// Tail-stall penalty of a whole gather phase, as a fraction of the
  /// worker's phase seconds (the deep SpMM path draws one stall per worker
  /// per execute rather than per access).
  double tail_stall_fraction = 0.1;
  /// Simulated seconds a timed-out remote access wastes before the caller
  /// recovers.
  double timeout_seconds = 0.02;

  /// rates[tier][op][pattern]
  FaultRates rates[kNumTiers][2][2];

  /// Probability that a simulated machine dies in one sync round of the
  /// durable distributed path. Drawn per (machine, round) on its own stream
  /// (DrawMachineLoss); paths outside that opt-in never consult it, so plans
  /// carrying a machine-loss rate charge identically everywhere else.
  double machine_loss = 0.0;
  /// Explicit deterministic kill schedule: (machine, round) pairs that die
  /// regardless of machine_loss. Used by the crash tests and bench_recovery
  /// to force a loss at a known round.
  std::vector<std::pair<int, uint64_t>> kills;

  FaultRates& at(Tier t, MemOp op, Pattern pat) {
    return rates[static_cast<int>(t)][static_cast<int>(op)][static_cast<int>(pat)];
  }
  const FaultRates& at(Tier t, MemOp op, Pattern pat) const {
    return rates[static_cast<int>(t)][static_cast<int>(op)][static_cast<int>(pat)];
  }
  /// Sets the same rates for every op/pattern class of a tier.
  void SetTier(Tier t, FaultRates r);
};

/// Named profiles for `--fault-profile=` and the benches. Spec is
/// "name[:seed]": none | pm-stall | pm-degraded | worn-ssd | flaky-net |
/// flaky-pim | chaos, e.g. "pm-degraded:7" — or "@path" to load a custom
/// plan from a profile file (see FaultPlanFromFile).
Result<FaultPlan> FaultPlanFromProfile(const std::string& spec);
const std::vector<std::string>& FaultProfileNames();

/// Parses a fault-plan profile file. Line grammar ('#' starts a comment):
///   seed <n>
///   stall-multiplier <x> | tail-stall-fraction <x> | timeout-seconds <x>
///   rate <tier> <op> <pattern> <kind> <rate>
/// with tier in dram|pm|ssd|net|pim (or *), op in read|write|*, pattern in
/// seq|rand|*, kind in stall|media|timeout. Unknown tier/op/pattern/kind
/// names are rejected with a "<path>:<line>:" prefixed error instead of
/// being silently ignored.
Result<FaultPlan> FaultPlanFromFile(const std::string& path);

/// Immutable snapshot of the injector's counters. All integers (the penalty
/// accumulates in integer nanoseconds) so snapshots of a fixed seed are
/// byte-identical across runs and thread interleavings.
struct FaultCounters {
  uint64_t stalls = 0;    ///< injected transient stalls
  uint64_t media = 0;     ///< injected media errors
  uint64_t timeouts = 0;  ///< injected timeouts
  uint64_t machine_losses = 0;  ///< injected whole-machine kills
  uint64_t retried = 0;   ///< recovered by retry (stalls count here)
  uint64_t degraded = 0;  ///< recovered by falling back to a slower path
  uint64_t surfaced = 0;  ///< propagated to the caller as a failed run
  uint64_t recovered = 0;  ///< machine losses recovered by log replay
  uint64_t penalty_nanos = 0;  ///< simulated nanoseconds charged to faults

  uint64_t InjectedTotal() const {
    return stalls + media + timeouts + machine_losses;
  }
  /// The accounting identity every run must satisfy.
  bool Accounted() const {
    return InjectedTotal() == retried + degraded + surfaced + recovered;
  }
  double PenaltySeconds() const { return penalty_nanos * 1e-9; }

  FaultCounters operator-(const FaultCounters& other) const;
  bool operator==(const FaultCounters& other) const;
};

/// "injected=5 (stall=2 media=3 timeout=0) retried=4 degraded=1 surfaced=0
/// penalty=1.23e-02s" — stable across runs of the same seed, used by tests
/// and bench_fault_tolerance to compare fault reports byte-for-byte.
std::string FaultCountersSummary(const FaultCounters& c);

/// The plan plus thread-safe counters. Owned by MemorySystem; consumers go
/// through the MemorySystem charge APIs rather than drawing directly.
class FaultInjector {
 public:
  void SetPlan(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled; }

  void ResetCounters();
  FaultCounters Counters() const;

  /// Draws the fault (if any) of one access attempt and counts it as
  /// injected. Pure in (seed, stream, site, attempt): the same key always
  /// yields the same kind under the same rates.
  FaultKind Draw(Tier t, MemOp op, Pattern pat, uint64_t stream, uint64_t site,
                 uint32_t attempt);

  /// Stall-only draw for charge paths with no recovery story (the deep SpMM
  /// gather loop): media/timeout thresholds are not consulted, so no fault
  /// can fire that the caller cannot absorb. Counts injected + retried.
  bool DrawTailStall(Tier t, MemOp op, Pattern pat, uint64_t stream,
                     uint64_t site);

  /// Draws whether `machine` dies in sync round `round` of the durable
  /// distributed path. Fires for every (machine, round) in plan.kills, and
  /// otherwise with probability plan.machine_loss on its own stream. Counts
  /// injected (machine_losses); the caller buckets the loss as recovered
  /// once the replay completes (or surfaced if it cannot).
  bool DrawMachineLoss(int machine, uint64_t round);

  // Recovery bookkeeping (callers bucket media errors / timeouts).
  void CountRetried(uint64_t n = 1) {
    retried_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDegraded(uint64_t n = 1) {
    degraded_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountSurfaced(uint64_t n = 1) {
    surfaced_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountRecovered(uint64_t n = 1) {
    recovered_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Simulated seconds attributable to faults (stall penalties, wasted
  /// attempts, timeout waits, retry backoff). Accumulated as integer
  /// nanoseconds so the sum is order-independent.
  void AddPenaltySeconds(double seconds);

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> media_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> machine_losses_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> surfaced_{0};
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> penalty_nanos_{0};
};

/// Bounded-retry policy for the fault-aware charge helpers.
struct FaultRetryPolicy {
  int max_retries = 3;
  double backoff_seconds = 1e-4;  ///< first retry's wait; doubles per retry
  double backoff_multiplier = 2.0;
};

/// Draw-stream ids: each consumer owns one so its fault sequence is
/// independent of what other consumers draw.
inline constexpr uint64_t kFaultStreamAsl = 0xA51;
inline constexpr uint64_t kFaultStreamWofpProbe = 0x30F9;
inline constexpr uint64_t kFaultStreamProneStaging = 0x9201;
inline constexpr uint64_t kFaultStreamOutOfCore = 0x00C5;
inline constexpr uint64_t kFaultStreamDistNet = 0xD157;
/// Serving-layer cold-fetch draws; each server worker offsets by its index.
inline constexpr uint64_t kFaultStreamServe = 0x5E4E;
/// Checkpoint writer/reader IO against the PM tier.
inline constexpr uint64_t kFaultStreamDurable = 0xCC97;
/// Replicated shared-log replica writes over the NET tier.
inline constexpr uint64_t kFaultStreamSharedLog = 0x510C;
/// Machine-loss draws in the durable distributed path (one site per
/// (machine, round)).
inline constexpr uint64_t kFaultStreamMachineLoss = 0xDEAD;
/// Per-worker streams offset by the worker index.
inline constexpr uint64_t kFaultStreamWorkerBase = 0x1000000;
/// PimSpmm's DMA controller: a synthetic worker index far above any real
/// worker, so the gang-DMA transfer draws (ship / broadcast / readback) own
/// the kFaultStreamPim stream through the same worker-stream charge helpers.
inline constexpr int kPimControllerWorker = 0x911400;
inline constexpr uint64_t kFaultStreamPim =
    kFaultStreamWorkerBase + kPimControllerWorker;

}  // namespace omega::memsim
