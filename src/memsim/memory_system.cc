#include "memsim/memory_system.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace omega::memsim {

uint64_t TrafficSnapshot::TotalBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l) total += bytes[t][o][p][l];
  return total;
}

uint64_t TrafficSnapshot::TierBytes(Tier tier) const {
  uint64_t total = 0;
  const int t = static_cast<int>(tier);
  for (int o = 0; o < 2; ++o)
    for (int p = 0; p < 2; ++p)
      for (int l = 0; l < 2; ++l) total += bytes[t][o][p][l];
  return total;
}

uint64_t TrafficSnapshot::LocalityBytes(Locality loc) const {
  uint64_t total = 0;
  const int l = static_cast<int>(loc);
  // Only DRAM and PM participate in NUMA locality.
  for (int t = 0; t < 2; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p) total += bytes[t][o][p][l];
  return total;
}

TrafficSnapshot TrafficSnapshot::operator-(const TrafficSnapshot& other) const {
  TrafficSnapshot out;
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l) {
          const uint64_t before = other.bytes[t][o][p][l];
          const uint64_t after = bytes[t][o][p][l];
          out.bytes[t][o][p][l] = after >= before ? after - before : 0;
        }
  return out;
}

TrafficSnapshot& TrafficSnapshot::operator+=(const TrafficSnapshot& other) {
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l) bytes[t][o][p][l] += other.bytes[t][o][p][l];
  return *this;
}

bool TrafficSnapshot::operator==(const TrafficSnapshot& other) const {
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l) {
          if (bytes[t][o][p][l] != other.bytes[t][o][p][l]) return false;
        }
  return true;
}

double TrafficSnapshot::RemoteFraction() const {
  const uint64_t local = LocalityBytes(Locality::kLocal);
  const uint64_t remote = LocalityBytes(Locality::kRemote);
  const uint64_t all = local + remote;
  if (all == 0) return 0.0;
  return static_cast<double>(remote) / static_cast<double>(all);
}

MemorySystem::MemorySystem(TopologyConfig topo, ProfileSet profiles)
    : topology_(topo), cost_model_(profiles) {
  used_by_socket_.resize(topo.num_sockets);
  for (auto& per_socket : used_by_socket_) per_socket.fill(0);
}

std::unique_ptr<MemorySystem> MemorySystem::CreateDefault() {
  return std::make_unique<MemorySystem>(TopologyConfig{}, DefaultProfiles());
}

Status MemorySystem::Reserve(Placement p, size_t bytes) {
  if (p.interleaved()) {
    // Spread the reservation evenly; roll back on partial failure.
    const int sockets = topology_.num_sockets();
    const size_t share = bytes / sockets;
    for (int s = 0; s < sockets; ++s) {
      const size_t this_share = (s == sockets - 1) ? bytes - share * (sockets - 1)
                                                   : share;
      const Status st = Reserve(Placement{p.tier, s}, this_share);
      if (!st.ok()) {
        for (int undo = 0; undo < s; ++undo) {
          Release(Placement{p.tier, undo}, share);
        }
        return st;
      }
    }
    return Status::OK();
  }
  if (p.socket < 0 || p.socket >= topology_.num_sockets()) {
    return Status::InvalidArgument("socket out of range: " + std::to_string(p.socket));
  }
  const size_t cap = CapacityBytes(p.tier);
  std::lock_guard<std::mutex> lock(capacity_mu_);
  size_t& used = used_by_socket_[p.socket][static_cast<int>(p.tier)];
  if (cap != SIZE_MAX && used + bytes > cap) {
    return Status::CapacityExceeded(
        std::string(TierName(p.tier)) + " socket " + std::to_string(p.socket) +
        ": need " + HumanBytes(bytes) + ", used " + HumanBytes(used) + " of " +
        HumanBytes(cap));
  }
  used += bytes;
  return Status::OK();
}

void MemorySystem::Release(Placement p, size_t bytes) {
  if (p.interleaved()) {
    const int sockets = topology_.num_sockets();
    const size_t share = bytes / sockets;
    for (int s = 0; s < sockets; ++s) {
      Release(Placement{p.tier, s},
              s == sockets - 1 ? bytes - share * (sockets - 1) : share);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(capacity_mu_);
  size_t& used = used_by_socket_[p.socket][static_cast<int>(p.tier)];
  OMEGA_CHECK(used >= bytes) << "releasing more bytes than reserved on "
                             << TierName(p.tier);
  used -= bytes;
}

size_t MemorySystem::UsedBytes(Tier tier, int socket) const {
  std::lock_guard<std::mutex> lock(capacity_mu_);
  return used_by_socket_[socket][static_cast<int>(tier)];
}

size_t MemorySystem::AvailableBytes(Tier tier, int socket) const {
  const size_t cap = CapacityBytes(tier);
  if (cap == SIZE_MAX) return SIZE_MAX;
  const size_t used = UsedBytes(tier, socket);
  return used >= cap ? 0 : cap - used;
}

double MemorySystem::AccessSeconds(Placement p, int cpu_socket, MemOp op, Pattern pat,
                                   size_t bytes, size_t accesses, int active_threads) {
  if (p.interleaved()) {
    // Round-robin pages: 1/S of the stream is local, the rest remote; the
    // halves are serialized within the thread's access stream, so costs add.
    const int sockets = topology_.num_sockets();
    double total = 0.0;
    for (int s = 0; s < sockets; ++s) {
      total += AccessSeconds(Placement{p.tier, s}, cpu_socket, op, pat,
                             bytes / sockets, accesses / sockets, active_threads);
    }
    return total;
  }
  const Locality loc = topology_.LocalityOf(cpu_socket, p.socket);
  traffic_[static_cast<int>(p.tier)][static_cast<int>(op)][static_cast<int>(pat)]
          [static_cast<int>(loc)]
              .fetch_add(bytes, std::memory_order_relaxed);
  AccessRun run;
  run.op = op;
  run.pattern = pat;
  run.locality = loc;
  run.bytes = bytes;
  run.accesses = accesses;
  return cost_model_.AccessSeconds(p.tier, run, active_threads);
}

void MemorySystem::ChargeAccess(WorkerCtx* ctx, Placement p, MemOp op, Pattern pat,
                                size_t bytes, size_t accesses) {
  const double seconds =
      AccessSeconds(p, ctx->cpu_socket, op, pat, bytes, accesses, ctx->active_threads);
  ctx->clock->Advance(seconds);
}

void MemorySystem::ChargeCompute(WorkerCtx* ctx, size_t ops) {
  ctx->clock->Advance(cost_model_.ComputeSeconds(ops));
}

MemorySystem::FaultDraw MemorySystem::TryAccessSeconds(
    Placement p, int cpu_socket, MemOp op, Pattern pat, size_t bytes,
    size_t accesses, int active_threads, uint64_t stream, uint64_t site,
    uint32_t attempt) {
  FaultDraw draw;
  if (!injector_.enabled()) {
    draw.seconds =
        AccessSeconds(p, cpu_socket, op, pat, bytes, accesses, active_threads);
    return draw;
  }
  draw.kind = injector_.Draw(p.tier, op, pat, stream, site, attempt);
  switch (draw.kind) {
    case FaultKind::kTimeout:
      // Nothing answered: no traffic moved, the caller waited out the window.
      draw.seconds = injector_.plan().timeout_seconds;
      injector_.AddPenaltySeconds(draw.seconds);
      return draw;
    case FaultKind::kMediaError: {
      // The device churned through the request before failing it: the attempt
      // costs (and counts as traffic) like a real read of the same run.
      draw.seconds =
          AccessSeconds(p, cpu_socket, op, pat, bytes, accesses, active_threads);
      injector_.AddPenaltySeconds(draw.seconds);
      return draw;
    }
    case FaultKind::kTransientStall: {
      const double base =
          AccessSeconds(p, cpu_socket, op, pat, bytes, accesses, active_threads);
      const double penalty = base * injector_.plan().stall_multiplier;
      draw.seconds = base + penalty;
      injector_.AddPenaltySeconds(penalty);
      // Stalls self-recover at the charge site.
      injector_.CountRetried();
      return draw;
    }
    case FaultKind::kMachineLoss:  // never returned by Draw
    case FaultKind::kNone:
      draw.seconds =
          AccessSeconds(p, cpu_socket, op, pat, bytes, accesses, active_threads);
      return draw;
  }
  return draw;
}

Status MemorySystem::TryChargeAccess(WorkerCtx* ctx, Placement p, MemOp op,
                                     Pattern pat, size_t bytes, size_t accesses) {
  if (!injector_.enabled()) {
    ChargeAccess(ctx, p, op, pat, bytes, accesses);
    return Status::OK();
  }
  const uint64_t stream = kFaultStreamWorkerBase + ctx->worker;
  const FaultDraw draw = TryAccessSeconds(p, ctx->cpu_socket, op, pat, bytes,
                                          accesses, ctx->active_threads, stream,
                                          ctx->fault_site++, /*attempt=*/0);
  ctx->clock->Advance(draw.seconds);
  if (draw.kind == FaultKind::kMediaError || draw.kind == FaultKind::kTimeout) {
    return Status::IOError(std::string(TierName(p.tier)) + " access failed: " +
                           FaultKindName(draw.kind));
  }
  return Status::OK();
}

Status MemorySystem::ChargeAccessWithRetry(WorkerCtx* ctx, Placement p, MemOp op,
                                           Pattern pat, size_t bytes,
                                           size_t accesses,
                                           const FaultRetryPolicy& policy) {
  if (!injector_.enabled()) {
    ChargeAccess(ctx, p, op, pat, bytes, accesses);
    return Status::OK();
  }
  const uint64_t stream = kFaultStreamWorkerBase + ctx->worker;
  const uint64_t site = ctx->fault_site++;
  double backoff = policy.backoff_seconds;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    const FaultDraw draw =
        TryAccessSeconds(p, ctx->cpu_socket, op, pat, bytes, accesses,
                         ctx->active_threads, stream, site, attempt);
    ctx->clock->Advance(draw.seconds);
    if (draw.kind != FaultKind::kMediaError && draw.kind != FaultKind::kTimeout) {
      return Status::OK();
    }
    if (attempt == policy.max_retries) {
      // Exhausted: the final fault stays un-bucketed for the caller.
      return Status::IOError(std::string(TierName(p.tier)) +
                             " access failed after " +
                             std::to_string(policy.max_retries) +
                             " retries: " + FaultKindName(draw.kind));
    }
    injector_.CountRetried();
    ctx->clock->Advance(backoff);
    injector_.AddPenaltySeconds(backoff);
    backoff *= policy.backoff_multiplier;
  }
  return Status::OK();
}

void MemorySystem::ChargeTailStall(WorkerCtx* ctx, Tier tier, double base_seconds) {
  if (!injector_.enabled() || base_seconds <= 0.0) return;
  const uint64_t stream = kFaultStreamWorkerBase + ctx->worker;
  if (injector_.DrawTailStall(tier, MemOp::kRead, Pattern::kRandom, stream,
                              ctx->fault_site++)) {
    const double penalty = base_seconds * injector_.plan().tail_stall_fraction;
    ctx->clock->Advance(penalty);
    injector_.AddPenaltySeconds(penalty);
  }
}

double MemorySystem::PersistBarrierSeconds(Tier tier) {
  const DeviceProfile& profile = cost_model_.profiles().Get(tier);
  persist_barriers_.fetch_add(1, std::memory_order_relaxed);
  return (profile.LatencyNs(Locality::kLocal) +
          cost_model_.profiles().persist_barrier_ns) *
         1e-9;
}

void MemorySystem::ChargePersistBarrier(WorkerCtx* ctx, Tier tier) {
  ctx->clock->Advance(PersistBarrierSeconds(tier));
}

void MemorySystem::ResetTraffic() {
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l) traffic_[t][o][p][l].store(0);
  persist_barriers_.store(0, std::memory_order_relaxed);
}

TrafficSnapshot MemorySystem::Traffic() const {
  TrafficSnapshot snap;
  for (int t = 0; t < kNumTiers; ++t)
    for (int o = 0; o < 2; ++o)
      for (int p = 0; p < 2; ++p)
        for (int l = 0; l < 2; ++l)
          snap.bytes[t][o][p][l] = traffic_[t][o][p][l].load();
  return snap;
}

}  // namespace omega::memsim
