#include "memsim/cost_model.h"

#include <algorithm>

namespace omega::memsim {

double CostModel::AccessSeconds(Tier t, const AccessRun& run,
                                int active_threads) const {
  if (run.bytes == 0 && run.accesses == 0) return 0.0;
  const DeviceProfile& dev = profiles_.Get(t);
  const BandwidthCurve& curve = dev.Curve(run.op, run.pattern, run.locality);
  const double gbps = curve.PerThreadGbps(active_threads);
  const double bw_seconds = static_cast<double>(run.bytes) / (gbps * 1e9);
  const double mlp = run.locality == Locality::kLocal ? kMlpLocal : kMlpRemote;
  const double lat_seconds =
      static_cast<double>(run.accesses) * dev.LatencyNs(run.locality) * 1e-9 / mlp;
  return std::max(bw_seconds, lat_seconds);
}

}  // namespace omega::memsim
