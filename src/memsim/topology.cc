#include "memsim/topology.h"

namespace omega::memsim {

int Topology::SocketOfWorker(int worker, int total_workers) const {
  const int sockets = config_.num_sockets;
  if (total_workers <= 0) return 0;
  if (worker < 0) worker = 0;
  if (worker >= total_workers) worker = total_workers - 1;
  const int per_socket = (total_workers + sockets - 1) / sockets;
  int socket = worker / per_socket;
  if (socket >= sockets) socket = sockets - 1;
  return socket;
}

}  // namespace omega::memsim
