// SimBuffer<T>: a typed array that lives "on" the simulated machine.
//
// The contents are ordinary host memory (kernels compute on them directly);
// the buffer additionally carries its simulated Placement (tier + socket) and
// reserves capacity from the MemorySystem, so allocating past a device's
// capacity fails exactly as it would on the real machine.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "memsim/memory_system.h"

namespace omega::memsim {

template <typename T>
class SimBuffer {
 public:
  SimBuffer() = default;

  /// Allocates `n` elements of T placed at (tier, socket).
  static Result<SimBuffer<T>> Create(MemorySystem* ms, size_t n, Tier tier,
                                     int socket) {
    Placement p{tier, socket};
    OMEGA_RETURN_NOT_OK(ms->Reserve(p, n * sizeof(T)));
    SimBuffer<T> buf;
    buf.ms_ = ms;
    buf.placement_ = p;
    buf.reserved_bytes_ = n * sizeof(T);
    buf.data_.resize(n);
    return buf;
  }

  /// Reserves capacity for `n` elements at (tier, socket) without backing
  /// them with host memory: size() stays 0 and data() must not be used. For
  /// accounting-only pages (multi-GB staging frames, out-of-core feature
  /// caches) whose contents are never computed on, only charged for.
  static Result<SimBuffer<T>> CreateUnmaterialized(MemorySystem* ms, size_t n,
                                                   Tier tier, int socket) {
    Placement p{tier, socket};
    OMEGA_RETURN_NOT_OK(ms->Reserve(p, n * sizeof(T)));
    SimBuffer<T> buf;
    buf.ms_ = ms;
    buf.placement_ = p;
    buf.reserved_bytes_ = n * sizeof(T);
    return buf;
  }

  ~SimBuffer() { ReleaseReservation(); }

  SimBuffer(const SimBuffer&) = delete;
  SimBuffer& operator=(const SimBuffer&) = delete;

  SimBuffer(SimBuffer&& other) noexcept { MoveFrom(&other); }
  SimBuffer& operator=(SimBuffer&& other) noexcept {
    if (this != &other) {
      ReleaseReservation();
      MoveFrom(&other);
    }
    return *this;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  size_t bytes() const { return reserved_bytes_; }

  const Placement& placement() const { return placement_; }
  MemorySystem* memory_system() const { return ms_; }

 private:
  void ReleaseReservation() {
    if (ms_ != nullptr && reserved_bytes_ > 0) {
      ms_->Release(placement_, reserved_bytes_);
    }
    ms_ = nullptr;
    reserved_bytes_ = 0;
    data_.clear();
  }

  void MoveFrom(SimBuffer* other) {
    ms_ = other->ms_;
    placement_ = other->placement_;
    reserved_bytes_ = other->reserved_bytes_;
    data_ = std::move(other->data_);
    other->ms_ = nullptr;
    other->reserved_bytes_ = 0;
    other->data_.clear();
  }

  MemorySystem* ms_ = nullptr;
  Placement placement_;
  size_t reserved_bytes_ = 0;
  std::vector<T> data_;
};

}  // namespace omega::memsim
