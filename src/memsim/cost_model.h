// Translates classified memory traffic and arithmetic into simulated seconds.

#pragma once

#include <cstddef>

#include "memsim/device_profile.h"
#include "memsim/types.h"

namespace omega::memsim {

/// Description of one bulk charge: `bytes` moved in `accesses` separate
/// access runs (for random traffic, `accesses` is the number of independent
/// random touches; for sequential traffic it is the number of streams, which
/// amortizes latency away).
struct AccessRun {
  MemOp op = MemOp::kRead;
  Pattern pattern = Pattern::kSequential;
  Locality locality = Locality::kLocal;
  size_t bytes = 0;
  size_t accesses = 1;
};

/// Stateless converter from access runs to simulated seconds.
class CostModel {
 public:
  explicit CostModel(ProfileSet profiles) : profiles_(profiles) {}

  const ProfileSet& profiles() const { return profiles_; }

  /// Simulated seconds for one worker (out of `active_threads` concurrently
  /// hammering the same tier) to complete `run` against tier `t`.
  ///
  /// cost = max(bytes / per_thread_bandwidth, accesses * latency / MLP)
  /// where MLP models memory-level parallelism (outstanding requests) that
  /// overlaps access latencies. Remote accesses sustain far fewer outstanding
  /// requests (inter-socket link queue limits), which is the per-thread NUMA
  /// random-access penalty NaDP exploits: at saturation the paper's Fig. 9
  /// peaks show local ~= remote for random reads, but per-access a remote
  /// gather costs latency/3 vs latency/8 overlapped.
  double AccessSeconds(Tier t, const AccessRun& run, int active_threads) const;

  /// Simulated seconds for `ops` scalar multiply-accumulate operations on one
  /// core (the paper's W_i / BW_CPU term in Eq. 2).
  double ComputeSeconds(size_t ops) const {
    return static_cast<double>(ops) / profiles_.cpu_ops_per_second;
  }

  /// Memory-level parallelism depth used to overlap access latency.
  static constexpr double kMlpLocal = 8.0;
  static constexpr double kMlpRemote = 3.0;

 private:
  ProfileSet profiles_;
};

}  // namespace omega::memsim
