#include "memsim/bandwidth_probe.h"

namespace omega::memsim {

BandwidthSample ProbeBandwidth(MemorySystem* ms, Tier tier, MemOp op, Pattern pat,
                               Locality loc, int threads, size_t bytes_per_thread) {
  // Data lives on socket 0; the CPU socket is chosen so the access has the
  // requested locality.
  const Placement data{tier, 0};
  const int cpu_socket = (loc == Locality::kLocal) ? 0 : 1;

  // For random traffic, model 64-byte touches (one cache line per access).
  const size_t access_granularity = (pat == Pattern::kRandom) ? 64 : bytes_per_thread;
  const size_t accesses = bytes_per_thread / access_granularity;

  ClockGroup clocks(threads);
  for (int w = 0; w < threads; ++w) {
    WorkerCtx ctx;
    ctx.worker = w;
    ctx.cpu_socket = cpu_socket;
    ctx.active_threads = threads;
    ctx.clock = &clocks.clock(w);
    ms->ChargeAccess(&ctx, data, op, pat, bytes_per_thread, accesses);
  }

  const double seconds = clocks.MaxSeconds();
  BandwidthSample sample;
  sample.tier = tier;
  sample.op = op;
  sample.pattern = pat;
  sample.locality = loc;
  sample.threads = threads;
  sample.gbps =
      seconds > 0.0
          ? static_cast<double>(bytes_per_thread) * threads / (seconds * 1e9)
          : 0.0;
  return sample;
}

std::vector<BandwidthSample> ProbeTier(MemorySystem* ms, Tier tier,
                                       const std::vector<int>& thread_counts,
                                       size_t bytes_per_thread) {
  std::vector<BandwidthSample> out;
  for (MemOp op : {MemOp::kRead, MemOp::kWrite}) {
    for (Pattern pat : {Pattern::kSequential, Pattern::kRandom}) {
      for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
        for (int t : thread_counts) {
          out.push_back(ProbeBandwidth(ms, tier, op, pat, loc, t, bytes_per_thread));
        }
      }
    }
  }
  return out;
}

}  // namespace omega::memsim
