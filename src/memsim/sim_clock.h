// Per-worker simulated clocks.
//
// Every worker thread accumulates simulated seconds as kernels charge memory
// traffic and arithmetic against it. A parallel phase's simulated duration is
// the maximum across its workers (the straggler), which is precisely how the
// paper's tail-latency effects become visible.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace omega::memsim {

/// Accumulator of simulated time for one worker.
class SimClock {
 public:
  void Advance(double seconds) { seconds_ += seconds; }
  void Reset() { seconds_ = 0.0; }
  double seconds() const { return seconds_; }

  /// Duration of a compute stream of `compute` seconds running concurrently
  /// with a staging fetch that takes `fetch` seconds alone but progresses
  /// `slowdown`x slower while the compute stream is active (the two streams
  /// share device bandwidth per the Fig. 9 saturation curves). While compute
  /// runs the fetch advances at rate 1/slowdown; any remainder finishes at
  /// full rate afterwards:
  ///   compute / slowdown >= fetch  ->  fully hidden, duration = compute
  ///   otherwise                        duration = fetch + compute*(1 - 1/s)
  /// slowdown == 1 reduces to max(compute, fetch) (independent devices).
  static double OverlappedSeconds(double compute, double fetch,
                                  double slowdown) {
    if (fetch <= 0.0) return compute;
    if (compute <= 0.0) return fetch;
    const double s = std::max(1.0, slowdown);
    return std::max(compute, fetch + compute * (1.0 - 1.0 / s));
  }

  /// Advances by OverlappedSeconds(compute, fetch, slowdown) and returns the
  /// fetch seconds hidden behind the compute stream (compute + fetch -
  /// duration); serial charging would advance by compute + fetch.
  double ChargeOverlapped(double compute, double fetch, double slowdown) {
    const double duration = OverlappedSeconds(compute, fetch, slowdown);
    Advance(duration);
    return compute + fetch - duration;
  }

 private:
  double seconds_ = 0.0;
};

/// A group of per-worker clocks for one parallel phase.
class ClockGroup {
 public:
  explicit ClockGroup(size_t workers) : clocks_(workers) {}

  SimClock& clock(size_t worker) { return clocks_[worker]; }
  const SimClock& clock(size_t worker) const { return clocks_[worker]; }
  size_t size() const { return clocks_.size(); }

  void Reset() {
    for (auto& c : clocks_) c.Reset();
  }

  /// Simulated duration of the phase: the slowest worker.
  double MaxSeconds() const {
    double mx = 0.0;
    for (const auto& c : clocks_) mx = std::max(mx, c.seconds());
    return mx;
  }

  double MinSeconds() const {
    if (clocks_.empty()) return 0.0;
    double mn = clocks_[0].seconds();
    for (const auto& c : clocks_) mn = std::min(mn, c.seconds());
    return mn;
  }

  double TotalSeconds() const {
    double s = 0.0;
    for (const auto& c : clocks_) s += c.seconds();
    return s;
  }

  std::vector<double> Snapshot() const {
    std::vector<double> out;
    out.reserve(clocks_.size());
    for (const auto& c : clocks_) out.push_back(c.seconds());
    return out;
  }

 private:
  std::vector<SimClock> clocks_;
};

}  // namespace omega::memsim
