// Bandwidth microbenchmark over the simulated machine — the reproduction of
// the paper's Fig. 9 (FIO/NUMACTL measurements of local/remote PM bandwidth).
//
// The probe replays a synthetic access stream of the requested class through
// the charging path and reports the aggregate bandwidth the simulated device
// delivered, verifying that the cost model reproduces the published curves.

#pragma once

#include <vector>

#include "memsim/memory_system.h"

namespace omega::memsim {

/// One measured point of the probe.
struct BandwidthSample {
  Tier tier;
  MemOp op;
  Pattern pattern;
  Locality locality;
  int threads;
  double gbps;  ///< aggregate bandwidth across all threads
};

/// Replays `bytes_per_thread` of classified traffic on `threads` simulated
/// workers and returns the delivered aggregate bandwidth in GB/s.
BandwidthSample ProbeBandwidth(MemorySystem* ms, Tier tier, MemOp op, Pattern pat,
                               Locality loc, int threads, size_t bytes_per_thread);

/// Full Fig. 9 sweep: every (op, pattern, locality) combination of `tier` for
/// each thread count in `thread_counts`.
std::vector<BandwidthSample> ProbeTier(MemorySystem* ms, Tier tier,
                                       const std::vector<int>& thread_counts,
                                       size_t bytes_per_thread);

}  // namespace omega::memsim
