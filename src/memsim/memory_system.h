// MemorySystem: the central heterogeneous-memory simulator object.
//
// It combines the machine topology, calibrated device profiles, per-tier
// capacity accounting, and traffic statistics. Kernels execute their real
// computation on host memory and *charge* the traffic they would have
// generated on the simulated machine; MemorySystem converts each charge into
// simulated seconds on the worker's SimClock and tallies global counters
// (the simulated equivalent of the paper's VTune local/remote profiling).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "memsim/cost_model.h"
#include "memsim/fault.h"
#include "memsim/sim_clock.h"
#include "memsim/topology.h"

namespace omega::memsim {

/// Where a buffer lives on the simulated machine.
///
/// socket == kInterleaved models the OS "Interleaved" NUMA policy the paper
/// uses as the no-NaDP baseline (§III-D): pages round-robin across sockets,
/// so capacity is drawn evenly from all sockets and every access stream is
/// half local / half remote on a two-socket machine.
struct Placement {
  Tier tier = Tier::kDram;
  int socket = 0;

  static constexpr int kInterleaved = -1;

  bool interleaved() const { return socket == kInterleaved; }

  bool operator==(const Placement& other) const {
    return tier == other.tier && socket == other.socket;
  }
};

/// Immutable snapshot of traffic counters, in bytes.
struct TrafficSnapshot {
  /// Indexed by [tier][op][pattern][locality].
  uint64_t bytes[kNumTiers][2][2][2] = {};

  uint64_t TotalBytes() const;
  uint64_t TierBytes(Tier t) const;
  uint64_t LocalityBytes(Locality loc) const;
  /// Fraction of DRAM+PM traffic that was remote; the paper reports >43%
  /// remote without NaDP. Returns 0.0 when no DRAM/PM bytes moved (a phase
  /// that only touched SSD/network, or an empty phase).
  double RemoteFraction() const;

  /// Counter-wise arithmetic: counters are monotonic, so subtracting an
  /// earlier snapshot from a later one yields the traffic of the interval
  /// (this is what PhaseSpan records per phase).
  TrafficSnapshot operator-(const TrafficSnapshot& other) const;
  TrafficSnapshot& operator+=(const TrafficSnapshot& other);
  bool operator==(const TrafficSnapshot& other) const;
};

/// Execution context of one simulated worker thread within a parallel phase.
struct WorkerCtx {
  int worker = 0;          ///< stable worker index within the pool
  int cpu_socket = 0;      ///< socket this worker is bound to
  int active_threads = 1;  ///< number of workers concurrently using memory
  SimClock* clock = nullptr;
  /// Fault-draw cursor: each fault-aware charge through this context consumes
  /// one site in the worker's draw stream. Resets with the context (one
  /// parallel phase), so a fixed seed replays the same faults per phase.
  uint64_t fault_site = 0;
};

/// The simulated heterogeneous-memory machine.
class MemorySystem {
 public:
  MemorySystem(TopologyConfig topo, ProfileSet profiles);

  /// Convenience: default topology + calibrated default profiles.
  static std::unique_ptr<MemorySystem> CreateDefault();

  const Topology& topology() const { return topology_; }
  const CostModel& cost_model() const { return cost_model_; }

  // --- Capacity accounting -------------------------------------------------

  /// Reserves `bytes` on (tier, socket); fails with CapacityExceeded when the
  /// simulated device is full. This is how "cannot run DRAM-only on
  /// billion-scale graphs" manifests.
  Status Reserve(Placement p, size_t bytes);
  void Release(Placement p, size_t bytes);

  size_t UsedBytes(Tier tier, int socket) const;
  size_t CapacityBytes(Tier tier) const {
    return topology_.config().TierCapacityPerSocket(tier);
  }
  /// Free bytes on the given device, saturating at 0.
  size_t AvailableBytes(Tier tier, int socket) const;

  // --- Charging ------------------------------------------------------------

  /// Computes simulated seconds for a classified access from `cpu_socket` to
  /// data placed at `p`, updates traffic counters, and returns the cost.
  double AccessSeconds(Placement p, int cpu_socket, MemOp op, Pattern pat,
                       size_t bytes, size_t accesses, int active_threads);

  /// Charges an access run against the worker's clock.
  void ChargeAccess(WorkerCtx* ctx, Placement p, MemOp op, Pattern pat, size_t bytes,
                    size_t accesses = 1);

  /// Charges `ops` multiply-accumulate operations against the worker's clock.
  void ChargeCompute(WorkerCtx* ctx, size_t ops);

  // --- Fault injection -----------------------------------------------------
  //
  // With no plan installed (or plan.enabled == false) every fault-aware API
  // below reduces exactly to its charge-only counterpart: same AccessSeconds
  // calls, same traffic, same clock advances — the disabled-injector path is
  // byte-identical to the seed simulation.

  /// Installs `plan` and zeroes the fault counters.
  void SetFaultPlan(FaultPlan plan) { injector_.SetPlan(plan); }
  const FaultPlan& fault_plan() const { return injector_.plan(); }
  bool faults_enabled() const { return injector_.enabled(); }
  FaultInjector& faults() { return injector_; }

  /// Zeroes the counters and the execute-epoch cursor: called at run start so
  /// two identical runs replay identical draw keys.
  void ResetFaults() {
    injector_.ResetCounters();
    fault_epoch_.store(0, std::memory_order_relaxed);
  }
  FaultCounters Faults() const { return injector_.Counters(); }

  /// Distinct fault-site base for one execute. Per-execute WorkerCtxs start
  /// their fault_site cursor here; without it every execute would replay the
  /// same (stream, site=0) draw. Executes within a run are serial, so the
  /// sequence — and thus every draw key — is deterministic per run.
  uint64_t NextFaultEpoch() {
    return fault_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Outcome of one fault-aware access attempt.
  struct FaultDraw {
    FaultKind kind = FaultKind::kNone;
    /// Simulated seconds the attempt cost. kNone: the plain access cost.
    /// kTransientStall: access cost plus the stall penalty (data moved; the
    /// stall is already counted as retried). kMediaError: the wasted attempt
    /// (traffic charged, no data). kTimeout: the timeout wait (no traffic).
    double seconds = 0.0;
  };

  /// Analytic fault-aware access: samples the plan at (stream, site, attempt)
  /// and returns the attempt's cost. The caller owns recovery of media errors
  /// and timeouts (and their retried/degraded/surfaced bucketing).
  FaultDraw TryAccessSeconds(Placement p, int cpu_socket, MemOp op, Pattern pat,
                             size_t bytes, size_t accesses, int active_threads,
                             uint64_t stream, uint64_t site, uint32_t attempt);

  /// Fault-aware ChargeAccess: one attempt, drawn at the worker's stream and
  /// next fault_site, charged to the worker's clock. OK when data moved
  /// (kNone or an absorbed stall); IOError on a media error or timeout, with
  /// the wasted attempt charged and recovery left to the caller.
  Status TryChargeAccess(WorkerCtx* ctx, Placement p, MemOp op, Pattern pat,
                         size_t bytes, size_t accesses = 1);

  /// Bounded retry with exponential backoff over TryChargeAccess: one fault
  /// site, attempts 0..max_retries, backoff waits charged to the clock and
  /// counted as fault penalty. Non-final faults count as retried; the final
  /// exhausting fault is returned un-bucketed (the caller records degraded or
  /// surfaced, preserving injected == retried + degraded + surfaced).
  Status ChargeAccessWithRetry(WorkerCtx* ctx, Placement p, MemOp op,
                               Pattern pat, size_t bytes, size_t accesses,
                               const FaultRetryPolicy& policy);

  /// Tail-stall hook for deep charge loops with no recovery story (the NaDP
  /// gather path): one stall-only draw per call; on a hit the worker's clock
  /// absorbs plan.tail_stall_fraction * base_seconds. No-op when disabled.
  void ChargeTailStall(WorkerCtx* ctx, Tier tier, double base_seconds);

  // --- Durability ----------------------------------------------------------

  /// Cost of one persist barrier against `tier`: the tier's local access
  /// latency plus the profile's persist_barrier_ns ordering cost. Increments
  /// the barrier counter (the durable log's flush/ordering traffic).
  double PersistBarrierSeconds(Tier tier);

  /// Charges one persist barrier to the worker's clock.
  void ChargePersistBarrier(WorkerCtx* ctx, Tier tier);

  /// Persist barriers charged since the last ResetTraffic.
  uint64_t PersistBarriers() const {
    return persist_barriers_.load(std::memory_order_relaxed);
  }

  // --- Statistics ----------------------------------------------------------

  void ResetTraffic();
  TrafficSnapshot Traffic() const;

 private:
  Topology topology_;
  CostModel cost_model_;
  FaultInjector injector_;
  std::atomic<uint64_t> fault_epoch_{0};

  mutable std::mutex capacity_mu_;
  // used_[tier][socket]
  std::vector<std::array<size_t, kNumTiers>> used_by_socket_;

  // traffic_[tier][op][pattern][locality]
  std::atomic<uint64_t> traffic_[kNumTiers][2][2][2] = {};
  std::atomic<uint64_t> persist_barriers_{0};
};

}  // namespace omega::memsim
