// Core enums describing a memory access in the heterogeneous-memory simulator.
//
// Every charge against the simulated clock is classified along four axes:
// which device tier served it, whether it read or wrote, whether the stream
// was sequential or random, and whether the accessing core was on the same
// NUMA socket as the data. These four axes are exactly the distinctions the
// OMeGa paper's mechanisms (EaTA/WoFP/NaDP/ASL) act upon.

#pragma once

namespace omega::memsim {

/// Device tier of a placed buffer. kPim models UPMEM/ALPHA-PIM-style
/// processing-in-memory DIMMs: per-bank MRAM reachable from the host only
/// through a gang-DMA link (charged as kPim traffic), with the bank-local
/// compute rate carried by ProfileSet::pim_bank_ops_per_second.
enum class Tier { kDram = 0, kPm = 1, kSsd = 2, kNetwork = 3, kPim = 4 };
inline constexpr int kNumTiers = 5;

/// Direction of an access.
enum class MemOp { kRead = 0, kWrite = 1 };

/// Stream shape of an access run.
enum class Pattern { kSequential = 0, kRandom = 1 };

/// NUMA relation between the accessing core and the data's socket.
enum class Locality { kLocal = 0, kRemote = 1 };

inline const char* TierName(Tier t) {
  switch (t) {
    case Tier::kDram:
      return "DRAM";
    case Tier::kPm:
      return "PM";
    case Tier::kSsd:
      return "SSD";
    case Tier::kNetwork:
      return "NET";
    case Tier::kPim:
      return "PIM";
  }
  return "?";
}

inline const char* MemOpName(MemOp op) { return op == MemOp::kRead ? "read" : "write"; }

inline const char* PatternName(Pattern p) {
  return p == Pattern::kSequential ? "seq" : "rand";
}

inline const char* LocalityName(Locality l) {
  return l == Locality::kLocal ? "local" : "remote";
}

}  // namespace omega::memsim
