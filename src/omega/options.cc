#include "omega/options.h"

namespace omega::engine {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kOmega:
      return "OMeGa";
    case SystemKind::kOmegaDram:
      return "OMeGa-DRAM";
    case SystemKind::kOmegaPm:
      return "OMeGa-PM";
    case SystemKind::kProneDram:
      return "ProNE-DRAM";
    case SystemKind::kProneHm:
      return "ProNE-HM";
    case SystemKind::kGinex:
      return "Ginex";
    case SystemKind::kMariusGnn:
      return "MariusGNN";
    case SystemKind::kDistGer:
      return "DistGER";
    case SystemKind::kDistDgl:
      return "DistDGL";
  }
  return "?";
}

}  // namespace omega::engine
