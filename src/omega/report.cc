#include "omega/report.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace omega::engine {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string RuntimeCell(double seconds, bool failed) {
  if (failed) return "OOM";
  if (seconds >= 86400.0) return "> 1 day";
  return HumanSeconds(seconds);
}

void PrintExperimentHeader(const std::string& id, const std::string& description) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), description.c_str());
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

}  // namespace omega::engine
