#include "omega/report.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace omega::engine {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string RuntimeCell(double seconds, bool failed) {
  if (failed) return "OOM";
  if (seconds >= 86400.0) return "> 1 day";
  return HumanSeconds(seconds);
}

std::string ExperimentHeaderString(const std::string& id,
                                   const std::string& description) {
  return "\n=== " + id + ": " + description + " ===\n";
}

void PrintExperimentHeader(const std::string& id, const std::string& description) {
  std::fputs(ExperimentHeaderString(id, description).c_str(), stdout);
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

namespace {

// Minimal JSON building blocks. Only what RunReport needs: escaped strings
// (the shared JsonQuoted), round-trippable doubles, bools, u64, and manual
// object/array punctuation.
std::string JsonString(const std::string& s) { return JsonQuoted(s); }

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonU64(uint64_t v) { return std::to_string(v); }

std::string FaultCountersToJson(const memsim::FaultCounters& f, bool enabled,
                                const std::string& indent) {
  std::string out = "{\n";
  const std::string in = indent + "  ";
  out += in + "\"enabled\": " + (enabled ? "true" : "false") + ",\n";
  out += in + "\"stalls\": " + JsonU64(f.stalls) + ",\n";
  out += in + "\"media_errors\": " + JsonU64(f.media) + ",\n";
  out += in + "\"timeouts\": " + JsonU64(f.timeouts) + ",\n";
  out += in + "\"machine_losses\": " + JsonU64(f.machine_losses) + ",\n";
  out += in + "\"injected\": " + JsonU64(f.InjectedTotal()) + ",\n";
  out += in + "\"retried\": " + JsonU64(f.retried) + ",\n";
  out += in + "\"degraded\": " + JsonU64(f.degraded) + ",\n";
  out += in + "\"surfaced\": " + JsonU64(f.surfaced) + ",\n";
  out += in + "\"recovered\": " + JsonU64(f.recovered) + ",\n";
  out += in + "\"penalty_seconds\": " + JsonDouble(f.PenaltySeconds()) + "\n";
  out += indent + "}";
  return out;
}

std::string PhaseToJson(const exec::PhaseRecord& p, const std::string& indent) {
  using memsim::Locality;
  using memsim::Tier;
  std::string out = indent + "{\n";
  const std::string in = indent + "  ";
  out += in + "\"name\": " + JsonString(p.name) + ",\n";
  out += in + "\"sim_seconds\": " + JsonDouble(p.sim_seconds) + ",\n";
  out += in + "\"wall_seconds\": " + JsonDouble(p.wall_seconds) + ",\n";
  out += in + "\"aux\": " + (p.aux ? "true" : "false") + ",\n";
  out += in + "\"bytes\": {";
  for (int t = 0; t < memsim::kNumTiers; ++t) {
    const Tier tier = static_cast<Tier>(t);
    out += std::string(t == 0 ? "" : ", ") + JsonString(TierName(tier)) + ": " +
           JsonU64(p.TierBytes(tier));
  }
  out += "},\n";
  out += in + "\"total_bytes\": " + JsonU64(p.TotalBytes()) + ",\n";
  out += in + "\"local_bytes\": " +
         JsonU64(p.traffic.LocalityBytes(Locality::kLocal)) + ",\n";
  out += in + "\"remote_bytes\": " +
         JsonU64(p.traffic.LocalityBytes(Locality::kRemote)) + ",\n";
  out += in + "\"remote_fraction\": " + JsonDouble(p.remote_fraction);
  if (p.fetch_seconds > 0.0) {
    // Async-staging accounting: emitted only for phases that overlapped
    // staging fetches with compute (never with --async-staging off).
    out += ",\n" + in + "\"fetch_seconds\": " + JsonDouble(p.fetch_seconds);
    out += ",\n" + in + "\"hidden_seconds\": " + JsonDouble(p.hidden_seconds);
    out += ",\n" + in +
           "\"overlap_efficiency\": " + JsonDouble(p.OverlapEfficiency());
  }
  if (p.cache_hits + p.cache_misses + p.cache_evictions > 0) {
    // Hot-cache accounting: emitted only for phases that fetched through a
    // serving HotCache (never for the training phases).
    out += ",\n" + in + "\"cache\": {\"hits\": " + JsonU64(p.cache_hits) +
           ", \"misses\": " + JsonU64(p.cache_misses) +
           ", \"evictions\": " + JsonU64(p.cache_evictions) +
           ", \"hit_rate\": " + JsonDouble(p.CacheHitRate()) + "}";
  }
  if (p.plan_hits + p.plan_misses + p.plan_invalidations > 0) {
    // Plan-cache accounting: emitted only for phases that looked up an SpMM
    // inspector plan (the engine's SpMM and plan.build phases).
    out += ",\n" + in + "\"plan\": {\"hits\": " + JsonU64(p.plan_hits) +
           ", \"misses\": " + JsonU64(p.plan_misses) +
           ", \"invalidations\": " + JsonU64(p.plan_invalidations) + "}";
  }
  if (p.ckpt_entries + p.ckpt_bytes + p.persist_barriers > 0) {
    // Checkpoint-log accounting: emitted only for the durable phases
    // (ckpt.write / ckpt.restore / durable sync rounds).
    out += ",\n" + in + "\"ckpt\": {\"entries\": " + JsonU64(p.ckpt_entries) +
           ", \"bytes\": " + JsonU64(p.ckpt_bytes) +
           ", \"persist_barriers\": " + JsonU64(p.persist_barriers) + "}";
  }
  if (p.faults.InjectedTotal() > 0) {
    out += ",\n" + in + "\"faults\": " +
           FaultCountersToJson(p.faults, true, in);
  }
  out += "\n" + indent + "}";
  return out;
}

}  // namespace

std::string ReportToJson(const RunReport& report) {
  std::string out = "{\n";
  out += "  \"system\": " + JsonString(report.system) + ",\n";
  out += "  \"dataset\": " + JsonString(report.dataset) + ",\n";
  out += "  \"failed\": " + std::string(report.failed ? "true" : "false") + ",\n";
  if (report.failed) {
    out += "  \"failure\": " + JsonString(report.failure) + ",\n";
  }
  out += "  \"read_seconds\": " + JsonDouble(report.read_seconds) + ",\n";
  out += "  \"factorize_seconds\": " + JsonDouble(report.factorize_seconds) + ",\n";
  out += "  \"propagate_seconds\": " + JsonDouble(report.propagate_seconds) + ",\n";
  out += "  \"embed_seconds\": " + JsonDouble(report.embed_seconds) + ",\n";
  out += "  \"total_seconds\": " + JsonDouble(report.total_seconds) + ",\n";
  if (report.ckpt_seconds > 0.0 || report.recovery_seconds > 0.0) {
    // Durability accounting: emitted only for runs that checkpointed or
    // recovered (never with durability off, keeping seed outputs stable).
    out += "  \"ckpt_seconds\": " + JsonDouble(report.ckpt_seconds) + ",\n";
    out += "  \"recovery_seconds\": " + JsonDouble(report.recovery_seconds) +
           ",\n";
  }
  out += "  \"remote_fraction\": " + JsonDouble(report.remote_fraction) + ",\n";
  out += "  \"fault\": " +
         FaultCountersToJson(report.faults, report.faults_enabled, "  ") +
         ",\n";
  out += "  \"link_auc\": " +
         (report.link_auc.has_value() ? JsonDouble(*report.link_auc)
                                      : std::string("null")) +
         ",\n";
  out += "  \"phases\": [";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n") + PhaseToJson(report.phases[i], "    ");
  }
  out += report.phases.empty() ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

std::string ReportsToJson(const std::vector<RunReport>& reports) {
  std::string out = "[";
  for (size_t i = 0; i < reports.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n") + ReportToJson(reports[i]);
  }
  out += reports.empty() ? "]" : "\n]";
  return out;
}

}  // namespace omega::engine
