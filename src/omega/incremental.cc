#include "omega/incremental.h"

#include <algorithm>
#include <cmath>

#include "graph/traversal.h"
#include "sched/entropy.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"

namespace omega::engine {

namespace {

using memsim::MemOp;
using memsim::Pattern;
using memsim::Tier;

bool OmegaFamily(SystemKind s) {
  return s == SystemKind::kOmega || s == SystemKind::kOmegaDram ||
         s == SystemKind::kOmegaPm;
}

/// Splits `ranges` into at most `parts` contiguous groups balanced by nnz.
/// Deterministic: depends only on the ranges, their nnz, and `parts`.
std::vector<sched::Workload> SplitRanges(const graph::CsdbMatrix& a,
                                         const std::vector<sched::RowRange>& ranges,
                                         double beta, int parts) {
  std::vector<sched::Workload> out;
  if (ranges.empty() || parts <= 0) return out;
  sched::Workload all;
  all.ranges = ranges;
  sched::RefreshCounts(a, &all);
  const uint64_t target = (all.nnz + parts - 1) / parts;

  sched::Workload cur;
  uint64_t cur_nnz = 0;
  auto flush = [&]() {
    if (cur.ranges.empty()) return;
    sched::RefreshCounts(a, &cur);
    sched::AnnotateWorkload(a, beta, &cur);
    out.push_back(std::move(cur));
    cur = sched::Workload();
    cur_nnz = 0;
  };
  for (const sched::RowRange& r : ranges) {
    for (uint32_t row = r.begin; row < r.end;) {
      // Extend the current group row-by-row until it reaches the nnz target;
      // coalesce adjacent rows into one range.
      uint32_t end = row;
      while (end < r.end &&
             (cur_nnz < target || static_cast<int>(out.size()) + 1 >= parts)) {
        auto cursor = a.Rows(end);
        cur_nnz += cursor.degree();
        ++end;
      }
      if (end > row) {
        if (!cur.ranges.empty() && cur.ranges.back().end == row) {
          cur.ranges.back().end = end;
        } else {
          cur.ranges.push_back({row, end});
        }
        row = end;
      }
      if (cur_nnz >= target && static_cast<int>(out.size()) + 1 < parts) flush();
    }
  }
  flush();
  return out;
}

}  // namespace

DynamicEmbedder::DynamicEmbedder(graph::Graph base, const EngineOptions& options,
                                 std::string dataset, int num_workers)
    : mutable_(std::move(base), num_workers),
      options_(options),
      dataset_(std::move(dataset)) {}

numa::NadpOptions DynamicEmbedder::NadpOptionsFor(const exec::Context& ctx) const {
  // Mirrors RunOmegaFamily's placement switch so the refresh path charges
  // against the same tiers the training SpMMs did.
  numa::NadpOptions nadp;
  nadp.num_threads = ctx.threads();
  nadp.allocator = options_.features.allocator;
  nadp.beta = options_.beta;
  nadp.enabled = options_.features.use_nadp;
  nadp.use_wofp = options_.features.use_wofp;
  nadp.wofp = options_.features.wofp;
  switch (options_.system) {
    case SystemKind::kOmegaDram:
      nadp.sparse_tier = Tier::kDram;
      nadp.dense_tier = Tier::kDram;
      nadp.result_tier = Tier::kDram;
      break;
    case SystemKind::kOmegaPm:
      nadp.sparse_tier = Tier::kPm;
      nadp.dense_tier = Tier::kPm;
      nadp.result_tier = Tier::kPm;
      nadp.wofp.cache_placement = {Tier::kPm, 0};
      break;
    default:
      nadp.sparse_tier = Tier::kPm;
      nadp.dense_tier = Tier::kPm;
      nadp.result_tier = Tier::kDram;
      break;
  }
  return nadp;
}

Status DynamicEmbedder::Train(const exec::Context& ctx) {
  if (!OmegaFamily(options_.system)) {
    return Status::InvalidArgument(
        "DynamicEmbedder supports the OMeGa-family systems only");
  }
  // Fold any pending mutations into the snapshot first (uncharged: the full
  // run's graph-read phase re-prices the whole structure anyway).
  if (mutable_.pending() > 0) mutable_.Synchronize();

  EngineOptions opts = options_;
  opts.prone.capture = &capture_;
  OMEGA_ASSIGN_OR_RETURN(RunReport report,
                         RunEmbedding(mutable_.graph(), dataset_, opts, ctx));
  train_report_ = std::move(report);
  embedding_ = train_report_.embedding;
  adjacency_ = graph::CsdbMatrix::FromGraph(mutable_.graph());
  propagation_ = embed::BuildPropagationMatrix(adjacency_);
  // Warm the stage-2 plan so the first Refresh exercises the delta
  // invalidation path instead of a cold build.
  plan_cache_.Get(propagation_, NadpOptionsFor(ctx), ctx);
  return Status::OK();
}

Result<RefreshReport> DynamicEmbedder::Refresh(const exec::Context& ctx,
                                               bool refresh_all_rows) {
  if (!trained()) {
    return Status::InvalidArgument("Refresh called before Train");
  }
  memsim::MemorySystem* ms = ctx.ms();
  if (ms == nullptr) return Status::InvalidArgument("context has no MemorySystem");
  const int threads = std::max(1, ctx.threads());
  const numa::NadpOptions nadp = NadpOptionsFor(ctx);
  sparse::SpmmPlacements placements;
  placements.index = {Tier::kDram, 0};
  placements.sparse = {nadp.sparse_tier, 0};
  placements.dense = {nadp.dense_tier, 0};
  placements.result = {nadp.result_tier, 0};

  RefreshReport report;
  exec::PhaseSpan span(ctx, "dynamic.refresh");

  // ---- 1. Op-log merge + graph rebuild (graph layer). ----------------------
  memsim::SimClock sync_clock;
  memsim::WorkerCtx serial_ctx;
  serial_ctx.active_threads = 1;
  serial_ctx.clock = &sync_clock;
  graph::GraphDelta delta = mutable_.Synchronize(ms, &serial_ctx);
  report.sync_seconds = sync_clock.seconds();
  report.epoch = mutable_.epoch();
  report.mutations_applied = delta.applied.size();
  report.mutations_rejected = delta.rejected_total();
  report.touched_nodes = delta.touched_nodes.size();
  if (delta.empty() && !refresh_all_rows) {
    report.no_op = true;
    report.total_seconds = report.sync_seconds;
    span.AddSimSeconds(report.total_seconds);
    return report;
  }

  // ---- 2. CSDB delta overlay + propagation rebuild (sparse layer). ---------
  memsim::SimClock delta_clock;
  serial_ctx.clock = &delta_clock;
  OMEGA_ASSIGN_OR_RETURN(
      sparse::CsdbDeltaResult dres,
      sparse::ApplyDelta(adjacency_, mutable_.graph(), delta.touched_nodes, ms,
                         &serial_ctx));
  report.csdb_touched_rows = dres.touched_rows;
  report.csdb_reused_rows = dres.reused_rows;
  graph::CsdbMatrix new_adjacency = std::move(dres.matrix);
  graph::CsdbMatrix new_propagation = embed::BuildPropagationMatrix(new_adjacency);
  // Renormalization: s_uv = a_uv * d_u^-1/2 * d_v^-1/2 changes only where an
  // endpoint's degree changed, i.e. in touched rows and touched columns — the
  // symmetric structure makes those the same arc set, traversed twice (once
  // row-wise in place, once column-wise through the row index).
  uint64_t touched_nnz = 0;
  for (const graph::NodeId v : delta.touched_nodes) {
    touched_nnz += mutable_.graph().degree(v) + 1;  // + the diagonal entry
  }
  ms->ChargeAccess(&serial_ctx, placements.sparse, MemOp::kRead,
                   Pattern::kSequential, touched_nnz * 8);
  ms->ChargeAccess(&serial_ctx, placements.sparse, MemOp::kWrite,
                   Pattern::kRandom, touched_nnz * 8,
                   std::max<uint64_t>(1, 2 * delta.touched_nodes.size()));
  ms->ChargeCompute(&serial_ctx,
                    touched_nnz * 8 + delta.touched_nodes.size() * 4);
  report.delta_seconds = delta_clock.seconds();

  // ---- 3. Plan-cache invalidation + re-warm. -------------------------------
  const uint64_t hits0 = plan_cache_.hits();
  const uint64_t misses0 = plan_cache_.misses();
  const uint64_t inval0 = plan_cache_.invalidations();
  report.plan_slots_affected =
      plan_cache_.InvalidateDelta(propagation_, new_propagation);
  const numa::NadpPlan& plan = plan_cache_.Get(new_propagation, nadp, ctx);
  const bool plan_rebuilt = plan_cache_.misses() > misses0;
  span.AddPlanCounters(plan_cache_.hits() - hits0, plan_cache_.misses() - misses0,
                       plan_cache_.invalidations() - inval0);

  // ---- 4. Re-permute the captured recurrence state if the order moved. -----
  const size_t n = new_adjacency.num_rows();
  const size_t d = capture_.r0.cols();
  const std::vector<graph::NodeId>& new_perm = new_adjacency.perm();
  memsim::SimClock refresh_clock;
  serial_ctx.clock = &refresh_clock;
  if (capture_.perm != new_perm) {
    std::vector<uint32_t> new_row_of_node(n);
    for (size_t r = 0; r < n; ++r) {
      new_row_of_node[new_perm[r]] = static_cast<uint32_t>(r);
    }
    auto repermute = [&](linalg::DenseMatrix* m) {
      linalg::DenseMatrix out(m->rows(), m->cols());
      for (size_t c = 0; c < m->cols(); ++c) {
        const float* src = m->ColData(c);
        float* dst = out.ColData(c);
        for (size_t r = 0; r < m->rows(); ++r) {
          dst[new_row_of_node[capture_.perm[r]]] = src[r];
        }
      }
      *m = std::move(out);
    };
    repermute(&capture_.r0);
    for (linalg::DenseMatrix& t : capture_.terms) repermute(&t);
    capture_.perm = new_perm;
    const uint64_t mat_bytes = (1 + capture_.terms.size()) * n * d * 4;
    ms->ChargeAccess(&serial_ctx, placements.dense, MemOp::kRead,
                     Pattern::kSequential, mat_bytes);
    ms->ChargeAccess(&serial_ctx, placements.dense, MemOp::kWrite,
                     Pattern::kRandom, mat_bytes,
                     (1 + capture_.terms.size()) * n);
  }

  // ---- 5. k-hop affected set (multi-source BFS over the new graph). --------
  const size_t order = capture_.coefficients.size();  // K terms: T_0..T_{K-1}
  const graph::Graph& g = mutable_.graph();
  std::vector<uint32_t> dist;
  if (refresh_all_rows) {
    dist.assign(n, 0);
  } else {
    dist = graph::BfsDistances(g, delta.touched_nodes);
    uint64_t scanned = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != UINT32_MAX && dist[v] + 1 < order) scanned += g.degree(v);
    }
    ms->ChargeAccess(&serial_ctx, placements.index, MemOp::kRead,
                     Pattern::kRandom, scanned * 8,
                     std::max<uint64_t>(1, scanned));
    ms->ChargeCompute(&serial_ctx, scanned * 2);
  }
  // row_level[r]: BFS depth of the node CSDB row r embeds (UINT32_MAX = out
  // of every ball).
  std::vector<uint32_t> row_level(n);
  for (size_t r = 0; r < n; ++r) row_level[r] = dist[new_perm[r]];

  // ---- 6. Per-level recurrence update restricted to ball_k. ----------------
  // Priced like NaDP (Fig. 10): each worker charges its own socket's devices
  // at socket-group contention, not the whole pool against one socket.
  memsim::ClockGroup clocks(static_cast<size_t>(threads));
  std::vector<memsim::WorkerCtx> wctx(threads);
  std::vector<int> socket_threads(
      std::max(1, ms->topology().num_sockets()), 0);
  for (int t = 0; t < threads; ++t) {
    ++socket_threads[ms->topology().SocketOfWorker(t, threads)];
  }
  std::vector<sparse::SpmmPlacements> worker_placements(threads, placements);
  for (int t = 0; t < threads; ++t) {
    const int s = ms->topology().SocketOfWorker(t, threads);
    wctx[t].worker = t;
    wctx[t].cpu_socket = s;
    wctx[t].active_threads = socket_threads[s];
    wctx[t].clock = &clocks.clock(t);
    worker_placements[t].index.socket = s;
    worker_placements[t].sparse.socket = s;
    worker_placements[t].dense.socket = s;
    worker_placements[t].result.socket = s;
  }
  double spmm_seconds = 0.0;
  // A structural delta rebuilt the plan, so its WoFP stores were re-staged:
  // charge that warm-up once per refresh (the frames then stay resident for
  // every level below — unlike NadpExecute, there is no per-call-planning
  // parity to preserve here, so the build is not replayed per SpMM).
  if (plan_rebuilt && nadp.use_wofp && nadp.wofp.charge_build) {
    double replay_max = 0.0;
    for (int t = 0; t < threads; ++t) {
      if (const prefetch::WofpPrefetcher* cache = plan.cache(t)) {
        const double before = clocks.clock(t).seconds();
        cache->ReplayBuildCharges(&wctx[t]);
        replay_max = std::max(replay_max, clocks.clock(t).seconds() - before);
      }
    }
    spmm_seconds += replay_max;
  }
  linalg::DenseMatrix tmp(n, d);
  std::vector<uint32_t> rows;
  for (size_t k = 1; k < order; ++k) {
    rows.clear();
    std::vector<sched::RowRange> ranges;
    for (uint32_t r = 0; r < n; ++r) {
      if (row_level[r] <= k) {
        rows.push_back(r);
        if (!ranges.empty() && ranges.back().end == r) {
          ++ranges.back().end;
        } else {
          ranges.push_back({r, r + 1});
        }
      }
    }
    if (rows.empty()) continue;

    const std::vector<sched::Workload> parts =
        SplitRanges(new_propagation, ranges, options_.beta, threads);
    const linalg::DenseMatrix& prev = k == 1 ? capture_.r0 : capture_.terms[k - 2];
    std::vector<double> before(threads);
    for (int t = 0; t < threads; ++t) before[t] = clocks.clock(t).seconds();
    auto run_part = [&](size_t t) {
      if (t >= parts.size() || parts[t].empty()) return;
      sparse::ComputeWorkloadCsdb(new_propagation, prev, &tmp, parts[t]);
      sparse::ChargeWorkloadCsdb(new_propagation, d, parts[t],
                                 worker_placements[t], ms, &wctx[t],
                                 plan.cache(t));
    };
    if (ctx.pool() != nullptr && threads > 1) {
      ctx.pool()->ParallelFor(static_cast<size_t>(threads),
                              [&](size_t, size_t begin, size_t end) {
                                for (size_t t = begin; t < end; ++t) run_part(t);
                              });
    } else {
      for (int t = 0; t < threads; ++t) run_part(static_cast<size_t>(t));
    }
    double level_max = 0.0;
    for (int t = 0; t < threads; ++t) {
      level_max = std::max(level_max, clocks.clock(t).seconds() - before[t]);
    }
    spmm_seconds += level_max;

    // In-place term update — exact scalar replication of the recurrence in
    // embed/chebyshev.cc (zero-init accumulator, ascending AddScaled order),
    // so refreshed rows match a from-scratch recompute bit for bit.
    linalg::DenseMatrix& t_k = capture_.terms[k - 1];
    const linalg::DenseMatrix* prev2 =
        k >= 2 ? (k == 2 ? &capture_.r0 : &capture_.terms[k - 3]) : nullptr;
    auto update_rows = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows[i];
        for (size_t c = 0; c < d; ++c) {
          if (k == 1) {
            t_k.At(r, c) = tmp.At(r, c) * -1.0f;
          } else {
            float acc = 0.0f;
            acc += -2.0f * tmp.At(r, c);
            acc += -1.0f * prev2->At(r, c);
            t_k.At(r, c) = acc;
          }
        }
      }
    };
    if (ctx.pool() != nullptr && threads > 1 && rows.size() >= 256) {
      ctx.pool()->ParallelFor(rows.size(), [&](size_t, size_t begin, size_t end) {
        update_rows(begin, end);
      });
    } else {
      update_rows(0, rows.size());
    }
    const uint64_t pass_bytes = rows.size() * d * 4;
    ms->ChargeAccess(&serial_ctx, placements.dense, MemOp::kRead,
                     Pattern::kSequential, (k == 1 ? 1 : 2) * pass_bytes);
    ms->ChargeAccess(&serial_ctx, placements.dense, MemOp::kWrite,
                     Pattern::kSequential, pass_bytes);
    ms->ChargeCompute(&serial_ctx, rows.size() * d * 2);
  }

  // ---- 7. Re-accumulate + re-normalize the affected output rows. -----------
  rows.clear();
  for (uint32_t r = 0; r < n; ++r) {
    if (row_level[r] <= order - 1) rows.push_back(r);
  }
  report.affected_rows = rows.size();
  report.refreshed_nodes.reserve(rows.size());
  for (const uint32_t r : rows) report.refreshed_nodes.push_back(new_perm[r]);
  std::sort(report.refreshed_nodes.begin(), report.refreshed_nodes.end());

  auto output_rows = [&](size_t begin, size_t end) {
    std::vector<float> row_buf(d);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows[i];
      for (size_t c = 0; c < d; ++c) {
        float acc = 0.0f;
        acc += static_cast<float>(capture_.coefficients[0]) * capture_.r0.At(r, c);
        for (size_t k = 1; k < order; ++k) {
          acc += static_cast<float>(capture_.coefficients[k]) *
                 capture_.terms[k - 1].At(r, c);
        }
        row_buf[c] = acc;
      }
      if (options_.prone.l2_normalize_rows) {
        // Same arithmetic as ProneEmbed's normalize_rows.
        double norm2 = 0.0;
        for (size_t c = 0; c < d; ++c) {
          const double v = row_buf[c];
          norm2 += v * v;
        }
        const float inv =
            norm2 > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
        for (size_t c = 0; c < d; ++c) row_buf[c] *= inv;
      }
      const graph::NodeId node = new_perm[r];
      for (size_t c = 0; c < d; ++c) embedding_.At(node, c) = row_buf[c];
    }
  };
  if (ctx.pool() != nullptr && threads > 1 && rows.size() >= 256) {
    ctx.pool()->ParallelFor(rows.size(), [&](size_t, size_t begin, size_t end) {
      output_rows(begin, end);
    });
  } else {
    output_rows(0, rows.size());
  }
  const uint64_t out_bytes = rows.size() * d * 4;
  ms->ChargeAccess(&serial_ctx, placements.dense, MemOp::kRead,
                   Pattern::kSequential, (order + 1) * out_bytes);
  ms->ChargeAccess(&serial_ctx, placements.result, MemOp::kWrite,
                   Pattern::kSequential, out_bytes);
  ms->ChargeCompute(&serial_ctx, rows.size() * d * (2 * order + 3));

  report.refresh_seconds = spmm_seconds + refresh_clock.seconds();
  report.total_seconds =
      report.sync_seconds + report.delta_seconds + report.refresh_seconds;
  span.AddSimSeconds(report.total_seconds);

  // ---- 8. Commit the new epoch's sparse state. -----------------------------
  adjacency_ = std::move(new_adjacency);
  propagation_ = std::move(new_propagation);
  return report;
}

}  // namespace omega::engine
