// Paper-style text reporting: aligned tables and series for the bench
// harnesses that regenerate each table/figure.

#pragma once

#include <string>
#include <vector>

#include "omega/engine.h"

namespace omega::engine {

/// Minimal aligned-column table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to content width.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.34 s", "OOM", "> 1 day" style formatting for runtime cells.
std::string RuntimeCell(double seconds, bool failed = false);

/// "\n=== id: description ===\n" banner naming the experiment.
std::string ExperimentHeaderString(const std::string& id,
                                   const std::string& description);

/// Prints a banner naming the experiment being regenerated.
void PrintExperimentHeader(const std::string& id, const std::string& description);

/// Geometric mean of positive ratios (used for "average speedup" claims).
double GeometricMean(const std::vector<double>& values);

/// Dependency-free JSON serialization of one RunReport: scalar timings,
/// remote fraction, link AUC (null when absent), failed/failure, and the
/// phases array with per-tier byte counts and per-phase remote fractions.
/// Doubles are emitted with %.17g so the values round-trip exactly.
std::string ReportToJson(const RunReport& report);

/// JSON array of reports (one run per element).
std::string ReportsToJson(const std::vector<RunReport>& reports);

}  // namespace omega::engine
