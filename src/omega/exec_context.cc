#include "omega/exec_context.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace omega::exec {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void TraceRecorder::Record(PhaseRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<PhaseRecord> TraceRecorder::TakeRecords() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseRecord> out = std::move(records_);
  records_.clear();
  return out;
}

std::vector<PhaseRecord> TraceRecorder::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

double TraceRecorder::TotalSimSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const PhaseRecord& r : records_) {
    if (!r.aux) total += r.sim_seconds;
  }
  return total;
}

Context::Context(memsim::MemorySystem* ms, ThreadPool* pool, int threads,
                 TraceRecorder* trace)
    : ms_(ms), pool_(pool), threads_(threads), trace_(trace) {
  OMEGA_CHECK(ms_ != nullptr) << "exec::Context requires a MemorySystem";
  if (threads_ <= 0) {
    threads_ = pool_ != nullptr ? static_cast<int>(pool_->size()) : 1;
  }
}

Context Context::WithThreads(int threads) const {
  return Context(ms_, pool_, threads, trace_);
}

Context Context::WithTrace(TraceRecorder* trace) const {
  return Context(ms_, pool_, threads_, trace);
}

PhaseSpan::PhaseSpan(const Context& ctx, std::string name, bool aux)
    : ctx_(ctx), name_(std::move(name)), aux_(aux) {
  if (ctx_.trace() != nullptr) {
    wall_start_ = MonotonicSeconds();
    traffic_start_ = ctx_.ms()->Traffic();
    faults_start_ = ctx_.ms()->Faults();
  }
}

PhaseSpan::~PhaseSpan() { Finish(); }

void PhaseSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  if (ctx_.trace() == nullptr) return;
  PhaseRecord record;
  record.name = std::move(name_);
  record.aux = aux_;
  record.sim_seconds = sim_seconds_;
  record.fetch_seconds = fetch_seconds_;
  record.hidden_seconds = hidden_seconds_;
  record.cache_hits = cache_hits_;
  record.cache_misses = cache_misses_;
  record.cache_evictions = cache_evictions_;
  record.plan_hits = plan_hits_;
  record.plan_misses = plan_misses_;
  record.plan_invalidations = plan_invalidations_;
  record.ckpt_entries = ckpt_entries_;
  record.ckpt_bytes = ckpt_bytes_;
  record.persist_barriers = persist_barriers_;
  record.wall_seconds = MonotonicSeconds() - wall_start_;
  record.traffic = ctx_.ms()->Traffic() - traffic_start_;
  record.remote_fraction = record.traffic.RemoteFraction();
  record.faults = ctx_.ms()->Faults() - faults_start_;
  ctx_.trace()->Record(std::move(record));
}

}  // namespace omega::exec
