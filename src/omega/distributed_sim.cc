#include "omega/distributed_sim.h"

#include <algorithm>

namespace omega::engine {

namespace {

using memsim::MemOp;
using memsim::Pattern;
using memsim::Placement;
using memsim::Tier;

// Per-machine phase time for memory traffic split evenly over the machine's
// threads (every machine is identical, so one machine's time is the phase).
double PhaseSeconds(memsim::MemorySystem* ms, Placement p, MemOp op, Pattern pat,
                    double total_bytes, double total_accesses, int threads) {
  const size_t per_thread_bytes = static_cast<size_t>(total_bytes / threads);
  const size_t per_thread_accesses =
      static_cast<size_t>(std::max(1.0, total_accesses / threads));
  return ms->AccessSeconds(p, 0, op, pat, per_thread_bytes, per_thread_accesses,
                           threads);
}

}  // namespace

Result<RunReport> RunDistributedFamily(const graph::Graph& g,
                                       const std::string& dataset,
                                       const EngineOptions& options,
                                       const exec::Context& outer_ctx,
                                       const DistParams& params) {
  memsim::MemorySystem* ms = outer_ctx.ms();
  ms->ResetTraffic();

  exec::TraceRecorder recorder;
  const exec::Context ctx = outer_ctx.WithTrace(&recorder);

  RunReport report;
  report.system = SystemName(options.system);
  report.dataset = dataset;

  const double n = g.num_nodes();
  const double arcs = g.num_arcs();
  const double d = options.prone.dim;
  const int machines = params.machines;
  const int threads = params.threads_per_machine;

  const Placement dram{Tier::kDram, Placement::kInterleaved};
  const Placement net{Tier::kNetwork, 0};
  const Placement ssd{Tier::kSsd, 0};

  // Every machine loads its graph partition from disk.
  {
    exec::PhaseSpan read_span(ctx, "read");
    report.read_seconds = PhaseSeconds(ms, ssd, MemOp::kRead, Pattern::kSequential,
                                       arcs * 16 / machines, 1, threads);
    read_span.AddSimSeconds(report.read_seconds);
  }

  if (options.system == SystemKind::kDistGer) {
    // Walk generation: each step issues a handful of random adjacency probes
    // (alias table, degree lookup, neighbor fetch, corpus buffering).
    const double steps =
        n * params.ger_walks_per_node * params.ger_walk_length / machines;
    const double walk_touches = steps * params.ger_walk_touches_per_step;
    double walk_seconds = 0.0;
    {
      exec::PhaseSpan walk_span(ctx, "walks");
      walk_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                  walk_touches * 64, walk_touches, threads);
      walk_span.AddSimSeconds(walk_seconds);
    }
    // Distributed SGNS: per step, `window` positive updates each touching two
    // embedding rows (read + write of d floats) — this traffic dominates.
    const double updates = steps * params.ger_window * 2.0;
    const double train_traffic = updates * d * 4 * 2;  // read + write
    double train_seconds = 0.0;
    {
      exec::PhaseSpan train_span(ctx, "train");
      train_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                   train_traffic / 2, updates, threads);
      train_seconds += PhaseSeconds(ms, dram, MemOp::kWrite, Pattern::kRandom,
                                    train_traffic / 2, updates, threads);
      train_seconds +=
          ms->cost_model().ComputeSeconds(static_cast<size_t>(updates * d * 4)) /
          threads;
      train_span.AddSimSeconds(train_seconds);
    }
    // Embedding synchronization between machines (information-oriented walks
    // keep this small — DistGER's advantage).
    const double sync_bytes = params.ger_sync_rounds * (n / machines) * d * 4;
    double comm_seconds = 0.0;
    {
      exec::PhaseSpan sync_span(ctx, "sync");
      comm_seconds = PhaseSeconds(ms, net, MemOp::kWrite, Pattern::kSequential,
                                  sync_bytes, 1, std::max(1, machines));
      sync_span.AddSimSeconds(comm_seconds);
    }
    report.factorize_seconds = walk_seconds;         // corpus generation
    report.propagate_seconds = train_seconds + comm_seconds;
  } else {
    // DistDGL: mini-batch sampling dominates (~80% of runtime per the paper).
    const double samples = n * params.dgl_fanout * params.dgl_epochs / machines;
    const double local = samples * (1.0 - params.dgl_remote_sample_fraction);
    const double remote = samples * params.dgl_remote_sample_fraction;
    double sample_seconds = 0.0;
    {
      exec::PhaseSpan sample_span(ctx, "sampling");
      sample_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                    local * 64, local, threads);
      // Remote samples are small messages over the interconnect.
      sample_seconds += PhaseSeconds(ms, net, MemOp::kRead, Pattern::kRandom,
                                     remote * 256, remote, threads);
      sample_span.AddSimSeconds(sample_seconds);
    }
    // Feature gathering (one d-float row per sample) + GNN compute.
    double gather_seconds = 0.0;
    double train_seconds = 0.0;
    {
      exec::PhaseSpan train_span(ctx, "train");
      gather_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                    samples * d * 4, samples, threads);
      train_seconds =
          ms->cost_model().ComputeSeconds(
              static_cast<size_t>(samples * params.dgl_train_ops_per_sample)) /
          threads;
      train_span.AddSimSeconds(gather_seconds + train_seconds);
    }
    // Gradient synchronization per mini-batch round.
    const double sync_bytes = params.dgl_sync_rounds * (n / machines) * d * 4;
    double comm_seconds = 0.0;
    {
      exec::PhaseSpan sync_span(ctx, "sync");
      comm_seconds = PhaseSeconds(ms, net, MemOp::kWrite, Pattern::kSequential,
                                  sync_bytes, 1, std::max(1, machines));
      sync_span.AddSimSeconds(comm_seconds);
    }
    report.factorize_seconds = sample_seconds;       // sampling phase
    report.propagate_seconds = gather_seconds + train_seconds + comm_seconds;
  }

  report.embed_seconds = report.factorize_seconds + report.propagate_seconds;
  report.total_seconds = report.read_seconds + report.embed_seconds;
  report.remote_fraction = 0.0;
  report.phases = recorder.TakeRecords();
  return report;
}

}  // namespace omega::engine
