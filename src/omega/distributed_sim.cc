#include "omega/distributed_sim.h"

#include <algorithm>

#include "durable/shared_log.h"

namespace omega::engine {

namespace {

using memsim::MemOp;
using memsim::Pattern;
using memsim::Placement;
using memsim::Tier;

// Per-machine phase time for memory traffic split evenly over the machine's
// threads (every machine is identical, so one machine's time is the phase).
double PhaseSeconds(memsim::MemorySystem* ms, Placement p, MemOp op, Pattern pat,
                    double total_bytes, double total_accesses, int threads) {
  const size_t per_thread_bytes = static_cast<size_t>(total_bytes / threads);
  const size_t per_thread_accesses =
      static_cast<size_t>(std::max(1.0, total_accesses / threads));
  return ms->AccessSeconds(p, 0, op, pat, per_thread_bytes, per_thread_accesses,
                           threads);
}

// Network phase under fault injection: the per-machine traffic is charged in
// `slices` independent slices so remote operations can time out individually.
// A timed-out (or corrupted) read slice waits out the timeout and then
// retries against the machine's local replica in DRAM; a faulted write
// (gradient/embedding sync) slice is resent over the interconnect. Both paths
// always recover — the faults cost time, never the run. With faults disabled
// this reduces to the exact single bulk PhaseSeconds charge.
double NetPhaseSeconds(memsim::MemorySystem* ms, Placement net,
                       Placement local_replica, MemOp op, Pattern pat,
                       double total_bytes, double total_accesses, int threads,
                       int slices, uint64_t* site) {
  if (!ms->faults_enabled()) {
    return PhaseSeconds(ms, net, op, pat, total_bytes, total_accesses, threads);
  }
  memsim::FaultInjector& faults = ms->faults();
  slices = std::max(1, slices);
  double seconds = 0.0;
  for (int i = 0; i < slices; ++i) {
    const size_t slice_bytes =
        static_cast<size_t>(total_bytes / threads / slices);
    const size_t slice_accesses = static_cast<size_t>(
        std::max(1.0, total_accesses / threads / slices));
    const memsim::MemorySystem::FaultDraw draw =
        ms->TryAccessSeconds(net, 0, op, pat, slice_bytes, slice_accesses,
                             threads, memsim::kFaultStreamDistNet, (*site)++, 0);
    seconds += draw.seconds;
    if (draw.kind == memsim::FaultKind::kTimeout ||
        draw.kind == memsim::FaultKind::kMediaError) {
      faults.CountRetried();
      if (op == MemOp::kRead) {
        seconds += ms->AccessSeconds(local_replica, 0, op, pat, slice_bytes,
                                     slice_accesses, threads);
      } else {
        seconds += ms->AccessSeconds(net, 0, op, pat, slice_bytes,
                                     slice_accesses, threads);
      }
    }
  }
  return seconds;
}

// Durable round-structured sync through the replicated shared log (see
// DistParams::checkpoint_every_rounds). Machines run in parallel: a round
// costs the slowest machine's append chain, a recovery/checkpoint event the
// slowest machine's charge; the per-machine charges all land in the traffic
// counters.
struct DurableSyncOutcome {
  double sync_seconds = 0.0;      ///< shared-log append rounds
  double ckpt_seconds = 0.0;      ///< scheduled cadence checkpoints
  double recovery_seconds = 0.0;  ///< machine-loss restores (incl. re-ckpt)
  uint64_t ckpt_writes = 0;
  uint64_t ckpt_bytes = 0;
  uint64_t recoveries = 0;
};

Result<DurableSyncOutcome> DurableRoundSync(memsim::MemorySystem* ms,
                                            const DistParams& params,
                                            int rounds,
                                            uint64_t round_bytes_per_machine,
                                            size_t state_bytes_per_machine) {
  DurableSyncOutcome out;
  durable::SharedLogOptions log_opts;
  log_opts.replicas = params.log_replicas;
  log_opts.quorum = params.log_quorum;
  log_opts.threads = 1;  // one machine's NIC per append
  durable::ReplicatedLog log(ms, log_opts);
  const Placement pm{Tier::kPm, Placement::kInterleaved};
  const int threads = std::max(1, params.threads_per_machine);

  // One machine persisting its partition state: a PM stream ordered by the
  // log-writer's persist barriers (payload, barrier, header, barrier).
  auto ckpt_write_seconds = [&]() {
    double s = ms->AccessSeconds(pm, 0, MemOp::kWrite, Pattern::kSequential,
                                 state_bytes_per_machine / threads, 1, threads);
    s += ms->PersistBarrierSeconds(Tier::kPm);
    s += ms->PersistBarrierSeconds(Tier::kPm);
    return s;
  };

  for (int r = 0; r < rounds; ++r) {
    // Every machine's round batch is sequenced and replicated; the round
    // completes when the slowest append does. Quorum loss fails the run.
    double round_seconds = 0.0;
    for (int m = 0; m < params.machines; ++m) {
      OMEGA_ASSIGN_OR_RETURN(durable::ReplicatedLog::AppendResult res,
                             log.Append(m, round_bytes_per_machine));
      round_seconds = std::max(round_seconds, res.seconds);
    }
    out.sync_seconds += round_seconds;

    // Machine loss: the killed machine restores its PM checkpoint and
    // replays the shared log past its watermark — recovery time grows with
    // the records accumulated since its last checkpoint. It re-checkpoints
    // immediately so a repeat kill replays only newer records. The cluster
    // stalls on the slowest recovery.
    double round_recovery = 0.0;
    for (int m = 0; m < params.machines; ++m) {
      if (!ms->faults().DrawMachineLoss(m, static_cast<uint64_t>(r))) continue;
      double seconds =
          ms->AccessSeconds(pm, 0, MemOp::kRead, Pattern::kSequential,
                            state_bytes_per_machine / threads, 1, threads);
      seconds += log.Replay(m, log.Tail()).seconds;
      seconds += ckpt_write_seconds();
      log.AdvanceCheckpoint(m, log.Tail());
      out.ckpt_writes += 1;
      out.ckpt_bytes += state_bytes_per_machine;
      ms->faults().CountRecovered();
      ++out.recoveries;
      round_recovery = std::max(round_recovery, seconds);
    }
    out.recovery_seconds += round_recovery;

    // Scheduled cadence: every machine persists its state; its log coverage
    // advances to the tail free of charge (those records were applied live).
    if ((r + 1) % params.checkpoint_every_rounds == 0) {
      double round_ckpt = 0.0;
      for (int m = 0; m < params.machines; ++m) {
        round_ckpt = std::max(round_ckpt, ckpt_write_seconds());
        log.AdvanceCheckpoint(m, log.Tail());
        out.ckpt_writes += 1;
        out.ckpt_bytes += state_bytes_per_machine;
      }
      out.ckpt_seconds += round_ckpt;
    }
  }
  return out;
}

}  // namespace

Result<RunReport> RunDistributedFamily(const graph::Graph& g,
                                       const std::string& dataset,
                                       const EngineOptions& options,
                                       const exec::Context& outer_ctx,
                                       const DistParams& params) {
  memsim::MemorySystem* ms = outer_ctx.ms();
  ms->ResetTraffic();
  ms->ResetFaults();

  exec::TraceRecorder recorder;
  const exec::Context ctx = outer_ctx.WithTrace(&recorder);
  uint64_t net_fault_site = 0;  // fault-site cursor across the NET phases

  RunReport report;
  report.system = SystemName(options.system);
  report.dataset = dataset;

  const double n = g.num_nodes();
  const double arcs = g.num_arcs();
  const double d = options.prone.dim;
  const int machines = params.machines;
  const int threads = params.threads_per_machine;

  const Placement dram{Tier::kDram, Placement::kInterleaved};
  const Placement net{Tier::kNetwork, 0};
  const Placement ssd{Tier::kSsd, 0};

  // Sync phase: the legacy bulk charge, or — when checkpoint_every_rounds is
  // set — the durable shared-log rounds with PM checkpoints and machine-loss
  // recovery. The "sync" span carries the append seconds; the checkpoint and
  // recovery times land in sibling "ckpt.write"/"recovery" records (their
  // traffic stays inside the span's delta, their seconds partition the run's
  // total alongside it).
  double ckpt_seconds = 0.0;
  double recovery_seconds = 0.0;
  auto sync_phase = [&](double rounds_d, double sync_bytes) -> Result<double> {
    exec::PhaseSpan sync_span(ctx, "sync");
    double comm_seconds = 0.0;
    if (params.checkpoint_every_rounds > 0) {
      const int rounds = std::max(1, static_cast<int>(rounds_d));
      const uint64_t round_bytes =
          static_cast<uint64_t>(sync_bytes / rounds / std::max(1, machines));
      const size_t state_bytes =
          static_cast<size_t>((n / std::max(1, machines)) * d * 4);
      OMEGA_ASSIGN_OR_RETURN(
          const DurableSyncOutcome out,
          DurableRoundSync(ms, params, rounds, round_bytes, state_bytes));
      comm_seconds = out.sync_seconds;
      ckpt_seconds += out.ckpt_seconds;
      recovery_seconds += out.recovery_seconds;
      if (out.ckpt_writes > 0) {
        exec::PhaseRecord rec;
        rec.name = "ckpt.write";
        rec.sim_seconds = out.ckpt_seconds;
        rec.ckpt_entries = out.ckpt_writes;
        rec.ckpt_bytes = out.ckpt_bytes;
        rec.persist_barriers = 2 * out.ckpt_writes;
        recorder.Record(std::move(rec));
      }
      if (out.recoveries > 0) {
        exec::PhaseRecord rec;
        rec.name = "recovery";
        rec.sim_seconds = out.recovery_seconds;
        recorder.Record(std::move(rec));
      }
    } else {
      comm_seconds = NetPhaseSeconds(ms, net, dram, MemOp::kWrite,
                                     Pattern::kSequential, sync_bytes, 1,
                                     std::max(1, machines),
                                     params.net_fault_slices, &net_fault_site);
    }
    sync_span.AddSimSeconds(comm_seconds);
    return comm_seconds;
  };

  // Every machine loads its graph partition from disk.
  {
    exec::PhaseSpan read_span(ctx, "read");
    report.read_seconds = PhaseSeconds(ms, ssd, MemOp::kRead, Pattern::kSequential,
                                       arcs * 16 / machines, 1, threads);
    read_span.AddSimSeconds(report.read_seconds);
  }

  if (options.system == SystemKind::kDistGer) {
    // Walk generation: each step issues a handful of random adjacency probes
    // (alias table, degree lookup, neighbor fetch, corpus buffering).
    const double steps =
        n * params.ger_walks_per_node * params.ger_walk_length / machines;
    const double walk_touches = steps * params.ger_walk_touches_per_step;
    double walk_seconds = 0.0;
    {
      exec::PhaseSpan walk_span(ctx, "walks");
      walk_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                  walk_touches * 64, walk_touches, threads);
      walk_span.AddSimSeconds(walk_seconds);
    }
    // Distributed SGNS: per step, `window` positive updates each touching two
    // embedding rows (read + write of d floats) — this traffic dominates.
    const double updates = steps * params.ger_window * 2.0;
    const double train_traffic = updates * d * 4 * 2;  // read + write
    double train_seconds = 0.0;
    {
      exec::PhaseSpan train_span(ctx, "train");
      train_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                   train_traffic / 2, updates, threads);
      train_seconds += PhaseSeconds(ms, dram, MemOp::kWrite, Pattern::kRandom,
                                    train_traffic / 2, updates, threads);
      train_seconds +=
          ms->cost_model().ComputeSeconds(static_cast<size_t>(updates * d * 4)) /
          threads;
      train_span.AddSimSeconds(train_seconds);
    }
    // Embedding synchronization between machines (information-oriented walks
    // keep this small — DistGER's advantage).
    const double sync_bytes = params.ger_sync_rounds * (n / machines) * d * 4;
    OMEGA_ASSIGN_OR_RETURN(const double comm_seconds,
                           sync_phase(params.ger_sync_rounds, sync_bytes));
    report.factorize_seconds = walk_seconds;         // corpus generation
    report.propagate_seconds = train_seconds + comm_seconds;
  } else {
    // DistDGL: mini-batch sampling dominates (~80% of runtime per the paper).
    const double samples = n * params.dgl_fanout * params.dgl_epochs / machines;
    const double local = samples * (1.0 - params.dgl_remote_sample_fraction);
    const double remote = samples * params.dgl_remote_sample_fraction;
    double sample_seconds = 0.0;
    {
      exec::PhaseSpan sample_span(ctx, "sampling");
      sample_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                    local * 64, local, threads);
      // Remote samples are small messages over the interconnect; timed-out
      // requests fall back to the local replica of the remote store.
      sample_seconds += NetPhaseSeconds(ms, net, dram, MemOp::kRead,
                                        Pattern::kRandom, remote * 256, remote,
                                        threads, params.net_fault_slices,
                                        &net_fault_site);
      sample_span.AddSimSeconds(sample_seconds);
    }
    // Feature gathering (one d-float row per sample) + GNN compute.
    double gather_seconds = 0.0;
    double train_seconds = 0.0;
    {
      exec::PhaseSpan train_span(ctx, "train");
      gather_seconds = PhaseSeconds(ms, dram, MemOp::kRead, Pattern::kRandom,
                                    samples * d * 4, samples, threads);
      train_seconds =
          ms->cost_model().ComputeSeconds(
              static_cast<size_t>(samples * params.dgl_train_ops_per_sample)) /
          threads;
      train_span.AddSimSeconds(gather_seconds + train_seconds);
    }
    // Gradient synchronization per mini-batch round.
    const double sync_bytes = params.dgl_sync_rounds * (n / machines) * d * 4;
    OMEGA_ASSIGN_OR_RETURN(const double comm_seconds,
                           sync_phase(params.dgl_sync_rounds, sync_bytes));
    report.factorize_seconds = sample_seconds;       // sampling phase
    report.propagate_seconds = gather_seconds + train_seconds + comm_seconds;
  }

  report.embed_seconds = report.factorize_seconds + report.propagate_seconds;
  report.ckpt_seconds = ckpt_seconds;
  report.recovery_seconds = recovery_seconds;
  report.total_seconds = report.read_seconds + report.embed_seconds +
                         ckpt_seconds + recovery_seconds;
  report.remote_fraction = 0.0;
  report.faults_enabled = ms->faults_enabled();
  report.faults = ms->Faults();
  report.phases = recorder.TakeRecords();
  return report;
}

}  // namespace omega::engine
