// End-to-end embedding engines over the simulated heterogeneous machine.
//
// RunEmbedding executes the full pipeline the paper times in Fig. 12: graph
// reading (format construction) + embedding generation (ProNE's two stages),
// under the placement/kernels of the selected system. Simulated seconds are
// returned in a RunReport; systems that exceed their tier's capacity fail
// with CapacityExceeded, mirroring the paper's "fails to run / does not
// terminate" entries.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "memsim/memory_system.h"
#include "omega/exec_context.h"
#include "omega/options.h"

namespace omega::engine {

namespace internal {

/// RAII capacity reservation on the simulated machine; releases on scope
/// exit. Used by the engines to model their resident working sets.
class Reservation {
 public:
  static Result<Reservation> Make(memsim::MemorySystem* ms,
                                  memsim::Placement placement, size_t bytes);

  Reservation() = default;
  ~Reservation() { Release(); }

  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  Reservation(Reservation&& other) noexcept { *this = std::move(other); }
  Reservation& operator=(Reservation&& other) noexcept {
    if (this != &other) {
      Release();
      ms_ = other.ms_;
      placement_ = other.placement_;
      bytes_ = other.bytes_;
      other.ms_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

 private:
  /// Returns the reserved capacity and resets to the empty state.
  void Release();

  memsim::MemorySystem* ms_ = nullptr;
  memsim::Placement placement_;
  size_t bytes_ = 0;
};

/// Labels the engines' per-SpMM trace spans "<stage>.spmm.<k>" by listening
/// to ProneEmbed's stage notifications. Must outlive the ProneEmbed call.
class StageTracker {
 public:
  /// Installs this tracker as `prone->stage_notifier`.
  void Attach(embed::ProneOptions* prone) {
    prone->stage_notifier = [this](const char* stage) {
      stage_ = stage;
      index_ = 0;
    };
  }

  std::string NextSpmmName() {
    return stage_ + ".spmm." + std::to_string(index_++);
  }

  const std::string& stage() const { return stage_; }

 private:
  std::string stage_ = "factorize";
  int index_ = 0;
};

}  // namespace internal

/// Outcome of one end-to-end run.
struct RunReport {
  std::string system;
  std::string dataset;

  double read_seconds = 0.0;       ///< simulated graph reading / format build
  double factorize_seconds = 0.0;  ///< simulated tSVD stage
  double propagate_seconds = 0.0;  ///< simulated Chebyshev stage
  double embed_seconds = 0.0;      ///< factorize + propagate
  double total_seconds = 0.0;      ///< read + embed (+ ckpt + recovery)

  /// Durability accounting (zero unless checkpointing / restore ran): the
  /// simulated cost of writing checkpoints, and of restoring state after a
  /// crash or machine loss (checkpoint read-back + shared-log replay). Both
  /// are included in total_seconds. For resumed runs the per-stage fields
  /// above also include the restored pre-crash stage seconds.
  double ckpt_seconds = 0.0;
  double recovery_seconds = 0.0;

  double remote_fraction = 0.0;    ///< of DRAM+PM traffic (VTune analogue)
  std::optional<double> link_auc;  ///< when options.evaluate_quality

  /// Fault injection: whether the run's MemorySystem carried an enabled
  /// FaultPlan, and the run's whole-run fault/recovery counters (all zero
  /// when disabled). injected == retried + degraded + surfaced for completed
  /// runs — every fault is either absorbed by a retry path, degraded a
  /// component, or surfaced as the run's failure.
  bool faults_enabled = false;
  memsim::FaultCounters faults;

  /// Failed runs (OOM / "does not terminate" cells): set by the harnesses
  /// when RunEmbedding returns a non-OK status, so tables and JSON can carry
  /// the cell through.
  bool failed = false;
  std::string failure;

  /// Per-phase attribution (see exec::PhaseSpan). Non-aux phase sim_seconds
  /// sum to total_seconds; the scalar fields above are the per-stage sums of
  /// these records.
  std::vector<exec::PhaseRecord> phases;

  linalg::DenseMatrix embedding;   ///< original node order; empty for the
                                   ///< distributed analogues
};

/// A report carrying a failed cell (the run itself produced no timings).
RunReport FailedReport(SystemKind system, const std::string& dataset,
                       const Status& status);

/// Runs `options.system` on `g`. The MemorySystem's capacity accounting and
/// traffic counters are used (and reset) by the run; the context's pool must
/// have at least options.num_threads workers. The run's phases are recorded
/// into report.phases (and also into ctx.trace() if one is attached).
Result<RunReport> RunEmbedding(const graph::Graph& g, const std::string& dataset,
                               const EngineOptions& options,
                               const exec::Context& ctx);

/// Simulated seconds to parse an edge list and construct the given format —
/// the "graph reading procedure" of Fig. 19a. Uses ctx.threads() workers.
enum class GraphFormat { kCsr, kCsdb };
double SimulatedGraphReadSeconds(const exec::Context& ctx, GraphFormat format,
                                 uint64_t num_arcs, uint64_t num_nodes);

/// Estimated peak dense-matrix working set of the ProNE pipeline in bytes
/// (tSVD temporaries vs Chebyshev recurrence, whichever is larger).
size_t DenseWorkingSetBytes(uint64_t num_nodes, const embed::ProneOptions& prone);

/// Sparse (CSDB/CSR payload) bytes for capacity accounting.
size_t SparseBytes(uint64_t num_arcs);

/// Traffic/arithmetic of the dense-algebra work surrounding the SpMMs: the
/// tSVD's Householder QRs and small GEMMs (stage 1) and the Chebyshev
/// recurrence's AXPY passes (stage 2). These run on whichever tier holds the
/// dense working set, which is what separates the PM-only configuration.
struct DenseStageModel {
  uint64_t tsvd_bytes = 0;
  uint64_t tsvd_flops = 0;
  uint64_t cheb_bytes = 0;
  uint64_t cheb_flops = 0;
};
DenseStageModel EstimateDenseStage(uint64_t num_nodes,
                                   const embed::ProneOptions& prone);

/// Simulated seconds for `bytes` of streaming dense-op traffic (half read,
/// half write) plus `flops`, spread over ctx.threads() cores against tier `p`.
/// `flops_rate_multiplier` models accelerator arithmetic (GPU baselines).
double DenseStageSeconds(const exec::Context& ctx, memsim::Placement p,
                         uint64_t bytes, uint64_t flops,
                         double flops_rate_multiplier = 1.0);

}  // namespace omega::engine
