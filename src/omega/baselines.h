// Baseline engines of Fig. 12: the ProNE family (CSR, no HM awareness) and
// the SSD-based out-of-core family (Ginex / MariusGNN analogues).
//
// Substitution note (DESIGN.md): Ginex and MariusGNN are GNN training systems
// with GPUs; what the paper's Fig. 12 compares is end-to-end embedding
// generation time, dominated in both by SSD I/O on large graphs. The
// analogues here run the same ProNE pipeline with each system's I/O
// discipline — Ginex-style neighbor-cached gathers with random-page misses,
// Marius-style partition-ordered I/O with sequential misses — and a GPU-class
// arithmetic rate, which preserves exactly the bottleneck structure the paper
// attributes to them.

#pragma once

#include "graph/csr.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "omega/exec_context.h"
#include "sparse/spmm.h"
#include "sparse/spmm_plan.h"

namespace omega::engine {

/// ProNE-DRAM / ProNE-HM (§IV-A): CSR storage, OpenMP-static equal-row
/// chunking, no EaTA/WoFP/NaDP/ASL.
Result<RunReport> RunProneFamily(const graph::Graph& g, const std::string& dataset,
                                 const EngineOptions& options,
                                 const exec::Context& ctx);

/// Ginex / MariusGNN analogues (see file comment).
Result<RunReport> RunOutOfCoreFamily(const graph::Graph& g,
                                     const std::string& dataset,
                                     const EngineOptions& options,
                                     const exec::Context& ctx);

/// Charged parallel CSR SpMM with equal-row static chunking — the baseline
/// execution style of the ProNE family. Uses ctx.threads() workers. Exposed
/// for tests and benches. When `plan` is non-null it must match
/// (a, ctx.threads(), kEqualRows); the per-part metadata then comes from the
/// plan instead of a per-call rescan (identical simulated charges).
sparse::ParallelSpmmResult StaticCsrSpmm(const graph::CsrMatrix& a,
                                         const linalg::DenseMatrix& b,
                                         linalg::DenseMatrix* c,
                                         const sparse::SpmmPlacements& placements,
                                         const exec::Context& ctx,
                                         const sparse::CsrSpmmPlan* plan = nullptr);

}  // namespace omega::engine
