// Baseline engines of Fig. 12: the ProNE family (CSR, no HM awareness) and
// the SSD-based out-of-core family (Ginex / MariusGNN analogues).
//
// Substitution note (DESIGN.md): Ginex and MariusGNN are GNN training systems
// with GPUs; what the paper's Fig. 12 compares is end-to-end embedding
// generation time, dominated in both by SSD I/O on large graphs. The
// analogues here run the same ProNE pipeline with each system's I/O
// discipline — Ginex-style neighbor-cached gathers with random-page misses,
// Marius-style partition-ordered I/O with sequential misses — and a GPU-class
// arithmetic rate, which preserves exactly the bottleneck structure the paper
// attributes to them.

#pragma once

#include "common/thread_pool.h"
#include "graph/csr.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "sparse/spmm.h"

namespace omega::engine {

/// ProNE-DRAM / ProNE-HM (§IV-A): CSR storage, OpenMP-static equal-row
/// chunking, no EaTA/WoFP/NaDP/ASL.
Result<RunReport> RunProneFamily(const graph::Graph& g, const std::string& dataset,
                                 const EngineOptions& options,
                                 memsim::MemorySystem* ms, ThreadPool* pool);

/// Ginex / MariusGNN analogues (see file comment).
Result<RunReport> RunOutOfCoreFamily(const graph::Graph& g,
                                     const std::string& dataset,
                                     const EngineOptions& options,
                                     memsim::MemorySystem* ms, ThreadPool* pool);

/// Charged parallel CSR SpMM with equal-row static chunking — the baseline
/// execution style of the ProNE family. Exposed for tests and benches.
sparse::ParallelSpmmResult StaticCsrSpmm(const graph::CsrMatrix& a,
                                         const linalg::DenseMatrix& b,
                                         linalg::DenseMatrix* c, int threads,
                                         const sparse::SpmmPlacements& placements,
                                         memsim::MemorySystem* ms, ThreadPool* pool);

}  // namespace omega::engine
