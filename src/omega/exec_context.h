// Execution context + per-phase trace/attribution layer.
//
// Every engine and parallel-kernel entry point used to hand-thread the same
// (MemorySystem*, ThreadPool*, int threads) triple. exec::Context bundles the
// three — plus an optional TraceRecorder sink — so a call chain carries one
// object, and any layer can open a PhaseSpan to attribute the simulated
// seconds and per-tier traffic of the code it brackets.
//
// PhaseSpan is the RAII tracer: construction snapshots the MemorySystem's
// global traffic counters and the wall clock; destruction (or Finish())
// subtracts the snapshots and appends a PhaseRecord{name, sim seconds,
// traffic delta, remote fraction} to the recorder. Simulated seconds cannot
// be observed from a global clock (each phase computes them analytically or
// as a straggler max), so the code inside the span reports them via
// AddSimSeconds().
//
// Span semantics:
//  - Spans may nest; an outer span's traffic delta includes its inner spans'.
//  - `aux` records mark phases whose simulated time is already contained in a
//    sibling/parent phase (e.g. WoFP store construction inside an SpMM);
//    consumers summing phase times to a total must skip them.
//  - Sibling spans that together bracket all charged code partition the
//    global traffic: the sum of their deltas equals the global snapshot.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "memsim/memory_system.h"

namespace omega::exec {

/// One attributed phase of a run.
struct PhaseRecord {
  std::string name;
  double sim_seconds = 0.0;   ///< simulated duration reported by the phase
  double wall_seconds = 0.0;  ///< host wall time spent inside the span
  bool aux = false;           ///< time already contained in another phase

  memsim::TrafficSnapshot traffic;  ///< counter delta over the span
  double remote_fraction = 0.0;     ///< RemoteFraction() of the delta
  memsim::FaultCounters faults;     ///< fault-counter delta over the span

  /// Async-staging accounting: total solo staging-fetch seconds issued inside
  /// the phase, and the part hidden behind compute. Zero for phases with no
  /// overlapped staging (every phase when --async-staging is off).
  double fetch_seconds = 0.0;
  double hidden_seconds = 0.0;

  /// Hot-cache accounting: key-fetch hits/misses/evictions inside the phase.
  /// Zero for phases that fetch through no cache (all training phases).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  /// SpMM plan-cache accounting: lookups served from a cached inspector plan,
  /// plans built, and slots dropped by delta invalidation inside the phase.
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_invalidations = 0;

  /// Checkpoint-log accounting: entries and bytes appended to (or scanned
  /// back from) the durable store, and the persist barriers charged. Zero
  /// for phases that touch no checkpoint log (every phase with durability
  /// off).
  uint64_t ckpt_entries = 0;
  uint64_t ckpt_bytes = 0;
  uint64_t persist_barriers = 0;

  uint64_t TierBytes(memsim::Tier t) const { return traffic.TierBytes(t); }
  uint64_t TotalBytes() const { return traffic.TotalBytes(); }
  /// Fraction of the phase's staging-fetch time hidden behind compute.
  double OverlapEfficiency() const {
    return fetch_seconds > 0.0 ? hidden_seconds / fetch_seconds : 0.0;
  }
  /// Hit fraction of the phase's cache fetches; 0 when it made none.
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// Thread-safe append-only sink of PhaseRecords for one run.
class TraceRecorder {
 public:
  void Record(PhaseRecord record);

  /// Moves the accumulated records out, leaving the recorder empty.
  std::vector<PhaseRecord> TakeRecords();

  /// Copy of the records accumulated so far.
  std::vector<PhaseRecord> Records() const;

  void Clear();

  /// Sum of non-aux phase seconds (aux phases are contained in other phases).
  double TotalSimSeconds() const;

 private:
  mutable std::mutex mu_;
  std::vector<PhaseRecord> records_;
};

/// Bundled execution plumbing: the simulated machine, the worker pool, the
/// resolved thread count, and the trace sink. Cheap to copy (four pointers).
class Context {
 public:
  /// `threads` <= 0 resolves to the pool's size (or 1 without a pool).
  /// `pool` may be null for call chains that only charge analytic costs.
  Context(memsim::MemorySystem* ms, ThreadPool* pool = nullptr, int threads = 0,
          TraceRecorder* trace = nullptr);

  memsim::MemorySystem* ms() const { return ms_; }
  ThreadPool* pool() const { return pool_; }
  int threads() const { return threads_; }
  TraceRecorder* trace() const { return trace_; }

  /// Same plumbing with a different resolved thread count / trace sink.
  Context WithThreads(int threads) const;
  Context WithTrace(TraceRecorder* trace) const;

 private:
  memsim::MemorySystem* ms_;
  ThreadPool* pool_;
  int threads_;
  TraceRecorder* trace_;
};

/// Scoped phase tracer (see file comment). With a null recorder the span is
/// inert apart from accumulating sim seconds.
class PhaseSpan {
 public:
  PhaseSpan(const Context& ctx, std::string name, bool aux = false);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Accumulates simulated seconds attributed to this phase.
  void AddSimSeconds(double seconds) { sim_seconds_ += seconds; }
  double sim_seconds() const { return sim_seconds_; }

  /// Accumulates async-staging accounting: `fetch` solo fetch seconds issued
  /// in this phase, of which `hidden` were absorbed behind compute.
  void AddFetchSeconds(double fetch, double hidden) {
    fetch_seconds_ += fetch;
    hidden_seconds_ += hidden;
  }

  /// Accumulates hot-cache accounting for the phase's key fetches.
  void AddCacheCounters(uint64_t hits, uint64_t misses, uint64_t evictions) {
    cache_hits_ += hits;
    cache_misses_ += misses;
    cache_evictions_ += evictions;
  }

  /// Accumulates SpMM plan-cache accounting for the phase's lookups.
  void AddPlanCounters(uint64_t hits, uint64_t misses, uint64_t invalidations) {
    plan_hits_ += hits;
    plan_misses_ += misses;
    plan_invalidations_ += invalidations;
  }

  /// Accumulates checkpoint-log accounting for the phase's appends/scans.
  void AddCkptCounters(uint64_t entries, uint64_t bytes, uint64_t barriers) {
    ckpt_entries_ += entries;
    ckpt_bytes_ += bytes;
    persist_barriers_ += barriers;
  }

  /// Records the phase now (the destructor then does nothing).
  void Finish();

 private:
  const Context ctx_;
  std::string name_;
  bool aux_;
  bool finished_ = false;
  double sim_seconds_ = 0.0;
  double fetch_seconds_ = 0.0;
  double hidden_seconds_ = 0.0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t cache_evictions_ = 0;
  uint64_t plan_hits_ = 0;
  uint64_t plan_misses_ = 0;
  uint64_t plan_invalidations_ = 0;
  uint64_t ckpt_entries_ = 0;
  uint64_t ckpt_bytes_ = 0;
  uint64_t persist_barriers_ = 0;
  double wall_start_ = 0.0;
  memsim::TrafficSnapshot traffic_start_;
  memsim::FaultCounters faults_start_;
};

}  // namespace omega::exec
