// Incremental embedding refresh over a mutable graph (dynamic-graph path).
//
// DynamicEmbedder owns the full dynamic pipeline on top of the trained
// state of one OMeGa-family run:
//   1. mutations are logged per worker into a graph::MutableGraph;
//   2. Synchronize() merges the op logs and rebuilds the Graph;
//   3. sparse::ApplyDelta patches the CSDB adjacency without a full rebuild
//      (byte-identical to a from-scratch FromGraph);
//   4. the propagation matrix S = D^-1/2 A D^-1/2 is re-derived and the
//      NadpPlanCache invalidated structure-aware (weight-only deltas rebind);
//   5. a multi-source BFS from the delta's touched nodes bounds the k-hop
//      affected set, and only those rows of the Chebyshev recurrence
//      T_k = -2 S T_{k-1} - T_{k-2} are recomputed from the captured
//      training-time terms (embed::ChebyshevCapture);
//   6. the refreshed output rows are re-accumulated, re-normalized, and
//      written back into the node-order embedding.
//
// Correctness contract: a mutation batch touching node set M changes S only
// in rows/columns of M, so T_k changes only inside ball_k(M) (the <=k-hop
// BFS ball) — by induction over the recurrence. Refreshing exactly those
// rows therefore produces an embedding bit-identical to recomputing every
// row against the new S from the same captured basis (the refresh_all_rows
// baseline), at any thread count. The stage-1 basis R is intentionally kept
// from training ("stale basis" refresh, the standard dynamic-embedding
// trade-off); a periodic full Train() re-anchors it.
//
// Two-clock contract: all host recomputation is charged analytically through
// the same ChargeWorkloadCsdb cost model the training SpMMs use, against the
// placements of the embedder's SystemKind.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "embed/prone.h"
#include "graph/mutable_graph.h"
#include "numa/nadp.h"
#include "omega/engine.h"
#include "omega/options.h"

namespace omega::engine {

/// Outcome of one DynamicEmbedder::Refresh call.
struct RefreshReport {
  uint64_t epoch = 0;               ///< graph epoch after the refresh
  size_t mutations_applied = 0;     ///< survived validation and were applied
  size_t mutations_rejected = 0;    ///< duplicates / missing / out-of-range
  size_t touched_nodes = 0;         ///< distinct mutation endpoints
  size_t affected_rows = 0;         ///< |ball_{K-1}|: embedding rows refreshed
  size_t csdb_touched_rows = 0;     ///< adjacency rows re-gathered by ApplyDelta
  size_t csdb_reused_rows = 0;      ///< adjacency rows remapped without re-gather
  size_t plan_slots_affected = 0;   ///< plan-cache slots dropped or rebound

  double sync_seconds = 0.0;     ///< simulated: op-log merge + graph rebuild
  double delta_seconds = 0.0;    ///< simulated: CSDB delta + propagation rebuild
  double refresh_seconds = 0.0;  ///< simulated: BFS + recurrence + output rows
  double total_seconds = 0.0;    ///< sync + delta + refresh

  /// Original node ids of the refreshed embedding rows — the serving layer
  /// re-pins exactly these (serve::EmbeddingServer::RefreshRows).
  std::vector<graph::NodeId> refreshed_nodes;

  /// True when the batch applied nothing (all-rejected or empty logs); the
  /// embedding and all derived state are untouched.
  bool no_op = false;
};

/// Trained embedding plus the captured recurrence state, refreshable in
/// place as the underlying graph mutates. Only the OMeGa-family systems
/// (kOmega / kOmegaDram / kOmegaPm) are supported: they share the CSDB SpMM
/// path whose capture hook and cost model the refresh replays.
class DynamicEmbedder {
 public:
  /// `num_workers` sizes the mutation op-log array (one lock-sharded log per
  /// ingesting thread).
  DynamicEmbedder(graph::Graph base, const EngineOptions& options,
                  std::string dataset, int num_workers = 1);

  DynamicEmbedder(const DynamicEmbedder&) = delete;
  DynamicEmbedder& operator=(const DynamicEmbedder&) = delete;
  DynamicEmbedder(DynamicEmbedder&&) = default;
  DynamicEmbedder& operator=(DynamicEmbedder&&) = default;

  /// Full training run (RunEmbedding) with the Chebyshev capture attached;
  /// rebuilds the adjacency/propagation matrices and warms the plan cache.
  /// Pending mutations logged before Train are folded in first.
  Status Train(const exec::Context& ctx);

  bool trained() const { return capture_.valid(); }
  const RunReport& train_report() const { return train_report_; }

  /// Embedding in original node order (row v = node v).
  const linalg::DenseMatrix& embedding() const { return embedding_; }

  const graph::Graph& graph() const { return mutable_.graph(); }
  uint64_t epoch() const { return mutable_.epoch(); }
  size_t pending() const { return mutable_.pending(); }
  const numa::NadpPlanCache& plan_cache() const { return plan_cache_; }

  /// Thread-safe mutation ingestion (worker id taken modulo num_workers).
  void Log(int worker, const graph::Mutation& m) { mutable_.Log(worker, m); }

  /// Applies all pending mutations and refreshes the affected embedding
  /// rows. With `refresh_all_rows` every row is recomputed against the new
  /// propagation matrix — the full-recompute baseline the selective path is
  /// bit-identical to (and that bench_update_throughput prices it against).
  Result<RefreshReport> Refresh(const exec::Context& ctx,
                                bool refresh_all_rows = false);

 private:
  numa::NadpOptions NadpOptionsFor(const exec::Context& ctx) const;

  graph::MutableGraph mutable_;
  EngineOptions options_;
  std::string dataset_;

  graph::CsdbMatrix adjacency_;     ///< CSDB of graph() at the current epoch
  graph::CsdbMatrix propagation_;   ///< SymmetricNormalize(adjacency_)
  embed::ChebyshevCapture capture_; ///< stage-2 state in adjacency_ row order
  linalg::DenseMatrix embedding_;   ///< node order
  numa::NadpPlanCache plan_cache_;
  RunReport train_report_;
};

}  // namespace omega::engine
