#include "omega/baselines.h"

#include <algorithm>
#include <unordered_map>

#include "buffer/buffer_manager.h"
#include "common/logging.h"
#include "embed/quality.h"
#include "sparse/csdb_ops.h"
#include "sched/entropy.h"

namespace omega::engine {

namespace {

using memsim::Placement;
using memsim::Tier;



// Caches the CSR conversion of the embedder's current CSDB matrix (stage 1's
// target, then stage 2's propagation matrix — used strictly sequentially).
// Pointer identity alone is unsafe (the target is freed before the
// propagation matrix is built and the allocation may be reused), so the entry
// is validated against the matrix's shape and value fingerprint.
class CsrCache {
 public:
  const graph::CsrMatrix& Get(const graph::CsdbMatrix& m) {
    const Fingerprint fp = FingerprintOf(m);
    if (!valid_ || !(fp == key_)) {
      auto csr = sparse::ToCsr(m);
      OMEGA_CHECK(csr.ok()) << csr.status().ToString();
      cached_ = std::move(csr).value();
      key_ = fp;
      valid_ = true;
    }
    return cached_;
  }

 private:
  struct Fingerprint {
    const void* data = nullptr;
    uint64_t nnz = 0;
    float first = 0.0f;
    float mid = 0.0f;

    bool operator==(const Fingerprint& other) const = default;
  };

  static Fingerprint FingerprintOf(const graph::CsdbMatrix& m) {
    Fingerprint fp;
    fp.data = m.nnz_list().data();
    fp.nnz = m.nnz();
    if (fp.nnz > 0) {
      fp.first = m.nnz_list().front();
      fp.mid = m.nnz_list()[fp.nnz / 2];
    }
    return fp;
  }

  bool valid_ = false;
  Fingerprint key_;
  graph::CsrMatrix cached_;
};

}  // namespace

sparse::ParallelSpmmResult StaticCsrSpmm(const graph::CsrMatrix& a,
                                         const linalg::DenseMatrix& b,
                                         linalg::DenseMatrix* c,
                                         const sparse::SpmmPlacements& placements,
                                         const exec::Context& exec_ctx,
                                         const sparse::CsrSpmmPlan* plan) {
  memsim::MemorySystem* ms = exec_ctx.ms();
  ThreadPool* pool = exec_ctx.pool();
  const int threads = exec_ctx.threads();
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));
  if (plan != nullptr) {
    OMEGA_CHECK(
        plan->Matches(a, threads, sparse::CsrSpmmPlan::Split::kEqualRows))
        << "StaticCsrSpmm: stale plan";
  }
  sparse::ParallelSpmmResult result;
  result.thread_seconds.assign(threads, 0.0);
  result.thread_breakdowns.assign(threads, sparse::SpmmCostBreakdown{});
  memsim::ClockGroup clocks(threads);
  const uint32_t rows = a.num_rows();
  const uint32_t chunk = (rows + threads - 1) / threads;

  pool->RunOnAll([&](size_t worker) {
    if (worker >= static_cast<size_t>(threads)) return;
    memsim::WorkerCtx ctx;
    ctx.worker = static_cast<int>(worker);
    ctx.cpu_socket = ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
    ctx.active_threads = threads;
    ctx.clock = &clocks.clock(worker);
    if (plan != nullptr) {
      // Plan path: same equal-row chunk, but nnz/entropy come pre-scanned.
      const sparse::CsrPlanPart& part = plan->parts()[worker];
      sparse::ComputeWorkloadCsr(a, b, c, part.row_begin, part.row_end);
      result.thread_breakdowns[worker] = sparse::ChargeWorkloadCsr(
          a, b.cols(), part.row_begin, part.row_end, part.nnz, part.entropy,
          placements, ms, &ctx);
      return;
    }
    const uint32_t begin = std::min<uint32_t>(rows, worker * chunk);
    const uint32_t end = std::min<uint32_t>(rows, begin + chunk);
    result.thread_breakdowns[worker] =
        sparse::ExecuteWorkloadCsr(a, b, c, begin, end, placements, ms, &ctx);
  });

  for (int t = 0; t < threads; ++t) {
    result.thread_seconds[t] = clocks.clock(t).seconds();
    result.total_breakdown += result.thread_breakdowns[t];
  }
  result.nnz_processed = a.nnz();
  result.phase_seconds = clocks.MaxSeconds();
  return result;
}

Result<RunReport> RunProneFamily(const graph::Graph& g, const std::string& dataset,
                                 const EngineOptions& options,
                                 const exec::Context& outer_ctx) {
  memsim::MemorySystem* ms = outer_ctx.ms();
  ms->ResetTraffic();
  ms->ResetFaults();

  exec::TraceRecorder recorder;
  const exec::Context ctx =
      outer_ctx.WithThreads(options.num_threads).WithTrace(&recorder);
  const int threads = ctx.threads();

  RunReport report;
  report.system = SystemName(options.system);
  report.dataset = dataset;
  {
    exec::PhaseSpan read_span(ctx, "read");
    report.read_seconds = SimulatedGraphReadSeconds(ctx, GraphFormat::kCsr,
                                                    g.num_arcs(), g.num_nodes());
    read_span.AddSimSeconds(report.read_seconds);
  }

  // Adjacency plus one derived matrix live at peak (as in the OMeGa family),
  // in CSR form with its O(|V|) row pointers.
  const size_t sparse_bytes =
      2 * (SparseBytes(g.num_arcs()) + (g.num_nodes() + 1) * sizeof(uint64_t));
  const size_t dense_bytes = DenseWorkingSetBytes(g.num_nodes(), options.prone);
  const Placement interleave_dram{Tier::kDram, Placement::kInterleaved};
  const Placement interleave_pm{Tier::kPm, Placement::kInterleaved};

  std::vector<internal::Reservation> reservations;
  sparse::SpmmPlacements pl;
  const bool hm = options.system == SystemKind::kProneHm;
  if (hm) {
    // Data on PM, compute staged through DRAM with synchronous (unoverlapped)
    // transfers — the naive heterogeneous-memory port.
    OMEGA_ASSIGN_OR_RETURN(
        auto r1, internal::Reservation::Make(ms, interleave_pm,
                                             sparse_bytes + dense_bytes));
    reservations.push_back(std::move(r1));
    pl.index = {Tier::kPm, Placement::kInterleaved};  // CSR row_ptr is O(|V|)
    pl.sparse = {Tier::kPm, Placement::kInterleaved};
    pl.dense = {Tier::kPm, Placement::kInterleaved};
    pl.result = {Tier::kDram, Placement::kInterleaved};
  } else {
    OMEGA_ASSIGN_OR_RETURN(
        auto r1, internal::Reservation::Make(ms, interleave_dram,
                                             sparse_bytes + dense_bytes));
    reservations.push_back(std::move(r1));
    pl.index = {Tier::kDram, Placement::kInterleaved};
    pl.sparse = {Tier::kDram, Placement::kInterleaved};
    pl.dense = {Tier::kDram, Placement::kInterleaved};
    pl.result = {Tier::kDram, Placement::kInterleaved};
  }

  const graph::CsdbMatrix adjacency = graph::CsdbMatrix::FromGraph(g);
  CsrCache csr_cache;
  sparse::CsrSpmmPlan csr_plan;  // reused across the stage's SpMM calls
  embed::ProneOptions prone = options.prone;
  prone.pool = ctx.pool();  // host-side dense parallelism; sim-invariant
  internal::StageTracker stages;
  stages.Attach(&prone);
  uint64_t staging_site = 0;  // fault-site cursor across the staging reads

  embed::SpmmExecutor executor =
      [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
          linalg::DenseMatrix* out) -> Result<double> {
    exec::PhaseSpan span(ctx, stages.NextSpmmName());
    *out = linalg::DenseMatrix(m.num_rows(), in.cols());
    const graph::CsrMatrix& csr = csr_cache.Get(m);
    if (!csr_plan.Matches(csr, threads, sparse::CsrSpmmPlan::Split::kEqualRows)) {
      exec::PhaseSpan plan_span(ctx, "plan.build", /*aux=*/true);
      csr_plan = sparse::CsrSpmmPlan::Build(
          csr, threads, sparse::CsrSpmmPlan::Split::kEqualRows);
    }
    const sparse::ParallelSpmmResult r =
        StaticCsrSpmm(csr, in, out, pl, ctx, &csr_plan);
    double seconds = r.phase_seconds;
    if (hm) {
      // Synchronous dense staging PM -> DRAM before and DRAM -> PM after each
      // SpMM, not overlapped with compute (no ASL).
      const size_t stage_bytes = in.bytes() + out->bytes();
      if (!ms->faults_enabled()) {
        seconds += ms->AccessSeconds(interleave_pm, 0, memsim::MemOp::kRead,
                                     memsim::Pattern::kSequential, stage_bytes, 1, 1);
      } else {
        // The naive HM port has no degradation path: a staging read that
        // keeps faulting surfaces as the run's failure (contrast with the
        // OMeGa family's retry-then-degrade recovery).
        const uint64_t site = staging_site++;
        bool delivered = false;
        for (int attempt = 0; attempt <= 2 && !delivered; ++attempt) {
          const memsim::MemorySystem::FaultDraw draw = ms->TryAccessSeconds(
              interleave_pm, 0, memsim::MemOp::kRead,
              memsim::Pattern::kSequential, stage_bytes, 1, 1,
              memsim::kFaultStreamProneStaging, site,
              static_cast<uint32_t>(attempt));
          seconds += draw.seconds;
          if (draw.kind == memsim::FaultKind::kNone ||
              draw.kind == memsim::FaultKind::kTransientStall) {
            delivered = true;
          } else if (attempt < 2) {
            ms->faults().CountRetried();
          } else {
            ms->faults().CountSurfaced();
            return Status::IOError(
                "ProNE-HM: dense staging read failed after 2 retries: " +
                std::string(memsim::FaultKindName(draw.kind)));
          }
        }
      }
      seconds += ms->AccessSeconds(interleave_pm, 0, memsim::MemOp::kWrite,
                                   memsim::Pattern::kSequential, out->bytes(), 1, 1);
    }
    span.AddSimSeconds(seconds);
    return seconds;
  };

  OMEGA_ASSIGN_OR_RETURN(embed::EmbeddingResult emb,
                         embed::ProneEmbed(adjacency, prone, executor));
  // ProNE runs its dense algebra in DRAM (ProNE-HM stages operands there; the
  // per-SpMM staging charge above covers the PM transfers).
  const DenseStageModel dense_model =
      EstimateDenseStage(g.num_nodes(), options.prone);
  const Placement dense_home = interleave_dram;
  double dense_tsvd = 0.0;
  double dense_cheb = 0.0;
  {
    exec::PhaseSpan tsvd_span(ctx, "factorize.dense");
    dense_tsvd = DenseStageSeconds(ctx, dense_home, dense_model.tsvd_bytes,
                                   dense_model.tsvd_flops);
    tsvd_span.AddSimSeconds(dense_tsvd);
  }
  {
    exec::PhaseSpan cheb_span(ctx, "propagate.dense");
    dense_cheb = DenseStageSeconds(ctx, dense_home, dense_model.cheb_bytes,
                                   dense_model.cheb_flops);
    cheb_span.AddSimSeconds(dense_cheb);
  }
  report.factorize_seconds = emb.factorize_seconds + dense_tsvd;
  report.propagate_seconds = emb.propagate_seconds + dense_cheb;
  report.embed_seconds = report.factorize_seconds + report.propagate_seconds;
  report.total_seconds = report.read_seconds + report.embed_seconds;
  report.remote_fraction = ms->Traffic().RemoteFraction();
  report.faults_enabled = ms->faults_enabled();
  report.faults = ms->Faults();
  report.embedding = emb.ToOriginalOrder();
  report.phases = recorder.TakeRecords();
  if (options.evaluate_quality) {
    OMEGA_ASSIGN_OR_RETURN(double auc,
                           embed::LinkPredictionAuc(g, report.embedding,
                                                    options.quality_samples,
                                                    options.prone.seed));
    report.link_auc = auc;
  }
  return report;
}

namespace {

// I/O discipline of one out-of-core system.
struct OutOfCoreProfile {
  double cache_boost = 1.0;        ///< multiplier on the naive hit rate
  memsim::Pattern miss_pattern = memsim::Pattern::kRandom;
  double miss_scale = 1.0;         ///< fraction of misses actually paid
  /// Effective SSD bytes per missed gather: 4 KB pages are shared by the
  /// co-resident features a batched sampler pulls together, so the amortized
  /// cost is far below a full page.
  uint64_t miss_bytes = 256;
  double compute_rate_multiplier = 40.0;  ///< V100 vs one CPU core
  double sampling_overhead = 0.0;  ///< extra fraction of gather traffic
};

OutOfCoreProfile GinexProfile() {
  OutOfCoreProfile p;
  p.cache_boost = 1.3;  // provably-optimal in-memory caching
  p.miss_pattern = memsim::Pattern::kRandom;  // page reads, batched by sampler
  p.miss_scale = 1.0;
  p.miss_bytes = 256;
  p.sampling_overhead = 0.3;
  return p;
}

OutOfCoreProfile MariusProfile() {
  OutOfCoreProfile p;
  p.cache_boost = 1.2;
  p.miss_pattern = memsim::Pattern::kSequential;  // partition-ordered swaps
  p.miss_scale = 0.6;  // BETA ordering avoids revisiting partitions
  p.miss_bytes = 128;
  p.sampling_overhead = 0.1;
  return p;
}

}  // namespace

Result<RunReport> RunOutOfCoreFamily(const graph::Graph& g,
                                     const std::string& dataset,
                                     const EngineOptions& options,
                                     const exec::Context& outer_ctx) {
  memsim::MemorySystem* ms = outer_ctx.ms();
  ms->ResetTraffic();
  ms->ResetFaults();

  exec::TraceRecorder recorder;
  const exec::Context ctx =
      outer_ctx.WithThreads(options.num_threads).WithTrace(&recorder);
  ThreadPool* pool = ctx.pool();
  const int threads = ctx.threads();
  const OutOfCoreProfile profile = options.system == SystemKind::kGinex
                                       ? GinexProfile()
                                       : MariusProfile();

  RunReport report;
  report.system = SystemName(options.system);
  report.dataset = dataset;
  // Graph preprocessed into the system's on-SSD format.
  {
    exec::PhaseSpan read_span(ctx, "read");
    report.read_seconds = SimulatedGraphReadSeconds(ctx, GraphFormat::kCsr,
                                                    g.num_arcs(), g.num_nodes());
    read_span.AddSimSeconds(report.read_seconds);
  }

  const size_t dense_bytes = DenseWorkingSetBytes(g.num_nodes(), options.prone);
  const size_t dram_total =
      ms->CapacityBytes(Tier::kDram) * ms->topology().num_sockets();
  // Both systems keep a feature cache in a DRAM slice; the same fraction
  // budgets the frame pool below and the analytic hit model.
  constexpr double kFeatureCacheFraction = 0.75;
  const double naive_hit = std::min(
      1.0,
      static_cast<double>(dram_total) * kFeatureCacheFraction / dense_bytes);
  const double hit_rate = std::min(0.98, naive_hit * profile.cache_boost);

  // The in-DRAM feature cache is carved from the shared frame pool. Ginex's
  // provably-optimal cache never drops its resident set, so its frame is
  // pinned hot; Marius keeps eight partition buffers resident but unpinned,
  // the BETA rotation analogue of LRU recycling. Pin failures (a machine too
  // small to host the slice) are benign: the hit model above already scales
  // with the DRAM budget.
  const size_t cache_budget = static_cast<size_t>(
      static_cast<double>(dram_total) * kFeatureCacheFraction);
  buffer::BufferManager feature_cache(
      ms, buffer::BufferManager::Options{
              cache_budget, options.system == SystemKind::kGinex
                                ? buffer::EvictionPolicy::kHotPinned
                                : buffer::EvictionPolicy::kLru});
  const size_t cached_bytes = std::min(dense_bytes, cache_budget);
  buffer::PinHandle ginex_hot;  // held for the whole run
  if (options.system == SystemKind::kGinex) {
    auto pin = feature_cache.Pin(
        feature_cache.UniqueKey(Tier::kDram, Placement::kInterleaved),
        cached_bytes);
    if (pin.ok()) {
      ginex_hot = std::move(pin).value();
      (void)feature_cache.MarkHot(ginex_hot.key());
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      auto pin = feature_cache.Pin(
          feature_cache.UniqueKey(Tier::kDram, Placement::kInterleaved),
          cached_bytes / 8);
      (void)pin;  // handle dropped immediately: resident but evictable
    }
  }

  const graph::CsdbMatrix adjacency = graph::CsdbMatrix::FromGraph(g);
  CsrCache csr_cache;
  sparse::CsrSpmmPlan csr_plan;  // reused across the stage's SpMM calls
  const Placement ssd{Tier::kSsd, 0};
  const Placement dram{Tier::kDram, Placement::kInterleaved};
  embed::ProneOptions prone = options.prone;
  prone.pool = ctx.pool();  // host-side dense parallelism; sim-invariant
  internal::StageTracker stages;
  stages.Attach(&prone);

  embed::SpmmExecutor executor =
      [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
          linalg::DenseMatrix* out) -> Result<double> {
    exec::PhaseSpan span(ctx, stages.NextSpmmName());
    *out = linalg::DenseMatrix(m.num_rows(), in.cols());
    const graph::CsrMatrix& csr = csr_cache.Get(m);
    const size_t d = in.cols();

    memsim::ClockGroup clocks(threads);
    // Both systems batch work by edges (sampled subgraphs / buffer
    // partitions), so partition by nnz rather than rows; the parts and their
    // nnz/entropy metadata live in the reusable plan.
    if (!csr_plan.Matches(csr, threads, sparse::CsrSpmmPlan::Split::kEqualNnz)) {
      exec::PhaseSpan plan_span(ctx, "plan.build", /*aux=*/true);
      csr_plan = sparse::CsrSpmmPlan::Build(
          csr, threads, sparse::CsrSpmmPlan::Split::kEqualNnz);
    }
    // Fresh WorkerCtxs per execute: seed their fault-site cursors from the
    // execute epoch so the miss-read retry loop doesn't replay one draw key.
    const uint64_t fault_epoch = ms->NextFaultEpoch();
    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      const sparse::CsrPlanPart& part = csr_plan.parts()[worker];
      const uint32_t begin = part.row_begin;
      const uint32_t end = part.row_end;
      memsim::WorkerCtx wctx;
      wctx.worker = static_cast<int>(worker);
      wctx.cpu_socket =
          ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
      wctx.active_threads = threads;
      wctx.clock = &clocks.clock(worker);
      wctx.fault_site = fault_epoch;

      sparse::ComputeWorkloadCsr(csr, in, out, begin, end);
      const uint64_t nnz = part.nnz;

      // Sparse structure streams from SSD once per pass.
      wctx.clock->Advance(ms->AccessSeconds(ssd, wctx.cpu_socket, memsim::MemOp::kRead,
                                           memsim::Pattern::kSequential,
                                           (end - begin) * 8 + nnz * 8, 1, threads));
      // Feature gathers: hits in the DRAM cache, misses on SSD pages. The
      // sampling pipeline adds extra gather traffic.
      const double gathers =
          static_cast<double>(nnz) * d * (1.0 + profile.sampling_overhead);
      const uint64_t hits = static_cast<uint64_t>(gathers * hit_rate);
      const uint64_t misses = static_cast<uint64_t>(
          (gathers - hits) * profile.miss_scale);
      const double z = sched::NormalizedEntropy(part.entropy, csr.num_cols());
      wctx.clock->Advance(sparse::GatherSeconds(ms, wctx.cpu_socket, dram, z, hits,
                                               threads));
      if (misses > 0) {
        // Miss pages retry a couple of times under fault injection; a range
        // that keeps failing degrades to unamortized full-page re-reads
        // (identical to the plain charge when faults are disabled).
        memsim::FaultRetryPolicy policy;
        policy.max_retries = 2;
        const Status miss_read = ms->ChargeAccessWithRetry(
            &wctx, ssd, memsim::MemOp::kRead, profile.miss_pattern,
            misses * profile.miss_bytes, misses, policy);
        if (!miss_read.ok()) {
          ms->faults().CountDegraded();
          ms->ChargeAccess(&wctx, ssd, memsim::MemOp::kRead,
                           memsim::Pattern::kSequential, misses * 4096, misses);
        }
      }
      // GPU-class arithmetic.
      wctx.clock->Advance(ms->cost_model().ComputeSeconds(d * nnz * 2) /
                         profile.compute_rate_multiplier);
      // Result written back to host memory.
      wctx.clock->Advance(ms->AccessSeconds(dram, wctx.cpu_socket, memsim::MemOp::kWrite,
                                           memsim::Pattern::kSequential,
                                           (end - begin) * d * sizeof(float), 1,
                                           threads));
    });
    const double seconds = clocks.MaxSeconds();
    span.AddSimSeconds(seconds);
    return seconds;
  };

  OMEGA_ASSIGN_OR_RETURN(embed::EmbeddingResult emb,
                         embed::ProneEmbed(adjacency, prone, executor));
  // Dense algebra runs on the accelerator over host memory.
  const DenseStageModel dense_model =
      EstimateDenseStage(g.num_nodes(), options.prone);
  double dense_tsvd = 0.0;
  double dense_cheb = 0.0;
  {
    exec::PhaseSpan tsvd_span(ctx, "factorize.dense");
    dense_tsvd = DenseStageSeconds(ctx, dram, dense_model.tsvd_bytes,
                                   dense_model.tsvd_flops,
                                   profile.compute_rate_multiplier);
    tsvd_span.AddSimSeconds(dense_tsvd);
  }
  {
    exec::PhaseSpan cheb_span(ctx, "propagate.dense");
    dense_cheb = DenseStageSeconds(ctx, dram, dense_model.cheb_bytes,
                                   dense_model.cheb_flops,
                                   profile.compute_rate_multiplier);
    cheb_span.AddSimSeconds(dense_cheb);
  }
  report.factorize_seconds = emb.factorize_seconds + dense_tsvd;
  report.propagate_seconds = emb.propagate_seconds + dense_cheb;
  report.embed_seconds = report.factorize_seconds + report.propagate_seconds;
  report.total_seconds = report.read_seconds + report.embed_seconds;
  report.remote_fraction = ms->Traffic().RemoteFraction();
  report.faults_enabled = ms->faults_enabled();
  report.faults = ms->Faults();
  report.embedding = emb.ToOriginalOrder();
  report.phases = recorder.TakeRecords();
  if (options.evaluate_quality) {
    OMEGA_ASSIGN_OR_RETURN(double auc,
                           embed::LinkPredictionAuc(g, report.embedding,
                                                    options.quality_samples,
                                                    options.prone.seed));
    report.link_auc = auc;
  }
  return report;
}

}  // namespace omega::engine
