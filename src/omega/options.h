// System configurations evaluated in the paper (§IV-A "Baselines").

#pragma once

#include <string>

#include "embed/prone.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sched/hetero_placement.h"

namespace omega::durable {
class CheckpointStore;
}

namespace omega::engine {

/// Every system compared in Figs. 12 and 18.
enum class SystemKind {
  kOmega = 0,   ///< full OMeGa: CSDB + EaTA + WoFP + NaDP + ASL on DRAM+PM
  kOmegaDram,   ///< OMeGa optimizations, all data in DRAM (ideal baseline)
  kOmegaPm,     ///< OMeGa data paths entirely on PM (worst baseline)
  kProneDram,   ///< upstream-style ProNE: CSR + static row chunks, DRAM only
  kProneHm,     ///< ProNE on DRAM+PM without any HM-aware optimization
  kGinex,       ///< SSD-based out-of-core analogue (neighbor-cached gathers)
  kMariusGnn,   ///< SSD-based out-of-core analogue (partition-ordered I/O)
  kDistGer,     ///< distributed random-walk system analogue (4 machines)
  kDistDgl,     ///< distributed GNN system analogue (4 machines)
};

const char* SystemName(SystemKind kind);

/// Feature toggles of the OMeGa configurations (used by the ablation figures:
/// Fig. 14 turns WoFP off, Fig. 15 turns NaDP off, Table II swaps allocators).
struct OmegaFeatures {
  sched::AllocatorKind allocator = sched::AllocatorKind::kEntropyAware;
  bool use_wofp = true;
  bool use_nadp = true;  ///< false => OS Interleaved placement
  bool use_asl = true;
  prefetch::WofpOptions wofp;
  /// Overlap ASL's PM->DRAM staging fetches with the previous partition's
  /// compute (double buffering over the shared BufferManager). The staged
  /// dense operand is then gathered at DRAM cost while the fetch stream is
  /// charged concurrently via SimClock::OverlappedSeconds; off keeps the
  /// seed's synchronous charge model byte-identical. kOmega only.
  bool async_staging = false;
  /// When > 0, pins the ASL partition count instead of solving Eq. 9 — and
  /// keeps it pinned across fault-degraded passes (the degrade handler logs
  /// the override instead of re-solving).
  size_t asl_fixed_partitions = 0;
  /// Simulated PIM banks available for SpMM offload (0 disables the tier);
  /// OMeGa NaDP configurations only. Bank MRAM size and MAC rate come from
  /// the MemorySystem's topology and profiles.
  int pim_banks = 0;
  /// Which degree blocks the scheduler offloads when pim_banks > 0.
  sched::PimPolicy pim_placement = sched::PimPolicy::kAuto;
};

/// How the engines react to injected faults (consulted only when the
/// MemorySystem carries an enabled FaultPlan; otherwise dead config).
struct FaultRecoveryOptions {
  /// ASL partition loads: bounded retry with exponential backoff, then
  /// degradation to semi-external streaming (see stream::AslConfig).
  int asl_max_retries = 3;
  double asl_backoff_seconds = 1e-4;
  /// WoFP cache-tier probe retries before the engine drops the cache and
  /// falls back to PM-resident gathers.
  int wofp_probe_retries = 2;
  /// false: exhausted retries surface an IOError instead of degrading.
  bool allow_degraded = true;
};

/// Crash-consistent checkpointing of the OMeGa-family engines (off by
/// default; every field inert unless `store` is set, keeping the seed's runs
/// byte-identical). Checkpoints are committed snapshot groups in a
/// durable::CheckpointStore on the PM tier; their write/restore costs are
/// charged as PM traffic + persist barriers and land in RunReport's
/// ckpt_seconds / recovery_seconds (never in the embedding bytes).
///
/// Checkpoint sites are the phase boundaries "read", "factorize" and "embed"
/// plus every checkpoint_every-th Chebyshev term ("term.<k>"). The crash
/// hooks simulate a process kill at a named site: the run stops with
/// durable::KilledError after that site's work (and its checkpoint, unless
/// crash_tear_checkpoint models the kill landing mid-checkpoint — the final
/// entry is torn and the commit marker never written, so restore falls back
/// to the previous snapshot).
struct DurabilityOptions {
  /// The checkpoint log; nullptr disables durability entirely.
  durable::CheckpointStore* store = nullptr;
  /// Chebyshev terms between mid-propagation checkpoints; 0 checkpoints only
  /// at the stage boundaries.
  uint64_t checkpoint_every = 0;
  /// Resume from the store's last committed snapshot before running (a store
  /// with no surviving commit runs from scratch).
  bool restore = false;
  /// Test/CLI hook: simulated kill after this site ("" = never).
  std::string crash_after_phase;
  /// The kill lands mid-checkpoint: torn final entry, no commit.
  bool crash_tear_checkpoint = false;

  bool enabled() const { return store != nullptr; }
};

struct EngineOptions {
  SystemKind system = SystemKind::kOmega;
  int num_threads = 36;
  embed::ProneOptions prone;
  OmegaFeatures features;
  FaultRecoveryOptions fault_recovery;
  /// beta = BW_rand/BW_seq used by EaTA; defaults to the PM profile's ratio.
  double beta = 0.415;
  /// Compute link-prediction AUC on the produced embedding (adds host time).
  bool evaluate_quality = false;
  uint64_t quality_samples = 2000;
  /// Crash-consistent checkpointing (OMeGa-family systems); off by default.
  DurabilityOptions durability;
};

}  // namespace omega::engine
