// Distributed-system analogues for Fig. 18a: DistGER (information-oriented
// random walks) and DistDGL (distributed GNN training) on a 4-machine
// cluster.
//
// Substitution note (DESIGN.md): the paper compares wall-clock embedding
// time, attributing DistDGL's gap to sampling (~80% of runtime) and gradient
// synchronization, and DistGER's competitiveness to its communication-
// efficient walks. The analogues reproduce exactly that cost structure
// through the simulated cost model — per-machine memory-bound work in DRAM
// plus message volume on the network tier — without implementing the full
// training loops. They return no embedding.

#pragma once

#include "graph/graph.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"

namespace omega::engine {

/// Tunables of the distributed analogues, with the defaults used by the
/// benches. Exposed for the parameter-sensitivity tests.
struct DistParams {
  int machines = 4;
  int threads_per_machine = 36;

  // DistGER: information-oriented random walks + distributed SGNS.
  double ger_walks_per_node = 10.0;
  double ger_walk_length = 80.0;
  double ger_walk_touches_per_step = 4.0;  // alias/degree/neighbor/buffer probes
  double ger_window = 5.0;                 // effective SGNS context window
  double ger_sync_rounds = 4.0;

  // DistDGL: mini-batch GNN training.
  double dgl_epochs = 4.0;
  double dgl_fanout = 250.0;  // sampled neighborhood per node per epoch (2 hops)
  double dgl_remote_sample_fraction = 0.45;  // cut edges hit remote stores
  double dgl_train_ops_per_sample = 512.0;
  double dgl_sync_rounds = 24.0;     // gradient syncs

  /// Under an enabled fault plan, network phases are charged in this many
  /// slices so individual remote operations can time out independently; a
  /// timed-out read slice is retried against the machine's local replica, a
  /// timed-out sync slice is resent. Ignored (single bulk charge, byte-
  /// identical to the pre-fault simulation) when faults are disabled.
  int net_fault_slices = 32;

  /// Durable sync (0 = legacy bulk sync, byte-identical to the seed): the
  /// sync phase runs round by round through a CORFU-style replicated shared
  /// log — each machine's per-round update batch is sequenced and written to
  /// `log_replicas` replicas over the NET tier (quorum loss surfaces
  /// IOError). Every checkpoint_every_rounds rounds each machine persists
  /// its partition state to PM. Under a fault plan with machine-loss
  /// enabled, a machine killed after a round restores that checkpoint and
  /// replays the log past its watermark; the recovery is charged into
  /// RunReport's recovery_seconds and bucketed as `recovered`.
  int checkpoint_every_rounds = 0;
  int log_replicas = 3;
  int log_quorum = 0;  ///< 0 = majority (log_replicas / 2 + 1)
};

/// Analytic simulated runtime of one distributed system on `g`. Only
/// ctx.ms() is used (the machines are analytic, not pooled workers).
Result<RunReport> RunDistributedFamily(const graph::Graph& g,
                                       const std::string& dataset,
                                       const EngineOptions& options,
                                       const exec::Context& ctx,
                                       const DistParams& params = DistParams());

}  // namespace omega::engine
