#include "omega/engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "buffer/buffer_manager.h"
#include "buffer/staging.h"
#include "common/logging.h"
#include "durable/checkpoint.h"
#include "embed/quality.h"
#include "memsim/sim_clock.h"
#include "numa/nadp.h"
#include "omega/baselines.h"
#include "omega/distributed_sim.h"
#include "stream/asl.h"

namespace omega::engine {

namespace internal {

void Reservation::Release() {
  if (ms_ != nullptr && bytes_ > 0) ms_->Release(placement_, bytes_);
  ms_ = nullptr;
  bytes_ = 0;
}

Result<Reservation> Reservation::Make(memsim::MemorySystem* ms,
                                      memsim::Placement placement, size_t bytes) {
  OMEGA_RETURN_NOT_OK(ms->Reserve(placement, bytes));
  Reservation r;
  r.ms_ = ms;
  r.placement_ = placement;
  r.bytes_ = bytes;
  return r;
}

}  // namespace internal

RunReport FailedReport(SystemKind system, const std::string& dataset,
                       const Status& status) {
  RunReport report;
  report.system = SystemName(system);
  report.dataset = dataset;
  report.failed = true;
  report.failure = status.ToString();
  return report;
}

size_t SparseBytes(uint64_t num_arcs) {
  // col_list (4B) + nnz_list (4B) per stored element.
  return static_cast<size_t>(num_arcs) * 8;
}

size_t DenseWorkingSetBytes(uint64_t num_nodes, const embed::ProneOptions& prone) {
  // tSVD peak: Omega, Y, Q, B^T — four n x (dim+oversample) blocks.
  // Chebyshev peak: r0, T_{k-1}, T_k, T_{k+1}, the SpMM temporary, and the
  // accumulating output — six n x dim blocks live at once.
  const size_t l = prone.dim + prone.oversample;
  const size_t tsvd = 4 * num_nodes * l * sizeof(float);
  const size_t cheb = 6 * num_nodes * prone.dim * sizeof(float);
  return std::max(tsvd, cheb);
}

DenseStageModel EstimateDenseStage(uint64_t num_nodes,
                                   const embed::ProneOptions& prone) {
  const uint64_t n = num_nodes;
  const uint64_t l = prone.dim + prone.oversample;
  const uint64_t d = prone.dim;
  // Householder QR on an n x l block streams ~n*l^2 values; one QR per range
  // find plus two per power iteration, plus the B^T/GEMM passes (~2 more
  // n*l*l-ish passes).
  const uint64_t qr_passes = 2 + 2 * static_cast<uint64_t>(prone.power_iterations);
  DenseStageModel model;
  model.tsvd_bytes = (qr_passes + 2) * n * l * l * sizeof(float);
  model.tsvd_flops = (qr_passes + 2) * 2 * n * l * l;
  // Chebyshev recurrence: per term ~6 full passes over the n x d block
  // (zeroing, two AXPYs into T_next, the output AXPY, and operand reads).
  const uint64_t order = static_cast<uint64_t>(prone.chebyshev_order);
  model.cheb_bytes = order * 6 * n * d * sizeof(float);
  model.cheb_flops = order * 6 * n * d;
  return model;
}

double DenseStageSeconds(const exec::Context& ctx, memsim::Placement p,
                         uint64_t bytes, uint64_t flops,
                         double flops_rate_multiplier) {
  memsim::MemorySystem* ms = ctx.ms();
  const int threads = ctx.threads();
  const uint64_t per_thread_bytes = bytes / std::max(1, threads);
  const double read = ms->AccessSeconds(p, 0, memsim::MemOp::kRead,
                                        memsim::Pattern::kSequential,
                                        per_thread_bytes / 2, 1, threads);
  const double write = ms->AccessSeconds(p, 0, memsim::MemOp::kWrite,
                                         memsim::Pattern::kSequential,
                                         per_thread_bytes / 2, 1, threads);
  const double compute =
      ms->cost_model().ComputeSeconds(flops / std::max(1, threads)) /
      flops_rate_multiplier;
  return read + write + compute;
}

double SimulatedGraphReadSeconds(const exec::Context& ctx, GraphFormat format,
                                 uint64_t num_arcs, uint64_t num_nodes) {
  // Parse: the edge-list file (about 16 text bytes per arc) streams from SSD.
  // Build: both formats write the col/val payload sequentially; CSR
  // additionally scatters per-row counters across its O(|V|) row-pointer
  // array while bucketing edges, whereas CSDB's block metadata is
  // O(|degrees|) and stays cache-resident. This is the Fig. 19a difference.
  memsim::MemorySystem* ms = ctx.ms();
  const int threads = ctx.threads();
  const memsim::Placement ssd{memsim::Tier::kSsd, 0};
  const memsim::Placement pm{memsim::Tier::kPm, memsim::Placement::kInterleaved};
  const memsim::Placement dram{memsim::Tier::kDram, memsim::Placement::kInterleaved};

  const uint64_t arcs_per_thread = (num_arcs + threads - 1) / threads;
  double seconds = 0.0;
  seconds += ms->AccessSeconds(ssd, 0, memsim::MemOp::kRead,
                               memsim::Pattern::kSequential, arcs_per_thread * 16, 1,
                               threads);
  seconds += ms->AccessSeconds(pm, 0, memsim::MemOp::kWrite,
                               memsim::Pattern::kSequential, arcs_per_thread * 8, 1,
                               threads);
  // Sorting/bucketing arithmetic.
  seconds += ms->cost_model().ComputeSeconds(arcs_per_thread * 24);
  if (format == GraphFormat::kCsr) {
    // Row-pointer scatter (one 64B-line touch per arc) plus the O(|V|)
    // pointer array write.
    seconds += ms->AccessSeconds(dram, 0, memsim::MemOp::kWrite,
                                 memsim::Pattern::kRandom, arcs_per_thread * 64,
                                 arcs_per_thread, threads);
    seconds +=
        ms->AccessSeconds(pm, 0, memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                          (num_nodes / threads + 1) * 8, 1, threads);
  } else {
    // Degree-sort pass plus the O(|degrees|) block metadata (negligible I/O).
    seconds += ms->cost_model().ComputeSeconds((num_nodes / threads + 1) * 32);
  }
  return seconds;
}

namespace {

// Snapshot stages of the OMeGa-family engines. Stored in each checkpoint's
// meta entry; restore skips (and does not recharge) everything at or before
// the stage, which is what makes a resumed run's embedding bitwise identical
// to an uninterrupted one.
enum CkptStage : uint32_t {
  kStageNone = 0,
  kStageReadDone = 1,       ///< graph read + format build done
  kStageFactorizeDone = 2,  ///< stage-1 basis R available ("r0")
  kStagePropagate = 3,      ///< mid-Chebyshev ("t_prev"/"t_cur"/"partial")
  kStageEmbedDone = 4,      ///< final embedding available ("vectors" + perm)
};

// Simulated seconds travel through checkpoint words bit-exactly.
uint64_t SecondsToBits(double s) {
  uint64_t b;
  std::memcpy(&b, &s, sizeof(b));
  return b;
}
double BitsToSeconds(uint64_t b) {
  double s;
  std::memcpy(&s, &b, sizeof(s));
  return s;
}

// OMeGa / OMeGa-DRAM / OMeGa-PM share one implementation parameterized by
// where data lives.
Result<RunReport> RunOmegaFamily(const graph::Graph& g, const std::string& dataset,
                                 const EngineOptions& options,
                                 const exec::Context& outer_ctx) {
  using memsim::Placement;
  using memsim::Tier;
  memsim::MemorySystem* ms = outer_ctx.ms();
  ms->ResetTraffic();
  ms->ResetFaults();

  // The run records its phases into a local recorder that becomes
  // report.phases; RunEmbedding forwards them to any outer recorder.
  exec::TraceRecorder recorder;
  const exec::Context ctx =
      outer_ctx.WithThreads(options.num_threads).WithTrace(&recorder);
  const int threads = ctx.threads();

  RunReport report;
  report.system = SystemName(options.system);
  report.dataset = dataset;

  // --- Durability: restore, checkpoint cadence, simulated kill sites --------
  // All of it inert (and byte-identical to the seed) unless a CheckpointStore
  // is attached. Restore reads the last committed snapshot back from PM
  // (charged into "ckpt.restore" / recovery_seconds) and truncates any torn
  // tail a mid-checkpoint crash left behind, so the log stays appendable.
  const DurabilityOptions& durability = options.durability;
  durable::CheckpointStore* ckpt_store = durability.store;
  double ckpt_seconds = 0.0;
  double restored_read = 0.0;
  double restored_factorize = 0.0;
  double restored_propagate = 0.0;
  uint32_t resume_stage = kStageNone;
  durable::CheckpointSnapshot resume_snap;
  if (ckpt_store != nullptr && durability.restore) {
    exec::PhaseSpan restore_span(ctx, "ckpt.restore");
    durable::CkptCosts costs;
    auto snap = durable::ReadLastSnapshot(ckpt_store, &costs);
    restore_span.AddSimSeconds(costs.seconds);
    restore_span.AddCkptCounters(costs.entries, costs.bytes, costs.barriers);
    report.recovery_seconds += costs.seconds;
    ckpt_store->TruncateToValidPrefix();
    if (snap.ok()) {
      resume_snap = std::move(snap).value();
      resume_stage = resume_snap.stage;
      if (resume_snap.words.size() < 3) {
        return Status::IOError("checkpoint snapshot missing timing words");
      }
      restored_read = BitsToSeconds(resume_snap.words[0]);
      restored_factorize = BitsToSeconds(resume_snap.words[1]);
      restored_propagate = BitsToSeconds(resume_snap.words[2]);
    } else if (!snap.status().IsNotFound()) {
      return snap.status();
    }
    // NotFound: nothing committed survived — run from scratch.
  }
  // Simulated-kill test hook: true when the configured crash site is `site`.
  auto kill_here = [&](const std::string& site) {
    return ckpt_store != nullptr && durability.crash_after_phase == site;
  };
  // Stage-seconds accumulators feeding checkpoint metadata; they start from
  // the restored values so a later checkpoint carries whole-run stage times.
  double factorize_spmm_seconds = restored_factorize;
  double propagate_spmm_seconds = restored_propagate;
  // Writes one snapshot group after `site` completes (torn when the
  // simulated kill lands mid-checkpoint), then dies if `site` is the kill
  // site.
  auto checkpoint =
      [&](const std::string& site, uint32_t stage, uint64_t next_term,
          std::vector<std::pair<std::string, linalg::DenseMatrix>> matrices,
          std::vector<uint64_t> extra_words) -> Status {
    durable::CheckpointSnapshot snap;
    snap.stage = stage;
    snap.next_term = next_term;
    snap.matrices = std::move(matrices);
    snap.words = {SecondsToBits(report.read_seconds),
                  SecondsToBits(factorize_spmm_seconds),
                  SecondsToBits(propagate_spmm_seconds)};
    snap.words.insert(snap.words.end(), extra_words.begin(), extra_words.end());
    {
      exec::PhaseSpan span(ctx, "ckpt.write");
      const bool torn = kill_here(site) && durability.crash_tear_checkpoint;
      auto costs = torn ? durable::WriteSnapshotTorn(ckpt_store, snap)
                        : durable::WriteSnapshot(ckpt_store, snap);
      OMEGA_RETURN_NOT_OK(costs.status());
      span.AddSimSeconds(costs.value().seconds);
      span.AddCkptCounters(costs.value().entries, costs.value().bytes,
                           costs.value().barriers);
      ckpt_seconds += costs.value().seconds;
    }
    if (kill_here(site)) return durable::KilledError(site);
    return Status::OK();
  };

  const graph::CsdbMatrix adjacency = graph::CsdbMatrix::FromGraph(g);
  if (resume_stage >= kStageReadDone) {
    // Resumed past the read: the pre-crash run already paid it.
    report.read_seconds = restored_read;
  } else {
    {
      exec::PhaseSpan read_span(ctx, "read");
      report.read_seconds =
          SimulatedGraphReadSeconds(ctx, GraphFormat::kCsdb, g.num_arcs(),
                                    g.num_nodes());
      read_span.AddSimSeconds(report.read_seconds);
    }
    if (ckpt_store != nullptr) {
      OMEGA_RETURN_NOT_OK(checkpoint("read", kStageReadDone, 0, {}, {}));
    }
  }

  // --- Placement decisions + capacity reservations ---------------------------
  // Two sparse structures are live at peak: the adjacency plus either the
  // stage-1 target matrix or the stage-2 propagation matrix (same pattern).
  const size_t sparse_bytes = 2 * SparseBytes(g.num_arcs());
  const size_t dense_bytes = DenseWorkingSetBytes(g.num_nodes(), options.prone);
  const Placement interleave_dram{Tier::kDram, Placement::kInterleaved};
  const Placement interleave_pm{Tier::kPm, Placement::kInterleaved};

  std::vector<internal::Reservation> reservations;
  numa::NadpOptions nadp;
  nadp.num_threads = threads;
  nadp.allocator = options.features.allocator;
  nadp.beta = options.beta;
  nadp.enabled = options.features.use_nadp;
  nadp.use_wofp = options.features.use_wofp;
  nadp.wofp = options.features.wofp;

  bool stream_dense = false;  // ASL engaged?
  size_t asl_dram_budget = 0;
  // Async double-buffered staging rides the ASL pipeline, so it applies only
  // to heterogeneous OMeGa and only when ASL itself is on.
  const bool async_staging = options.features.async_staging &&
                             options.system == SystemKind::kOmega &&
                             options.features.use_asl;

  switch (options.system) {
    case SystemKind::kOmegaDram: {
      // Everything in DRAM; fails outright when it does not fit (Fig. 12's
      // missing TW-2010/FR bars).
      OMEGA_ASSIGN_OR_RETURN(
          auto r1, internal::Reservation::Make(ms, interleave_dram, sparse_bytes));
      OMEGA_ASSIGN_OR_RETURN(
          auto r2, internal::Reservation::Make(ms, interleave_dram, dense_bytes));
      reservations.push_back(std::move(r1));
      reservations.push_back(std::move(r2));
      nadp.sparse_tier = Tier::kDram;
      nadp.dense_tier = Tier::kDram;
      nadp.result_tier = Tier::kDram;
      break;
    }
    case SystemKind::kOmegaPm: {
      // Worst baseline: every data path on PM, including the WoFP store (so
      // prefetch hits buy nothing).
      OMEGA_ASSIGN_OR_RETURN(
          auto r1, internal::Reservation::Make(ms, interleave_pm,
                                               sparse_bytes + dense_bytes));
      reservations.push_back(std::move(r1));
      nadp.sparse_tier = Tier::kPm;
      nadp.dense_tier = Tier::kPm;
      nadp.result_tier = Tier::kPm;
      nadp.wofp.cache_placement = {Tier::kPm, 0};
      break;
    }
    case SystemKind::kOmega:
    default: {
      // Heterogeneous: sparse matrix and dense working set live on PM (the
      // App-directed data home); DRAM is a managed window holding the WoFP
      // stores, socket-local intermediates, and — when the working set
      // exceeds it — the ASL staging buffers whose PM<->DRAM transfers
      // overlap with compute. Gathers therefore hit PM unless WoFP
      // intercepted the row, which is exactly §III-C's design.
      OMEGA_ASSIGN_OR_RETURN(
          auto r1, internal::Reservation::Make(ms, interleave_pm,
                                               sparse_bytes + dense_bytes));
      reservations.push_back(std::move(r1));
      const size_t dram_free =
          ms->AvailableBytes(Tier::kDram, 0) + ms->AvailableBytes(Tier::kDram, 1);
      if (dense_bytes > dram_free / 2) {
        // The dense working set exceeds the DRAM window: blocks must be
        // staged PM <-> DRAM regardless; use_asl decides whether the
        // staging overlaps with compute (§III-E) or runs synchronously.
        stream_dense = true;
        asl_dram_budget = dram_free / 2;
      }
      if (async_staging && !stream_dense) {
        // Async staging routes the SpMM dense operand through the ASL
        // pipeline even when the working set fits DRAM: partitions are
        // staged PM -> DRAM ahead of compute and gathered at DRAM cost,
        // with the fetch stream overlapped against compute (Fig. 9).
        asl_dram_budget = dram_free / 2;
      }
      nadp.sparse_tier = Tier::kPm;
      nadp.dense_tier = Tier::kPm;
      nadp.result_tier = Tier::kDram;
      break;
    }
  }

  // Simulated PIM gang: only heterogeneous OMeGa offloads (the DRAM/PM
  // baselines pin every byte to one tier by construction, and the
  // Interleaved baseline ignores the config inside NaDP). Bank geometry and
  // per-bank MAC rate come from the simulated machine, so profile overrides
  // flow into the placement's cost model automatically.
  if (options.system == SystemKind::kOmega && options.features.pim_banks > 0) {
    nadp.pim.banks = options.features.pim_banks;
    nadp.pim.mram_bytes_per_bank =
        ms->topology().config().pim_mram_bytes_per_bank;
    nadp.pim.bank_ops_per_second =
        ms->cost_model().profiles().pim_bank_ops_per_second;
    nadp.pim.policy = options.features.pim_placement;
  }

  // ASL staging engages either because the dense working set exceeds the
  // DRAM window (stream_dense) or because async staging opted in. With async
  // on, staged partitions live in a shared BufferManager pool (LRU over the
  // DRAM window) and each fetch contends with compute for bandwidth.
  const bool staged_spmm = stream_dense || async_staging;
  const double stage_slowdown =
      async_staging
          ? buffer::FetchSlowdown(ms, interleave_pm, interleave_dram, threads)
          : 1.0;
  std::unique_ptr<buffer::BufferManager> stage_frames;
  if (async_staging) {
    stage_frames = std::make_unique<buffer::BufferManager>(
        ms, buffer::BufferManager::Options{asl_dram_budget,
                                           buffer::EvictionPolicy::kLru});
  }

  // --- The charged SpMM executor handed to the embedder ----------------------
  embed::ProneOptions prone = options.prone;
  prone.pool = ctx.pool();  // host-side dense parallelism; sim-invariant
  internal::StageTracker stages;
  stages.Attach(&prone);

  // Durability hooks into the ProNE pipeline: a stage-boundary checkpoint
  // after the tSVD, a cadence checkpoint (and the term.<k> kill sites) inside
  // the Chebyshev recurrence, and the resume wiring that skips completed
  // stages with the restored state.
  embed::ProneDurability prone_durability;
  linalg::DenseMatrix resume_r0;
  embed::ChebyshevResume cheb_resume;
  if (ckpt_store != nullptr) {
    prone_durability.after_factorize =
        [&](const linalg::DenseMatrix& r0) -> Status {
      return checkpoint("factorize", kStageFactorizeDone, 0, {{"r0", r0}}, {});
    };
    prone_durability.cheb.after_term =
        [&](size_t next_term, const linalg::DenseMatrix& t_prev,
            const linalg::DenseMatrix& t_cur,
            const linalg::DenseMatrix& partial) -> Status {
      const uint64_t term = next_term - 1;  // the term that just landed
      const std::string site = "term." + std::to_string(term);
      if (durability.checkpoint_every > 0 &&
          term % durability.checkpoint_every == 0) {
        return checkpoint(site, kStagePropagate, next_term,
                          {{"t_prev", t_prev},
                           {"t_cur", t_cur},
                           {"partial", partial}},
                          {});
      }
      if (kill_here(site)) return durable::KilledError(site);
      return Status::OK();
    };
    if (resume_stage == kStageFactorizeDone) {
      for (auto& [tag, m] : resume_snap.matrices) {
        if (tag == "r0") resume_r0 = std::move(m);
      }
      if (resume_r0.rows() == 0) {
        return Status::IOError("checkpoint snapshot missing the r0 matrix");
      }
      prone_durability.resume_r0 = &resume_r0;
    } else if (resume_stage == kStagePropagate) {
      for (auto& [tag, m] : resume_snap.matrices) {
        if (tag == "t_prev") {
          cheb_resume.t_prev = std::move(m);
        } else if (tag == "t_cur") {
          cheb_resume.t_cur = std::move(m);
        } else if (tag == "partial") {
          cheb_resume.partial = std::move(m);
        }
      }
      cheb_resume.next_term = resume_snap.next_term;
      if (!cheb_resume.valid() || cheb_resume.partial.rows() == 0 ||
          cheb_resume.t_prev.rows() == 0) {
        return Status::IOError("checkpoint snapshot missing recurrence state");
      }
      // Stage 1 is skipped; the resumed recurrence reads only the basis'
      // shape, so the accumulator doubles as a stand-in for R.
      resume_r0 = cheb_resume.partial;
      prone_durability.resume_r0 = &resume_r0;
      prone_durability.cheb.resume = &cheb_resume;
    }
    prone.durability = &prone_durability;
  }
  double wofp_build_seconds = 0.0;
  // PIM sub-phase seconds accumulate across every SpMM and surface as three
  // end-of-run aux records (contained in the SpMM phases, like wofp_build).
  double pim_transfer_seconds = 0.0;
  double pim_compute_seconds = 0.0;
  double pim_reduce_seconds = 0.0;
  uint64_t pim_degraded_blocks = 0;

  // Plan/execute split: ProNE issues dozens of SpMMs against only two sparse
  // structures (the stage-1 target and the stage-2 propagation matrix), so
  // the inspector work — EaTA allocation, in-degree scan, WoFP stores, and
  // the ASL Eq. 9 solve — is cached across calls. Plan reuse is host-side
  // only; every simulated charge is replayed per call (two-clock contract).
  numa::NadpPlanCache plan_cache;
  struct AslPartitionCacheEntry {
    size_t dense_rows = 0;
    size_t dense_cols = 0;
    size_t partitions = 0;
  } asl_parts;

  // Fault recovery state: a dropped WoFP cache stays dropped for the rest of
  // the run (flipping nadp.use_wofp changes the plan-cache key, so the next
  // SpMM rebuilds a cache-less plan = PM-resident gathers). The site cursors
  // persist across SpMM calls so repeated passes draw fresh faults.
  bool wofp_dropped = false;
  uint64_t wofp_probe_site = 0;
  uint64_t asl_fault_site = 0;

  // Mirrors ProneEmbed's per-stage accumulation so checkpoint metadata can
  // carry whole-run stage seconds (same values, same addition order).
  auto account_stage_seconds = [&](double seconds) {
    (stages.stage() == "propagate" ? propagate_spmm_seconds
                                   : factorize_spmm_seconds) += seconds;
  };

  embed::SpmmExecutor executor =
      [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
          linalg::DenseMatrix* out) -> Result<double> {
    exec::PhaseSpan span(ctx, stages.NextSpmmName());
    *out = linalg::DenseMatrix(m.num_rows(), in.cols());
    double fault_overhead = 0.0;
    if (ms->faults_enabled() && nadp.use_wofp && !wofp_dropped) {
      // Probe the cache tier before relying on it; a tier that keeps
      // faulting costs more through the gather-intercept path than the PM
      // reads it saves, so the engine degrades by dropping the cache.
      const prefetch::CacheProbeResult probe = prefetch::ProbeCacheTier(
          ms, nadp.wofp.cache_placement, options.fault_recovery.wofp_probe_retries,
          memsim::kFaultStreamWofpProbe, &wofp_probe_site);
      fault_overhead += probe.seconds;
      if (!probe.healthy) {
        wofp_dropped = true;
        nadp.use_wofp = false;
        exec::PhaseRecord drop;
        drop.name = "fault.wofp.drop";
        drop.aux = true;
        recorder.Record(std::move(drop));
      }
    }
    // Async staging gathers the staged operand at DRAM cost: the plan (and
    // its WoFP stores / charge metadata) is keyed on the DRAM dense tier, so
    // the one-slot cache never thrashes against the synchronous variant.
    numa::NadpOptions plan_opts = nadp;
    if (async_staging) plan_opts.dense_tier = Tier::kDram;
    // The PIM ship cost is width-invariant while every other cost scales
    // with the operand width, so the placement — and hence the plan key —
    // is priced per dense width.
    if (plan_opts.pim.banks > 0) plan_opts.pim.dense_cols = in.cols();
    if (!plan_cache.Contains(m, plan_opts)) {
      // Aux: plan building charges nothing, so its sim time is zero; the
      // span still captures the host wall time the rebuild costs.
      exec::PhaseSpan plan_span(ctx, "plan.build", /*aux=*/true);
      plan_cache.Get(m, plan_opts, ctx);
      plan_span.AddPlanCounters(0, 1, 0);
    }
    const numa::NadpPlan& plan = plan_cache.Get(m, plan_opts, ctx);
    span.AddPlanCounters(1, 0, 0);
    if (!staged_spmm) {
      const numa::NadpResult r = numa::NadpExecute(plan, m, in, out, ctx);
      wofp_build_seconds += r.wofp_build_seconds;
      pim_transfer_seconds += r.pim_transfer_seconds;
      pim_compute_seconds += r.pim_compute_seconds;
      pim_reduce_seconds += r.pim_reduce_seconds;
      pim_degraded_blocks += r.pim_degraded_blocks;
      span.AddSimSeconds(fault_overhead + r.phase_seconds);
      account_stage_seconds(fault_overhead + r.phase_seconds);
      return fault_overhead + r.phase_seconds;
    }
    // ASL: stream the dense operand's column partitions PM -> DRAM and
    // overlap each load with the previous partition's SpMM (§III-E).
    stream::AslConfig cfg;
    cfg.dense_rows = m.num_rows();
    cfg.dense_cols = in.cols();
    cfg.element_bytes = sizeof(float);
    cfg.sparse_bytes = sparse_bytes;
    cfg.dram_budget = asl_dram_budget + sparse_bytes +
                      2 * cfg.dense_rows * cfg.dense_cols * sizeof(float);
    // Eq. 9 depends only on the dense shape (the budget terms are run
    // constants), so the solve is cached alongside the NaDP plan. A pinned
    // partition count (--asl-partitions) bypasses both solve and cache.
    const size_t user_fixed = options.features.asl_fixed_partitions;
    if (user_fixed > 0) {
      cfg.fixed_partitions =
          std::min(user_fixed, std::max<size_t>(1, cfg.dense_cols));
    } else {
      if (asl_parts.partitions == 0 || asl_parts.dense_rows != cfg.dense_rows ||
          asl_parts.dense_cols != cfg.dense_cols) {
        // Eq. 9 balances per-partition sparse re-walks against staged-load
        // hiding, so async mode trusts it unchanged: a single partition
        // (operand fits the window) degenerates to one staged prefetch whose
        // gathers still run at DRAM cost.
        OMEGA_ASSIGN_OR_RETURN(const size_t n, stream::OptimalPartitions(cfg));
        asl_parts = {cfg.dense_rows, cfg.dense_cols, n};
      }
      cfg.fixed_partitions = asl_parts.partitions;
    }
    cfg.max_load_retries = options.fault_recovery.asl_max_retries;
    cfg.retry_backoff_seconds = options.fault_recovery.asl_backoff_seconds;
    cfg.allow_degraded = options.fault_recovery.allow_degraded;
    cfg.fault_site = &asl_fault_site;
    cfg.async_staging = async_staging;
    cfg.fetch_slowdown = stage_slowdown;
    stream::AslStreamer streamer(ctx, cfg, interleave_pm, interleave_dram,
                                 stage_frames.get());
    auto run = streamer.Run([&](size_t, size_t col_begin, size_t col_end) {
      const numa::NadpResult r =
          numa::NadpExecute(plan, m, in, out, ctx, col_begin, col_end);
      wofp_build_seconds += r.wofp_build_seconds;
      pim_transfer_seconds += r.pim_transfer_seconds;
      pim_compute_seconds += r.pim_compute_seconds;
      pim_reduce_seconds += r.pim_reduce_seconds;
      pim_degraded_blocks += r.pim_degraded_blocks;
      return r.phase_seconds;
    });
    if (!run.ok()) return run.status();
    if (run.value().rebuild_recommended) {
      if (user_fixed > 0) {
        // The partition count is pinned: honor it across the degraded pass
        // and log the override instead of silently re-solving Eq. 9.
        OMEGA_LOG(Warning)
            << "ASL: a partition degraded but the partition count is pinned "
               "at "
            << user_fixed << " (--asl-partitions); keeping the fixed count "
            << "instead of re-solving Eq. 9";
        exec::PhaseRecord degrade;
        degrade.name = "fault.asl.degrade (fixed-partitions pinned)";
        degrade.aux = true;
        recorder.Record(std::move(degrade));
      } else {
        // A partition degraded to semi-external streaming: the PM home is
        // unreliable, so drop the cached Eq. 9 solve and re-partition on
        // the next SpMM.
        asl_parts = {};
        exec::PhaseRecord degrade;
        degrade.name = "fault.asl.degrade";
        degrade.aux = true;
        recorder.Record(std::move(degrade));
      }
    }
    double seconds = fault_overhead;
    if (async_staging) {
      // Partition k+1's fetch ran behind partition k's compute; the phase
      // pays only the exposed remainder and reports what was hidden.
      seconds += run.value().overlapped_seconds;
      span.AddFetchSeconds(run.value().fetch_seconds,
                           run.value().hidden_seconds);
    } else {
      // Without ASL the same partition loads happen synchronously: nothing
      // is hidden behind compute.
      seconds += options.features.use_asl ? run.value().total_seconds
                                          : run.value().serial_seconds;
    }
    span.AddSimSeconds(seconds);
    account_stage_seconds(seconds);
    return seconds;
  };

  embed::EmbeddingResult emb;
  if (resume_stage == kStageEmbedDone) {
    // The pre-crash run finished embedding: restore the final vectors and
    // their permutation; only the dense stages below are recharged.
    for (auto& [tag, m] : resume_snap.matrices) {
      if (tag == "vectors") emb.vectors = std::move(m);
    }
    if (emb.vectors.rows() == 0) {
      return Status::IOError("checkpoint snapshot missing the embedding");
    }
    if (resume_snap.words.size() < 4 ||
        resume_snap.words.size() < 4 + resume_snap.words[3]) {
      return Status::IOError("checkpoint snapshot missing the permutation");
    }
    const uint64_t perm_size = resume_snap.words[3];
    emb.perm.reserve(perm_size);
    for (uint64_t i = 0; i < perm_size; ++i) {
      emb.perm.push_back(
          static_cast<graph::NodeId>(resume_snap.words[4 + i]));
    }
  } else {
    OMEGA_ASSIGN_OR_RETURN(emb, embed::ProneEmbed(adjacency, prone, executor));
    if (ckpt_store != nullptr) {
      std::vector<uint64_t> perm_words;
      perm_words.reserve(emb.perm.size() + 1);
      perm_words.push_back(emb.perm.size());
      for (graph::NodeId v : emb.perm) perm_words.push_back(v);
      OMEGA_RETURN_NOT_OK(checkpoint("embed", kStageEmbedDone, 0,
                                     {{"vectors", emb.vectors}},
                                     std::move(perm_words)));
    }
  }

  // WoFP warm-up runs concurrently inside each SpMM's workers; its straggler
  // seconds are already contained in the SpMM phases, so it is an aux record.
  if (wofp_build_seconds > 0.0) {
    exec::PhaseRecord warmup;
    warmup.name = "wofp_build";
    warmup.sim_seconds = wofp_build_seconds;
    warmup.aux = true;
    recorder.Record(std::move(warmup));
  }

  // PIM sub-phases, likewise contained in the SpMM phases. A degraded-block
  // count piggybacks on pim.reduce's name so fault runs stay inspectable.
  if (pim_transfer_seconds + pim_compute_seconds + pim_reduce_seconds > 0.0) {
    const std::pair<const char*, double> pim_phases[] = {
        {"pim.transfer", pim_transfer_seconds},
        {"pim.compute", pim_compute_seconds},
        {"pim.reduce", pim_reduce_seconds},
    };
    for (const auto& [name, seconds] : pim_phases) {
      exec::PhaseRecord rec;
      rec.name = name;
      rec.sim_seconds = seconds;
      rec.aux = true;
      if (rec.name == "pim.reduce" && pim_degraded_blocks > 0) {
        rec.name += " (degraded=" + std::to_string(pim_degraded_blocks) + ")";
      }
      recorder.Record(std::move(rec));
    }
  }

  // Plan-cache accounting: the counters were previously kept by the cache
  // but never reported; one aux record makes hit/miss/invalidation behavior
  // visible in the trace JSON and the bench phase tables.
  {
    exec::PhaseRecord rec;
    rec.name = "plan.cache";
    rec.aux = true;
    rec.plan_hits = plan_cache.hits();
    rec.plan_misses = plan_cache.misses();
    rec.plan_invalidations = plan_cache.invalidations();
    recorder.Record(std::move(rec));
  }

  // Dense-algebra stages run where the dense working set lives: DRAM for the
  // ideal, PM for the worst baseline, and the staged DRAM window (plus the
  // PM streams feeding it) for heterogeneous OMeGa.
  const DenseStageModel dense_model =
      EstimateDenseStage(g.num_nodes(), options.prone);
  double dense_tsvd = 0.0;
  double dense_cheb = 0.0;
  {
    exec::PhaseSpan tsvd_span(ctx, "factorize.dense");
    if (options.system == SystemKind::kOmegaPm) {
      dense_tsvd = DenseStageSeconds(ctx, interleave_pm, dense_model.tsvd_bytes,
                                     dense_model.tsvd_flops);
    } else if (options.system == SystemKind::kOmegaDram) {
      dense_tsvd = DenseStageSeconds(ctx, interleave_dram, dense_model.tsvd_bytes,
                                     dense_model.tsvd_flops);
    } else {
      // kOmega: ops on the DRAM window + one PM stream in/out of each block.
      const uint64_t l = options.prone.dim + options.prone.oversample;
      const uint64_t stage_tsvd =
          2 * g.num_nodes() * l * sizeof(float) *
          (2 + 2 * static_cast<uint64_t>(options.prone.power_iterations));
      const double window = DenseStageSeconds(
          ctx, interleave_dram, dense_model.tsvd_bytes, dense_model.tsvd_flops);
      const double stage = DenseStageSeconds(ctx, interleave_pm, stage_tsvd, 0);
      if (async_staging) {
        // Stage the next block PM -> DRAM behind the current block's algebra.
        dense_tsvd = memsim::SimClock::OverlappedSeconds(window, stage,
                                                         stage_slowdown);
        tsvd_span.AddFetchSeconds(stage, window + stage - dense_tsvd);
      } else {
        dense_tsvd = window + stage;
      }
    }
    tsvd_span.AddSimSeconds(dense_tsvd);
  }
  {
    exec::PhaseSpan cheb_span(ctx, "propagate.dense");
    if (options.system == SystemKind::kOmegaPm) {
      dense_cheb = DenseStageSeconds(ctx, interleave_pm, dense_model.cheb_bytes,
                                     dense_model.cheb_flops);
    } else if (options.system == SystemKind::kOmegaDram) {
      dense_cheb = DenseStageSeconds(ctx, interleave_dram, dense_model.cheb_bytes,
                                     dense_model.cheb_flops);
    } else {
      const uint64_t stage_cheb =
          2 * g.num_nodes() * options.prone.dim * sizeof(float) *
          static_cast<uint64_t>(options.prone.chebyshev_order);
      const double window = DenseStageSeconds(
          ctx, interleave_dram, dense_model.cheb_bytes, dense_model.cheb_flops);
      const double stage = DenseStageSeconds(ctx, interleave_pm, stage_cheb, 0);
      if (async_staging) {
        dense_cheb = memsim::SimClock::OverlappedSeconds(window, stage,
                                                         stage_slowdown);
        cheb_span.AddFetchSeconds(stage, window + stage - dense_cheb);
      } else {
        dense_cheb = window + stage;
      }
    }
    cheb_span.AddSimSeconds(dense_cheb);
  }

  // factorize_spmm_seconds == restored + emb.factorize_seconds (same addition
  // order as ProneEmbed's accumulator), so with durability off this is the
  // seed's emb.factorize_seconds + dense_tsvd bit-for-bit.
  report.factorize_seconds = factorize_spmm_seconds + dense_tsvd;
  report.propagate_seconds = propagate_spmm_seconds + dense_cheb;
  report.embed_seconds = report.factorize_seconds + report.propagate_seconds;
  report.ckpt_seconds = ckpt_seconds;
  report.total_seconds = report.read_seconds + report.embed_seconds +
                         report.ckpt_seconds + report.recovery_seconds;
  report.remote_fraction = ms->Traffic().RemoteFraction();
  report.faults_enabled = ms->faults_enabled();
  report.faults = ms->Faults();
  report.embedding = emb.ToOriginalOrder();
  report.phases = recorder.TakeRecords();

  if (options.evaluate_quality) {
    OMEGA_ASSIGN_OR_RETURN(double auc,
                           embed::LinkPredictionAuc(g, report.embedding,
                                                    options.quality_samples,
                                                    options.prone.seed));
    report.link_auc = auc;
  }
  return report;
}

}  // namespace

Result<RunReport> RunEmbedding(const graph::Graph& g, const std::string& dataset,
                               const EngineOptions& options,
                               const exec::Context& ctx) {
  OMEGA_CHECK(ctx.pool() == nullptr ||
              ctx.pool()->size() >= static_cast<size_t>(options.num_threads))
      << "thread pool too small for engine options";
  auto run = [&]() -> Result<RunReport> {
    switch (options.system) {
      case SystemKind::kOmega:
      case SystemKind::kOmegaDram:
      case SystemKind::kOmegaPm:
        return RunOmegaFamily(g, dataset, options, ctx);
      case SystemKind::kProneDram:
      case SystemKind::kProneHm:
        return RunProneFamily(g, dataset, options, ctx);
      case SystemKind::kGinex:
      case SystemKind::kMariusGnn:
        return RunOutOfCoreFamily(g, dataset, options, ctx);
      case SystemKind::kDistGer:
      case SystemKind::kDistDgl:
        return RunDistributedFamily(g, dataset, options, ctx);
    }
    return Status::InvalidArgument("unknown system kind");
  };
  Result<RunReport> result = run();
  // Forward the run's phases to any recorder attached by the caller.
  if (result.ok() && ctx.trace() != nullptr) {
    for (const exec::PhaseRecord& r : result.value().phases) {
      ctx.trace()->Record(r);
    }
  }
  return result;
}

}  // namespace omega::engine
