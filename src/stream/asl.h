// ASL — Asynchronous Adaptive Streaming Loading (§III-E, Fig. 11).
//
// The dense matrices of the embedding pipeline exceed DRAM, so they are kept
// on PM and streamed into DRAM in column partitions. ASL sizes the partition
// count n from the peak-memory model
//   M_l + M_al + M_s + M_r + M_ri + M_li <= M_total              (Eq. 8)
// which with M_l = M_al = M_li = (d/n)|V|s and M_r = M_ri = d|V|s solves to
//   n >= 3 d |V| s / (M_total - M_s - 2 d |V| s)                 (Eq. 9)
// and overlaps each partition's PM->DRAM load with the previous partition's
// compute (double buffering): the pipeline's simulated duration is
//   load_0 + sum_k max(compute_k, load_{k+1}) + compute_{n-1}.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/status.h"
#include "memsim/memory_system.h"
#include "omega/exec_context.h"

namespace omega::stream {

/// Inputs of the Eq. 8/9 sizing model.
struct AslConfig {
  size_t dense_rows = 0;     ///< |V|
  size_t dense_cols = 0;     ///< d (embedding dimension)
  size_t element_bytes = 4;  ///< size(type)
  size_t sparse_bytes = 0;   ///< M_s: CSDB footprint
  size_t dram_budget = 0;    ///< M_total: DRAM available to the pipeline
  /// When > 0, Run() uses this partition count directly instead of solving
  /// Eq. 9 — the plan layer caches the solve per (rows, cols) so repeated
  /// passes skip it. Must come from OptimalPartitions for the same inputs;
  /// 0 keeps the per-call solve.
  size_t fixed_partitions = 0;

  // --- Fault recovery (consulted only when ctx.ms()->faults_enabled()) -----

  /// Bounded retry of a faulted partition load, with exponential backoff.
  int max_load_retries = 3;
  double retry_backoff_seconds = 1e-4;  ///< first backoff; doubles per retry
  /// After the retries are exhausted: true streams the partition from its
  /// semi-external home instead (degraded but running); false surfaces the
  /// fault as an IOError from Run().
  bool allow_degraded = true;
  /// Semi-external fallback source for a PM partition that keeps failing.
  memsim::Placement degraded_home{memsim::Tier::kSsd, 0};
  /// Fault-draw stream, and an optional caller-owned site cursor so repeated
  /// passes draw fresh sites (the engine persists one across its SpMM calls).
  /// With a null cursor the streamer uses a per-instance cursor.
  uint64_t fault_stream = memsim::kFaultStreamAsl;
  uint64_t* fault_site = nullptr;

  // --- Async staging (opt-in; default off keeps the seed charge model) -----

  /// When true, Run() additionally reports `overlapped_seconds`: the
  /// pipelined duration with each partition's fetch charged concurrently
  /// against the previous partition's compute via
  /// SimClock::OverlappedSeconds, at `fetch_slowdown` (the Fig. 9
  /// bandwidth-sharing penalty of the fetch stream). Fault-recovered loads
  /// are never overlapped: they fall back to the synchronous retry/degrade
  /// path and their full cost stays exposed.
  bool async_staging = false;
  /// From buffer::FetchSlowdown for the pm_home -> dram_home copy; 1.0 means
  /// the fetch and compute streams do not contend.
  double fetch_slowdown = 1.0;
};

/// Eq. 9. Fails with CapacityExceeded when even maximal partitioning cannot
/// fit (denominator <= 0). The result is clamped to [1, dense_cols].
Result<size_t> OptimalPartitions(const AslConfig& config);

/// Column range of partition `k` out of `n` over `cols` columns.
std::pair<size_t, size_t> PartitionColumns(size_t cols, size_t n, size_t k);

/// Per-partition record of one streaming pass.
struct AslPartitionTrace {
  size_t col_begin = 0;
  size_t col_end = 0;
  double load_seconds = 0.0;
  double compute_seconds = 0.0;
  /// The load hit the retry or degrade path; its cost stays exposed (never
  /// hidden behind compute) in the async-staging pipeline.
  bool fault_recovered = false;
};

/// Outcome of one streaming pass.
struct AslRunResult {
  double total_seconds = 0.0;        ///< pipelined duration
  double serial_seconds = 0.0;       ///< non-overlapped (sum) duration
  std::vector<AslPartitionTrace> partitions;

  /// Fault recovery of this pass (zero without an enabled fault plan).
  /// load_retries counts media/timeout faults recovered by the retry loop
  /// (stalls self-absorb); degraded_partitions counts partitions served from
  /// the semi-external fallback after retries were exhausted.
  uint64_t load_retries = 0;
  uint64_t degraded_partitions = 0;
  /// Degraded partitions mean the PM home is unreliable: callers caching the
  /// Eq. 9 solve should invalidate it and re-partition on the next pass.
  bool rebuild_recommended = false;

  /// Async-staging accounting (always computed; only consumed by callers
  /// running with AslConfig::async_staging on). overlapped_seconds is the
  /// pipelined duration with fetches charged concurrently at the configured
  /// fetch_slowdown; fetch_seconds is the total solo fetch cost and
  /// hidden_seconds the part of it absorbed behind compute.
  double overlapped_seconds = 0.0;
  double fetch_seconds = 0.0;
  double hidden_seconds = 0.0;

  /// Fraction of load time hidden behind compute.
  double OverlapEfficiency() const {
    return serial_seconds > 0.0 ? 1.0 - total_seconds / serial_seconds : 0.0;
  }
};

/// Double-buffered streaming executor over the simulated machine.
class AslStreamer {
 public:
  /// Streams from `pm_home` to `dram_home`; the loader runs on one simulated
  /// background thread per pass. When the context carries a TraceRecorder,
  /// Run() records an aux "asl.load" phase for the staging traffic (its
  /// pipelined time is contained in the caller's SpMM phase).
  ///
  /// With a BufferManager, Run() pins each partition's DRAM frame through it
  /// (double-buffered: at most two staged frames pinned at once), so the
  /// staging working set shares the pool with every other consumer. Null
  /// keeps the streamer free of capacity bookkeeping (pure charge model).
  AslStreamer(const exec::Context& ctx, AslConfig config, memsim::Placement pm_home,
              memsim::Placement dram_home,
              buffer::BufferManager* frames = nullptr)
      : ctx_(ctx),
        config_(config),
        pm_home_(pm_home),
        dram_home_(dram_home),
        frames_(frames) {}

  /// Simulated seconds to copy one partition PM -> DRAM.
  double LoadSeconds(size_t col_begin, size_t col_end) const;

  /// Runs `compute_fn(partition, col_begin, col_end)` for every partition;
  /// the callback performs the real computation and returns its *simulated*
  /// duration. Loads overlap the previous partition's compute.
  ///
  /// Under an enabled fault plan each partition load retries faulted PM reads
  /// up to config.max_load_retries times with exponential backoff; a
  /// partition that keeps failing degrades to the semi-external fallback home
  /// (or surfaces an IOError when config.allow_degraded is false). All
  /// wasted attempts, backoff waits, and fallback streams are charged into
  /// the load pipeline.
  Result<AslRunResult> Run(
      const std::function<double(size_t, size_t, size_t)>& compute_fn);

 private:
  /// Fault-aware load of one partition; returns its pipelined load seconds
  /// and updates the run's recovery counters.
  Result<double> LoadPartition(size_t col_begin, size_t col_end,
                               AslRunResult* result);

  exec::Context ctx_;
  AslConfig config_;
  memsim::Placement pm_home_;
  memsim::Placement dram_home_;
  buffer::BufferManager* frames_ = nullptr;  ///< optional shared frame pool
  uint64_t local_fault_site_ = 0;  ///< used when config.fault_site is null
};

}  // namespace omega::stream
