#include "stream/asl.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace omega::stream {

Result<size_t> OptimalPartitions(const AslConfig& config) {
  const double dvs = static_cast<double>(config.dense_rows) *
                     static_cast<double>(config.dense_cols) *
                     static_cast<double>(config.element_bytes);
  const double denom = static_cast<double>(config.dram_budget) -
                       static_cast<double>(config.sparse_bytes) - 2.0 * dvs;
  if (denom <= 0.0) {
    return Status::CapacityExceeded(
        "ASL: resident set (sparse " + HumanBytes(config.sparse_bytes) +
        " + 2x dense " + HumanBytes(static_cast<size_t>(2.0 * dvs)) +
        ") exceeds DRAM budget " + HumanBytes(config.dram_budget));
  }
  const double n = 3.0 * dvs / denom;
  size_t parts = static_cast<size_t>(std::ceil(std::max(1.0, n)));
  parts = std::min(parts, std::max<size_t>(1, config.dense_cols));
  return parts;
}

std::pair<size_t, size_t> PartitionColumns(size_t cols, size_t n, size_t k) {
  const size_t per = (cols + n - 1) / n;
  const size_t begin = std::min(cols, k * per);
  const size_t end = std::min(cols, begin + per);
  return {begin, end};
}

double AslStreamer::LoadSeconds(size_t col_begin, size_t col_end) const {
  const size_t bytes =
      config_.dense_rows * (col_end - col_begin) * config_.element_bytes;
  if (bytes == 0) return 0.0;
  // The copy pipeline is bounded by the slower of the PM read stream and the
  // DRAM write stream; one background loader thread.
  memsim::WorkerCtx loader;
  loader.active_threads = 1;
  memsim::SimClock clock;
  loader.clock = &clock;
  loader.cpu_socket = std::max(0, dram_home_.socket);
  memsim::MemorySystem* ms = ctx_.ms();
  const double read = ms->AccessSeconds(pm_home_, loader.cpu_socket,
                                        memsim::MemOp::kRead,
                                        memsim::Pattern::kSequential, bytes, 1, 1);
  const double write = ms->AccessSeconds(dram_home_, loader.cpu_socket,
                                         memsim::MemOp::kWrite,
                                         memsim::Pattern::kSequential, bytes, 1, 1);
  return std::max(read, write);
}

Result<double> AslStreamer::LoadPartition(size_t col_begin, size_t col_end,
                                          AslRunResult* result) {
  memsim::MemorySystem* ms = ctx_.ms();
  if (!ms->faults_enabled()) return LoadSeconds(col_begin, col_end);

  const size_t bytes =
      config_.dense_rows * (col_end - col_begin) * config_.element_bytes;
  if (bytes == 0) return 0.0;
  const int socket = std::max(0, dram_home_.socket);
  // The DRAM write side is charged once, against the attempt that actually
  // delivers the data; only the PM read stream is fault-prone here.
  const double write =
      ms->AccessSeconds(dram_home_, socket, memsim::MemOp::kWrite,
                        memsim::Pattern::kSequential, bytes, 1, 1);

  uint64_t* cursor =
      config_.fault_site != nullptr ? config_.fault_site : &local_fault_site_;
  const uint64_t site = (*cursor)++;
  memsim::FaultInjector& faults = ms->faults();

  double cost = 0.0;
  double backoff = config_.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    const memsim::MemorySystem::FaultDraw draw = ms->TryAccessSeconds(
        pm_home_, socket, memsim::MemOp::kRead, memsim::Pattern::kSequential,
        bytes, 1, 1, config_.fault_stream, site,
        static_cast<uint32_t>(attempt));
    if (draw.kind == memsim::FaultKind::kNone ||
        draw.kind == memsim::FaultKind::kTransientStall) {
      // Stalls self-recover inside the draw: the returned seconds already
      // include the stall charge.
      cost += std::max(draw.seconds, write);
      return cost;
    }
    // Media error / timeout: the wasted attempt is paid for in full.
    cost += draw.seconds;
    if (attempt < config_.max_load_retries) {
      faults.CountRetried();
      result->load_retries++;
      cost += backoff;
      faults.AddPenaltySeconds(backoff);
      backoff *= 2.0;
      continue;
    }
    if (config_.allow_degraded) {
      // Semi-external fallback: stream the partition from its slower durable
      // home instead of the failing PM range.
      faults.CountDegraded();
      result->degraded_partitions++;
      result->rebuild_recommended = true;
      const double fallback_read =
          ms->AccessSeconds(config_.degraded_home, socket,
                            memsim::MemOp::kRead, memsim::Pattern::kSequential,
                            bytes, 1, 1);
      cost += std::max(fallback_read, write);
      return cost;
    }
    faults.CountSurfaced();
    return Status::IOError(
        "ASL: partition load [" + std::to_string(col_begin) + ", " +
        std::to_string(col_end) + ") failed after " +
        std::to_string(config_.max_load_retries) + " retries: " +
        memsim::FaultKindName(draw.kind));
  }
}

Result<AslRunResult> AslStreamer::Run(
    const std::function<double(size_t, size_t, size_t)>& compute_fn) {
  size_t n = config_.fixed_partitions;
  if (n == 0) {
    OMEGA_ASSIGN_OR_RETURN(n, OptimalPartitions(config_));
  }

  AslRunResult result;
  result.partitions.resize(n);
  {
    // The staging traffic is attributed to its own aux phase; its pipelined
    // duration is already contained in the caller's phase time.
    exec::PhaseSpan load_span(ctx_, "asl.load", /*aux=*/true);
    for (size_t k = 0; k < n; ++k) {
      auto [begin, end] = PartitionColumns(config_.dense_cols, n, k);
      result.partitions[k].col_begin = begin;
      result.partitions[k].col_end = end;
      OMEGA_ASSIGN_OR_RETURN(result.partitions[k].load_seconds,
                             LoadPartition(begin, end, &result));
      load_span.AddSimSeconds(result.partitions[k].load_seconds);
    }
  }
  // Real computation runs serially here; simulated time is pipelined.
  for (size_t k = 0; k < n; ++k) {
    result.partitions[k].compute_seconds = compute_fn(
        k, result.partitions[k].col_begin, result.partitions[k].col_end);
  }

  double total = result.partitions[0].load_seconds;
  double serial = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double compute = result.partitions[k].compute_seconds;
    const double next_load =
        k + 1 < n ? result.partitions[k + 1].load_seconds : 0.0;
    total += std::max(compute, next_load);
    serial += result.partitions[k].load_seconds + compute;
  }
  result.total_seconds = total;
  result.serial_seconds = serial;
  return result;
}

}  // namespace omega::stream
