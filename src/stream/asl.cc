#include "stream/asl.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>

#include "buffer/staging.h"
#include "common/string_util.h"
#include "memsim/sim_clock.h"

namespace omega::stream {

Result<size_t> OptimalPartitions(const AslConfig& config) {
  const double dvs = static_cast<double>(config.dense_rows) *
                     static_cast<double>(config.dense_cols) *
                     static_cast<double>(config.element_bytes);
  const double denom = static_cast<double>(config.dram_budget) -
                       static_cast<double>(config.sparse_bytes) - 2.0 * dvs;
  if (denom <= 0.0) {
    return Status::CapacityExceeded(
        "ASL: resident set (sparse " + HumanBytes(config.sparse_bytes) +
        " + 2x dense " + HumanBytes(static_cast<size_t>(2.0 * dvs)) +
        ") exceeds DRAM budget " + HumanBytes(config.dram_budget));
  }
  const double n = 3.0 * dvs / denom;
  size_t parts = static_cast<size_t>(std::ceil(std::max(1.0, n)));
  parts = std::min(parts, std::max<size_t>(1, config.dense_cols));
  return parts;
}

std::pair<size_t, size_t> PartitionColumns(size_t cols, size_t n, size_t k) {
  return buffer::SliceColumns(cols, n, k);
}

double AslStreamer::LoadSeconds(size_t col_begin, size_t col_end) const {
  const size_t bytes =
      config_.dense_rows * (col_end - col_begin) * config_.element_bytes;
  return buffer::StageSeconds(ctx_.ms(), bytes, pm_home_, dram_home_);
}

Result<double> AslStreamer::LoadPartition(size_t col_begin, size_t col_end,
                                          AslRunResult* result) {
  const size_t bytes =
      config_.dense_rows * (col_end - col_begin) * config_.element_bytes;
  buffer::StageFetchConfig cfg;
  cfg.from = pm_home_;
  cfg.to = dram_home_;
  cfg.max_retries = config_.max_load_retries;
  cfg.retry_backoff_seconds = config_.retry_backoff_seconds;
  cfg.allow_degraded = config_.allow_degraded;
  cfg.degraded_home = config_.degraded_home;
  cfg.fault_stream = config_.fault_stream;
  cfg.fault_site =
      config_.fault_site != nullptr ? config_.fault_site : &local_fault_site_;
  cfg.label = "ASL: partition load [" + std::to_string(col_begin) + ", " +
              std::to_string(col_end) + ")";
  OMEGA_ASSIGN_OR_RETURN(const buffer::StageFetchResult fetch,
                         buffer::StageFetch(ctx_.ms(), bytes, cfg));
  result->load_retries += fetch.retries;
  if (fetch.degraded) {
    result->degraded_partitions++;
    result->rebuild_recommended = true;
  }
  return fetch.seconds;
}

Result<AslRunResult> AslStreamer::Run(
    const std::function<double(size_t, size_t, size_t)>& compute_fn) {
  size_t n = config_.fixed_partitions;
  if (n == 0) {
    OMEGA_ASSIGN_OR_RETURN(n, OptimalPartitions(config_));
  }

  AslRunResult result;
  result.partitions.resize(n);
  {
    // The staging traffic is attributed to its own aux phase; its pipelined
    // duration is already contained in the caller's phase time.
    exec::PhaseSpan load_span(ctx_, "asl.load", /*aux=*/true);
    // Double buffer: partition k's frame stays pinned while k+1 stages, so
    // the pool holds at most two pinned staging frames at a time.
    std::deque<buffer::PinHandle> staged;
    for (size_t k = 0; k < n; ++k) {
      auto [begin, end] = PartitionColumns(config_.dense_cols, n, k);
      result.partitions[k].col_begin = begin;
      result.partitions[k].col_end = end;
      if (frames_ != nullptr) {
        const size_t bytes =
            config_.dense_rows * (end - begin) * config_.element_bytes;
        auto pin = frames_->Pin(
            buffer::PageKey{dram_home_.tier, dram_home_.socket, k}, bytes);
        if (pin.ok()) {
          staged.push_back(std::move(pin).value());
          if (staged.size() > 2) staged.pop_front();
        }
        // A full pool is non-fatal: the charge model below is authoritative;
        // the pool only tracks the staging working set's residency.
      }
      const uint64_t retries_before = result.load_retries;
      const uint64_t degraded_before = result.degraded_partitions;
      OMEGA_ASSIGN_OR_RETURN(result.partitions[k].load_seconds,
                             LoadPartition(begin, end, &result));
      result.partitions[k].fault_recovered =
          result.load_retries != retries_before ||
          result.degraded_partitions != degraded_before;
      load_span.AddSimSeconds(result.partitions[k].load_seconds);
    }
  }
  // Real computation runs serially here; simulated time is pipelined.
  for (size_t k = 0; k < n; ++k) {
    result.partitions[k].compute_seconds = compute_fn(
        k, result.partitions[k].col_begin, result.partitions[k].col_end);
  }

  // Seed double-buffer model: load and compute on independent channels, each
  // step costs max(compute_k, load_{k+1}).
  double total = result.partitions[0].load_seconds;
  double serial = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double compute = result.partitions[k].compute_seconds;
    const double next_load =
        k + 1 < n ? result.partitions[k + 1].load_seconds : 0.0;
    total += std::max(compute, next_load);
    serial += result.partitions[k].load_seconds + compute;
  }
  result.total_seconds = total;
  result.serial_seconds = serial;

  // Async-staging model: the fetch stream contends with compute for device
  // bandwidth (fetch_slowdown from the Fig. 9 curves), and fault-recovered
  // loads fall back to the synchronous path — their cost stays exposed.
  auto pipelined_load = [&](size_t k) {
    return result.partitions[k].fault_recovered
               ? 0.0
               : result.partitions[k].load_seconds;
  };
  double overlapped = pipelined_load(0);
  double exposed = 0.0;
  double fetch = 0.0;
  double hidden = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (result.partitions[k].fault_recovered) {
      exposed += result.partitions[k].load_seconds;
    }
    fetch += result.partitions[k].load_seconds;
    const double compute = result.partitions[k].compute_seconds;
    const double next_load = k + 1 < n ? pipelined_load(k + 1) : 0.0;
    const double step = memsim::SimClock::OverlappedSeconds(
        compute, next_load, config_.fetch_slowdown);
    overlapped += step;
    hidden += compute + next_load - step;
  }
  result.overlapped_seconds = overlapped + exposed;
  result.fetch_seconds = fetch;
  result.hidden_seconds = hidden;
  return result;
}

}  // namespace omega::stream
