#include "durable/checkpoint.h"

#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace omega::durable {

namespace {

// "OmGaLog" + version nibble. A stray image (or an entry body misread as a
// header) fails the magic check before any checksum work.
constexpr uint64_t kEntryMagic = 0x4F6D47614C6F6701ull;

// magic + stamp + type + payload_bytes + checksum, packed little-endian.
constexpr size_t kHeaderBytes = 8 + 8 + 4 + 4 + 8;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t EntryChecksum(uint64_t stamp, uint32_t type, uint32_t payload_bytes,
                       const uint8_t* payload) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, reinterpret_cast<const uint8_t*>(&stamp), sizeof(stamp));
  h = FnvMix(h, reinterpret_cast<const uint8_t*>(&type), sizeof(type));
  h = FnvMix(h, reinterpret_cast<const uint8_t*>(&payload_bytes),
             sizeof(payload_bytes));
  return FnvMix(h, payload, payload_bytes);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

CheckpointStore::CheckpointStore(memsim::MemorySystem* ms,
                                 CheckpointOptions options)
    : ms_(ms), options_(options), pool_(ms, buffer::BufferManager::Options{}) {}

Result<CkptCosts> CheckpointStore::Append(uint32_t type, const void* payload,
                                          size_t bytes) {
  return AppendImpl(type, payload, bytes, /*torn=*/false);
}

Result<CkptCosts> CheckpointStore::AppendTorn(uint32_t type,
                                              const void* payload,
                                              size_t bytes) {
  return AppendImpl(type, payload, bytes, /*torn=*/true);
}

Result<CkptCosts> CheckpointStore::AppendImpl(uint32_t type,
                                              const void* payload,
                                              size_t bytes, bool torn) {
  CkptCosts costs;
  // Reserve the entry's persistent footprint up front (PR6 BufferManager):
  // a full device rejects the append before any bytes are charged.
  auto pin = pool_.Pin(
      buffer::PageKey{options_.placement.tier, options_.placement.socket,
                      next_stamp_},
      kHeaderBytes + bytes);
  if (!pin.ok()) return pin.status();

  // Header dance, charge side: stream the payload, order it with a persist
  // barrier, then publish the stamped header and order again. Each chunk is
  // one fault draw with bounded retries; a chunk that exhausts them fails
  // the append with its final fault un-bucketed (caller's to account).
  auto charged_write = [&](size_t write_bytes) -> Status {
    const uint64_t site = fault_site_++;
    double backoff = options_.retry.backoff_seconds;
    for (int attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
      const memsim::MemorySystem::FaultDraw draw = ms_->TryAccessSeconds(
          options_.placement, /*cpu_socket=*/0, memsim::MemOp::kWrite,
          memsim::Pattern::kSequential, write_bytes, /*accesses=*/1,
          options_.threads, memsim::kFaultStreamDurable, site, attempt);
      costs.seconds += draw.seconds;
      if (draw.kind != memsim::FaultKind::kMediaError &&
          draw.kind != memsim::FaultKind::kTimeout) {
        return Status::OK();
      }
      if (attempt == options_.retry.max_retries) {
        return Status::IOError("checkpoint write failed after " +
                               std::to_string(options_.retry.max_retries) +
                               " retries: " +
                               memsim::FaultKindName(draw.kind));
      }
      ms_->faults().CountRetried();
      costs.seconds += backoff;
      ms_->faults().AddPenaltySeconds(backoff);
      backoff *= options_.retry.backoff_multiplier;
    }
    return Status::OK();
  };

  for (size_t off = 0; off < bytes; off += options_.chunk_bytes) {
    OMEGA_RETURN_NOT_OK(
        charged_write(std::min(options_.chunk_bytes, bytes - off)));
  }
  costs.seconds += ms_->PersistBarrierSeconds(options_.placement.tier);
  OMEGA_RETURN_NOT_OK(charged_write(kHeaderBytes));
  costs.seconds += ms_->PersistBarrierSeconds(options_.placement.tier);
  costs.barriers += 2;

  // Host image, [header][payload] per entry. A torn append models the crash
  // between the payload stream and the final header persist: the header made
  // it, the payload's tail did not — Scan must fail the checksum.
  const uint64_t stamp = next_stamp_++;
  const uint8_t* p = static_cast<const uint8_t*>(payload);
  const uint64_t checksum =
      EntryChecksum(stamp, type, static_cast<uint32_t>(bytes), p);
  PutU64(&image_, kEntryMagic);
  PutU64(&image_, stamp);
  PutU32(&image_, type);
  PutU32(&image_, static_cast<uint32_t>(bytes));
  PutU64(&image_, checksum);
  entry_offsets_.push_back(image_.size() - kHeaderBytes);
  const size_t written = torn ? bytes / 2 : bytes;
  image_.insert(image_.end(), p, p + written);

  entry_pins_.push_back(std::move(pin).value());
  ++entry_count_;
  costs.entries = 1;
  costs.bytes = kHeaderBytes + bytes;
  return costs;
}

void CheckpointStore::CorruptTailChecksum() {
  if (entry_offsets_.empty()) return;
  const size_t header = entry_offsets_.back();
  const uint32_t payload_bytes = GetU32(image_.data() + header + 20);
  const size_t target = payload_bytes > 0
                            ? header + kHeaderBytes  // first payload byte
                            : header + 24;           // checksum field itself
  if (target < image_.size()) image_[target] ^= 0xFF;
}

CheckpointStore::ScanResult CheckpointStore::Scan() const {
  ScanResult result;
  size_t offset = 0;
  uint64_t expected_stamp = 0;
  while (offset + kHeaderBytes <= image_.size()) {
    const uint8_t* h = image_.data() + offset;
    const uint64_t magic = GetU64(h);
    const uint64_t stamp = GetU64(h + 8);
    const uint32_t type = GetU32(h + 16);
    const uint32_t payload_bytes = GetU32(h + 20);
    const uint64_t checksum = GetU64(h + 24);
    if (magic != kEntryMagic || stamp != expected_stamp) break;
    if (offset + kHeaderBytes + payload_bytes > image_.size()) break;
    const uint8_t* payload = h + kHeaderBytes;
    if (EntryChecksum(stamp, type, payload_bytes, payload) != checksum) break;
    LogEntry entry;
    entry.stamp = stamp;
    entry.type = type;
    entry.payload.assign(payload, payload + payload_bytes);
    result.entries.push_back(std::move(entry));
    ++expected_stamp;
    offset += kHeaderBytes + payload_bytes;
  }
  result.torn_tail = offset != image_.size();
  return result;
}

CheckpointStore::ScanResult CheckpointStore::ChargedScan(CkptCosts* costs) {
  ScanResult result = Scan();
  if (costs != nullptr && !image_.empty()) {
    const size_t accesses =
        (image_.size() + options_.chunk_bytes - 1) / options_.chunk_bytes;
    costs->seconds += ms_->AccessSeconds(
        options_.placement, /*cpu_socket=*/0, memsim::MemOp::kRead,
        memsim::Pattern::kSequential, image_.size(), accesses,
        options_.threads);
    // Checksum verification touches every byte once.
    costs->seconds += ms_->cost_model().ComputeSeconds(image_.size());
    costs->bytes += image_.size();
    costs->entries += result.entries.size();
  }
  return result;
}

size_t CheckpointStore::TruncateToValidPrefix() {
  const ScanResult scan = Scan();
  if (!scan.torn_tail) return 0;
  size_t prefix_bytes = 0;
  for (const LogEntry& e : scan.entries) {
    prefix_bytes += kHeaderBytes + e.payload.size();
  }
  image_.resize(prefix_bytes);
  const size_t dropped = entry_pins_.size() - scan.entries.size();
  for (size_t i = scan.entries.size(); i < entry_pins_.size(); ++i) {
    const buffer::PageKey key = entry_pins_[i].key();
    entry_pins_[i].Release();
    (void)pool_.Evict(key);  // frees the dropped entry's PM reservation
  }
  entry_pins_.resize(scan.entries.size());
  entry_offsets_.resize(scan.entries.size());
  entry_count_ = scan.entries.size();
  next_stamp_ = entry_count_;
  return dropped;
}

Status CheckpointStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open checkpoint file " + path);
  out.write(reinterpret_cast<const char*>(image_.data()),
            static_cast<std::streamsize>(image_.size()));
  if (!out) return Status::IOError("short write to checkpoint file " + path);
  return Status::OK();
}

Status CheckpointStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open checkpoint file " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("short read from checkpoint file " + path);
  }
  // Adopt the image, then rebuild bookkeeping from its valid prefix. A torn
  // tail is kept in the image (Scan/Truncate handle it) but gets no pin.
  for (buffer::PinHandle& pin : entry_pins_) {
    const buffer::PageKey key = pin.key();
    pin.Release();
    (void)pool_.Evict(key);
  }
  entry_pins_.clear();
  entry_offsets_.clear();
  image_ = std::move(bytes);
  const ScanResult scan = Scan();
  size_t offset = 0;
  for (const LogEntry& e : scan.entries) {
    auto pin = pool_.Pin(
        buffer::PageKey{options_.placement.tier, options_.placement.socket,
                        e.stamp},
        kHeaderBytes + e.payload.size());
    if (!pin.ok()) return pin.status();
    entry_pins_.push_back(std::move(pin).value());
    entry_offsets_.push_back(offset);
    offset += kHeaderBytes + e.payload.size();
  }
  entry_count_ = scan.entries.size();
  next_stamp_ = entry_count_;
  return Status::OK();
}

namespace {

void PutMatrix(std::vector<uint8_t>* out, const std::string& tag,
               const linalg::DenseMatrix& m) {
  PutU32(out, static_cast<uint32_t>(tag.size()));
  out->insert(out->end(), tag.begin(), tag.end());
  PutU64(out, m.rows());
  PutU64(out, m.cols());
  const uint8_t* data = reinterpret_cast<const uint8_t*>(m.data());
  out->insert(out->end(), data, data + m.bytes());
}

Status GetMatrix(const std::vector<uint8_t>& payload, std::string* tag,
                 linalg::DenseMatrix* m) {
  size_t off = 0;
  auto need = [&](size_t n) {
    return off + n <= payload.size()
               ? Status::OK()
               : Status::IOError("corrupt checkpoint matrix entry");
  };
  OMEGA_RETURN_NOT_OK(need(4));
  const uint32_t tag_len = GetU32(payload.data() + off);
  off += 4;
  OMEGA_RETURN_NOT_OK(need(tag_len));
  tag->assign(reinterpret_cast<const char*>(payload.data() + off), tag_len);
  off += tag_len;
  OMEGA_RETURN_NOT_OK(need(16));
  const uint64_t rows = GetU64(payload.data() + off);
  const uint64_t cols = GetU64(payload.data() + off + 8);
  off += 16;
  linalg::DenseMatrix out(rows, cols);
  OMEGA_RETURN_NOT_OK(need(out.bytes()));
  std::memcpy(out.data(), payload.data() + off, out.bytes());
  *m = std::move(out);
  return Status::OK();
}

}  // namespace

namespace {

Result<CkptCosts> WriteSnapshotImpl(CheckpointStore* store,
                                    const CheckpointSnapshot& snapshot,
                                    bool torn) {
  CkptCosts costs;
  const uint64_t meta_stamp = store->entry_count();

  std::vector<uint8_t> meta;
  PutU32(&meta, snapshot.stage);
  PutU64(&meta, snapshot.next_term);
  PutU32(&meta, static_cast<uint32_t>(snapshot.matrices.size()));
  PutU64(&meta, snapshot.words.size());
  for (uint64_t w : snapshot.words) PutU64(&meta, w);
  const bool meta_is_last = torn && snapshot.matrices.empty();
  OMEGA_ASSIGN_OR_RETURN(
      CkptCosts c,
      meta_is_last
          ? store->AppendTorn(static_cast<uint32_t>(EntryType::kMeta),
                              meta.data(), meta.size())
          : store->Append(static_cast<uint32_t>(EntryType::kMeta), meta.data(),
                          meta.size()));
  costs += c;

  for (size_t i = 0; i < snapshot.matrices.size(); ++i) {
    const auto& [tag, matrix] = snapshot.matrices[i];
    std::vector<uint8_t> body;
    PutMatrix(&body, tag, matrix);
    const bool is_last = torn && i + 1 == snapshot.matrices.size();
    OMEGA_ASSIGN_OR_RETURN(
        c, is_last ? store->AppendTorn(
                         static_cast<uint32_t>(EntryType::kMatrix), body.data(),
                         body.size())
                   : store->Append(static_cast<uint32_t>(EntryType::kMatrix),
                                   body.data(), body.size()));
    costs += c;
  }
  if (torn) return costs;  // the crash beat the commit marker

  std::vector<uint8_t> commit;
  PutU64(&commit, meta_stamp);
  OMEGA_ASSIGN_OR_RETURN(
      c, store->Append(static_cast<uint32_t>(EntryType::kCommit),
                       commit.data(), commit.size()));
  costs += c;
  return costs;
}

}  // namespace

Result<CkptCosts> WriteSnapshot(CheckpointStore* store,
                                const CheckpointSnapshot& snapshot) {
  return WriteSnapshotImpl(store, snapshot, /*torn=*/false);
}

Result<CkptCosts> WriteSnapshotTorn(CheckpointStore* store,
                                    const CheckpointSnapshot& snapshot) {
  return WriteSnapshotImpl(store, snapshot, /*torn=*/true);
}

Result<CheckpointSnapshot> ReadLastSnapshot(CheckpointStore* store,
                                            CkptCosts* costs) {
  const CheckpointStore::ScanResult scan =
      costs != nullptr ? store->ChargedScan(costs) : store->Scan();
  const auto& entries = scan.entries;
  for (size_t i = entries.size(); i-- > 0;) {
    if (entries[i].type != static_cast<uint32_t>(EntryType::kCommit)) continue;
    if (entries[i].payload.size() != 8) continue;
    const uint64_t meta_stamp = GetU64(entries[i].payload.data());
    if (meta_stamp >= i) continue;
    const LogEntry& meta = entries[meta_stamp];
    if (meta.type != static_cast<uint32_t>(EntryType::kMeta)) continue;
    if (meta.payload.size() < 24) continue;

    CheckpointSnapshot snapshot;
    size_t off = 0;
    snapshot.stage = GetU32(meta.payload.data() + off);
    off += 4;
    snapshot.next_term = GetU64(meta.payload.data() + off);
    off += 8;
    const uint32_t matrix_count = GetU32(meta.payload.data() + off);
    off += 4;
    const uint64_t word_count = GetU64(meta.payload.data() + off);
    off += 8;
    if (meta.payload.size() < off + word_count * 8) continue;
    for (uint64_t w = 0; w < word_count; ++w) {
      snapshot.words.push_back(GetU64(meta.payload.data() + off + w * 8));
    }
    if (meta_stamp + 1 + matrix_count > i) continue;
    bool valid = true;
    for (uint32_t m = 0; m < matrix_count && valid; ++m) {
      const LogEntry& e = entries[meta_stamp + 1 + m];
      if (e.type != static_cast<uint32_t>(EntryType::kMatrix)) {
        valid = false;
        break;
      }
      std::string tag;
      linalg::DenseMatrix matrix;
      valid = GetMatrix(e.payload, &tag, &matrix).ok();
      if (valid) snapshot.matrices.emplace_back(tag, std::move(matrix));
    }
    if (valid) return snapshot;
  }
  return Status::NotFound("no committed checkpoint in store");
}

namespace {
constexpr const char kKilledPrefix[] = "simulated kill at ";
}

Status KilledError(const std::string& where) {
  return Status::IOError(kKilledPrefix + where);
}

bool IsKilledError(const Status& status) {
  return status.IsIOError() &&
         status.message().rfind(kKilledPrefix, 0) == 0;
}

}  // namespace omega::durable
