#include "durable/shared_log.h"

#include <algorithm>

#include "common/rng.h"

namespace omega::durable {

ReplicatedLog::ReplicatedLog(memsim::MemorySystem* ms,
                             SharedLogOptions options)
    : ms_(ms), options_(options) {}

Result<ReplicatedLog::AppendResult> ReplicatedLog::Append(int machine,
                                                          uint64_t bytes) {
  AppendResult result;
  result.position = sequencer_.Next();

  // Replicas are written in parallel; the append completes when the slowest
  // chain does. Draw sites are derived from the position, so a fixed seed
  // replays the same fault per (position, replica, attempt) regardless of
  // which thread performed the append.
  int failed_finals = 0;
  for (int replica = 0; replica < options_.replicas; ++replica) {
    const uint64_t site =
        result.position * static_cast<uint64_t>(options_.replicas) + replica;
    double replica_seconds = 0.0;
    double backoff = options_.retry.backoff_seconds;
    bool acked = false;
    for (int attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
      const memsim::MemorySystem::FaultDraw draw = ms_->TryAccessSeconds(
          options_.placement, /*cpu_socket=*/0, memsim::MemOp::kWrite,
          memsim::Pattern::kSequential, bytes, /*accesses=*/1,
          options_.threads, memsim::kFaultStreamSharedLog, site, attempt);
      replica_seconds += draw.seconds;
      if (draw.kind != memsim::FaultKind::kMediaError &&
          draw.kind != memsim::FaultKind::kTimeout) {
        acked = true;
        break;
      }
      if (attempt == options_.retry.max_retries) break;  // final fault
      ms_->faults().CountRetried();
      replica_seconds += backoff;
      ms_->faults().AddPenaltySeconds(backoff);
      backoff *= options_.retry.backoff_multiplier;
    }
    if (acked) {
      ++result.acks;
    } else {
      ++failed_finals;
    }
    result.seconds = std::max(result.seconds, replica_seconds);
  }

  // The position is consumed either way (a CORFU hole); record it so replay
  // stays position-indexed even across a failed append.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (records_.size() <= result.position) {
      records_.resize(result.position + 1);
    }
    records_[result.position] = LogRecord{result.position, machine, bytes};
  }

  if (result.acks >= options_.ResolvedQuorum()) {
    // Lost replicas while the quorum holds: the log degrades to fewer
    // copies, the append still succeeds.
    if (failed_finals > 0) ms_->faults().CountDegraded(failed_finals);
    return result;
  }
  ms_->faults().CountSurfaced(failed_finals);
  return Status::IOError(
      "shared log quorum lost at position " +
      std::to_string(result.position) + ": " + std::to_string(result.acks) +
      "/" + std::to_string(options_.ResolvedQuorum()) + " acks");
}

ReplicatedLog::ReplayResult ReplicatedLog::Replay(int machine, uint64_t upto) {
  ReplayResult result;
  uint64_t replay_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Cursor& cursor = cursors_[machine];
    const uint64_t end = std::min<uint64_t>(upto, records_.size());
    result.skipped = std::min(end, cursor.watermark);
    for (uint64_t p = cursor.watermark; p < end; ++p) {
      const LogRecord& record = records_[p];
      cursor.digest = SplitMix64(cursor.digest ^ (record.position + 1));
      cursor.digest =
          SplitMix64(cursor.digest ^ static_cast<uint64_t>(record.machine));
      replay_bytes += record.bytes;
      ++result.applied;
    }
    cursor.watermark = std::max(cursor.watermark, end);
  }
  if (result.applied > 0) {
    result.seconds = ms_->AccessSeconds(
        options_.placement, /*cpu_socket=*/0, memsim::MemOp::kRead,
        memsim::Pattern::kSequential, replay_bytes, result.applied,
        options_.threads);
  }
  return result;
}

void ReplicatedLog::AdvanceCheckpoint(int machine, uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  Cursor& cursor = cursors_[machine];
  const uint64_t end = std::min<uint64_t>(upto, records_.size());
  for (uint64_t p = cursor.watermark; p < end; ++p) {
    const LogRecord& record = records_[p];
    cursor.digest = SplitMix64(cursor.digest ^ (record.position + 1));
    cursor.digest =
        SplitMix64(cursor.digest ^ static_cast<uint64_t>(record.machine));
  }
  cursor.watermark = std::max(cursor.watermark, end);
}

uint64_t ReplicatedLog::Digest(int machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cursors_.find(machine);
  return it == cursors_.end() ? 0 : it->second.digest;
}

uint64_t ReplicatedLog::Watermark(int machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cursors_.find(machine);
  return it == cursors_.end() ? 0 : it->second.watermark;
}

std::vector<LogRecord> ReplicatedLog::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<int> DeterministicSchedule(uint64_t seed, int machines,
                                       int batches_per_machine) {
  std::vector<int> slots;
  slots.reserve(static_cast<size_t>(machines) * batches_per_machine);
  for (int m = 0; m < machines; ++m) {
    for (int b = 0; b < batches_per_machine; ++b) slots.push_back(m);
  }
  uint64_t h = seed;
  for (size_t i = slots.size(); i > 1; --i) {
    h = SplitMix64(h ^ i);
    std::swap(slots[i - 1], slots[h % i]);
  }
  return slots;
}

}  // namespace omega::durable
