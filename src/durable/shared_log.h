// zlog/CORFU-style replicated shared log for the distributed simulation.
//
// CORFU's split of concerns: a *sequencer* hands out globally ordered
// positions (a counter, not an IO path), and each position's entry is then
// written to a replica set over the network; an append is durable once a
// quorum of replicas acks. Recovery is reading the log back: a machine that
// lost its state replays every record after its last checkpoint, and because
// positions are totally ordered, replay through a per-machine watermark is
// idempotent — replaying a prefix twice applies it once.
//
// The simulation charges the replica writes (and the replay reads) against
// the NET tier with per-replica fault draws on kFaultStreamSharedLog, so a
// flaky-net plan exercises the real quorum logic: a replica that exhausts
// its retries while the quorum still holds is counted degraded; losing the
// quorum surfaces IOError (and counts each lost replica's final fault as
// surfaced), preserving injected == retried + degraded + surfaced +
// recovered.

#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "memsim/memory_system.h"

namespace omega::durable {

/// CORFU's sequencer: a network counter that orders appends without moving
/// data. Gap-free by construction (fetch_add); thread-safe.
class LogSequencer {
 public:
  uint64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t Tail() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_{0};
};

struct SharedLogOptions {
  int replicas = 3;
  /// Acks required for a durable append; 0 resolves to majority
  /// (replicas / 2 + 1).
  int quorum = 0;
  /// Where replica writes land (the NET tier).
  memsim::Placement placement{memsim::Tier::kNetwork, 0};
  int threads = 1;
  memsim::FaultRetryPolicy retry;

  int ResolvedQuorum() const { return quorum > 0 ? quorum : replicas / 2 + 1; }
};

/// One sequenced update batch (metadata only; batch contents are analytic).
struct LogRecord {
  uint64_t position = 0;
  int machine = 0;
  uint64_t bytes = 0;
};

class ReplicatedLog {
 public:
  ReplicatedLog(memsim::MemorySystem* ms, SharedLogOptions options);

  struct AppendResult {
    uint64_t position = 0;
    /// Simulated seconds of the append: replicas write in parallel, so this
    /// is the slowest replica's attempt chain.
    double seconds = 0.0;
    int acks = 0;
  };

  /// Sequences and replicates one machine's update batch. IOError when fewer
  /// than quorum replicas ack after bounded retries; fault bucketing per the
  /// file comment. Thread-safe.
  Result<AppendResult> Append(int machine, uint64_t bytes);

  struct ReplayResult {
    uint64_t applied = 0;  ///< records newly applied by this call
    uint64_t skipped = 0;  ///< records at or below the watermark (no-ops)
    double seconds = 0.0;  ///< charged NET read time of the applied records
  };

  /// Replays all records with position < `upto` into `machine`'s cursor,
  /// skipping anything already applied. Charged as sequential NET reads.
  /// Thread-safe; idempotent (same `upto` twice applies nothing new).
  ReplayResult Replay(int machine, uint64_t upto);

  /// Marks positions < `upto` as incorporated into `machine`'s durable
  /// checkpoint: advances the watermark (and digest) with no simulated
  /// charge — the machine already applied those records during normal sync;
  /// the checkpoint merely persists that state. A subsequent Replay starts
  /// here, so recovery replays only the records since the last checkpoint.
  void AdvanceCheckpoint(int machine, uint64_t upto);

  /// Order-sensitive digest of the records `machine` has applied: equal
  /// digests mean equal applied sequences (the idempotence tests' witness).
  uint64_t Digest(int machine) const;

  /// Next unapplied position of the machine's cursor (0 = nothing applied).
  uint64_t Watermark(int machine) const;

  uint64_t Tail() const { return sequencer_.Tail(); }
  std::vector<LogRecord> Records() const;
  const SharedLogOptions& options() const { return options_; }

 private:
  struct Cursor {
    uint64_t watermark = 0;
    uint64_t digest = 0;
  };

  memsim::MemorySystem* ms_;
  SharedLogOptions options_;
  LogSequencer sequencer_;

  mutable std::mutex mu_;
  std::vector<LogRecord> records_;  ///< indexed by position once filled
  std::unordered_map<int, Cursor> cursors_;
};

/// Deterministic interleaving for the seeded concurrent-append property
/// tests: a SplitMix64-shuffled order of `machines * batches_per_machine`
/// append slots, batch b of machine m appearing exactly once.
std::vector<int> DeterministicSchedule(uint64_t seed, int machines,
                                       int batches_per_machine);

}  // namespace omega::durable
