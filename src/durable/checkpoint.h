// Crash-consistent checkpoint store on the simulated PM tier.
//
// The store is an append-only record log living on persistent memory. Real
// PM log writers (pmemlog, FlatStore, the "header dancing" of single-machine
// Optane graph systems) make torn writes detectable by ordering each append
// as payload-first, persist barrier, then a monotonically stamped +
// checksummed header, second barrier. We model exactly that: every Append
// charges the payload and header as PM writes plus two explicit persist
// barriers (MemorySystem::ChargePersistBarrier cost), and the host-side byte
// image carries the real header layout so Scan() can detect a torn or
// corrupted tail and truncate it instead of replaying garbage.
//
// Capacity flows through the PR6 BufferManager: each appended entry pins an
// accounting-only page on the PM tier (hot, never evicted), so a checkpoint
// that outgrows the simulated device surfaces CapacityExceeded like any
// other resident working set.
//
// On top of the raw entry log sits the snapshot layer used by the engine:
// one checkpoint = a meta entry, N matrix entries, and a commit marker that
// names the meta entry's stamp. ReadLastSnapshot walks back to the last
// commit whose whole group survived — a crash mid-checkpoint (torn final
// entry, missing commit) silently falls back to the previous snapshot.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/status.h"
#include "linalg/dense_matrix.h"
#include "memsim/memory_system.h"

namespace omega::durable {

/// Simulated-cost tally of one checkpoint operation (append / scan /
/// snapshot). Callers feed `seconds` to their PhaseSpan and the counters to
/// AddCkptCounters.
struct CkptCosts {
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t barriers = 0;
  double seconds = 0.0;

  CkptCosts& operator+=(const CkptCosts& other) {
    entries += other.entries;
    bytes += other.bytes;
    barriers += other.barriers;
    seconds += other.seconds;
    return *this;
  }
};

/// Entry types of the snapshot layer. The store itself treats types opaquely.
enum class EntryType : uint32_t {
  kMeta = 1,    ///< snapshot header: stage + term + matrix count + words
  kMatrix = 2,  ///< one named DenseMatrix (tag + dims + raw floats)
  kCommit = 3,  ///< commit marker: payload = the group's meta stamp
};

/// One decoded entry of the valid prefix.
struct LogEntry {
  uint64_t stamp = 0;
  uint32_t type = 0;
  std::vector<uint8_t> payload;
};

struct CheckpointOptions {
  /// Where the log lives; the paper's durability story is the PM tier.
  memsim::Placement placement{memsim::Tier::kPm, 0};
  /// active_threads for the charge model (the log writer is one stream).
  int threads = 1;
  /// Largest PM write charged per fault draw; a multi-MB matrix entry is a
  /// chunked stream of draws, so one media error wastes one chunk.
  size_t chunk_bytes = 1 << 20;
  memsim::FaultRetryPolicy retry;
};

class CheckpointStore {
 public:
  CheckpointStore(memsim::MemorySystem* ms, CheckpointOptions options);

  /// Appends one entry: payload chunks charged as fault-aware PM writes,
  /// barrier, stamped header write, barrier. IOError once a chunk exhausts
  /// its retries (the final fault is left un-bucketed for the caller).
  Result<CkptCosts> Append(uint32_t type, const void* payload, size_t bytes);

  /// Test hook: the crash happened between the payload stream and the final
  /// header persist — the header lands with a stale checksum over a
  /// half-written payload. Scan() must refuse the entry.
  Result<CkptCosts> AppendTorn(uint32_t type, const void* payload,
                               size_t bytes);

  /// Test hook: flips one payload byte of the last entry (silent media
  /// corruption below the fault injector).
  void CorruptTailChecksum();

  struct ScanResult {
    std::vector<LogEntry> entries;  ///< the valid prefix, in stamp order
    bool torn_tail = false;         ///< bytes after the prefix failed checks
  };

  /// Host-side walk of the image: magic + monotone stamp + checksum checks,
  /// stopping at the first violation. Free of simulated cost (Restore paths
  /// use ChargedScan).
  ScanResult Scan() const;

  /// Scan plus the simulated cost of reading the whole image back from PM
  /// and checksumming it.
  ScanResult ChargedScan(CkptCosts* costs);

  /// Drops the torn/corrupt tail (and its BufferManager reservations) so the
  /// next Append continues from the valid prefix. Returns entries dropped.
  size_t TruncateToValidPrefix();

  uint64_t entry_count() const { return entry_count_; }
  size_t image_bytes() const { return image_.size(); }
  memsim::MemorySystem* memory_system() const { return ms_; }
  const CheckpointOptions& options() const { return options_; }

  /// Host-side persistence of the image for --restore-from across processes.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  Result<CkptCosts> AppendImpl(uint32_t type, const void* payload,
                               size_t bytes, bool torn);

  memsim::MemorySystem* ms_;
  CheckpointOptions options_;
  buffer::BufferManager pool_;
  std::vector<uint8_t> image_;
  std::vector<buffer::PinHandle> entry_pins_;
  std::vector<size_t> entry_offsets_;  ///< image offset of each entry header
  uint64_t next_stamp_ = 0;
  uint64_t entry_count_ = 0;
  uint64_t fault_site_ = 0;
};

/// One engine checkpoint: where the run was, plus the matrices needed to
/// resume bitwise-identically. `stage` is engine-defined (the store does not
/// interpret it); `words` carries non-matrix state (e.g. a permutation).
struct CheckpointSnapshot {
  uint32_t stage = 0;
  uint64_t next_term = 0;
  std::vector<std::pair<std::string, linalg::DenseMatrix>> matrices;
  std::vector<uint64_t> words;
};

/// Writes the snapshot as one committed group (meta + matrices + commit).
Result<CkptCosts> WriteSnapshot(CheckpointStore* store,
                                const CheckpointSnapshot& snapshot);

/// Crash-mid-checkpoint variant: the group's final entry is torn and the
/// commit marker is never written, as if the process died between the
/// payload stream and the header persist. ReadLastSnapshot must fall back
/// to the previous committed snapshot.
Result<CkptCosts> WriteSnapshotTorn(CheckpointStore* store,
                                    const CheckpointSnapshot& snapshot);

/// Decodes the last committed snapshot of the store's valid prefix;
/// NotFound when no commit survives. Charges the restore scan into *costs
/// (pass nullptr for a free host-side read).
Result<CheckpointSnapshot> ReadLastSnapshot(CheckpointStore* store,
                                            CkptCosts* costs);

/// Marker status used by the crash-matrix tests and the engine's simulated
/// kill points: an IOError whose message identifies the kill site.
Status KilledError(const std::string& where);
bool IsKilledError(const Status& status);

}  // namespace omega::durable
