// NaDP — NUMA-aware data placement for parallel SpMM (§III-D).
//
// With NaDP enabled the execution follows Fig. 10:
//   1. NUMA-aware memory allocation: the sparse matrix is row-partitioned and
//      the dense matrix column-partitioned across sockets;
//   2. CPU-binding based computing: each socket's threads multiply every
//      sparse row block (local or remote, always sequentially) against the
//      socket-local dense block — global sequential read;
//   3. Local-priority based updating: intermediates are written to
//      socket-local buffers and only the small merge touches remote memory.
//
// With NaDP disabled, the kernel runs against the OS Interleaved placement
// (the paper's no-NaDP baseline), paying ~50% remote traffic on every stream.

#pragma once

#include <memory>
#include <vector>

#include "graph/csdb.h"
#include "linalg/dense_matrix.h"
#include "omega/exec_context.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sched/hetero_placement.h"
#include "sparse/pim_spmm.h"
#include "sparse/spmm.h"
#include "sparse/spmm_plan.h"

namespace omega::numa {

struct NadpOptions {
  int num_threads = 36;
  sched::AllocatorKind allocator = sched::AllocatorKind::kEntropyAware;
  double beta = 0.415;

  bool enabled = true;    ///< false => OS Interleaved baseline (OMeGa-w/o-NaDP)
  bool use_wofp = true;   ///< attach WoFP caches to the gather stream
  prefetch::WofpOptions wofp;

  memsim::Tier sparse_tier = memsim::Tier::kPm;
  memsim::Tier dense_tier = memsim::Tier::kPm;
  memsim::Tier result_tier = memsim::Tier::kDram;

  /// PIM offload (NaDP mode only; the Interleaved baseline ignores it). The
  /// config is part of the plan key — including dense_cols, because the ship
  /// cost does not scale with the operand width while every other cost does,
  /// so the optimal split depends on it.
  sched::PimConfig pim;
};

struct NadpResult {
  double phase_seconds = 0.0;
  std::vector<double> thread_seconds;
  sparse::SpmmCostBreakdown breakdown;
  uint64_t nnz_processed = 0;
  /// Simulated seconds the straggler spent building its WoFP store (contained
  /// in phase_seconds; the engines surface it as an aux trace phase).
  double wofp_build_seconds = 0.0;

  // PIM offload sub-phases (all contained in phase_seconds: the pipeline
  // front overlaps the host panels, the drain tail is serial after both).
  double pim_transfer_seconds = 0.0;  ///< broadcast + ship + readback DMA
  double pim_compute_seconds = 0.0;   ///< bank straggler MACs
  double pim_reduce_seconds = 0.0;    ///< host merge + degraded fallbacks
  uint64_t pim_nnz = 0;               ///< nnz processed on the banks
  uint64_t pim_degraded_blocks = 0;   ///< blocks recharged at host cost

  double ThroughputNnzPerSec() const {
    return sparse::ThroughputNnzPerSec(nnz_processed, phase_seconds);
  }
};

class NadpPlan;

/// One SpMM C[:, col_begin:col_end) = A * B[:, col_begin:col_end) under the
/// configured placement policy. C must be pre-sized to a.num_rows() x
/// b.cols(). With NaDP enabled each socket covers its share of the column
/// range; when disabled, all threads cover the whole range. The default range
/// is the full width (ASL passes one partition at a time).
///
/// Per-call planning: equivalent to NadpPlan::Build + NadpExecute. Callers
/// issuing the same SpMM repeatedly should build the plan once instead.
NadpResult NadpSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                    linalg::DenseMatrix* c, const NadpOptions& options,
                    const exec::Context& ctx, size_t col_begin = 0,
                    size_t col_end = SIZE_MAX);

/// Inspector state of one NaDP SpMM, reusable across executes on the same
/// sparse structure: the per-socket (or flat) EaTA workloads, the column
/// in-degree array, the NaDP row partition, the worker->socket layout, and
/// each worker's host-side WoFP store. Building charges nothing; NadpExecute
/// replays the WoFP build charges per call, so executing through a reused
/// plan produces byte-identical simulated output to per-call planning while
/// skipping the host-side inspector work.
///
/// The column partition is NOT part of the plan: it depends on the execute
/// call's [col_begin, col_end) range (ASL passes one partition at a time) and
/// is recomputed per call (cheap arithmetic).
class NadpPlan {
 public:
  NadpPlan() = default;
  NadpPlan(NadpPlan&&) = default;
  NadpPlan& operator=(NadpPlan&&) = default;

  /// Builds the plan on the context's pool (the WoFP stores build in
  /// parallel, one per worker). No simulated charging happens here.
  static NadpPlan Build(const graph::CsdbMatrix& a, const NadpOptions& options,
                        const exec::Context& ctx);

  bool valid() const { return threads_ > 0; }

  /// True when the plan was built for the same sparse structure and options.
  bool Matches(const graph::CsdbMatrix& a, const NadpOptions& options) const;

  const NadpOptions& options() const { return options_; }
  const std::vector<uint32_t>& in_degrees() const { return in_degrees_; }
  const sparse::SparseStructureKey& structure() const { return structure_; }

  /// The heterogeneous (host vs PIM) row split this plan was built with.
  /// Empty (no blocks, no ranges) unless options.pim is active in NaDP mode.
  const sched::HeteroPlacement& hetero() const { return hetero_; }

  /// Re-keys the plan onto `a` without rebuilding. Only sound when `a` has
  /// the same sparsity structure as the matrix the plan was built for (a
  /// weight-only delta): plans depend on structure, never on values.
  void RebindStructure(const graph::CsdbMatrix& a) {
    structure_ = sparse::StructureOf(a);
  }

  /// Worker w's WoFP dense-row cache view (nullptr when use_wofp is off or
  /// the worker has no workload). Lets the incremental-refresh path price its
  /// restricted SpMMs against the same resident stores NadpExecute uses.
  const prefetch::WofpPrefetcher* cache(size_t worker) const {
    return worker < caches_.size() ? caches_[worker].get() : nullptr;
  }

 private:
  friend NadpResult NadpExecute(const NadpPlan& plan, const graph::CsdbMatrix& a,
                                const linalg::DenseMatrix& b,
                                linalg::DenseMatrix* c, const exec::Context& ctx,
                                size_t col_begin, size_t col_end);

  NadpOptions options_;
  sparse::SparseStructureKey structure_;
  sched::HeteroPlacement hetero_;
  int threads_ = 0;
  int sockets_ = 0;
  int active_sockets_ = 0;
  int per_socket_ = 0;  ///< worker->socket layout stride
  std::vector<uint32_t> in_degrees_;
  std::vector<sched::Workload> flat_workloads_;  ///< !enabled (interleaved)
  std::vector<std::vector<sched::Workload>> per_socket_workloads_;  ///< enabled
  std::vector<sched::RowRange> row_blocks_;                         ///< enabled
  /// Each worker's workload intersected with every socket's row block,
  /// hoisted from the execute loop (enabled mode; [worker][block]).
  std::vector<std::vector<sched::Workload>> sub_workloads_;
  /// Pre-scanned cache-less charge metadata (ScanChargeMetaCsdb), built only
  /// when use_wofp is off: flat_meta_[worker] for the interleaved baseline,
  /// sub_meta_[worker][block] for NaDP. Cache runs must keep the per-call
  /// walk — hits depend on the cache's contents.
  std::vector<sparse::CsdbChargeMeta> flat_meta_;
  std::vector<std::vector<sparse::CsdbChargeMeta>> sub_meta_;
  /// Frame pool behind the workers' WoFP stores (hot-pinned: the η-rule
  /// resident sets are never evicted). Declared before caches_ so the
  /// prefetchers' pins are released before the pool dies; unique_ptr keeps
  /// the pool address stable across plan moves.
  std::unique_ptr<buffer::BufferManager> frames_;
  /// Host-side WoFP stores, slot per worker (null where a worker has no
  /// workload or use_wofp is off). DRAM frames are held for the plan's
  /// lifetime.
  std::vector<std::unique_ptr<prefetch::WofpPrefetcher>> caches_;
};

/// Executor half: runs one SpMM through a prebuilt plan. All simulated
/// charges — including each worker's WoFP build warm-up — are issued per
/// call in the same order as NadpSpmm, so simulated seconds and traffic are
/// byte-identical to per-call planning.
NadpResult NadpExecute(const NadpPlan& plan, const graph::CsdbMatrix& a,
                       const linalg::DenseMatrix& b, linalg::DenseMatrix* c,
                       const exec::Context& ctx, size_t col_begin = 0,
                       size_t col_end = SIZE_MAX);

/// Small LRU plan cache keyed by (structure, options) — the engines' SpMM
/// executors hit it once per ProNE stage. Multiple slots let the stage-1 and
/// stage-2 matrices (and a delta-applied successor) coexist; Get counts hits
/// and misses, and InvalidateDelta gives graph deltas structure-aware
/// eviction instead of relying on pointer identity going stale.
class NadpPlanCache {
 public:
  explicit NadpPlanCache(size_t capacity = 4)
      : capacity_(capacity > 0 ? capacity : 1) {}

  bool Contains(const graph::CsdbMatrix& a, const NadpOptions& options) const;

  /// Returns the cached plan for (a, options), building (and inserting,
  /// evicting the least-recently-used slot when full) on a miss.
  const NadpPlan& Get(const graph::CsdbMatrix& a, const NadpOptions& options,
                      const exec::Context& ctx);

  /// Structure-aware invalidation after a delta replaced `old_m` with
  /// `new_m`. A weight-only delta (no touched stripes between the two
  /// fingerprints) rebinds slots built for `old_m` onto `new_m` — the plans
  /// stay valid because they depend on structure only. A structural delta
  /// drops exactly the slots built for `old_m`; plans for other matrices
  /// (the stage-1 modularity matrix, say) are untouched. Returns the number
  /// of slots dropped or rebound.
  size_t InvalidateDelta(const graph::CsdbMatrix& old_m,
                         const graph::CsdbMatrix& new_m);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  size_t size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    NadpPlan plan;
    uint64_t last_used = 0;
  };

  size_t capacity_ = 4;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace omega::numa
