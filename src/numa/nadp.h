// NaDP — NUMA-aware data placement for parallel SpMM (§III-D).
//
// With NaDP enabled the execution follows Fig. 10:
//   1. NUMA-aware memory allocation: the sparse matrix is row-partitioned and
//      the dense matrix column-partitioned across sockets;
//   2. CPU-binding based computing: each socket's threads multiply every
//      sparse row block (local or remote, always sequentially) against the
//      socket-local dense block — global sequential read;
//   3. Local-priority based updating: intermediates are written to
//      socket-local buffers and only the small merge touches remote memory.
//
// With NaDP disabled, the kernel runs against the OS Interleaved placement
// (the paper's no-NaDP baseline), paying ~50% remote traffic on every stream.

#pragma once

#include <vector>

#include "graph/csdb.h"
#include "linalg/dense_matrix.h"
#include "omega/exec_context.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sparse/spmm.h"

namespace omega::numa {

struct NadpOptions {
  int num_threads = 36;
  sched::AllocatorKind allocator = sched::AllocatorKind::kEntropyAware;
  double beta = 0.415;

  bool enabled = true;    ///< false => OS Interleaved baseline (OMeGa-w/o-NaDP)
  bool use_wofp = true;   ///< attach WoFP caches to the gather stream
  prefetch::WofpOptions wofp;

  memsim::Tier sparse_tier = memsim::Tier::kPm;
  memsim::Tier dense_tier = memsim::Tier::kPm;
  memsim::Tier result_tier = memsim::Tier::kDram;
};

struct NadpResult {
  double phase_seconds = 0.0;
  std::vector<double> thread_seconds;
  sparse::SpmmCostBreakdown breakdown;
  uint64_t nnz_processed = 0;
  /// Simulated seconds the straggler spent building its WoFP store (contained
  /// in phase_seconds; the engines surface it as an aux trace phase).
  double wofp_build_seconds = 0.0;

  double ThroughputNnzPerSec() const {
    return phase_seconds > 0.0 ? static_cast<double>(nnz_processed) / phase_seconds
                               : 0.0;
  }
};

/// One SpMM C[:, col_begin:col_end) = A * B[:, col_begin:col_end) under the
/// configured placement policy. C must be pre-sized to a.num_rows() x
/// b.cols(). With NaDP enabled each socket covers its share of the column
/// range; when disabled, all threads cover the whole range. The default range
/// is the full width (ASL passes one partition at a time).
NadpResult NadpSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                    linalg::DenseMatrix* c, const NadpOptions& options,
                    const exec::Context& ctx, size_t col_begin = 0,
                    size_t col_end = SIZE_MAX);

}  // namespace omega::numa
