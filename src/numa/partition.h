// Socket-level partitioning of the SpMM operands (§III-D, Fig. 10).
//
// NaDP splits the sparse matrix M into per-socket row blocks (balanced by
// nnz) and the dense matrix L into per-socket column blocks. Socket s owns
// L_s and computes C[:, cols_s] = M x L_s: its threads read every sparse row
// block sequentially (local or remote — global sequential read) and write the
// per-socket intermediates locally (local write).

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/csdb.h"
#include "sched/workload.h"

namespace omega::numa {

struct SocketPartition {
  /// Per-socket sparse row block (contiguous, nnz-balanced).
  std::vector<sched::RowRange> row_blocks;
  /// Per-socket dense column block [begin, end).
  std::vector<std::pair<size_t, size_t>> col_blocks;

  int num_sockets() const { return static_cast<int>(row_blocks.size()); }

  /// Socket owning sparse row `r`.
  int SocketOfRow(uint32_t r) const;
};

/// Builds the partition for `num_sockets` sockets over an a (CSDB) x B SpMM
/// with `dense_cols` dense columns.
SocketPartition MakeSocketPartition(const graph::CsdbMatrix& a, size_t dense_cols,
                                    int num_sockets);

/// Clips a workload to one row block; ranges outside the block are dropped.
sched::Workload IntersectWorkload(const sched::Workload& w,
                                  const sched::RowRange& block);

}  // namespace omega::numa
