#include "numa/partition.h"

#include <algorithm>

namespace omega::numa {

int SocketPartition::SocketOfRow(uint32_t r) const {
  for (int s = 0; s < num_sockets(); ++s) {
    if (r >= row_blocks[s].begin && r < row_blocks[s].end) return s;
  }
  return num_sockets() - 1;
}

SocketPartition MakeSocketPartition(const graph::CsdbMatrix& a, size_t dense_cols,
                                    int num_sockets) {
  SocketPartition part;
  part.row_blocks.resize(num_sockets);
  part.col_blocks.resize(num_sockets);

  // nnz-balanced contiguous row blocks.
  const uint64_t total = a.nnz();
  auto cursor = a.Rows(0);
  for (int s = 0; s < num_sockets; ++s) {
    const uint64_t budget =
        std::max<uint64_t>(1, total / static_cast<uint64_t>(num_sockets));
    const uint32_t begin = cursor.row();
    uint64_t taken = 0;
    while (!cursor.AtEnd() &&
           (s == num_sockets - 1 || taken < budget || taken == 0)) {
      taken += cursor.degree();
      cursor.Next();
    }
    part.row_blocks[s] = sched::RowRange{begin, cursor.row()};
  }
  // Last block absorbs any unconsumed tail rows.
  part.row_blocks[num_sockets - 1].end = a.num_rows();

  // Equal-count dense column blocks.
  const size_t per = (dense_cols + num_sockets - 1) / num_sockets;
  for (int s = 0; s < num_sockets; ++s) {
    const size_t begin = std::min(dense_cols, static_cast<size_t>(s) * per);
    const size_t end = std::min(dense_cols, begin + per);
    part.col_blocks[s] = {begin, end};
  }
  return part;
}

sched::Workload IntersectWorkload(const sched::Workload& w,
                                  const sched::RowRange& block) {
  sched::Workload out;
  for (const sched::RowRange& range : w.ranges) {
    const uint32_t begin = std::max(range.begin, block.begin);
    const uint32_t end = std::min(range.end, block.end);
    if (begin < end) out.ranges.push_back(sched::RowRange{begin, end});
  }
  return out;
}

}  // namespace omega::numa
