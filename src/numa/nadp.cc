#include "numa/nadp.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "numa/partition.h"

namespace omega::numa {

namespace {

// Workers are assigned to sockets in contiguous blocks, mirroring
// Topology::SocketOfWorker.
struct WorkerLayout {
  int per_socket = 0;

  int SocketOf(int worker, int sockets) const {
    return std::min(worker / per_socket, sockets - 1);
  }
  int LocalIndex(int worker, int socket) const { return worker - socket * per_socket; }
  int ThreadsOnSocket(int socket, int total, int sockets) const {
    const int begin = socket * per_socket;
    const int end = socket == sockets - 1 ? total
                                          : std::min(total, begin + per_socket);
    return std::max(0, end - begin);
  }
};

}  // namespace

NadpPlan NadpPlan::Build(const graph::CsdbMatrix& a, const NadpOptions& options,
                         const exec::Context& exec_ctx) {
  memsim::MemorySystem* ms = exec_ctx.ms();
  ThreadPool* pool = exec_ctx.pool();
  const int threads = options.num_threads;
  OMEGA_CHECK(threads > 0);
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));

  NadpPlan plan;
  plan.options_ = options;
  plan.structure_ = sparse::StructureOf(a);
  plan.threads_ = threads;
  plan.sockets_ = ms->topology().num_sockets();
  plan.caches_.resize(threads);
  if (options.use_wofp) {
    plan.in_degrees_ = sparse::ComputeInDegrees(a);
    // One pool for all workers' stores; its mutex makes the concurrent
    // RunOnAll pins below safe.
    plan.frames_ = std::make_unique<buffer::BufferManager>(
        ms, buffer::BufferManager::Options{
                0, buffer::EvictionPolicy::kHotPinned});
  }

  sched::AllocatorOptions alloc_opts;
  alloc_opts.beta = options.beta;

  if (!options.enabled) {
    alloc_opts.num_threads = threads;
    plan.flat_workloads_ = sched::Allocate(a, options.allocator, alloc_opts);
    if (!options.use_wofp) {
      // Cache-less executes charge from hoisted metadata; scan it here in the
      // same ascending-row order the per-call walk uses.
      plan.flat_meta_.reserve(plan.flat_workloads_.size());
      for (const sched::Workload& w : plan.flat_workloads_) {
        plan.flat_meta_.push_back(sparse::ScanChargeMetaCsdb(a, w));
      }
    }
    if (options.use_wofp) {
      // Host-side store construction only (ctx = nullptr): the simulated
      // warm-up is replayed on every NadpExecute so the clocks see the same
      // charge sequence as per-call planning.
      pool->RunOnAll([&](size_t worker) {
        if (worker >= static_cast<size_t>(threads)) return;
        prefetch::WofpOptions wofp = options.wofp;
        wofp.cache_placement.socket = memsim::Placement::kInterleaved;
        plan.caches_[worker] = prefetch::WofpPrefetcher::Build(
            a, plan.flat_workloads_[worker], plan.in_degrees_, wofp, ms,
            nullptr, plan.frames_.get());
      });
    }
    return plan;
  }

  const int active_sockets = std::min(plan.sockets_, threads);
  plan.active_sockets_ = active_sockets;
  // The sparse row partition depends only on the matrix and socket count; the
  // dense column partition depends on the execute call's column range and is
  // recomputed there.
  plan.row_blocks_ =
      std::move(MakeSocketPartition(a, /*dense_cols=*/0, plan.sockets_).row_blocks);

  WorkerLayout layout;
  layout.per_socket = (threads + active_sockets - 1) / active_sockets;
  plan.per_socket_ = layout.per_socket;

  // Heterogeneous placement: price every degree block against the PIM gang
  // and carve the offloaded rows out of the host allocations below. When the
  // placement offloads nothing (host-only policy, or auto deciding against),
  // the original full-matrix Allocate path runs so the charges are
  // byte-identical to a PIM-less build.
  if (options.pim.active()) {
    plan.hetero_ = sched::PlaceDegreeBlocks(a, options.pim, *ms, threads,
                                            options.sparse_tier,
                                            options.dense_tier,
                                            options.result_tier);
  }
  const bool offload = plan.hetero_.any_pim();

  // Per-socket thread allocations (identical when threads % sockets == 0).
  plan.per_socket_workloads_.resize(plan.sockets_);
  for (int s = 0; s < active_sockets; ++s) {
    const int ws = layout.ThreadsOnSocket(s, threads, active_sockets);
    if (ws <= 0) continue;
    alloc_opts.num_threads = ws;
    plan.per_socket_workloads_[s] =
        offload ? sched::AllocateSubset(a, options.allocator,
                                        plan.hetero_.host_ranges, alloc_opts)
                : sched::Allocate(a, options.allocator, alloc_opts);
  }

  // Hoist the per-(worker, socket-block) workload intersections out of the
  // execute loop; for cache-less plans also pre-scan each piece's charge
  // metadata (same ascending-row order as the per-call walk).
  plan.sub_workloads_.resize(threads);
  if (!options.use_wofp) plan.sub_meta_.resize(threads);
  for (int w = 0; w < threads; ++w) {
    const int s = layout.SocketOf(w, active_sockets);
    const int wi = layout.LocalIndex(w, s);
    if (wi >= static_cast<int>(plan.per_socket_workloads_[s].size())) continue;
    const sched::Workload& workload = plan.per_socket_workloads_[s][wi];
    plan.sub_workloads_[w].reserve(plan.sockets_);
    for (int block = 0; block < plan.sockets_; ++block) {
      plan.sub_workloads_[w].push_back(
          IntersectWorkload(workload, plan.row_blocks_[block]));
      if (!options.use_wofp) {
        plan.sub_meta_[w].push_back(
            sparse::ScanChargeMetaCsdb(a, plan.sub_workloads_[w].back()));
      }
    }
  }

  if (options.use_wofp) {
    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      const int w = static_cast<int>(worker);
      const int s = layout.SocketOf(w, active_sockets);
      const int wi = layout.LocalIndex(w, s);
      // Workers without a workload never build a cache (NadpSpmm's early
      // exit); their slot stays null and NadpExecute skips them identically.
      if (wi >= static_cast<int>(plan.per_socket_workloads_[s].size())) return;
      prefetch::WofpOptions wofp = options.wofp;
      wofp.cache_placement.socket = s;
      plan.caches_[worker] = prefetch::WofpPrefetcher::Build(
          a, plan.per_socket_workloads_[s][wi], plan.in_degrees_, wofp, ms,
          nullptr, plan.frames_.get());
    });
  }
  return plan;
}

bool NadpPlan::Matches(const graph::CsdbMatrix& a,
                       const NadpOptions& options) const {
  if (!valid()) return false;
  if (!(structure_ == sparse::StructureOf(a))) return false;
  const NadpOptions& p = options_;
  return p.num_threads == options.num_threads &&
         p.allocator == options.allocator && p.beta == options.beta &&
         p.enabled == options.enabled && p.use_wofp == options.use_wofp &&
         p.wofp.eta == options.wofp.eta && p.wofp.sigma == options.wofp.sigma &&
         p.wofp.cache_placement == options.wofp.cache_placement &&
         p.wofp.charge_build == options.wofp.charge_build &&
         p.sparse_tier == options.sparse_tier &&
         p.dense_tier == options.dense_tier &&
         p.result_tier == options.result_tier && p.pim == options.pim;
}

NadpResult NadpExecute(const NadpPlan& plan, const graph::CsdbMatrix& a,
                       const linalg::DenseMatrix& b, linalg::DenseMatrix* c,
                       const exec::Context& exec_ctx, size_t col_begin,
                       size_t col_end) {
  OMEGA_CHECK(plan.valid());
  memsim::MemorySystem* ms = exec_ctx.ms();
  ThreadPool* pool = exec_ctx.pool();
  const NadpOptions& options = plan.options_;
  const int threads = plan.threads_;
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));
  OMEGA_CHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  OMEGA_CHECK(col_begin <= col_end);

  NadpResult result;
  result.thread_seconds.assign(threads, 0.0);
  result.nnz_processed = a.nnz();
  memsim::ClockGroup clocks(threads);
  std::vector<sparse::SpmmCostBreakdown> breakdowns(threads);
  std::vector<double> wofp_build(threads, 0.0);
  // Per-execute WorkerCtxs must not reuse fault sites across executes, or
  // every execute would replay the first one's tail-stall draws.
  const uint64_t fault_epoch = ms->NextFaultEpoch();

  if (!options.enabled) {
    // OS Interleaved baseline: one global allocation; every stream pays the
    // interleaved local/remote mix.
    sparse::SpmmPlacements pl;
    pl.index = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
    pl.sparse = {options.sparse_tier, memsim::Placement::kInterleaved};
    pl.dense = {options.dense_tier, memsim::Placement::kInterleaved};
    pl.result = {options.result_tier, memsim::Placement::kInterleaved};

    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      memsim::WorkerCtx ctx;
      ctx.worker = static_cast<int>(worker);
      ctx.cpu_socket = ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
      ctx.active_threads = threads;
      ctx.clock = &clocks.clock(worker);
      ctx.fault_site = fault_epoch;
      const sparse::DenseCacheView* cache = nullptr;
      if (options.use_wofp) {
        // Replay the build warm-up at the exact point per-call planning paid
        // it, so a reused plan is simulation-identical to rebuilding.
        const double before = ctx.clock->seconds();
        if (options.wofp.charge_build) {
          plan.caches_[worker]->ReplayBuildCharges(&ctx);
        }
        wofp_build[worker] = ctx.clock->seconds() - before;
        cache = plan.caches_[worker].get();
      }
      if (cache == nullptr && !plan.flat_meta_.empty()) {
        // Cache-less: compute, then charge from the plan's hoisted metadata
        // (byte-identical to the walking path; no per-execute scan).
        sparse::ComputeWorkloadCsdb(a, b, c, plan.flat_workloads_[worker],
                                    col_begin, col_end);
        breakdowns[worker] = sparse::ChargeWorkloadCsdb(
            a, col_end - col_begin, plan.flat_meta_[worker], pl, ms, &ctx);
      } else {
        breakdowns[worker] = sparse::ExecuteWorkloadCsdb(
            a, b, c, plan.flat_workloads_[worker], pl, ms, &ctx, cache,
            col_begin, col_end);
      }
      // Under fault injection, the dense tier can hit a tail stall that
      // lengthens this worker's whole phase (no-op when faults are off).
      ms->ChargeTailStall(&ctx, options.dense_tier, ctx.clock->seconds());
    });
  } else {
    // NaDP (Fig. 10): socket s's threads compute C[:, cols_s] = A * B[:,
    // cols_s], reading each sparse row block from its owning socket. The
    // column blocks partition [col_begin, col_end). With fewer threads than
    // sockets, only the sockets that have a thread receive a column block
    // (the data partition across sockets is unchanged).
    const int active_sockets = plan.active_sockets_;
    const int sockets = plan.sockets_;
    std::vector<std::pair<size_t, size_t>> col_blocks(sockets);
    {
      // Same arithmetic as MakeSocketPartition's equal-count column split over
      // active_sockets, shifted into [col_begin, col_end).
      const size_t span = col_end - col_begin;
      const size_t per = (span + active_sockets - 1) / active_sockets;
      for (int s = 0; s < sockets; ++s) {
        if (s < active_sockets) {
          const size_t begin = std::min(span, static_cast<size_t>(s) * per);
          const size_t end = std::min(span, begin + per);
          col_blocks[s] = {col_begin + begin, col_begin + end};
        } else {
          col_blocks[s] = {col_begin, col_begin};
        }
      }
    }
    WorkerLayout layout;
    layout.per_socket = plan.per_socket_;

    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      const int w = static_cast<int>(worker);
      const int s = layout.SocketOf(w, active_sockets);
      const int wi = layout.LocalIndex(w, s);
      if (wi >= static_cast<int>(plan.per_socket_workloads_[s].size())) return;
      const auto [col_begin, col_end] = col_blocks[s];

      memsim::WorkerCtx ctx;
      ctx.worker = w;
      ctx.cpu_socket = s;
      // NaDP's point: each socket's thread group contends only for its own
      // socket's devices (local dense block, local intermediates), so the
      // per-device concurrency is the socket group, not the whole pool. The
      // Interleaved baseline spreads every thread across all devices and is
      // charged at full-pool contention.
      ctx.active_threads = layout.ThreadsOnSocket(s, threads, active_sockets);
      ctx.clock = &clocks.clock(worker);
      ctx.fault_site = fault_epoch;

      const sparse::DenseCacheView* cache = nullptr;
      if (options.use_wofp) {
        const double before = ctx.clock->seconds();
        if (options.wofp.charge_build) {
          plan.caches_[worker]->ReplayBuildCharges(&ctx);
        }
        wofp_build[worker] = ctx.clock->seconds() - before;
        cache = plan.caches_[worker].get();
      }

      uint64_t rows_processed = 0;
      for (int block = 0; block < sockets; ++block) {
        const sched::Workload& sub = plan.sub_workloads_[worker][block];
        if (sub.ranges.empty()) continue;
        sparse::SpmmPlacements pl;
        pl.index = {memsim::Tier::kDram, s};          // CSDB metadata: tiny, local
        pl.sparse = {options.sparse_tier, block};     // sequential, local or remote
        pl.dense = {options.dense_tier, s};           // socket-local dense block
        pl.result = {options.result_tier, s};         // local intermediate writes
        if (cache == nullptr && !plan.sub_meta_.empty()) {
          // Cache-less: charge from the hoisted per-piece metadata instead of
          // re-walking the intersection on every execute.
          sparse::ComputeWorkloadCsdb(a, b, c, sub, col_begin, col_end);
          breakdowns[worker] += sparse::ChargeWorkloadCsdb(
              a, col_end - col_begin, plan.sub_meta_[worker][block], pl, ms,
              &ctx);
        } else {
          breakdowns[worker] += sparse::ExecuteWorkloadCsdb(
              a, b, c, sub, pl, ms, &ctx, cache, col_begin, col_end);
        }
        for (const sched::RowRange& range : sub.ranges) rows_processed += range.size();
      }

      // Merge: copy the local intermediate into the assembled result. Reads
      // are local; the destination is page-interleaved, so a fraction of the
      // writes is remote — the "few remote accesses" of Fig. 10 step 4.
      const uint64_t merge_bytes =
          rows_processed * (col_end - col_begin) * sizeof(float);
      if (merge_bytes > 0) {
        ms->ChargeAccess(&ctx, {options.result_tier, s}, memsim::MemOp::kRead,
                         memsim::Pattern::kSequential, merge_bytes, 1);
        ms->ChargeAccess(&ctx,
                         {options.result_tier, memsim::Placement::kInterleaved},
                         memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                         merge_bytes, 1);
      }
      // See the interleaved branch: per-worker tail stall on the dense tier.
      ms->ChargeTailStall(&ctx, options.dense_tier, ctx.clock->seconds());
    });
  }

  for (int t = 0; t < threads; ++t) {
    result.thread_seconds[t] = clocks.clock(t).seconds();
    result.breakdown += breakdowns[t];
    result.wofp_build_seconds = std::max(result.wofp_build_seconds, wofp_build[t]);
  }
  result.phase_seconds = clocks.MaxSeconds();

  // PIM offload: the banks cover the plan's pim_ranges over the full column
  // range while the host threads above covered only host_ranges. The
  // pipeline front (broadcast + ship + bank compute) overlaps the host
  // panels; the drain tail lands after the straggler of either side.
  if (options.enabled && plan.hetero_.any_pim()) {
    sparse::PimSpmmOptions popts;
    popts.config = options.pim;
    popts.host.index = {memsim::Tier::kDram, 0};
    popts.host.sparse = {options.sparse_tier, 0};
    popts.host.dense = {options.dense_tier, 0};
    // Merged panels land in the assembled (page-interleaved) result, same as
    // the host merge step's destination.
    popts.host.result = {options.result_tier, memsim::Placement::kInterleaved};
    popts.col_begin = col_begin;
    popts.col_end = col_end;
    Result<sparse::PimSpmmResult> pim = sparse::PimSpmm(
        a, b, c, plan.hetero_, popts, ms, pool, fault_epoch);
    OMEGA_CHECK(pim.ok()) << pim.status().message();
    const sparse::PimSpmmResult& pr = pim.value();
    result.pim_transfer_seconds = pr.transfer_seconds;
    result.pim_compute_seconds = pr.compute_seconds;
    result.pim_reduce_seconds = pr.reduce_seconds;
    result.pim_nnz = pr.nnz_processed;
    result.pim_degraded_blocks = pr.degraded_blocks;
    result.phase_seconds =
        std::max(result.phase_seconds, pr.pipeline_seconds) + pr.tail_seconds;
  }
  return result;
}

NadpResult NadpSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                    linalg::DenseMatrix* c, const NadpOptions& options,
                    const exec::Context& exec_ctx, size_t col_begin,
                    size_t col_end) {
  const NadpPlan plan = NadpPlan::Build(a, options, exec_ctx);
  return NadpExecute(plan, a, b, c, exec_ctx, col_begin, col_end);
}

bool NadpPlanCache::Contains(const graph::CsdbMatrix& a,
                             const NadpOptions& options) const {
  for (const Slot& slot : slots_) {
    if (slot.plan.Matches(a, options)) return true;
  }
  return false;
}

const NadpPlan& NadpPlanCache::Get(const graph::CsdbMatrix& a,
                                   const NadpOptions& options,
                                   const exec::Context& ctx) {
  ++tick_;
  for (Slot& slot : slots_) {
    if (slot.plan.Matches(a, options)) {
      ++hits_;
      slot.last_used = tick_;
      return slot.plan;
    }
  }
  ++misses_;
  if (slots_.size() < capacity_) {
    slots_.emplace_back();
  } else {
    // Reuse the least-recently-used slot.
    size_t victim = 0;
    for (size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    if (victim != slots_.size() - 1) {
      std::swap(slots_[victim], slots_.back());
    }
  }
  slots_.back().plan = NadpPlan::Build(a, options, ctx);
  slots_.back().last_used = tick_;
  return slots_.back().plan;
}

size_t NadpPlanCache::InvalidateDelta(const graph::CsdbMatrix& old_m,
                                      const graph::CsdbMatrix& new_m) {
  const sparse::SparseStructureKey old_key = sparse::StructureOf(old_m);
  const bool weight_only =
      sparse::TouchedStripes(sparse::FingerprintOf(old_m),
                             sparse::FingerprintOf(new_m))
          .empty();
  size_t affected = 0;
  for (size_t i = 0; i < slots_.size();) {
    if (slots_[i].plan.structure() != old_key) {
      ++i;
      continue;
    }
    ++affected;
    if (weight_only) {
      slots_[i].plan.RebindStructure(new_m);
      ++i;
    } else {
      ++invalidations_;
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  return affected;
}

}  // namespace omega::numa
