#include "numa/nadp.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "numa/partition.h"

namespace omega::numa {

namespace {

// Workers are assigned to sockets in contiguous blocks, mirroring
// Topology::SocketOfWorker.
struct WorkerLayout {
  int per_socket = 0;

  int SocketOf(int worker, int sockets) const {
    return std::min(worker / per_socket, sockets - 1);
  }
  int LocalIndex(int worker, int socket) const { return worker - socket * per_socket; }
  int ThreadsOnSocket(int socket, int total, int sockets) const {
    const int begin = socket * per_socket;
    const int end = socket == sockets - 1 ? total
                                          : std::min(total, begin + per_socket);
    return std::max(0, end - begin);
  }
};

}  // namespace

NadpResult NadpSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                    linalg::DenseMatrix* c, const NadpOptions& options,
                    const exec::Context& exec_ctx, size_t col_begin,
                    size_t col_end) {
  memsim::MemorySystem* ms = exec_ctx.ms();
  ThreadPool* pool = exec_ctx.pool();
  const int threads = options.num_threads;
  OMEGA_CHECK(threads > 0);
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));
  OMEGA_CHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  OMEGA_CHECK(col_begin <= col_end);

  const int sockets = ms->topology().num_sockets();
  sched::AllocatorOptions alloc_opts;
  alloc_opts.beta = options.beta;

  NadpResult result;
  result.thread_seconds.assign(threads, 0.0);
  result.nnz_processed = a.nnz();
  memsim::ClockGroup clocks(threads);
  std::vector<sparse::SpmmCostBreakdown> breakdowns(threads);
  std::vector<std::unique_ptr<prefetch::WofpPrefetcher>> caches(threads);
  std::vector<double> wofp_build(threads, 0.0);
  const std::vector<uint32_t> in_degrees =
      options.use_wofp ? prefetch::ComputeInDegrees(a) : std::vector<uint32_t>{};

  if (!options.enabled) {
    // OS Interleaved baseline: one global allocation; every stream pays the
    // interleaved local/remote mix.
    alloc_opts.num_threads = threads;
    const std::vector<sched::Workload> workloads =
        sched::Allocate(a, options.allocator, alloc_opts);
    sparse::SpmmPlacements pl;
    pl.index = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
    pl.sparse = {options.sparse_tier, memsim::Placement::kInterleaved};
    pl.dense = {options.dense_tier, memsim::Placement::kInterleaved};
    pl.result = {options.result_tier, memsim::Placement::kInterleaved};

    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      memsim::WorkerCtx ctx;
      ctx.worker = static_cast<int>(worker);
      ctx.cpu_socket = ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
      ctx.active_threads = threads;
      ctx.clock = &clocks.clock(worker);
      const sparse::DenseCacheView* cache = nullptr;
      if (options.use_wofp) {
        prefetch::WofpOptions wofp = options.wofp;
        // Keep the configured cache tier; only the placement policy changes.
        wofp.cache_placement.socket = memsim::Placement::kInterleaved;
        const double before = ctx.clock->seconds();
        caches[worker] = prefetch::WofpPrefetcher::Build(a, workloads[worker],
                                                         in_degrees, wofp, ms, &ctx);
        wofp_build[worker] = ctx.clock->seconds() - before;
        cache = caches[worker].get();
      }
      breakdowns[worker] = sparse::ExecuteWorkloadCsdb(
          a, b, c, workloads[worker], pl, ms, &ctx, cache, col_begin, col_end);
    });
  } else {
    // NaDP (Fig. 10): socket s's threads compute C[:, cols_s] = A * B[:,
    // cols_s], reading each sparse row block from its owning socket. The
    // column blocks partition [col_begin, col_end). With fewer threads than
    // sockets, only the sockets that have a thread receive a column block
    // (the data partition across sockets is unchanged).
    const int active_sockets = std::min(sockets, threads);
    SocketPartition part = MakeSocketPartition(a, col_end - col_begin, sockets);
    {
      const SocketPartition cols =
          MakeSocketPartition(a, col_end - col_begin, active_sockets);
      for (int s = 0; s < sockets; ++s) {
        part.col_blocks[s] = s < active_sockets
                                 ? cols.col_blocks[s]
                                 : std::pair<size_t, size_t>{0, 0};
        part.col_blocks[s].first += col_begin;
        part.col_blocks[s].second += col_begin;
      }
    }
    WorkerLayout layout;
    layout.per_socket = (threads + active_sockets - 1) / active_sockets;

    // Per-socket thread allocations (identical when threads % sockets == 0).
    std::vector<std::vector<sched::Workload>> per_socket_workloads(sockets);
    for (int s = 0; s < active_sockets; ++s) {
      const int ws = layout.ThreadsOnSocket(s, threads, active_sockets);
      if (ws <= 0) continue;
      alloc_opts.num_threads = ws;
      per_socket_workloads[s] = sched::Allocate(a, options.allocator, alloc_opts);
    }

    pool->RunOnAll([&](size_t worker) {
      if (worker >= static_cast<size_t>(threads)) return;
      const int w = static_cast<int>(worker);
      const int s = layout.SocketOf(w, active_sockets);
      const int wi = layout.LocalIndex(w, s);
      if (wi >= static_cast<int>(per_socket_workloads[s].size())) return;
      const sched::Workload& workload = per_socket_workloads[s][wi];
      const auto [col_begin, col_end] = part.col_blocks[s];

      memsim::WorkerCtx ctx;
      ctx.worker = w;
      ctx.cpu_socket = s;
      // NaDP's point: each socket's thread group contends only for its own
      // socket's devices (local dense block, local intermediates), so the
      // per-device concurrency is the socket group, not the whole pool. The
      // Interleaved baseline spreads every thread across all devices and is
      // charged at full-pool contention.
      ctx.active_threads = layout.ThreadsOnSocket(s, threads, active_sockets);
      ctx.clock = &clocks.clock(worker);

      const sparse::DenseCacheView* cache = nullptr;
      if (options.use_wofp) {
        prefetch::WofpOptions wofp = options.wofp;
        // Pin each worker's cache on its own socket, keeping the tier.
        wofp.cache_placement.socket = s;
        const double before = ctx.clock->seconds();
        caches[worker] =
            prefetch::WofpPrefetcher::Build(a, workload, in_degrees, wofp, ms, &ctx);
        wofp_build[worker] = ctx.clock->seconds() - before;
        cache = caches[worker].get();
      }

      uint64_t rows_processed = 0;
      for (int block = 0; block < sockets; ++block) {
        const sched::Workload sub = IntersectWorkload(workload, part.row_blocks[block]);
        if (sub.ranges.empty()) continue;
        sparse::SpmmPlacements pl;
        pl.index = {memsim::Tier::kDram, s};          // CSDB metadata: tiny, local
        pl.sparse = {options.sparse_tier, block};     // sequential, local or remote
        pl.dense = {options.dense_tier, s};           // socket-local dense block
        pl.result = {options.result_tier, s};         // local intermediate writes
        breakdowns[worker] += sparse::ExecuteWorkloadCsdb(a, b, c, sub, pl, ms, &ctx,
                                                          cache, col_begin, col_end);
        for (const sched::RowRange& range : sub.ranges) rows_processed += range.size();
      }

      // Merge: copy the local intermediate into the assembled result. Reads
      // are local; the destination is page-interleaved, so a fraction of the
      // writes is remote — the "few remote accesses" of Fig. 10 step 4.
      const uint64_t merge_bytes =
          rows_processed * (col_end - col_begin) * sizeof(float);
      if (merge_bytes > 0) {
        ms->ChargeAccess(&ctx, {options.result_tier, s}, memsim::MemOp::kRead,
                         memsim::Pattern::kSequential, merge_bytes, 1);
        ms->ChargeAccess(&ctx,
                         {options.result_tier, memsim::Placement::kInterleaved},
                         memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                         merge_bytes, 1);
      }
    });
  }

  for (int t = 0; t < threads; ++t) {
    result.thread_seconds[t] = clocks.clock(t).seconds();
    result.breakdown += breakdowns[t];
    result.wofp_build_seconds = std::max(result.wofp_build_seconds, wofp_build[t]);
  }
  result.phase_seconds = clocks.MaxSeconds();
  return result;
}

}  // namespace omega::numa
