// Dense matrix products used by the tSVD pipeline. These operate on small or
// skinny matrices (n x k with k <= ~160), so straightforward loops with
// double accumulation suffice.

#pragma once

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// C = A * B.
Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c);

/// C = A^T * B (A is n x k, B is n x m, C is k x m); accumulates in double.
Status GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c);

/// C = A * B^T.
Status GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c);

}  // namespace omega::linalg
