// Dense matrix products used by the tSVD pipeline. The matrices are tall and
// skinny (n x k with k <= ~160), so the kernels are register/cache-blocked
// over row tiles and column panels and optionally parallelized over output
// columns on the ThreadPool.
//
// Determinism contract: for every output element the reduction over the
// inner dimension runs in a fixed ascending order, independent of tile
// boundaries and thread count. Results are therefore bit-identical whether a
// kernel runs serially, on 1 worker, or on 36 — a property the embedding
// pipeline's reproducibility tests rely on.
//
// All three kernels detect output aliasing (c == &a or c == &b) and compute
// through a temporary, so in-place calls like Gemm(a, b, &a) are safe.

#pragma once

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// C = A * B. Blocked; parallel over column panels when `pool` is given.
Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
            ThreadPool* pool = nullptr);

/// C = A^T * B (A is n x k, B is n x m, C is k x m); accumulates in double.
Status GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                  ThreadPool* pool = nullptr);

/// C = A * B^T.
Status GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                  ThreadPool* pool = nullptr);

/// Reference single-threaded scalar triple loop (the pre-blocking kernel).
/// Kept as the correctness oracle for tests and the baseline the micro
/// benchmarks compare the blocked kernels against. Aliasing-safe.
Status GemmNaive(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c);

}  // namespace omega::linalg
