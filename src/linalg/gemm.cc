#include "linalg/gemm.h"

namespace omega::linalg {

Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  if (a.cols() != b.rows()) return Status::InvalidArgument("Gemm: inner dim mismatch");
  *c = DenseMatrix(a.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    const float* bj = b.ColData(j);
    float* cj = c->ColData(j);
    for (size_t k = 0; k < a.cols(); ++k) {
      const float bkj = bj[k];
      if (bkj == 0.0f) continue;
      const float* ak = a.ColData(k);
      for (size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
  return Status::OK();
}

Status GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("GemmTransA: row dim mismatch");
  }
  *c = DenseMatrix(a.cols(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    const float* bj = b.ColData(j);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float* ai = a.ColData(i);
      double acc = 0.0;
      for (size_t r = 0; r < a.rows(); ++r) acc += static_cast<double>(ai[r]) * bj[r];
      c->At(i, j) = static_cast<float>(acc);
    }
  }
  return Status::OK();
}

Status GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("GemmTransB: col dim mismatch");
  }
  *c = DenseMatrix(a.rows(), b.rows());
  for (size_t k = 0; k < a.cols(); ++k) {
    const float* ak = a.ColData(k);
    const float* bk = b.ColData(k);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float bjk = bk[j];
      if (bjk == 0.0f) continue;
      float* cj = c->ColData(j);
      for (size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bjk;
    }
  }
  return Status::OK();
}

}  // namespace omega::linalg
