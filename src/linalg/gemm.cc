#include "linalg/gemm.h"

#include <algorithm>
#include <vector>

namespace omega::linalg {

namespace {

// Row tile held in registers/L1 while the k reduction runs. 64 floats is one
// tile = 4 cache lines, small enough that acc[] stays in vector registers.
constexpr size_t kRowTile = 64;
// k-panel width: one (kRowTile x kKBlock) A block is 32 KiB, L1-resident
// across every column of the panel it is reused for.
constexpr size_t kKBlock = 128;
// Output columns per parallel task. Dense columns are uniform work, so the
// static ParallelFor split is balanced by construction.
constexpr size_t kMinColsPerTask = 2;

bool ShouldParallelize(ThreadPool* pool, size_t cols, size_t work_per_col) {
  // A dispatch costs ~a few microseconds of rendezvous; only fan out when
  // every worker gets meaningful work.
  return pool != nullptr && pool->size() > 1 &&
         cols >= kMinColsPerTask * 2 && cols * work_per_col >= (1u << 16);
}

// Register micro-tile: kMicroRows floats of kMicroCols output columns live in
// vector registers while a k-panel streams past. acc[4][16] is 8 AVX2
// registers; with the A stripe and 4 B broadcasts the kernel fits in 16 ymm.
constexpr size_t kMicroRows = 16;
constexpr size_t kMicroCols = 4;

// One column stripe C[i:i+ib, j] += A[i:i+ib, k0:k0+kb) * B[k0:k0+kb, j].
// Generic path for row/column tails; same ascending-k per-element order as
// the micro-kernel, so tile boundaries never show up in the output bits.
void GemmColumnStripe(const DenseMatrix& a, const DenseMatrix& b,
                      DenseMatrix* c, size_t j, size_t k0, size_t kb, size_t i,
                      size_t ib) {
  float acc[kRowTile];
  float* cj = c->ColData(j) + i;
  const float* bj = b.ColData(j) + k0;
  for (size_t ii = 0; ii < ib; ++ii) acc[ii] = cj[ii];
  for (size_t k = 0; k < kb; ++k) {
    const float bkj = bj[k];
    const float* ak = a.ColData(k0 + k) + i;
    for (size_t ii = 0; ii < ib; ++ii) acc[ii] += ak[ii] * bkj;
  }
  for (size_t ii = 0; ii < ib; ++ii) cj[ii] = acc[ii];
}

// C[:, j_begin:j_end) += A * B[:, j_begin:j_end) with C pre-zeroed.
// Blocked i -> k -> j so one A block is reused across the whole column
// panel; inside a block, full 16x4 tiles run the register micro-kernel and
// ragged edges fall back to the column stripe. The reduction order for every
// c[i][j] is ascending k regardless of blocking, which keeps results
// bit-identical to the scalar triple loop.
void GemmPanel(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
               size_t j_begin, size_t j_end) {
  const size_t n = a.rows();
  const size_t kk_total = a.cols();
  for (size_t i0 = 0; i0 < n; i0 += kRowTile) {
    const size_t ib = std::min(kRowTile, n - i0);
    for (size_t k0 = 0; k0 < kk_total; k0 += kKBlock) {
      const size_t kb = std::min(kKBlock, kk_total - k0);
      size_t j = j_begin;
      for (; j + kMicroCols <= j_end; j += kMicroCols) {
        size_t ii = 0;
        for (; ii + kMicroRows <= ib; ii += kMicroRows) {
          const size_t i = i0 + ii;
          float acc[kMicroCols][kMicroRows];
          const float* bcol[kMicroCols];
          for (size_t jj = 0; jj < kMicroCols; ++jj) {
            const float* cj = c->ColData(j + jj) + i;
            for (size_t r = 0; r < kMicroRows; ++r) acc[jj][r] = cj[r];
            bcol[jj] = b.ColData(j + jj) + k0;
          }
          for (size_t k = 0; k < kb; ++k) {
            const float* ak = a.ColData(k0 + k) + i;
            for (size_t jj = 0; jj < kMicroCols; ++jj) {
              const float bjk = bcol[jj][k];
              for (size_t r = 0; r < kMicroRows; ++r) {
                acc[jj][r] += ak[r] * bjk;
              }
            }
          }
          for (size_t jj = 0; jj < kMicroCols; ++jj) {
            float* cj = c->ColData(j + jj) + i;
            for (size_t r = 0; r < kMicroRows; ++r) cj[r] = acc[jj][r];
          }
        }
        if (ii < ib) {
          for (size_t jj = 0; jj < kMicroCols; ++jj) {
            GemmColumnStripe(a, b, c, j + jj, k0, kb, i0 + ii, ib - ii);
          }
        }
      }
      for (; j < j_end; ++j) GemmColumnStripe(a, b, c, j, k0, kb, i0, ib);
    }
  }
}

// C[:, j_begin:j_end) of C = A^T * B; per-element double dot over A rows.
void GemmTransAPanel(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                     size_t j_begin, size_t j_end) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  for (size_t j = j_begin; j < j_end; ++j) {
    const float* bj = b.ColData(j);
    // 4 output rows at a time so one streamed pass of bj feeds 4 dots.
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a.ColData(i);
      const float* a1 = a.ColData(i + 1);
      const float* a2 = a.ColData(i + 2);
      const float* a3 = a.ColData(i + 3);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t r = 0; r < n; ++r) {
        const double br = bj[r];
        s0 += static_cast<double>(a0[r]) * br;
        s1 += static_cast<double>(a1[r]) * br;
        s2 += static_cast<double>(a2[r]) * br;
        s3 += static_cast<double>(a3[r]) * br;
      }
      c->At(i, j) = static_cast<float>(s0);
      c->At(i + 1, j) = static_cast<float>(s1);
      c->At(i + 2, j) = static_cast<float>(s2);
      c->At(i + 3, j) = static_cast<float>(s3);
    }
    for (; i < m; ++i) {
      const float* ai = a.ColData(i);
      double acc = 0.0;
      for (size_t r = 0; r < n; ++r) acc += static_cast<double>(ai[r]) * bj[r];
      c->At(i, j) = static_cast<float>(acc);
    }
  }
}

// C[:, j_begin:j_end) of C = A * B^T. Row j of B is packed contiguous once
// per output column, then the column follows the Gemm row-tile kernel.
void GemmTransBPanel(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                     size_t j_begin, size_t j_end) {
  const size_t n = a.rows();
  const size_t kk_total = a.cols();
  std::vector<float> brow(kk_total);
  float acc[kRowTile];
  for (size_t j = j_begin; j < j_end; ++j) {
    for (size_t k = 0; k < kk_total; ++k) brow[k] = b.At(j, k);
    float* cj = c->ColData(j);
    for (size_t i0 = 0; i0 < n; i0 += kRowTile) {
      const size_t ib = std::min(kRowTile, n - i0);
      for (size_t ii = 0; ii < ib; ++ii) acc[ii] = 0.0f;
      for (size_t k = 0; k < kk_total; ++k) {
        const float bjk = brow[k];
        const float* ak = a.ColData(k) + i0;
        for (size_t ii = 0; ii < ib; ++ii) acc[ii] += ak[ii] * bjk;
      }
      for (size_t ii = 0; ii < ib; ++ii) cj[i0 + ii] = acc[ii];
    }
  }
}

using PanelFn = void (*)(const DenseMatrix&, const DenseMatrix&, DenseMatrix*,
                         size_t, size_t);

// Shared driver: aliasing detection, output allocation, panel fan-out.
Status RunBlocked(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                  ThreadPool* pool, size_t out_rows, size_t out_cols,
                  size_t work_per_col, PanelFn panel) {
  // `*c = DenseMatrix(...)` would destroy an aliased input before it is
  // read; compute into a temporary and move it over the output instead.
  const bool aliased = (c == &a) || (c == &b);
  DenseMatrix tmp;
  DenseMatrix* out = aliased ? &tmp : c;
  *out = DenseMatrix(out_rows, out_cols);
  if (ShouldParallelize(pool, out_cols, work_per_col)) {
    pool->ParallelFor(out_cols, [&](size_t, size_t begin, size_t end) {
      panel(a, b, out, begin, end);
    });
  } else {
    panel(a, b, out, 0, out_cols);
  }
  if (aliased) *c = std::move(tmp);
  return Status::OK();
}

}  // namespace

Status Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
            ThreadPool* pool) {
  if (a.cols() != b.rows()) return Status::InvalidArgument("Gemm: inner dim mismatch");
  return RunBlocked(a, b, c, pool, a.rows(), b.cols(), a.rows() * a.cols(),
                    &GemmPanel);
}

Status GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                  ThreadPool* pool) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("GemmTransA: row dim mismatch");
  }
  return RunBlocked(a, b, c, pool, a.cols(), b.cols(), a.rows() * a.cols(),
                    &GemmTransAPanel);
}

Status GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                  ThreadPool* pool) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("GemmTransB: col dim mismatch");
  }
  return RunBlocked(a, b, c, pool, a.rows(), b.rows(), a.rows() * a.cols(),
                    &GemmTransBPanel);
}

Status GemmNaive(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("GemmNaive: inner dim mismatch");
  }
  const bool aliased = (c == &a) || (c == &b);
  DenseMatrix tmp;
  DenseMatrix* out = aliased ? &tmp : c;
  *out = DenseMatrix(a.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    const float* bj = b.ColData(j);
    float* cj = out->ColData(j);
    for (size_t k = 0; k < a.cols(); ++k) {
      const float bkj = bj[k];
      const float* ak = a.ColData(k);
      for (size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
  if (aliased) *c = std::move(tmp);
  return Status::OK();
}

}  // namespace omega::linalg
