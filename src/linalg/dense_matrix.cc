#include "linalg/dense_matrix.h"

#include <cmath>
#include <limits>

namespace omega::linalg {

Status DenseMatrix::AddScaled(const DenseMatrix& other, float alpha) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    return Status::InvalidArgument("AddScaled shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
  return Status::OK();
}

void DenseMatrix::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

DenseMatrix DenseMatrix::SliceCols(size_t col_begin, size_t col_end) const {
  DenseMatrix out(rows_, col_end - col_begin);
  for (size_t c = col_begin; c < col_end; ++c) {
    const float* src = ColData(c);
    float* dst = out.ColData(c - col_begin);
    for (size_t r = 0; r < rows_; ++r) dst[r] = src[r];
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t c = 0; c < cols_; ++c) {
    for (size_t r = 0; r < rows_; ++r) out.At(c, r) = At(r, c);
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double mx = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return mx;
}

}  // namespace omega::linalg
