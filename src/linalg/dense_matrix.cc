#include "linalg/dense_matrix.h"

#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace omega::linalg {

namespace {

// Elementwise kernels are worth a parallel dispatch only past ~L2-sized
// blocks; below that the RunOnAll rendezvous costs more than the loop.
constexpr size_t kParallelElementThreshold = 1 << 15;

}  // namespace

Status DenseMatrix::AddScaled(const DenseMatrix& other, float alpha,
                              ThreadPool* pool) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    return Status::InvalidArgument("AddScaled shape mismatch");
  }
  const float* src = other.data_.data();
  float* dst = data_.data();
  if (pool != nullptr && pool->size() > 1 &&
      data_.size() >= kParallelElementThreshold) {
    pool->ParallelFor(data_.size(), [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) dst[i] += alpha * src[i];
    });
  } else {
    for (size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
  }
  return Status::OK();
}

void DenseMatrix::Scale(float alpha, ThreadPool* pool) {
  float* dst = data_.data();
  if (pool != nullptr && pool->size() > 1 &&
      data_.size() >= kParallelElementThreshold) {
    pool->ParallelFor(data_.size(), [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) dst[i] *= alpha;
    });
  } else {
    for (float& v : data_) v *= alpha;
  }
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

DenseMatrix DenseMatrix::SliceCols(size_t col_begin, size_t col_end) const {
  DenseMatrix out(rows_, col_end - col_begin);
  for (size_t c = col_begin; c < col_end; ++c) {
    const float* src = ColData(c);
    float* dst = out.ColData(c - col_begin);
    for (size_t r = 0; r < rows_; ++r) dst[r] = src[r];
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t c = 0; c < cols_; ++c) {
    for (size_t r = 0; r < rows_; ++r) out.At(c, r) = At(r, c);
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double mx = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return mx;
}

}  // namespace omega::linalg
