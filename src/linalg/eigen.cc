#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace omega::linalg {

Result<EigenResult> SymmetricEigen(const DenseMatrix& a, double tol, int max_sweeps) {
  const size_t k = a.rows();
  if (a.cols() != k) return Status::InvalidArgument("SymmetricEigen: not square");
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (std::abs(a.At(i, j) - a.At(j, i)) > 1e-3 * (1.0 + std::abs(a.At(i, j)))) {
        return Status::InvalidArgument("SymmetricEigen: matrix is not symmetric");
      }
    }
  }

  std::vector<double> m(k * k);
  for (size_t c = 0; c < k; ++c)
    for (size_t r = 0; r < k; ++r) m[c * k + r] = 0.5 * (a.At(r, c) + a.At(c, r));

  std::vector<double> v(k * k, 0.0);
  for (size_t i = 0; i < k; ++i) v[i * k + i] = 1.0;

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (size_t c = 0; c < k; ++c)
      for (size_t r = 0; r < k; ++r)
        if (r != c) s += m[c * k + r] * m[c * k + r];
    return std::sqrt(s);
  };

  const double scale = std::max(1.0, off_diag_norm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= tol * scale) break;
    for (size_t p = 0; p + 1 < k; ++p) {
      for (size_t q = p + 1; q < k; ++q) {
        const double apq = m[q * k + p];
        if (std::abs(apq) < 1e-300) continue;
        const double app = m[p * k + p];
        const double aqq = m[q * k + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of m.
        for (size_t i = 0; i < k; ++i) {
          const double mip = m[p * k + i];
          const double miq = m[q * k + i];
          m[p * k + i] = c * mip - s * miq;
          m[q * k + i] = s * mip + c * miq;
        }
        for (size_t i = 0; i < k; ++i) {
          const double mpi = m[i * k + p];
          const double mqi = m[i * k + q];
          m[i * k + p] = c * mpi - s * mqi;
          m[i * k + q] = s * mpi + c * mqi;
        }
        // Accumulate eigenvectors.
        for (size_t i = 0; i < k; ++i) {
          const double vip = v[p * k + i];
          const double viq = v[q * k + i];
          v[p * k + i] = c * vip - s * viq;
          v[q * k + i] = s * vip + c * viq;
        }
      }
    }
  }

  // Sort by non-increasing eigenvalue.
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return m[x * k + x] > m[y * k + y]; });

  EigenResult result;
  result.eigenvalues.resize(k);
  result.eigenvectors = DenseMatrix(k, k);
  for (size_t c = 0; c < k; ++c) {
    const size_t src = order[c];
    result.eigenvalues[c] = m[src * k + src];
    for (size_t r = 0; r < k; ++r) {
      result.eigenvectors.At(r, c) = static_cast<float>(v[src * k + r]);
    }
  }
  return result;
}

}  // namespace omega::linalg
