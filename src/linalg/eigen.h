// Symmetric eigendecomposition of small matrices via the cyclic Jacobi
// method — the inner solver of the randomized truncated SVD.

#pragma once

#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// Eigendecomposition of a symmetric k x k matrix: A = V diag(w) V^T.
struct EigenResult {
  std::vector<double> eigenvalues;  ///< sorted non-increasing
  DenseMatrix eigenvectors;         ///< k x k; column i pairs eigenvalues[i]
};

/// Cyclic Jacobi. `a` must be symmetric; tolerance is on off-diagonal mass.
Result<EigenResult> SymmetricEigen(const DenseMatrix& a, double tol = 1e-12,
                                   int max_sweeps = 64);

}  // namespace omega::linalg
