#include "linalg/randomized_svd.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/gemm.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"

namespace omega::linalg {

Result<SvdResult> RandomizedSvd(size_t n, size_t m, const MatMulFn& apply,
                                const MatMulFn& apply_t,
                                const RandomizedSvdOptions& options) {
  const size_t l = options.rank + options.oversample;
  ThreadPool* pool = options.pool;
  if (options.rank == 0) return Status::InvalidArgument("rank must be positive");
  if (l > n || l > m) {
    return Status::InvalidArgument("rank + oversample exceeds matrix dimensions");
  }

  // Stage A: randomized range finder. Y = A * Omega, Omega m x l Gaussian.
  DenseMatrix omega_mat = GaussianMatrix(m, l, options.seed);
  DenseMatrix y(n, l);
  OMEGA_RETURN_NOT_OK(apply(omega_mat, &y));

  DenseMatrix q;
  OMEGA_RETURN_NOT_OK(ReducedQr(y, &q, nullptr, pool));

  // Power iterations with re-orthonormalization: Q <- qr(A * qr(A^T Q)).
  for (int it = 0; it < options.power_iterations; ++it) {
    DenseMatrix z(m, l);
    OMEGA_RETURN_NOT_OK(apply_t(q, &z));
    DenseMatrix qz;
    OMEGA_RETURN_NOT_OK(ReducedQr(z, &qz, nullptr, pool));
    DenseMatrix y2(n, l);
    OMEGA_RETURN_NOT_OK(apply(qz, &y2));
    OMEGA_RETURN_NOT_OK(ReducedQr(y2, &q, nullptr, pool));
  }

  // Stage B: B^T = A^T * Q  (m x l). Then B = Q^T A and
  // B B^T = (B^T)^T (B^T) is l x l symmetric.
  DenseMatrix bt(m, l);
  OMEGA_RETURN_NOT_OK(apply_t(q, &bt));

  DenseMatrix bbt;
  OMEGA_RETURN_NOT_OK(GemmTransA(bt, bt, &bbt, pool));  // (l x l) = bt^T * bt

  OMEGA_ASSIGN_OR_RETURN(EigenResult eig, SymmetricEigen(bbt));

  // Singular values and truncation.
  SvdResult result;
  const size_t k = options.rank;
  result.singular.resize(k);
  for (size_t i = 0; i < k; ++i) {
    result.singular[i] = std::sqrt(std::max(0.0, eig.eigenvalues[i]));
  }

  // U = Q * W_k  (n x k).
  DenseMatrix wk = eig.eigenvectors.SliceCols(0, k);
  OMEGA_RETURN_NOT_OK(Gemm(q, wk, &result.u, pool));

  // V = B^T * W_k * Sigma^{-1}  (m x k).
  DenseMatrix v_unscaled;
  OMEGA_RETURN_NOT_OK(Gemm(bt, wk, &v_unscaled, pool));
  result.v = DenseMatrix(m, k);
  for (size_t c = 0; c < k; ++c) {
    const double s = result.singular[c];
    const float inv = s > 1e-12 ? static_cast<float>(1.0 / s) : 0.0f;
    const float* src = v_unscaled.ColData(c);
    float* dst = result.v.ColData(c);
    for (size_t r = 0; r < m; ++r) dst[r] = src[r] * inv;
  }
  return result;
}

}  // namespace omega::linalg
