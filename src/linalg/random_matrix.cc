#include "linalg/random_matrix.h"

#include "common/rng.h"

namespace omega::linalg {

DenseMatrix GaussianMatrix(size_t rows, size_t cols, uint64_t seed) {
  DenseMatrix m(rows, cols);
  for (size_t c = 0; c < cols; ++c) {
    Rng rng(SplitMix64(seed ^ (0x9e3779b9ULL * (c + 1))));
    float* col = m.ColData(c);
    for (size_t r = 0; r < rows; ++r) col[r] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

DenseMatrix UniformMatrix(size_t rows, size_t cols, uint64_t seed, float lo, float hi) {
  DenseMatrix m(rows, cols);
  for (size_t c = 0; c < cols; ++c) {
    Rng rng(SplitMix64(seed ^ (0x517cc1b7ULL * (c + 1))));
    float* col = m.ColData(c);
    for (size_t r = 0; r < rows; ++r) {
      col[r] = lo + static_cast<float>(rng.NextDouble()) * (hi - lo);
    }
  }
  return m;
}

}  // namespace omega::linalg
