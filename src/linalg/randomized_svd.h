// Randomized truncated SVD (Halko, Martinsson, Tropp; SIAM Review 2011) —
// the t-SVD used by ProNE's sparse matrix factorization step (§II-A).
//
// The operator is supplied as a pair of callbacks (Y = A*X and Y = A^T*X) so
// the caller can plug in any SpMM kernel — including omega's heterogeneous-
// memory-charged kernels — without this module knowing about sparse formats.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// Applies an n x m linear operator to a dense block: out = Op * in.
/// `in` has m rows; `out` must be filled with n rows and in.cols() columns.
using MatMulFn = std::function<Status(const DenseMatrix& in, DenseMatrix* out)>;

struct RandomizedSvdOptions {
  size_t rank = 32;         ///< number of singular triplets to return
  size_t oversample = 8;    ///< extra random directions for accuracy
  int power_iterations = 1; ///< subspace iterations (improves spectral decay)
  uint64_t seed = 7;

  /// Optional worker pool for the dense stages (QR, GEMM). Host-side
  /// parallelism only: results are bit-identical with or without it (the
  /// dense kernels reduce in fixed order; see gemm.h).
  ThreadPool* pool = nullptr;
};

struct SvdResult {
  DenseMatrix u;                 ///< n x rank, orthonormal columns
  std::vector<double> singular;  ///< rank values, non-increasing
  DenseMatrix v;                 ///< m x rank, orthonormal columns
};

/// Computes the truncated SVD of an n x m operator given by `apply` (A*X) and
/// `apply_t` (A^T*X).
Result<SvdResult> RandomizedSvd(size_t n, size_t m, const MatMulFn& apply,
                                const MatMulFn& apply_t,
                                const RandomizedSvdOptions& options);

}  // namespace omega::linalg
