// Reduced (thin) QR factorization of tall-skinny matrices via Householder
// reflections — the orthonormalization step of the randomized range finder.
//
// The Householder elimination is inherently sequential in the column being
// reduced, but applying each reflector to the trailing columns — and forming
// the k columns of Q — is embarrassingly parallel per column. With a pool
// those loops fan out; every column's arithmetic stays a fixed sequential
// chain, so the factorization is bit-identical at any thread count.

#pragma once

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// Computes A = Q * R with Q (n x k) having orthonormal columns and R (k x k)
/// upper triangular. Requires n >= k. `r` may be nullptr if not needed.
Status ReducedQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r,
                 ThreadPool* pool = nullptr);

}  // namespace omega::linalg
