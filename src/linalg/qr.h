// Reduced (thin) QR factorization of tall-skinny matrices via Householder
// reflections — the orthonormalization step of the randomized range finder.

#pragma once

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// Computes A = Q * R with Q (n x k) having orthonormal columns and R (k x k)
/// upper triangular. Requires n >= k. `r` may be nullptr if not needed.
Status ReducedQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r);

}  // namespace omega::linalg
