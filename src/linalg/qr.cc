#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace omega::linalg {

namespace {

// Per-column work below this many scalar ops is not worth a pool dispatch.
constexpr size_t kParallelWorkThreshold = 1 << 15;

}  // namespace

Status ReducedQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r,
                 ThreadPool* pool) {
  const size_t n = a.rows();
  const size_t k = a.cols();
  if (n < k) return Status::InvalidArgument("ReducedQr requires rows >= cols");
  if (k == 0) return Status::InvalidArgument("ReducedQr on empty matrix");

  const bool parallel = pool != nullptr && pool->size() > 1 && k >= 2 &&
                        n * k >= kParallelWorkThreshold;

  // Work in double for numerical robustness on float inputs.
  std::vector<double> work(n * k);
  for (size_t c = 0; c < k; ++c) {
    const float* col = a.ColData(c);
    for (size_t i = 0; i < n; ++i) work[c * n + i] = col[i];
  }

  // Householder vectors stored below the diagonal of `work`; betas separate.
  std::vector<double> betas(k, 0.0);
  std::vector<double> rmat(k * k, 0.0);

  for (size_t j = 0; j < k; ++j) {
    double* colj = work.data() + j * n;
    double norm = 0.0;
    for (size_t i = j; i < n; ++i) norm += colj[i] * colj[i];
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      // Rank-deficient column: leave the zero reflector; R gets a zero.
      rmat[j * k + j] = 0.0;
      continue;
    }
    const double alpha = colj[j] >= 0 ? -norm : norm;
    const double v0 = colj[j] - alpha;
    colj[j] = v0;
    double vnorm2 = 0.0;
    for (size_t i = j; i < n; ++i) vnorm2 += colj[i] * colj[i];
    betas[j] = vnorm2 > 0.0 ? 2.0 / vnorm2 : 0.0;
    rmat[j * k + j] = alpha;

    // Apply the reflector to the remaining columns; each trailing column is
    // an independent dot + axpy, so the loop fans out across the pool.
    auto apply_to = [&](size_t c) {
      double* colc = work.data() + c * n;
      double dot = 0.0;
      for (size_t i = j; i < n; ++i) dot += colj[i] * colc[i];
      const double scale = betas[j] * dot;
      for (size_t i = j; i < n; ++i) colc[i] -= scale * colj[i];
      rmat[c * k + j] = colc[j];
    };
    const size_t trailing = k - j - 1;
    if (parallel && trailing >= 2) {
      pool->ParallelFor(trailing, [&](size_t, size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t) apply_to(j + 1 + t);
      });
    } else {
      for (size_t c = j + 1; c < k; ++c) apply_to(c);
    }
  }
  // Upper part of R above diagonal was collected during elimination; collect
  // the remaining entries (columns already reduced).
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < c; ++i) rmat[c * k + i] = work[c * n + i];
  }

  // Form Q by applying reflectors to the first k columns of the identity.
  // Columns are independent; each parallel worker gets its own unit-vector
  // scratch buffer.
  *q = DenseMatrix(n, k);
  auto form_column = [&](size_t c, std::vector<double>& e) {
    std::fill(e.begin(), e.end(), 0.0);
    e[c] = 1.0;
    for (size_t j = k; j-- > 0;) {
      if (betas[j] == 0.0) continue;
      const double* vj = work.data() + j * n;
      double dot = 0.0;
      for (size_t i = j; i < n; ++i) dot += vj[i] * e[i];
      const double scale = betas[j] * dot;
      for (size_t i = j; i < n; ++i) e[i] -= scale * vj[i];
    }
    float* qc = q->ColData(c);
    for (size_t i = 0; i < n; ++i) qc[i] = static_cast<float>(e[i]);
  };
  if (parallel) {
    pool->ParallelFor(k, [&](size_t, size_t begin, size_t end) {
      std::vector<double> e(n);
      for (size_t c = begin; c < end; ++c) form_column(c, e);
    });
  } else {
    std::vector<double> e(n);
    for (size_t c = 0; c < k; ++c) form_column(c, e);
  }

  if (r != nullptr) {
    *r = DenseMatrix(k, k);
    for (size_t c = 0; c < k; ++c) {
      for (size_t i = 0; i <= c; ++i) r->At(i, c) = static_cast<float>(rmat[c * k + i]);
    }
  }
  return Status::OK();
}

}  // namespace omega::linalg
