// Deterministic random test/projection matrices.

#pragma once

#include <cstdint>

#include "linalg/dense_matrix.h"

namespace omega::linalg {

/// i.i.d. standard-normal entries; each column is seeded independently so the
/// result is identical regardless of generation order or thread count.
DenseMatrix GaussianMatrix(size_t rows, size_t cols, uint64_t seed);

/// Uniform [lo, hi) entries, same per-column seeding scheme.
DenseMatrix UniformMatrix(size_t rows, size_t cols, uint64_t seed, float lo = 0.0f,
                          float hi = 1.0f);

}  // namespace omega::linalg
