// Column-major dense matrix.
//
// Column-major is load-bearing for the reproduction: the paper's SpMM
// (Algorithm 1) iterates "for column t in B", relying on the dense operand
// and the result matrix being stored column-major so result writes are
// sequential (§III-B, operation 5).
//
// Storage is 64-byte aligned (one cache line, the widest vector register on
// current x86) so the blocked GEMM kernels and the compiler's autovectorizer
// never pay split-line penalties on column starts.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/status.h"

namespace omega {
class ThreadPool;
}  // namespace omega

namespace omega::linalg {

/// Minimal allocator putting every allocation on an `Alignment`-byte
/// boundary; lets DenseMatrix keep the std::vector API.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

inline constexpr size_t kDenseAlignment = 64;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    data_.assign(rows * cols, 0.0f);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  size_t bytes() const { return data_.size() * sizeof(float); }

  float& At(size_t r, size_t c) { return data_[c * rows_ + r]; }
  float At(size_t r, size_t c) const { return data_[c * rows_ + r]; }

  float* ColData(size_t c) { return data_.data() + c * rows_; }
  const float* ColData(size_t c) const { return data_.data() + c * rows_; }

  /// Element distance between consecutive columns — the panel kernels index a
  /// multi-column panel as ColData(t0)[c + j * col_stride()].
  size_t col_stride() const { return rows_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { data_.assign(data_.size(), v); }

  /// this += alpha * other (same shape required). With a pool the flat range
  /// is split across workers; per-element arithmetic is unchanged, so the
  /// result is bit-identical at any thread count.
  Status AddScaled(const DenseMatrix& other, float alpha,
                   ThreadPool* pool = nullptr);

  /// this *= alpha.
  void Scale(float alpha, ThreadPool* pool = nullptr);

  double FrobeniusNorm() const;

  /// Sub-view copy of columns [col_begin, col_end).
  DenseMatrix SliceCols(size_t col_begin, size_t col_end) const;

  /// Returns the transpose (cols x rows).
  DenseMatrix Transposed() const;

  /// Max |a_ij - b_ij|; returns infinity on shape mismatch.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float, AlignedAllocator<float, kDenseAlignment>> data_;
};

}  // namespace omega::linalg
