#include "serve/hot_cache.h"

#include <algorithm>
#include <utility>

namespace omega::serve {

namespace {

buffer::BufferManager::Options ManagerOptions(const HotCacheOptions& options) {
  buffer::BufferManager::Options mo;
  mo.capacity_bytes = options.capacity_bytes;
  mo.policy = buffer::EvictionPolicy::kHotPinned;
  return mo;
}

}  // namespace

HotCache::Stats HotCache::Stats::operator-(const Stats& other) const {
  Stats d = *this;
  d.hits -= other.hits;
  d.misses -= other.misses;
  d.evictions -= other.evictions;
  d.bypassed -= other.bypassed;
  d.degraded_fetches -= other.degraded_fetches;
  d.refreshed_hot -= other.refreshed_hot;
  d.refresh_invalidated -= other.refresh_invalidated;
  return d;
}

HotCache::HotCache(memsim::MemorySystem* ms, size_t vec_bytes,
                   uint32_t universe, HotCacheOptions options)
    : ms_(ms),
      vec_bytes_(vec_bytes),
      universe_(universe),
      options_(std::move(options)),
      manager_(ms, ManagerOptions(options_)),
      hot_set_(prefetch::TopMStore::Build({}, 0, universe)) {}

void HotCache::WarmHotSet(memsim::WorkerCtx* ctx,
                          std::vector<prefetch::ScoredKey> popularity) {
  const size_t hot_budget = static_cast<size_t>(
      static_cast<double>(options_.capacity_bytes) * options_.hot_fraction);
  const size_t m = vec_bytes_ > 0 ? hot_budget / vec_bytes_ : 0;
  hot_set_ = prefetch::TopMStore::Build(std::move(popularity), m, universe_);

  size_t pinned = 0;
  for (const prefetch::ScoredKey& e : hot_set_.entries()) {
    const buffer::PageKey key{memsim::Tier::kDram, options_.socket, e.key};
    auto handle = manager_.Pin(key, vec_bytes_);
    if (!handle.ok()) break;  // DRAM budget exhausted mid-warm
    manager_.MarkHot(key);
    handle.value().Release();  // hot frames stay resident unpinned
    ++pinned;
  }
  if (pinned > 0 && ctx != nullptr) {
    // One bulk staging pass: stream the hot vectors off the cold tier and
    // write them into their DRAM frames.
    ms_->ChargeAccess(ctx, options_.cold_home, memsim::MemOp::kRead,
                      memsim::Pattern::kSequential, pinned * vec_bytes_, 1);
    ms_->ChargeAccess(ctx, {memsim::Tier::kDram, options_.socket},
                      memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                      pinned * vec_bytes_, 1);
  }
}

void HotCache::ChargeColdRead(memsim::WorkerCtx* ctx, size_t count) {
  const Status st = ms_->ChargeAccessWithRetry(
      ctx, options_.cold_home, memsim::MemOp::kRead, memsim::Pattern::kRandom,
      count * vec_bytes_, count, options_.retry);
  if (st.ok()) return;
  // Retries exhausted: the final fault is still un-bucketed — serve the
  // group from the local replica and account it as degraded.
  ms_->faults().CountDegraded();
  degraded_fetches_.fetch_add(count, std::memory_order_relaxed);
  ms_->ChargeAccess(ctx, options_.replica_home, memsim::MemOp::kRead,
                    memsim::Pattern::kRandom, count * vec_bytes_, count);
}

bool HotCache::Admit(uint32_t key) {
  auto handle = manager_.Pin(
      buffer::PageKey{memsim::Tier::kDram, options_.socket, key}, vec_bytes_);
  if (!handle.ok()) {
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  handle.value().Release();  // resident unpinned: LRU-evictable
  return true;
}

void HotCache::FetchKeys(memsim::WorkerCtx* ctx, const uint32_t* keys,
                         size_t n, bool grouped) {
  const memsim::Placement dram{memsim::Tier::kDram, options_.socket};
  if (!grouped) {
    // Per-request path: every key charges its own access run.
    for (size_t i = 0; i < n; ++i) {
      const uint32_t key = keys[i];
      bool hit = hot_set_.Contains(key);
      if (!hit) {
        auto handle = manager_.Lookup(
            buffer::PageKey{memsim::Tier::kDram, options_.socket, key});
        hit = handle.valid();
        handle.Release();
      }
      if (hit) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        ms_->ChargeAccess(ctx, dram, memsim::MemOp::kRead,
                          memsim::Pattern::kRandom, vec_bytes_, 1);
        continue;
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      ChargeColdRead(ctx, 1);
      if (Admit(key)) {
        ms_->ChargeAccess(ctx, dram, memsim::MemOp::kWrite,
                          memsim::Pattern::kRandom, vec_bytes_, 1);
      }
    }
    return;
  }

  // Grouped path: classify the whole batch first, then issue one coalesced
  // charge per class (DRAM hits, cold misses, DRAM fills).
  size_t hit_count = 0;
  std::vector<uint32_t> missed;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t key = keys[i];
    bool hit = hot_set_.Contains(key);
    if (!hit) {
      auto handle = manager_.Lookup(
          buffer::PageKey{memsim::Tier::kDram, options_.socket, key});
      hit = handle.valid();
      handle.Release();
    }
    if (hit) {
      ++hit_count;
    } else {
      missed.push_back(key);
    }
  }
  hits_.fetch_add(hit_count, std::memory_order_relaxed);
  misses_.fetch_add(missed.size(), std::memory_order_relaxed);
  if (hit_count > 0) {
    ms_->ChargeAccess(ctx, dram, memsim::MemOp::kRead, memsim::Pattern::kRandom,
                      hit_count * vec_bytes_, hit_count);
  }
  if (!missed.empty()) {
    ChargeColdRead(ctx, missed.size());
    size_t admitted = 0;
    for (uint32_t key : missed) {
      if (Admit(key)) ++admitted;
    }
    if (admitted > 0) {
      ms_->ChargeAccess(ctx, dram, memsim::MemOp::kWrite,
                        memsim::Pattern::kRandom, admitted * vec_bytes_,
                        admitted);
    }
  }
}

void HotCache::RefreshKeys(memsim::WorkerCtx* ctx, const uint32_t* keys,
                           size_t n) {
  size_t hot_count = 0;
  size_t invalidated = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t key = keys[i];
    if (hot_set_.Contains(key)) {
      ++hot_count;
      continue;
    }
    const buffer::PageKey pk{memsim::Tier::kDram, options_.socket, key};
    auto handle = manager_.Lookup(pk);
    const bool resident = handle.valid();
    handle.Release();
    if (resident && manager_.Evict(pk).ok()) ++invalidated;
  }
  refreshed_hot_.fetch_add(hot_count, std::memory_order_relaxed);
  refresh_invalidated_.fetch_add(invalidated, std::memory_order_relaxed);
  if (hot_count > 0 && ctx != nullptr) {
    // Re-stage the hot vectors in one coalesced pass: stream the fresh rows
    // off the cold tier and rewrite their resident DRAM frames.
    ms_->ChargeAccess(ctx, options_.cold_home, memsim::MemOp::kRead,
                      memsim::Pattern::kRandom, hot_count * vec_bytes_,
                      hot_count);
    ms_->ChargeAccess(ctx, {memsim::Tier::kDram, options_.socket},
                      memsim::MemOp::kWrite, memsim::Pattern::kRandom,
                      hot_count * vec_bytes_, hot_count);
  }
}

HotCache::Stats HotCache::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bypassed = bypassed_.load(std::memory_order_relaxed);
  s.degraded_fetches = degraded_fetches_.load(std::memory_order_relaxed);
  s.refreshed_hot = refreshed_hot_.load(std::memory_order_relaxed);
  s.refresh_invalidated = refresh_invalidated_.load(std::memory_order_relaxed);
  s.evictions = manager_.GetStats().evictions;
  s.hot_keys = hot_set_.size();
  return s;
}

}  // namespace omega::serve
