// Low-latency embedding serving: admission control, micro-batching, and
// batched lookup / top-k scoring against a trained embedding matrix.
//
// The scheduler is a bounded queue drained by worker threads. Submit() is
// non-blocking admission control: a full queue rejects with CapacityExceeded
// instead of queuing unbounded work (callers shed or back off). Workers close
// a batch on size-or-deadline — take up to max_batch requests, waiting at
// most batch_deadline_us past the oldest request's arrival — so per-request
// gathers coalesce into one grouped multi-key fetch through the HotCache and
// one shared scan services every top-k query in the batch. Per-request mode
// (batched = false) is the same pipeline with batch size pinned to 1: it
// pays the full embedding scan and an uncoalesced fetch per query, which is
// exactly the gap bench_serving measures.
//
// Results are bit-identical across worker counts, batch sizes, and the two
// modes: every score is reduced over ascending dimensions with a single
// accumulator (sparse::kernels::ScoreRows, one rounding policy for the SIMD
// and scalar paths), top-k ties break toward the smaller id (common TopK),
// and all data is read from the host matrix — the cache and the simulated
// tiers shape cost and counters, never values.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/topk.h"
#include "linalg/dense_matrix.h"
#include "memsim/sim_clock.h"
#include "omega/exec_context.h"
#include "prefetch/topm_store.h"
#include "serve/hot_cache.h"

namespace omega::serve {

enum class QueryKind { kLookup = 0, kTopK = 1 };

struct Query {
  QueryKind kind = QueryKind::kLookup;
  uint32_t key = 0;  ///< embedding row the query is about
  uint32_t k = 10;   ///< neighbors returned by a kTopK query
};

struct QueryResult {
  QueryKind kind = QueryKind::kLookup;
  uint32_t key = 0;
  std::vector<float> embedding;     ///< kLookup: the key's vector
  std::vector<ScoredId> neighbors;  ///< kTopK: best-first, self excluded
  uint32_t batch_size = 0;          ///< size of the batch that served this
};

struct ServerOptions {
  int worker_threads = 2;
  size_t queue_capacity = 1024;
  /// Batch-close rules: close at max_batch requests, or batch_deadline_us
  /// after the oldest queued request arrived, whichever first.
  size_t max_batch = 32;
  double batch_deadline_us = 200.0;
  /// false = serve one request per batch (the per-request baseline).
  bool batched = true;
  /// Node-block width of the shared top-k scan (keeps the scored embedding
  /// block cache-resident across the batch's queries).
  uint32_t score_block = 512;
  HotCacheOptions cache;
};

class EmbeddingServer {
 public:
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t batches = 0;
    uint64_t refreshes = 0;    ///< RefreshRows calls served
    double sim_seconds = 0.0;  ///< warmup + refreshes + slowest worker's clock
    HotCache::Stats cache;
  };

  /// `embedding` must outlive the server. The context supplies the simulated
  /// machine (and optional trace sink); worker threads are the server's own.
  EmbeddingServer(const linalg::DenseMatrix& embedding, ServerOptions options,
                  const exec::Context& ctx);
  ~EmbeddingServer();

  EmbeddingServer(const EmbeddingServer&) = delete;
  EmbeddingServer& operator=(const EmbeddingServer&) = delete;

  /// Pins the hot set from a popularity ranking (key, score); charges the
  /// warm fill as an aux "serve.warmup" phase. Call before Start().
  void WarmHotSet(std::vector<prefetch::ScoredKey> popularity);

  /// Reserves the embedding on the cold tier and launches the workers.
  Status Start();

  /// Drains the queue (serving any remainder), joins the workers, and
  /// releases the cold-tier reservation. Idempotent; the destructor calls it.
  void Stop();

  /// Non-blocking admission: CapacityExceeded when the queue is full (the
  /// request is not enqueued), InvalidArgument for an out-of-range key.
  /// Submitting before Start() queues work the workers pick up at Start().
  Result<std::future<QueryResult>> Submit(const Query& query);

  /// Embedding-refresh hook for the dynamic-graph path: quiesces the serving
  /// workers (exclusive vs every in-flight ServeBatch), runs `apply` — the
  /// caller's callback that swaps the refreshed rows into the backing
  /// embedding matrix — then reconciles the hot cache for `keys`
  /// (HotCache::RefreshKeys: hot rows re-staged and still pinned,
  /// LRU-resident rows invalidated). Safe to call while serving; queued
  /// requests observe the refreshed rows. Charged as a "serve.refresh" phase.
  void RefreshRows(const std::vector<uint32_t>& keys,
                   const std::function<void()>& apply = nullptr);

  Stats GetStats() const;
  const ServerOptions& options() const { return options_; }
  const exec::Context& context() const { return ctx_; }
  HotCache* cache() { return cache_.get(); }

 private:
  struct Pending {
    Query query;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point arrival;
  };

  void WorkerLoop(int worker);
  void ServeBatch(memsim::WorkerCtx* ctx, std::vector<Pending>* batch);
  /// Serves anything still queued on the calling thread (Stop without Start).
  void DrainInline();

  const linalg::DenseMatrix& embedding_;
  ServerOptions options_;
  exec::Context ctx_;
  std::unique_ptr<HotCache> cache_;
  memsim::ClockGroup clocks_;
  memsim::SimClock warm_clock_;
  memsim::SimClock refresh_clock_;

  /// Readers: ServeBatch (scores against the embedding). Writer: RefreshRows
  /// (mutates the embedding through `apply` and reconciles the cache).
  std::shared_mutex refresh_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> threads_;
  bool running_ = false;
  bool stopping_ = false;
  bool reserved_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> refreshes_{0};
};

}  // namespace omega::serve
