#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "memsim/fault.h"
#include "sparse/spmm_kernels.h"

namespace omega::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration MicrosDuration(double us) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(us));
}

}  // namespace

EmbeddingServer::EmbeddingServer(const linalg::DenseMatrix& embedding,
                                 ServerOptions options,
                                 const exec::Context& ctx)
    : embedding_(embedding),
      options_(std::move(options)),
      ctx_(ctx),
      clocks_(static_cast<size_t>(std::max(1, options_.worker_threads))) {
  OMEGA_CHECK(embedding_.rows() > 0 && embedding_.cols() > 0)
      << "serving needs a non-empty embedding";
  options_.worker_threads = std::max(1, options_.worker_threads);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.score_block = std::max<uint32_t>(1, options_.score_block);
  cache_ = std::make_unique<HotCache>(
      ctx_.ms(), embedding_.cols() * sizeof(float),
      static_cast<uint32_t>(embedding_.rows()), options_.cache);
}

EmbeddingServer::~EmbeddingServer() { Stop(); }

void EmbeddingServer::WarmHotSet(std::vector<prefetch::ScoredKey> popularity) {
  // Warmup is real setup time spent outside the serving loop, so it gets its
  // own non-aux phase rather than folding into serve.load.
  exec::PhaseSpan span(ctx_, "serve.warmup");
  memsim::WorkerCtx wctx;
  wctx.worker = static_cast<int>(memsim::kFaultStreamServe);
  wctx.cpu_socket = options_.cache.socket;
  wctx.active_threads = 1;
  wctx.clock = &warm_clock_;
  const double before = warm_clock_.seconds();
  cache_->WarmHotSet(&wctx, std::move(popularity));
  span.AddSimSeconds(warm_clock_.seconds() - before);
}

Status EmbeddingServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::OK();
  if (!reserved_) {
    OMEGA_RETURN_NOT_OK(
        ctx_.ms()->Reserve(options_.cache.cold_home, embedding_.bytes()));
    reserved_ = true;
  }
  stopping_ = false;
  running_ = true;
  threads_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int w = 0; w < options_.worker_threads; ++w) {
    threads_.emplace_back(&EmbeddingServer::WorkerLoop, this, w);
  }
  return Status::OK();
}

void EmbeddingServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  DrainInline();  // only finds work when Stop() runs without a Start()
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stopping_ = false;
  if (reserved_) {
    ctx_.ms()->Release(options_.cache.cold_home, embedding_.bytes());
    reserved_ = false;
  }
}

Result<std::future<QueryResult>> EmbeddingServer::Submit(const Query& query) {
  if (query.key >= embedding_.rows()) {
    return Status::InvalidArgument("query key out of range");
  }
  std::future<QueryResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::CapacityExceeded("serving queue full");
    }
    Pending pending;
    pending.query = query;
    pending.arrival = Clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return future;
}

void EmbeddingServer::WorkerLoop(int worker) {
  memsim::WorkerCtx wctx;
  // Offsetting the worker id moves these draws into the serving layer's own
  // fault stream namespace (kFaultStreamWorkerBase + worker).
  wctx.worker = static_cast<int>(memsim::kFaultStreamServe) + worker;
  wctx.cpu_socket = options_.cache.socket;
  wctx.active_threads = options_.worker_threads;
  wctx.clock = &clocks_.clock(static_cast<size_t>(worker));
  std::vector<Pending> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      if (options_.batched && options_.max_batch > 1 && !stopping_) {
        // Size-or-deadline batch close: wait for more requests, but never
        // longer than the oldest one's deadline.
        const auto deadline =
            queue_.front().arrival + MicrosDuration(options_.batch_deadline_us);
        while (!stopping_ && !queue_.empty() &&
               queue_.size() < options_.max_batch &&
               cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
        }
      }
      const size_t take = options_.batched
                              ? std::min(options_.max_batch, queue_.size())
                              : std::min<size_t>(1, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) ServeBatch(&wctx, &batch);
  }
}

void EmbeddingServer::DrainInline() {
  memsim::WorkerCtx wctx;
  wctx.worker = static_cast<int>(memsim::kFaultStreamServe);
  wctx.cpu_socket = options_.cache.socket;
  wctx.active_threads = 1;
  wctx.clock = &clocks_.clock(0);
  while (true) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return;
      const size_t take = options_.batched
                              ? std::min(options_.max_batch, queue_.size())
                              : size_t{1};
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ServeBatch(&wctx, &batch);
  }
}

void EmbeddingServer::RefreshRows(const std::vector<uint32_t>& keys,
                                  const std::function<void()>& apply) {
  exec::PhaseSpan span(ctx_, "serve.refresh");
  // Exclusive vs the workers' shared locks in ServeBatch: no batch reads the
  // embedding mid-swap, and every batch admitted afterwards sees the fresh
  // rows and the reconciled cache.
  std::unique_lock<std::shared_mutex> lock(refresh_mu_);
  if (apply) apply();
  memsim::WorkerCtx wctx;
  wctx.worker = static_cast<int>(memsim::kFaultStreamServe);
  wctx.cpu_socket = options_.cache.socket;
  wctx.active_threads = 1;
  wctx.clock = &refresh_clock_;
  const double before = refresh_clock_.seconds();
  cache_->RefreshKeys(&wctx, keys.data(), keys.size());
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  span.AddSimSeconds(refresh_clock_.seconds() - before);
}

void EmbeddingServer::ServeBatch(memsim::WorkerCtx* wctx,
                                 std::vector<Pending>* batch) {
  std::shared_lock<std::shared_mutex> refresh_lock(refresh_mu_);
  const size_t nb = batch->size();
  const size_t d = embedding_.cols();
  const uint32_t n = static_cast<uint32_t>(embedding_.rows());

  // 1. Grouped multi-key fetch: the batch's distinct keys in one coalesced
  // pass through the hot cache (sorted for a deterministic charge order).
  std::vector<uint32_t> keys(nb);
  for (size_t i = 0; i < nb; ++i) keys[i] = (*batch)[i].query.key;
  std::vector<uint32_t> distinct = keys;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  cache_->FetchKeys(wctx, distinct.data(), distinct.size(), options_.batched);

  // 2. Host gather: every request's vector, one contiguous column each.
  linalg::DenseMatrix gathered(d, nb);
  sparse::kernels::GatherRows(embedding_, keys.data(), nb, &gathered);

  // 3. Shared scan: score every node block once per top-k query while the
  // block is cache-resident; per-request mode degenerates to one query.
  std::vector<size_t> topk_members;
  for (size_t i = 0; i < nb; ++i) {
    if ((*batch)[i].query.kind == QueryKind::kTopK) topk_members.push_back(i);
  }
  std::vector<TopK> selectors;
  selectors.reserve(topk_members.size());
  for (size_t i : topk_members) selectors.emplace_back((*batch)[i].query.k);
  if (!topk_members.empty()) {
    std::vector<float> scores(options_.score_block);
    for (uint32_t c0 = 0; c0 < n; c0 += options_.score_block) {
      const uint32_t c1 = std::min(n, c0 + options_.score_block);
      for (size_t t = 0; t < topk_members.size(); ++t) {
        const size_t i = topk_members[t];
        sparse::kernels::ScoreRows(embedding_, gathered.ColData(i), c0, c1,
                                   scores.data());
        TopK& sel = selectors[t];
        const uint32_t self = (*batch)[i].query.key;
        for (uint32_t c = c0; c < c1; ++c) {
          if (c == self) continue;
          sel.Offer(c, scores[c - c0]);
        }
      }
    }
    // One sequential cold-tier scan of the whole embedding, shared by the
    // batch's top-k queries — the per-request baseline pays this per query.
    ctx_.ms()->ChargeAccess(wctx, options_.cache.cold_home,
                            memsim::MemOp::kRead, memsim::Pattern::kSequential,
                            embedding_.bytes(), 1);
    ctx_.ms()->ChargeCompute(wctx, topk_members.size() * size_t{n} * d);
  }

  // 4. Fulfill. Count the batch first: set_value unblocks clients, and a
  // stats snapshot taken after the last client returns must already see it.
  completed_.fetch_add(nb, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  size_t topk_cursor = 0;
  for (size_t i = 0; i < nb; ++i) {
    Pending& p = (*batch)[i];
    QueryResult result;
    result.kind = p.query.kind;
    result.key = p.query.key;
    result.batch_size = static_cast<uint32_t>(nb);
    if (p.query.kind == QueryKind::kLookup) {
      const float* col = gathered.ColData(i);
      result.embedding.assign(col, col + d);
    } else {
      result.neighbors = selectors[topk_cursor++].Take();
    }
    p.promise.set_value(std::move(result));
  }
}

EmbeddingServer::Stats EmbeddingServer::GetStats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.refreshes = refreshes_.load(std::memory_order_relaxed);
  s.sim_seconds =
      warm_clock_.seconds() + refresh_clock_.seconds() + clocks_.MaxSeconds();
  s.cache = cache_->GetStats();
  return s;
}

}  // namespace omega::serve
