// WoFP-style hot/cold embedding-vector cache for the serving layer.
//
// Trained embeddings live on a cold capacity tier (PM, SSD, or a remote
// store); the serving hot path keeps a DRAM budget of per-key vector frames
// in a BufferManager and charges every key fetch against the simulated
// machine. The budget splits WoFP-style (§III-C):
//
//   hot region  — hot_fraction of the budget, filled once by WarmHotSet with
//                 the top-m keys of a popularity ranking (TopMStore selection,
//                 ties toward smaller key) and pinned via kHotPinned: the hot
//                 set stays resident whatever the tail churns.
//   LRU region  — the remainder admits cold-miss keys on demand and rotates
//                 them least-recently-used; when everything resident is hot
//                 (or the budget is exhausted by pins) an admission is
//                 bypassed rather than blocking.
//
// Charging: a hit costs one DRAM random read of the vector; a miss costs a
// fault-aware cold read (bounded retry, then a degraded re-read from the
// local replica tier, preserving injected == retried + degraded + surfaced)
// plus a DRAM fill write when admitted. Grouped mode coalesces a batch's
// fetches into one charge per class — the batched multi-key fetch the
// scheduler exists to produce. Host bytes are never cached here: kernels read
// the host embedding matrix directly, so cache state affects simulated cost
// and counters, never results.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "memsim/fault.h"
#include "memsim/memory_system.h"
#include "prefetch/topm_store.h"

namespace omega::serve {

struct HotCacheOptions {
  /// DRAM byte budget across the hot and LRU regions.
  size_t capacity_bytes = 1 << 20;
  /// Share of the budget reserved for the pinned hot set (0 = pure LRU,
  /// 1 = pure hot-pinned).
  double hot_fraction = 0.5;
  /// Socket the cache (and the serving workers) live on.
  int socket = 0;
  /// Where cold vectors are read from on a miss.
  memsim::Placement cold_home{memsim::Tier::kPm, 0};
  /// Local replica served when a cold read exhausts its retries (the
  /// degraded path; must be a tier the fault plan leaves healthy).
  memsim::Placement replica_home{memsim::Tier::kSsd, 0};
  memsim::FaultRetryPolicy retry;
};

class HotCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;         ///< LRU frames dropped for admissions
    uint64_t bypassed = 0;          ///< misses not admitted (budget pinned)
    uint64_t degraded_fetches = 0;  ///< cold reads served by the replica
    uint64_t refreshed_hot = 0;       ///< hot keys re-staged in place
    uint64_t refresh_invalidated = 0; ///< LRU-resident keys evicted as stale
    size_t hot_keys = 0;            ///< size of the pinned hot set

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }

    /// Interval delta of the monotone counters; hot_keys keeps this side's.
    Stats operator-(const Stats& other) const;
  };

  /// `vec_bytes` is the simulated size of one key's vector; `universe` the
  /// key id space (embedding rows).
  HotCache(memsim::MemorySystem* ms, size_t vec_bytes, uint32_t universe,
           HotCacheOptions options);

  /// Selects the top-m keys of `popularity` (m = hot budget / vec_bytes) and
  /// pins them resident, charging the fill (sequential cold read + DRAM
  /// write) against `ctx`. Replaces any previous hot set selection is
  /// idempotent per construction; call once before serving.
  void WarmHotSet(memsim::WorkerCtx* ctx,
                  std::vector<prefetch::ScoredKey> popularity);

  /// Charges fetching `n` keys through the cache (see file comment).
  /// `grouped` coalesces the batch into one charge per class.
  void FetchKeys(memsim::WorkerCtx* ctx, const uint32_t* keys, size_t n,
                 bool grouped);

  /// Reconciles the cache after the caller rewrote the vectors of `keys` in
  /// the backing embedding: hot keys are re-staged in place (one coalesced
  /// cold read + DRAM rewrite — they stay pinned and keep serving hits), and
  /// LRU-resident keys are evicted so the next fetch misses to the fresh
  /// vector. Keys resident nowhere cost nothing.
  void RefreshKeys(memsim::WorkerCtx* ctx, const uint32_t* keys, size_t n);

  bool IsHot(uint32_t key) const { return hot_set_.Contains(key); }
  size_t vec_bytes() const { return vec_bytes_; }
  const HotCacheOptions& options() const { return options_; }
  Stats GetStats() const;

 private:
  /// Charges one cold group read (bounded retry, degraded replica fallback).
  void ChargeColdRead(memsim::WorkerCtx* ctx, size_t count);
  /// Admits one missed key into the LRU region; true when admitted.
  bool Admit(uint32_t key);

  memsim::MemorySystem* ms_;
  size_t vec_bytes_;
  uint32_t universe_;
  HotCacheOptions options_;
  buffer::BufferManager manager_;
  prefetch::TopMStore hot_set_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> bypassed_{0};
  std::atomic<uint64_t> degraded_fetches_{0};
  std::atomic<uint64_t> refreshed_hot_{0};
  std::atomic<uint64_t> refresh_invalidated_{0};
};

}  // namespace omega::serve
