#include "serve/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace omega::serve {

namespace {

// log(1 + x) / x, stable near 0.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x / 2.0 + x * x / 3.0 - x * x * x / 4.0;
}

// (exp(x) - 1) / x, stable near 0.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0 + x * x / 6.0 + x * x * x / 24.0;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double skew, uint64_t seed)
    : n_(n), skew_(skew), rng_(seed) {
  OMEGA_CHECK(n_ >= 1) << "Zipf needs at least one rank";
  OMEGA_CHECK(skew_ > 0.0) << "Zipf skew must be positive";
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfGenerator::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - skew_) * log_x) * log_x;
}

double ZipfGenerator::H(double x) const {
  return std::exp(-skew_ * std::log(x));
}

double ZipfGenerator::HIntegralInverse(double x) const {
  double t = x * (1.0 - skew_);
  if (t < -1.0) t = -1.0;  // round-off guard at the left boundary
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfGenerator::Next() {
  // Hörmann & Derflinger rejection-inversion over [0.5, n + 0.5]: invert a
  // uniform draw through the integral of the density envelope, then accept
  // the rounded rank either inside the guaranteed-acceptance band (k - x <=
  // s) or by the exact density comparison. 1-based internally.
  while (true) {
    const double u =
        h_integral_n_ + rng_.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    const double n = static_cast<double>(n_);
    if (k > n) k = n;
    if (k - x <= s_ || u >= HIntegral(k + 0.5) - H(k)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

std::vector<uint32_t> RankPermutation(uint32_t n, uint64_t seed) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(rng.NextBounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace omega::serve
