// Closed-loop Zipf traffic generator for the serving layer.
//
// Each client thread owns a ZipfGenerator (per-client derived seed) and keeps
// exactly one request in flight: draw a rank, map it through the rank-to-key
// permutation, Submit(), block on the future, record the host wall-clock
// latency, repeat. Closed-loop means offered load adapts to service rate —
// QPS is a throughput measurement, not an input — which is what makes the
// batched-vs-per-request comparison fair: both modes see the same request
// streams and the same concurrency.
//
// Admission rejections are not dropped work: the client counts the rejection,
// backs off a few microseconds, and resubmits the same request, so every
// drawn request eventually completes and the rejection cost shows up in that
// request's latency.
//
// The run is bracketed by a "serve.load" PhaseSpan on the server's context:
// it carries the interval's simulated seconds, per-tier traffic and fault
// deltas (via the span's snapshots), and the hot-cache hit/miss/eviction
// counters into the trace.

#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.h"

namespace omega::serve {

struct LoadgenOptions {
  int clients = 8;
  uint64_t requests_per_client = 500;
  double zipf_skew = 0.99;
  /// Fraction of requests that are top-k queries (the rest are lookups).
  double topk_fraction = 0.8;
  uint32_t topk = 10;
  uint64_t seed = 42;
  /// Client back-off before resubmitting an admission-rejected request.
  double reject_backoff_us = 20.0;
};

/// One closed-loop run's client-side and server-side measurements.
struct LoadReport {
  uint64_t completed = 0;
  uint64_t rejections = 0;  ///< admission rejections absorbed by back-off
  double wall_seconds = 0.0;
  double host_qps = 0.0;  ///< completed / wall_seconds (host scheduler rate)
  /// completed / sim_seconds — throughput of the simulated machine, the
  /// repo's headline metric (the host only executes; the memsim clock is
  /// what the batched-fetch and shared-scan savings accrue to).
  double sim_qps = 0.0;

  // Host wall-clock latency of completed requests, microseconds.
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  EmbeddingServer::Stats server;         ///< stats at the end of the run
  HotCache::Stats cache_delta;           ///< cache counters over the run
  memsim::TrafficSnapshot traffic_delta; ///< simulated traffic over the run
  memsim::FaultCounters fault_delta;     ///< fault counters over the run
  double sim_seconds = 0.0;              ///< simulated seconds over the run
};

/// Drives `server` (already Start()ed) with `opts.clients` closed-loop client
/// threads. `rank_to_key[r]` maps popularity rank r to a key; it must cover
/// every key the Zipf draw can produce (size >= embedding rows served).
LoadReport RunClosedLoop(EmbeddingServer* server,
                         const std::vector<uint32_t>& rank_to_key,
                         const LoadgenOptions& opts);

}  // namespace omega::serve
