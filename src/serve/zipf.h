// Zipf-skewed key sampling for the serving load generator.
//
// Serving traffic against graph embeddings is heavily skewed — a few hub
// nodes absorb most lookups — and the whole point of the WoFP-style hot cache
// is to exploit that skew. ZipfGenerator draws ranks in [0, n) with
// P(rank = r) proportional to 1 / (r + 1)^skew via Hörmann & Derflinger
// rejection-inversion: O(1) per draw with no per-element tables, exact for
// any n, and deterministic for a fixed seed (all randomness comes from one
// seeded Rng).
//
// Ranks are popularity ranks, not keys: rank 0 is the hottest object. A rank
// permutation (or a degree ordering) maps ranks onto actual node ids so hot
// keys are scattered across the id space the way graph hubs are.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace omega::serve {

/// Rejection-inversion Zipf sampler over ranks [0, n) (see file comment).
class ZipfGenerator {
 public:
  /// `skew` > 0; skew == 1 is the classic Zipf law. n >= 1.
  ZipfGenerator(uint64_t n, double skew, uint64_t seed);

  /// Next rank in [0, n); rank 0 is the most popular.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  uint64_t n_;
  double skew_;
  Rng rng_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

/// Deterministic Fisher-Yates permutation of [0, n): element r is the key
/// popularity rank r maps to. Scatters the hot ranks across the key space.
std::vector<uint32_t> RankPermutation(uint32_t n, uint64_t seed);

}  // namespace omega::serve
