#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "common/topk.h"
#include "serve/zipf.h"

namespace omega::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ClientResult {
  std::vector<double> latencies_us;
  uint64_t rejections = 0;
};

ClientResult RunClient(EmbeddingServer* server,
                       const std::vector<uint32_t>& rank_to_key,
                       const LoadgenOptions& opts, int client) {
  ClientResult result;
  result.latencies_us.reserve(opts.requests_per_client);
  // Distinct per-client streams: one for key ranks, one for the query mix.
  const uint64_t base = SplitMix64(opts.seed + 0x10ad0000ULL);
  ZipfGenerator zipf(rank_to_key.size(), opts.zipf_skew,
                     SplitMix64(base + static_cast<uint64_t>(client)));
  Rng mix(SplitMix64(base ^ (0xc11e000ULL + static_cast<uint64_t>(client))));
  const auto backoff = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(opts.reject_backoff_us));

  for (uint64_t r = 0; r < opts.requests_per_client; ++r) {
    Query query;
    query.key = rank_to_key[zipf.Next()];
    query.kind = mix.NextDouble() < opts.topk_fraction ? QueryKind::kTopK
                                                       : QueryKind::kLookup;
    query.k = opts.topk;

    const auto start = Clock::now();
    std::future<QueryResult> future;
    while (true) {
      auto submitted = server->Submit(query);
      if (submitted.ok()) {
        future = std::move(submitted).value();
        break;
      }
      // Admission rejection: shed load for a moment, then resubmit. The
      // retry wait stays inside this request's measured latency.
      ++result.rejections;
      std::this_thread::sleep_for(backoff);
    }
    future.wait();
    result.latencies_us.push_back(SecondsSince(start) * 1e6);
  }
  return result;
}

}  // namespace

LoadReport RunClosedLoop(EmbeddingServer* server,
                         const std::vector<uint32_t>& rank_to_key,
                         const LoadgenOptions& opts) {
  OMEGA_CHECK(!rank_to_key.empty()) << "load generator needs a key universe";
  const int clients = std::max(1, opts.clients);
  memsim::MemorySystem* ms = server->context().ms();

  exec::PhaseSpan span(server->context(), "serve.load");
  const EmbeddingServer::Stats stats0 = server->GetStats();
  const memsim::TrafficSnapshot traffic0 = ms->Traffic();
  const memsim::FaultCounters faults0 = ms->Faults();

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  const auto wall0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        results[static_cast<size_t>(c)] =
            RunClient(server, rank_to_key, opts, c);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall = SecondsSince(wall0);

  LoadReport report;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    report.rejections += r.rejections;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  report.completed = latencies.size();
  report.host_qps =
      wall > 0.0 ? static_cast<double>(report.completed) / wall : 0.0;
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    report.mean_us = sum / static_cast<double>(latencies.size());
    report.p50_us = Percentile(latencies, 50.0);
    report.p95_us = Percentile(latencies, 95.0);
    report.p99_us = Percentile(latencies, 99.0);
  }

  report.server = server->GetStats();
  report.cache_delta = report.server.cache - stats0.cache;
  report.traffic_delta = ms->Traffic() - traffic0;
  report.fault_delta = ms->Faults() - faults0;
  report.sim_seconds = report.server.sim_seconds - stats0.sim_seconds;
  report.sim_qps = report.sim_seconds > 0.0
                       ? static_cast<double>(report.completed) /
                             report.sim_seconds
                       : 0.0;

  span.AddSimSeconds(report.sim_seconds);
  span.AddCacheCounters(report.cache_delta.hits, report.cache_delta.misses,
                        report.cache_delta.evictions);
  span.Finish();
  return report;
}

}  // namespace omega::serve
