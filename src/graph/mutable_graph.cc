#include "graph/mutable_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace omega::graph {

namespace {

inline uint64_t EdgeKey(NodeId a, NodeId b) {
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

inline bool BaseHasEdge(const Graph& g, NodeId u, NodeId v) {
  const NodeId* begin = g.neighbors(u);
  const NodeId* end = begin + g.degree(u);
  return std::binary_search(begin, end, v);
}

// splitmix64 — deterministic, seedable, no global state.
inline uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

MutableGraph::MutableGraph(Graph base, int num_workers) : base_(std::move(base)) {
  const int workers = num_workers > 0 ? num_workers : 1;
  slots_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) slots_.push_back(std::make_unique<Slot>());
}

void MutableGraph::Log(int worker, const Mutation& m) {
  Slot& slot = *slots_[static_cast<size_t>(worker) % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.log.push_back(m);
}

uint64_t MutableGraph::pending() const {
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    total += slot->log.size();
  }
  return total;
}

GraphDelta MutableGraph::Synchronize(memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx) {
  // 1. Merge: drain the per-worker logs in worker-id order (append order
  // within each), so the applied delta is deterministic regardless of how
  // the appends interleaved in host time.
  std::vector<Mutation> merged;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    merged.insert(merged.end(), slot->log.begin(), slot->log.end());
    slot->log.clear();
  }

  GraphDelta delta;
  if (merged.empty()) return delta;

  // 2. Validate against the evolving edge set. `upsert` holds the current
  // weight of every inserted/updated edge; `removed` suppresses base arcs.
  // Membership = in upsert, or in base and not removed.
  std::unordered_map<uint64_t, float> upsert;
  std::unordered_set<uint64_t> removed;
  const NodeId n = base_.num_nodes();
  auto is_member = [&](NodeId u, NodeId v, uint64_t key) {
    if (upsert.count(key) > 0) return true;
    return BaseHasEdge(base_, u, v) && removed.count(key) == 0;
  };
  for (const Mutation& m : merged) {
    if (m.src >= n || m.dst >= n) {
      ++delta.rejected_out_of_range;
      continue;
    }
    if (m.src == m.dst) {
      ++delta.rejected_self_loops;
      continue;
    }
    const uint64_t key = EdgeKey(m.src, m.dst);
    const bool member = is_member(m.src, m.dst, key);
    switch (m.kind) {
      case MutationKind::kInsertEdge:
        if (member) {
          ++delta.rejected_duplicates;
          continue;
        }
        upsert[key] = m.weight;
        break;
      case MutationKind::kDeleteEdge:
        if (!member) {
          ++delta.rejected_missing;
          continue;
        }
        upsert.erase(key);
        if (BaseHasEdge(base_, m.src, m.dst)) removed.insert(key);
        break;
      case MutationKind::kUpdateWeight:
        if (!member) {
          ++delta.rejected_missing;
          continue;
        }
        upsert[key] = m.weight;
        if (BaseHasEdge(base_, m.src, m.dst)) removed.insert(key);
        break;
    }
    delta.applied.push_back(m);
    delta.touched_nodes.push_back(m.src);
    delta.touched_nodes.push_back(m.dst);
  }
  std::sort(delta.touched_nodes.begin(), delta.touched_nodes.end());
  delta.touched_nodes.erase(
      std::unique(delta.touched_nodes.begin(), delta.touched_nodes.end()),
      delta.touched_nodes.end());

  // 3. Charge the ingestion: the merged log streams off PM, each validation
  // probes the adjacency (one cache line per mutation), and — if anything
  // changed — the rebuilt arc payload is written back sequentially.
  const memsim::Placement pm{memsim::Tier::kPm, memsim::Placement::kInterleaved};
  const memsim::Placement dram{memsim::Tier::kDram, 0};
  if (ms != nullptr && ctx != nullptr) {
    ms->ChargeAccess(ctx, pm, memsim::MemOp::kRead, memsim::Pattern::kSequential,
                     merged.size() * sizeof(Mutation), 1);
    ms->ChargeAccess(ctx, dram, memsim::MemOp::kRead, memsim::Pattern::kRandom,
                     merged.size() * 64, merged.size());
  }

  if (delta.applied.empty()) return delta;

  // 4. Rebuild the immutable snapshot: surviving base edges plus the upsert
  // set. Each undirected edge is listed once; FromEdges symmetrizes.
  std::vector<Edge> edges;
  edges.reserve(base_.num_arcs() / 2 + upsert.size());
  for (NodeId u = 0; u < n; ++u) {
    const NodeId* nbrs = base_.neighbors(u);
    const float* wts = base_.weights(u);
    const uint32_t deg = base_.degree(u);
    for (uint32_t k = 0; k < deg; ++k) {
      const NodeId v = nbrs[k];
      if (v <= u) continue;  // each undirected edge once
      if (!removed.empty() && removed.count(EdgeKey(u, v)) > 0) continue;
      edges.push_back({u, v, wts[k]});
    }
  }
  for (const auto& [key, weight] : upsert) {
    edges.push_back({static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffull), weight});
  }
  auto rebuilt = Graph::FromEdges(n, edges, /*undirected=*/true);
  OMEGA_CHECK(rebuilt.ok()) << "Synchronize rebuild failed: "
                            << rebuilt.status().ToString();
  base_ = std::move(rebuilt.value());
  ++epoch_;

  if (ms != nullptr && ctx != nullptr) {
    // Only the touched nodes' adjacency lists are rewritten (the lazy-apply
    // point of the oplog: untouched lists are reused in place, exactly like
    // the CSDB delta path reuses untouched degree blocks). Charge the touched
    // arc payload sequentially plus one index-entry update per touched node.
    uint64_t touched_arcs = 0;
    for (const NodeId v : delta.touched_nodes) touched_arcs += base_.degree(v);
    ms->ChargeAccess(ctx, pm, memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                     touched_arcs * 8, 1);
    ms->ChargeAccess(ctx, dram, memsim::MemOp::kWrite, memsim::Pattern::kRandom,
                     delta.touched_nodes.size() * 8, delta.touched_nodes.size());
    ms->ChargeCompute(ctx, touched_arcs * 24);
  }
  return delta;
}

std::vector<Mutation> SyntheticMutations(const Graph& g, size_t count,
                                         uint64_t seed,
                                         double insert_fraction) {
  std::vector<Mutation> out;
  out.reserve(count);
  if (g.num_nodes() < 2) return out;
  uint64_t state = seed ^ 0x6f4a7c15u;
  // Overlay keeping the stream self-consistent within this call.
  std::unordered_set<uint64_t> added;
  std::unordered_set<uint64_t> removed;
  const NodeId n = g.num_nodes();
  const std::vector<uint64_t>& offsets = g.offsets();
  auto member = [&](NodeId u, NodeId v) {
    const uint64_t key = EdgeKey(u, v);
    if (added.count(key) > 0) return true;
    return BaseHasEdge(g, u, v) && removed.count(key) == 0;
  };
  const uint64_t insert_threshold = static_cast<uint64_t>(
      insert_fraction * 4294967296.0);  // fraction of a 32-bit draw
  for (size_t i = 0; i < count; ++i) {
    const bool want_insert =
        (NextRand(&state) & 0xffffffffull) < insert_threshold ||
        g.num_arcs() == 0;
    bool produced = false;
    for (int attempt = 0; attempt < 64 && !produced; ++attempt) {
      if (want_insert) {
        const NodeId u = static_cast<NodeId>(NextRand(&state) % n);
        const NodeId v = static_cast<NodeId>(NextRand(&state) % n);
        if (u == v || member(u, v)) continue;
        added.insert(EdgeKey(u, v));
        removed.erase(EdgeKey(u, v));
        out.push_back({MutationKind::kInsertEdge, u, v, 1.0f});
        produced = true;
      } else {
        const uint64_t arc = NextRand(&state) % g.num_arcs();
        const NodeId u = static_cast<NodeId>(
            std::upper_bound(offsets.begin(), offsets.end(), arc) -
            offsets.begin() - 1);
        const NodeId v = g.neighbor_array()[arc];
        if (u == v || !member(u, v)) continue;
        const uint64_t key = EdgeKey(u, v);
        removed.insert(key);
        added.erase(key);
        out.push_back({MutationKind::kDeleteEdge, u, v, 0.0f});
        produced = true;
      }
    }
  }
  return out;
}

}  // namespace omega::graph
