// Graph loading and saving: whitespace-separated edge-list text files (the
// SNAP convention the paper's datasets ship in) and a compact binary format.

#pragma once

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace omega::graph {

/// Parses a text edge list: one "src dst [weight]" per line; lines starting
/// with '#' or '%' are comments. Node ids may be arbitrary (non-contiguous);
/// they are densified in first-appearance order.
Result<Graph> LoadEdgeListText(const std::string& path, bool undirected = true);

/// Writes one "src dst weight" line per stored arc.
Status SaveEdgeListText(const Graph& g, const std::string& path);

/// Binary round-trip format: header + offsets + neighbors + weights.
Status SaveBinary(const Graph& g, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

/// MatrixMarket coordinate format (the sparse-matrix community's exchange
/// format; SuiteSparse etc.). Reads `%%MatrixMarket matrix coordinate
/// (real|pattern) (general|symmetric)` headers; 1-based indices.
Result<Graph> LoadMatrixMarket(const std::string& path);
Status SaveMatrixMarket(const Graph& g, const std::string& path);

}  // namespace omega::graph
