// Graph loading and saving: whitespace-separated edge-list text files (the
// SNAP convention the paper's datasets ship in) and a compact binary format.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/mutable_graph.h"

namespace omega::graph {

/// Parses a text edge list: one "src dst [weight]" per line; lines starting
/// with '#' or '%' are comments. Node ids may be arbitrary (non-contiguous);
/// they are densified in first-appearance order.
Result<Graph> LoadEdgeListText(const std::string& path, bool undirected = true);

/// Writes one "src dst weight" line per stored arc.
Status SaveEdgeListText(const Graph& g, const std::string& path);

/// Binary round-trip format: header + offsets + neighbors + weights.
Status SaveBinary(const Graph& g, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

/// MatrixMarket coordinate format (the sparse-matrix community's exchange
/// format; SuiteSparse etc.). Reads `%%MatrixMarket matrix coordinate
/// (real|pattern) (general|symmetric)` headers; 1-based indices.
Result<Graph> LoadMatrixMarket(const std::string& path);
Status SaveMatrixMarket(const Graph& g, const std::string& path);

/// Streaming reader of mutation replay files — appending edge-list reads for
/// dynamic-graph ingestion. One mutation per line:
///
///   [a|d|u] src dst [weight]
///
/// `a` inserts, `d` deletes, `u` updates the weight; a bare "src dst
/// [weight]" line is an insert (so a plain appended edge list replays as
/// inserts). Lines starting with '#' or '%' are comments. Node ids are taken
/// verbatim (the replay targets an existing graph's id space — no
/// densification). Unlike the bulk loaders, malformed lines surface as
/// Status errors carrying "path:line:" context instead of being skipped.
class MutationStreamReader {
 public:
  MutationStreamReader() = default;

  /// Opens `path`; IOError when it cannot be read.
  Status Open(const std::string& path);

  bool is_open() const { return in_.is_open(); }
  uint64_t line_number() const { return line_no_; }

  /// Appends up to `max_count` parsed mutations to *out and returns how many
  /// were appended; 0 means end of stream. The reader keeps its position, so
  /// repeated calls stream through the file batch by batch.
  Result<size_t> ReadBatch(size_t max_count, std::vector<Mutation>* out);

 private:
  std::string path_;
  std::ifstream in_;
  uint64_t line_no_ = 0;
};

/// Convenience: streams the whole file through a MutationStreamReader.
Result<std::vector<Mutation>> LoadMutationsText(const std::string& path);

}  // namespace omega::graph
