// Compressed Sparse Row matrix — the baseline graph/sparse-matrix format the
// paper compares CSDB against (Fig. 19a). Index arrays are O(|V|).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace omega::graph {

/// Square sparse matrix in CSR layout; rows are graph nodes.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds the (weighted) adjacency matrix of `g`.
  static CsrMatrix FromGraph(const Graph& g);

  /// Builds directly from raw arrays (used by operators/tests).
  static Result<CsrMatrix> FromParts(uint32_t num_rows, uint32_t num_cols,
                                     std::vector<uint64_t> row_ptr,
                                     std::vector<NodeId> col_idx,
                                     std::vector<float> values);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }
  uint64_t nnz() const { return col_idx_.size(); }

  uint64_t RowBegin(uint32_t r) const { return row_ptr_[r]; }
  uint64_t RowEnd(uint32_t r) const { return row_ptr_[r + 1]; }
  uint32_t RowDegree(uint32_t r) const {
    return static_cast<uint32_t>(row_ptr_[r + 1] - row_ptr_[r]);
  }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<NodeId>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Bytes of index metadata (the O(|V|) cost CSDB avoids).
  size_t IndexBytes() const { return row_ptr_.size() * sizeof(uint64_t); }

 private:
  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
  std::vector<uint64_t> row_ptr_;
  std::vector<NodeId> col_idx_;
  std::vector<float> values_;
};

}  // namespace omega::graph
