#include "graph/rmat.h"

#include <cmath>

#include "common/rng.h"

namespace omega::graph {

Result<Graph> GenerateRmat(const RmatParams& params) {
  const double sum = params.a + params.b + params.c + params.d;
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("R-MAT probabilities must sum to 1");
  }
  if (params.scale == 0 || params.scale > 30) {
    return Status::InvalidArgument("R-MAT scale must be in [1, 30]");
  }
  const NodeId n = NodeId{1} << params.scale;
  Rng rng(params.seed);

  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (uint64_t e = 0; e < params.num_edges; ++e) {
    NodeId row = 0;
    NodeId col = 0;
    for (uint32_t level = 0; level < params.scale; ++level) {
      // Jitter the quadrant probabilities to smooth the degree distribution.
      const double na = params.a * (1.0 + params.noise * (rng.NextDouble() - 0.5));
      const double nb = params.b * (1.0 + params.noise * (rng.NextDouble() - 0.5));
      const double nc = params.c * (1.0 + params.noise * (rng.NextDouble() - 0.5));
      const double nd = params.d * (1.0 + params.noise * (rng.NextDouble() - 0.5));
      const double total = na + nb + nc + nd;
      const double r = rng.NextDouble() * total;
      const NodeId half = NodeId{1} << (params.scale - level - 1);
      if (r < na) {
        // top-left: nothing to add
      } else if (r < na + nb) {
        col += half;
      } else if (r < na + nb + nc) {
        row += half;
      } else {
        row += half;
        col += half;
      }
    }
    if (row != col) edges.push_back(Edge{row, col, 1.0f});
  }
  return Graph::FromEdges(n, edges, /*undirected=*/true);
}

}  // namespace omega::graph
