#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace omega::graph {

Result<Graph> Graph::FromEdges(NodeId num_nodes, const std::vector<Edge>& edges,
                               bool undirected) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("graph must have at least one node");
  }
  std::vector<Edge> arcs;
  arcs.reserve(edges.size() * (undirected ? 2 : 1));
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Status::OutOfRange("edge endpoint out of range: " +
                                std::to_string(e.src) + "->" + std::to_string(e.dst));
    }
    if (e.src == e.dst) continue;  // drop self-loops
    arcs.push_back(e);
    if (undirected) arcs.push_back(Edge{e.dst, e.src, e.weight});
  }

  std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  Graph g;
  g.num_nodes_ = num_nodes;
  g.offsets_.assign(num_nodes + 1, 0);
  g.neighbors_.reserve(arcs.size());
  g.weights_.reserve(arcs.size());

  for (size_t i = 0; i < arcs.size(); ++i) {
    if (i > 0 && arcs[i].src == arcs[i - 1].src && arcs[i].dst == arcs[i - 1].dst) {
      g.weights_.back() += arcs[i].weight;  // merge duplicates
      continue;
    }
    g.neighbors_.push_back(arcs[i].dst);
    g.weights_.push_back(arcs[i].weight);
    g.offsets_[arcs[i].src + 1]++;
  }
  for (NodeId v = 0; v < num_nodes; ++v) g.offsets_[v + 1] += g.offsets_[v];

  for (NodeId v = 0; v < num_nodes; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

uint32_t Graph::num_distinct_degrees() const {
  std::unordered_set<uint32_t> seen;
  for (NodeId v = 0; v < num_nodes_; ++v) seen.insert(degree(v));
  return static_cast<uint32_t>(seen.size());
}

Result<Graph> Graph::Relabel(const std::vector<NodeId>& perm) const {
  if (perm.size() != num_nodes_) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  std::vector<NodeId> inverse(num_nodes_, num_nodes_);
  for (NodeId i = 0; i < num_nodes_; ++i) {
    if (perm[i] >= num_nodes_ || inverse[perm[i]] != num_nodes_) {
      return Status::InvalidArgument("perm is not a permutation of [0, num_nodes)");
    }
    inverse[perm[i]] = i;
  }
  std::vector<Edge> edges;
  edges.reserve(num_arcs());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const NodeId new_src = inverse[v];
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      edges.push_back(Edge{new_src, inverse[neighbors_[i]], weights_[i]});
    }
  }
  // Arcs are already symmetric, so insert them directed.
  return FromEdges(num_nodes_, edges, /*undirected=*/false);
}

std::vector<NodeId> Graph::DegreeDescendingOrder() const {
  std::vector<NodeId> order(num_nodes_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    return degree(a) > degree(b);
  });
  return order;
}

}  // namespace omega::graph
