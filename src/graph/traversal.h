// Graph analytics utilities: BFS, connected components, and PageRank.
//
// PageRank is the paper's example of SpMM/SpMV being "fundamental and
// essential for various computations ... such as PageRank calculation in
// random walks" (§II-A); it runs as repeated SpMV over the row-normalized
// transition matrix. BFS/components support dataset sanity checks and the
// examples.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csdb.h"
#include "graph/graph.h"

namespace omega::graph {

/// BFS distances from `source`; unreachable nodes get UINT32_MAX.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);

/// Multi-source BFS: distance to the nearest node of `sources` (UINT32_MAX
/// when unreachable). The k-hop affected set of a graph delta is exactly
/// {v : dist(v) <= k} with the delta's touched nodes as sources.
std::vector<uint32_t> BfsDistances(const Graph& g,
                                   const std::vector<NodeId>& sources);

/// Connected-component label per node (labels are the smallest node id in
/// the component).
std::vector<NodeId> ConnectedComponents(const Graph& g);

/// Number of distinct connected components.
uint32_t CountComponents(const Graph& g);

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  double tolerance = 1e-8;  ///< L1 change per iteration to declare converged
};

struct PageRankResult {
  std::vector<double> scores;  ///< sums to ~1
  int iterations = 0;
  double final_delta = 0.0;
};

/// Power-iteration PageRank over the out-degree-normalized transition
/// matrix. Dangling nodes redistribute uniformly.
Result<PageRankResult> PageRank(const Graph& g, const PageRankOptions& options = {});

/// Top-k nodes by PageRank score, descending.
std::vector<NodeId> TopPageRankNodes(const PageRankResult& result, size_t k);

}  // namespace omega::graph
