// Mutable wrapper over the immutable Graph: per-worker mutation op logs.
//
// The design follows the sv6 `logged_object` pattern: every worker appends
// edge mutations to its own log (no cross-worker synchronization on the
// append path), and the logs are merged and applied only when a structural
// read needs to observe them (Synchronize). Between synchronizations the
// base Graph stays immutable, so every existing consumer (CSDB builds, SpMM
// plans, embeddings) keeps its snapshot semantics.
//
// Mutations address *undirected* edges in the base graph's node-id space
// (the node universe is fixed at construction). Validation happens at merge
// time against the synchronized edge set, in deterministic worker-id /
// append order, so the applied delta — and therefore the rebuilt graph — is
// independent of log-append interleaving.
//
// Two-clock contract: Synchronize optionally charges the simulated machine
// for the ingestion work (log merge reads, membership probes, adjacency
// rebuild writes), so mutation ingestion shows up in traffic reports. Host
// results never depend on whether charging is attached.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "memsim/memory_system.h"

namespace omega::graph {

enum class MutationKind : uint8_t {
  kInsertEdge = 0,  ///< insert undirected edge (src, dst) with `weight`
  kDeleteEdge = 1,  ///< delete undirected edge (src, dst)
  kUpdateWeight = 2,  ///< set undirected edge (src, dst) weight to `weight`
};

struct Mutation {
  MutationKind kind = MutationKind::kInsertEdge;
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;
};

/// Outcome of one Synchronize(): the mutations that survived validation (in
/// the deterministic merge order) plus per-reason rejection counters.
struct GraphDelta {
  std::vector<Mutation> applied;
  /// Endpoints of the applied mutations, sorted ascending, unique — the seed
  /// set of the k-hop affected-set BFS.
  std::vector<NodeId> touched_nodes;

  uint64_t rejected_duplicates = 0;    ///< insert of an existing edge
  uint64_t rejected_missing = 0;       ///< delete/update of an absent edge
  uint64_t rejected_self_loops = 0;    ///< src == dst
  uint64_t rejected_out_of_range = 0;  ///< endpoint >= num_nodes

  bool empty() const { return applied.empty(); }
  uint64_t rejected_total() const {
    return rejected_duplicates + rejected_missing + rejected_self_loops +
           rejected_out_of_range;
  }
};

/// Graph + per-worker mutation logs (see file comment).
class MutableGraph {
 public:
  /// `num_workers` sizes the log array; Log() accepts worker ids modulo it.
  explicit MutableGraph(Graph base, int num_workers = 1);

  MutableGraph(MutableGraph&&) = default;
  MutableGraph& operator=(MutableGraph&&) = default;

  /// The last synchronized snapshot. Pending (un-synchronized) mutations are
  /// not visible here.
  const Graph& graph() const { return base_; }

  /// Monotone synchronization count: bumps every time Synchronize applies at
  /// least one mutation, so snapshot consumers can detect staleness.
  uint64_t epoch() const { return epoch_; }

  int num_workers() const { return static_cast<int>(slots_.size()); }

  /// Appends one mutation to `worker`'s log. Lock-free across workers (each
  /// slot has its own mutex, contended only if two threads share a worker id).
  void Log(int worker, const Mutation& m);

  /// Total mutations logged and not yet synchronized.
  uint64_t pending() const;

  /// Merges the per-worker logs (worker 0..W-1, append order within each),
  /// validates every mutation against the evolving edge set, rebuilds the
  /// base Graph, and returns the applied delta. Logs are cleared. When `ms`
  /// and `ctx` are non-null the ingestion work is charged to the simulated
  /// machine (advancing ctx->clock).
  GraphDelta Synchronize(memsim::MemorySystem* ms = nullptr,
                         memsim::WorkerCtx* ctx = nullptr);

 private:
  struct Slot {
    std::mutex mu;
    std::vector<Mutation> log;
  };

  Graph base_;
  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Deterministic synthetic mutation stream over `g`: `count` mutations drawn
/// from `seed` — `insert_fraction` of them insert a currently-absent edge
/// between two random nodes, the rest delete a random existing edge. The
/// generator tracks its own inserts/deletes so the stream is self-consistent
/// (no duplicate inserts or double deletes within one call).
std::vector<Mutation> SyntheticMutations(const Graph& g, size_t count,
                                         uint64_t seed,
                                         double insert_fraction = 0.5);

}  // namespace omega::graph
