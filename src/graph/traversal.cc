#include "graph/traversal.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

namespace omega::graph {

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  std::vector<uint32_t> dist(g.num_nodes(), UINT32_MAX);
  if (source >= g.num_nodes()) return dist;
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const NodeId* nbrs = g.neighbors(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) {
      if (dist[nbrs[i]] == UINT32_MAX) {
        dist[nbrs[i]] = dist[v] + 1;
        queue.push_back(nbrs[i]);
      }
    }
  }
  return dist;
}

std::vector<uint32_t> BfsDistances(const Graph& g,
                                   const std::vector<NodeId>& sources) {
  std::vector<uint32_t> dist(g.num_nodes(), UINT32_MAX);
  std::deque<NodeId> queue;
  for (const NodeId s : sources) {
    if (s >= g.num_nodes() || dist[s] == 0) continue;
    dist[s] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const NodeId* nbrs = g.neighbors(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) {
      if (dist[nbrs[i]] == UINT32_MAX) {
        dist[nbrs[i]] = dist[v] + 1;
        queue.push_back(nbrs[i]);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ConnectedComponents(const Graph& g) {
  std::vector<NodeId> label(g.num_nodes(), g.num_nodes());
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[start] != g.num_nodes()) continue;
    label[start] = start;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      const NodeId* nbrs = g.neighbors(v);
      for (uint32_t i = 0; i < g.degree(v); ++i) {
        if (label[nbrs[i]] == g.num_nodes()) {
          label[nbrs[i]] = start;
          queue.push_back(nbrs[i]);
        }
      }
    }
  }
  return label;
}

uint32_t CountComponents(const Graph& g) {
  const auto labels = ConnectedComponents(g);
  uint32_t count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) count += labels[v] == v;
  return count;
}

Result<PageRankResult> PageRank(const Graph& g, const PageRankOptions& options) {
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  PageRankResult result;
  result.scores.assign(n, 1.0 / n);
  std::vector<double> next(n, 0.0);

  for (int it = 0; it < options.max_iterations; ++it) {
    // Dangling mass redistributes uniformly.
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling += result.scores[v];
    }
    const double base = (1.0 - options.damping) / n +
                        options.damping * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t deg = g.degree(v);
      if (deg == 0) continue;
      const double share = options.damping * result.scores[v] / deg;
      const NodeId* nbrs = g.neighbors(v);
      for (uint32_t i = 0; i < deg; ++i) next[nbrs[i]] += share;
    }
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) delta += std::abs(next[v] - result.scores[v]);
    result.scores.swap(next);
    result.iterations = it + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) break;
  }
  return result;
}

std::vector<NodeId> TopPageRankNodes(const PageRankResult& result, size_t k) {
  std::vector<NodeId> order(result.scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      return result.scores[a] > result.scores[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace omega::graph
