#include "graph/stats.h"

#include <cmath>
#include <unordered_set>

namespace omega::graph {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  s.num_nodes = g.num_nodes();
  s.num_arcs = g.num_arcs();
  s.max_degree = g.max_degree();
  s.distinct_degrees = g.num_distinct_degrees();
  if (s.num_nodes > 0) {
    s.mean_degree = static_cast<double>(s.num_arcs) / static_cast<double>(s.num_nodes);
  }
  if (s.num_arcs > 0) {
    double h = 0.0;
    const double total = static_cast<double>(s.num_arcs);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double p = g.degree(v) / total;
      if (p > 0.0) h -= p * std::log(p);
    }
    s.degree_entropy = h;
    if (s.num_nodes > 1) s.normalized_entropy = h / std::log(s.num_nodes);
  }
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> hist(g.max_degree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) hist[g.degree(v)]++;
  return hist;
}

}  // namespace omega::graph
