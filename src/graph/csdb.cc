#include "graph/csdb.h"

#include <algorithm>

#include "common/logging.h"

namespace omega::graph {

namespace {

// Builds the block metadata from a non-increasing per-row degree sequence.
void BuildBlocks(const std::vector<uint32_t>& row_degrees, CsdbMatrix* out,
                 std::vector<uint32_t>* deg_list, std::vector<uint32_t>* deg_ind,
                 std::vector<uint64_t>* block_ptr) {
  (void)out;
  deg_list->clear();
  deg_ind->clear();
  block_ptr->clear();
  uint64_t ptr = 0;
  for (uint32_t r = 0; r < row_degrees.size(); ++r) {
    if (deg_list->empty() || row_degrees[r] != deg_list->back()) {
      deg_list->push_back(row_degrees[r]);
      deg_ind->push_back(r);
      block_ptr->push_back(ptr);
    }
    ptr += row_degrees[r];
  }
  deg_ind->push_back(static_cast<uint32_t>(row_degrees.size()));
  block_ptr->push_back(ptr);
}

}  // namespace

CsdbMatrix CsdbMatrix::FromGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  const std::vector<NodeId> order = g.DegreeDescendingOrder();
  std::vector<NodeId> inverse(n);
  for (NodeId i = 0; i < n; ++i) inverse[order[i]] = i;

  CsdbMatrix m;
  m.num_rows_ = n;
  m.num_cols_ = n;
  m.perm_ = order;
  m.col_list_.reserve(g.num_arcs());
  m.nnz_list_.reserve(g.num_arcs());

  std::vector<uint32_t> row_degrees(n);
  std::vector<std::pair<NodeId, float>> row;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId old_v = order[i];
    const uint32_t deg = g.degree(old_v);
    row_degrees[i] = deg;
    row.clear();
    const NodeId* nbrs = g.neighbors(old_v);
    const float* wts = g.weights(old_v);
    for (uint32_t k = 0; k < deg; ++k) {
      row.emplace_back(inverse[nbrs[k]], wts[k]);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, w] : row) {
      m.col_list_.push_back(c);
      m.nnz_list_.push_back(w);
    }
  }

  BuildBlocks(row_degrees, &m, &m.deg_list_, &m.deg_ind_, &m.block_ptr_);
  return m;
}

Result<CsdbMatrix> CsdbMatrix::FromParts(uint32_t num_rows, uint32_t num_cols,
                                         const std::vector<uint32_t>& row_degrees,
                                         std::vector<NodeId> col_list,
                                         std::vector<float> nnz_list,
                                         std::vector<NodeId> perm) {
  if (row_degrees.size() != num_rows) {
    return Status::InvalidArgument("row_degrees must have num_rows entries");
  }
  uint64_t total = 0;
  for (uint32_t r = 0; r < num_rows; ++r) {
    if (r > 0 && row_degrees[r] > row_degrees[r - 1]) {
      return Status::InvalidArgument("row degrees must be non-increasing for CSDB");
    }
    total += row_degrees[r];
  }
  if (total != col_list.size() || col_list.size() != nnz_list.size()) {
    return Status::InvalidArgument("col_list/nnz_list size mismatch with degrees");
  }
  for (NodeId c : col_list) {
    if (c >= num_cols) return Status::OutOfRange("column index out of range");
  }
  if (!perm.empty() && perm.size() != num_rows) {
    return Status::InvalidArgument("perm must be empty or num_rows long");
  }
  CsdbMatrix m;
  m.num_rows_ = num_rows;
  m.num_cols_ = num_cols;
  m.col_list_ = std::move(col_list);
  m.nnz_list_ = std::move(nnz_list);
  m.perm_ = std::move(perm);
  BuildBlocks(row_degrees, &m, &m.deg_list_, &m.deg_ind_, &m.block_ptr_);
  return m;
}

uint32_t CsdbMatrix::BlockOfRow(uint32_t row) const {
  OMEGA_DCHECK(row < num_rows_);
  // Last block whose first row is <= row.
  const auto it = std::upper_bound(deg_ind_.begin(), deg_ind_.end(), row);
  return static_cast<uint32_t>(it - deg_ind_.begin()) - 1;
}

uint64_t CsdbMatrix::RowPtr(uint32_t row) const {
  const uint32_t b = BlockOfRow(row);
  return block_ptr_[b] +
         static_cast<uint64_t>(row - deg_ind_[b]) * static_cast<uint64_t>(deg_list_[b]);
}

CsdbMatrix::RowCursor::RowCursor(const CsdbMatrix& m, uint32_t start_row)
    : m_(&m), row_(start_row) {
  if (AtEnd()) {
    block_ = m.num_blocks();
    degree_ = 0;
    ptr_ = m.nnz();
    return;
  }
  block_ = m.BlockOfRow(start_row);
  degree_ = m.deg_list_[block_];
  ptr_ = m.block_ptr_[block_] +
         static_cast<uint64_t>(start_row - m.deg_ind_[block_]) * degree_;
}

CsdbMatrix::BlockCursor::BlockCursor(const CsdbMatrix& m, uint32_t row_begin,
                                     uint32_t row_end)
    : m_(&m), end_(std::min(row_end, m.num_rows_)) {
  if (row_begin >= end_) {
    span_.row_begin = span_.row_end = end_;
    block_ = m.num_blocks();
    return;
  }
  block_ = m.BlockOfRow(row_begin);
  span_.row_begin = row_begin;
  span_.row_end = std::min(end_, m.deg_ind_[block_ + 1]);
  span_.degree = m.deg_list_[block_];
  span_.ptr = m.block_ptr_[block_] +
              static_cast<uint64_t>(row_begin - m.deg_ind_[block_]) * span_.degree;
}

void CsdbMatrix::BlockCursor::Next() {
  span_.row_begin = span_.row_end;
  if (AtEnd()) return;
  ++block_;
  span_.row_end = std::min(end_, m_->deg_ind_[block_ + 1]);
  span_.degree = m_->deg_list_[block_];
  span_.ptr = m_->block_ptr_[block_];
}

void CsdbMatrix::RowCursor::Next() {
  ptr_ += degree_;
  ++row_;
  if (AtEnd()) return;
  if (row_ >= m_->deg_ind_[block_ + 1]) {
    ++block_;
    degree_ = m_->deg_list_[block_];
  }
}

}  // namespace omega::graph
