#include "graph/csr.h"

namespace omega::graph {

CsrMatrix CsrMatrix::FromGraph(const Graph& g) {
  CsrMatrix m;
  m.num_rows_ = g.num_nodes();
  m.num_cols_ = g.num_nodes();
  m.row_ptr_ = g.offsets();
  m.col_idx_ = g.neighbor_array();
  m.values_ = g.weight_array();
  return m;
}

Result<CsrMatrix> CsrMatrix::FromParts(uint32_t num_rows, uint32_t num_cols,
                                       std::vector<uint64_t> row_ptr,
                                       std::vector<NodeId> col_idx,
                                       std::vector<float> values) {
  if (row_ptr.size() != static_cast<size_t>(num_rows) + 1) {
    return Status::InvalidArgument("row_ptr must have num_rows+1 entries");
  }
  if (col_idx.size() != values.size() || row_ptr.back() != col_idx.size()) {
    return Status::InvalidArgument("col_idx/values size mismatch with row_ptr");
  }
  for (size_t r = 0; r < num_rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("row_ptr must be non-decreasing");
    }
  }
  for (NodeId c : col_idx) {
    if (c >= num_cols) return Status::OutOfRange("column index out of range");
  }
  CsrMatrix m;
  m.num_rows_ = num_rows;
  m.num_cols_ = num_cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

}  // namespace omega::graph
