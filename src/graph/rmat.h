// R-MAT synthetic graph generator (Chakrabarti, Zhan, Faloutsos; SDM'04).
//
// Used both for the paper's scalability study (Fig. 17b) and, with tuned
// skew, to synthesize scaled-down analogues of the real-world datasets
// (Table I) that are unavailable here.

#pragma once

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace omega::graph {

/// Parameters of one R-MAT recursion. a+b+c+d must be ~1; larger `a` gives
/// heavier degree skew.
struct RmatParams {
  uint32_t scale = 14;        ///< nodes = 2^scale
  uint64_t num_edges = 1 << 18;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 42;
  /// Jitter applied to the quadrant probabilities per recursion level, which
  /// avoids the artificial degree ties a noiseless R-MAT produces.
  double noise = 0.1;
};

/// Generates an undirected graph (duplicate edges merged, self-loops dropped).
Result<Graph> GenerateRmat(const RmatParams& params);

}  // namespace omega::graph
