// CSDB — the paper's Compressed Sparse Degree-Block format (§III-A).
//
// Nodes are relabeled in non-increasing degree order so that all rows with
// the same degree form one contiguous block. Row indexing then needs only
// per-block metadata:
//   Deg_list  — the distinct degrees, non-increasing (the paper's Deg_list);
//   Deg_ind   — the first row of each block (the paper's Deg_ind);
//   block_ptr — the first nnz offset of each block (prefix of Eq. 1).
// All three are O(|distinct degrees|) instead of CSR's O(|V|) row pointers.
// Within a block every row has the same degree d, so
//   Deg_ptr(row) = block_ptr[b] + (row - Deg_ind[b]) * d        (Eq. 1)
// is computable in O(1).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace omega::graph {

/// Square sparse matrix in CSDB layout. Rows and columns are in the format's
/// own degree-sorted id space; `perm()` maps back to original node ids.
class CsdbMatrix {
 public:
  CsdbMatrix() = default;

  /// Builds the weighted adjacency matrix of `g` in CSDB form, relabeling
  /// nodes into degree-descending order.
  static CsdbMatrix FromGraph(const Graph& g);

  /// Builds from explicit parts. `row_degrees` must be non-increasing.
  /// Column indices are taken as already being in the CSDB id space.
  static Result<CsdbMatrix> FromParts(uint32_t num_rows, uint32_t num_cols,
                                      const std::vector<uint32_t>& row_degrees,
                                      std::vector<NodeId> col_list,
                                      std::vector<float> nnz_list,
                                      std::vector<NodeId> perm = {});

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }
  uint64_t nnz() const { return col_list_.size(); }
  uint32_t num_blocks() const { return static_cast<uint32_t>(deg_list_.size()); }

  const std::vector<uint32_t>& deg_list() const { return deg_list_; }
  const std::vector<uint32_t>& deg_ind() const { return deg_ind_; }
  const std::vector<uint64_t>& block_ptr() const { return block_ptr_; }
  const std::vector<NodeId>& col_list() const { return col_list_; }
  const std::vector<float>& nnz_list() const { return nnz_list_; }
  std::vector<float>& mutable_nnz_list() { return nnz_list_; }

  /// CSDB row i corresponds to original node perm()[i]. Empty when the matrix
  /// was built without relabeling.
  const std::vector<NodeId>& perm() const { return perm_; }

  /// Block containing `row` (binary search, O(log blocks)).
  uint32_t BlockOfRow(uint32_t row) const;

  /// Degree of `row` (O(log blocks); use RowCursor for linear scans).
  uint32_t RowDegree(uint32_t row) const { return deg_list_[BlockOfRow(row)]; }

  /// Starting nnz offset of `row` — the paper's Deg_ptr (Eq. 1).
  uint64_t RowPtr(uint32_t row) const;

  /// Bytes of index metadata — O(|distinct degrees|), the CSDB saving.
  size_t IndexBytes() const {
    return deg_list_.size() * sizeof(uint32_t) + deg_ind_.size() * sizeof(uint32_t) +
           block_ptr_.size() * sizeof(uint64_t);
  }

  /// O(1)-per-step forward iterator over rows for sequential kernels.
  class RowCursor {
   public:
    RowCursor(const CsdbMatrix& m, uint32_t start_row);

    uint32_t row() const { return row_; }
    uint32_t degree() const { return degree_; }
    uint64_t ptr() const { return ptr_; }
    bool AtEnd() const { return row_ >= m_->num_rows_; }

    void Next();

   private:
    const CsdbMatrix* m_;
    uint32_t row_;
    uint32_t block_;
    uint32_t degree_;
    uint64_t ptr_;
  };

  RowCursor Rows(uint32_t start_row = 0) const { return RowCursor(*this, start_row); }

  /// One maximal run of same-degree rows inside a queried row range: rows
  /// [row_begin, row_end) all have degree `degree`, with row r's elements at
  /// nnz offset ptr + (r - row_begin) * degree. Every row of a span shares the
  /// same inner-loop trip count, which is what lets the SpMM panel kernels
  /// specialize on the degree (§III-A's point: the degree-descending layout
  /// turns short-row handling into a per-block, branch-predictable decision).
  struct BlockSpan {
    uint32_t row_begin = 0;
    uint32_t row_end = 0;
    uint32_t degree = 0;
    uint64_t ptr = 0;  ///< first nnz offset of row_begin

    uint32_t rows() const { return row_end - row_begin; }
  };

  /// Forward iterator over the degree blocks intersecting [row_begin,
  /// row_end): each step yields the current block clamped to the range.
  /// O(log blocks) to start, O(1) per step, same as RowCursor.
  class BlockCursor {
   public:
    BlockCursor(const CsdbMatrix& m, uint32_t row_begin, uint32_t row_end);

    bool AtEnd() const { return span_.row_begin >= end_; }
    const BlockSpan& span() const { return span_; }
    void Next();

   private:
    const CsdbMatrix* m_;
    uint32_t end_;
    uint32_t block_;
    BlockSpan span_;
  };

  /// Degree blocks overlapping [row_begin, min(row_end, num_rows())).
  BlockCursor BlocksInRange(uint32_t row_begin, uint32_t row_end) const {
    return BlockCursor(*this, row_begin, row_end);
  }

 private:
  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
  std::vector<uint32_t> deg_list_;   // distinct degrees, non-increasing
  std::vector<uint32_t> deg_ind_;    // size num_blocks+1: first row per block
  std::vector<uint64_t> block_ptr_;  // size num_blocks+1: first nnz per block
  std::vector<NodeId> col_list_;
  std::vector<float> nnz_list_;
  std::vector<NodeId> perm_;
};

}  // namespace omega::graph
