#include "graph/community.h"

#include "common/rng.h"

namespace omega::graph {

Result<SbmGraph> GenerateSbm(const SbmParams& params) {
  if (params.p_in < 0.0 || params.p_in > 1.0 || params.p_out < 0.0 ||
      params.p_out > 1.0) {
    return Status::InvalidArgument("SBM probabilities must be in [0, 1]");
  }
  if (params.nodes_per_block == 0 || params.blocks == 0) {
    return Status::InvalidArgument("SBM needs at least one node and block");
  }
  const NodeId n = params.nodes_per_block * params.blocks;
  Rng rng(params.seed);
  std::vector<Edge> edges;
  std::vector<uint32_t> labels(n);
  for (NodeId v = 0; v < n; ++v) labels[v] = v / params.nodes_per_block;

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = labels[u] == labels[v] ? params.p_in : params.p_out;
      if (rng.NextDouble() < p) edges.push_back(Edge{u, v, 1.0f});
    }
  }
  OMEGA_ASSIGN_OR_RETURN(Graph g, Graph::FromEdges(n, edges, true));
  return SbmGraph{std::move(g), std::move(labels)};
}

}  // namespace omega::graph
