// Planted-partition (stochastic block model) generator.
//
// R-MAT reproduces degree skew but not community structure; the paper's
// downstream tasks — classification, clustering, recommendation (§I) — need
// graphs whose embeddings have something to learn. The SBM plants `blocks`
// communities with intra-probability p_in >> inter-probability p_out and
// returns the ground-truth labels for evaluation.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace omega::graph {

struct SbmParams {
  NodeId nodes_per_block = 64;
  uint32_t blocks = 4;
  double p_in = 0.2;    ///< edge probability within a block
  double p_out = 0.01;  ///< edge probability across blocks
  uint64_t seed = 77;
};

struct SbmGraph {
  Graph graph;
  std::vector<uint32_t> labels;  ///< ground-truth block of each node
};

/// Generates a planted-partition graph. Fails on invalid probabilities.
Result<SbmGraph> GenerateSbm(const SbmParams& params);

}  // namespace omega::graph
