#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace omega::graph {

namespace {
constexpr uint64_t kBinaryMagic = 0x4F4D4547412D4731ULL;  // "OMEGA-G1"
}

Result<Graph> LoadEdgeListText(const std::string& path, bool undirected) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::unordered_map<uint64_t, NodeId> remap;
  std::vector<Edge> edges;
  std::string line;
  auto densify = [&remap](uint64_t raw) {
    auto [it, inserted] = remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const auto tokens = SplitTokens(line, " \t\r,");
    if (tokens.size() < 2) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": expected 'src dst [weight]'");
    }
    uint64_t raw_src = 0;
    uint64_t raw_dst = 0;
    double weight = 1.0;
    try {
      raw_src = std::stoull(std::string(tokens[0]));
      raw_dst = std::stoull(std::string(tokens[1]));
      if (tokens.size() >= 3) weight = std::stod(std::string(tokens[2]));
    } catch (const std::exception&) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": unparsable edge line");
    }
    edges.push_back(Edge{densify(raw_src), densify(raw_dst),
                         static_cast<float>(weight)});
  }
  if (remap.empty()) return Status::IOError(path + ": no edges found");
  return Graph::FromEdges(static_cast<NodeId>(remap.size()), edges, undirected);
}

Status SaveEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# omega edge list: " << g.num_nodes() << " nodes, " << g.num_arcs()
      << " arcs\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId* nbrs = g.neighbors(v);
    const float* wts = g.weights(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) {
      out << v << ' ' << nbrs[i] << ' ' << wts[i] << '\n';
    }
  }
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<Graph> LoadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "%%MatrixMarket")) {
    return Status::IOError(path + ": missing MatrixMarket banner");
  }
  const auto banner = SplitTokens(line, " \t\r");
  if (banner.size() < 5 || banner[1] != "matrix" || banner[2] != "coordinate") {
    return Status::IOError(path + ": only 'matrix coordinate' is supported");
  }
  const bool pattern = banner[3] == "pattern";
  if (!pattern && banner[3] != "real" && banner[3] != "integer") {
    return Status::IOError(path + ": unsupported field type");
  }

  // Skip comments, read the size line.
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t entries = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    const auto tokens = SplitTokens(line, " \t\r");
    if (tokens.size() < 3) return Status::IOError(path + ": bad size line");
    try {
      rows = std::stoull(std::string(tokens[0]));
      cols = std::stoull(std::string(tokens[1]));
      entries = std::stoull(std::string(tokens[2]));
    } catch (const std::exception&) {
      return Status::IOError(path + ": unparsable size line");
    }
    break;
  }
  if (rows == 0 || rows != cols) {
    return Status::IOError(path + ": adjacency matrices must be square");
  }

  std::vector<Edge> edges;
  edges.reserve(entries);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    const auto tokens = SplitTokens(line, " \t\r");
    if (tokens.size() < 2) return Status::IOError(path + ": bad entry line");
    try {
      const uint64_t r = std::stoull(std::string(tokens[0]));
      const uint64_t c = std::stoull(std::string(tokens[1]));
      if (r == 0 || c == 0 || r > rows || c > cols) {
        return Status::OutOfRange(path + ": 1-based index out of range");
      }
      const double w =
          (!pattern && tokens.size() >= 3) ? std::stod(std::string(tokens[2])) : 1.0;
      edges.push_back(Edge{static_cast<NodeId>(r - 1), static_cast<NodeId>(c - 1),
                           static_cast<float>(w)});
    } catch (const std::exception&) {
      return Status::IOError(path + ": unparsable entry line");
    }
  }
  if (edges.size() != entries) {
    return Status::IOError(path + ": entry count mismatch with header");
  }
  // 'symmetric' stores one triangle; 'general' both. FromEdges symmetrizes
  // and merges duplicates either way for an undirected graph.
  return Graph::FromEdges(static_cast<NodeId>(rows), edges, /*undirected=*/true);
}

Status SaveMatrixMarket(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% written by omega\n";
  // Count the lower triangle (including any self-loops, which Graph drops).
  uint64_t entries = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId* nbrs = g.neighbors(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) entries += nbrs[i] <= v;
  }
  out << g.num_nodes() << ' ' << g.num_nodes() << ' ' << entries << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId* nbrs = g.neighbors(v);
    const float* wts = g.weights(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) {
      if (nbrs[i] <= v) {
        out << (v + 1) << ' ' << (nbrs[i] + 1) << ' ' << wts[i] << '\n';
      }
    }
  }
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t magic = kBinaryMagic;
  const uint64_t nodes = g.num_nodes();
  const uint64_t arcs = g.num_arcs();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&nodes), sizeof(nodes));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(g.neighbor_array().data()),
            static_cast<std::streamsize>(arcs * sizeof(NodeId)));
  out.write(reinterpret_cast<const char*>(g.weight_array().data()),
            static_cast<std::streamsize>(arcs * sizeof(float)));
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t magic = 0;
  uint64_t nodes = 0;
  uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&nodes), sizeof(nodes));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in || magic != kBinaryMagic) {
    return Status::IOError(path + ": not an omega binary graph");
  }
  std::vector<uint64_t> offsets(nodes + 1);
  std::vector<NodeId> neighbors(arcs);
  std::vector<float> weights(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(arcs * sizeof(NodeId)));
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(arcs * sizeof(float)));
  if (!in) return Status::IOError(path + ": truncated binary graph");

  // Rebuild through FromEdges to revalidate invariants.
  std::vector<Edge> edges;
  edges.reserve(arcs);
  for (NodeId v = 0; v < nodes; ++v) {
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      edges.push_back(Edge{v, neighbors[i], weights[i]});
    }
  }
  return Graph::FromEdges(static_cast<NodeId>(nodes), edges, /*undirected=*/false);
}

Status MutationStreamReader::Open(const std::string& path) {
  path_ = path;
  line_no_ = 0;
  in_.open(path);
  if (!in_) return Status::IOError("cannot open " + path);
  return Status::OK();
}

Result<size_t> MutationStreamReader::ReadBatch(size_t max_count,
                                               std::vector<Mutation>* out) {
  if (!in_.is_open()) return Status::InvalidArgument("reader is not open");
  size_t appended = 0;
  std::string line;
  while (appended < max_count && std::getline(in_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const auto tokens = SplitTokens(line, " \t\r,");
    if (tokens.empty()) continue;
    auto error = [&](const std::string& message) {
      return Status::IOError(path_ + ":" + std::to_string(line_no_) + ": " +
                             message);
    };

    Mutation m;
    size_t first = 0;
    const std::string op(tokens[0]);
    if (op == "a" || op == "+") {
      m.kind = MutationKind::kInsertEdge;
      first = 1;
    } else if (op == "d" || op == "-") {
      m.kind = MutationKind::kDeleteEdge;
      first = 1;
    } else if (op == "u") {
      m.kind = MutationKind::kUpdateWeight;
      first = 1;
    } else if (op.find_first_not_of("0123456789") != std::string::npos) {
      return error("unknown mutation op '" + op + "' (expected a, d, or u)");
    }
    if (tokens.size() < first + 2) {
      return error("expected '[a|d|u] src dst [weight]'");
    }
    try {
      const uint64_t src = std::stoull(std::string(tokens[first]));
      const uint64_t dst = std::stoull(std::string(tokens[first + 1]));
      if (src > UINT32_MAX || dst > UINT32_MAX) {
        return error("node id out of 32-bit range");
      }
      m.src = static_cast<NodeId>(src);
      m.dst = static_cast<NodeId>(dst);
      if (tokens.size() >= first + 3) {
        m.weight = static_cast<float>(std::stod(std::string(tokens[first + 2])));
      }
    } catch (const std::exception&) {
      return error("unparsable mutation line");
    }
    if (m.kind == MutationKind::kUpdateWeight && tokens.size() < first + 3) {
      return error("weight update needs an explicit weight");
    }
    out->push_back(m);
    ++appended;
  }
  return appended;
}

Result<std::vector<Mutation>> LoadMutationsText(const std::string& path) {
  MutationStreamReader reader;
  OMEGA_RETURN_NOT_OK(reader.Open(path));
  std::vector<Mutation> mutations;
  while (true) {
    OMEGA_ASSIGN_OR_RETURN(const size_t got, reader.ReadBatch(4096, &mutations));
    if (got == 0) break;
  }
  return mutations;
}

}  // namespace omega::graph
