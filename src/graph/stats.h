// Degree-distribution statistics used by Table I, EaTA's entropy measures,
// and the dataset analogues' skew validation.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace omega::graph {

/// Summary statistics of a graph's degree distribution.
struct DegreeStats {
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  uint32_t max_degree = 0;
  uint32_t distinct_degrees = 0;
  double mean_degree = 0.0;
  /// Shannon entropy of the degree-share distribution p_v = deg(v)/num_arcs,
  /// in nats. log(|V|) for a regular graph; lower means more skew.
  double degree_entropy = 0.0;
  /// degree_entropy / log(num_nodes) in [0, 1].
  double normalized_entropy = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// histogram[d] = number of nodes with degree d (d <= max_degree).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

}  // namespace omega::graph
