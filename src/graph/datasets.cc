#include "graph/datasets.h"

namespace omega::graph {

namespace {

std::vector<DatasetSpec> MakeRegistry() {
  // Scaled-down analogues: node scale chosen as the nearest power of two to
  // paper_nodes/1000, edge budget = paper_edges/1000. Heavier-tailed graphs
  // (the Twitter family) use a larger R-MAT `a` for stronger skew.
  std::vector<DatasetSpec> specs;

  specs.push_back(DatasetSpec{
      "PK", "soc-Pokec", 1630000, 44600000, 803,
      RmatParams{/*scale=*/11, /*num_edges=*/44600, 0.57, 0.19, 0.19, 0.05,
                 /*seed=*/1001, /*noise=*/0.1}});
  specs.push_back(DatasetSpec{
      "LJ", "soc-LiveJournal", 4850000, 85700000, 1641,
      RmatParams{/*scale=*/12, /*num_edges=*/85700, 0.57, 0.19, 0.19, 0.05,
                 /*seed=*/1002, /*noise=*/0.1}});
  specs.push_back(DatasetSpec{
      "OR", "com-Orkut", 3070000, 234470000, 2863,
      RmatParams{/*scale=*/12, /*num_edges=*/234470, 0.55, 0.19, 0.19, 0.07,
                 /*seed=*/1003, /*noise=*/0.1}});
  specs.push_back(DatasetSpec{
      "TW", "Twitter", 11320000, 127110000, 5373,
      RmatParams{/*scale=*/13, /*num_edges=*/127110, 0.63, 0.17, 0.15, 0.05,
                 /*seed=*/1004, /*noise=*/0.1}});
  specs.push_back(DatasetSpec{
      "TW-2010", "Twitter-2010", 41650000, 2410000000ULL, 15760,
      RmatParams{/*scale=*/15, /*num_edges=*/2410000, 0.63, 0.17, 0.15, 0.05,
                 /*seed=*/1005, /*noise=*/0.1}});
  specs.push_back(DatasetSpec{
      "FR", "com-Friendster", 65610000, 3610000000ULL, 3148,
      RmatParams{/*scale=*/16, /*num_edges=*/3610000, 0.55, 0.19, 0.19, 0.07,
                 /*seed=*/1006, /*noise=*/0.1}});
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kRegistry = MakeRegistry();
  return kRegistry;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name || spec.full_name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<Graph> LoadDataset(const DatasetSpec& spec) { return GenerateRmat(spec.rmat); }

Result<Graph> LoadDatasetByName(const std::string& name) {
  OMEGA_ASSIGN_OR_RETURN(DatasetSpec spec, FindDataset(name));
  return LoadDataset(spec);
}

}  // namespace omega::graph
