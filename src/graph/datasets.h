// Registry of the paper's evaluation datasets (Table I), synthesized at
// ~1/1000 scale.
//
// The real graphs (soc-Pokec, soc-LiveJournal, com-Orkut, Twitter,
// Twitter-2010, com-Friendster) are multi-GB downloads that are unavailable
// offline; each is replaced by an R-MAT analogue with the same node:edge
// ratio and comparable degree skew. The simulated machine's capacities are
// scaled by the same factor (see memsim/topology.h), so capacity-driven
// behaviour (e.g. DRAM-only OOM on TW-2010/FR) is preserved.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/rmat.h"

namespace omega::graph {

/// Descriptor of one registered dataset analogue.
struct DatasetSpec {
  std::string name;          ///< paper's short name, e.g. "LJ"
  std::string full_name;     ///< e.g. "soc-LiveJournal"
  uint64_t paper_nodes;      ///< |V| of the real graph
  uint64_t paper_edges;      ///< |E| of the real graph
  uint32_t paper_degrees;    ///< "#degrees" column of Table I
  RmatParams rmat;           ///< generator for the scaled analogue
};

/// All six datasets of Table I, ordered as in the paper.
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by short name ("PK", "LJ", "OR", "TW", "TW-2010", "FR").
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the scaled analogue graph for `spec`.
Result<Graph> LoadDataset(const DatasetSpec& spec);

/// Convenience: FindDataset + LoadDataset.
Result<Graph> LoadDatasetByName(const std::string& name);

}  // namespace omega::graph
