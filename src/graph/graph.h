// Canonical in-memory graph representation.
//
// A Graph is an adjacency structure built from an edge list: neighbors are
// deduplicated and sorted per node. Sparse-matrix formats (CSR, CSDB) and the
// embedding pipeline are built from this canonical form.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace omega::graph {

using NodeId = uint32_t;

/// A weighted edge. Weights default to 1.0 as in the paper (§III-A).
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;
};

/// Immutable adjacency-list graph.
class Graph {
 public:
  /// Builds a graph from an edge list.
  ///
  /// \param num_nodes number of nodes; all edge endpoints must be < num_nodes.
  /// \param edges     the edge list. Self-loops are dropped.
  /// \param undirected when true every edge is inserted in both directions.
  /// Duplicate (src, dst) pairs are merged; their weights are summed.
  static Result<Graph> FromEdges(NodeId num_nodes, const std::vector<Edge>& edges,
                                 bool undirected = true);

  NodeId num_nodes() const { return num_nodes_; }
  /// Number of stored arcs (2x the undirected edge count).
  uint64_t num_arcs() const { return neighbors_.size(); }

  uint32_t degree(NodeId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  const NodeId* neighbors(NodeId v) const { return neighbors_.data() + offsets_[v]; }
  const float* weights(NodeId v) const { return weights_.data() + offsets_[v]; }

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbor_array() const { return neighbors_; }
  const std::vector<float>& weight_array() const { return weights_; }

  uint32_t max_degree() const { return max_degree_; }

  /// Number of distinct degree values — the |Degree| of the CSDB size
  /// analysis (§III-A) and the "#degrees" column of the paper's Table I.
  uint32_t num_distinct_degrees() const;

  /// Returns a graph with nodes relabeled by `perm`: new id i corresponds to
  /// old id perm[i]. `perm` must be a permutation of [0, num_nodes).
  Result<Graph> Relabel(const std::vector<NodeId>& perm) const;

  /// Permutation that sorts nodes by non-increasing degree (stable), i.e. the
  /// node order CSDB's degree blocks require.
  std::vector<NodeId> DegreeDescendingOrder() const;

 private:
  Graph() = default;

  NodeId num_nodes_ = 0;
  uint32_t max_degree_ = 0;
  std::vector<uint64_t> offsets_;   // size num_nodes_+1
  std::vector<NodeId> neighbors_;  // size num_arcs
  std::vector<float> weights_;     // size num_arcs
};

}  // namespace omega::graph
