#include "prefetch/wofp.h"

#include <algorithm>
#include <unordered_map>

namespace omega::prefetch {

const char* PrefetcherTypeName(PrefetcherType type) {
  return type == PrefetcherType::kFrequencyBased ? "frequency" : "degree";
}

std::vector<uint32_t> ComputeInDegrees(const graph::CsdbMatrix& a) {
  std::vector<uint32_t> in_degrees(a.num_cols(), 0);
  for (graph::NodeId c : a.col_list()) in_degrees[c]++;
  return in_degrees;
}

PrefetcherType SelectPrefetcherType(const sched::Workload& w, uint32_t num_nodes,
                                    double eta) {
  if (w.num_rows == 0) return PrefetcherType::kDegreeBased;
  const double avg_nnz_per_row =
      static_cast<double>(w.nnz) / static_cast<double>(w.num_rows);
  return avg_nnz_per_row >= static_cast<double>(num_nodes) * eta
             ? PrefetcherType::kFrequencyBased
             : PrefetcherType::kDegreeBased;
}

std::unique_ptr<WofpPrefetcher> WofpPrefetcher::Build(
    const graph::CsdbMatrix& a, const sched::Workload& w,
    const std::vector<uint32_t>& in_degrees, const WofpOptions& options,
    memsim::MemorySystem* ms, memsim::WorkerCtx* ctx) {
  auto prefetcher = std::unique_ptr<WofpPrefetcher>(new WofpPrefetcher());
  prefetcher->ms_ = ms;
  prefetcher->placement_ = options.cache_placement;
  prefetcher->type_ = SelectPrefetcherType(w, a.num_cols(), options.eta);

  std::vector<ScoredKey> candidates;
  const auto& cols = a.col_list();
  // M = W_i * sigma (capacity reserved below; build the structures first).
  const size_t target_m =
      static_cast<size_t>(static_cast<double>(w.nnz) * options.sigma);
  if (prefetcher->type_ == PrefetcherType::kFrequencyBased) {
    // Dynamic column-frequency counting over the workload — the stream the
    // paper's back-end thread maintains with top-M eviction/insertion.
    StreamingTopM tracker(target_m);
    for (const sched::RowRange& range : w.ranges) {
      if (range.size() == 0) continue;
      for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
        for (uint32_t k = 0; k < cur.degree(); ++k) {
          tracker.Observe(cols[cur.ptr() + k]);
        }
      }
    }
    const TopMStore observed = tracker.Finalize(a.num_cols());
    candidates.assign(observed.entries().begin(), observed.entries().end());
  } else {
    // Static global in-degree ranking (the paper: "statically utilizes the
    // descending in-degree of the vertex to populate the prefetcher").
    // Cheaper to build — no workload scan — but slots can go to rows the
    // workload never touches.
    candidates.reserve(in_degrees.size());
    for (graph::NodeId c = 0; c < in_degrees.size(); ++c) {
      if (in_degrees[c] > 0) candidates.push_back(ScoredKey{c, in_degrees[c]});
    }
  }

  // M = W_i * sigma, halved until the DRAM reservation fits.
  size_t m = static_cast<size_t>(static_cast<double>(w.nnz) * options.sigma);
  m = std::min(m, candidates.size());
  while (m > 0) {
    const size_t bytes = m * 16;
    if (ms->Reserve(prefetcher->placement_, bytes).ok()) {
      prefetcher->reserved_bytes_ = bytes;
      break;
    }
    m /= 2;
  }
  prefetcher->store_ = TopMStore::Build(std::move(candidates), m, a.num_cols());

  if (options.charge_build && ctx != nullptr) {
    const memsim::Placement sparse_home{memsim::Tier::kPm,
                                        options.cache_placement.socket};
    if (prefetcher->type_ == PrefetcherType::kFrequencyBased) {
      // Frequency counting scans the workload's column list and maintains a
      // per-key counter in a hash structure — one bucket touch per element.
      // The back-end thread overlaps it with compute, but the memory traffic
      // still contends with the SpMM (this is the eta > 0 trade-off of
      // Fig. 19b).
      ms->ChargeAccess(ctx, sparse_home, memsim::MemOp::kRead,
                       memsim::Pattern::kSequential,
                       w.nnz * sizeof(graph::NodeId), 1);
      ms->ChargeAccess(ctx, prefetcher->placement_, memsim::MemOp::kWrite,
                       memsim::Pattern::kRandom, w.nnz * 64, w.nnz);
    }
    // Write the selected entries into the DRAM store, fetching each cached
    // dense value from PM once (the actual prefetch).
    ms->ChargeAccess(ctx, prefetcher->placement_, memsim::MemOp::kWrite,
                     memsim::Pattern::kRandom, prefetcher->store_.SimBytes(),
                     prefetcher->store_.size());
    ms->ChargeAccess(ctx, sparse_home, memsim::MemOp::kRead, memsim::Pattern::kRandom,
                     prefetcher->store_.size() * 64, prefetcher->store_.size());
  }
  return prefetcher;
}

uint64_t WofpPrefetcher::BytesPerHit() const {
  // Interpolate from ~cache-resident (16B: key + value probe) to full DRAM
  // lines plus hash overhead (96B) as the store outgrows the CPU caches.
  constexpr uint64_t kCacheResidentBytes = 16;
  constexpr uint64_t kDramBytes = 96;
  constexpr double kCpuCacheBytes = 512.0 * 1024;
  const double f = std::min(1.0, static_cast<double>(store_.SimBytes()) /
                                     kCpuCacheBytes);
  return kCacheResidentBytes +
         static_cast<uint64_t>(f * (kDramBytes - kCacheResidentBytes));
}

WofpPrefetcher::~WofpPrefetcher() {
  if (ms_ != nullptr && reserved_bytes_ > 0) {
    ms_->Release(placement_, reserved_bytes_);
  }
}

WofpCacheSet::WofpCacheSet(const graph::CsdbMatrix& a,
                           std::vector<sched::Workload> workloads,
                           WofpOptions options, const exec::Context& ctx)
    : a_(a),
      workloads_(std::move(workloads)),
      options_(options),
      ms_(ctx.ms()),
      in_degrees_(ComputeInDegrees(a)),
      caches_(workloads_.size()) {}

sparse::CacheFactory WofpCacheSet::Factory() {
  return [this](memsim::WorkerCtx* ctx,
                const sched::Workload& w) -> const sparse::DenseCacheView* {
    const size_t worker = static_cast<size_t>(ctx->worker);
    if (worker >= caches_.size()) return nullptr;
    WofpOptions opts = options_;
    // Pin each worker's cache in its own socket's DRAM.
    opts.cache_placement.socket = ctx->cpu_socket;
    caches_[worker] = WofpPrefetcher::Build(a_, w, in_degrees_, opts, ms_, ctx);
    return caches_[worker].get();
  };
}

}  // namespace omega::prefetch
