#include "prefetch/wofp.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace omega::prefetch {

const char* PrefetcherTypeName(PrefetcherType type) {
  return type == PrefetcherType::kFrequencyBased ? "frequency" : "degree";
}

PrefetcherType SelectPrefetcherType(const sched::Workload& w, uint32_t num_nodes,
                                    double eta) {
  if (w.num_rows == 0) return PrefetcherType::kDegreeBased;
  const double avg_nnz_per_row =
      static_cast<double>(w.nnz) / static_cast<double>(w.num_rows);
  return avg_nnz_per_row >= static_cast<double>(num_nodes) * eta
             ? PrefetcherType::kFrequencyBased
             : PrefetcherType::kDegreeBased;
}

std::unique_ptr<WofpPrefetcher> WofpPrefetcher::Build(
    const graph::CsdbMatrix& a, const sched::Workload& w,
    const std::vector<uint32_t>& in_degrees, const WofpOptions& options,
    memsim::MemorySystem* ms, memsim::WorkerCtx* ctx,
    buffer::BufferManager* frames) {
  auto prefetcher = std::unique_ptr<WofpPrefetcher>(new WofpPrefetcher());
  prefetcher->ms_ = ms;
  prefetcher->placement_ = options.cache_placement;
  if (frames == nullptr) {
    // No shared pool: own a private one so the store still allocates through
    // the BufferManager (device-capacity bound, η-rule hot set).
    prefetcher->own_frames_ = std::make_unique<buffer::BufferManager>(
        ms, buffer::BufferManager::Options{0, buffer::EvictionPolicy::kHotPinned});
    frames = prefetcher->own_frames_.get();
  }
  prefetcher->frames_ = frames;
  prefetcher->type_ = SelectPrefetcherType(w, a.num_cols(), options.eta);
  prefetcher->workload_nnz_ = w.nnz;

  std::vector<ScoredKey> candidates;
  const auto& cols = a.col_list();
  // M = W_i * sigma (capacity reserved below; build the structures first).
  const size_t target_m =
      static_cast<size_t>(static_cast<double>(w.nnz) * options.sigma);
  if (prefetcher->type_ == PrefetcherType::kFrequencyBased) {
    // Dynamic column-frequency counting over the workload — the stream the
    // paper's back-end thread maintains with top-M eviction/insertion.
    StreamingTopM tracker(target_m);
    for (const sched::RowRange& range : w.ranges) {
      if (range.size() == 0) continue;
      for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
        for (uint32_t k = 0; k < cur.degree(); ++k) {
          tracker.Observe(cols[cur.ptr() + k]);
        }
      }
    }
    const TopMStore observed = tracker.Finalize(a.num_cols());
    candidates.assign(observed.entries().begin(), observed.entries().end());
  } else {
    // Static global in-degree ranking (the paper: "statically utilizes the
    // descending in-degree of the vertex to populate the prefetcher").
    // Cheaper to build — no workload scan — but slots can go to rows the
    // workload never touches.
    candidates.reserve(in_degrees.size());
    for (graph::NodeId c = 0; c < in_degrees.size(); ++c) {
      if (in_degrees[c] > 0) candidates.push_back(ScoredKey{c, in_degrees[c]});
    }
  }

  // M = W_i * sigma, halved until the DRAM frame fits.
  size_t m = static_cast<size_t>(static_cast<double>(w.nnz) * options.sigma);
  m = std::min(m, candidates.size());
  while (m > 0) {
    const size_t bytes = m * 16;
    auto pin = frames->Pin(
        frames->UniqueKey(prefetcher->placement_.tier,
                          prefetcher->placement_.socket),
        bytes);
    if (pin.ok()) {
      prefetcher->slot_ = std::move(pin).value();
      // η rule: the top-m resident set is hot — never evicted under pool
      // pressure from other consumers.
      frames->MarkHot(prefetcher->slot_.key());
      break;
    }
    m /= 2;
  }
  prefetcher->store_ = TopMStore::Build(std::move(candidates), m, a.num_cols());

  if (options.charge_build && ctx != nullptr) {
    prefetcher->ReplayBuildCharges(ctx);
  }
  return prefetcher;
}

void WofpPrefetcher::ReplayBuildCharges(memsim::WorkerCtx* ctx) const {
  const memsim::Placement sparse_home{memsim::Tier::kPm, placement_.socket};
  if (type_ == PrefetcherType::kFrequencyBased) {
    // Frequency counting scans the workload's column list and maintains a
    // per-key counter in a hash structure — one bucket touch per element.
    // The back-end thread overlaps it with compute, but the memory traffic
    // still contends with the SpMM (this is the eta > 0 trade-off of
    // Fig. 19b).
    ms_->ChargeAccess(ctx, sparse_home, memsim::MemOp::kRead,
                      memsim::Pattern::kSequential,
                      workload_nnz_ * sizeof(graph::NodeId), 1);
    ms_->ChargeAccess(ctx, placement_, memsim::MemOp::kWrite,
                      memsim::Pattern::kRandom, workload_nnz_ * 64, workload_nnz_);
  }
  // Write the selected entries into the DRAM store, fetching each cached
  // dense value from PM once (the actual prefetch).
  ms_->ChargeAccess(ctx, placement_, memsim::MemOp::kWrite,
                    memsim::Pattern::kRandom, store_.SimBytes(), store_.size());
  ms_->ChargeAccess(ctx, sparse_home, memsim::MemOp::kRead,
                    memsim::Pattern::kRandom, store_.size() * 64, store_.size());
}

uint64_t WofpPrefetcher::BytesPerHit() const {
  // Interpolate from ~cache-resident (16B: key + value probe) to full DRAM
  // lines plus hash overhead (96B) as the store outgrows the CPU caches.
  constexpr uint64_t kCacheResidentBytes = 16;
  constexpr uint64_t kDramBytes = 96;
  constexpr double kCpuCacheBytes = 512.0 * 1024;
  const double f = std::min(1.0, static_cast<double>(store_.SimBytes()) /
                                     kCpuCacheBytes);
  return kCacheResidentBytes +
         static_cast<uint64_t>(f * (kDramBytes - kCacheResidentBytes));
}

WofpPrefetcher::~WofpPrefetcher() {
  if (slot_.valid()) {
    // The store dies with the prefetcher: unpin and drop the frame so the
    // capacity returns to the pool (and the simulated device) immediately.
    const buffer::PageKey key = slot_.key();
    slot_.Release();
    if (frames_ != nullptr) frames_->Evict(key);
  }
}

WofpCacheSet::WofpCacheSet(const graph::CsdbMatrix& a,
                           const sparse::SpmmPlan& plan, WofpOptions options,
                           const exec::Context& ctx)
    : a_(a), plan_(plan), options_(options), ms_(ctx.ms()),
      frames_(std::make_unique<buffer::BufferManager>(
          ctx.ms(), buffer::BufferManager::Options{
                        0, buffer::EvictionPolicy::kHotPinned})),
      caches_(plan.workloads().size()) {
  OMEGA_CHECK(plan.has_in_degrees())
      << "WofpCacheSet needs a plan built with in-degrees";
}

sparse::CacheFactory WofpCacheSet::Factory() {
  return [this](memsim::WorkerCtx* ctx,
                const sched::Workload& w) -> const sparse::DenseCacheView* {
    const size_t worker = static_cast<size_t>(ctx->worker);
    if (worker >= caches_.size()) return nullptr;
    if (caches_[worker] == nullptr) {
      WofpOptions opts = options_;
      // Pin each worker's cache in its own socket's DRAM.
      opts.cache_placement.socket = ctx->cpu_socket;
      // Host-side build only; the charges are replayed below so that every
      // call — first or repeated — pays the same simulated warm-up.
      caches_[worker] = WofpPrefetcher::Build(a_, w, plan_.in_degrees(), opts,
                                              ms_, nullptr, frames_.get());
    }
    if (options_.charge_build) caches_[worker]->ReplayBuildCharges(ctx);
    return caches_[worker].get();
  };
}

CacheProbeResult ProbeCacheTier(memsim::MemorySystem* ms,
                                memsim::Placement cache_placement,
                                int max_retries, uint64_t fault_stream,
                                uint64_t* site) {
  CacheProbeResult result;
  if (!ms->faults_enabled()) return result;

  // A short burst of cache-line-sized random reads — representative of the
  // gather-intercept hits the prefetcher will serve.
  constexpr size_t kProbeBytes = 4096;
  constexpr size_t kProbeAccesses = 64;
  memsim::FaultInjector& faults = ms->faults();
  const uint64_t probe_site = (*site)++;
  for (int attempt = 0;; ++attempt) {
    const memsim::MemorySystem::FaultDraw draw = ms->TryAccessSeconds(
        cache_placement, std::max(0, cache_placement.socket),
        memsim::MemOp::kRead, memsim::Pattern::kRandom, kProbeBytes,
        kProbeAccesses, 1, fault_stream, probe_site,
        static_cast<uint32_t>(attempt));
    result.seconds += draw.seconds;
    if (draw.kind == memsim::FaultKind::kNone ||
        draw.kind == memsim::FaultKind::kTransientStall) {
      return result;  // stalls self-recover inside the draw
    }
    if (attempt < max_retries) {
      faults.CountRetried();
      continue;
    }
    // The tier keeps faulting: report unhealthy so the caller degrades to
    // PM-resident gathers without the cache.
    faults.CountDegraded();
    result.healthy = false;
    return result;
  }
}

}  // namespace omega::prefetch
