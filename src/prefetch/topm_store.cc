#include "prefetch/topm_store.h"

#include <algorithm>

namespace omega::prefetch {

TopMStore TopMStore::Build(std::vector<ScoredKey> candidates, size_t m,
                           uint32_t universe) {
  TopMStore store;
  store.bitmap_.assign(universe, 0);
  if (candidates.empty() || m == 0) return store;

  m = std::min(m, candidates.size());
  auto better = [](const ScoredKey& a, const ScoredKey& b) {
    return a.score != b.score ? a.score > b.score : a.key < b.key;
  };
  std::nth_element(candidates.begin(), candidates.begin() + (m - 1), candidates.end(),
                   better);
  candidates.resize(m);
  std::sort(candidates.begin(), candidates.end(), better);

  store.entries_ = std::move(candidates);
  for (const ScoredKey& e : store.entries_) {
    if (e.key < universe) store.bitmap_[e.key] = 1;
  }
  return store;
}

TopMStore TopMStore::BuildFromScores(const std::vector<uint64_t>& scores,
                                     size_t m) {
  std::vector<ScoredKey> candidates;
  candidates.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    candidates.push_back(ScoredKey{static_cast<graph::NodeId>(i), scores[i]});
  }
  return Build(std::move(candidates), m, static_cast<uint32_t>(scores.size()));
}

uint64_t TopMStore::MinScore() const {
  return entries_.empty() ? 0 : entries_.back().score;
}

TopMStore StreamingTopM::Finalize(uint32_t universe) const {
  std::vector<ScoredKey> candidates;
  candidates.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    candidates.push_back(ScoredKey{key, count});
  }
  return TopMStore::Build(std::move(candidates), capacity_, universe);
}

}  // namespace omega::prefetch
