// WoFP — the Workload Feature-aware Prefetcher (§III-C).
//
// For each workload allocated by EaTA, WoFP pins the most valuable rows of
// the dense operand in DRAM so the SpMM gather stream hits DRAM instead of
// PM. The prefetcher type is chosen per workload by the paper's rule
//     W_i / Rows_i >= |V| * eta  ->  frequency-based (count column-index
//                                    occurrences within the workload),
//     otherwise                  ->  degree-based (use the vertex in-degree
//                                    as a static popularity proxy),
// and its capacity is M = W_i * sigma entries.

#pragma once

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "graph/csdb.h"
#include "memsim/memory_system.h"
#include "omega/exec_context.h"
#include "prefetch/topm_store.h"
#include "sched/workload.h"
#include "sparse/spmm.h"
#include "sparse/spmm_plan.h"

namespace omega::prefetch {

enum class PrefetcherType { kFrequencyBased, kDegreeBased };

const char* PrefetcherTypeName(PrefetcherType type);

struct WofpOptions {
  /// eta: prefetcher-type selection threshold (Fig. 19b). The workload is
  /// "dense enough" for frequency counting when avg nnz/row >= |V| * eta.
  double eta = 2e-3;
  /// sigma: prefetch capacity fraction, M = W_i * sigma (Fig. 19c).
  double sigma = 0.10;
  /// Where cached entries live (per-socket DRAM under NaDP).
  memsim::Placement cache_placement{memsim::Tier::kDram, 0};
  /// Charge the build scan / store construction to the worker clock.
  bool charge_build = true;
};

/// A built prefetcher for one workload; implements the gather-intercept
/// interface consumed by the SpMM kernels.
class WofpPrefetcher final : public sparse::DenseCacheView {
 public:
  /// Builds the prefetcher for workload `w` of matrix `a`.
  ///
  /// `in_degrees[c]` is the in-degree of column c (for symmetric adjacency
  /// matrices this equals the row degree; see ComputeInDegrees). Build cost —
  /// the workload scan and the store writes — is charged to `ctx` when
  /// options.charge_build is set. If DRAM cannot hold M entries the capacity
  /// is halved until the reservation fits (possibly 0 entries).
  ///
  /// The store's DRAM frame is pinned through `frames` (marked hot: the η
  /// rule's resident set survives pool churn); with a null `frames` the
  /// prefetcher owns a private single-frame pool, so placement always goes
  /// through a BufferManager.
  static std::unique_ptr<WofpPrefetcher> Build(const graph::CsdbMatrix& a,
                                               const sched::Workload& w,
                                               const std::vector<uint32_t>& in_degrees,
                                               const WofpOptions& options,
                                               memsim::MemorySystem* ms,
                                               memsim::WorkerCtx* ctx,
                                               buffer::BufferManager* frames = nullptr);

  ~WofpPrefetcher() override;

  WofpPrefetcher(const WofpPrefetcher&) = delete;
  WofpPrefetcher& operator=(const WofpPrefetcher&) = delete;

  bool Contains(graph::NodeId col) const override { return store_.Contains(col); }
  memsim::Placement placement() const override { return placement_; }

  /// Re-issues the exact simulated charge sequence of the build — the
  /// frequency scan (when applicable) followed by the store writes and PM
  /// fetches — on `ctx`'s clock. Build() calls this once when charging is
  /// enabled; a reused plan calls it per execute so that the simulated clock
  /// pays the warm-up on every call exactly as per-call planning does, even
  /// though the host-side store is built only once (DESIGN.md's two-clock
  /// contract).
  void ReplayBuildCharges(memsim::WorkerCtx* ctx) const;

  /// Hit cost grows with store size: small stores stay CPU-cache resident,
  /// oversized ones pay full DRAM lines plus hashmap probing.
  uint64_t BytesPerHit() const override;

  PrefetcherType type() const { return type_; }
  const TopMStore& store() const { return store_; }

 private:
  WofpPrefetcher() = default;

  TopMStore store_;
  PrefetcherType type_ = PrefetcherType::kDegreeBased;
  memsim::Placement placement_{memsim::Tier::kDram, 0};
  memsim::MemorySystem* ms_ = nullptr;
  /// Fallback pool when Build() is given no shared one; declared before
  /// slot_ so the pin is released before its manager dies.
  std::unique_ptr<buffer::BufferManager> own_frames_;
  buffer::BufferManager* frames_ = nullptr;  ///< pool holding slot_
  buffer::PinHandle slot_;                   ///< the store's hot DRAM frame
  uint64_t workload_nnz_ = 0;  ///< W_i of the workload built for (for replay)
};

/// In-degree of every column of `a`. Forwards to the canonical
/// sparse::ComputeInDegrees — plans own the array; pass it by reference.
inline std::vector<uint32_t> ComputeInDegrees(const graph::CsdbMatrix& a) {
  return sparse::ComputeInDegrees(a);
}

/// Decides the prefetcher type for a workload by the paper's eta rule.
PrefetcherType SelectPrefetcherType(const sched::Workload& w, uint32_t num_nodes,
                                    double eta);

/// Outcome of a fault probe against the prefetcher's cache tier.
struct CacheProbeResult {
  double seconds = 0.0;   ///< simulated cost of the probe incl. retries
  bool healthy = true;    ///< false: the tier kept faulting; drop the cache
};

/// Probes the WoFP cache tier with a short random-read burst before a run
/// uses it, retrying faulted probes up to `max_retries` times. Only
/// meaningful under an enabled fault plan (otherwise returns {0, true} with
/// no charge). A probe that keeps faulting marks the tier unhealthy — the
/// engine reacts by dropping the cache and falling back to PM-resident
/// gathers. The drop-causing final fault is counted degraded; recovered
/// probes count retried. `site` is a caller-owned cursor advanced per probe.
CacheProbeResult ProbeCacheTier(memsim::MemorySystem* ms,
                                memsim::Placement cache_placement,
                                int max_retries, uint64_t fault_stream,
                                uint64_t* site);

/// Owns one prefetcher per workload and exposes the CacheFactory the parallel
/// SpMM driver consumes. The workloads and in-degree array are borrowed from
/// the plan (which must outlive the set). Each worker's prefetcher is built
/// on its first factory call and reused on later SpMMs; the build charges are
/// replayed on every call, so a reused set is simulation-identical to
/// rebuilding per call. Thread-safe: slot w is only touched by worker w, and
/// the SpMM driver's barrier orders calls across phases.
class WofpCacheSet {
 public:
  /// `plan` must have been built with in-degrees (SpmmPlan::Build's
  /// with_in_degrees) so degree-based prefetchers can rank columns.
  WofpCacheSet(const graph::CsdbMatrix& a, const sparse::SpmmPlan& plan,
               WofpOptions options, const exec::Context& ctx);

  /// Factory for sparse::ParallelSpmm. Builds lazily on the worker thread
  /// (host cost only), then replays the build charges per call so the
  /// construction cost lands on the right simulated clock every time.
  sparse::CacheFactory Factory();

  /// Prefetcher built for worker `w` (nullptr before the phase ran).
  const WofpPrefetcher* Get(size_t worker) const { return caches_[worker].get(); }

 private:
  const graph::CsdbMatrix& a_;
  const sparse::SpmmPlan& plan_;
  WofpOptions options_;
  memsim::MemorySystem* ms_;
  /// Shared frame pool of the set's stores; declared before caches_ so every
  /// prefetcher's pin is released before the pool dies.
  std::unique_ptr<buffer::BufferManager> frames_;
  std::vector<std::unique_ptr<WofpPrefetcher>> caches_;
};

}  // namespace omega::prefetch
