// Top-M key/value store — the data structure backing WoFP (§III-C, Fig. 8).
//
// Maps dense-matrix row indices (keys) to prefetch metadata (score: access
// frequency or vertex in-degree). Construction selects the M highest-scored
// keys; membership queries are O(1) via a bitmap over the column id space,
// which is what the SpMM inner loop consults per gather.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace omega::prefetch {

/// One candidate entry.
struct ScoredKey {
  graph::NodeId key = 0;
  uint64_t score = 0;
};

/// Streaming top-M frequency tracker — the dynamic counting structure the
/// paper's frequency-based prefetcher maintains in a back-end thread
/// ("entails eviction and insertion operations for objects in the Top-M").
/// Observe() counts occurrences; Finalize() materializes the current top-M
/// into a TopMStore. Exact counts (hashmap) with lazy selection.
class StreamingTopM {
 public:
  explicit StreamingTopM(size_t capacity) : capacity_(capacity) {}

  void Observe(graph::NodeId key) { counts_[key]++; }

  /// Number of distinct keys observed so far.
  size_t DistinctKeys() const { return counts_.size(); }

  /// Total observations.
  uint64_t TotalObservations() const {
    uint64_t total = 0;
    for (const auto& [key, count] : counts_) total += count;
    return total;
  }

  /// Current count of a key (0 if unseen).
  uint64_t CountOf(graph::NodeId key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Builds the top-`capacity` store over `universe` (see TopMStore::Build).
  class TopMStore Finalize(uint32_t universe) const;

 private:
  size_t capacity_;
  std::unordered_map<graph::NodeId, uint64_t> counts_;
};

class TopMStore {
 public:
  TopMStore() = default;

  /// Selects the `m` highest-scored candidates (ties broken by smaller key
  /// for determinism). `universe` is the column id space size for the bitmap.
  static TopMStore Build(std::vector<ScoredKey> candidates, size_t m,
                         uint32_t universe);

  /// Convenience for dense per-key scores: candidate key i scores scores[i],
  /// universe = scores.size() (the serving hot-set selection).
  static TopMStore BuildFromScores(const std::vector<uint64_t>& scores,
                                   size_t m);

  bool Contains(graph::NodeId key) const {
    return key < bitmap_.size() && bitmap_[key] != 0;
  }

  size_t size() const { return entries_.size(); }
  const std::vector<ScoredKey>& entries() const { return entries_; }

  /// Smallest score admitted; 0 when empty (used by eviction tests).
  uint64_t MinScore() const;

  /// Simulated bytes the store occupies in DRAM: key (4) + cached dense value
  /// slot (4) + score (8) per entry, as in Fig. 8's key-value layout.
  size_t SimBytes() const { return entries_.size() * 16; }

 private:
  std::vector<ScoredKey> entries_;
  std::vector<uint8_t> bitmap_;
};

}  // namespace omega::prefetch
