// Column-panel SpMM compute kernels (host arithmetic only, no memsim).
//
// The per-column kernels in spmm.cc walk the whole sparse row list once per
// dense column: every nonzero's (col, val) pair is re-loaded d times and pays
// one scalar gather per load. The panel kernels here process the dense
// operand in panels of kPanelCols columns instead: one index/value load per
// nonzero is amortized across the panel's register-resident accumulators, so
// the sparse stream shrinks by kPanelCols x and the gather feeds kPanelCols
// FMAs. The CSDB variant additionally iterates degree blocks
// (CsdbMatrix::BlocksInRange) so the inner trip count is a per-block constant
// and short rows (deg <= 4) run fully unrolled — the branch-predictable
// short-row path the degree-descending layout exists for (§III-A).
//
// Numerics policy (DESIGN.md "SpMM column-panel kernels"): every output
// element C(r, t) is reduced over its row's nonzeros in ascending k with a
// single accumulator, and all paths inside this translation unit — vector
// full panel, scalar tail panel, degree-specialized unrolls — round
// identically (explicit FMA everywhere when the TU is compiled with AVX2+FMA
// under OMEGA_SPMM_SIMD, plain multiply-add everywhere otherwise; the TU is
// built with -ffp-contract=off so the compiler cannot mix the two). An
// element therefore lands on the same bits no matter how the column range is
// sliced, which is what keeps embeddings bit-identical across thread counts
// when NaDP/ASL shift panel boundaries.
//
// These kernels never touch the simulator: charging stays in spmm.cc's
// ChargeWorkload* functions and is byte-identical to the per-column era.

#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/csdb.h"
#include "graph/csr.h"
#include "linalg/dense_matrix.h"

namespace omega::sparse::kernels {

/// Dense columns per panel: 8 register-resident accumulators — one AVX2
/// vector in the SIMD variant, a compiler-unrolled float[8] in the scalar
/// fallback.
inline constexpr size_t kPanelCols = 8;

/// True when this build compiled the panel TU with the AVX2+FMA variant
/// (OMEGA_SPMM_SIMD on a supporting toolchain).
bool SpmmSimdEnabled();

/// C[r, t] = sum_k A(r, :) * B(:, t) for rows [row_begin, row_end) of the
/// CSDB matrix and columns [col_begin, col_end) (caller pre-clamps both).
/// Best available variant: SIMD when compiled in, scalar panels otherwise.
void CsdbPanelSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                   linalg::DenseMatrix* c, uint32_t row_begin, uint32_t row_end,
                   size_t col_begin, size_t col_end);

/// Scalar-panel variant, always compiled — the fallback the SIMD path is
/// tested against (bit-identical under this TU's rounding policy).
void CsdbPanelSpmmScalar(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                         linalg::DenseMatrix* c, uint32_t row_begin,
                         uint32_t row_end, size_t col_begin, size_t col_end);

/// CSR flavors of the same panel kernels.
void CsrPanelSpmm(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                  linalg::DenseMatrix* c, uint32_t row_begin, uint32_t row_end,
                  size_t col_begin, size_t col_end);

void CsrPanelSpmmScalar(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                        linalg::DenseMatrix* c, uint32_t row_begin,
                        uint32_t row_end, size_t col_begin, size_t col_end);

// --- Serving-layer kernels (multi-key gather + dot-product scoring) ---------
//
// The serving batch path lives in this TU so it inherits the rounding policy
// above: GatherRows is a pure copy (trivially identical across variants), and
// ScoreRows reduces each row's dot product over ascending j with a single
// accumulator — fused exactly when the panel kernels are fused — so top-k
// scores are bit-identical whether a scan is served per-request or batched,
// vector or scalar.

/// out(j, i) = e(keys[i], j): gathers n embedding rows of the column-major
/// matrix `e` into the e.cols() x n matrix `out`, one key's vector per output
/// column (contiguous, ready to use as a query vector). `out` must be
/// pre-sized e.cols() x n. The SIMD variant reuses the panels' strided
/// _mm256_i32gather_ps with the same int32-stride guard.
void GatherRows(const linalg::DenseMatrix& e, const uint32_t* keys, size_t n,
                linalg::DenseMatrix* out);

void GatherRowsScalar(const linalg::DenseMatrix& e, const uint32_t* keys,
                      size_t n, linalg::DenseMatrix* out);

/// scores[c - row_begin] = sum_j e(c, j) * q[j] for c in [row_begin,
/// row_end); q holds e.cols() entries. The SIMD variant scores 8 consecutive
/// rows per iteration with sequential column loads (no gathers needed:
/// consecutive rows of a column-major matrix are adjacent).
void ScoreRows(const linalg::DenseMatrix& e, const float* q,
               uint32_t row_begin, uint32_t row_end, float* scores);

void ScoreRowsScalar(const linalg::DenseMatrix& e, const float* q,
                     uint32_t row_begin, uint32_t row_end, float* scores);

}  // namespace omega::sparse::kernels
