#include "sparse/semi_external.h"

#include <algorithm>

#include "buffer/staging.h"
#include "common/logging.h"

#include "sched/entropy.h"
#include "sparse/spmm_kernels.h"

namespace omega::sparse {

namespace {
constexpr uint64_t kSsdPageBytes = 4096;
}  // namespace

ParallelSpmmResult SemiExternalSpmm(const graph::CsrMatrix& a,
                                    const linalg::DenseMatrix& b,
                                    linalg::DenseMatrix* c,
                                    const SemiExternalOptions& options,
                                    const exec::Context& ctx_in) {
  const CsrSpmmPlan plan =
      CsrSpmmPlan::Build(a, options.num_threads, CsrSpmmPlan::Split::kEqualNnz);
  return SemiExternalSpmm(a, b, c, options, plan, ctx_in);
}

ParallelSpmmResult SemiExternalSpmm(const graph::CsrMatrix& a,
                                    const linalg::DenseMatrix& b,
                                    linalg::DenseMatrix* c,
                                    const SemiExternalOptions& options,
                                    const CsrSpmmPlan& plan,
                                    const exec::Context& ctx_in) {
  memsim::MemorySystem* ms = ctx_in.ms();
  ThreadPool* pool = ctx_in.pool();
  const int threads = options.num_threads;
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));
  OMEGA_CHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  OMEGA_CHECK(plan.Matches(a, threads, CsrSpmmPlan::Split::kEqualNnz))
      << "SemiExternalSpmm: stale plan";

  // Fraction of dense gathers that miss the DRAM-resident portion.
  const size_t dense_bytes = b.bytes() + c->bytes();
  double spill = 0.0;
  if (dense_bytes > options.dram_budget_bytes) {
    spill = 1.0 - static_cast<double>(options.dram_budget_bytes) / dense_bytes;
    spill = std::clamp(spill, 0.0, 0.95);
  }

  // Equal-nnz row partitions — prebuilt in the plan, alongside each part's
  // nnz/entropy metadata.
  const memsim::Placement ssd{memsim::Tier::kSsd, 0};
  const memsim::Placement dram{memsim::Tier::kDram, 0};

  ParallelSpmmResult result;
  result.thread_seconds.assign(threads, 0.0);
  result.thread_breakdowns.assign(threads, SpmmCostBreakdown{});
  memsim::ClockGroup clocks(threads);
  const size_t d = b.cols();

  // Host compute under dynamic row-block scheduling (no memsim state; each
  // element's ascending-k reduction is fixed inside the panel kernel, so the
  // result is bit-identical at any host thread count).
  {
    constexpr uint32_t kComputeRowBlock = 1024;
    pool->ParallelForDynamic(
        a.num_rows(), kComputeRowBlock,
        [&](size_t, size_t row_begin, size_t row_end) {
          kernels::CsrPanelSpmm(a, b, c, static_cast<uint32_t>(row_begin),
                                static_cast<uint32_t>(row_end), 0, d);
        });
  }

  // Simulated charging: one worker per equal-nnz part as before; the plan's
  // metadata was scanned in the same ascending-row order the per-call walk
  // used, so every charge is byte-identical.
  pool->RunOnAll([&](size_t worker) {
    if (worker >= static_cast<size_t>(threads)) return;
    const CsrPlanPart& part = plan.parts()[worker];
    const uint32_t row_begin = part.row_begin;
    const uint32_t row_end = part.row_end;
    memsim::WorkerCtx ctx;
    ctx.worker = static_cast<int>(worker);
    ctx.cpu_socket = ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
    ctx.active_threads = threads;
    ctx.clock = &clocks.clock(worker);
    SpmmCostBreakdown& bd = result.thread_breakdowns[worker];

    const uint64_t nnz = part.nnz;
    const uint64_t rows = row_end - row_begin;
    auto charge = [&](SpmmOp op, memsim::Placement p, memsim::MemOp mop,
                      memsim::Pattern pat, uint64_t bytes, uint64_t accesses) {
      const double s = ms->AccessSeconds(p, ctx.cpu_socket, mop, pat, bytes, accesses,
                                         ctx.active_threads);
      ctx.clock->Advance(s);
      bd.seconds[static_cast<int>(op)] += s;
    };

    // Sparse stream from SSD: SEM-SpMM processes the dense operand in
    // column blocks (16 columns per pass to bound its in-memory working
    // set), re-streaming the sparse matrix and its row pointers per block.
    const uint64_t column_passes = buffer::NumColumnPasses(d);
    charge(SpmmOp::kReadIndex, ssd, memsim::MemOp::kRead,
           memsim::Pattern::kSequential, column_passes * rows * 8, column_passes);
    charge(SpmmOp::kGetSparseNnz, ssd, memsim::MemOp::kRead,
           memsim::Pattern::kSequential, column_passes * nnz * 8, column_passes);
    // Dense gathers: Z-blended DRAM traffic for the resident fraction; the
    // spilled fraction pays SSD 4 KB page reads.
    const uint64_t total_gathers = nnz * d;
    const uint64_t spilled = static_cast<uint64_t>(spill * total_gathers);
    const uint64_t in_dram = total_gathers - spilled;
    const double z = sched::NormalizedEntropy(part.entropy, a.num_cols());
    const double gather_seconds =
        GatherSeconds(ms, ctx.cpu_socket, dram, z, in_dram, ctx.active_threads);
    ctx.clock->Advance(gather_seconds);
    bd.seconds[static_cast<int>(SpmmOp::kGetDenseNnz)] += gather_seconds;
    if (spilled > 0) {
      charge(SpmmOp::kGetDenseNnz, ssd, memsim::MemOp::kRead, memsim::Pattern::kRandom,
             spilled * kSsdPageBytes, spilled);
    }
    ctx.clock->Advance(ms->cost_model().ComputeSeconds(d * nnz * 2));
    bd.seconds[static_cast<int>(SpmmOp::kAccumulate)] +=
        ms->cost_model().ComputeSeconds(d * nnz * 2);
    charge(SpmmOp::kWriteResult, dram, memsim::MemOp::kWrite,
           memsim::Pattern::kSequential, rows * d * sizeof(float), 1);
  });

  uint64_t total_nnz = 0;
  for (int t = 0; t < threads; ++t) {
    result.thread_seconds[t] = clocks.clock(t).seconds();
    result.total_breakdown += result.thread_breakdowns[t];
    const CsrPlanPart& part = plan.parts()[t];
    if (part.row_end > part.row_begin) {
      total_nnz += a.RowEnd(part.row_end - 1) - a.RowBegin(part.row_begin);
    }
  }
  result.nnz_processed = total_nnz;
  result.phase_seconds = clocks.MaxSeconds();
  return result;
}

}  // namespace omega::sparse
