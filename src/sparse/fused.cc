#include "sparse/fused.h"

#include <algorithm>

#include "common/logging.h"

#include "sched/entropy.h"
#include "sparse/spmm_kernels.h"

namespace omega::sparse {

namespace {
constexpr uint64_t kLineBytes = 64;
}  // namespace

Result<ParallelSpmmResult> FusedMmSpmm(const graph::CsrMatrix& a,
                                       const linalg::DenseMatrix& b,
                                       linalg::DenseMatrix* c,
                                       const FusedMmOptions& options,
                                       const exec::Context& ctx_in) {
  const CsrSpmmPlan plan =
      CsrSpmmPlan::Build(a, options.num_threads, CsrSpmmPlan::Split::kEqualRows);
  return FusedMmSpmm(a, b, c, options, plan, ctx_in);
}

Result<ParallelSpmmResult> FusedMmSpmm(const graph::CsrMatrix& a,
                                       const linalg::DenseMatrix& b,
                                       linalg::DenseMatrix* c,
                                       const FusedMmOptions& options,
                                       const CsrSpmmPlan& plan,
                                       const exec::Context& ctx_in) {
  memsim::MemorySystem* ms = ctx_in.ms();
  ThreadPool* pool = ctx_in.pool();
  const int threads = options.num_threads;
  OMEGA_CHECK(pool != nullptr && pool->size() >= static_cast<size_t>(threads));
  OMEGA_CHECK(plan.Matches(a, threads, CsrSpmmPlan::Split::kEqualRows))
      << "FusedMmSpmm: stale plan";
  if (c->rows() != a.num_rows() || c->cols() != b.cols()) {
    return Status::InvalidArgument("FusedMmSpmm: result shape mismatch");
  }

  // In-memory only: the whole working set must fit in DRAM. The fused
  // embedding kernel holds both endpoint feature matrices, the output, and a
  // gradient/workspace block alongside the CSR structure.
  const size_t working_set =
      a.nnz() * 8 + a.IndexBytes() + 2 * b.bytes() + 2 * c->bytes();
  const size_t total_dram = ms->CapacityBytes(memsim::Tier::kDram) *
                            static_cast<size_t>(ms->topology().num_sockets());
  if (working_set > total_dram) {
    return Status::CapacityExceeded("FusedMM working set exceeds DRAM: " +
                                    std::to_string(working_set >> 20) + " MiB");
  }

  // OpenMP-static style equal-row chunks (nnz-oblivious) — prebuilt in the
  // plan, alongside each chunk's nnz/entropy metadata.
  const uint32_t rows_total = a.num_rows();

  const memsim::Placement dram{memsim::Tier::kDram, 0};
  ParallelSpmmResult result;
  result.thread_seconds.assign(threads, 0.0);
  result.thread_breakdowns.assign(threads, SpmmCostBreakdown{});
  memsim::ClockGroup clocks(threads);
  const size_t d = b.cols();

  // Host compute under dynamic row-block scheduling: any worker may grab any
  // block (power-law rows make static chunks skewed), and each element's
  // ascending-k reduction is fixed inside the panel kernel, so the result is
  // bit-identical at any host thread count. No memsim state is touched in
  // this phase.
  {
    constexpr uint32_t kComputeRowBlock = 1024;
    pool->ParallelForDynamic(
        rows_total, kComputeRowBlock,
        [&](size_t, size_t row_begin, size_t row_end) {
          kernels::CsrPanelSpmm(a, b, c, static_cast<uint32_t>(row_begin),
                                static_cast<uint32_t>(row_end), 0, d);
        });
  }

  // Simulated charging: one worker per static chunk as before; the plan's
  // metadata was scanned in the same ascending-row order the per-call walk
  // used, so every charge is byte-identical.
  pool->RunOnAll([&](size_t worker) {
    if (worker >= static_cast<size_t>(threads)) return;
    const CsrPlanPart& part = plan.parts()[worker];
    const uint32_t row_begin = part.row_begin;
    const uint32_t row_end = part.row_end;
    memsim::WorkerCtx ctx;
    ctx.worker = static_cast<int>(worker);
    ctx.cpu_socket = ms->topology().SocketOfWorker(static_cast<int>(worker), threads);
    ctx.active_threads = threads;
    ctx.clock = &clocks.clock(worker);
    SpmmCostBreakdown& bd = result.thread_breakdowns[worker];

    const uint64_t nnz = part.nnz;

    auto charge = [&](SpmmOp op, memsim::MemOp mop, memsim::Pattern pat,
                      uint64_t bytes, uint64_t accesses) {
      const double s = ms->AccessSeconds(dram, ctx.cpu_socket, mop, pat, bytes,
                                         accesses, ctx.active_threads);
      ctx.clock->Advance(s);
      bd.seconds[static_cast<int>(op)] += s;
    };

    const uint64_t rows = row_end - row_begin;
    // Fused pass: sparse streamed once; per element, all d dense values of
    // the gathered row are consumed (ceil(d*4/64) lines per distinct line
    // visit), result written row-by-row.
    charge(SpmmOp::kReadIndex, memsim::MemOp::kRead, memsim::Pattern::kSequential,
           rows * 8, 1);
    charge(SpmmOp::kGetSparseNnz, memsim::MemOp::kRead, memsim::Pattern::kSequential,
           nnz * 8, 1);
    // FusedMM's unified kernel evaluates SDDMM ⊙ A then SpMM in one pass:
    // per element it gathers the d-float feature rows of BOTH endpoints and
    // performs the semiring op + scaling + accumulation (~3 passes of
    // arithmetic).
    const uint64_t lines_per_gather =
        2 * ((d * sizeof(float) + kLineBytes - 1) / kLineBytes);
    const double z = sched::NormalizedEntropy(part.entropy, a.num_cols());
    const double gather_seconds =
        GatherSeconds(ms, ctx.cpu_socket, dram, z, nnz * lines_per_gather,
                      ctx.active_threads);
    ctx.clock->Advance(gather_seconds);
    bd.seconds[static_cast<int>(SpmmOp::kGetDenseNnz)] += gather_seconds;
    const double compute = ms->cost_model().ComputeSeconds(d * nnz * 6);
    ctx.clock->Advance(compute);
    bd.seconds[static_cast<int>(SpmmOp::kAccumulate)] += compute;
    charge(SpmmOp::kWriteResult, memsim::MemOp::kWrite, memsim::Pattern::kSequential,
           rows * d * sizeof(float), 1);
  });

  for (int t = 0; t < threads; ++t) {
    result.thread_seconds[t] = clocks.clock(t).seconds();
    result.total_breakdown += result.thread_breakdowns[t];
  }
  result.nnz_processed = a.nnz();
  result.phase_seconds = clocks.MaxSeconds();
  return result;
}

}  // namespace omega::sparse
