#include "sparse/pim_spmm.h"

#include <algorithm>
#include <cmath>

#include "memsim/sim_clock.h"

namespace omega::sparse {

namespace {

using memsim::MemOp;
using memsim::Pattern;
using memsim::Placement;
using memsim::Tier;

constexpr Placement kPimLink{Tier::kPim, 0};

/// Charges one degraded block at ordinary host SpMM cost on the controller
/// clock. A uniform-degree block of R rows has H = log(R).
void ChargeDegradedBlock(const graph::CsdbMatrix& a, uint64_t dense_cols,
                         const sched::HeteroBlock& hb,
                         const SpmmPlacements& host,
                         memsim::MemorySystem* ms, memsim::WorkerCtx* ctx) {
  CsdbChargeMeta meta;
  meta.rows = hb.row_end - hb.row_begin;
  meta.nnz = hb.nnz;
  meta.entropy_h = meta.rows > 0 ? std::log(static_cast<double>(meta.rows)) : 0.0;
  ChargeWorkloadCsdb(a, dense_cols, meta, host, ms, ctx);
}

}  // namespace

Result<PimSpmmResult> PimSpmm(const graph::CsdbMatrix& a,
                              const linalg::DenseMatrix& b,
                              linalg::DenseMatrix* c,
                              const sched::HeteroPlacement& placement,
                              const PimSpmmOptions& options,
                              memsim::MemorySystem* ms, ThreadPool* pool,
                              uint64_t fault_epoch) {
  PimSpmmResult result;
  if (!placement.any_pim()) return result;
  if (options.config.banks <= 0) {
    return Status::InvalidArgument("PimSpmm: placement offloads but banks == 0");
  }
  const size_t col_end = std::min(options.col_end, b.cols());
  const size_t col_begin = std::min(options.col_begin, col_end);
  const uint64_t l = col_end - col_begin;
  if (l == 0) return result;

  // --- Real arithmetic: the same panel kernels as the host path, on host
  // memory, split across the pool for wall clock only. Bit-identity across
  // policies is structural: every kernel reduces each output element in
  // ascending-k order with one accumulator regardless of the row split.
  {
    sched::Workload w;
    w.ranges = placement.pim_ranges;
    if (pool != nullptr && pool->size() > 1) {
      const size_t n = placement.pim_ranges.size();
      pool->ParallelFor(n, [&](size_t /*worker*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          sched::Workload part;
          part.ranges.push_back(placement.pim_ranges[i]);
          ComputeWorkloadCsdb(a, b, c, part, col_begin, col_end);
        }
      });
    } else {
      ComputeWorkloadCsdb(a, b, c, w, col_begin, col_end);
    }
  }

  // --- Simulated charges: one controller stream.
  memsim::SimClock clock;
  memsim::WorkerCtx ctx;
  ctx.worker = memsim::kPimControllerWorker;
  ctx.cpu_socket = 0;
  ctx.active_threads = 1;
  ctx.clock = &clock;
  ctx.fault_site = fault_epoch;

  auto Bracket = [&](double* bucket, auto&& fn) {
    const double before = clock.seconds();
    fn();
    *bucket += clock.seconds() - before;
  };

  // Broadcast: every byte of the dense operand's column block crosses the
  // link once (banks snoop the broadcast). When the resident block elements
  // squeeze MRAM, the operand streams through in passes — the bytes total is
  // pass-invariant, but each pass costs one more DMA handshake (the
  // `accesses` term), mirroring the PR6 staging arithmetic.
  uint64_t max_per_bank_elem_bytes = 0;
  for (const sched::HeteroBlock& hb : placement.blocks) {
    if (!hb.on_pim) continue;
    const uint64_t per_bank =
        ((hb.nnz + options.config.banks - 1) / options.config.banks) * 8;
    max_per_bank_elem_bytes = std::max(max_per_bank_elem_bytes, per_bank);
  }
  const uint64_t broadcast_bytes = static_cast<uint64_t>(a.num_cols()) * l * 4;
  const uint64_t bank_free =
      options.config.mram_bytes_per_bank > max_per_bank_elem_bytes
          ? options.config.mram_bytes_per_bank - max_per_bank_elem_bytes
          : 1;
  result.column_passes =
      std::max<uint64_t>(1, (broadcast_bytes + bank_free - 1) / bank_free);

  double front_seconds = 0.0;     // broadcast + ship (overlaps host panels)
  double readback_seconds = 0.0;  // serial drain

  bool broadcast_ok = true;
  Bracket(&front_seconds, [&] {
    const Status s = ms->ChargeAccessWithRetry(
        &ctx, kPimLink, MemOp::kWrite, Pattern::kSequential, broadcast_bytes,
        result.column_passes, options.retry);
    if (!s.ok()) {
      // The whole gang lost the operand: every offloaded block degrades.
      broadcast_ok = false;
      ms->faults().CountDegraded();
    }
  });

  for (const sched::HeteroBlock& hb : placement.blocks) {
    if (!hb.on_pim) continue;
    const uint32_t rows = hb.row_end - hb.row_begin;
    result.nnz_processed += hb.nnz;

    bool ok = broadcast_ok;
    if (ok) {
      // Ship the block's elements: col index (4B) + value (4B) per nnz.
      Bracket(&front_seconds, [&] {
        const Status s = ms->ChargeAccessWithRetry(
            &ctx, kPimLink, MemOp::kWrite, Pattern::kSequential, hb.nnz * 8, 1,
            options.retry);
        if (!s.ok()) {
          ok = false;
          ms->faults().CountDegraded();
        }
      });
    }
    if (ok) {
      // Bank-straggler MACs.
      const uint64_t rows_per_bank =
          (rows + static_cast<uint32_t>(options.config.banks) - 1) /
          options.config.banks;
      Bracket(&result.compute_seconds, [&] {
        clock.Advance(static_cast<double>(rows_per_bank) * hb.degree * 2 * l /
                      options.config.bank_ops_per_second);
      });
      // Read the partial panel back.
      Bracket(&readback_seconds, [&] {
        const Status s = ms->ChargeAccessWithRetry(
            &ctx, kPimLink, MemOp::kRead, Pattern::kSequential,
            static_cast<uint64_t>(rows) * l * 4, 1, options.retry);
        if (!s.ok()) {
          ok = false;
          ms->faults().CountDegraded();
        }
      });
    }
    if (ok) {
      // Merge: panels are disjoint row sets, a scatter-free stream into the
      // result tier.
      Bracket(&result.reduce_seconds, [&] {
        ms->ChargeAccess(&ctx, options.host.result, MemOp::kWrite,
                         Pattern::kSequential,
                         static_cast<uint64_t>(rows) * l * 4, 1);
      });
    } else {
      // The block re-runs on the host path (simulated); the arithmetic above
      // already produced its rows, so only the charge changes.
      ++result.degraded_blocks;
      Bracket(&result.reduce_seconds,
              [&] { ChargeDegradedBlock(a, l, hb, options.host, ms, &ctx); });
    }
  }

  // Pipeline front (broadcast + ship + bank compute) overlaps the host
  // panels; the drain (readback + merge + degraded fallbacks) is serial.
  result.transfer_seconds = front_seconds + readback_seconds;
  result.pipeline_seconds = front_seconds + result.compute_seconds;
  result.tail_seconds = readback_seconds + result.reduce_seconds;
  return result;
}

}  // namespace omega::sparse
