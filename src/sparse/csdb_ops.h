// Matrix operators over the CSDB format (§III-A: "multiplication, addition,
// subtraction, and transposition"), plus the value transforms the ProNE
// pipeline needs. Multiplication with a dense operand is in sparse/spmm.h.
//
// Operators that change the sparsity pattern (Add/Subtract of different
// patterns, Transpose of a non-symmetric matrix) re-sort the result's rows
// into degree-descending order as CSDB requires; the result's perm() maps its
// rows back to the operands' shared row-id space.

#pragma once

#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csdb.h"
#include "graph/csr.h"
#include "linalg/dense_matrix.h"
#include "memsim/memory_system.h"

namespace omega::sparse {

/// Result of a CSDB delta application (ApplyDelta below).
struct CsdbDeltaResult {
  graph::CsdbMatrix matrix;
  uint64_t touched_rows = 0;  ///< rows re-gathered from the new graph
  uint64_t reused_rows = 0;   ///< rows remapped from the old matrix
  double sim_seconds = 0.0;   ///< simulated cost charged (0 without a memsim)
};

/// Applies a graph delta to an existing CSDB matrix without a full rebuild.
/// `touched_nodes` are the nodes whose adjacency changed between the graph
/// `old_csdb` was built from and `new_graph` (a MutableGraph::Synchronize
/// delta's touched set). Untouched rows keep their gathered (col, value)
/// payload and are only remapped into the new degree-descending id space;
/// touched rows are re-gathered from `new_graph`. The result is byte-identical
/// to CsdbMatrix::FromGraph(new_graph) — same perm, metadata, col_list and
/// nnz_list — but its simulated cost scales with |touched| + remap traffic
/// instead of a full sort-and-gather.
Result<CsdbDeltaResult> ApplyDelta(const graph::CsdbMatrix& old_csdb,
                                   const graph::Graph& new_graph,
                                   const std::vector<graph::NodeId>& touched_nodes,
                                   memsim::MemorySystem* ms = nullptr,
                                   memsim::WorkerCtx* ctx = nullptr);

/// result = alpha * a + beta * b. Operands must share the same shape and be
/// indexed in the same id space.
Result<graph::CsdbMatrix> Add(const graph::CsdbMatrix& a, const graph::CsdbMatrix& b,
                              float alpha = 1.0f, float beta = 1.0f);

/// result = a - b.
Result<graph::CsdbMatrix> Subtract(const graph::CsdbMatrix& a,
                                   const graph::CsdbMatrix& b);

/// Transpose. Columns stay in the input's id space; rows are re-sorted into
/// degree-descending order (see file comment).
Result<graph::CsdbMatrix> Transpose(const graph::CsdbMatrix& a);

/// In-place value scaling: a *= alpha.
void ScaleValues(graph::CsdbMatrix* a, float alpha);

/// In-place elementwise transform v' = fn(row, col, v) over stored entries.
void ApplyElementwise(graph::CsdbMatrix* a,
                      const std::function<float(uint32_t, graph::NodeId, float)>& fn);

/// Row degree-sum vector d_r = sum_c a(r, c) of the stored values.
std::vector<double> RowSums(const graph::CsdbMatrix& a);

/// In-place row normalization a(r, c) /= row_sum(r)  (the D^-1 A operator).
/// Zero rows are left untouched.
void RowNormalize(graph::CsdbMatrix* a);

/// In-place symmetric normalization a(r, c) /= sqrt(rs(r) * rs(c)), where rs
/// is the row-sum vector (the D^-1/2 A D^-1/2 operator of spectral methods).
void SymmetricNormalize(graph::CsdbMatrix* a);

/// y = a * x (SpMV; no memsim charging — used by tests and small utilities).
Status SpMV(const graph::CsdbMatrix& a, const std::vector<float>& x,
            std::vector<float>* y);

/// Densifies (tests / reference checks only).
linalg::DenseMatrix ToDense(const graph::CsdbMatrix& a);

/// Converts to CSR, preserving the CSDB row order (used by the CSR-based
/// baseline engines).
Result<graph::CsrMatrix> ToCsr(const graph::CsdbMatrix& a);

/// Reference (uncharged) SpMM for correctness checks. A pool parallelizes the
/// row loop on the host via dynamic row blocks; each element's reduction
/// order is fixed, so the result is bit-identical at any thread count.
Status ReferenceSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                     linalg::DenseMatrix* c, ThreadPool* pool = nullptr);

}  // namespace omega::sparse
