// PIM-offloaded SpMM over CSDB degree blocks.
//
// Two-clock contract, same as every other kernel: the arithmetic runs for
// real on host memory — through the very same ComputeWorkloadCsdb panel
// kernels the host path uses, so a row's bits never depend on where the
// simulator placed it — while the charges model the PIM execution:
//
//   ship       one gang DMA of each offloaded block's col_list + nnz_list
//              (8B per element) over the host<->PIM link;
//   broadcast  the dense operand streamed to every bank once per column
//              pass (a hardware broadcast: the link carries each byte once,
//              banks snoop it simultaneously); when the resident elements
//              leave too little MRAM for the full operand, it is streamed in
//              slices, costing one extra DMA handshake per pass;
//   compute    bank-serial MACs: a block's rows are dealt round-robin to the
//              banks and each bank walks its rows serially, so the charge is
//              the straggler bank, ceil(rows/banks) * degree * 2 * cols ops
//              at the per-bank MAC rate;
//   readback   the partial row panels DMA'd back (each row is owned by
//              exactly one bank, so panels are disjoint);
//   merge      the host streams the panels into the result tier.
//
// All link transfers flow through ChargeAccessWithRetry on a single
// controller WorkerCtx (worker = kPimControllerWorker, so the draws own the
// kFaultStreamPim stream): a transfer that exhausts its retries degrades the
// whole block to the host charge path — the block's simulated cost becomes
// the ordinary host SpMM charge and the fault is bucketed as degraded —
// while the real output is untouched, because it was computed on the host
// all along.

#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csdb.h"
#include "linalg/dense_matrix.h"
#include "memsim/memory_system.h"
#include "sched/hetero_placement.h"
#include "sparse/spmm.h"

namespace omega::sparse {

struct PimSpmmOptions {
  /// The gang the placement was priced for (banks, MRAM, bank MAC rate).
  sched::PimConfig config;
  /// Host placements: `host` prices a degraded block's fallback charge,
  /// `host.result` receives the merged panels.
  SpmmPlacements host;
  memsim::FaultRetryPolicy retry;
  /// NaDP column block this execute covers (clamped to b.cols()).
  size_t col_begin = 0;
  size_t col_end = SIZE_MAX;
};

/// Simulated-cost breakdown of one PIM execute. `pipeline_seconds` (broadcast
/// + ship + bank compute) overlaps the host panels; `tail_seconds` (readback
/// + merge + degraded fallbacks) is serial after both sides finish.
struct PimSpmmResult {
  double transfer_seconds = 0.0;  ///< link DMA: broadcast + ship + readback
  double compute_seconds = 0.0;   ///< bank straggler MACs
  double reduce_seconds = 0.0;    ///< host merge + degraded fallback charges
  double pipeline_seconds = 0.0;
  double tail_seconds = 0.0;
  uint64_t nnz_processed = 0;
  uint64_t degraded_blocks = 0;  ///< blocks recharged at host cost
  uint64_t column_passes = 1;    ///< broadcast passes forced by MRAM pressure

  double TotalSeconds() const {
    return transfer_seconds + compute_seconds + reduce_seconds;
  }
};

/// Executes the offloaded side of `placement` (its pim_ranges) for real into
/// `c` and charges the PIM execution. `pool` parallelizes the host-side
/// arithmetic only (wall clock; the simulated charge is the single controller
/// stream regardless). Errors only on simulator misuse, never on injected
/// faults (those degrade per block).
Result<PimSpmmResult> PimSpmm(const graph::CsdbMatrix& a,
                              const linalg::DenseMatrix& b,
                              linalg::DenseMatrix* c,
                              const sched::HeteroPlacement& placement,
                              const PimSpmmOptions& options,
                              memsim::MemorySystem* ms,
                              ThreadPool* pool, uint64_t fault_epoch);

}  // namespace omega::sparse
