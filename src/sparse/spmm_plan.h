// Plan/execute split for the SpMM kernels (inspector-executor).
//
// ProNE calls the same SpMM on the same sparse structure dozens of times
// (tSVD power iterations + the Chebyshev recurrence). All of the inspector
// work — the EaTA entropy scan behind sched::Allocate, the column in-degree
// scan, the per-part nnz/entropy metadata of the CSR baselines — depends only
// on the matrix *structure*, never on the dense values, so it can be built
// once per (structure, thread count, allocator) and reused by every execute.
//
// Two-clock contract (DESIGN.md): a plan caches host-side structures only.
// Every simulated charge is still issued per execute, in the same order and
// with the same arguments as the per-call path, so reusing a plan changes
// host wall-clock but not one byte of simulated output.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csdb.h"
#include "graph/csr.h"
#include "sched/allocators.h"
#include "sched/workload.h"
#include "sparse/spmm.h"

namespace omega::sparse {

/// In-degree of every column of `a` (number of stored entries per column).
/// Canonical implementation — the prefetch layer forwards here.
std::vector<uint32_t> ComputeInDegrees(const graph::CsdbMatrix& a);

/// Structural identity of a sparse matrix — the invalidation key of every
/// plan. Pointer identity alone is unsafe (allocations are reused across the
/// embedder's stage-1/stage-2 matrices), so the key adds shape and sampled
/// column indices, mirroring the engine's CsrCache fingerprint. Two matrices
/// with equal keys have (with the usual sampling caveat) the same sparsity
/// structure, and plans depend on structure only.
struct SparseStructureKey {
  const void* col_data = nullptr;  ///< col_list / col_idx storage
  uint64_t nnz = 0;
  uint32_t rows = 0;
  uint32_t cols = 0;
  uint32_t first = 0;  ///< col sample at 0
  uint32_t mid = 0;    ///< col sample at nnz/2
  uint32_t last = 0;   ///< col sample at nnz-1
  /// Optional content fingerprint (FingerprintOf().combined). 0 = not
  /// computed; StructureOf never fills it — the dynamic path sets it where
  /// pointer+sample identity is too weak (delta-applied matrices reuse sizes
  /// and often allocator addresses).
  uint64_t block_fingerprint = 0;

  bool operator==(const SparseStructureKey& other) const = default;
};

SparseStructureKey StructureOf(const graph::CsdbMatrix& a);
SparseStructureKey StructureOf(const graph::CsrMatrix& a);

/// Per-row-block content fingerprint of a CSDB matrix: the rows are cut into
/// fixed stripes of `stripe_rows` CSDB rows and each stripe's structure
/// (degrees + column ids) is hashed separately. Two uses: `combined` extends
/// SparseStructureKey for the dynamic path, and comparing `stripes` between
/// the pre- and post-delta matrices yields the touched row blocks so plan
/// caches can invalidate only plans covering them.
struct RowBlockFingerprint {
  uint32_t stripe_rows = 0;
  std::vector<uint64_t> stripes;  ///< one structure hash per stripe
  std::vector<uint64_t> value_stripes;  ///< one value (nnz payload) hash per stripe
  uint64_t combined = 0;          ///< hash over all stripe structure hashes
};

RowBlockFingerprint FingerprintOf(const graph::CsdbMatrix& a,
                                  uint32_t stripe_rows = 4096);

/// Stripe indices whose structure hash differs between two fingerprints (all
/// stripes when the stripe widths or counts differ). Empty means the sparsity
/// structure is unchanged — a weight-only delta at most.
std::vector<uint32_t> TouchedStripes(const RowBlockFingerprint& a,
                                     const RowBlockFingerprint& b);

/// Reusable inspector state for the CSDB kernels: the allocator's workload
/// vectors (with entropy/scatter annotations) and, optionally, the column
/// in-degree array WoFP's degree-based prefetchers rank by.
class SpmmPlan {
 public:
  SpmmPlan() = default;

  static SpmmPlan Build(const graph::CsdbMatrix& a, sched::AllocatorKind kind,
                        const sched::AllocatorOptions& options,
                        bool with_in_degrees = false);

  bool valid() const { return threads_ > 0; }

  /// True when this plan was built for the same structure and planning
  /// inputs; false plans (default-constructed included) never match.
  bool Matches(const graph::CsdbMatrix& a, sched::AllocatorKind kind,
               const sched::AllocatorOptions& options,
               bool with_in_degrees = false) const;

  const std::vector<sched::Workload>& workloads() const { return workloads_; }
  const std::vector<uint32_t>& in_degrees() const { return in_degrees_; }
  bool has_in_degrees() const { return has_in_degrees_; }
  int num_threads() const { return threads_; }
  sched::AllocatorKind allocator() const { return kind_; }

  /// Per-workload cache-less charge metadata (the ChargeWorkloadCsdb walk,
  /// hoisted; same ascending-row scan order, so charges built from it are
  /// byte-identical). Cache-attached executes ignore it — hits depend on the
  /// cache's contents, so they must still walk per call.
  const std::vector<CsdbChargeMeta>& charge_meta() const { return charge_meta_; }

 private:
  SparseStructureKey structure_;
  sched::AllocatorKind kind_ = sched::AllocatorKind::kEntropyAware;
  int threads_ = 0;
  double beta_ = 0.0;
  bool has_in_degrees_ = false;
  std::vector<sched::Workload> workloads_;
  std::vector<CsdbChargeMeta> charge_meta_;
  std::vector<uint32_t> in_degrees_;
};

/// One thread's contiguous CSR row part with the pre-scanned metadata its
/// charges need: total nnz and the raw workload entropy H (Eq. 3, accumulated
/// in ascending-row order — the same AddRow order as the per-call scan, so
/// the Z-blended gather charge is bit-identical).
struct CsrPlanPart {
  uint32_t row_begin = 0;
  uint32_t row_end = 0;
  uint64_t nnz = 0;
  double entropy = 0.0;
};

/// Reusable inspector state for the CSR baselines (FusedMM, SEM-SpMM, the
/// ProNE/out-of-core engines): the static row partition plus per-part charge
/// metadata.
class CsrSpmmPlan {
 public:
  /// kEqualRows: OpenMP-static equal-count chunks. kEqualNnz: contiguous
  /// parts of ~equal nnz (sequential row consumption, last part absorbs the
  /// tail) — both exactly the partitions the per-call kernels produce.
  enum class Split { kEqualRows, kEqualNnz };

  CsrSpmmPlan() = default;

  static CsrSpmmPlan Build(const graph::CsrMatrix& a, int threads, Split split);

  bool valid() const { return threads_ > 0; }
  bool Matches(const graph::CsrMatrix& a, int threads, Split split) const;

  /// Exactly num_threads() entries (possibly empty parts).
  const std::vector<CsrPlanPart>& parts() const { return parts_; }
  int num_threads() const { return threads_; }
  Split split() const { return split_; }

 private:
  SparseStructureKey structure_;
  Split split_ = Split::kEqualRows;
  int threads_ = 0;
  std::vector<CsrPlanPart> parts_;
};

}  // namespace omega::sparse
