// Parallel SpMM — Algorithm 1 of the paper, executed for real on host memory
// while charging the simulated heterogeneous-memory machine.
//
// The per-thread cost decomposes into the paper's five operations (Fig. 7a):
//   1 read_index     — sequential reads of the row metadata;
//   2 get_sparse_nnz — sequential reads of col_list/nnz_list;
//   3 get_dense_nnz  — the dominant term: gathers from the dense operand at
//                      rows A.col_list[k]. Per the paper's cost model (Eqs.
//                      4-5), a workload's gather stream achieves a bandwidth
//                      between sequential and random in proportion to its
//                      normalized entropy Z(H): cost is the Z-weighted blend
//                      of the random-access and sequential-access charges.
//                      This is how the W_sca effect (Fig. 7b) enters the
//                      simulation;
//   4 accumulation   — multiply-accumulate arithmetic (the BW_CPU term);
//   5 write_result   — sequential writes of the column-major result.
//
// A DenseCacheView (implemented by WoFP) can intercept gathers: cached
// columns are charged against the cache's (DRAM) placement instead of the
// dense operand's (PM) placement.

#pragma once

#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "graph/csdb.h"
#include "graph/csr.h"
#include "linalg/dense_matrix.h"
#include "memsim/memory_system.h"
#include "omega/exec_context.h"
#include "sched/workload.h"

namespace omega::sparse {

class SpmmPlan;  // sparse/spmm_plan.h

/// nnz fetched per simulated second — the paper's SpMM throughput metric
/// (Fig. 16). Shared by every phase-result type that reports it.
inline double ThroughputNnzPerSec(uint64_t nnz_processed, double phase_seconds) {
  return phase_seconds > 0.0
             ? static_cast<double>(nnz_processed) / phase_seconds
             : 0.0;
}

/// The five cost components of Algorithm 1.
enum class SpmmOp {
  kReadIndex = 0,
  kGetSparseNnz = 1,
  kGetDenseNnz = 2,
  kAccumulate = 3,
  kWriteResult = 4,
};
inline constexpr int kNumSpmmOps = 5;

const char* SpmmOpName(SpmmOp op);

/// Simulated seconds attributed to each component.
struct SpmmCostBreakdown {
  double seconds[kNumSpmmOps] = {};

  double Total() const;
  SpmmCostBreakdown& operator+=(const SpmmCostBreakdown& other);
};

/// Where each operand of the SpMM lives on the simulated machine.
struct SpmmPlacements {
  memsim::Placement index{memsim::Tier::kDram, 0};   ///< CSDB/CSR row metadata
  memsim::Placement sparse{memsim::Tier::kPm, 0};    ///< col_list / nnz_list
  memsim::Placement dense{memsim::Tier::kPm, 0};     ///< dense operand B
  memsim::Placement result{memsim::Tier::kDram, 0};  ///< result matrix C
};

/// Read-only view of a software prefetch cache over the dense operand's rows
/// (WoFP, §III-C). Gathers whose column is Contained are charged against
/// `placement()` instead of the dense operand's placement.
class DenseCacheView {
 public:
  virtual ~DenseCacheView() = default;
  virtual bool Contains(graph::NodeId col) const = 0;
  virtual memsim::Placement placement() const = 0;
  /// Simulated bytes charged per served gather. Small stores are effectively
  /// CPU-cache-resident; large ones pay full DRAM lines plus hash overhead.
  virtual uint64_t BytesPerHit() const { return 64; }
};

/// Executes one thread's workload of A (CSDB) x B -> C and charges `ctx`.
/// C must be pre-sized to a.num_rows() x b.cols(); only rows in `w` and
/// columns in [col_begin, min(col_end, b.cols())) are written (NaDP assigns
/// each socket a column block). Returns the per-component simulated cost.
SpmmCostBreakdown ExecuteWorkloadCsdb(const graph::CsdbMatrix& a,
                                      const linalg::DenseMatrix& b,
                                      linalg::DenseMatrix* c,
                                      const sched::Workload& w,
                                      const SpmmPlacements& placements,
                                      memsim::MemorySystem* ms,
                                      memsim::WorkerCtx* ctx,
                                      const DenseCacheView* cache = nullptr,
                                      size_t col_begin = 0, size_t col_end = SIZE_MAX);

/// Host-only half of ExecuteWorkloadCsdb: computes C rows for the workload's
/// ranges and columns [col_begin, min(col_end, b.cols())) with no memsim
/// charging (col_begin is clamped to the clamped col_end, so any range is
/// safe). Dispatches to the column-panel kernels (sparse/spmm_kernels.h);
/// every output element is reduced in ascending-k order with one accumulator,
/// so the result is bit-identical no matter how the rows or columns are split
/// across workers — safe for dynamic scheduling and NaDP column blocks.
void ComputeWorkloadCsdb(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                         linalg::DenseMatrix* c, const sched::Workload& w,
                         size_t col_begin = 0, size_t col_end = SIZE_MAX);

/// The original per-column kernel (Algorithm 1's loop nesting verbatim), kept
/// as the oracle the panel kernels are tested and benchmarked against. Same
/// clamp and reduction order as ComputeWorkloadCsdb.
void ComputeWorkloadCsdbPerColumn(const graph::CsdbMatrix& a,
                                  const linalg::DenseMatrix& b,
                                  linalg::DenseMatrix* c, const sched::Workload& w,
                                  size_t col_begin = 0, size_t col_end = SIZE_MAX);

/// Pre-scanned charge metadata for one CSDB workload — everything
/// ChargeWorkloadCsdb derives from its per-call walk when no cache is
/// attached. Plans hoist this scan out of the execute path; passing the
/// values ScanChargeMetaCsdb produced yields byte-identical charges.
struct CsdbChargeMeta {
  uint64_t rows = 0;
  uint64_t nnz = 0;
  double entropy_h = 0.0;  ///< raw workload entropy H (Eq. 3), ascending rows
};

/// Walks the workload's row metadata in the same ascending-row order as
/// ChargeWorkloadCsdb and returns the scan results.
CsdbChargeMeta ScanChargeMetaCsdb(const graph::CsdbMatrix& a,
                                  const sched::Workload& w);

/// Charging-only half of ExecuteWorkloadCsdb: walks the workload's metadata
/// (degrees + cache membership) in the same row/element order as the fused
/// kernel and charges `ctx` exactly as ExecuteWorkloadCsdb would. Does not
/// read or write any dense value, so simulated seconds cannot depend on how
/// the host computed C.
SpmmCostBreakdown ChargeWorkloadCsdb(const graph::CsdbMatrix& a,
                                     uint64_t dense_cols, const sched::Workload& w,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx,
                                     const DenseCacheView* cache = nullptr);

/// Cache-less ChargeWorkloadCsdb from pre-scanned metadata: no per-call walk.
/// Charges are byte-identical to the walking overload with cache == nullptr
/// when `meta` came from ScanChargeMetaCsdb on the same workload. Cache runs
/// must keep walking — hits depend on the cache's current contents.
SpmmCostBreakdown ChargeWorkloadCsdb(const graph::CsdbMatrix& a,
                                     uint64_t dense_cols,
                                     const CsdbChargeMeta& meta,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx);

/// Simulated seconds for `touches` dense-operand gathers (64 bytes each)
/// whose stream has normalized workload entropy `z` in [0, 1]: the Z-weighted
/// blend of the random and sequential access charges (Eqs. 4-5). Updates the
/// traffic counters; the caller advances the worker clock.
double GatherSeconds(memsim::MemorySystem* ms, int cpu_socket,
                     memsim::Placement dense, double z, uint64_t touches,
                     int active_threads);

/// CSR flavor of the same kernel (used by the ProNE/CSR baselines). CSR pays
/// O(|V|) row-pointer reads from the sparse tier where CSDB's O(|degrees|)
/// metadata is DRAM-resident.
SpmmCostBreakdown ExecuteWorkloadCsr(const graph::CsrMatrix& a,
                                     const linalg::DenseMatrix& b,
                                     linalg::DenseMatrix* c, uint32_t row_begin,
                                     uint32_t row_end,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx,
                                     size_t col_begin = 0,
                                     size_t col_end = SIZE_MAX);

/// Host-only half of ExecuteWorkloadCsr (no memsim charging; fixed
/// ascending-k reduction order, so the result is bit-identical to the fused
/// kernel). Column range and clamp semantics are unified with the CSDB
/// kernel: col_end is clamped to b.cols(), then col_begin to col_end.
void ComputeWorkloadCsr(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                        linalg::DenseMatrix* c, uint32_t row_begin,
                        uint32_t row_end, size_t col_begin = 0,
                        size_t col_end = SIZE_MAX);

/// Per-column CSR oracle, mirroring ComputeWorkloadCsdbPerColumn.
void ComputeWorkloadCsrPerColumn(const graph::CsrMatrix& a,
                                 const linalg::DenseMatrix& b,
                                 linalg::DenseMatrix* c, uint32_t row_begin,
                                 uint32_t row_end, size_t col_begin = 0,
                                 size_t col_end = SIZE_MAX);

/// Charging-only half of ExecuteWorkloadCsr. `nnz` and `entropy_h` are the
/// part's pre-scanned metadata (a CsrPlanPart carries them); passing the same
/// values the per-call scan would produce yields byte-identical charges.
SpmmCostBreakdown ChargeWorkloadCsr(const graph::CsrMatrix& a,
                                    uint64_t dense_cols, uint32_t row_begin,
                                    uint32_t row_end, uint64_t nnz,
                                    double entropy_h,
                                    const SpmmPlacements& placements,
                                    memsim::MemorySystem* ms,
                                    memsim::WorkerCtx* ctx);

/// Outcome of a parallel SpMM phase.
struct ParallelSpmmResult {
  std::vector<double> thread_seconds;    ///< simulated time per worker
  std::vector<SpmmCostBreakdown> thread_breakdowns;
  SpmmCostBreakdown total_breakdown;     ///< summed across workers
  double phase_seconds = 0.0;            ///< max over workers (the straggler)
  uint64_t nnz_processed = 0;

  double ThroughputNnzPerSec() const {
    return sparse::ThroughputNnzPerSec(nnz_processed, phase_seconds);
  }
};

/// Builds (or reuses) a per-workload dense-row cache; return nullptr for no
/// prefetching. The returned view must stay alive for the duration of the
/// workload's execution (the factory owns it). The factory runs on the worker
/// and may charge its build cost against `ctx`.
using CacheFactory = std::function<const DenseCacheView*(memsim::WorkerCtx* ctx,
                                                         const sched::Workload& w)>;

/// Runs one SpMM A (CSDB) x B -> C with one worker per workload. Worker w is
/// bound to the socket given by the machine topology's block assignment. The
/// context must carry a pool with at least workloads.size() workers.
///
/// Internally two-phase: the host compute runs first under dynamic-chunk
/// scheduling (ThreadPool::ParallelForDynamic over fixed-size row blocks, so
/// a skewed workload no longer idles the other host threads), then the
/// simulated charging replays each workload on its own worker in the original
/// static order. Simulated seconds are therefore byte-identical to the old
/// fused kernel at any host thread count.
ParallelSpmmResult ParallelSpmm(const graph::CsdbMatrix& a,
                                const linalg::DenseMatrix& b,
                                linalg::DenseMatrix* c,
                                const std::vector<sched::Workload>& workloads,
                                const SpmmPlacements& placements,
                                const exec::Context& ctx,
                                const CacheFactory& cache_factory = nullptr);

/// Same, consuming a prebuilt SpmmPlan's workloads (defined with the plan in
/// sparse/spmm_plan.cc). Simulated charges are identical to the per-call
/// overload built from the same allocator inputs.
ParallelSpmmResult ParallelSpmm(const graph::CsdbMatrix& a,
                                const linalg::DenseMatrix& b,
                                linalg::DenseMatrix* c, const SpmmPlan& plan,
                                const SpmmPlacements& placements,
                                const exec::Context& ctx,
                                const CacheFactory& cache_factory = nullptr);

}  // namespace omega::sparse
