#include "sparse/spmm_plan.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "sched/entropy.h"
#include "sparse/spmm.h"

namespace omega::sparse {

std::vector<uint32_t> ComputeInDegrees(const graph::CsdbMatrix& a) {
  std::vector<uint32_t> in_degrees(a.num_cols(), 0);
  for (graph::NodeId c : a.col_list()) in_degrees[c]++;
  return in_degrees;
}

namespace {

SparseStructureKey MakeKey(const void* col_data, uint64_t nnz, uint32_t rows,
                           uint32_t cols, const graph::NodeId* samples) {
  SparseStructureKey key;
  key.col_data = col_data;
  key.nnz = nnz;
  key.rows = rows;
  key.cols = cols;
  if (nnz > 0) {
    key.first = samples[0];
    key.mid = samples[nnz / 2];
    key.last = samples[nnz - 1];
  }
  return key;
}

// FNV-1a over 32-bit words: cheap, deterministic, and good enough for
// change detection (collisions only weaken invalidation, never correctness
// of the numerics — a stale plan still recomputes charges per execute).
inline uint64_t HashWord(uint64_t h, uint32_t w) {
  h ^= w;
  return h * 0x100000001b3ull;
}

}  // namespace

RowBlockFingerprint FingerprintOf(const graph::CsdbMatrix& a,
                                  uint32_t stripe_rows) {
  RowBlockFingerprint fp;
  fp.stripe_rows = stripe_rows > 0 ? stripe_rows : 4096;
  const uint32_t rows = a.num_rows();
  const uint32_t stripes = rows == 0 ? 0 : (rows - 1) / fp.stripe_rows + 1;
  fp.stripes.assign(stripes, 0xcbf29ce484222325ull);
  fp.value_stripes.assign(stripes, 0xcbf29ce484222325ull);
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    const uint32_t s = cur.row() / fp.stripe_rows;
    uint64_t& h = fp.stripes[s];
    uint64_t& hv = fp.value_stripes[s];
    h = HashWord(h, cur.degree());
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      h = HashWord(h, cols[cur.ptr() + k]);
      uint32_t bits;
      std::memcpy(&bits, &vals[cur.ptr() + k], sizeof(bits));
      hv = HashWord(hv, bits);
    }
  }
  fp.combined = 0xcbf29ce484222325ull;
  fp.combined = HashWord(fp.combined, rows);
  fp.combined = HashWord(fp.combined, a.num_cols());
  for (const uint64_t h : fp.stripes) {
    fp.combined = HashWord(fp.combined, static_cast<uint32_t>(h));
    fp.combined = HashWord(fp.combined, static_cast<uint32_t>(h >> 32));
  }
  return fp;
}

std::vector<uint32_t> TouchedStripes(const RowBlockFingerprint& a,
                                     const RowBlockFingerprint& b) {
  std::vector<uint32_t> touched;
  if (a.stripe_rows != b.stripe_rows || a.stripes.size() != b.stripes.size()) {
    touched.resize(std::max(a.stripes.size(), b.stripes.size()));
    for (uint32_t s = 0; s < touched.size(); ++s) touched[s] = s;
    return touched;
  }
  for (uint32_t s = 0; s < a.stripes.size(); ++s) {
    if (a.stripes[s] != b.stripes[s]) touched.push_back(s);
  }
  return touched;
}

SparseStructureKey StructureOf(const graph::CsdbMatrix& a) {
  return MakeKey(a.col_list().data(), a.nnz(), a.num_rows(), a.num_cols(),
                 a.col_list().data());
}

SparseStructureKey StructureOf(const graph::CsrMatrix& a) {
  return MakeKey(a.col_idx().data(), a.nnz(), a.num_rows(), a.num_cols(),
                 a.col_idx().data());
}

SpmmPlan SpmmPlan::Build(const graph::CsdbMatrix& a, sched::AllocatorKind kind,
                         const sched::AllocatorOptions& options,
                         bool with_in_degrees) {
  OMEGA_CHECK(options.num_threads > 0);
  SpmmPlan plan;
  plan.structure_ = StructureOf(a);
  plan.kind_ = kind;
  plan.threads_ = options.num_threads;
  plan.beta_ = options.beta;
  plan.has_in_degrees_ = with_in_degrees;
  plan.workloads_ = sched::Allocate(a, kind, options);
  plan.charge_meta_.reserve(plan.workloads_.size());
  for (const sched::Workload& w : plan.workloads_) {
    plan.charge_meta_.push_back(ScanChargeMetaCsdb(a, w));
  }
  if (with_in_degrees) plan.in_degrees_ = ComputeInDegrees(a);
  return plan;
}

bool SpmmPlan::Matches(const graph::CsdbMatrix& a, sched::AllocatorKind kind,
                       const sched::AllocatorOptions& options,
                       bool with_in_degrees) const {
  return valid() && kind_ == kind && threads_ == options.num_threads &&
         beta_ == options.beta &&
         (has_in_degrees_ || !with_in_degrees) && structure_ == StructureOf(a);
}

CsrSpmmPlan CsrSpmmPlan::Build(const graph::CsrMatrix& a, int threads,
                               Split split) {
  OMEGA_CHECK(threads > 0);
  CsrSpmmPlan plan;
  plan.structure_ = StructureOf(a);
  plan.split_ = split;
  plan.threads_ = threads;
  plan.parts_.resize(threads);

  const uint32_t rows = a.num_rows();
  if (split == Split::kEqualRows) {
    // OpenMP-static equal-row chunks (nnz-oblivious), as in FusedMmSpmm and
    // the ProNE family's StaticCsrSpmm.
    const uint32_t chunk = (rows + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      plan.parts_[t].row_begin = std::min<uint32_t>(rows, t * chunk);
      plan.parts_[t].row_end =
          std::min<uint32_t>(rows, plan.parts_[t].row_begin + chunk);
    }
  } else {
    // Contiguous ~equal-nnz parts with sequential row consumption, as in
    // SemiExternalSpmm and the out-of-core engines.
    const uint64_t per = std::max<uint64_t>(1, a.nnz() / threads);
    uint32_t row = 0;
    for (int t = 0; t < threads; ++t) {
      plan.parts_[t].row_begin = row;
      uint64_t taken = 0;
      while (row < rows && (taken < per || taken == 0)) {
        taken += a.RowDegree(row);
        ++row;
      }
      if (t == threads - 1) row = rows;
      plan.parts_[t].row_end = row;
    }
  }

  for (CsrPlanPart& part : plan.parts_) {
    sched::EntropyAccumulator entropy;
    for (uint32_t j = part.row_begin; j < part.row_end; ++j) {
      const uint32_t deg = a.RowDegree(j);
      part.nnz += deg;
      entropy.AddRow(deg);
    }
    part.entropy = entropy.Entropy();
  }
  return plan;
}

bool CsrSpmmPlan::Matches(const graph::CsrMatrix& a, int threads,
                          Split split) const {
  return valid() && split_ == split && threads_ == threads &&
         structure_ == StructureOf(a);
}

}  // namespace omega::sparse
