#include "sparse/csdb_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace omega::sparse {

namespace {

// Rebuilds a CSDB matrix from per-row (col, val) lists given in a shared row
// id space, sorting rows into degree-descending order.
Result<graph::CsdbMatrix> FromRowLists(
    uint32_t num_rows, uint32_t num_cols,
    std::vector<std::vector<std::pair<graph::NodeId, float>>> rows) {
  std::vector<graph::NodeId> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](graph::NodeId x, graph::NodeId y) {
    return rows[x].size() > rows[y].size();
  });

  std::vector<uint32_t> degrees(num_rows);
  std::vector<graph::NodeId> col_list;
  std::vector<float> nnz_list;
  for (uint32_t i = 0; i < num_rows; ++i) {
    auto& row = rows[order[i]];
    std::sort(row.begin(), row.end());
    degrees[i] = static_cast<uint32_t>(row.size());
    for (const auto& [c, v] : row) {
      col_list.push_back(c);
      nnz_list.push_back(v);
    }
  }
  return graph::CsdbMatrix::FromParts(num_rows, num_cols, degrees,
                                      std::move(col_list), std::move(nnz_list),
                                      std::move(order));
}

// Expands a CSDB matrix into per-row lists in its own row id space.
std::vector<std::vector<std::pair<graph::NodeId, float>>> ToRowLists(
    const graph::CsdbMatrix& a) {
  std::vector<std::vector<std::pair<graph::NodeId, float>>> rows(a.num_rows());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    auto& row = rows[cur.row()];
    row.reserve(cur.degree());
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      row.emplace_back(cols[cur.ptr() + k], vals[cur.ptr() + k]);
    }
  }
  return rows;
}

}  // namespace

Result<graph::CsdbMatrix> Add(const graph::CsdbMatrix& a, const graph::CsdbMatrix& b,
                              float alpha, float beta) {
  if (a.num_rows() != b.num_rows() || a.num_cols() != b.num_cols()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  auto rows_a = ToRowLists(a);
  auto rows_b = ToRowLists(b);
  std::vector<std::vector<std::pair<graph::NodeId, float>>> merged(a.num_rows());
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    auto& ra = rows_a[r];
    auto& rb = rows_b[r];
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    auto& out = merged[r];
    size_t i = 0;
    size_t j = 0;
    while (i < ra.size() || j < rb.size()) {
      if (j >= rb.size() || (i < ra.size() && ra[i].first < rb[j].first)) {
        out.emplace_back(ra[i].first, alpha * ra[i].second);
        ++i;
      } else if (i >= ra.size() || rb[j].first < ra[i].first) {
        out.emplace_back(rb[j].first, beta * rb[j].second);
        ++j;
      } else {
        const float v = alpha * ra[i].second + beta * rb[j].second;
        if (v != 0.0f) out.emplace_back(ra[i].first, v);
        ++i;
        ++j;
      }
    }
  }
  return FromRowLists(a.num_rows(), a.num_cols(), std::move(merged));
}

Result<graph::CsdbMatrix> Subtract(const graph::CsdbMatrix& a,
                                   const graph::CsdbMatrix& b) {
  return Add(a, b, 1.0f, -1.0f);
}

Result<graph::CsdbMatrix> Transpose(const graph::CsdbMatrix& a) {
  std::vector<std::vector<std::pair<graph::NodeId, float>>> rows(a.num_cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      rows[cols[cur.ptr() + k]].emplace_back(cur.row(), vals[cur.ptr() + k]);
    }
  }
  return FromRowLists(a.num_cols(), a.num_rows(), std::move(rows));
}

void ScaleValues(graph::CsdbMatrix* a, float alpha) {
  for (float& v : a->mutable_nnz_list()) v *= alpha;
}

void ApplyElementwise(graph::CsdbMatrix* a,
                      const std::function<float(uint32_t, graph::NodeId, float)>& fn) {
  auto& vals = a->mutable_nnz_list();
  const auto& cols = a->col_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      const uint64_t idx = cur.ptr() + k;
      vals[idx] = fn(cur.row(), cols[idx], vals[idx]);
    }
  }
}

std::vector<double> RowSums(const graph::CsdbMatrix& a) {
  std::vector<double> sums(a.num_rows(), 0.0);
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    double s = 0.0;
    for (uint32_t k = 0; k < cur.degree(); ++k) s += vals[cur.ptr() + k];
    sums[cur.row()] = s;
  }
  return sums;
}

void RowNormalize(graph::CsdbMatrix* a) {
  const std::vector<double> sums = RowSums(*a);
  auto& vals = a->mutable_nnz_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    const double s = sums[cur.row()];
    if (s == 0.0) continue;
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      vals[cur.ptr() + k] = static_cast<float>(vals[cur.ptr() + k] / s);
    }
  }
}

void SymmetricNormalize(graph::CsdbMatrix* a) {
  const std::vector<double> sums = RowSums(*a);
  auto& vals = a->mutable_nnz_list();
  const auto& cols = a->col_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    const double sr = sums[cur.row()];
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      const double sc = sums[cols[cur.ptr() + k]];
      const double denom = std::sqrt(sr * sc);
      if (denom > 0.0) {
        vals[cur.ptr() + k] = static_cast<float>(vals[cur.ptr() + k] / denom);
      }
    }
  }
}

Status SpMV(const graph::CsdbMatrix& a, const std::vector<float>& x,
            std::vector<float>* y) {
  if (x.size() != a.num_cols()) return Status::InvalidArgument("SpMV: dim mismatch");
  y->assign(a.num_rows(), 0.0f);
  const graph::NodeId* cols = a.col_list().data();
  const float* vals = a.nnz_list().data();
  const float* xv = x.data();
  float* yv = y->data();
  // Degree blocks give the inner reduction a per-block constant trip count —
  // the same short-row specialization the panel SpMM kernels use; the
  // ascending-k order (and hence the result) is unchanged.
  for (auto blk = a.BlocksInRange(0, a.num_rows()); !blk.AtEnd(); blk.Next()) {
    const graph::CsdbMatrix::BlockSpan& s = blk.span();
    const uint32_t deg = s.degree;
    uint64_t ptr = s.ptr;
    for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += deg) {
      float acc = 0.0f;
      for (uint32_t k = 0; k < deg; ++k) {
        acc += vals[ptr + k] * xv[cols[ptr + k]];
      }
      yv[r] = acc;
    }
  }
  return Status::OK();
}

linalg::DenseMatrix ToDense(const graph::CsdbMatrix& a) {
  linalg::DenseMatrix m(a.num_rows(), a.num_cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      m.At(cur.row(), cols[cur.ptr() + k]) += vals[cur.ptr() + k];
    }
  }
  return m;
}

Result<graph::CsrMatrix> ToCsr(const graph::CsdbMatrix& a) {
  std::vector<uint64_t> row_ptr(a.num_rows() + 1, 0);
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    row_ptr[cur.row() + 1] = row_ptr[cur.row()] + cur.degree();
  }
  return graph::CsrMatrix::FromParts(a.num_rows(), a.num_cols(), std::move(row_ptr),
                                     a.col_list(), a.nnz_list());
}

Status ReferenceSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                     linalg::DenseMatrix* c, ThreadPool* pool) {
  if (b.rows() != a.num_cols()) {
    return Status::InvalidArgument("ReferenceSpmm: dim mismatch");
  }
  *c = linalg::DenseMatrix(a.num_rows(), b.cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  auto compute_rows = [&](uint32_t row_begin, uint32_t row_end) {
    for (size_t t = 0; t < b.cols(); ++t) {
      const float* bt = b.ColData(t);
      float* ct = c->ColData(t);
      for (auto cur = a.Rows(row_begin); cur.row() < row_end; cur.Next()) {
        float acc = 0.0f;
        for (uint32_t k = 0; k < cur.degree(); ++k) {
          acc += vals[cur.ptr() + k] * bt[cols[cur.ptr() + k]];
        }
        ct[cur.row()] = acc;
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && a.num_rows() >= 2048) {
    pool->ParallelForDynamic(a.num_rows(), /*chunk_size=*/1024,
                             [&](size_t, size_t begin, size_t end) {
                               compute_rows(static_cast<uint32_t>(begin),
                                            static_cast<uint32_t>(end));
                             });
  } else {
    compute_rows(0, a.num_rows());
  }
  return Status::OK();
}

}  // namespace omega::sparse
