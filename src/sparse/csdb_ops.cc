#include "sparse/csdb_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace omega::sparse {

namespace {

// Rebuilds a CSDB matrix from per-row (col, val) lists given in a shared row
// id space, sorting rows into degree-descending order.
Result<graph::CsdbMatrix> FromRowLists(
    uint32_t num_rows, uint32_t num_cols,
    std::vector<std::vector<std::pair<graph::NodeId, float>>> rows) {
  std::vector<graph::NodeId> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](graph::NodeId x, graph::NodeId y) {
    return rows[x].size() > rows[y].size();
  });

  std::vector<uint32_t> degrees(num_rows);
  std::vector<graph::NodeId> col_list;
  std::vector<float> nnz_list;
  for (uint32_t i = 0; i < num_rows; ++i) {
    auto& row = rows[order[i]];
    std::sort(row.begin(), row.end());
    degrees[i] = static_cast<uint32_t>(row.size());
    for (const auto& [c, v] : row) {
      col_list.push_back(c);
      nnz_list.push_back(v);
    }
  }
  return graph::CsdbMatrix::FromParts(num_rows, num_cols, degrees,
                                      std::move(col_list), std::move(nnz_list),
                                      std::move(order));
}

// Expands a CSDB matrix into per-row lists in its own row id space.
std::vector<std::vector<std::pair<graph::NodeId, float>>> ToRowLists(
    const graph::CsdbMatrix& a) {
  std::vector<std::vector<std::pair<graph::NodeId, float>>> rows(a.num_rows());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    auto& row = rows[cur.row()];
    row.reserve(cur.degree());
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      row.emplace_back(cols[cur.ptr() + k], vals[cur.ptr() + k]);
    }
  }
  return rows;
}

}  // namespace

Result<CsdbDeltaResult> ApplyDelta(const graph::CsdbMatrix& old_csdb,
                                   const graph::Graph& new_graph,
                                   const std::vector<graph::NodeId>& touched_nodes,
                                   memsim::MemorySystem* ms,
                                   memsim::WorkerCtx* ctx) {
  const graph::NodeId n = new_graph.num_nodes();
  if (old_csdb.num_rows() != n || old_csdb.num_cols() != n) {
    return Status::InvalidArgument("ApplyDelta: shape mismatch with new graph");
  }
  if (old_csdb.perm().size() != n) {
    return Status::InvalidArgument("ApplyDelta: old matrix lacks a row perm");
  }
  for (const graph::NodeId v : touched_nodes) {
    if (v >= n) return Status::OutOfRange("ApplyDelta: touched node out of range");
  }

  const double clock_before = ctx != nullptr ? ctx->clock->seconds() : 0.0;

  // New row order: the same stable degree-descending sort FromGraph uses, so
  // the result's perm matches a from-scratch build exactly.
  const std::vector<graph::NodeId> order = new_graph.DegreeDescendingOrder();
  std::vector<graph::NodeId> new_inverse(n);
  for (graph::NodeId i = 0; i < n; ++i) new_inverse[order[i]] = i;
  std::vector<graph::NodeId> old_inverse(n);
  for (graph::NodeId r = 0; r < n; ++r) old_inverse[old_csdb.perm()[r]] = r;

  std::vector<char> touched(n, 0);
  for (const graph::NodeId v : touched_nodes) touched[v] = 1;

  CsdbDeltaResult result;
  std::vector<uint32_t> row_degrees(n);
  std::vector<graph::NodeId> col_list;
  std::vector<float> nnz_list;
  col_list.reserve(new_graph.num_arcs());
  nnz_list.reserve(new_graph.num_arcs());
  const auto& old_cols = old_csdb.col_list();
  const auto& old_vals = old_csdb.nnz_list();

  uint64_t touched_arcs = 0;
  std::vector<std::pair<graph::NodeId, float>> row;
  for (graph::NodeId i = 0; i < n; ++i) {
    const graph::NodeId node = order[i];
    const uint32_t deg = new_graph.degree(node);
    row_degrees[i] = deg;
    row.clear();
    if (touched[node]) {
      // Re-gather this row from the new adjacency, as FromGraph would.
      const graph::NodeId* nbrs = new_graph.neighbors(node);
      const float* wts = new_graph.weights(node);
      for (uint32_t k = 0; k < deg; ++k) {
        row.emplace_back(new_inverse[nbrs[k]], wts[k]);
      }
      ++result.touched_rows;
      touched_arcs += deg;
    } else {
      // Reuse the gathered payload; only the column ids need remapping from
      // the old CSDB id space into the new one.
      const uint64_t ptr = old_csdb.RowPtr(old_inverse[node]);
      for (uint32_t k = 0; k < deg; ++k) {
        row.emplace_back(new_inverse[old_csdb.perm()[old_cols[ptr + k]]],
                         old_vals[ptr + k]);
      }
      ++result.reused_rows;
    }
    // Rows usually stay nearly sorted after the remap; only fall back to the
    // sort when the permutation actually reordered this row's columns.
    bool ascending = true;
    for (size_t k = 1; k < row.size(); ++k) {
      if (row[k].first < row[k - 1].first) {
        ascending = false;
        break;
      }
    }
    if (!ascending) std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      col_list.push_back(c);
      nnz_list.push_back(v);
    }
  }

  OMEGA_ASSIGN_OR_RETURN(
      result.matrix,
      graph::CsdbMatrix::FromParts(n, n, row_degrees, std::move(col_list),
                                   std::move(nnz_list), order));

  if (ms != nullptr && ctx != nullptr) {
    // Reused rows stream through DRAM (read old entry, write remapped entry,
    // a few ops per entry for the remap + ascending check); touched rows
    // gather their arcs from the PM-resident adjacency; the order rebuild is
    // a comparison sort over the degree array.
    const memsim::Placement dram{memsim::Tier::kDram, 0};
    const memsim::Placement pm{memsim::Tier::kPm, memsim::Placement::kInterleaved};
    const uint64_t reused_entries = result.matrix.nnz() - touched_arcs;
    ms->ChargeAccess(ctx, dram, memsim::MemOp::kRead, memsim::Pattern::kSequential,
                     reused_entries * 8, 1);
    ms->ChargeAccess(ctx, dram, memsim::MemOp::kWrite, memsim::Pattern::kSequential,
                     reused_entries * 8, 1);
    ms->ChargeAccess(ctx, pm, memsim::MemOp::kRead, memsim::Pattern::kRandom,
                     touched_arcs * 64, touched_arcs);
    ms->ChargeCompute(ctx, reused_entries * 4 + touched_arcs * 24 +
                               static_cast<uint64_t>(n) * 32);
    result.sim_seconds = ctx->clock->seconds() - clock_before;
  }
  return result;
}

Result<graph::CsdbMatrix> Add(const graph::CsdbMatrix& a, const graph::CsdbMatrix& b,
                              float alpha, float beta) {
  if (a.num_rows() != b.num_rows() || a.num_cols() != b.num_cols()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  auto rows_a = ToRowLists(a);
  auto rows_b = ToRowLists(b);
  std::vector<std::vector<std::pair<graph::NodeId, float>>> merged(a.num_rows());
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    auto& ra = rows_a[r];
    auto& rb = rows_b[r];
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    auto& out = merged[r];
    size_t i = 0;
    size_t j = 0;
    while (i < ra.size() || j < rb.size()) {
      if (j >= rb.size() || (i < ra.size() && ra[i].first < rb[j].first)) {
        out.emplace_back(ra[i].first, alpha * ra[i].second);
        ++i;
      } else if (i >= ra.size() || rb[j].first < ra[i].first) {
        out.emplace_back(rb[j].first, beta * rb[j].second);
        ++j;
      } else {
        const float v = alpha * ra[i].second + beta * rb[j].second;
        if (v != 0.0f) out.emplace_back(ra[i].first, v);
        ++i;
        ++j;
      }
    }
  }
  return FromRowLists(a.num_rows(), a.num_cols(), std::move(merged));
}

Result<graph::CsdbMatrix> Subtract(const graph::CsdbMatrix& a,
                                   const graph::CsdbMatrix& b) {
  return Add(a, b, 1.0f, -1.0f);
}

Result<graph::CsdbMatrix> Transpose(const graph::CsdbMatrix& a) {
  std::vector<std::vector<std::pair<graph::NodeId, float>>> rows(a.num_cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      rows[cols[cur.ptr() + k]].emplace_back(cur.row(), vals[cur.ptr() + k]);
    }
  }
  return FromRowLists(a.num_cols(), a.num_rows(), std::move(rows));
}

void ScaleValues(graph::CsdbMatrix* a, float alpha) {
  for (float& v : a->mutable_nnz_list()) v *= alpha;
}

void ApplyElementwise(graph::CsdbMatrix* a,
                      const std::function<float(uint32_t, graph::NodeId, float)>& fn) {
  auto& vals = a->mutable_nnz_list();
  const auto& cols = a->col_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      const uint64_t idx = cur.ptr() + k;
      vals[idx] = fn(cur.row(), cols[idx], vals[idx]);
    }
  }
}

std::vector<double> RowSums(const graph::CsdbMatrix& a) {
  std::vector<double> sums(a.num_rows(), 0.0);
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    double s = 0.0;
    for (uint32_t k = 0; k < cur.degree(); ++k) s += vals[cur.ptr() + k];
    sums[cur.row()] = s;
  }
  return sums;
}

void RowNormalize(graph::CsdbMatrix* a) {
  const std::vector<double> sums = RowSums(*a);
  auto& vals = a->mutable_nnz_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    const double s = sums[cur.row()];
    if (s == 0.0) continue;
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      vals[cur.ptr() + k] = static_cast<float>(vals[cur.ptr() + k] / s);
    }
  }
}

void SymmetricNormalize(graph::CsdbMatrix* a) {
  const std::vector<double> sums = RowSums(*a);
  auto& vals = a->mutable_nnz_list();
  const auto& cols = a->col_list();
  for (auto cur = a->Rows(0); !cur.AtEnd(); cur.Next()) {
    const double sr = sums[cur.row()];
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      const double sc = sums[cols[cur.ptr() + k]];
      const double denom = std::sqrt(sr * sc);
      if (denom > 0.0) {
        vals[cur.ptr() + k] = static_cast<float>(vals[cur.ptr() + k] / denom);
      }
    }
  }
}

Status SpMV(const graph::CsdbMatrix& a, const std::vector<float>& x,
            std::vector<float>* y) {
  if (x.size() != a.num_cols()) return Status::InvalidArgument("SpMV: dim mismatch");
  y->assign(a.num_rows(), 0.0f);
  const graph::NodeId* cols = a.col_list().data();
  const float* vals = a.nnz_list().data();
  const float* xv = x.data();
  float* yv = y->data();
  // Degree blocks give the inner reduction a per-block constant trip count —
  // the same short-row specialization the panel SpMM kernels use; the
  // ascending-k order (and hence the result) is unchanged.
  for (auto blk = a.BlocksInRange(0, a.num_rows()); !blk.AtEnd(); blk.Next()) {
    const graph::CsdbMatrix::BlockSpan& s = blk.span();
    const uint32_t deg = s.degree;
    uint64_t ptr = s.ptr;
    for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += deg) {
      float acc = 0.0f;
      for (uint32_t k = 0; k < deg; ++k) {
        acc += vals[ptr + k] * xv[cols[ptr + k]];
      }
      yv[r] = acc;
    }
  }
  return Status::OK();
}

linalg::DenseMatrix ToDense(const graph::CsdbMatrix& a) {
  linalg::DenseMatrix m(a.num_rows(), a.num_cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      m.At(cur.row(), cols[cur.ptr() + k]) += vals[cur.ptr() + k];
    }
  }
  return m;
}

Result<graph::CsrMatrix> ToCsr(const graph::CsdbMatrix& a) {
  std::vector<uint64_t> row_ptr(a.num_rows() + 1, 0);
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    row_ptr[cur.row() + 1] = row_ptr[cur.row()] + cur.degree();
  }
  return graph::CsrMatrix::FromParts(a.num_rows(), a.num_cols(), std::move(row_ptr),
                                     a.col_list(), a.nnz_list());
}

Status ReferenceSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                     linalg::DenseMatrix* c, ThreadPool* pool) {
  if (b.rows() != a.num_cols()) {
    return Status::InvalidArgument("ReferenceSpmm: dim mismatch");
  }
  *c = linalg::DenseMatrix(a.num_rows(), b.cols());
  const auto& cols = a.col_list();
  const auto& vals = a.nnz_list();
  auto compute_rows = [&](uint32_t row_begin, uint32_t row_end) {
    for (size_t t = 0; t < b.cols(); ++t) {
      const float* bt = b.ColData(t);
      float* ct = c->ColData(t);
      for (auto cur = a.Rows(row_begin); cur.row() < row_end; cur.Next()) {
        float acc = 0.0f;
        for (uint32_t k = 0; k < cur.degree(); ++k) {
          acc += vals[cur.ptr() + k] * bt[cols[cur.ptr() + k]];
        }
        ct[cur.row()] = acc;
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && a.num_rows() >= 2048) {
    pool->ParallelForDynamic(a.num_rows(), /*chunk_size=*/1024,
                             [&](size_t, size_t begin, size_t end) {
                               compute_rows(static_cast<uint32_t>(begin),
                                            static_cast<uint32_t>(end));
                             });
  } else {
    compute_rows(0, a.num_rows());
  }
  return Status::OK();
}

}  // namespace omega::sparse
