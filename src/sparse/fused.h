// FusedMM baseline (Rahman, Sujon, Azad; IPDPS'21; the paper's §IV-H
// competitor): an in-memory CSR kernel that fuses the SDDMM/SpMM pipeline
// into a single row-major pass.
//
// Everything lives in DRAM, the sparse matrix is streamed once per SpMM, and
// rows are split in equal-count chunks across threads (OpenMP-static style),
// so it is fast on small graphs but (a) cannot run once the operands exceed
// DRAM and (b) suffers stragglers on skewed graphs — the two effects the
// paper reports (OOM on TW-2010; 2.11-3.26x behind OMeGa).

#pragma once

#include "common/status.h"
#include "graph/csr.h"
#include "linalg/dense_matrix.h"
#include "omega/exec_context.h"
#include "sparse/spmm.h"
#include "sparse/spmm_plan.h"

namespace omega::sparse {

struct FusedMmOptions {
  int num_threads = 8;
};

/// Runs C = A * B with the FusedMM strategy. Fails with CapacityExceeded when
/// sparse + dense + result do not fit in the simulated machine's total DRAM.
/// Builds the kEqualRows plan per call; repeated SpMMs on the same structure
/// should build a CsrSpmmPlan once and use the overload below.
Result<ParallelSpmmResult> FusedMmSpmm(const graph::CsrMatrix& a,
                                       const linalg::DenseMatrix& b,
                                       linalg::DenseMatrix* c,
                                       const FusedMmOptions& options,
                                       const exec::Context& ctx);

/// Plan-reusing variant: `plan` must match (a, options.num_threads,
/// kEqualRows). The per-part nnz/entropy metadata comes from the plan instead
/// of a per-call rescan; the simulated charges are identical either way.
Result<ParallelSpmmResult> FusedMmSpmm(const graph::CsrMatrix& a,
                                       const linalg::DenseMatrix& b,
                                       linalg::DenseMatrix* c,
                                       const FusedMmOptions& options,
                                       const CsrSpmmPlan& plan,
                                       const exec::Context& ctx);

}  // namespace omega::sparse
