// SEM-SpMM baseline (Zheng et al., TPDS'17; the paper's §IV-H competitor):
// semi-external-memory SpMM that keeps the sparse matrix on SSD and the dense
// matrices in memory.
//
// The kernel streams the sparse matrix from the SSD tier once per SpMM
// (row-major, all dense columns per pass — the semi-external optimization)
// and gathers from the dense operand in DRAM. When the dense working set
// exceeds the DRAM budget, the spilled fraction of gathers pays SSD random
// 4 KB page accesses, which is what makes SEM-SpMM collapse on the larger
// graphs (Fig. 18b).

#pragma once

#include "graph/csr.h"
#include "linalg/dense_matrix.h"
#include "omega/exec_context.h"
#include "sparse/spmm.h"
#include "sparse/spmm_plan.h"

namespace omega::sparse {

struct SemiExternalOptions {
  int num_threads = 8;
  /// DRAM bytes available to hold the dense operand + result. Working sets
  /// beyond this spill to SSD.
  size_t dram_budget_bytes = 96ULL << 20;
};

/// Runs C = A * B with the SEM-SpMM strategy; returns the simulated phase
/// result (breakdowns attribute SSD traffic to the sparse/dense components).
/// Builds the kEqualNnz plan per call; repeated SpMMs on the same structure
/// should build a CsrSpmmPlan once and use the overload below.
ParallelSpmmResult SemiExternalSpmm(const graph::CsrMatrix& a,
                                    const linalg::DenseMatrix& b,
                                    linalg::DenseMatrix* c,
                                    const SemiExternalOptions& options,
                                    const exec::Context& ctx);

/// Plan-reusing variant: `plan` must match (a, options.num_threads,
/// kEqualNnz). The per-part nnz/entropy metadata comes from the plan instead
/// of a per-call rescan; the simulated charges are identical either way.
ParallelSpmmResult SemiExternalSpmm(const graph::CsrMatrix& a,
                                    const linalg::DenseMatrix& b,
                                    linalg::DenseMatrix* c,
                                    const SemiExternalOptions& options,
                                    const CsrSpmmPlan& plan,
                                    const exec::Context& ctx);

}  // namespace omega::sparse
