// Column-panel SpMM kernels — see spmm_kernels.h for the contract.
//
// This translation unit is the SpMM analogue of linalg/gemm.cc's per-TU ISA
// split: under OMEGA_SPMM_SIMD the build compiles it with -mavx2 -mfma (and
// always with -ffp-contract=off), and the __AVX2__/__FMA__ macros select the
// vector full-panel kernel plus explicit-FMA scalar paths. Without the
// option the same sources compile to plain multiply-add scalar panels.

#include "sparse/spmm_kernels.h"

#include <algorithm>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define OMEGA_SPMM_SIMD_TU 1
#else
#define OMEGA_SPMM_SIMD_TU 0
#endif

namespace omega::sparse::kernels {

namespace {

// Single rounding policy for every scalar path in this TU (header comment):
// fused when the vector kernel is fused, two roundings when it is not.
inline float MulAdd(float v, float b, float acc) {
#if OMEGA_SPMM_SIMD_TU
  return __builtin_fmaf(v, b, acc);
#else
  return v * b + acc;
#endif
}

// --- Scalar panel paths (also the tail/fallback paths of the SIMD build) ---

// One row of a full kPanelCols-wide panel, degree known at compile time so
// the k loop fully unrolls (the CSDB short-row path).
template <uint32_t kDeg>
inline void PanelRowFixed(const graph::NodeId* cols, const float* vals,
                          const float* bp, size_t bstride, float* cp,
                          size_t cstride, uint32_t r) {
  float acc[kPanelCols] = {};
  for (uint32_t k = 0; k < kDeg; ++k) {
    const size_t col = cols[k];
    const float v = vals[k];
    for (size_t j = 0; j < kPanelCols; ++j) {
      acc[j] = MulAdd(v, bp[col + j * bstride], acc[j]);
    }
  }
  for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = acc[j];
}

// One row of a full panel, runtime degree.
inline void PanelRow(const graph::NodeId* cols, const float* vals, uint32_t deg,
                     const float* bp, size_t bstride, float* cp, size_t cstride,
                     uint32_t r) {
  float acc[kPanelCols] = {};
  for (uint32_t k = 0; k < deg; ++k) {
    const size_t col = cols[k];
    const float v = vals[k];
    for (size_t j = 0; j < kPanelCols; ++j) {
      acc[j] = MulAdd(v, bp[col + j * bstride], acc[j]);
    }
  }
  for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = acc[j];
}

// One row of a ragged tail panel (pw < kPanelCols columns).
inline void PanelRowTail(const graph::NodeId* cols, const float* vals,
                         uint32_t deg, const float* bp, size_t bstride,
                         float* cp, size_t cstride, uint32_t r, size_t pw) {
  float acc[kPanelCols] = {};
  for (uint32_t k = 0; k < deg; ++k) {
    const size_t col = cols[k];
    const float v = vals[k];
    for (size_t j = 0; j < pw; ++j) {
      acc[j] = MulAdd(v, bp[col + j * bstride], acc[j]);
    }
  }
  for (size_t j = 0; j < pw; ++j) cp[r + j * cstride] = acc[j];
}

// Full scalar panel over one CSDB degree span: constant-degree rows, deg <= 4
// dispatched to the unrolled specializations.
void CsdbSpanPanelScalar(const graph::CsdbMatrix::BlockSpan& s,
                         const graph::NodeId* cols, const float* vals,
                         const float* bp, size_t bstride, float* cp,
                         size_t cstride) {
  const uint32_t deg = s.degree;
  uint64_t ptr = s.ptr;
  switch (deg) {
    case 0:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r) {
        for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = 0.0f;
      }
      return;
    case 1:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 1) {
        PanelRowFixed<1>(cols + ptr, vals + ptr, bp, bstride, cp, cstride, r);
      }
      return;
    case 2:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 2) {
        PanelRowFixed<2>(cols + ptr, vals + ptr, bp, bstride, cp, cstride, r);
      }
      return;
    case 3:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 3) {
        PanelRowFixed<3>(cols + ptr, vals + ptr, bp, bstride, cp, cstride, r);
      }
      return;
    case 4:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 4) {
        PanelRowFixed<4>(cols + ptr, vals + ptr, bp, bstride, cp, cstride, r);
      }
      return;
    default:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += deg) {
        PanelRow(cols + ptr, vals + ptr, deg, bp, bstride, cp, cstride, r);
      }
      return;
  }
}

// Ragged tail panel over one CSDB degree span.
void CsdbSpanPanelTail(const graph::CsdbMatrix::BlockSpan& s,
                       const graph::NodeId* cols, const float* vals,
                       const float* bp, size_t bstride, float* cp,
                       size_t cstride, size_t pw) {
  const uint32_t deg = s.degree;
  uint64_t ptr = s.ptr;
  for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += deg) {
    PanelRowTail(cols + ptr, vals + ptr, deg, bp, bstride, cp, cstride, r, pw);
  }
}

#if OMEGA_SPMM_SIMD_TU

// The strided-gather index vector {0, bstride, ..., 7*bstride} must fit in
// int32; beyond this row count (no dataset analogue comes close) the kernel
// falls back to the bit-identical scalar panels.
constexpr size_t kMaxSimdStride = (size_t{1} << 31) / (kPanelCols - 1) - 1;

// One row of a full panel: 8 column accumulators in one ymm, one
// constant-stride gather + one FMA per nonzero, single ascending-k chain.
inline void PanelRowSimd(const graph::NodeId* cols, const float* vals,
                         uint32_t deg, const float* bp, __m256i vindex,
                         float* cp, size_t cstride, uint32_t r) {
  __m256 acc = _mm256_setzero_ps();
  for (uint32_t k = 0; k < deg; ++k) {
    const __m256 bv = _mm256_i32gather_ps(bp + cols[k], vindex, 4);
    acc = _mm256_fmadd_ps(_mm256_set1_ps(vals[k]), bv, acc);
  }
  alignas(32) float out[kPanelCols];
  _mm256_store_ps(out, acc);
  for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = out[j];
}

template <uint32_t kDeg>
inline void PanelRowSimdFixed(const graph::NodeId* cols, const float* vals,
                              const float* bp, __m256i vindex, float* cp,
                              size_t cstride, uint32_t r) {
  __m256 acc = _mm256_setzero_ps();
  for (uint32_t k = 0; k < kDeg; ++k) {
    const __m256 bv = _mm256_i32gather_ps(bp + cols[k], vindex, 4);
    acc = _mm256_fmadd_ps(_mm256_set1_ps(vals[k]), bv, acc);
  }
  alignas(32) float out[kPanelCols];
  _mm256_store_ps(out, acc);
  for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = out[j];
}

void CsdbSpanPanelSimd(const graph::CsdbMatrix::BlockSpan& s,
                       const graph::NodeId* cols, const float* vals,
                       const float* bp, __m256i vindex, float* cp,
                       size_t cstride) {
  const uint32_t deg = s.degree;
  uint64_t ptr = s.ptr;
  switch (deg) {
    case 0:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r) {
        for (size_t j = 0; j < kPanelCols; ++j) cp[r + j * cstride] = 0.0f;
      }
      return;
    case 1:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 1) {
        PanelRowSimdFixed<1>(cols + ptr, vals + ptr, bp, vindex, cp, cstride, r);
      }
      return;
    case 2:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 2) {
        PanelRowSimdFixed<2>(cols + ptr, vals + ptr, bp, vindex, cp, cstride, r);
      }
      return;
    case 3:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 3) {
        PanelRowSimdFixed<3>(cols + ptr, vals + ptr, bp, vindex, cp, cstride, r);
      }
      return;
    case 4:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += 4) {
        PanelRowSimdFixed<4>(cols + ptr, vals + ptr, bp, vindex, cp, cstride, r);
      }
      return;
    default:
      for (uint32_t r = s.row_begin; r < s.row_end; ++r, ptr += deg) {
        PanelRowSimd(cols + ptr, vals + ptr, deg, bp, vindex, cp, cstride, r);
      }
      return;
  }
}

inline __m256i PanelIndex(size_t bstride) {
  const int s = static_cast<int>(bstride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

#endif  // OMEGA_SPMM_SIMD_TU

}  // namespace

bool SpmmSimdEnabled() { return OMEGA_SPMM_SIMD_TU != 0; }

void CsdbPanelSpmmScalar(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                         linalg::DenseMatrix* c, uint32_t row_begin,
                         uint32_t row_end, size_t col_begin, size_t col_end) {
  const graph::NodeId* cols = a.col_list().data();
  const float* vals = a.nnz_list().data();
  const size_t bstride = b.col_stride();
  const size_t cstride = c->col_stride();
  for (size_t t0 = col_begin; t0 < col_end; t0 += kPanelCols) {
    const size_t pw = std::min(kPanelCols, col_end - t0);
    const float* bp = b.ColData(t0);
    float* cp = c->ColData(t0);
    for (auto blk = a.BlocksInRange(row_begin, row_end); !blk.AtEnd();
         blk.Next()) {
      if (pw == kPanelCols) {
        CsdbSpanPanelScalar(blk.span(), cols, vals, bp, bstride, cp, cstride);
      } else {
        CsdbSpanPanelTail(blk.span(), cols, vals, bp, bstride, cp, cstride, pw);
      }
    }
  }
}

void CsdbPanelSpmm(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                   linalg::DenseMatrix* c, uint32_t row_begin, uint32_t row_end,
                   size_t col_begin, size_t col_end) {
#if OMEGA_SPMM_SIMD_TU
  const size_t bstride = b.col_stride();
  if (bstride <= kMaxSimdStride) {
    const graph::NodeId* cols = a.col_list().data();
    const float* vals = a.nnz_list().data();
    const size_t cstride = c->col_stride();
    const __m256i vindex = PanelIndex(bstride);
    for (size_t t0 = col_begin; t0 < col_end; t0 += kPanelCols) {
      const size_t pw = std::min(kPanelCols, col_end - t0);
      const float* bp = b.ColData(t0);
      float* cp = c->ColData(t0);
      for (auto blk = a.BlocksInRange(row_begin, row_end); !blk.AtEnd();
           blk.Next()) {
        if (pw == kPanelCols) {
          CsdbSpanPanelSimd(blk.span(), cols, vals, bp, vindex, cp, cstride);
        } else {
          CsdbSpanPanelTail(blk.span(), cols, vals, bp, bstride, cp, cstride,
                            pw);
        }
      }
    }
    return;
  }
#endif
  CsdbPanelSpmmScalar(a, b, c, row_begin, row_end, col_begin, col_end);
}

void CsrPanelSpmmScalar(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                        linalg::DenseMatrix* c, uint32_t row_begin,
                        uint32_t row_end, size_t col_begin, size_t col_end) {
  const graph::NodeId* cols = a.col_idx().data();
  const float* vals = a.values().data();
  const size_t bstride = b.col_stride();
  const size_t cstride = c->col_stride();
  for (size_t t0 = col_begin; t0 < col_end; t0 += kPanelCols) {
    const size_t pw = std::min(kPanelCols, col_end - t0);
    const float* bp = b.ColData(t0);
    float* cp = c->ColData(t0);
    for (uint32_t r = row_begin; r < row_end; ++r) {
      const uint64_t start = a.RowBegin(r);
      const uint32_t deg = a.RowDegree(r);
      if (pw == kPanelCols) {
        PanelRow(cols + start, vals + start, deg, bp, bstride, cp, cstride, r);
      } else {
        PanelRowTail(cols + start, vals + start, deg, bp, bstride, cp, cstride,
                     r, pw);
      }
    }
  }
}

void GatherRowsScalar(const linalg::DenseMatrix& e, const uint32_t* keys,
                      size_t n, linalg::DenseMatrix* out) {
  const size_t d = e.cols();
  const size_t estride = e.col_stride();
  for (size_t i = 0; i < n; ++i) {
    const float* src = e.data() + keys[i];
    float* dst = out->ColData(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j * estride];
  }
}

void GatherRows(const linalg::DenseMatrix& e, const uint32_t* keys, size_t n,
                linalg::DenseMatrix* out) {
#if OMEGA_SPMM_SIMD_TU
  const size_t estride = e.col_stride();
  if (estride <= kMaxSimdStride) {
    const size_t d = e.cols();
    const __m256i vindex = PanelIndex(estride);
    for (size_t i = 0; i < n; ++i) {
      const float* src = e.data() + keys[i];
      float* dst = out->ColData(i);
      size_t j = 0;
      for (; j + kPanelCols <= d; j += kPanelCols) {
        _mm256_storeu_ps(dst + j,
                         _mm256_i32gather_ps(src + j * estride, vindex, 4));
      }
      for (; j < d; ++j) dst[j] = src[j * estride];
    }
    return;
  }
#endif
  GatherRowsScalar(e, keys, n, out);
}

void ScoreRowsScalar(const linalg::DenseMatrix& e, const float* q,
                     uint32_t row_begin, uint32_t row_end, float* scores) {
  const size_t d = e.cols();
  const size_t estride = e.col_stride();
  for (uint32_t c = row_begin; c < row_end; ++c) {
    const float* row = e.data() + c;
    float acc = 0.0f;
    for (size_t j = 0; j < d; ++j) acc = MulAdd(row[j * estride], q[j], acc);
    scores[c - row_begin] = acc;
  }
}

void ScoreRows(const linalg::DenseMatrix& e, const float* q,
               uint32_t row_begin, uint32_t row_end, float* scores) {
#if OMEGA_SPMM_SIMD_TU
  const size_t d = e.cols();
  const size_t estride = e.col_stride();
  uint32_t c = row_begin;
  for (; c + kPanelCols <= row_end; c += kPanelCols) {
    const float* row = e.data() + c;
    __m256 acc = _mm256_setzero_ps();
    for (size_t j = 0; j < d; ++j) {
      const __m256 ev = _mm256_loadu_ps(row + j * estride);
      acc = _mm256_fmadd_ps(ev, _mm256_set1_ps(q[j]), acc);
    }
    _mm256_storeu_ps(scores + (c - row_begin), acc);
  }
  // Tail rows: per-lane the vector loop is the identical single-accumulator
  // fused ascending-j chain, so the scalar tail rounds the same.
  ScoreRowsScalar(e, q, c, row_end, scores + (c - row_begin));
#else
  ScoreRowsScalar(e, q, row_begin, row_end, scores);
#endif
}

void CsrPanelSpmm(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                  linalg::DenseMatrix* c, uint32_t row_begin, uint32_t row_end,
                  size_t col_begin, size_t col_end) {
#if OMEGA_SPMM_SIMD_TU
  const size_t bstride = b.col_stride();
  if (bstride <= kMaxSimdStride) {
    const graph::NodeId* cols = a.col_idx().data();
    const float* vals = a.values().data();
    const size_t cstride = c->col_stride();
    const __m256i vindex = PanelIndex(bstride);
    for (size_t t0 = col_begin; t0 < col_end; t0 += kPanelCols) {
      const size_t pw = std::min(kPanelCols, col_end - t0);
      const float* bp = b.ColData(t0);
      float* cp = c->ColData(t0);
      for (uint32_t r = row_begin; r < row_end; ++r) {
        const uint64_t start = a.RowBegin(r);
        const uint32_t deg = a.RowDegree(r);
        if (pw == kPanelCols) {
          PanelRowSimd(cols + start, vals + start, deg, bp, vindex, cp, cstride,
                       r);
        } else {
          PanelRowTail(cols + start, vals + start, deg, bp, bstride, cp,
                       cstride, r, pw);
        }
      }
    }
    return;
  }
#endif
  CsrPanelSpmmScalar(a, b, c, row_begin, row_end, col_begin, col_end);
}

}  // namespace omega::sparse::kernels
