#include "sparse/spmm.h"

#include <algorithm>

#include "common/logging.h"
#include "sched/entropy.h"
#include "sparse/spmm_kernels.h"
#include "sparse/spmm_plan.h"

namespace omega::sparse {

const char* SpmmOpName(SpmmOp op) {
  switch (op) {
    case SpmmOp::kReadIndex:
      return "read_index";
    case SpmmOp::kGetSparseNnz:
      return "get_sparse_nnz";
    case SpmmOp::kGetDenseNnz:
      return "get_dense_nnz";
    case SpmmOp::kAccumulate:
      return "accumulation";
    case SpmmOp::kWriteResult:
      return "write_result";
  }
  return "?";
}

double SpmmCostBreakdown::Total() const {
  double t = 0.0;
  for (double s : seconds) t += s;
  return t;
}

SpmmCostBreakdown& SpmmCostBreakdown::operator+=(const SpmmCostBreakdown& other) {
  for (int i = 0; i < kNumSpmmOps; ++i) seconds[i] += other.seconds[i];
  return *this;
}

namespace {

constexpr uint64_t kLineBytes = 64;

// Charges an access and attributes it to one breakdown component.
void Charge(memsim::MemorySystem* ms, memsim::WorkerCtx* ctx,
            SpmmCostBreakdown* breakdown, SpmmOp op, memsim::Placement p,
            memsim::MemOp mem_op, memsim::Pattern pat, uint64_t bytes,
            uint64_t accesses) {
  if (bytes == 0 && accesses == 0) return;
  const double seconds = ms->AccessSeconds(p, ctx->cpu_socket, mem_op, pat, bytes,
                                           accesses, ctx->active_threads);
  ctx->clock->Advance(seconds);
  breakdown->seconds[static_cast<int>(op)] += seconds;
}

void ChargeCompute(memsim::MemorySystem* ms, memsim::WorkerCtx* ctx,
                   SpmmCostBreakdown* breakdown, uint64_t ops) {
  const double seconds = ms->cost_model().ComputeSeconds(ops);
  ctx->clock->Advance(seconds);
  breakdown->seconds[static_cast<int>(SpmmOp::kAccumulate)] += seconds;
}

// Traffic counted on the first column pass (identical on every pass).
struct GatherCounts {
  uint64_t misses = 0;      // gathers served by the dense operand's tier
  uint64_t cache_hits = 0;  // gathers served by the DenseCacheView
  sched::EntropyAccumulator entropy;
};

// Shared cost-charging for both formats once traffic has been counted.
// `entropy_h` is the part's raw workload entropy H (Eq. 3, accumulated in
// ascending-row order) — a plan may carry it precomputed; the Z-blend is
// bit-identical either way. `index_bytes_per_row` differs: CSDB's block
// metadata amortizes to ~4 bytes per row from its (DRAM) index placement,
// CSR reads 8-byte row pointers.
void ChargeWorkloadCosts(memsim::MemorySystem* ms, memsim::WorkerCtx* ctx,
                         const SpmmPlacements& pl, const DenseCacheView* cache,
                         uint64_t rows, uint64_t nnz, uint64_t dense_cols,
                         uint64_t misses, uint64_t cache_hits, double entropy_h,
                         uint64_t index_bytes_per_row, uint32_t num_nodes,
                         SpmmCostBreakdown* breakdown) {
  if (rows == 0 && nnz == 0) return;  // empty workload: nothing was touched
  const uint64_t d = dense_cols;
  // 1 read_index: row metadata is re-consulted on every column pass.
  Charge(ms, ctx, breakdown, SpmmOp::kReadIndex, pl.index, memsim::MemOp::kRead,
         memsim::Pattern::kSequential, d * rows * index_bytes_per_row, d);
  // 2 get_sparse_nnz: col_list (4B) + nnz_list (4B) per element, sequential,
  // re-streamed for every dense column (Algorithm 1's loop nesting).
  Charge(ms, ctx, breakdown, SpmmOp::kGetSparseNnz, pl.sparse, memsim::MemOp::kRead,
         memsim::Pattern::kSequential, d * nnz * 8, d);
  // 3 get_dense_nnz: Z(H)-blended gathers (Eqs. 4-5); hits go to the cache's
  // (DRAM) placement at random-access cost, which is still far cheaper.
  const double z = sched::NormalizedEntropy(entropy_h, num_nodes);
  const double gather = GatherSeconds(ms, ctx->cpu_socket, pl.dense, z,
                                      d * misses, ctx->active_threads);
  ctx->clock->Advance(gather);
  breakdown->seconds[static_cast<int>(SpmmOp::kGetDenseNnz)] += gather;
  if (cache != nullptr && cache_hits > 0) {
    Charge(ms, ctx, breakdown, SpmmOp::kGetDenseNnz, cache->placement(),
           memsim::MemOp::kRead, memsim::Pattern::kRandom,
           d * cache_hits * cache->BytesPerHit(), d * cache_hits);
  }
  // 4 accumulation: one multiply + one add per element per column.
  ChargeCompute(ms, ctx, breakdown, d * nnz * 2);
  // 5 write_result: column-major C rows are written sequentially.
  Charge(ms, ctx, breakdown, SpmmOp::kWriteResult, pl.result, memsim::MemOp::kWrite,
         memsim::Pattern::kSequential, d * rows * sizeof(float), d);
}

}  // namespace

double GatherSeconds(memsim::MemorySystem* ms, int cpu_socket,
                     memsim::Placement dense, double z, uint64_t touches,
                     int active_threads) {
  if (touches == 0) return 0.0;
  const uint64_t bytes = touches * kLineBytes;
  // Split the stream into its random and sequential shares (the cost model is
  // linear in bytes/accesses, so this equals the Z-weighted blend while
  // keeping the traffic counters exact).
  const auto random_bytes = static_cast<uint64_t>(z * bytes);
  const auto random_touches = static_cast<uint64_t>(z * touches);
  double seconds = 0.0;
  if (random_bytes > 0) {
    seconds += ms->AccessSeconds(dense, cpu_socket, memsim::MemOp::kRead,
                                 memsim::Pattern::kRandom, random_bytes,
                                 random_touches, active_threads);
  }
  if (bytes > random_bytes) {
    seconds += ms->AccessSeconds(dense, cpu_socket, memsim::MemOp::kRead,
                                 memsim::Pattern::kSequential, bytes - random_bytes,
                                 1, active_threads);
  }
  return seconds;
}

void ComputeWorkloadCsdb(const graph::CsdbMatrix& a, const linalg::DenseMatrix& b,
                         linalg::DenseMatrix* c, const sched::Workload& w,
                         size_t col_begin, size_t col_end) {
  OMEGA_DCHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  col_begin = std::min(col_begin, col_end);
  for (const sched::RowRange& range : w.ranges) {
    if (range.size() == 0) continue;
    kernels::CsdbPanelSpmm(a, b, c, range.begin, range.end, col_begin, col_end);
  }
}

void ComputeWorkloadCsdbPerColumn(const graph::CsdbMatrix& a,
                                  const linalg::DenseMatrix& b,
                                  linalg::DenseMatrix* c, const sched::Workload& w,
                                  size_t col_begin, size_t col_end) {
  OMEGA_DCHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  col_begin = std::min(col_begin, col_end);
  const graph::NodeId* cols = a.col_list().data();
  const float* vals = a.nnz_list().data();

  // Column-major outer loop as in Algorithm 1; each element reduces over its
  // row's elements in ascending k.
  for (size_t t = col_begin; t < col_end; ++t) {
    const float* bt = b.ColData(t);
    float* ct = c->ColData(t);
    for (const sched::RowRange& range : w.ranges) {
      if (range.size() == 0) continue;
      for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
        const uint64_t start = cur.ptr();
        const uint32_t deg = cur.degree();
        float acc = 0.0f;
        for (uint32_t k = 0; k < deg; ++k) {
          acc += vals[start + k] * bt[cols[start + k]];
        }
        ct[cur.row()] = acc;
      }
    }
  }
}

CsdbChargeMeta ScanChargeMetaCsdb(const graph::CsdbMatrix& a,
                                  const sched::Workload& w) {
  // Same walk, same ascending-row AddRow order as ChargeWorkloadCsdb's
  // cache-less path — the accumulated entropy double is bit-identical.
  CsdbChargeMeta meta;
  sched::EntropyAccumulator entropy;
  for (const sched::RowRange& range : w.ranges) {
    if (range.size() == 0) continue;
    for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
      const uint32_t deg = cur.degree();
      entropy.AddRow(deg);
      ++meta.rows;
      meta.nnz += deg;
    }
  }
  meta.entropy_h = entropy.Entropy();
  return meta;
}

SpmmCostBreakdown ChargeWorkloadCsdb(const graph::CsdbMatrix& a,
                                     uint64_t dense_cols, const sched::Workload& w,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx,
                                     const DenseCacheView* cache) {
  SpmmCostBreakdown breakdown;
  const graph::NodeId* cols = a.col_list().data();

  // Metadata-only walk in the same row/element order as the fused kernel, so
  // the gather counts (and hence every charge) match it exactly.
  GatherCounts counts;
  uint64_t rows = 0;
  uint64_t nnz = 0;
  for (const sched::RowRange& range : w.ranges) {
    if (range.size() == 0) continue;
    for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
      const uint64_t start = cur.ptr();
      const uint32_t deg = cur.degree();
      counts.entropy.AddRow(deg);
      if (cache != nullptr) {
        for (uint32_t k = 0; k < deg; ++k) {
          if (cache->Contains(cols[start + k])) {
            ++counts.cache_hits;
          } else {
            ++counts.misses;
          }
        }
      } else {
        counts.misses += deg;
      }
      ++rows;
      nnz += deg;
    }
  }

  ChargeWorkloadCosts(ms, ctx, placements, cache, rows, nnz, dense_cols,
                      counts.misses, counts.cache_hits, counts.entropy.Entropy(),
                      /*index_bytes_per_row=*/4, a.num_cols(), &breakdown);
  return breakdown;
}

SpmmCostBreakdown ChargeWorkloadCsdb(const graph::CsdbMatrix& a,
                                     uint64_t dense_cols,
                                     const CsdbChargeMeta& meta,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx) {
  // Cache-less walk summarized: every gather is a miss, hits are zero, and
  // rows/nnz/entropy are the scan's values — ChargeWorkloadCosts receives
  // exactly the arguments the walking overload would hand it.
  SpmmCostBreakdown breakdown;
  ChargeWorkloadCosts(ms, ctx, placements, /*cache=*/nullptr, meta.rows,
                      meta.nnz, dense_cols, /*misses=*/meta.nnz,
                      /*cache_hits=*/0, meta.entropy_h,
                      /*index_bytes_per_row=*/4, a.num_cols(), &breakdown);
  return breakdown;
}

SpmmCostBreakdown ExecuteWorkloadCsdb(const graph::CsdbMatrix& a,
                                      const linalg::DenseMatrix& b,
                                      linalg::DenseMatrix* c,
                                      const sched::Workload& w,
                                      const SpmmPlacements& placements,
                                      memsim::MemorySystem* ms,
                                      memsim::WorkerCtx* ctx,
                                      const DenseCacheView* cache, size_t col_begin,
                                      size_t col_end) {
  col_end = std::min(col_end, b.cols());
  ComputeWorkloadCsdb(a, b, c, w, col_begin, col_end);
  return ChargeWorkloadCsdb(a, col_end - col_begin, w, placements, ms, ctx, cache);
}

void ComputeWorkloadCsr(const graph::CsrMatrix& a, const linalg::DenseMatrix& b,
                        linalg::DenseMatrix* c, uint32_t row_begin,
                        uint32_t row_end, size_t col_begin, size_t col_end) {
  OMEGA_DCHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  col_begin = std::min(col_begin, col_end);
  kernels::CsrPanelSpmm(a, b, c, row_begin, row_end, col_begin, col_end);
}

void ComputeWorkloadCsrPerColumn(const graph::CsrMatrix& a,
                                 const linalg::DenseMatrix& b,
                                 linalg::DenseMatrix* c, uint32_t row_begin,
                                 uint32_t row_end, size_t col_begin,
                                 size_t col_end) {
  OMEGA_DCHECK(c->rows() == a.num_rows() && c->cols() == b.cols());
  col_end = std::min(col_end, b.cols());
  col_begin = std::min(col_begin, col_end);
  const graph::NodeId* cols = a.col_idx().data();
  const float* vals = a.values().data();

  for (size_t t = col_begin; t < col_end; ++t) {
    const float* bt = b.ColData(t);
    float* ct = c->ColData(t);
    for (uint32_t j = row_begin; j < row_end; ++j) {
      const uint64_t start = a.RowBegin(j);
      const uint32_t deg = a.RowDegree(j);
      float acc = 0.0f;
      for (uint32_t k = 0; k < deg; ++k) {
        acc += vals[start + k] * bt[cols[start + k]];
      }
      ct[j] = acc;
    }
  }
}

SpmmCostBreakdown ChargeWorkloadCsr(const graph::CsrMatrix& a,
                                    uint64_t dense_cols, uint32_t row_begin,
                                    uint32_t row_end, uint64_t nnz,
                                    double entropy_h,
                                    const SpmmPlacements& placements,
                                    memsim::MemorySystem* ms,
                                    memsim::WorkerCtx* ctx) {
  SpmmCostBreakdown breakdown;
  ChargeWorkloadCosts(ms, ctx, placements, /*cache=*/nullptr,
                      row_end - row_begin, nnz, dense_cols, /*misses=*/nnz,
                      /*cache_hits=*/0, entropy_h, /*index_bytes_per_row=*/8,
                      a.num_cols(), &breakdown);
  return breakdown;
}

SpmmCostBreakdown ExecuteWorkloadCsr(const graph::CsrMatrix& a,
                                     const linalg::DenseMatrix& b,
                                     linalg::DenseMatrix* c, uint32_t row_begin,
                                     uint32_t row_end,
                                     const SpmmPlacements& placements,
                                     memsim::MemorySystem* ms,
                                     memsim::WorkerCtx* ctx, size_t col_begin,
                                     size_t col_end) {
  col_end = std::min(col_end, b.cols());
  col_begin = std::min(col_begin, col_end);
  ComputeWorkloadCsr(a, b, c, row_begin, row_end, col_begin, col_end);
  uint64_t nnz = 0;
  sched::EntropyAccumulator entropy;
  for (uint32_t j = row_begin; j < row_end; ++j) {
    const uint32_t deg = a.RowDegree(j);
    nnz += deg;
    entropy.AddRow(deg);
  }
  return ChargeWorkloadCsr(a, col_end - col_begin, row_begin, row_end, nnz,
                           entropy.Entropy(), placements, ms, ctx);
}

namespace {

// Shared body of both ParallelSpmm overloads. `meta` is the plan's hoisted
// per-workload charge metadata, or nullptr for the per-call path; it is only
// consulted for cache-less workers (cache hits depend on cache contents), and
// either way the charges land on the same clocks in the same order.
ParallelSpmmResult ParallelSpmmImpl(const graph::CsdbMatrix& a,
                                    const linalg::DenseMatrix& b,
                                    linalg::DenseMatrix* c,
                                    const std::vector<sched::Workload>& workloads,
                                    const std::vector<CsdbChargeMeta>* meta,
                                    const SpmmPlacements& placements,
                                    const exec::Context& ctx,
                                    const CacheFactory& cache_factory) {
  memsim::MemorySystem* ms = ctx.ms();
  ThreadPool* pool = ctx.pool();
  const size_t n = workloads.size();
  OMEGA_CHECK(pool != nullptr && pool->size() >= n)
      << "thread pool smaller than workload count";

  ParallelSpmmResult result;
  result.thread_seconds.assign(n, 0.0);
  result.thread_breakdowns.assign(n, SpmmCostBreakdown{});

  memsim::ClockGroup clocks(n);
  const int total_workers = static_cast<int>(n);

  // Phase 1 — host compute under dynamic scheduling. The workloads' row
  // ranges are flattened into fixed-size row blocks that any worker may grab,
  // so a skewed (high-entropy) workload no longer serializes the host run on
  // its owner. No memsim state is touched here, and each output element's
  // reduction order is fixed, so this phase is invisible to the simulation
  // and bit-stable across thread counts.
  constexpr uint32_t kComputeRowBlock = 1024;
  std::vector<sched::RowRange> blocks;
  for (const sched::Workload& w : workloads) {
    for (const sched::RowRange& range : w.ranges) {
      for (uint32_t r = range.begin; r < range.end; r += kComputeRowBlock) {
        blocks.push_back(
            {r, std::min<uint32_t>(range.end, r + kComputeRowBlock)});
      }
    }
  }
  pool->ParallelForDynamic(
      blocks.size(), /*chunk_size=*/1,
      [&](size_t, size_t blk_begin, size_t blk_end) {
        for (size_t i = blk_begin; i < blk_end; ++i) {
          kernels::CsdbPanelSpmm(a, b, c, blocks[i].begin, blocks[i].end, 0,
                                 b.cols());
        }
      });

  // Phase 2 — simulated charging, one worker per workload exactly as before:
  // the cache build and every charge land on the same per-worker clock in the
  // same order as the old fused kernel.
  pool->RunOnAll([&](size_t worker) {
    if (worker >= n) return;
    const sched::Workload& w = workloads[worker];
    memsim::WorkerCtx ctx;
    ctx.worker = static_cast<int>(worker);
    ctx.cpu_socket =
        ms->topology().SocketOfWorker(static_cast<int>(worker), total_workers);
    ctx.active_threads = total_workers;
    ctx.clock = &clocks.clock(worker);
    const DenseCacheView* cache = cache_factory ? cache_factory(&ctx, w) : nullptr;
    if (cache == nullptr && meta != nullptr) {
      result.thread_breakdowns[worker] =
          ChargeWorkloadCsdb(a, b.cols(), (*meta)[worker], placements, ms, &ctx);
    } else {
      result.thread_breakdowns[worker] =
          ChargeWorkloadCsdb(a, b.cols(), w, placements, ms, &ctx, cache);
    }
  });

  for (size_t i = 0; i < n; ++i) {
    result.thread_seconds[i] = clocks.clock(i).seconds();
    result.total_breakdown += result.thread_breakdowns[i];
    result.nnz_processed += workloads[i].nnz;
  }
  result.phase_seconds = clocks.MaxSeconds();
  return result;
}

}  // namespace

ParallelSpmmResult ParallelSpmm(const graph::CsdbMatrix& a,
                                const linalg::DenseMatrix& b,
                                linalg::DenseMatrix* c,
                                const std::vector<sched::Workload>& workloads,
                                const SpmmPlacements& placements,
                                const exec::Context& ctx,
                                const CacheFactory& cache_factory) {
  return ParallelSpmmImpl(a, b, c, workloads, /*meta=*/nullptr, placements, ctx,
                          cache_factory);
}

ParallelSpmmResult ParallelSpmm(const graph::CsdbMatrix& a,
                                const linalg::DenseMatrix& b,
                                linalg::DenseMatrix* c, const SpmmPlan& plan,
                                const SpmmPlacements& placements,
                                const exec::Context& ctx,
                                const CacheFactory& cache_factory) {
  OMEGA_CHECK(plan.valid());
  return ParallelSpmmImpl(a, b, c, plan.workloads(), &plan.charge_meta(),
                          placements, ctx, cache_factory);
}

}  // namespace omega::sparse
