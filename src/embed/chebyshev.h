// Chebyshev approximation of spectral graph filters (§II-A).
//
// ProNE's stage 2 applies a band-pass filter g of the normalized Laplacian
// L = I - S (S = D^-1/2 A D^-1/2, spec(L) in [0, 2]) to the embedding block.
// With x = lambda - 1 in [-1, 1], h(x) = g(x + 1) expands as
//   h(x) ~= sum_{k=0}^{K-1} c_k T_k(x),
// whose coefficients come from Chebyshev-Gauss quadrature, and T_k(L - I) R
// follows the three-term recurrence — one SpMM with S per term, which is the
// dominant cost the paper optimizes.

#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "embed/prone.h"

namespace omega::embed {

/// Scalar filter of the Laplacian eigenvalue lambda in [0, 2].
using SpectralFilter = std::function<double(double)>;

/// ProNE's modulated Gaussian band-pass g(lambda) = exp(-theta/2 *
/// ((lambda - mu)^2 - 1)).
SpectralFilter ProneBandPass(double mu, double theta);

/// First `order` Chebyshev coefficients of h(x) = filter(x + 1) on [-1, 1]
/// via quadrature with `quad_points` nodes.
std::vector<double> ChebyshevCoefficients(const SpectralFilter& filter, int order,
                                          int quad_points = 256);

/// Computes out = sum_k c_k T_k(L - I) r, where L = I - S and `propagation`
/// is S in CSDB form. Each recurrence step issues one SpMM through `spmm`.
/// Returns the accumulated simulated seconds of all SpMMs.
///
/// `pool` parallelizes the dense AXPY/scale passes of the recurrence on the
/// host; it does not change the simulated charging (that happens inside
/// `spmm`) and the output is bit-identical at any thread count.
///
/// A non-null `capture` receives copies of the basis, every term T_1..T_{K-1}
/// and the coefficients (perm is the caller's to fill) — host-side state for
/// the incremental refresh path, no effect on charges or output.
///
/// `hooks` (see prone.h) checkpoints and resumes the recurrence: after_term
/// observes every completed term's exact state (non-OK aborts), and a valid
/// hooks->resume restarts at term resume->next_term with the restored
/// accumulator — skipped terms charge nothing and the final output is
/// bitwise identical to an uninterrupted run. resume + capture is
/// InvalidArgument.
Result<double> ChebyshevFilterApply(const graph::CsdbMatrix& propagation,
                                    const std::vector<double>& coefficients,
                                    const linalg::DenseMatrix& r,
                                    linalg::DenseMatrix* out,
                                    const SpmmExecutor& spmm,
                                    ThreadPool* pool = nullptr,
                                    ChebyshevCapture* capture = nullptr,
                                    const ChebyshevHooks* hooks = nullptr);

}  // namespace omega::embed
