#include "embed/random_walk.h"

#include <algorithm>
#include <cmath>

#include "common/alias_sampler.h"
#include "common/rng.h"

namespace omega::embed {

namespace {

// Second-order (node2vec) transition: pick a neighbor of `cur` biased by the
// previous node. Weights: back to prev -> 1/p, distance-1 from prev -> 1,
// distance-2 -> 1/q. Computed on the fly (graphs here are small); DeepWalk's
// uniform case short-circuits.
graph::NodeId NextStep(const graph::Graph& g, graph::NodeId prev, graph::NodeId cur,
                       double p, double q, Rng* rng) {
  const uint32_t deg = g.degree(cur);
  const graph::NodeId* nbrs = g.neighbors(cur);
  if (p == 1.0 && q == 1.0) {
    return nbrs[rng->NextBounded(deg)];
  }
  const graph::NodeId* prev_nbrs = g.neighbors(prev);
  const graph::NodeId* prev_end = prev_nbrs + g.degree(prev);
  // Rejection sampling against the max weight avoids building per-step
  // distributions.
  const double w_return = 1.0 / p;
  const double w_out = 1.0 / q;
  const double w_max = std::max({w_return, 1.0, w_out});
  for (int attempt = 0; attempt < 64; ++attempt) {
    const graph::NodeId candidate = nbrs[rng->NextBounded(deg)];
    double w;
    if (candidate == prev) {
      w = w_return;
    } else if (std::binary_search(prev_nbrs, prev_end, candidate)) {
      w = 1.0;
    } else {
      w = w_out;
    }
    if (rng->NextDouble() * w_max <= w) return candidate;
  }
  return nbrs[rng->NextBounded(deg)];
}

inline float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

Result<WalkCorpus> GenerateWalks(const graph::Graph& g, const WalkOptions& options) {
  if (options.walk_length < 2) {
    return Status::InvalidArgument("walk_length must be at least 2");
  }
  if (options.walks_per_node == 0) {
    return Status::InvalidArgument("walks_per_node must be positive");
  }
  if (options.p <= 0.0 || options.q <= 0.0) {
    return Status::InvalidArgument("node2vec p and q must be positive");
  }
  WalkCorpus corpus;
  corpus.walk_length = options.walk_length;
  corpus.nodes.reserve(static_cast<size_t>(g.num_nodes()) *
                       options.walks_per_node * options.walk_length);

  for (uint32_t round = 0; round < options.walks_per_node; ++round) {
    for (graph::NodeId start = 0; start < g.num_nodes(); ++start) {
      if (g.degree(start) == 0) continue;
      // Per-walk deterministic stream, independent of iteration order.
      Rng rng(SplitMix64(options.seed ^ (uint64_t{round} << 32 | start)));
      graph::NodeId prev = start;
      graph::NodeId cur = g.neighbors(start)[rng.NextBounded(g.degree(start))];
      corpus.nodes.push_back(start);
      corpus.nodes.push_back(cur);
      for (uint32_t step = 2; step < options.walk_length; ++step) {
        const graph::NodeId next =
            NextStep(g, prev, cur, options.p, options.q, &rng);
        corpus.nodes.push_back(next);
        prev = cur;
        cur = next;
      }
    }
  }
  return corpus;
}

Result<SgnsResult> TrainSgns(const graph::Graph& g, const WalkCorpus& corpus,
                             const SgnsOptions& options, memsim::MemorySystem* ms,
                             memsim::Placement placement, int threads) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be positive");
  if (corpus.walk_length == 0 || corpus.nodes.empty()) {
    return Status::InvalidArgument("empty walk corpus");
  }
  const size_t n = g.num_nodes();
  const size_t d = options.dim;

  // Input and output embedding tables, small random init.
  linalg::DenseMatrix in_table(n, d);
  linalg::DenseMatrix out_table(n, d);
  {
    Rng rng(options.seed);
    for (size_t c = 0; c < d; ++c) {
      float* col = in_table.ColData(c);
      for (size_t r = 0; r < n; ++r) {
        col[r] = static_cast<float>((rng.NextDouble() - 0.5) / d);
      }
    }
  }

  // Negative sampling from the unigram^0.75 degree distribution.
  std::vector<double> neg_weights(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    neg_weights[v] = std::pow(static_cast<double>(g.degree(v)), 0.75);
  }
  const AliasSampler negatives(neg_weights);

  Rng rng(SplitMix64(options.seed * 2654435761u + 1));
  SgnsResult result;
  std::vector<float> grad(d);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const float lr = static_cast<float>(options.learning_rate /
                                        (1.0 + 0.5 * epoch));
    for (size_t w = 0; w < corpus.num_walks(); ++w) {
      const graph::NodeId* walk = corpus.nodes.data() + w * corpus.walk_length;
      for (uint32_t i = 0; i < corpus.walk_length; ++i) {
        const graph::NodeId center = walk[i];
        const uint32_t lo = i >= options.window ? i - options.window : 0;
        const uint32_t hi =
            std::min<uint32_t>(corpus.walk_length - 1, i + options.window);
        for (uint32_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          const graph::NodeId context = walk[j];
          std::fill(grad.begin(), grad.end(), 0.0f);
          // One positive + `negatives` sampled negative updates.
          for (uint32_t s = 0; s <= options.negatives; ++s) {
            const graph::NodeId target =
                s == 0 ? context
                       : static_cast<graph::NodeId>(negatives.Sample(&rng));
            const float label = s == 0 ? 1.0f : 0.0f;
            float dot = 0.0f;
            for (size_t c = 0; c < d; ++c) {
              dot += in_table.At(center, c) * out_table.At(target, c);
            }
            const float delta = lr * (label - Sigmoid(dot));
            for (size_t c = 0; c < d; ++c) {
              grad[c] += delta * out_table.At(target, c);
              out_table.At(target, c) += delta * in_table.At(center, c);
            }
          }
          for (size_t c = 0; c < d; ++c) in_table.At(center, c) += grad[c];
          ++result.updates;
        }
      }
    }
  }

  // Simulated cost: each positive update touches 2 + negatives embedding
  // rows (read + write of d floats each) at the table's placement, split
  // over `threads` trainers (DistGER-style sharding).
  if (ms != nullptr) {
    const uint64_t row_touches = result.updates * (2 + options.negatives) * 2;
    const uint64_t bytes = row_touches * d * sizeof(float);
    memsim::SimClock clock;
    memsim::WorkerCtx ctx;
    ctx.clock = &clock;
    ctx.cpu_socket = std::max(0, placement.socket);
    ctx.active_threads = threads;
    ms->ChargeAccess(&ctx, placement, memsim::MemOp::kRead,
                     memsim::Pattern::kRandom, bytes / threads / 2,
                     row_touches / threads / 2);
    ms->ChargeAccess(&ctx, placement, memsim::MemOp::kWrite,
                     memsim::Pattern::kRandom, bytes / threads / 2,
                     row_touches / threads / 2);
    ms->ChargeCompute(&ctx, result.updates * (2 + options.negatives) * d * 4 /
                                threads);
    result.simulated_seconds = clock.seconds();
  }

  result.vectors = std::move(in_table);
  return result;
}

Result<SgnsResult> DeepWalkEmbed(const graph::Graph& g, const WalkOptions& walks,
                                 const SgnsOptions& sgns, memsim::MemorySystem* ms,
                                 memsim::Placement placement, int threads) {
  OMEGA_ASSIGN_OR_RETURN(WalkCorpus corpus, GenerateWalks(g, walks));
  OMEGA_ASSIGN_OR_RETURN(SgnsResult result,
                         TrainSgns(g, corpus, sgns, ms, placement, threads));
  // Charge walk generation: each step is a handful of random adjacency
  // probes.
  if (ms != nullptr) {
    const uint64_t steps = corpus.nodes.size();
    memsim::SimClock clock;
    memsim::WorkerCtx ctx;
    ctx.clock = &clock;
    ctx.cpu_socket = std::max(0, placement.socket);
    ctx.active_threads = threads;
    ms->ChargeAccess(&ctx, placement, memsim::MemOp::kRead,
                     memsim::Pattern::kRandom, steps * 64 / threads,
                     steps / threads);
    result.simulated_seconds += clock.seconds();
  }
  return result;
}

}  // namespace omega::embed
