// Random-walk embedding family (DeepWalk / node2vec; §II-A's first
// category): walk-corpus generation with optional node2vec (p, q) biasing,
// and a skip-gram-with-negative-sampling (SGNS) trainer over the corpus.
//
// This is the family the paper contrasts ProNE against ("it would take
// weeks for LINE and months for DeepWalk/node2vec to learn embeddings for a
// graph with 100 million nodes") and the workload class DistGER
// distributes. On the simulated machine, walk generation charges random
// adjacency probes and SGNS charges its embedding-row updates, so the
// DRAM/PM placement trade-offs apply to this family exactly as to SpMM.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "memsim/memory_system.h"

namespace omega::embed {

struct WalkOptions {
  uint32_t walks_per_node = 10;
  uint32_t walk_length = 40;
  /// node2vec return parameter p and in-out parameter q; p = q = 1 gives
  /// uniform DeepWalk walks.
  double p = 1.0;
  double q = 1.0;
  uint64_t seed = 17;
};

/// A walk corpus: flattened walks with uniform stride walk_length.
struct WalkCorpus {
  std::vector<graph::NodeId> nodes;  ///< size = #walks * walk_length
  uint32_t walk_length = 0;

  size_t num_walks() const {
    return walk_length == 0 ? 0 : nodes.size() / walk_length;
  }
};

/// Generates walks from every node. Isolated nodes produce no walks.
Result<WalkCorpus> GenerateWalks(const graph::Graph& g, const WalkOptions& options);

struct SgnsOptions {
  size_t dim = 32;
  uint32_t window = 5;
  uint32_t negatives = 5;
  double learning_rate = 0.025;
  int epochs = 1;
  uint64_t seed = 23;
};

struct SgnsResult {
  linalg::DenseMatrix vectors;  ///< |V| x dim, original node order
  double simulated_seconds = 0.0;
  uint64_t updates = 0;  ///< positive-pair gradient updates applied
};

/// Trains SGNS over the corpus. When `ms` is non-null, walk-table probes and
/// per-update embedding-row traffic are charged against the simulated
/// machine at `placement` (the embedding tables' home) and the result's
/// simulated_seconds reflects `threads`-way parallel training.
Result<SgnsResult> TrainSgns(const graph::Graph& g, const WalkCorpus& corpus,
                             const SgnsOptions& options,
                             memsim::MemorySystem* ms = nullptr,
                             memsim::Placement placement = {memsim::Tier::kDram, 0},
                             int threads = 1);

/// Convenience: GenerateWalks + TrainSgns (the DeepWalk/node2vec pipeline).
Result<SgnsResult> DeepWalkEmbed(const graph::Graph& g, const WalkOptions& walks,
                                 const SgnsOptions& sgns,
                                 memsim::MemorySystem* ms = nullptr,
                                 memsim::Placement placement = {memsim::Tier::kDram,
                                                                0},
                                 int threads = 1);

}  // namespace omega::embed
