#include "embed/prone.h"

#include <cmath>

#include "embed/chebyshev.h"
#include "linalg/randomized_svd.h"
#include "sparse/csdb_ops.h"

namespace omega::embed {

linalg::DenseMatrix EmbeddingResult::ToOriginalOrder() const {
  if (perm.empty()) return vectors;
  linalg::DenseMatrix out(vectors.rows(), vectors.cols());
  for (size_t c = 0; c < vectors.cols(); ++c) {
    const float* src = vectors.ColData(c);
    float* dst = out.ColData(c);
    for (size_t r = 0; r < vectors.rows(); ++r) dst[perm[r]] = src[r];
  }
  return out;
}

graph::CsdbMatrix BuildTargetMatrix(const graph::CsdbMatrix& adjacency,
                                    double neg_lambda) {
  graph::CsdbMatrix target = adjacency;
  // Structural degrees (entry counts per row) and the ProNE negative-sampling
  // distribution P_D(j) ~ d_j^0.75.
  std::vector<double> degrees(target.num_rows(), 0.0);
  double pd_norm = 0.0;
  for (auto cur = target.Rows(0); !cur.AtEnd(); cur.Next()) {
    degrees[cur.row()] = cur.degree();
    pd_norm += std::pow(static_cast<double>(cur.degree()), 0.75);
  }
  if (pd_norm <= 0.0) pd_norm = 1.0;

  sparse::ApplyElementwise(&target, [&](uint32_t row, graph::NodeId col, float v) {
    const double di = std::max(1.0, degrees[row]);
    const double dj = std::max(1.0, degrees[col]);
    const double p = static_cast<double>(v) / std::sqrt(di * dj);
    // Symmetrized negative-sampling shift sqrt(P_D(i) P_D(j)) so that the
    // target stays symmetric (apply == apply^T in the tSVD; see header).
    const double pd =
        std::sqrt(std::pow(di, 0.75) * std::pow(dj, 0.75)) / pd_norm;
    const double val = std::log(std::max(p, 1e-12)) -
                       std::log(std::max(neg_lambda * pd, 1e-12));
    // Shifted-PPMI truncation keeps the factorized matrix non-negative.
    return static_cast<float>(std::max(val, 0.0));
  });
  return target;
}

graph::CsdbMatrix BuildPropagationMatrix(const graph::CsdbMatrix& adjacency) {
  graph::CsdbMatrix s = adjacency;
  sparse::SymmetricNormalize(&s);
  return s;
}

Result<EmbeddingResult> ProneEmbed(const graph::CsdbMatrix& adjacency,
                                   const ProneOptions& options,
                                   const SpmmExecutor& spmm) {
  if (options.dim == 0) return Status::InvalidArgument("embedding dim must be > 0");
  if (adjacency.num_rows() != adjacency.num_cols()) {
    return Status::InvalidArgument("adjacency must be square");
  }
  const size_t n = adjacency.num_rows();
  if (options.dim + options.oversample > n) {
    return Status::InvalidArgument("dim + oversample exceeds node count");
  }

  EmbeddingResult result;
  result.perm = adjacency.perm();
  const ProneDurability* durability = options.durability;

  // ----- Stage 1: sparse matrix factorization via randomized tSVD. ---------
  // Scoped so the target matrix is freed before stage 2 builds the
  // propagation matrix (peak: adjacency + one derived sparse matrix).
  linalg::DenseMatrix r0;
  if (durability != nullptr && durability->resume_r0 != nullptr) {
    // Restored basis: stage 1 is skipped entirely — no tSVD work, no
    // factorize charges, no stage notification.
    r0 = *durability->resume_r0;
  } else {
    if (options.stage_notifier) options.stage_notifier("factorize");
    const graph::CsdbMatrix target =
        BuildTargetMatrix(adjacency, options.neg_lambda);
    double factorize_seconds = 0.0;
    linalg::MatMulFn apply = [&](const linalg::DenseMatrix& in,
                                 linalg::DenseMatrix* out) -> Status {
      auto res = spmm(target, in, out);
      if (!res.ok()) return res.status();
      factorize_seconds += res.value();
      return Status::OK();
    };
    // Symmetric target: apply == apply^T (see header).
    linalg::RandomizedSvdOptions svd_opts;
    svd_opts.rank = options.dim;
    svd_opts.oversample = options.oversample;
    svd_opts.power_iterations = options.power_iterations;
    svd_opts.seed = options.seed;
    svd_opts.pool = options.pool;
    OMEGA_ASSIGN_OR_RETURN(linalg::SvdResult svd,
                           linalg::RandomizedSvd(n, n, apply, apply, svd_opts));

    // R = U * sqrt(Sigma).
    r0 = std::move(svd.u);
    for (size_t c = 0; c < options.dim; ++c) {
      const float scale =
          static_cast<float>(std::sqrt(std::max(0.0, svd.singular[c])));
      float* col = r0.ColData(c);
      for (size_t i = 0; i < n; ++i) col[i] *= scale;
    }
    result.factorize_seconds = factorize_seconds;
  }
  if (durability != nullptr && durability->after_factorize &&
      durability->resume_r0 == nullptr) {
    OMEGA_RETURN_NOT_OK(durability->after_factorize(r0));
  }

  // ----- Stage 2: Chebyshev spectral propagation. ---------------------------
  if (options.stage_notifier) options.stage_notifier("propagate");
  const graph::CsdbMatrix propagation = BuildPropagationMatrix(adjacency);
  const std::vector<double> coeffs = ChebyshevCoefficients(
      ProneBandPass(options.mu, options.theta), options.chebyshev_order);
  OMEGA_ASSIGN_OR_RETURN(
      double propagate_seconds,
      ChebyshevFilterApply(propagation, coeffs, r0, &result.vectors, spmm,
                           options.pool, options.capture,
                           durability != nullptr ? &durability->cheb
                                                 : nullptr));
  if (options.capture != nullptr) options.capture->perm = adjacency.perm();
  result.propagate_seconds = propagate_seconds;
  result.total_seconds = result.factorize_seconds + result.propagate_seconds;

  if (options.l2_normalize_rows) {
    // Per-row normalization is independent work; fan rows out when a pool is
    // available (identical arithmetic per row, so bit-identical output).
    auto normalize_rows = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double norm2 = 0.0;
        for (size_t c = 0; c < options.dim; ++c) {
          const double v = result.vectors.At(i, c);
          norm2 += v * v;
        }
        const float inv =
            norm2 > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
        for (size_t c = 0; c < options.dim; ++c) result.vectors.At(i, c) *= inv;
      }
    };
    if (options.pool != nullptr && options.pool->size() > 1 && n >= 4096) {
      options.pool->ParallelFor(
          n, [&](size_t, size_t begin, size_t end) { normalize_rows(begin, end); });
    } else {
      normalize_rows(0, n);
    }
  }
  return result;
}

}  // namespace omega::embed
