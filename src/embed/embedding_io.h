// Persistence for embedding matrices: TSV (interoperable with downstream ML
// tooling, one "node dim0 dim1 ..." row per node) and a compact binary format.

#pragma once

#include <string>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace omega::embed {

/// Writes one line per node: "<node_id>\t<v0>\t<v1>...". Node ids are row
/// indices, so pass a matrix in original node order.
Status SaveEmbeddingTsv(const linalg::DenseMatrix& vectors, const std::string& path);

/// Binary round-trip format: magic + dims + float payload.
Status SaveEmbeddingBinary(const linalg::DenseMatrix& vectors,
                           const std::string& path);
Result<linalg::DenseMatrix> LoadEmbeddingBinary(const std::string& path);

}  // namespace omega::embed
