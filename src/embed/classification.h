// Node-classification evaluation — the second downstream task the paper's
// introduction motivates ("link prediction and classification tasks", §I).
//
// Protocol: a labeled train split defines one centroid per class in
// embedding space; test nodes are classified by nearest centroid (cosine).
// Micro-F1 (= accuracy in the single-label case) is the usual metric of the
// embedding literature the paper builds on.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace omega::embed {

struct ClassificationOptions {
  double train_fraction = 0.5;
  uint64_t seed = 13;
};

struct ClassificationResult {
  double micro_f1 = 0.0;  ///< == accuracy for single-label classification
  size_t train_size = 0;
  size_t test_size = 0;
  uint32_t num_classes = 0;
};

/// Evaluates `vectors` (one row per node, original order) against the
/// ground-truth `labels` with a nearest-centroid classifier on a random
/// train/test split.
Result<ClassificationResult> EvaluateClassification(
    const linalg::DenseMatrix& vectors, const std::vector<uint32_t>& labels,
    const ClassificationOptions& options = {});

}  // namespace omega::embed
