#include "embed/quality.h"

#include <algorithm>

#include "common/rng.h"

namespace omega::embed {

double EmbeddingScore(const linalg::DenseMatrix& vectors, graph::NodeId u,
                      graph::NodeId v) {
  double score = 0.0;
  for (size_t c = 0; c < vectors.cols(); ++c) {
    score += static_cast<double>(vectors.At(u, c)) * vectors.At(v, c);
  }
  return score;
}

Result<double> LinkPredictionAuc(const graph::Graph& g,
                                 const linalg::DenseMatrix& vectors,
                                 size_t num_samples, uint64_t seed) {
  if (vectors.rows() != g.num_nodes()) {
    return Status::InvalidArgument("embedding rows != node count");
  }
  if (g.num_arcs() == 0) return Status::InvalidArgument("graph has no edges");
  Rng rng(seed);

  auto has_edge = [&](graph::NodeId u, graph::NodeId v) {
    const graph::NodeId* begin = g.neighbors(u);
    const graph::NodeId* end = begin + g.degree(u);
    return std::binary_search(begin, end, v);
  };

  std::vector<double> pos_scores;
  std::vector<double> neg_scores;
  pos_scores.reserve(num_samples);
  neg_scores.reserve(num_samples);

  while (pos_scores.size() < num_samples) {
    // Sample a random arc: random node weighted by presence of neighbors.
    const graph::NodeId u = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    if (g.degree(u) == 0) continue;
    const graph::NodeId v = g.neighbors(u)[rng.NextBounded(g.degree(u))];
    pos_scores.push_back(EmbeddingScore(vectors, u, v));
  }
  size_t guard = 0;
  while (neg_scores.size() < num_samples && guard < num_samples * 100) {
    ++guard;
    const graph::NodeId u = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    const graph::NodeId v = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    if (u == v || has_edge(u, v)) continue;
    neg_scores.push_back(EmbeddingScore(vectors, u, v));
  }
  if (neg_scores.empty()) return Status::Internal("could not sample non-edges");

  // Pairwise comparison estimate of the AUC.
  uint64_t wins = 0;
  uint64_t ties = 0;
  for (size_t i = 0; i < pos_scores.size(); ++i) {
    const double neg = neg_scores[i % neg_scores.size()];
    if (pos_scores[i] > neg) {
      ++wins;
    } else if (pos_scores[i] == neg) {
      ++ties;
    }
  }
  return (wins + 0.5 * ties) / static_cast<double>(pos_scores.size());
}

std::vector<graph::NodeId> TopKSimilar(const linalg::DenseMatrix& vectors,
                                       graph::NodeId query, size_t k) {
  std::vector<std::pair<double, graph::NodeId>> scored;
  scored.reserve(vectors.rows());
  for (graph::NodeId v = 0; v < vectors.rows(); ++v) {
    if (v == query) continue;
    scored.emplace_back(EmbeddingScore(vectors, query, v), v);
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<graph::NodeId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace omega::embed
