// Embedding quality checks: link-prediction AUC and nearest-neighbor queries.
//
// OMeGa is a systems contribution — it reuses ProNE's model, so quality must
// match a ProNE run on the same graph (§IV-B: "it maintains the effectiveness
// of graph representation of ProNE"). These utilities let tests and examples
// verify the embeddings actually carry structure.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"

namespace omega::embed {

/// AUC of dot-product scores separating `num_samples` existing edges from
/// `num_samples` random non-edges. `vectors` must be in original node order.
/// ~0.5 is random; structure-carrying embeddings score well above.
Result<double> LinkPredictionAuc(const graph::Graph& g,
                                 const linalg::DenseMatrix& vectors,
                                 size_t num_samples, uint64_t seed);

/// Top-k most similar nodes to `query` by dot product (excluding `query`).
std::vector<graph::NodeId> TopKSimilar(const linalg::DenseMatrix& vectors,
                                       graph::NodeId query, size_t k);

/// Dot product of two embedding rows.
double EmbeddingScore(const linalg::DenseMatrix& vectors, graph::NodeId u,
                      graph::NodeId v);

}  // namespace omega::embed
