#include "embed/gnn.h"

#include <cmath>

#include "linalg/gemm.h"
#include "linalg/random_matrix.h"
#include "sparse/csdb_ops.h"

namespace omega::embed {

namespace {

// Xavier-ish scaled Gaussian weights.
linalg::DenseMatrix MakeWeights(size_t in_dim, size_t out_dim, uint64_t seed) {
  linalg::DenseMatrix w = linalg::GaussianMatrix(in_dim, out_dim, seed);
  w.Scale(static_cast<float>(1.0 / std::sqrt(static_cast<double>(in_dim))));
  return w;
}

void ReluInPlace(linalg::DenseMatrix* m) {
  float* data = m->data();
  for (size_t i = 0; i < m->size(); ++i) data[i] = std::max(0.0f, data[i]);
}

}  // namespace

Result<GnnResult> GnnForward(const graph::CsdbMatrix& adjacency,
                             const linalg::DenseMatrix& features,
                             const GnnOptions& options, const SpmmExecutor& spmm,
                             double cpu_ops_per_second) {
  if (options.num_layers <= 0) {
    return Status::InvalidArgument("num_layers must be positive");
  }
  if (adjacency.num_rows() != adjacency.num_cols()) {
    return Status::InvalidArgument("adjacency must be square");
  }
  const size_t n = adjacency.num_rows();

  // Mean aggregator: row-normalized adjacency.
  graph::CsdbMatrix s = adjacency;
  sparse::RowNormalize(&s);

  linalg::DenseMatrix h = features;
  if (h.rows() == 0) {
    h = linalg::GaussianMatrix(n, options.input_dim, options.seed ^ 0xfeedULL);
  } else if (h.rows() != n) {
    return Status::InvalidArgument("features must have one row per node");
  }

  GnnResult result;
  for (int layer = 0; layer < options.num_layers; ++layer) {
    const size_t out_dim = (layer == options.num_layers - 1) ? options.output_dim
                                                             : options.hidden_dim;
    const linalg::DenseMatrix w_agg =
        MakeWeights(h.cols(), out_dim, options.seed + 2 * layer);
    const linalg::DenseMatrix w_self =
        MakeWeights(h.cols(), out_dim, options.seed + 2 * layer + 1);

    // Aggregation: one charged SpMM per layer.
    linalg::DenseMatrix aggregated;
    OMEGA_ASSIGN_OR_RETURN(double secs, spmm(s, h, &aggregated));
    result.spmm_seconds += secs;

    // Weight multiplies: real GEMMs, charged at the simulated CPU rate.
    linalg::DenseMatrix next;
    OMEGA_RETURN_NOT_OK(linalg::Gemm(aggregated, w_agg, &next));
    linalg::DenseMatrix self_part;
    OMEGA_RETURN_NOT_OK(linalg::Gemm(h, w_self, &self_part));
    OMEGA_RETURN_NOT_OK(next.AddScaled(self_part, 1.0f));
    result.dense_seconds += 2.0 * 2.0 * static_cast<double>(n) * h.cols() *
                            out_dim / cpu_ops_per_second;

    if (layer + 1 < options.num_layers) ReluInPlace(&next);
    h = std::move(next);
  }

  if (options.l2_normalize_rows) {
    for (size_t r = 0; r < n; ++r) {
      double norm2 = 0.0;
      for (size_t c = 0; c < h.cols(); ++c) {
        norm2 += static_cast<double>(h.At(r, c)) * h.At(r, c);
      }
      const float inv = norm2 > 0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
      for (size_t c = 0; c < h.cols(); ++c) h.At(r, c) *= inv;
    }
  }
  result.embeddings = std::move(h);
  return result;
}

}  // namespace omega::embed
