// ProNE (Zhang et al., IJCAI'19) — the matrix-factorization embedding model
// OMeGa uses as its prototype (§II-A, §IV-A).
//
// Stage 1 (SMF): factorize a shifted-PMI-style target matrix built from the
// adjacency structure with a randomized truncated SVD; the embedding is
// U_d * sqrt(Sigma_d).
// Stage 2 (spectral propagation): smooth the embedding with a band-pass
// Chebyshev filter of the normalized graph Laplacian (embed/chebyshev.h);
// every Chebyshev term is one SpMM — this is where ~70% of the paper's total
// runtime goes and where all of OMeGa's optimizations apply.
//
// Deviation from upstream ProNE (documented in DESIGN.md): the target matrix
// is symmetrized (ln(a_ij / sqrt(d_i d_j)) - ln(lambda * P_D(j)) with the
// symmetric normalizer) so that apply == apply^T in the tSVD; upstream uses
// the row-normalized asymmetric variant. The spectral behaviour is the same.

#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/csdb.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"

namespace omega::embed {

/// Host-side snapshot of the stage-2 Chebyshev recurrence state, captured
/// during a full run so a dynamic embedder can refresh only the rows a graph
/// delta affects (omega/incremental.h). All matrices are in the CSDB row
/// order of the adjacency the run used; `perm` records that order so a later
/// epoch (whose degree-descending order may differ) can re-permute them.
struct ChebyshevCapture {
  linalg::DenseMatrix r0;                  ///< stage-1 basis R = T_0
  std::vector<linalg::DenseMatrix> terms;  ///< T_1 .. T_{K-1}
  std::vector<double> coefficients;        ///< c_0 .. c_{K-1}
  std::vector<graph::NodeId> perm;         ///< CSDB row -> node id at capture

  bool valid() const { return r0.rows() > 0 && !coefficients.empty(); }
};

/// Restart point of the stage-2 Chebyshev recurrence, restored from a
/// checkpoint: the two live terms plus the partial filter accumulator, all
/// bitwise as captured. The recurrence continues at term `next_term`; its
/// output is byte-identical to an uninterrupted run because every skipped
/// term's floats come back exactly (and every skipped SpMM's simulated
/// charge is skipped with it).
struct ChebyshevResume {
  uint64_t next_term = 0;       ///< first term still to compute (>= 2)
  linalg::DenseMatrix t_prev;   ///< T_{next_term - 2}
  linalg::DenseMatrix t_cur;    ///< T_{next_term - 1}
  linalg::DenseMatrix partial;  ///< sum_{k < next_term} c_k T_k

  bool valid() const { return next_term >= 2 && t_cur.rows() > 0; }
};

/// Durability hooks of the stage-2 recurrence. `after_term` fires once term
/// k's contribution has landed in the accumulator (so next_term == k + 1)
/// with the exact state a ChebyshevResume needs; a non-OK return aborts the
/// recurrence (the engine's simulated kill points and checkpoint IO errors
/// propagate this way). `resume` restarts mid-recurrence instead of at T_1.
struct ChebyshevHooks {
  std::function<Status(size_t next_term, const linalg::DenseMatrix& t_prev,
                       const linalg::DenseMatrix& t_cur,
                       const linalg::DenseMatrix& partial)>
      after_term;
  const ChebyshevResume* resume = nullptr;
};

/// Durability hooks of a full ProNE run (engine checkpointing).
struct ProneDurability {
  /// Fires with the stage-1 basis R before stage 2 begins; non-OK aborts.
  std::function<Status(const linalg::DenseMatrix& r0)> after_factorize;
  /// Skips stage 1 entirely (no tSVD, no "factorize" stage notification, no
  /// factorize charges) and uses this basis, restored from a checkpoint.
  const linalg::DenseMatrix* resume_r0 = nullptr;
  /// Stage-2 hooks, forwarded to ChebyshevFilterApply.
  ChebyshevHooks cheb;
};

/// Executes one full-width SpMM out = m * in on behalf of the embedder and
/// returns its *simulated* seconds. Engines inject their charged kernels
/// (EaTA/WoFP/NaDP/ASL or any baseline) through this hook.
using SpmmExecutor = std::function<Result<double>(
    const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
    linalg::DenseMatrix* out)>;

struct ProneOptions {
  size_t dim = 32;            ///< embedding dimension d
  size_t oversample = 8;      ///< tSVD oversampling
  int power_iterations = 1;   ///< tSVD subspace iterations
  int chebyshev_order = 8;    ///< number of Chebyshev terms (SpMMs) in stage 2
  double mu = 0.2;            ///< band-pass center (ProNE default)
  double theta = 0.5;         ///< band-pass width (ProNE default)
  double neg_lambda = 1.0;    ///< negative-sampling shift of the target matrix
  uint64_t seed = 7;
  bool l2_normalize_rows = true;  ///< cosine-ready output rows

  /// Optional worker pool for the host-side dense stages (tSVD QR/GEMM, the
  /// Chebyshev recurrence's AXPYs, row normalization). Pure wall-clock
  /// parallelism: simulated seconds and embedding bytes are unchanged by it
  /// (fixed-order reductions; see gemm.h).
  ThreadPool* pool = nullptr;

  /// Optional: invoked when a pipeline stage begins ("factorize" before the
  /// tSVD's first SpMM, "propagate" before the Chebyshev recurrence). The
  /// engines use this to label their per-SpMM trace spans by stage.
  std::function<void(const char* stage)> stage_notifier;

  /// Optional: filled with the stage-2 recurrence state (basis, Chebyshev
  /// terms, coefficients, row perm) for later incremental refresh. Host-side
  /// only — capturing changes no simulated charge and no output byte.
  ChebyshevCapture* capture = nullptr;

  /// Optional checkpoint/restore hooks (see ProneDurability). Combining a
  /// mid-recurrence resume with `capture` is InvalidArgument: a resumed run
  /// cannot rebuild the skipped terms the capture would need.
  const ProneDurability* durability = nullptr;
};

/// Result of an embedding run. Vectors are in the CSDB (degree-sorted) id
/// space; row i embeds original node perm[i].
struct EmbeddingResult {
  linalg::DenseMatrix vectors;        ///< |V| x dim
  std::vector<graph::NodeId> perm;    ///< CSDB row -> original node id
  double factorize_seconds = 0.0;     ///< simulated, stage 1
  double propagate_seconds = 0.0;     ///< simulated, stage 2
  double total_seconds = 0.0;         ///< simulated end-to-end model time

  /// Rearranges the rows into original node-id order (row v = node v).
  linalg::DenseMatrix ToOriginalOrder() const;
};

/// Builds the (symmetrized) target matrix of stage 1 from the adjacency.
graph::CsdbMatrix BuildTargetMatrix(const graph::CsdbMatrix& adjacency,
                                    double neg_lambda);

/// Builds the symmetric-normalized propagation matrix D^-1/2 A D^-1/2.
graph::CsdbMatrix BuildPropagationMatrix(const graph::CsdbMatrix& adjacency);

/// Runs both ProNE stages using `spmm` for all sparse products.
Result<EmbeddingResult> ProneEmbed(const graph::CsdbMatrix& adjacency,
                                   const ProneOptions& options,
                                   const SpmmExecutor& spmm);

}  // namespace omega::embed
