#include "embed/embedding_io.h"

#include <cstdio>
#include <fstream>

namespace omega::embed {

namespace {
constexpr uint64_t kEmbeddingMagic = 0x4F4D4547412D4531ULL;  // "OMEGA-E1"
}

Status SaveEmbeddingTsv(const linalg::DenseMatrix& vectors,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for writing");
  for (size_t r = 0; r < vectors.rows(); ++r) {
    std::fprintf(f, "%zu", r);
    for (size_t c = 0; c < vectors.cols(); ++c) {
      std::fprintf(f, "\t%.6g", vectors.At(r, c));
    }
    std::fputc('\n', f);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveEmbeddingBinary(const linalg::DenseMatrix& vectors,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t magic = kEmbeddingMagic;
  const uint64_t rows = vectors.rows();
  const uint64_t cols = vectors.cols();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(vectors.data()),
            static_cast<std::streamsize>(vectors.size() * sizeof(float)));
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<linalg::DenseMatrix> LoadEmbeddingBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t magic = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || magic != kEmbeddingMagic) {
    return Status::IOError(path + ": not an omega embedding file");
  }
  linalg::DenseMatrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) return Status::IOError(path + ": truncated embedding file");
  return m;
}

}  // namespace omega::embed
