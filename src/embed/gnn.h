// GNN-style message-passing forward pass on the charged SpMM kernels.
//
// The paper positions SpMM as the shared kernel of all three embedding
// families — "PageRank calculation in random walks, message aggregation in
// GNN, and matrix operations ubiquitous in MF" (§II-A) — and argues OMeGa's
// optimizations are model-agnostic (§VI). This module demonstrates that: a
// GraphSAGE-like mean-aggregation network whose per-layer aggregation
//   H^{l+1} = act( S H^l W_agg + H^l W_self )
// (S = D^-1 A) runs through the same SpmmExecutor hook as ProNE, so every
// OMeGa optimization (EaTA/WoFP/NaDP/ASL) applies unchanged.

#pragma once

#include <cstdint>

#include "common/status.h"
#include "embed/prone.h"
#include "graph/csdb.h"
#include "linalg/dense_matrix.h"

namespace omega::embed {

struct GnnOptions {
  int num_layers = 2;
  size_t input_dim = 32;   ///< used when no feature matrix is supplied
  size_t hidden_dim = 32;
  size_t output_dim = 32;
  uint64_t seed = 11;
  bool l2_normalize_rows = true;
};

struct GnnResult {
  linalg::DenseMatrix embeddings;  ///< |V| x output_dim, CSDB id space
  double spmm_seconds = 0.0;       ///< simulated aggregation time
  double dense_seconds = 0.0;      ///< simulated weight-multiply time (host est.)
};

/// Runs the forward pass. `features` supplies H^0 (|V| x input_dim); pass an
/// empty matrix to use deterministic random features. All sparse
/// aggregations go through `spmm`; weight multiplies are estimated at the
/// simulated CPU rate.
Result<GnnResult> GnnForward(const graph::CsdbMatrix& adjacency,
                             const linalg::DenseMatrix& features,
                             const GnnOptions& options, const SpmmExecutor& spmm,
                             double cpu_ops_per_second = 4.0e9);

}  // namespace omega::embed
