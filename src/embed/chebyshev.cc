#include "embed/chebyshev.h"

#include <cmath>

namespace omega::embed {

SpectralFilter ProneBandPass(double mu, double theta) {
  return [mu, theta](double lambda) {
    const double centered = lambda - mu;
    return std::exp(-0.5 * theta * (centered * centered - 1.0));
  };
}

std::vector<double> ChebyshevCoefficients(const SpectralFilter& filter, int order,
                                          int quad_points) {
  std::vector<double> coeffs(order, 0.0);
  const double pi = 3.14159265358979323846;
  for (int j = 0; j < quad_points; ++j) {
    const double theta = pi * (j + 0.5) / quad_points;
    const double x = std::cos(theta);
    const double hx = filter(x + 1.0);  // lambda = x + 1 in [0, 2]
    for (int k = 0; k < order; ++k) {
      coeffs[k] += hx * std::cos(k * theta);
    }
  }
  for (int k = 0; k < order; ++k) {
    coeffs[k] *= (k == 0 ? 1.0 : 2.0) / quad_points;
  }
  return coeffs;
}

Result<double> ChebyshevFilterApply(const graph::CsdbMatrix& propagation,
                                    const std::vector<double>& coefficients,
                                    const linalg::DenseMatrix& r,
                                    linalg::DenseMatrix* out,
                                    const SpmmExecutor& spmm, ThreadPool* pool,
                                    ChebyshevCapture* capture,
                                    const ChebyshevHooks* hooks) {
  if (coefficients.empty()) return Status::InvalidArgument("no coefficients");
  const bool resuming = hooks != nullptr && hooks->resume != nullptr &&
                        hooks->resume->valid();
  if (resuming && capture != nullptr) {
    return Status::InvalidArgument(
        "Chebyshev resume cannot rebuild the terms a capture needs");
  }
  const size_t n = r.rows();
  const size_t d = r.cols();
  double sim_seconds = 0.0;
  if (capture != nullptr) {
    capture->r0 = r;
    capture->coefficients = coefficients;
    capture->terms.clear();
  }

  auto after_term = [&](size_t next_term, const linalg::DenseMatrix& prev,
                        const linalg::DenseMatrix& cur) -> Status {
    if (hooks != nullptr && hooks->after_term) {
      return hooks->after_term(next_term, prev, cur, *out);
    }
    return Status::OK();
  };

  // L - I = -S, so T_1 = -S R and T_{k+1} = -2 S T_k - T_{k-1}.
  linalg::DenseMatrix t_prev;
  linalg::DenseMatrix t_cur;
  linalg::DenseMatrix tmp(n, d);
  size_t first_term = 2;
  if (resuming) {
    // Everything through term next_term - 1 is already in the restored
    // accumulator; the skipped terms' SpMMs charge nothing.
    *out = hooks->resume->partial;
    t_prev = hooks->resume->t_prev;
    t_cur = hooks->resume->t_cur;
    first_term = hooks->resume->next_term;
  } else {
    *out = linalg::DenseMatrix(n, d);
    OMEGA_RETURN_NOT_OK(
        out->AddScaled(r, static_cast<float>(coefficients[0]), pool));
    t_prev = r;  // T_0
    t_cur = linalg::DenseMatrix(n, d);
    if (coefficients.size() > 1) {
      OMEGA_ASSIGN_OR_RETURN(double secs, spmm(propagation, r, &tmp));
      sim_seconds += secs;
      t_cur = tmp;
      t_cur.Scale(-1.0f, pool);
      OMEGA_RETURN_NOT_OK(
          out->AddScaled(t_cur, static_cast<float>(coefficients[1]), pool));
      if (capture != nullptr) capture->terms.push_back(t_cur);
      OMEGA_RETURN_NOT_OK(after_term(2, t_prev, t_cur));
    }
  }

  for (size_t k = first_term; k < coefficients.size(); ++k) {
    OMEGA_ASSIGN_OR_RETURN(double secs, spmm(propagation, t_cur, &tmp));
    sim_seconds += secs;
    // T_k = -2 S T_{k-1} - T_{k-2}.
    linalg::DenseMatrix t_next(n, d);
    OMEGA_RETURN_NOT_OK(t_next.AddScaled(tmp, -2.0f, pool));
    OMEGA_RETURN_NOT_OK(t_next.AddScaled(t_prev, -1.0f, pool));
    OMEGA_RETURN_NOT_OK(
        out->AddScaled(t_next, static_cast<float>(coefficients[k]), pool));
    if (capture != nullptr) capture->terms.push_back(t_next);
    t_prev = std::move(t_cur);
    t_cur = std::move(t_next);
    OMEGA_RETURN_NOT_OK(after_term(k + 1, t_prev, t_cur));
  }
  return sim_seconds;
}

}  // namespace omega::embed
