#include "embed/chebyshev.h"

#include <cmath>

namespace omega::embed {

SpectralFilter ProneBandPass(double mu, double theta) {
  return [mu, theta](double lambda) {
    const double centered = lambda - mu;
    return std::exp(-0.5 * theta * (centered * centered - 1.0));
  };
}

std::vector<double> ChebyshevCoefficients(const SpectralFilter& filter, int order,
                                          int quad_points) {
  std::vector<double> coeffs(order, 0.0);
  const double pi = 3.14159265358979323846;
  for (int j = 0; j < quad_points; ++j) {
    const double theta = pi * (j + 0.5) / quad_points;
    const double x = std::cos(theta);
    const double hx = filter(x + 1.0);  // lambda = x + 1 in [0, 2]
    for (int k = 0; k < order; ++k) {
      coeffs[k] += hx * std::cos(k * theta);
    }
  }
  for (int k = 0; k < order; ++k) {
    coeffs[k] *= (k == 0 ? 1.0 : 2.0) / quad_points;
  }
  return coeffs;
}

Result<double> ChebyshevFilterApply(const graph::CsdbMatrix& propagation,
                                    const std::vector<double>& coefficients,
                                    const linalg::DenseMatrix& r,
                                    linalg::DenseMatrix* out,
                                    const SpmmExecutor& spmm, ThreadPool* pool,
                                    ChebyshevCapture* capture) {
  if (coefficients.empty()) return Status::InvalidArgument("no coefficients");
  const size_t n = r.rows();
  const size_t d = r.cols();
  double sim_seconds = 0.0;
  if (capture != nullptr) {
    capture->r0 = r;
    capture->coefficients = coefficients;
    capture->terms.clear();
  }

  // L - I = -S, so T_1 = -S R and T_{k+1} = -2 S T_k - T_{k-1}.
  *out = linalg::DenseMatrix(n, d);
  OMEGA_RETURN_NOT_OK(out->AddScaled(r, static_cast<float>(coefficients[0]), pool));

  linalg::DenseMatrix t_prev = r;  // T_0
  linalg::DenseMatrix t_cur(n, d);
  linalg::DenseMatrix tmp(n, d);
  if (coefficients.size() > 1) {
    OMEGA_ASSIGN_OR_RETURN(double secs, spmm(propagation, r, &tmp));
    sim_seconds += secs;
    t_cur = tmp;
    t_cur.Scale(-1.0f, pool);
    OMEGA_RETURN_NOT_OK(
        out->AddScaled(t_cur, static_cast<float>(coefficients[1]), pool));
    if (capture != nullptr) capture->terms.push_back(t_cur);
  }

  for (size_t k = 2; k < coefficients.size(); ++k) {
    OMEGA_ASSIGN_OR_RETURN(double secs, spmm(propagation, t_cur, &tmp));
    sim_seconds += secs;
    // T_k = -2 S T_{k-1} - T_{k-2}.
    linalg::DenseMatrix t_next(n, d);
    OMEGA_RETURN_NOT_OK(t_next.AddScaled(tmp, -2.0f, pool));
    OMEGA_RETURN_NOT_OK(t_next.AddScaled(t_prev, -1.0f, pool));
    OMEGA_RETURN_NOT_OK(
        out->AddScaled(t_next, static_cast<float>(coefficients[k]), pool));
    if (capture != nullptr) capture->terms.push_back(t_next);
    t_prev = std::move(t_cur);
    t_cur = std::move(t_next);
  }
  return sim_seconds;
}

}  // namespace omega::embed
