#include "embed/classification.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace omega::embed {

Result<ClassificationResult> EvaluateClassification(
    const linalg::DenseMatrix& vectors, const std::vector<uint32_t>& labels,
    const ClassificationOptions& options) {
  if (vectors.rows() != labels.size()) {
    return Status::InvalidArgument("one label per embedding row required");
  }
  if (vectors.rows() < 4) {
    return Status::InvalidArgument("too few nodes to split");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  const size_t n = vectors.rows();
  const size_t d = vectors.cols();
  const uint32_t num_classes = *std::max_element(labels.begin(), labels.end()) + 1;

  // Deterministic shuffled split.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(i + 1)]);
  }
  const size_t train_size =
      std::max<size_t>(1, static_cast<size_t>(n * options.train_fraction));

  // Class centroids from the training rows.
  std::vector<std::vector<double>> centroids(num_classes,
                                             std::vector<double>(d, 0.0));
  std::vector<size_t> class_counts(num_classes, 0);
  for (size_t i = 0; i < train_size; ++i) {
    const uint32_t node = order[i];
    const uint32_t label = labels[node];
    for (size_t c = 0; c < d; ++c) centroids[label][c] += vectors.At(node, c);
    class_counts[label]++;
  }
  for (uint32_t k = 0; k < num_classes; ++k) {
    if (class_counts[k] == 0) continue;
    double norm2 = 0.0;
    for (double v : centroids[k]) norm2 += v * v;
    const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (double& v : centroids[k]) v *= inv;
  }

  // Nearest-centroid (cosine) classification of the test rows.
  size_t correct = 0;
  size_t tested = 0;
  for (size_t i = train_size; i < n; ++i) {
    const uint32_t node = order[i];
    double best_score = -1e300;
    uint32_t best_class = 0;
    for (uint32_t k = 0; k < num_classes; ++k) {
      if (class_counts[k] == 0) continue;
      double score = 0.0;
      for (size_t c = 0; c < d; ++c) score += centroids[k][c] * vectors.At(node, c);
      if (score > best_score) {
        best_score = score;
        best_class = k;
      }
    }
    correct += best_class == labels[node];
    ++tested;
  }
  if (tested == 0) return Status::Internal("empty test split");

  ClassificationResult result;
  result.micro_f1 = static_cast<double>(correct) / tested;
  result.train_size = train_size;
  result.test_size = tested;
  result.num_classes = num_classes;
  return result;
}

}  // namespace omega::embed
