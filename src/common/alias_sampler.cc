#include "common/alias_sampler.h"

namespace omega {

void AliasSampler::Build(const std::vector<double>& weights) {
  const size_t n = weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    // Degenerate: uniform over index 0.
    for (size_t i = 0; i < n; ++i) alias_[i] = 0;
    return;
  }

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = (weights[i] > 0.0 ? weights[i] : 0.0) * n / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasSampler::Sample(Rng* rng) const {
  if (prob_.empty()) return 0;
  const size_t slot = rng->NextBounded(prob_.size());
  return rng->NextDouble() < prob_[slot] ? slot : alias_[slot];
}

}  // namespace omega
