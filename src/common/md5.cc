#include "common/md5.h"

#include <cmath>
#include <cstdint>
#include <cstring>

namespace omega {

namespace {

constexpr int kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(|sin(i + 1)| * 2^32), the RFC's sine-derived constants.
const uint32_t* SineTable() {
  static uint32_t k[64];
  static const bool init = [] {
    for (int i = 0; i < 64; ++i) {
      k[i] = static_cast<uint32_t>(std::floor(std::fabs(std::sin(i + 1.0)) *
                                              4294967296.0));
    }
    return true;
  }();
  (void)init;
  return k;
}

uint32_t Rotl(uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

struct Md5State {
  uint32_t a = 0x67452301u;
  uint32_t b = 0xefcdab89u;
  uint32_t c = 0x98badcfeu;
  uint32_t d = 0x10325476u;

  void ProcessBlock(const unsigned char* p) {
    const uint32_t* K = SineTable();
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = static_cast<uint32_t>(p[i * 4]) |
             (static_cast<uint32_t>(p[i * 4 + 1]) << 8) |
             (static_cast<uint32_t>(p[i * 4 + 2]) << 16) |
             (static_cast<uint32_t>(p[i * 4 + 3]) << 24);
    }
    uint32_t A = a, B = b, C = c, D = d;
    for (int i = 0; i < 64; ++i) {
      uint32_t f;
      int g;
      if (i < 16) {
        f = (B & C) | (~B & D);
        g = i;
      } else if (i < 32) {
        f = (D & B) | (~D & C);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = B ^ C ^ D;
        g = (3 * i + 5) % 16;
      } else {
        f = C ^ (B | ~D);
        g = (7 * i) % 16;
      }
      const uint32_t tmp = D;
      D = C;
      C = B;
      B = B + Rotl(A + f + K[i] + m[g], kShifts[i]);
      A = tmp;
    }
    a += A;
    b += B;
    c += C;
    d += D;
  }
};

}  // namespace

std::string Md5Hex(const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  Md5State state;

  size_t i = 0;
  for (; i + 64 <= len; i += 64) state.ProcessBlock(bytes + i);

  // Final block(s): 0x80 terminator, zero pad, 64-bit little-endian bit count.
  unsigned char tail[128] = {};
  const size_t rem = len - i;
  std::memcpy(tail, bytes + i, rem);
  tail[rem] = 0x80;
  const size_t tail_len = rem + 1 <= 56 ? 64 : 128;
  const uint64_t bit_count = static_cast<uint64_t>(len) * 8;
  for (int b = 0; b < 8; ++b) {
    tail[tail_len - 8 + b] = static_cast<unsigned char>(bit_count >> (8 * b));
  }
  state.ProcessBlock(tail);
  if (tail_len == 128) state.ProcessBlock(tail + 64);

  const uint32_t words[4] = {state.a, state.b, state.c, state.d};
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint32_t w : words) {
    for (int b = 0; b < 4; ++b) {
      const unsigned char byte = static_cast<unsigned char>(w >> (8 * b));
      out += kHex[byte >> 4];
      out += kHex[byte & 0xF];
    }
  }
  return out;
}

std::string Md5Hex(const std::string& s) { return Md5Hex(s.data(), s.size()); }

}  // namespace omega
