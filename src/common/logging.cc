#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace omega {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level.load() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace omega
