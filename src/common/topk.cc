#include "common/topk.h"

#include <algorithm>
#include <cmath>

namespace omega {

namespace {

// std::push_heap/pop_heap build a max-heap on the comparator; passing
// ScoredBetter as "less" therefore floats the *worst* candidate to the front.
inline bool HeapLess(const ScoredId& a, const ScoredId& b) {
  return ScoredBetter(a, b);
}

}  // namespace

void TopK::Offer(const ScoredId& candidate) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (!ScoredBetter(candidate, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

std::vector<ScoredId> TopK::Take() {
  std::vector<ScoredId> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), ScoredBetter);
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * (values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(values.size() - 1, lo + 1);
  const double frac = idx - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  return std::sqrt(var / values.size());
}

}  // namespace omega
