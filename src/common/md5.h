// Self-contained MD5 (RFC 1321), used to pin golden report bytes in tests.
// Not for security — only for cheap content fingerprints.

#pragma once

#include <cstddef>
#include <string>

namespace omega {

/// 32-character lowercase hex MD5 digest of `len` bytes at `data`.
std::string Md5Hex(const void* data, size_t len);
std::string Md5Hex(const std::string& s);

}  // namespace omega
