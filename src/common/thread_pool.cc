#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace omega {

ThreadPool::ThreadPool(size_t num_threads) {
  OMEGA_CHECK(num_threads > 0) << "thread pool must have at least one thread";
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunOnAll(const std::function<void(size_t)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  pending_ = threads_.size();
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t workers = threads_.size();
  const size_t chunk = (n + workers - 1) / workers;
  RunOnAll([&](size_t w) {
    const size_t begin = std::min(n, w * chunk);
    const size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(w, begin, end);
  });
}

void ThreadPool::ParallelForDynamic(
    size_t n, size_t chunk_size,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  OMEGA_CHECK(chunk_size > 0) << "chunk size must be positive";
  if (n == 0) return;
  std::atomic<size_t> next_chunk{0};
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  RunOnAll([&](size_t w) {
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n, begin + chunk_size);
      fn(w, begin, end);
    }
  });
}

void ThreadPool::WorkerLoop(size_t index) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace omega
