#include "common/string_util.h"

#include <cstdio>

namespace omega {

std::vector<std::string_view> SplitTokens(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < s.size()) {
    const size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string HumanCount(uint64_t n) {
  if (n >= 1000000000ULL) return FormatDouble(n / 1e9, 2) + " B";
  if (n >= 1000000ULL) return FormatDouble(n / 1e6, 2) + " M";
  if (n >= 10000ULL) return FormatDouble(n / 1e3, 2) + " K";
  return std::to_string(n);
}

std::string HumanBytes(uint64_t bytes) {
  constexpr uint64_t kKiB = 1024;
  constexpr uint64_t kMiB = kKiB * 1024;
  constexpr uint64_t kGiB = kMiB * 1024;
  if (bytes >= kGiB) return FormatDouble(static_cast<double>(bytes) / kGiB, 2) + " GiB";
  if (bytes >= kMiB) return FormatDouble(static_cast<double>(bytes) / kMiB, 2) + " MiB";
  if (bytes >= kKiB) return FormatDouble(static_cast<double>(bytes) / kKiB, 2) + " KiB";
  return std::to_string(bytes) + " B";
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return FormatDouble(seconds, 2) + " s";
  if (seconds >= 1e-3) return FormatDouble(seconds * 1e3, 2) + " ms";
  return FormatDouble(seconds * 1e6, 2) + " us";
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JsonQuoted(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace omega
