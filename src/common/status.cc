#include "common/status.h"

namespace omega {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace omega
