// Walker's alias method: O(1) sampling from a fixed discrete distribution
// after O(n) preprocessing. Used by the random-walk engine for degree-biased
// and unigram^0.75 negative sampling.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace omega {

class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the table from (unnormalized, non-negative) weights. Empty or
  /// all-zero weights produce a sampler that always returns 0.
  explicit AliasSampler(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace omega
