// Wall-clock timing helpers (host time, as opposed to memsim simulated time).

#pragma once

#include <chrono>

namespace omega {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace omega
