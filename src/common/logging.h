// Minimal leveled logging plus CHECK macros, in the style of glog-lite
// facilities found in Arrow and RocksDB.

#pragma once

#include <sstream>
#include <string>

namespace omega {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace omega

#define OMEGA_LOG(level)                                                      \
  ::omega::internal::LogMessage(::omega::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#define OMEGA_CHECK(cond)                                    \
  if (!(cond)) OMEGA_LOG(Fatal) << "Check failed: " #cond " "

#define OMEGA_CHECK_OK(expr)                             \
  do {                                                   \
    ::omega::Status _st = (expr);                        \
    if (!_st.ok()) OMEGA_LOG(Fatal) << _st.ToString();   \
  } while (false)

#define OMEGA_DCHECK(cond) OMEGA_CHECK(cond)
