// Bounded top-k selection and small order-statistics helpers.
//
// TopK keeps the k best (id, score) pairs seen so far in a size-k min-heap:
// Offer is O(log k) only when the candidate beats the current worst, O(1)
// otherwise, so selecting k winners from n candidates is O(n + k log k log n)
// instead of sorting all n. Ordering is total and deterministic — higher
// score wins, equal scores break toward the smaller id — so the selected set
// and its order never depend on offer order, which is what lets the serving
// scorer produce bit-identical top-k lists regardless of how a scan is
// blocked or batched.
//
// Percentile/StdDev are the order-statistics helpers the latency benches
// share (sort + linear interpolation, population standard deviation).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omega {

/// One scored candidate.
struct ScoredId {
  uint32_t id = 0;
  float score = 0.0f;

  bool operator==(const ScoredId& other) const {
    return id == other.id && score == other.score;
  }
};

/// True when a ranks strictly ahead of b: higher score first, ties broken by
/// smaller id (the same rule TopMStore uses for its top-M selection).
inline bool ScoredBetter(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded selector of the k best candidates (see file comment). k == 0 keeps
/// nothing.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// The current worst retained candidate; undefined when empty.
  const ScoredId& Worst() const { return heap_.front(); }

  void Offer(uint32_t id, float score) { Offer(ScoredId{id, score}); }
  void Offer(const ScoredId& candidate);

  /// Moves the winners out, best first, leaving the selector empty.
  std::vector<ScoredId> Take();

 private:
  size_t k_;
  // Min-heap on ScoredBetter: the worst retained candidate sits at front.
  std::vector<ScoredId> heap_;
};

/// p in [0, 100]; linear interpolation between the two straddling order
/// statistics. 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Population standard deviation; 0 for an empty input.
double StdDev(const std::vector<double>& values);

}  // namespace omega
