// Small string formatting/parsing helpers shared across modules.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace omega {

/// Splits `s` on any character in `delims`, dropping empty tokens.
std::vector<std::string_view> SplitTokens(std::string_view s, std::string_view delims);

/// "1.63 M", "2.41 B", "803" — human-readable counts as in the paper's Table I.
std::string HumanCount(uint64_t n);

/// "512.0 MiB", "1.5 GiB" — human-readable byte sizes.
std::string HumanBytes(uint64_t bytes);

/// Fixed-point formatting with `digits` decimals (e.g. FormatDouble(3.14159, 2)
/// == "3.14").
std::string FormatDouble(double v, int digits);

/// "12.34 s" / "123.4 ms" / "56.7 us" — adaptive duration formatting.
std::string HumanSeconds(double seconds);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// `s` as a double-quoted JSON string literal: quotes, backslashes, and
/// control characters escaped. The one escaper every hand-rolled JSON emitter
/// (run reports, BENCH_*.json) must go through.
std::string JsonQuoted(std::string_view s);

}  // namespace omega
