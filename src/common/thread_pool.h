// A small fixed-size thread pool used by every parallel kernel in omega.
//
// Kernels submit `ParallelFor`-style jobs where worker i receives its thread
// index; thread indices are stable so that memsim can maintain one simulated
// clock per worker and the NUMA layer can "bind" workers to sockets.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omega {

/// Fixed-size pool with stable worker indices [0, size).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Runs `fn(worker_index)` once on every worker and blocks until all
  /// workers have finished. Safe to call repeatedly; not reentrant.
  void RunOnAll(const std::function<void(size_t)>& fn);

  /// Splits [0, n) into `size()` contiguous chunks and runs
  /// `fn(worker, begin, end)` on each worker. Blocks until done. Static
  /// scheduling: the split depends only on n and size(), so a kernel whose
  /// per-index work is uniform pays no scheduling overhead.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  /// Dynamic counterpart: splits [0, n) into fixed-size chunks of
  /// `chunk_size` indices and lets workers grab chunks from a shared atomic
  /// counter until none remain. Worker indices stay stable (worker w only
  /// ever runs on pool thread w), so per-worker state — simulated clocks,
  /// NUMA socket binding — keeps working; only the *amount* of work a worker
  /// ends up with varies. Use for skewed workloads (e.g. degree-sorted row
  /// blocks) where static chunking leaves stragglers. Blocks until done.
  void ParallelForDynamic(size_t n, size_t chunk_size,
                          const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  uint64_t epoch_ = 0;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace omega
