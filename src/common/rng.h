// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of omega (RMAT generation, Gaussian projections,
// negative sampling) draw from these generators with explicit seeds so that
// every experiment is reproducible bit-for-bit.

#pragma once

#include <cmath>
#include <cstdint>

namespace omega {

/// SplitMix64: used to seed and to hash integers into well-mixed values.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief xoshiro256** — a small, fast, high-quality PRNG.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = SplitMix64(x);
      s = x;
    }
    has_gaussian_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller with caching of the second draw.
  double NextGaussian() {
    if (has_gaussian_) {
      has_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_gaussian_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace omega
