// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// All fallible public APIs in omega return Status (no value) or Result<T>
// (value or error). Exceptions are not thrown across module boundaries.

#pragma once

#include <string>
#include <utility>
#include <variant>

namespace omega {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCapacityExceeded,
  kNotImplemented,
  kInternal,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the OK
/// case stores no message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCapacityExceeded() const { return code_ == StatusCode::kCapacityExceeded; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must check ok() (or use OMEGA_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}              // NOLINT implicit
  Result(Status status) : payload_(std::move(status)) {}       // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::move(std::get<T>(payload_)); }

  T ValueOr(T alt) const {
    if (ok()) return value();
    return alt;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace omega

/// Propagates a non-OK Status from the enclosing function.
#define OMEGA_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::omega::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

#define OMEGA_CONCAT_IMPL(a, b) a##b
#define OMEGA_CONCAT(a, b) OMEGA_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define OMEGA_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto OMEGA_CONCAT(_res_, __LINE__) = (expr);                     \
  if (!OMEGA_CONCAT(_res_, __LINE__).ok())                         \
    return OMEGA_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(OMEGA_CONCAT(_res_, __LINE__)).value()
