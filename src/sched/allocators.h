// Thread-allocation schemes for parallel SpMM (§III-B, Table II):
//   RR   — round-robin row dealing (the threads-library default);
//   WaTA — workload-balancing: equal nnz per thread;
//   EaTA — entropy-aware (Algorithm 2): adjusts each thread's nnz budget by
//          the entropy-derived efficiency of its workload (Eq. 7) so that
//          scattered (slow) workloads receive less work, balancing *time*
//          rather than element count.

#pragma once

#include <vector>

#include "graph/csdb.h"
#include "sched/workload.h"

namespace omega::sched {

enum class AllocatorKind { kRoundRobin, kWorkloadBalanced, kEntropyAware };

const char* AllocatorName(AllocatorKind kind);

struct AllocatorOptions {
  int num_threads = 8;
  /// beta = BW_read_random / BW_read_sequential of the tier holding the dense
  /// matrix (Eq. 5); the PM default from the calibrated profiles.
  double beta = 0.415;
};

/// Round-robin: row r goes to thread r % num_threads.
std::vector<Workload> AllocateRoundRobin(const graph::CsdbMatrix& a,
                                         const AllocatorOptions& options);

/// WaTA: contiguous row ranges with ~equal nnz (total_workload / #threads).
std::vector<Workload> AllocateWata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options);

/// EaTA, Algorithm 2. Contiguous row ranges whose nnz budgets are scaled by
/// Eq. 7 against the running average entropy target.
std::vector<Workload> AllocateEata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options);

/// Dispatch by kind. Every returned vector has exactly options.num_threads
/// entries (possibly-empty workloads) with entropy/scatter annotated.
std::vector<Workload> Allocate(const graph::CsdbMatrix& a, AllocatorKind kind,
                               const AllocatorOptions& options);

/// Allocates only the rows in `rows` (disjoint, ascending half-open ranges)
/// across options.num_threads workloads — the host side of a heterogeneous
/// placement, where the offloaded rows must not inflate any host thread's
/// budget. Workload ranges may span multiple input segments. Same contract as
/// Allocate otherwise; with rows == [{0, num_rows})] the split covers the
/// whole matrix (though boundaries may differ from Allocate's, which is why
/// the host-only path keeps calling Allocate).
std::vector<Workload> AllocateSubset(const graph::CsdbMatrix& a,
                                     AllocatorKind kind,
                                     const std::vector<RowRange>& rows,
                                     const AllocatorOptions& options);

}  // namespace omega::sched
