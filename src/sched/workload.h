// Workload descriptors for parallel SpMM thread allocation (§III-B).
//
// A workload is the set of sparse-matrix rows assigned to one thread. The
// round-robin allocator produces strided singleton ranges; WaTA and EaTA
// produce contiguous ranges, so a workload is a list of [begin, end) row
// intervals plus the derived statistics EaTA reasons about.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csdb.h"

namespace omega::sched {

/// Half-open row interval.
struct RowRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
};

/// Rows assigned to one thread.
struct Workload {
  std::vector<RowRange> ranges;

  uint64_t nnz = 0;        ///< total non-zeros across the ranges (the paper's W_i)
  uint32_t num_rows = 0;   ///< total rows (the paper's Rows_i)
  double entropy = 0.0;    ///< H_i per Eq. 3
  double scatter = 0.0;    ///< W_sca^i per Eq. 5

  bool empty() const { return nnz == 0; }
};

/// Recomputes nnz/num_rows from `ranges` against `a` (entropy/scatter are
/// filled by sched::AnnotateWorkload).
void RefreshCounts(const graph::CsdbMatrix& a, Workload* w);

}  // namespace omega::sched
