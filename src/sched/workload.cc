#include "sched/workload.h"

namespace omega::sched {

void RefreshCounts(const graph::CsdbMatrix& a, Workload* w) {
  w->nnz = 0;
  w->num_rows = 0;
  for (const RowRange& range : w->ranges) {
    w->num_rows += range.size();
    if (range.size() == 0) continue;
    // Sum of degrees over [begin, end) via the O(1) row-pointer arithmetic.
    w->nnz += a.RowPtr(range.end - 1) + a.RowDegree(range.end - 1) -
              a.RowPtr(range.begin);
  }
}

}  // namespace omega::sched
