// Entropy measures for thread allocation (§III-B, Eqs. 3-5).
//
// The workload entropy of rows n..m assigned to thread p_i is
//   H_i = sum_j -(|Row_j|/W_i) log(|Row_j|/W_i)                       (Eq. 3)
// which, with S1 = sum_j |Row_j| = W_i and S2 = sum_j |Row_j| log|Row_j|,
// simplifies to H_i = log(S1) - S2/S1 — enabling O(1) incremental updates as
// rows are added to or removed from a candidate workload.

#pragma once

#include <cstdint>

#include "graph/csdb.h"
#include "sched/workload.h"

namespace omega::sched {

/// Incremental accumulator of workload entropy.
class EntropyAccumulator {
 public:
  void AddRow(uint32_t degree);
  void RemoveRow(uint32_t degree);
  void Reset();

  uint64_t nnz() const { return s1_; }
  uint32_t rows() const { return rows_; }

  /// H per Eq. 3; 0 for empty workloads.
  double Entropy() const;

 private:
  uint64_t s1_ = 0;   // sum of degrees
  double s2_ = 0.0;   // sum of degree * log(degree)
  uint32_t rows_ = 0;
};

/// Z(H) = H / log|V|, clamped into [0, 1] (§III-B).
double NormalizedEntropy(double entropy, uint32_t num_nodes);

/// W_sca = 1 - Z(H) + beta * Z(H)  (Eq. 5), where beta = BW_rand / BW_seq.
double ScatterFactor(double entropy, uint32_t num_nodes, double beta);

/// EaTA's per-thread weight H * (1 - Z(H) + beta * Z(H)) — the denominator /
/// numerator structure of Eq. 7.
double EataWeight(double entropy, uint32_t num_nodes, double beta);

/// Entropy of an arbitrary workload (sums Eq. 3 across its ranges).
double WorkloadEntropy(const graph::CsdbMatrix& a, const Workload& w);

/// Fills `w`'s entropy and scatter fields.
void AnnotateWorkload(const graph::CsdbMatrix& a, double beta, Workload* w);

}  // namespace omega::sched
