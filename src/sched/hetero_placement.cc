#include "sched/hetero_placement.h"

#include <algorithm>
#include <cmath>

#include "sched/entropy.h"

namespace omega::sched {

namespace {

using memsim::AccessRun;
using memsim::CostModel;
using memsim::Locality;
using memsim::MemOp;
using memsim::Pattern;
using memsim::Tier;

constexpr uint64_t kLineBytes = 64;  ///< gather touch granularity (spmm.cc)

/// Modeled wall-seconds contribution of one block to the host SpMM phase:
/// the block's rows spread evenly over all host workers, each worker charged
/// its share under the per-socket thread-group contention NaDP runs at. The
/// components mirror ChargeWorkloadCosts (spmm.cc) term by term.
double HostBlockSeconds(const CostModel& cm, const graph::CsdbMatrix::BlockSpan& s,
                        uint64_t dense_cols, double entropy_z, int threads,
                        int group, Tier sparse_tier, Tier dense_tier,
                        Tier result_tier) {
  const double rows = static_cast<double>(s.rows()) / threads;
  const double nnz = rows * s.degree;
  const double l = static_cast<double>(dense_cols);
  double sec = 0.0;
  // 1 read_index: 4B of row metadata per row, re-read per column pass.
  sec += cm.AccessSeconds(
      Tier::kDram,
      AccessRun{MemOp::kRead, Pattern::kSequential, Locality::kLocal,
                static_cast<size_t>(l * rows * 4), static_cast<size_t>(l)},
      group);
  // 2 get_sparse_nnz: col_list + nnz_list, 8B per element per column pass.
  sec += cm.AccessSeconds(
      sparse_tier,
      AccessRun{MemOp::kRead, Pattern::kSequential, Locality::kLocal,
                static_cast<size_t>(l * nnz * 8), static_cast<size_t>(l)},
      group);
  // 3 get_dense_nnz: Z(H)-blended gathers, one cache line per touch.
  const double touches = l * nnz;
  const auto random_touches = static_cast<size_t>(entropy_z * touches);
  const auto seq_touches = static_cast<size_t>(touches) - random_touches;
  if (random_touches > 0) {
    sec += cm.AccessSeconds(dense_tier,
                            AccessRun{MemOp::kRead, Pattern::kRandom,
                                      Locality::kLocal,
                                      random_touches * kLineBytes, random_touches},
                            group);
  }
  if (seq_touches > 0) {
    sec += cm.AccessSeconds(dense_tier,
                            AccessRun{MemOp::kRead, Pattern::kSequential,
                                      Locality::kLocal, seq_touches * kLineBytes,
                                      seq_touches},
                            group);
  }
  // 4 accumulation: one multiply + one add per element per column.
  sec += cm.ComputeSeconds(static_cast<size_t>(l * nnz * 2));
  // 5 write_result.
  sec += cm.AccessSeconds(
      result_tier,
      AccessRun{MemOp::kWrite, Pattern::kSequential, Locality::kLocal,
                static_cast<size_t>(l * rows * 4), static_cast<size_t>(l)},
      group);
  return sec;
}

/// Gang-DMA seconds over the host<->PIM link; one controller stream, so
/// active_threads is always 1 (per_thread == peak in the PIM profile anyway).
double LinkSeconds(const CostModel& cm, MemOp op, uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return cm.AccessSeconds(
      Tier::kPim,
      AccessRun{op, Pattern::kSequential, Locality::kLocal, bytes, 1}, 1);
}

struct PimBlockCost {
  double ship = 0.0;      ///< col_list + nnz_list DMA to the banks
  double compute = 0.0;   ///< bank-straggler MAC time
  double drain = 0.0;     ///< partial-panel readback + host merge write
  double total() const { return ship + compute + drain; }
};

/// Marginal PIM cost of one block (the shared dense broadcast is priced once
/// per execute, not per block).
PimBlockCost PimBlockSeconds(const CostModel& cm,
                             const graph::CsdbMatrix::BlockSpan& s,
                             uint64_t dense_cols, const PimConfig& cfg,
                             Tier result_tier, int group) {
  PimBlockCost c;
  const uint64_t nnz = static_cast<uint64_t>(s.rows()) * s.degree;
  const uint64_t panel_bytes = static_cast<uint64_t>(s.rows()) * dense_cols * 4;
  // Ship col indices (4B) + values (4B) once; the banks keep them across all
  // column passes (unlike the host, which re-streams per pass).
  c.ship = LinkSeconds(cm, MemOp::kWrite, nnz * 8);
  // Rows are distributed round-robin over the banks and each bank processes
  // its rows serially: the straggler holds ceil(rows / banks) rows of degree
  // d. A few-row hub block serializes onto one bank and loses to the host.
  const uint64_t rows_per_bank =
      (s.rows() + static_cast<uint32_t>(cfg.banks) - 1) / cfg.banks;
  c.compute = static_cast<double>(rows_per_bank) * s.degree * 2 * dense_cols /
              cfg.bank_ops_per_second;
  // Drain: read the result panel back over the link, then stream it into the
  // result tier (each PIM row is owned by exactly one bank, so the merge is a
  // scatter-free copy).
  c.drain = LinkSeconds(cm, MemOp::kRead, panel_bytes) +
            cm.AccessSeconds(result_tier,
                             AccessRun{MemOp::kWrite, Pattern::kSequential,
                                       Locality::kLocal, panel_bytes, 1},
                             group);
  return c;
}

}  // namespace

const char* PimPolicyName(PimPolicy policy) {
  switch (policy) {
    case PimPolicy::kHostOnly:
      return "host-only";
    case PimPolicy::kAuto:
      return "auto";
    case PimPolicy::kAllPim:
      return "all-pim";
  }
  return "?";
}

HeteroPlacement PlaceDegreeBlocks(const graph::CsdbMatrix& a,
                                  const PimConfig& cfg,
                                  const memsim::MemorySystem& ms,
                                  int host_threads, memsim::Tier sparse_tier,
                                  memsim::Tier dense_tier,
                                  memsim::Tier result_tier) {
  HeteroPlacement out;
  out.policy = cfg.policy;

  const CostModel& cm = ms.cost_model();
  const int threads = std::max(1, host_threads);
  const int group =
      std::max(1, threads / std::max(1, ms.topology().num_sockets()));
  const uint64_t l = std::max<uint64_t>(1, cfg.dense_cols);

  // Price every degree block under both devices.
  for (auto bc = a.BlocksInRange(0, a.num_rows()); !bc.AtEnd(); bc.Next()) {
    const auto& s = bc.span();
    HeteroBlock hb;
    hb.row_begin = s.row_begin;
    hb.row_end = s.row_end;
    hb.degree = s.degree;
    hb.nnz = static_cast<uint64_t>(s.rows()) * s.degree;
    // A uniform-degree block of R rows has H = log(R*d) - log(d) = log(R).
    hb.entropy_z = NormalizedEntropy(std::log(static_cast<double>(s.rows())),
                                     a.num_cols());
    hb.host_seconds =
        HostBlockSeconds(cm, s, l, hb.entropy_z, threads, group, sparse_tier,
                         dense_tier, result_tier);
    if (cfg.active()) {
      // A bank must hold its share of the block's elements (8B each) in MRAM
      // alongside the streamed column slice; blocks too dense per bank are
      // host-forced under every policy.
      const uint64_t per_bank_bytes =
          ((hb.nnz + cfg.banks - 1) / cfg.banks) * 8 * 2;
      hb.fits_mram = per_bank_bytes <= cfg.mram_bytes_per_bank;
      const PimBlockCost pc = PimBlockSeconds(cm, s, l, cfg, result_tier, group);
      hb.pim_seconds = pc.total();
    } else {
      hb.fits_mram = false;
    }
    out.blocks.push_back(hb);
  }
  if (!cfg.active()) {
    if (a.num_rows() > 0) out.host_ranges.push_back({0, a.num_rows()});
    for (const HeteroBlock& hb : out.blocks) {
      out.host_nnz += hb.nnz;
      out.est_host_seconds += hb.host_seconds;
    }
    return out;
  }

  // The dense operand broadcast is shared by every offloaded block: each of
  // the n columns' l floats crosses the link once per execute (column slices
  // are streamed through MRAM in passes; the bytes total is pass-invariant).
  const double broadcast =
      LinkSeconds(cm, MemOp::kWrite, static_cast<uint64_t>(a.num_cols()) * l * 4);

  // Candidate assignments: host-only, all-pim (fitting blocks), and the
  // greedy marginal-cost split with hysteresis. The modeled phase time of an
  // assignment is max(host wall, broadcast + ship + bank compute) + drain —
  // the pipeline front overlaps the host panels, the drain tail is serial.
  auto Evaluate = [&](const std::vector<bool>& on_pim) {
    double host = 0.0, pipe = 0.0, tail = 0.0;
    bool any = false;
    for (size_t i = 0; i < out.blocks.size(); ++i) {
      const HeteroBlock& hb = out.blocks[i];
      if (on_pim[i]) {
        const auto& s = graph::CsdbMatrix::BlockSpan{hb.row_begin, hb.row_end,
                                                     hb.degree, 0};
        const PimBlockCost pc = PimBlockSeconds(cm, s, l, cfg, result_tier, group);
        pipe += pc.ship + pc.compute;
        tail += pc.drain;
        any = true;
      } else {
        host += hb.host_seconds;
      }
    }
    if (any) pipe += broadcast;
    return std::max(host, pipe) + tail;
  };

  const size_t n = out.blocks.size();
  std::vector<bool> none(n, false), all(n, false), greedy(n, false);
  for (size_t i = 0; i < n; ++i) {
    const HeteroBlock& hb = out.blocks[i];
    if (!hb.fits_mram) continue;
    all[i] = true;
    greedy[i] = hb.pim_seconds * cfg.offload_margin < hb.host_seconds;
  }

  std::vector<bool> chosen;
  if (cfg.policy == PimPolicy::kAllPim) {
    chosen = all;
  } else {  // kAuto: best of the three candidates under the phase model
    chosen = greedy;
    double best = Evaluate(greedy);
    if (const double t = Evaluate(none); t < best) {
      best = t;
      chosen = none;
    }
    if (const double t = Evaluate(all); t < best) {
      chosen = all;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    HeteroBlock& hb = out.blocks[i];
    hb.on_pim = chosen[i];
    if (hb.on_pim) {
      out.pim_nnz += hb.nnz;
      out.pim_rows += hb.row_end - hb.row_begin;
      if (!out.pim_ranges.empty() && out.pim_ranges.back().end == hb.row_begin) {
        out.pim_ranges.back().end = hb.row_end;
      } else {
        out.pim_ranges.push_back({hb.row_begin, hb.row_end});
      }
      const auto s = graph::CsdbMatrix::BlockSpan{hb.row_begin, hb.row_end,
                                                  hb.degree, 0};
      const PimBlockCost pc = PimBlockSeconds(cm, s, l, cfg, result_tier, group);
      out.est_pim_pipeline_seconds += pc.ship + pc.compute;
      out.est_pim_tail_seconds += pc.drain;
    } else {
      out.host_nnz += hb.nnz;
      out.est_host_seconds += hb.host_seconds;
      if (!out.host_ranges.empty() && out.host_ranges.back().end == hb.row_begin) {
        out.host_ranges.back().end = hb.row_end;
      } else {
        out.host_ranges.push_back({hb.row_begin, hb.row_end});
      }
    }
  }
  if (out.any_pim()) out.est_pim_pipeline_seconds += broadcast;
  return out;
}

}  // namespace omega::sched
