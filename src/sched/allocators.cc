#include "sched/allocators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sched/entropy.h"

namespace omega::sched {

const char* AllocatorName(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kRoundRobin:
      return "RR";
    case AllocatorKind::kWorkloadBalanced:
      return "WaTA";
    case AllocatorKind::kEntropyAware:
      return "EaTA";
  }
  return "?";
}

namespace {

void AnnotateAll(const graph::CsdbMatrix& a, double beta,
                 std::vector<Workload>* workloads) {
  for (Workload& w : *workloads) AnnotateWorkload(a, beta, &w);
}

}  // namespace

std::vector<Workload> AllocateRoundRobin(const graph::CsdbMatrix& a,
                                         const AllocatorOptions& options) {
  // The parallel-kit default (Fig. 6a): rows are dealt to threads in equal-
  // count contiguous chunks with no regard for nnz, so on a skewed matrix the
  // chunk holding the high-degree rows dwarfs the others.
  const uint32_t threads = static_cast<uint32_t>(options.num_threads);
  std::vector<Workload> out(threads);
  const uint32_t rows = a.num_rows();
  const uint32_t chunk = (rows + threads - 1) / threads;
  for (uint32_t t = 0; t < threads; ++t) {
    const uint32_t begin = std::min(rows, t * chunk);
    const uint32_t end = std::min(rows, begin + chunk);
    if (begin < end) out[t].ranges.push_back(RowRange{begin, end});
  }
  AnnotateAll(a, options.beta, &out);
  return out;
}

std::vector<Workload> AllocateWata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options) {
  const int threads = options.num_threads;
  std::vector<Workload> out(threads);
  const uint64_t total = a.nnz();
  auto cursor = a.Rows(0);
  uint64_t allocated = 0;
  for (int t = 0; t < threads && !cursor.AtEnd(); ++t) {
    // Dynamic re-balancing: divide what remains among the remaining threads,
    // which absorbs rounding drift from giant rows.
    const uint64_t budget =
        std::max<uint64_t>(1, (total - allocated) / static_cast<uint64_t>(threads - t));
    const uint32_t begin = cursor.row();
    uint64_t taken = 0;
    while (!cursor.AtEnd() && (taken < budget || taken == 0)) {
      taken += cursor.degree();
      cursor.Next();
    }
    if (t == threads - 1) {  // last thread takes the tail
      while (!cursor.AtEnd()) {
        taken += cursor.degree();
        cursor.Next();
      }
    }
    out[t].ranges.push_back(RowRange{begin, cursor.row()});
    allocated += taken;
  }
  AnnotateAll(a, options.beta, &out);
  return out;
}

std::vector<Workload> AllocateEata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options) {
  // Algorithm 2 implemented as a two-pass variant. A strictly streaming
  // single pass pushes every budget correction onto the residual of the final
  // thread — which on a degree-sorted matrix is exactly the most scattered
  // (slowest-per-nnz) workload, re-creating the tail latency EaTA is meant to
  // remove. Instead:
  //   pass 1 (lines 2-4): estimate each thread's workload entropy H_i from
  //     the plain workload-balancing split;
  //   pass 2 (lines 5-12): apply Eq. 7 under the common-deadline reading of
  //     Eq. 4 — every thread finishes at the same T* when its budget scales
  //     with its scatter factor, W_i^p ∝ W_sca(H_i) = 1 - Z(H_i) + β Z(H_i) —
  //     renormalized so the budgets sum exactly to the total workload, then
  //     carve contiguous ranges with those budgets.
  const int threads = options.num_threads;
  const double beta = options.beta;
  const uint32_t num_nodes = a.num_cols();
  std::vector<Workload> out(threads);
  const uint64_t total = a.nnz();
  if (total == 0 || a.num_rows() == 0) {
    AnnotateAll(a, beta, &out);
    return out;
  }

  // Pass 1: per-thread entropy estimates from the WaTA split.
  const std::vector<Workload> wata = AllocateWata(a, options);

  // The paper's breakdown (Fig. 7a) puts ~70% of SpMM time in the scatter-
  // sensitive get_dense_nnz gather; the rest streams sequentially and scales
  // with plain nnz. The per-nnz time of a workload is therefore
  //   c_i ~ (1 - gamma) + gamma / W_sca(H_i),
  // and equal finish times require budgets W_i^p ~ 1 / c_i.
  constexpr double kGatherShare = 0.7;

  // Refine twice: budgets shift the chunk boundaries, which shifts each
  // chunk's entropy; a second pass re-estimates on the adjusted chunks.
  std::vector<double> speed(threads, 1.0);  // 1 / c_i
  for (const int pass : {0, 1}) {
    const std::vector<Workload>& estimate = (pass == 0) ? wata : out;
    double speed_sum = 0.0;
    for (int t = 0; t < threads; ++t) {
      if (estimate[t].empty()) {
        speed[t] = 0.0;
        continue;
      }
      const double w_sca = ScatterFactor(estimate[t].entropy, num_nodes, beta);
      speed[t] = 1.0 / ((1.0 - kGatherShare) + kGatherShare / w_sca);
      speed_sum += speed[t];
    }
    if (speed_sum <= 0.0) break;

    // Pass 2: carve contiguous ranges with carry-corrected budgets so the
    // rounding overshoot of earlier threads never piles onto the tail.
    for (auto& w : out) w = Workload{};
    auto cursor = a.Rows(0);
    uint64_t allocated = 0;
    double cumulative_target = 0.0;
    for (int t = 0; t < threads && !cursor.AtEnd(); ++t) {
      const uint32_t begin = cursor.row();
      if (t == threads - 1) {
        while (!cursor.AtEnd()) cursor.Next();
        out[t].ranges.push_back(RowRange{begin, cursor.row()});
        break;
      }
      cumulative_target += static_cast<double>(total) * speed[t] / speed_sum;
      const uint64_t budget = std::max<uint64_t>(
          1, cumulative_target > static_cast<double>(allocated)
                 ? static_cast<uint64_t>(cumulative_target - allocated)
                 : 1);
      uint64_t taken = 0;
      while (!cursor.AtEnd() && (taken < budget || taken == 0) &&
             allocated + taken < total) {
        taken += cursor.degree();
        cursor.Next();
      }
      out[t].ranges.push_back(RowRange{begin, cursor.row()});
      allocated += taken;
    }
    AnnotateAll(a, beta, &out);
  }
  return out;
}

std::vector<Workload> Allocate(const graph::CsdbMatrix& a, AllocatorKind kind,
                               const AllocatorOptions& options) {
  OMEGA_CHECK(options.num_threads > 0) << "allocator needs at least one thread";
  switch (kind) {
    case AllocatorKind::kRoundRobin:
      return AllocateRoundRobin(a, options);
    case AllocatorKind::kWorkloadBalanced:
      return AllocateWata(a, options);
    case AllocatorKind::kEntropyAware:
      return AllocateEata(a, options);
  }
  return {};
}

}  // namespace omega::sched
