#include "sched/allocators.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"
#include "sched/entropy.h"

namespace omega::sched {

const char* AllocatorName(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kRoundRobin:
      return "RR";
    case AllocatorKind::kWorkloadBalanced:
      return "WaTA";
    case AllocatorKind::kEntropyAware:
      return "EaTA";
  }
  return "?";
}

namespace {

void AnnotateAll(const graph::CsdbMatrix& a, double beta,
                 std::vector<Workload>* workloads) {
  for (Workload& w : *workloads) AnnotateWorkload(a, beta, &w);
}

}  // namespace

std::vector<Workload> AllocateRoundRobin(const graph::CsdbMatrix& a,
                                         const AllocatorOptions& options) {
  // The parallel-kit default (Fig. 6a): rows are dealt to threads in equal-
  // count contiguous chunks with no regard for nnz, so on a skewed matrix the
  // chunk holding the high-degree rows dwarfs the others.
  const uint32_t threads = static_cast<uint32_t>(options.num_threads);
  std::vector<Workload> out(threads);
  const uint32_t rows = a.num_rows();
  const uint32_t chunk = (rows + threads - 1) / threads;
  for (uint32_t t = 0; t < threads; ++t) {
    const uint32_t begin = std::min(rows, t * chunk);
    const uint32_t end = std::min(rows, begin + chunk);
    if (begin < end) out[t].ranges.push_back(RowRange{begin, end});
  }
  AnnotateAll(a, options.beta, &out);
  return out;
}

std::vector<Workload> AllocateWata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options) {
  const int threads = options.num_threads;
  std::vector<Workload> out(threads);
  const uint64_t total = a.nnz();
  auto cursor = a.Rows(0);
  uint64_t allocated = 0;
  for (int t = 0; t < threads && !cursor.AtEnd(); ++t) {
    // Dynamic re-balancing: divide what remains among the remaining threads,
    // which absorbs rounding drift from giant rows.
    const uint64_t budget =
        std::max<uint64_t>(1, (total - allocated) / static_cast<uint64_t>(threads - t));
    const uint32_t begin = cursor.row();
    uint64_t taken = 0;
    while (!cursor.AtEnd() && (taken < budget || taken == 0)) {
      taken += cursor.degree();
      cursor.Next();
    }
    if (t == threads - 1) {  // last thread takes the tail
      while (!cursor.AtEnd()) {
        taken += cursor.degree();
        cursor.Next();
      }
    }
    out[t].ranges.push_back(RowRange{begin, cursor.row()});
    allocated += taken;
  }
  AnnotateAll(a, options.beta, &out);
  return out;
}

std::vector<Workload> AllocateEata(const graph::CsdbMatrix& a,
                                   const AllocatorOptions& options) {
  // Algorithm 2 implemented as a two-pass variant. A strictly streaming
  // single pass pushes every budget correction onto the residual of the final
  // thread — which on a degree-sorted matrix is exactly the most scattered
  // (slowest-per-nnz) workload, re-creating the tail latency EaTA is meant to
  // remove. Instead:
  //   pass 1 (lines 2-4): estimate each thread's workload entropy H_i from
  //     the plain workload-balancing split;
  //   pass 2 (lines 5-12): apply Eq. 7 under the common-deadline reading of
  //     Eq. 4 — every thread finishes at the same T* when its budget scales
  //     with its scatter factor, W_i^p ∝ W_sca(H_i) = 1 - Z(H_i) + β Z(H_i) —
  //     renormalized so the budgets sum exactly to the total workload, then
  //     carve contiguous ranges with those budgets.
  const int threads = options.num_threads;
  const double beta = options.beta;
  const uint32_t num_nodes = a.num_cols();
  std::vector<Workload> out(threads);
  const uint64_t total = a.nnz();
  if (total == 0 || a.num_rows() == 0) {
    AnnotateAll(a, beta, &out);
    return out;
  }

  // Pass 1: per-thread entropy estimates from the WaTA split.
  const std::vector<Workload> wata = AllocateWata(a, options);

  // The paper's breakdown (Fig. 7a) puts ~70% of SpMM time in the scatter-
  // sensitive get_dense_nnz gather; the rest streams sequentially and scales
  // with plain nnz. The per-nnz time of a workload is therefore
  //   c_i ~ (1 - gamma) + gamma / W_sca(H_i),
  // and equal finish times require budgets W_i^p ~ 1 / c_i.
  constexpr double kGatherShare = 0.7;

  // Refine twice: budgets shift the chunk boundaries, which shifts each
  // chunk's entropy; a second pass re-estimates on the adjusted chunks.
  std::vector<double> speed(threads, 1.0);  // 1 / c_i
  for (const int pass : {0, 1}) {
    const std::vector<Workload>& estimate = (pass == 0) ? wata : out;
    double speed_sum = 0.0;
    for (int t = 0; t < threads; ++t) {
      if (estimate[t].empty()) {
        speed[t] = 0.0;
        continue;
      }
      const double w_sca = ScatterFactor(estimate[t].entropy, num_nodes, beta);
      speed[t] = 1.0 / ((1.0 - kGatherShare) + kGatherShare / w_sca);
      speed_sum += speed[t];
    }
    if (speed_sum <= 0.0) break;

    // Pass 2: carve contiguous ranges with carry-corrected budgets so the
    // rounding overshoot of earlier threads never piles onto the tail.
    for (auto& w : out) w = Workload{};
    auto cursor = a.Rows(0);
    uint64_t allocated = 0;
    double cumulative_target = 0.0;
    for (int t = 0; t < threads && !cursor.AtEnd(); ++t) {
      const uint32_t begin = cursor.row();
      if (t == threads - 1) {
        while (!cursor.AtEnd()) cursor.Next();
        out[t].ranges.push_back(RowRange{begin, cursor.row()});
        break;
      }
      cumulative_target += static_cast<double>(total) * speed[t] / speed_sum;
      const uint64_t budget = std::max<uint64_t>(
          1, cumulative_target > static_cast<double>(allocated)
                 ? static_cast<uint64_t>(cumulative_target - allocated)
                 : 1);
      uint64_t taken = 0;
      while (!cursor.AtEnd() && (taken < budget || taken == 0) &&
             allocated + taken < total) {
        taken += cursor.degree();
        cursor.Next();
      }
      out[t].ranges.push_back(RowRange{begin, cursor.row()});
      allocated += taken;
    }
    AnnotateAll(a, beta, &out);
  }
  return out;
}

std::vector<Workload> Allocate(const graph::CsdbMatrix& a, AllocatorKind kind,
                               const AllocatorOptions& options) {
  OMEGA_CHECK(options.num_threads > 0) << "allocator needs at least one thread";
  switch (kind) {
    case AllocatorKind::kRoundRobin:
      return AllocateRoundRobin(a, options);
    case AllocatorKind::kWorkloadBalanced:
      return AllocateWata(a, options);
    case AllocatorKind::kEntropyAware:
      return AllocateEata(a, options);
  }
  return {};
}

namespace {

/// Row-ordered walk over a disjoint ascending set of row ranges, carrying one
/// RowCursor per segment so carves can cross segment boundaries. EmitSince
/// turns the rows walked since a mark into (possibly several) RowRanges.
class SubsetWalk {
 public:
  SubsetWalk(const graph::CsdbMatrix& a, const std::vector<RowRange>& rows)
      : a_(a), rows_(rows) {
    EnterSegment();
  }

  bool AtEnd() const { return seg_ >= rows_.size(); }
  uint32_t degree() const { return cursor_->degree(); }

  void Next() {
    cursor_->Next();
    if (cursor_->row() >= rows_[seg_].end) {
      ++seg_;
      EnterSegment();
    }
  }

  struct Mark {
    size_t seg = 0;
    uint32_t row = 0;
  };
  Mark mark() const { return AtEnd() ? Mark{seg_, 0} : Mark{seg_, cursor_->row()}; }

  void EmitSince(const Mark& m, Workload* w) const {
    for (size_t s = m.seg; s < rows_.size() && s <= seg_; ++s) {
      const uint32_t begin = (s == m.seg) ? m.row : rows_[s].begin;
      const uint32_t end = (s == seg_) ? cursor_->row() : rows_[s].end;
      if (begin < end) w->ranges.push_back(RowRange{begin, end});
      if (s == seg_) break;
    }
  }

 private:
  void EnterSegment() {
    while (seg_ < rows_.size() && rows_[seg_].begin >= rows_[seg_].end) ++seg_;
    if (seg_ < rows_.size()) cursor_.emplace(a_.Rows(rows_[seg_].begin));
  }

  const graph::CsdbMatrix& a_;
  const std::vector<RowRange>& rows_;
  size_t seg_ = 0;
  std::optional<graph::CsdbMatrix::RowCursor> cursor_;
};

uint64_t SubsetNnz(const graph::CsdbMatrix& a, const std::vector<RowRange>& rows) {
  // Block arithmetic, no per-row walk: a degree block contributes
  // rows-in-range * degree.
  uint64_t total = 0;
  for (const RowRange& r : rows) {
    for (auto bc = a.BlocksInRange(r.begin, r.end); !bc.AtEnd(); bc.Next()) {
      total += static_cast<uint64_t>(bc.span().rows()) * bc.span().degree;
    }
  }
  return total;
}

/// The carry-corrected contiguous carve of AllocateEata's pass 2, walking the
/// subset instead of the whole matrix. speed[t] == 1.0 for all threads gives
/// the WaTA split.
std::vector<Workload> CarveSubset(const graph::CsdbMatrix& a,
                                  const std::vector<RowRange>& rows, int threads,
                                  const std::vector<double>& speed,
                                  uint64_t total) {
  std::vector<Workload> out(threads);
  double speed_sum = 0.0;
  for (int t = 0; t < threads; ++t) speed_sum += speed[t];
  if (speed_sum <= 0.0 || total == 0) return out;

  SubsetWalk walk(a, rows);
  uint64_t allocated = 0;
  double cumulative_target = 0.0;
  for (int t = 0; t < threads && !walk.AtEnd(); ++t) {
    const SubsetWalk::Mark m = walk.mark();
    if (t == threads - 1) {
      while (!walk.AtEnd()) walk.Next();
      walk.EmitSince(m, &out[t]);
      break;
    }
    cumulative_target += static_cast<double>(total) * speed[t] / speed_sum;
    const uint64_t budget = std::max<uint64_t>(
        1, cumulative_target > static_cast<double>(allocated)
               ? static_cast<uint64_t>(cumulative_target - allocated)
               : 1);
    uint64_t taken = 0;
    while (!walk.AtEnd() && (taken < budget || taken == 0) &&
           allocated + taken < total) {
      taken += walk.degree();
      walk.Next();
    }
    walk.EmitSince(m, &out[t]);
    allocated += taken;
  }
  return out;
}

std::vector<Workload> SubsetRoundRobin(const std::vector<RowRange>& rows,
                                       int threads) {
  // Equal row-count chunks over the subset, by pure range arithmetic.
  std::vector<Workload> out(threads);
  uint64_t total_rows = 0;
  for (const RowRange& r : rows) total_rows += r.size();
  if (total_rows == 0) return out;
  const uint64_t chunk = (total_rows + threads - 1) / threads;
  size_t seg = 0;
  uint32_t pos = rows[0].begin;
  for (int t = 0; t < threads && seg < rows.size(); ++t) {
    uint64_t need = chunk;
    while (need > 0 && seg < rows.size()) {
      const auto take =
          static_cast<uint32_t>(std::min<uint64_t>(rows[seg].end - pos, need));
      if (take > 0) out[t].ranges.push_back(RowRange{pos, pos + take});
      pos += take;
      need -= take;
      if (pos >= rows[seg].end) {
        ++seg;
        if (seg < rows.size()) pos = rows[seg].begin;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Workload> AllocateSubset(const graph::CsdbMatrix& a,
                                     AllocatorKind kind,
                                     const std::vector<RowRange>& rows,
                                     const AllocatorOptions& options) {
  OMEGA_CHECK(options.num_threads > 0) << "allocator needs at least one thread";
  const int threads = options.num_threads;
  const uint64_t total = SubsetNnz(a, rows);
  std::vector<Workload> out;
  switch (kind) {
    case AllocatorKind::kRoundRobin:
      out = SubsetRoundRobin(rows, threads);
      break;
    case AllocatorKind::kWorkloadBalanced:
      out = CarveSubset(a, rows, threads, std::vector<double>(threads, 1.0), total);
      break;
    case AllocatorKind::kEntropyAware: {
      // Same two-pass refinement as AllocateEata: estimate entropies on the
      // balanced split, rescale budgets by Eq. 7 speeds, carve, repeat once.
      constexpr double kGatherShare = 0.7;
      out = CarveSubset(a, rows, threads, std::vector<double>(threads, 1.0), total);
      AnnotateAll(a, options.beta, &out);
      std::vector<double> speed(threads, 0.0);
      for (const int pass : {0, 1}) {
        (void)pass;
        for (int t = 0; t < threads; ++t) {
          if (out[t].empty()) {
            speed[t] = 0.0;
            continue;
          }
          const double w_sca =
              ScatterFactor(out[t].entropy, a.num_cols(), options.beta);
          speed[t] = 1.0 / ((1.0 - kGatherShare) + kGatherShare / w_sca);
        }
        out = CarveSubset(a, rows, threads, speed, total);
        AnnotateAll(a, options.beta, &out);
      }
      break;
    }
  }
  if (out.empty()) out.resize(threads);
  AnnotateAll(a, options.beta, &out);
  return out;
}

}  // namespace omega::sched
