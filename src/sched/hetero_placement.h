// Heterogeneous-compute placement of CSDB degree blocks (PIM offload).
//
// EaTA (§III-B) balances host threads against each other using workload
// entropy; this generalizes the same cost reasoning across *devices*. For
// every CSDB degree block the placement compares
//   * the host cost: the Z(H)-blended gather charge of sparse/spmm.cc under
//     NaDP socket-group contention, plus the sequential streams and the
//     host MAC share — expensive exactly where entropy is high (many
//     low-degree rows gathering all over the dense operand); and
//   * the PIM cost: shipping the block's nnz over the gang-DMA link once,
//     bank-serial MACs (ceil(rows/banks) rows per bank — a few-row hub block
//     serializes onto one bank and loses badly), and the result readback +
//     host merge.
// Low-to-mid-degree blocks (high entropy, many rows to spread across banks)
// go to PIM; hub blocks and low-entropy streams stay on the host AVX2 panels.
// The dense-operand broadcast is shared by all offloaded blocks and enters
// only the global decision, not the per-block marginal costs.
//
// The placement is a pure cost estimate: it reads the CostModel directly and
// never touches traffic counters or clocks (sparse::PimSpmm issues the real
// charges at execute time).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csdb.h"
#include "memsim/memory_system.h"
#include "sched/workload.h"

namespace omega::sched {

enum class PimPolicy { kHostOnly = 0, kAuto = 1, kAllPim = 2 };

const char* PimPolicyName(PimPolicy policy);

/// Configuration of the simulated PIM gang visible to the scheduler.
struct PimConfig {
  /// Total banks across the machine; 0 disables the PIM path entirely (the
  /// placement degenerates to host-only regardless of policy).
  int banks = 0;
  size_t mram_bytes_per_bank = 256ULL << 10;
  double bank_ops_per_second = 1.0e9;
  PimPolicy policy = PimPolicy::kHostOnly;
  /// Dense width the placement is priced for (the execute's b.cols()). The
  /// ship cost amortizes over the width, so the split depends on it.
  size_t dense_cols = 0;
  /// Hysteresis: a block offloads under kAuto only when the modeled PIM cost
  /// beats the host cost by this factor, guarding against model error making
  /// auto worse than host-only.
  double offload_margin = 1.15;

  bool active() const { return banks > 0 && policy != PimPolicy::kHostOnly; }
  bool operator==(const PimConfig& other) const = default;
};

/// One CSDB degree block's placement decision with its modeled costs.
struct HeteroBlock {
  uint32_t row_begin = 0;
  uint32_t row_end = 0;
  uint32_t degree = 0;
  uint64_t nnz = 0;
  double entropy_z = 0.0;     ///< Z(H) of the block as a workload
  bool on_pim = false;
  bool fits_mram = true;      ///< false => host-forced regardless of policy
  double host_seconds = 0.0;  ///< modeled aggregate host seconds
  double pim_seconds = 0.0;   ///< modeled ship + bank compute + drain seconds
};

/// The chosen split plus the run-constant estimates behind it.
struct HeteroPlacement {
  PimPolicy policy = PimPolicy::kHostOnly;
  std::vector<HeteroBlock> blocks;
  /// Coalesced row ranges per device; host_ranges is the complement of
  /// pim_ranges over [0, num_rows) and is what the host allocators cover.
  std::vector<RowRange> pim_ranges;
  std::vector<RowRange> host_ranges;
  uint64_t pim_nnz = 0;
  uint64_t host_nnz = 0;
  uint32_t pim_rows = 0;
  /// Modeled totals (diagnostics / bench JSON, not charged anywhere).
  double est_host_seconds = 0.0;      ///< host blocks, aggregate
  double est_pim_pipeline_seconds = 0.0;  ///< broadcast + ship + bank compute
  double est_pim_tail_seconds = 0.0;      ///< readback + host merge

  bool any_pim() const { return !pim_ranges.empty(); }
};

/// Prices every degree block of `a` and splits them between the PIM banks
/// and the host panels under `cfg.policy`. `host_threads` and the operand
/// tiers describe the host alternative (the NaDP execution the blocks would
/// otherwise join). Pure: no charges, no counter updates.
HeteroPlacement PlaceDegreeBlocks(const graph::CsdbMatrix& a,
                                  const PimConfig& cfg,
                                  const memsim::MemorySystem& ms,
                                  int host_threads, memsim::Tier sparse_tier,
                                  memsim::Tier dense_tier,
                                  memsim::Tier result_tier);

}  // namespace omega::sched
