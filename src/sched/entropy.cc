#include "sched/entropy.h"

#include <algorithm>
#include <cmath>

namespace omega::sched {

void EntropyAccumulator::AddRow(uint32_t degree) {
  ++rows_;
  if (degree == 0) return;
  s1_ += degree;
  s2_ += static_cast<double>(degree) * std::log(static_cast<double>(degree));
}

void EntropyAccumulator::RemoveRow(uint32_t degree) {
  --rows_;
  if (degree == 0) return;
  s1_ -= degree;
  s2_ -= static_cast<double>(degree) * std::log(static_cast<double>(degree));
}

void EntropyAccumulator::Reset() {
  s1_ = 0;
  s2_ = 0.0;
  rows_ = 0;
}

double EntropyAccumulator::Entropy() const {
  if (s1_ == 0) return 0.0;
  const double s1 = static_cast<double>(s1_);
  return std::max(0.0, std::log(s1) - s2_ / s1);
}

double NormalizedEntropy(double entropy, uint32_t num_nodes) {
  if (num_nodes <= 1) return 0.0;
  const double z = entropy / std::log(static_cast<double>(num_nodes));
  return std::clamp(z, 0.0, 1.0);
}

double ScatterFactor(double entropy, uint32_t num_nodes, double beta) {
  const double z = NormalizedEntropy(entropy, num_nodes);
  return 1.0 - z + beta * z;
}

double EataWeight(double entropy, uint32_t num_nodes, double beta) {
  return entropy * ScatterFactor(entropy, num_nodes, beta);
}

double WorkloadEntropy(const graph::CsdbMatrix& a, const Workload& w) {
  EntropyAccumulator acc;
  for (const RowRange& range : w.ranges) {
    if (range.size() == 0) continue;
    for (auto cur = a.Rows(range.begin); cur.row() < range.end; cur.Next()) {
      acc.AddRow(cur.degree());
    }
  }
  return acc.Entropy();
}

void AnnotateWorkload(const graph::CsdbMatrix& a, double beta, Workload* w) {
  RefreshCounts(a, w);
  w->entropy = WorkloadEntropy(a, *w);
  w->scatter = ScatterFactor(w->entropy, a.num_cols(), beta);
}

}  // namespace omega::sched
