// Tier-agnostic buffer pool over the simulated memory hierarchy.
//
// Every staged working set in the pipeline — ASL column partitions, the
// out-of-core baselines' feature caches, WoFP's DRAM-resident top-m stores —
// holds frames of SimBuffer-backed pages tagged by (tier, node). Before this
// layer each consumer hand-rolled its own Reserve/Release bookkeeping; the
// BufferManager centralizes it behind pin/unpin with ref-counted handles and
// pluggable eviction:
//
//   kLru       — strict least-recently-used among unpinned frames (the
//                Marius-style partition buffer rotation).
//   kHotPinned — LRU, but frames marked hot are never evicted (WoFP's η rule:
//                the top-m hot rows stay resident whatever else churns).
//
// Pages are "unmaterialized" by default: they reserve simulated device
// capacity without allocating host memory, because staging traffic is charged
// analytically and the page contents are never computed on. Pass
// materialize=true for pages whose bytes kernels actually touch.
//
// Thread safety: all operations (including handle copy/release) take the
// manager's mutex; handles must not outlive their manager.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "memsim/memory_system.h"

namespace omega::buffer {

/// Identity of one page: which simulated device it lives on plus a
/// caller-chosen id (ASL uses the partition index, out-of-core the feature
/// block). node is the NUMA socket (memsim::Placement::kInterleaved legal).
struct PageKey {
  memsim::Tier tier = memsim::Tier::kDram;
  int node = 0;
  uint64_t id = 0;

  bool operator==(const PageKey& other) const {
    return tier == other.tier && node == other.node && id == other.id;
  }
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.tier) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(static_cast<int64_t>(k.node)) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    h ^= k.id + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

enum class EvictionPolicy {
  kLru = 0,       ///< evict the least-recently-used unpinned frame
  kHotPinned = 1  ///< LRU, but MarkHot frames are never evicted
};

namespace internal {
struct Frame;  // defined in buffer_manager.cc
}

class BufferManager;

/// Ref-counted pin on a resident frame. Copy re-pins, destruction unpins;
/// a default-constructed handle is invalid. Handles must be released (or
/// destroyed) before their BufferManager.
class PinHandle {
 public:
  PinHandle() = default;
  ~PinHandle();
  PinHandle(const PinHandle& other);
  PinHandle& operator=(const PinHandle& other);
  PinHandle(PinHandle&& other) noexcept;
  PinHandle& operator=(PinHandle&& other) noexcept;

  bool valid() const { return frame_ != nullptr; }
  const PageKey& key() const;
  size_t bytes() const;
  /// Host pointer of a materialized page; nullptr for accounting-only pages.
  std::byte* data() const;
  memsim::Placement placement() const;

  /// Drops this handle's pin early (idempotent).
  void Release();

 private:
  friend class BufferManager;
  PinHandle(BufferManager* mgr, internal::Frame* frame)
      : mgr_(mgr), frame_(frame) {}

  BufferManager* mgr_ = nullptr;
  internal::Frame* frame_ = nullptr;
};

/// The pool. One per staging domain (the engine's ASL frames, one per WoFP
/// plan, one per out-of-core run); never copied or moved once handles exist.
class BufferManager {
 public:
  struct Options {
    /// Pool-level byte budget across all frames; 0 = bounded only by the
    /// simulated devices' capacities.
    size_t capacity_bytes = 0;
    EvictionPolicy policy = EvictionPolicy::kLru;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t resident_bytes = 0;
    size_t pinned_bytes = 0;

    /// Interval delta of the monotone counters (hits/misses/evictions);
    /// resident/pinned are point-in-time gauges and keep this side's values.
    Stats operator-(const Stats& other) const {
      Stats d = *this;
      d.hits -= other.hits;
      d.misses -= other.misses;
      d.evictions -= other.evictions;
      return d;
    }
  };

  BufferManager(memsim::MemorySystem* ms, Options options);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins the page, fetching it into a frame on miss. A hit with a different
  /// size is InvalidArgument. On miss, unpinned frames are evicted (per the
  /// policy) until the page fits under both the pool budget and the simulated
  /// device capacity; if everything resident is pinned (or hot), returns
  /// CapacityExceeded rather than blocking — callers choose their own
  /// fallback, the pool never deadlocks. Zero-byte pages are legal.
  Result<PinHandle> Pin(const PageKey& key, size_t bytes,
                        bool materialize = false);

  /// Pins the page only if already resident; invalid handle on miss.
  PinHandle Lookup(const PageKey& key);

  /// Exempts (or re-admits) a resident frame from kHotPinned eviction.
  Status MarkHot(const PageKey& key, bool hot = true);

  /// Drops an unpinned resident frame, releasing its reservation.
  Status Evict(const PageKey& key);

  /// A key no other caller of this manager holds, for anonymous frames.
  PageKey UniqueKey(memsim::Tier tier, int node);

  Stats GetStats() const;
  const Options& options() const { return options_; }
  memsim::MemorySystem* memory_system() const { return ms_; }

 private:
  friend class PinHandle;

  void PinAgain(internal::Frame* frame);  // handle copy
  void Unpin(internal::Frame* frame);     // handle release

  /// Evicts the LRU unpinned (and, under kHotPinned, non-hot) frame.
  /// Returns false when nothing is evictable. Caller holds mu_.
  bool EvictOneLocked();

  memsim::MemorySystem* ms_;
  Options options_;

  mutable std::mutex mu_;
  std::unordered_map<PageKey, std::unique_ptr<internal::Frame>, PageKeyHash>
      frames_;
  uint64_t tick_ = 0;
  uint64_t next_unique_id_ = 0;
  Stats stats_;
};

}  // namespace omega::buffer
