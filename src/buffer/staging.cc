#include "buffer/staging.h"

#include <algorithm>

namespace omega::buffer {

std::pair<size_t, size_t> SliceColumns(size_t cols, size_t n, size_t k) {
  const size_t per = (cols + n - 1) / n;
  const size_t begin = std::min(cols, k * per);
  const size_t end = std::min(cols, begin + per);
  return {begin, end};
}

uint64_t NumColumnPasses(size_t cols, size_t block) {
  return (cols + block - 1) / block;
}

double StageSeconds(memsim::MemorySystem* ms, size_t bytes,
                    memsim::Placement from, memsim::Placement to) {
  if (bytes == 0) return 0.0;
  // The copy pipeline is bounded by the slower of the source read stream and
  // the destination write stream; one background loader thread homed on the
  // destination socket.
  const int socket = std::max(0, to.socket);
  const double read =
      ms->AccessSeconds(from, socket, memsim::MemOp::kRead,
                        memsim::Pattern::kSequential, bytes, 1, 1);
  const double write =
      ms->AccessSeconds(to, socket, memsim::MemOp::kWrite,
                        memsim::Pattern::kSequential, bytes, 1, 1);
  return std::max(read, write);
}

Result<StageFetchResult> StageFetch(memsim::MemorySystem* ms, size_t bytes,
                                    const StageFetchConfig& cfg) {
  StageFetchResult result;
  if (bytes == 0) return result;
  if (!ms->faults_enabled()) {
    result.seconds = StageSeconds(ms, bytes, cfg.from, cfg.to);
    return result;
  }

  const int socket = std::max(0, cfg.to.socket);
  // The destination write side is charged once, against the attempt that
  // actually delivers the data; only the source read stream is fault-prone.
  const double write =
      ms->AccessSeconds(cfg.to, socket, memsim::MemOp::kWrite,
                        memsim::Pattern::kSequential, bytes, 1, 1);

  uint64_t throwaway = 0;
  uint64_t* cursor = cfg.fault_site != nullptr ? cfg.fault_site : &throwaway;
  const uint64_t site = (*cursor)++;
  memsim::FaultInjector& faults = ms->faults();

  double cost = 0.0;
  double backoff = cfg.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    const memsim::MemorySystem::FaultDraw draw = ms->TryAccessSeconds(
        cfg.from, socket, memsim::MemOp::kRead, memsim::Pattern::kSequential,
        bytes, 1, 1, cfg.fault_stream, site, static_cast<uint32_t>(attempt));
    if (draw.kind == memsim::FaultKind::kNone ||
        draw.kind == memsim::FaultKind::kTransientStall) {
      // Stalls self-recover inside the draw: the returned seconds already
      // include the stall charge.
      cost += std::max(draw.seconds, write);
      result.seconds = cost;
      return result;
    }
    // Media error / timeout: the wasted attempt is paid for in full.
    cost += draw.seconds;
    if (attempt < cfg.max_retries) {
      faults.CountRetried();
      result.retries++;
      cost += backoff;
      faults.AddPenaltySeconds(backoff);
      backoff *= 2.0;
      continue;
    }
    if (cfg.allow_degraded) {
      // Stream from the slower durable home instead of the failing source.
      faults.CountDegraded();
      result.degraded = true;
      const double fallback_read =
          ms->AccessSeconds(cfg.degraded_home, socket, memsim::MemOp::kRead,
                            memsim::Pattern::kSequential, bytes, 1, 1);
      cost += std::max(fallback_read, write);
      result.seconds = cost;
      return result;
    }
    faults.CountSurfaced();
    return Status::IOError(cfg.label + " failed after " +
                           std::to_string(cfg.max_retries) +
                           " retries: " + memsim::FaultKindName(draw.kind));
  }
}

double FetchSlowdown(memsim::MemorySystem* ms, memsim::Placement from,
                     memsim::Placement to, int compute_threads) {
  const auto& profiles = ms->cost_model().profiles();
  auto leg = [&](memsim::Placement p, memsim::MemOp op) {
    const memsim::BandwidthCurve& curve =
        profiles.Get(p.tier).Curve(op, memsim::Pattern::kSequential,
                                   memsim::Locality::kLocal);
    const double solo = curve.PerThreadGbps(1);
    const double shared = curve.PerThreadGbps(compute_threads + 1);
    return shared > 0.0 ? solo / shared : 1.0;
  };
  return std::max(1.0, std::max(leg(from, memsim::MemOp::kRead),
                                leg(to, memsim::MemOp::kWrite)));
}

}  // namespace omega::buffer
