#include "buffer/buffer_manager.h"

#include <utility>

#include "common/string_util.h"
#include "memsim/sim_buffer.h"

namespace omega::buffer {

namespace internal {

struct Frame {
  PageKey key;
  memsim::SimBuffer<std::byte> page;
  size_t bytes = 0;
  int pins = 0;
  uint64_t last_use = 0;
  bool hot = false;
};

}  // namespace internal

using internal::Frame;

// --- PinHandle ---------------------------------------------------------------

PinHandle::~PinHandle() { Release(); }

PinHandle::PinHandle(const PinHandle& other)
    : mgr_(other.mgr_), frame_(other.frame_) {
  if (frame_ != nullptr) mgr_->PinAgain(frame_);
}

PinHandle& PinHandle::operator=(const PinHandle& other) {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    frame_ = other.frame_;
    if (frame_ != nullptr) mgr_->PinAgain(frame_);
  }
  return *this;
}

PinHandle::PinHandle(PinHandle&& other) noexcept
    : mgr_(other.mgr_), frame_(other.frame_) {
  other.frame_ = nullptr;
  other.mgr_ = nullptr;
}

PinHandle& PinHandle::operator=(PinHandle&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    frame_ = other.frame_;
    other.frame_ = nullptr;
    other.mgr_ = nullptr;
  }
  return *this;
}

const PageKey& PinHandle::key() const { return frame_->key; }
size_t PinHandle::bytes() const { return frame_->bytes; }
std::byte* PinHandle::data() const {
  return frame_->page.empty() ? nullptr : frame_->page.data();
}
memsim::Placement PinHandle::placement() const {
  return memsim::Placement{frame_->key.tier, frame_->key.node};
}

void PinHandle::Release() {
  if (frame_ != nullptr) mgr_->Unpin(frame_);
  frame_ = nullptr;
  mgr_ = nullptr;
}

// --- BufferManager -----------------------------------------------------------

BufferManager::BufferManager(memsim::MemorySystem* ms, Options options)
    : ms_(ms), options_(options) {}

BufferManager::~BufferManager() = default;

Result<PinHandle> BufferManager::Pin(const PageKey& key, size_t bytes,
                                     bool materialize) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    if (f->bytes != bytes) {
      return Status::InvalidArgument(
          "BufferManager: page re-pinned with size " + HumanBytes(bytes) +
          " but resident at " + HumanBytes(f->bytes));
    }
    stats_.hits++;
    if (f->pins == 0) stats_.pinned_bytes += f->bytes;
    f->pins++;
    f->last_use = ++tick_;
    return PinHandle(this, f);
  }
  stats_.misses++;

  // Make room under the pool budget first, then against the simulated device;
  // both loops surface CapacityExceeded when everything resident is pinned
  // (or hot) instead of waiting — the pool must never deadlock.
  while (options_.capacity_bytes > 0 &&
         stats_.resident_bytes + bytes > options_.capacity_bytes) {
    if (!EvictOneLocked()) {
      return Status::CapacityExceeded(
          "BufferManager: cannot fit page of " + HumanBytes(bytes) +
          " under pool budget " + HumanBytes(options_.capacity_bytes) +
          " (all resident frames pinned)");
    }
  }
  for (;;) {
    auto page =
        materialize
            ? memsim::SimBuffer<std::byte>::Create(ms_, bytes, key.tier,
                                                   key.node)
            : memsim::SimBuffer<std::byte>::CreateUnmaterialized(
                  ms_, bytes, key.tier, key.node);
    if (page.ok()) {
      auto frame = std::make_unique<Frame>();
      frame->key = key;
      frame->page = std::move(page).value();
      frame->bytes = bytes;
      frame->pins = 1;
      frame->last_use = ++tick_;
      Frame* raw = frame.get();
      frames_.emplace(key, std::move(frame));
      stats_.resident_bytes += bytes;
      stats_.pinned_bytes += bytes;
      return PinHandle(this, raw);
    }
    if (!EvictOneLocked()) return page.status();
  }
}

PinHandle BufferManager::Lookup(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) return PinHandle();
  Frame* f = it->second.get();
  stats_.hits++;
  if (f->pins == 0) stats_.pinned_bytes += f->bytes;
  f->pins++;
  f->last_use = ++tick_;
  return PinHandle(this, f);
}

Status BufferManager::MarkHot(const PageKey& key, bool hot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    return Status::NotFound("BufferManager: MarkHot on a non-resident page");
  }
  it->second->hot = hot;
  return Status::OK();
}

Status BufferManager::Evict(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    return Status::NotFound("BufferManager: Evict on a non-resident page");
  }
  if (it->second->pins > 0) {
    return Status::InvalidArgument("BufferManager: Evict on a pinned page");
  }
  stats_.resident_bytes -= it->second->bytes;
  stats_.evictions++;
  frames_.erase(it);
  return Status::OK();
}

PageKey BufferManager::UniqueKey(memsim::Tier tier, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  // High bit namespaces generated ids away from caller-chosen ones.
  return PageKey{tier, node, (1ull << 63) | next_unique_id_++};
}

BufferManager::Stats BufferManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferManager::PinAgain(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frame->pins == 0) stats_.pinned_bytes += frame->bytes;
  frame->pins++;
  frame->last_use = ++tick_;
}

void BufferManager::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frame->pins--;
  frame->last_use = ++tick_;
  if (frame->pins == 0) stats_.pinned_bytes -= frame->bytes;
}

bool BufferManager::EvictOneLocked() {
  Frame* victim = nullptr;
  for (auto& [key, frame] : frames_) {
    if (frame->pins > 0) continue;
    if (options_.policy == EvictionPolicy::kHotPinned && frame->hot) continue;
    if (victim == nullptr || frame->last_use < victim->last_use) {
      victim = frame.get();
    }
  }
  if (victim == nullptr) return false;
  stats_.resident_bytes -= victim->bytes;
  stats_.evictions++;
  frames_.erase(victim->key);
  return true;
}

}  // namespace omega::buffer
