// Shared partition-staging helpers.
//
// stream/asl and sparse/semi_external both walk a dense matrix in column
// slices and charge a staged copy per slice; the slicing arithmetic and the
// fault-aware copy loop used to be duplicated in each. StageFetch is the one
// implementation: a sequential read from `from` overlapped with a sequential
// write to `to` on one background loader stream, with the PR5 retry /
// degrade / surface recovery on the read side when fault injection is on.
//
// FetchSlowdown feeds SimClock::OverlappedSeconds: when an async staging
// fetch shares a device with `compute_threads` compute streams, the Fig. 9
// saturation curves give the fetch a smaller per-stream share than it would
// get running alone; the ratio is how much slower the overlapped fetch
// progresses while compute is active.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "memsim/memory_system.h"

namespace omega::buffer {

/// Column range of slice `k` out of `n` over `cols` columns (last slice may
/// be short; slices beyond the columns are empty).
std::pair<size_t, size_t> SliceColumns(size_t cols, size_t n, size_t k);

/// Number of column blocks of width `block` covering `cols` columns.
uint64_t NumColumnPasses(size_t cols, size_t block = 16);

/// Simulated seconds of the healthy staged copy: max of the read stream on
/// `from` and the write stream on `to`, one background loader thread. Charges
/// traffic on both devices.
double StageSeconds(memsim::MemorySystem* ms, size_t bytes,
                    memsim::Placement from, memsim::Placement to);

struct StageFetchConfig {
  memsim::Placement from;
  memsim::Placement to;

  // Fault recovery (consulted only when ms->faults_enabled()).
  int max_retries = 3;
  double retry_backoff_seconds = 1e-4;  ///< first backoff; doubles per retry
  bool allow_degraded = true;
  memsim::Placement degraded_home{memsim::Tier::kSsd, 0};
  uint64_t fault_stream = 0;
  /// Caller-owned fault-site cursor; one site is consumed per non-empty fetch.
  /// Null uses a throwaway cursor (only sensible for single-shot callers).
  uint64_t* fault_site = nullptr;
  /// Prefix of the surfaced IOError message, e.g. "ASL: partition load [0, 8)".
  std::string label = "stage fetch";
};

struct StageFetchResult {
  double seconds = 0.0;    ///< pipelined cost of the fetch, faults included
  uint64_t retries = 0;    ///< media/timeout faults recovered by retrying
  bool degraded = false;   ///< served from degraded_home after retries ran out
};

/// Fault-aware staged copy of `bytes` from `from` to `to`. Healthy (or
/// fault-injection off) it charges exactly StageSeconds; under faults the
/// read side retries up to max_retries with exponential backoff, then either
/// degrades to degraded_home or surfaces an IOError, preserving the
/// injected == retried + degraded + surfaced accounting identity.
Result<StageFetchResult> StageFetch(memsim::MemorySystem* ms, size_t bytes,
                                    const StageFetchConfig& cfg);

/// How much slower a staging fetch progresses while `compute_threads` compute
/// streams are active on the endpoint devices: the fetch is one of
/// (compute_threads + 1) streams, so each leg slows by
/// PerThreadGbps(1) / PerThreadGbps(compute_threads + 1) on its device; the
/// copy is bounded by its slower leg. Always >= 1.
double FetchSlowdown(memsim::MemorySystem* ms, memsim::Placement from,
                     memsim::Placement to, int compute_threads);

}  // namespace omega::buffer
