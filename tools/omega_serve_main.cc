// omega_serve — closed-loop embedding-serving driver.
//
// Serves embedding lookups and top-k similarity queries from the scheduler +
// WoFP-style hot cache in src/serve/, driven by a Zipf closed-loop load
// generator, and reports client latency percentiles, QPS, cache hit rate,
// and per-tier simulated traffic.
//
// Usage:
//   omega_serve [options]
//     --nodes <n>           synthetic embedding rows (default 32768)
//     --dim <d>             embedding dimension (default 32)
//     --graph <path|name>   train this graph first and serve its embedding
//                           (popularity = node degree); overrides --nodes
//     --clients <n>         closed-loop client threads (default 8)
//     --requests <n>        requests per client (default 500)
//     --skew <s>            Zipf skew (default 0.99)
//     --topk <k>            neighbors per top-k query (default 10)
//     --topk-fraction <f>   fraction of top-k queries vs lookups (default 0.8)
//     --workers <n>         serving worker threads (default 2)
//     --queue <n>           admission queue capacity (default 1024)
//     --batch <n>           max batch size (default 32)
//     --deadline-us <t>     batch-close deadline (default 200)
//     --per-request         disable batching (batch size pinned to 1)
//     --cache-kb <n>        hot-cache DRAM budget (default 1024 KiB)
//     --hot-fraction <f>    pinned-hot share of the budget (default 0.5)
//     --cold-tier <t>       pm (default) | ssd | net — where cold vectors live
//     --fault-profile <p>   none | pm-stall | pm-degraded | worn-ssd |
//                           flaky-net | chaos, optional ":<seed>"
//     --seed <n>            workload seed (default 42)
//     --trace-json <path>   write the serving trace (RunReport JSON)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "linalg/random_matrix.h"
#include "omega/engine.h"
#include "omega/report.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/zipf.h"

namespace {

using namespace omega;

struct CliOptions {
  std::string graph;
  std::string cold_tier = "pm";
  std::string fault_profile;
  std::string trace_json;
  uint32_t nodes = 32768;
  size_t dim = 32;
  int clients = 8;
  uint64_t requests = 500;
  double skew = 0.99;
  uint32_t topk = 10;
  double topk_fraction = 0.8;
  int workers = 2;
  size_t queue = 1024;
  size_t batch = 32;
  double deadline_us = 200.0;
  bool per_request = false;
  size_t cache_kb = 1024;
  double hot_fraction = 0.5;
  uint64_t seed = 42;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes n] [--dim d] [--graph <path|name>] "
               "[--clients n] [--requests n] [--skew s] [--topk k] "
               "[--topk-fraction f] [--workers n] [--queue n] [--batch n] "
               "[--deadline-us t] [--per-request] [--cache-kb n] "
               "[--hot-fraction f] [--cold-tier pm|ssd|net] "
               "[--fault-profile name[:seed]] [--seed n] [--trace-json path]\n",
               argv0);
  return 2;
}

bool ParseColdTier(const std::string& name, serve::HotCacheOptions* cache) {
  if (name == "pm") {
    cache->cold_home = {memsim::Tier::kPm, 0};
    cache->replica_home = {memsim::Tier::kSsd, 0};
  } else if (name == "ssd") {
    cache->cold_home = {memsim::Tier::kSsd, 0};
    cache->replica_home = {memsim::Tier::kPm, 0};
  } else if (name == "net") {
    cache->cold_home = {memsim::Tier::kNetwork, 0};
    cache->replica_home = {memsim::Tier::kSsd, 0};
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--graph" && i + 1 < argc) {
      cli.graph = argv[++i];
    } else if (arg == "--cold-tier" && i + 1 < argc) {
      cli.cold_tier = argv[++i];
    } else if (arg == "--fault-profile" && i + 1 < argc) {
      cli.fault_profile = argv[++i];
    } else if (arg.rfind("--fault-profile=", 0) == 0) {
      cli.fault_profile = arg.substr(std::strlen("--fault-profile="));
      if (cli.fault_profile.empty()) return Usage(argv[0]);
    } else if (arg == "--trace-json" && i + 1 < argc) {
      cli.trace_json = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      cli.trace_json = arg.substr(std::strlen("--trace-json="));
      if (cli.trace_json.empty()) return Usage(argv[0]);
    } else if (arg == "--nodes" && i + 1 < argc) {
      cli.nodes = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--dim" && i + 1 < argc) {
      cli.dim = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--clients" && i + 1 < argc) {
      cli.clients = std::atoi(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      cli.requests = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--skew" && i + 1 < argc) {
      cli.skew = std::atof(argv[++i]);
    } else if (arg == "--topk" && i + 1 < argc) {
      cli.topk = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--topk-fraction" && i + 1 < argc) {
      cli.topk_fraction = std::atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      cli.workers = std::atoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      cli.queue = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--batch" && i + 1 < argc) {
      cli.batch = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-us" && i + 1 < argc) {
      cli.deadline_us = std::atof(argv[++i]);
    } else if (arg == "--per-request") {
      cli.per_request = true;
    } else if (arg == "--cache-kb" && i + 1 < argc) {
      cli.cache_kb = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--hot-fraction" && i + 1 < argc) {
      cli.hot_fraction = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      cli.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      return Usage(argv[0]);
    }
  }
  if (cli.nodes == 0 || cli.dim == 0 || cli.clients <= 0 || cli.skew <= 0.0 ||
      cli.queue == 0) {
    return Usage(argv[0]);
  }

  auto ms = std::make_unique<memsim::MemorySystem>(memsim::TopologyConfig{},
                                                   memsim::DefaultProfiles());
  if (!cli.fault_profile.empty()) {
    auto plan = memsim::FaultPlanFromProfile(cli.fault_profile);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return Usage(argv[0]);
    }
    ms->SetFaultPlan(plan.value());
  }

  // The served embedding: either train a graph, or draw a synthetic matrix.
  linalg::DenseMatrix embedding;
  std::vector<prefetch::ScoredKey> popularity;
  std::string dataset = "synthetic";
  if (!cli.graph.empty()) {
    Result<graph::Graph> loaded = graph::LoadDatasetByName(cli.graph);
    if (!loaded.ok()) loaded = graph::LoadEdgeListText(cli.graph);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load graph '%s': %s\n", cli.graph.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    const graph::Graph& g = loaded.value();
    engine::EngineOptions options;
    options.system = engine::SystemKind::kOmega;
    options.num_threads = std::max(1, cli.workers);
    options.prone.dim = cli.dim;
    ThreadPool pool(static_cast<size_t>(options.num_threads));
    const exec::Context train_ctx(ms.get(), &pool, options.num_threads);
    auto report = engine::RunEmbedding(g, cli.graph, options, train_ctx);
    if (!report.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    embedding = std::move(report.value().embedding);
    cli.nodes = g.num_nodes();
    dataset = cli.graph;
    // Hub nodes absorb the skewed traffic: popularity is the degree ranking.
    popularity.reserve(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      popularity.push_back({v, g.degree(v)});
    }
    std::printf("graph %s: trained %zu x %zu embedding\n", cli.graph.c_str(),
                embedding.rows(), embedding.cols());
  } else {
    embedding = linalg::GaussianMatrix(cli.nodes, cli.dim, cli.seed);
  }

  // Rank r of the Zipf draw maps to rank_to_key[r]; popularity scores agree
  // with the ranking so the warm hot set is exactly the hottest keys.
  std::vector<uint32_t> rank_to_key;
  if (!popularity.empty()) {
    std::stable_sort(popularity.begin(), popularity.end(),
                     [](const prefetch::ScoredKey& a,
                        const prefetch::ScoredKey& b) {
                       if (a.score != b.score) return a.score > b.score;
                       return a.key < b.key;
                     });
    rank_to_key.reserve(popularity.size());
    for (const prefetch::ScoredKey& e : popularity) rank_to_key.push_back(e.key);
  } else {
    rank_to_key = serve::RankPermutation(cli.nodes, SplitMix64(cli.seed));
    popularity.reserve(cli.nodes);
    for (uint32_t r = 0; r < cli.nodes; ++r) {
      popularity.push_back({rank_to_key[r], cli.nodes - r});
    }
  }

  serve::ServerOptions options;
  options.worker_threads = cli.workers;
  options.queue_capacity = cli.queue;
  options.max_batch = cli.batch;
  options.batch_deadline_us = cli.deadline_us;
  options.batched = !cli.per_request;
  options.cache.capacity_bytes = cli.cache_kb * 1024;
  options.cache.hot_fraction = cli.hot_fraction;
  if (!ParseColdTier(cli.cold_tier, &options.cache)) return Usage(argv[0]);

  exec::TraceRecorder trace;
  const exec::Context ctx(ms.get(), nullptr, cli.workers, &trace);
  serve::EmbeddingServer server(embedding, options, ctx);
  server.WarmHotSet(popularity);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  serve::LoadgenOptions load;
  load.clients = cli.clients;
  load.requests_per_client = cli.requests;
  load.zipf_skew = cli.skew;
  load.topk = cli.topk;
  load.topk_fraction = cli.topk_fraction;
  load.seed = cli.seed;
  std::printf(
      "serving %u x %zu from %s (%s, %d workers, cache %zu KiB, "
      "hot fraction %.2f)\n",
      cli.nodes, cli.dim, cli.cold_tier.c_str(),
      options.batched ? "batched" : "per-request", cli.workers, cli.cache_kb,
      cli.hot_fraction);
  const serve::LoadReport report =
      serve::RunClosedLoop(&server, rank_to_key, load);
  server.Stop();

  std::printf("  completed %llu requests in %s (%s rejections absorbed)\n",
              static_cast<unsigned long long>(report.completed),
              HumanSeconds(report.wall_seconds).c_str(),
              std::to_string(report.rejections).c_str());
  std::printf("  QPS        %.0f simulated (%.0f host)\n", report.sim_qps,
              report.host_qps);
  std::printf("  latency us mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
              report.mean_us, report.p50_us, report.p95_us, report.p99_us);
  std::printf("  batches    %llu (avg batch %.2f)\n",
              static_cast<unsigned long long>(report.server.batches),
              report.server.batches > 0
                  ? static_cast<double>(report.server.completed) /
                        static_cast<double>(report.server.batches)
                  : 0.0);
  std::printf("  cache      hit rate %.1f%% (%llu hits, %llu misses, "
              "%llu evictions, %zu hot keys)\n",
              report.cache_delta.HitRate() * 100.0,
              static_cast<unsigned long long>(report.cache_delta.hits),
              static_cast<unsigned long long>(report.cache_delta.misses),
              static_cast<unsigned long long>(report.cache_delta.evictions),
              report.server.cache.hot_keys);
  std::printf("  sim        %s charged over the run\n",
              HumanSeconds(report.sim_seconds).c_str());
  static const char* kTierNames[] = {"DRAM", "PM", "SSD", "NET"};
  for (int t = 0; t < memsim::kNumTiers; ++t) {
    const uint64_t bytes =
        report.traffic_delta.TierBytes(static_cast<memsim::Tier>(t));
    if (bytes > 0) {
      std::printf("  traffic    %-4s %s\n", kTierNames[t],
                  HumanBytes(bytes).c_str());
    }
  }
  if (ms->faults_enabled()) {
    std::printf("  faults     %s (degraded fetches: %llu)\n",
                memsim::FaultCountersSummary(report.fault_delta).c_str(),
                static_cast<unsigned long long>(
                    report.cache_delta.degraded_fetches));
  }

  if (!cli.trace_json.empty()) {
    engine::RunReport rr;
    rr.system = options.batched ? "serve" : "serve-per-request";
    rr.dataset = dataset;
    rr.total_seconds = report.sim_seconds;
    rr.faults_enabled = ms->faults_enabled();
    rr.faults = ms->Faults();
    rr.phases = trace.Records();
    std::ofstream f(cli.trace_json);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", cli.trace_json.c_str());
      return 1;
    }
    f << engine::ReportToJson(rr) << "\n";
    std::printf("trace written to %s (%zu phases)\n", cli.trace_json.c_str(),
                rr.phases.size());
  }
  return 0;
}
