// omega_embed — command-line embedding driver.
//
// Embeds a graph (edge-list file or a Table I dataset analogue) with any of
// the paper's systems on the simulated heterogeneous-memory machine, and
// optionally writes the embedding to disk.
//
// Usage:
//   omega_embed [options]
//     --graph <path|name>   edge-list file, or PK/LJ/OR/TW/TW-2010/FR
//     --system <name>       omega (default) | omega-dram | omega-pm |
//                           prone-dram | prone-hm | ginex | marius
//     --threads <n>         worker threads (default 36)
//     --dim <d>             embedding dimension (default 32)
//     --cheb <k>            Chebyshev order (default 8)
//     --no-wofp / --no-nadp / --no-asl  feature ablations
//     --async-staging       overlap ASL staging fetches with compute (omega)
//     --asl-partitions <n>  pin the ASL partition count (0 = solve Eq. 9)
//     --pim-banks <n>       simulated PIM banks for SpMM offload (0 = off)
//     --pim-placement <p>   auto (default) | all-pim | host-only
//     --allocator <name>    eata (default) | wata | rr
//     --cxl                 use the CXL device profiles for the capacity tier
//     --out <path>          write embedding (.tsv or binary by extension)
//     --auc                 evaluate link-prediction AUC
//     --trace-json <path>   write the per-phase trace (RunReport JSON)
//     --fault-profile <p>   inject faults: none | pm-stall | pm-degraded |
//                           worn-ssd | flaky-net | chaos, optional ":<seed>"
//     --mutations <spec>    dynamic-graph mode (omega-family systems): train,
//                           then apply a mutation stream and refresh the
//                           affected embedding rows incrementally. <spec> is a
//                           mutation file (graph_io.h grammar) or
//                           "synthetic:<rate>[,<seed>]" — rate < 1 is a
//                           fraction of the graph's edges, otherwise a count.
//     --checkpoint-every <n>  crash-consistent checkpointing to the simulated
//                           PM tier: stage boundaries always, plus every n-th
//                           Chebyshev term (omega-family systems)
//     --ckpt-path <path>    persist the checkpoint image host-side after the
//                           run (pairs with --restore-from across processes)
//     --restore-from <path> resume from a saved checkpoint image; the run
//                           skips completed stages and replays from the last
//                           committed snapshot

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "durable/checkpoint.h"
#include "embed/embedding_io.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "graph/mutable_graph.h"
#include "omega/engine.h"
#include "omega/incremental.h"
#include "omega/report.h"

#include <fstream>

namespace {

using namespace omega;

struct CliOptions {
  std::string graph = "PK";
  std::string system = "omega";
  std::string allocator = "eata";
  std::string out;
  std::string trace_json;
  std::string fault_profile;
  int threads = 36;
  size_t dim = 32;
  int cheb = 8;
  bool wofp = true;
  bool nadp = true;
  bool asl = true;
  bool async_staging = false;
  size_t asl_partitions = 0;
  int pim_banks = 0;
  std::string pim_placement = "auto";
  bool cxl = false;
  bool auc = false;
  std::string mutations;
  uint64_t checkpoint_every = 0;
  std::string ckpt_path;
  std::string restore_from;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--graph <path|name>] [--system <name>] "
               "[--threads n] [--dim d] [--cheb k] [--allocator eata|wata|rr] "
               "[--no-wofp] [--no-nadp] [--no-asl] [--async-staging] "
               "[--asl-partitions n] [--pim-banks n] "
               "[--pim-placement auto|all-pim|host-only] [--cxl] [--out path] "
               "[--auc] [--trace-json path] [--fault-profile name[:seed]] "
               "[--mutations <file|synthetic:rate[,seed]>] "
               "[--checkpoint-every n] [--ckpt-path path] "
               "[--restore-from path]\n",
               argv0);
  return 2;
}

Result<engine::SystemKind> ParseSystem(const std::string& name) {
  static const std::map<std::string, engine::SystemKind> kSystems = {
      {"omega", engine::SystemKind::kOmega},
      {"omega-dram", engine::SystemKind::kOmegaDram},
      {"omega-pm", engine::SystemKind::kOmegaPm},
      {"prone-dram", engine::SystemKind::kProneDram},
      {"prone-hm", engine::SystemKind::kProneHm},
      {"ginex", engine::SystemKind::kGinex},
      {"marius", engine::SystemKind::kMariusGnn},
  };
  const auto it = kSystems.find(name);
  if (it == kSystems.end()) return Status::InvalidArgument("unknown system " + name);
  return it->second;
}

Result<sched::AllocatorKind> ParseAllocator(const std::string& name) {
  if (name == "eata") return sched::AllocatorKind::kEntropyAware;
  if (name == "wata") return sched::AllocatorKind::kWorkloadBalanced;
  if (name == "rr") return sched::AllocatorKind::kRoundRobin;
  return Status::InvalidArgument("unknown allocator " + name);
}

Result<sched::PimPolicy> ParsePimPolicy(const std::string& name) {
  if (name == "auto") return sched::PimPolicy::kAuto;
  if (name == "all-pim") return sched::PimPolicy::kAllPim;
  if (name == "host-only") return sched::PimPolicy::kHostOnly;
  return Status::InvalidArgument("unknown PIM placement " + name);
}

/// `spec` is a mutation file path or "synthetic:<rate>[,<seed>]".
Result<std::vector<graph::Mutation>> LoadMutations(const std::string& spec,
                                                   const graph::Graph& g) {
  constexpr const char* kSynthetic = "synthetic:";
  if (spec.rfind(kSynthetic, 0) != 0) return graph::LoadMutationsText(spec);
  const std::string body = spec.substr(std::strlen(kSynthetic));
  char* end = nullptr;
  const double rate = std::strtod(body.c_str(), &end);
  if (end == body.c_str() || rate < 0.0) {
    return Status::InvalidArgument("bad synthetic mutation rate in " + spec);
  }
  uint64_t seed = 42;
  if (*end == ',') {
    seed = std::strtoull(end + 1, nullptr, 10);
  } else if (*end != '\0') {
    return Status::InvalidArgument("bad synthetic mutation spec " + spec);
  }
  const double edges = static_cast<double>(g.num_arcs()) / 2.0;
  const size_t count = rate < 1.0 ? static_cast<size_t>(rate * edges)
                                  : static_cast<size_t>(rate);
  return graph::SyntheticMutations(g, count, seed);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph" && next()) {
      cli.graph = argv[i];
    } else if (arg == "--system" && i + 1 < argc) {
      cli.system = argv[++i];
    } else if (arg == "--allocator" && i + 1 < argc) {
      cli.allocator = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (arg == "--dim" && i + 1 < argc) {
      cli.dim = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--cheb" && i + 1 < argc) {
      cli.cheb = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      cli.out = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      cli.trace_json = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      cli.trace_json = arg.substr(std::strlen("--trace-json="));
      if (cli.trace_json.empty()) return Usage(argv[0]);
    } else if (arg == "--fault-profile" && i + 1 < argc) {
      cli.fault_profile = argv[++i];
    } else if (arg.rfind("--fault-profile=", 0) == 0) {
      cli.fault_profile = arg.substr(std::strlen("--fault-profile="));
      if (cli.fault_profile.empty()) return Usage(argv[0]);
    } else if (arg == "--no-wofp") {
      cli.wofp = false;
    } else if (arg == "--no-nadp") {
      cli.nadp = false;
    } else if (arg == "--no-asl") {
      cli.asl = false;
    } else if (arg == "--async-staging") {
      cli.async_staging = true;
    } else if (arg == "--asl-partitions" && i + 1 < argc) {
      cli.asl_partitions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--pim-banks" && i + 1 < argc) {
      cli.pim_banks = std::atoi(argv[++i]);
    } else if (arg.rfind("--pim-banks=", 0) == 0) {
      cli.pim_banks = std::atoi(arg.c_str() + std::strlen("--pim-banks="));
    } else if (arg == "--pim-placement" && i + 1 < argc) {
      cli.pim_placement = argv[++i];
    } else if (arg.rfind("--pim-placement=", 0) == 0) {
      cli.pim_placement = arg.substr(std::strlen("--pim-placement="));
      if (cli.pim_placement.empty()) return Usage(argv[0]);
    } else if (arg == "--cxl") {
      cli.cxl = true;
    } else if (arg == "--auc") {
      cli.auc = true;
    } else if (arg == "--mutations" && i + 1 < argc) {
      cli.mutations = argv[++i];
    } else if (arg.rfind("--mutations=", 0) == 0) {
      cli.mutations = arg.substr(std::strlen("--mutations="));
      if (cli.mutations.empty()) return Usage(argv[0]);
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      cli.checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      cli.checkpoint_every =
          std::strtoull(arg.c_str() + std::strlen("--checkpoint-every="),
                        nullptr, 10);
    } else if (arg == "--ckpt-path" && i + 1 < argc) {
      cli.ckpt_path = argv[++i];
    } else if (arg.rfind("--ckpt-path=", 0) == 0) {
      cli.ckpt_path = arg.substr(std::strlen("--ckpt-path="));
      if (cli.ckpt_path.empty()) return Usage(argv[0]);
    } else if (arg == "--restore-from" && i + 1 < argc) {
      cli.restore_from = argv[++i];
    } else if (arg.rfind("--restore-from=", 0) == 0) {
      cli.restore_from = arg.substr(std::strlen("--restore-from="));
      if (cli.restore_from.empty()) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (cli.threads <= 0 || cli.dim == 0 || cli.cheb <= 0) return Usage(argv[0]);

  // Load the graph: dataset name first, then as a file path.
  Result<graph::Graph> loaded = graph::LoadDatasetByName(cli.graph);
  if (!loaded.ok()) loaded = graph::LoadEdgeListText(cli.graph);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load graph '%s': %s\n", cli.graph.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = loaded.value();
  std::printf("graph %s: %u nodes, %llu arcs\n", cli.graph.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs()));

  auto system = ParseSystem(cli.system);
  auto allocator = ParseAllocator(cli.allocator);
  auto pim_policy = ParsePimPolicy(cli.pim_placement);
  if (!system.ok() || !allocator.ok() || !pim_policy.ok()) {
    return Usage(argv[0]);
  }
  if (cli.pim_banks < 0) return Usage(argv[0]);

  auto ms = std::make_unique<memsim::MemorySystem>(
      memsim::TopologyConfig{},
      cli.cxl ? memsim::CxlProfiles() : memsim::DefaultProfiles());
  if (!cli.fault_profile.empty()) {
    auto plan = memsim::FaultPlanFromProfile(cli.fault_profile);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return Usage(argv[0]);
    }
    ms->SetFaultPlan(plan.value());
    if (ms->faults_enabled()) {
      std::printf("fault injection: profile %s (seed %llu)\n",
                  cli.fault_profile.c_str(),
                  static_cast<unsigned long long>(plan.value().seed));
    }
  }
  ThreadPool pool(static_cast<size_t>(cli.threads));

  engine::EngineOptions options;
  options.system = system.value();
  options.num_threads = cli.threads;
  options.prone.dim = cli.dim;
  options.prone.chebyshev_order = cli.cheb;
  options.features.allocator = allocator.value();
  options.features.use_wofp = cli.wofp;
  options.features.use_nadp = cli.nadp;
  options.features.use_asl = cli.asl;
  options.features.async_staging = cli.async_staging;
  options.features.asl_fixed_partitions = cli.asl_partitions;
  options.features.pim_banks = cli.pim_banks;
  options.features.pim_placement = pim_policy.value();
  options.evaluate_quality = cli.auc;

  // Crash-consistent checkpointing: the store lives on the simulated PM
  // tier; --ckpt-path / --restore-from persist its byte image host-side so a
  // killed process can resume in a fresh one.
  std::unique_ptr<durable::CheckpointStore> ckpt_store;
  if (cli.checkpoint_every > 0 || !cli.restore_from.empty()) {
    ckpt_store = std::make_unique<durable::CheckpointStore>(
        ms.get(), durable::CheckpointOptions{});
    if (!cli.restore_from.empty()) {
      const Status st = ckpt_store->LoadFromFile(cli.restore_from);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot load checkpoint '%s': %s\n",
                     cli.restore_from.c_str(), st.ToString().c_str());
        return 1;
      }
      options.durability.restore = true;
      std::printf("restoring from %s (%llu entries)\n",
                  cli.restore_from.c_str(),
                  static_cast<unsigned long long>(ckpt_store->entry_count()));
    }
    options.durability.store = ckpt_store.get();
    options.durability.checkpoint_every = cli.checkpoint_every;
  }

  exec::TraceRecorder trace;
  const exec::Context ctx(ms.get(), &pool, cli.threads, &trace);

  // Dynamic-graph mode trains through the DynamicEmbedder (same RunEmbedding
  // call plus the host-only recurrence capture: identical report and bytes),
  // then applies the mutation stream and refreshes incrementally.
  std::unique_ptr<engine::DynamicEmbedder> dyn;
  std::vector<graph::Mutation> mutations;
  if (!cli.mutations.empty()) {
    auto loaded_muts = LoadMutations(cli.mutations, g);
    if (!loaded_muts.ok()) {
      std::fprintf(stderr, "cannot load mutations '%s': %s\n",
                   cli.mutations.c_str(),
                   loaded_muts.status().ToString().c_str());
      return 1;
    }
    mutations = std::move(loaded_muts).value();
    dyn = std::make_unique<engine::DynamicEmbedder>(g, options, cli.graph,
                                                    cli.threads);
  }

  Result<engine::RunReport> report = [&]() -> Result<engine::RunReport> {
    if (dyn == nullptr) return engine::RunEmbedding(g, cli.graph, options, ctx);
    const Status st = dyn->Train(ctx);
    if (!st.ok()) return st;
    return dyn->train_report();
  }();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
    if (ckpt_store != nullptr && !cli.ckpt_path.empty() &&
        ckpt_store->entry_count() > 0) {
      // Persist what the run checkpointed before failing, so a follow-up
      // --restore-from resumes instead of starting over.
      const Status st = ckpt_store->SaveToFile(cli.ckpt_path);
      if (st.ok()) {
        std::printf("checkpoint image written to %s (%llu entries)\n",
                    cli.ckpt_path.c_str(),
                    static_cast<unsigned long long>(ckpt_store->entry_count()));
      } else {
        std::fprintf(stderr, "failed to save checkpoint: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!cli.trace_json.empty()) {
      // Emit the failed cell so downstream tooling still sees the run.
      const engine::RunReport failed =
          engine::FailedReport(options.system, cli.graph, report.status());
      std::ofstream f(cli.trace_json);
      f << engine::ReportToJson(failed) << "\n";
    }
    return 1;
  }
  const engine::RunReport& r = report.value();
  std::printf("system %s on %s memory profiles:\n", r.system.c_str(),
              cli.cxl ? "CXL" : "DRAM+PM");
  std::printf("  read      %s\n", HumanSeconds(r.read_seconds).c_str());
  std::printf("  factorize %s\n", HumanSeconds(r.factorize_seconds).c_str());
  std::printf("  propagate %s\n", HumanSeconds(r.propagate_seconds).c_str());
  std::printf("  total     %s (simulated)\n", HumanSeconds(r.total_seconds).c_str());
  std::printf("  remote DRAM/PM traffic: %.1f%%\n", r.remote_fraction * 100.0);
  if (r.faults_enabled) {
    std::printf("  faults    %s\n",
                memsim::FaultCountersSummary(r.faults).c_str());
  }
  if (r.ckpt_seconds > 0.0 || r.recovery_seconds > 0.0) {
    std::printf("  ckpt      %s written, %s recovering\n",
                HumanSeconds(r.ckpt_seconds).c_str(),
                HumanSeconds(r.recovery_seconds).c_str());
  }
  if (r.link_auc.has_value()) std::printf("  link AUC  %.3f\n", *r.link_auc);

  engine::RunReport traced = r;
  if (dyn != nullptr) {
    for (size_t i = 0; i < mutations.size(); ++i) {
      dyn->Log(static_cast<int>(i), mutations[i]);
    }
    auto refreshed = dyn->Refresh(ctx);
    if (!refreshed.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   refreshed.status().ToString().c_str());
      return 1;
    }
    const engine::RefreshReport& rr = refreshed.value();
    std::printf("dynamic update (%s): %zu mutations, epoch %llu\n",
                cli.mutations.c_str(), mutations.size(),
                static_cast<unsigned long long>(rr.epoch));
    std::printf("  applied/rejected  %zu / %zu\n", rr.mutations_applied,
                rr.mutations_rejected);
    std::printf("  touched nodes     %zu\n", rr.touched_nodes);
    std::printf("  affected rows     %zu (%.2f%% of |V|)\n", rr.affected_rows,
                g.num_nodes() > 0
                    ? 100.0 * static_cast<double>(rr.affected_rows) / g.num_nodes()
                    : 0.0);
    std::printf("  csdb rows         %zu re-gathered, %zu reused\n",
                rr.csdb_touched_rows, rr.csdb_reused_rows);
    std::printf("  plan slots        %zu invalidated/rebound\n",
                rr.plan_slots_affected);
    std::printf("  sync/delta/refresh  %s / %s / %s (simulated)\n",
                HumanSeconds(rr.sync_seconds).c_str(),
                HumanSeconds(rr.delta_seconds).c_str(),
                HumanSeconds(rr.refresh_seconds).c_str());
    if (rr.total_seconds > 0.0 && r.total_seconds > 0.0) {
      std::printf("  update total      %s vs full retrain %s (%.1fx)\n",
                  HumanSeconds(rr.total_seconds).c_str(),
                  HumanSeconds(r.total_seconds).c_str(),
                  r.total_seconds / rr.total_seconds);
    }
    // Surface the refresh phases (dynamic.refresh, serve.* if any) in the
    // trace JSON alongside the training run's phases.
    for (exec::PhaseRecord& p : trace.TakeRecords()) {
      if (p.name.rfind("dynamic.", 0) == 0) traced.phases.push_back(std::move(p));
    }
  }

  if (!cli.trace_json.empty()) {
    std::ofstream f(cli.trace_json);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", cli.trace_json.c_str());
      return 1;
    }
    f << engine::ReportToJson(traced) << "\n";
    std::printf("trace written to %s (%zu phases)\n", cli.trace_json.c_str(),
                traced.phases.size());
  }

  const linalg::DenseMatrix& out_embedding =
      dyn != nullptr ? dyn->embedding() : r.embedding;
  if (!cli.out.empty() && out_embedding.rows() > 0) {
    const bool tsv = cli.out.size() > 4 &&
                     cli.out.compare(cli.out.size() - 4, 4, ".tsv") == 0;
    const Status st = tsv ? embed::SaveEmbeddingTsv(out_embedding, cli.out)
                          : embed::SaveEmbeddingBinary(out_embedding, cli.out);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to save embedding: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("embedding written to %s (%zu x %zu)\n", cli.out.c_str(),
                out_embedding.rows(), out_embedding.cols());
  }
  if (ckpt_store != nullptr && !cli.ckpt_path.empty()) {
    const Status st = ckpt_store->SaveToFile(cli.ckpt_path);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to save checkpoint: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint image written to %s (%llu entries)\n",
                cli.ckpt_path.c_str(),
                static_cast<unsigned long long>(ckpt_store->entry_count()));
  }
  return 0;
}
