// omega_embed — command-line embedding driver.
//
// Embeds a graph (edge-list file or a Table I dataset analogue) with any of
// the paper's systems on the simulated heterogeneous-memory machine, and
// optionally writes the embedding to disk.
//
// Usage:
//   omega_embed [options]
//     --graph <path|name>   edge-list file, or PK/LJ/OR/TW/TW-2010/FR
//     --system <name>       omega (default) | omega-dram | omega-pm |
//                           prone-dram | prone-hm | ginex | marius
//     --threads <n>         worker threads (default 36)
//     --dim <d>             embedding dimension (default 32)
//     --cheb <k>            Chebyshev order (default 8)
//     --no-wofp / --no-nadp / --no-asl  feature ablations
//     --async-staging       overlap ASL staging fetches with compute (omega)
//     --asl-partitions <n>  pin the ASL partition count (0 = solve Eq. 9)
//     --allocator <name>    eata (default) | wata | rr
//     --cxl                 use the CXL device profiles for the capacity tier
//     --out <path>          write embedding (.tsv or binary by extension)
//     --auc                 evaluate link-prediction AUC
//     --trace-json <path>   write the per-phase trace (RunReport JSON)
//     --fault-profile <p>   inject faults: none | pm-stall | pm-degraded |
//                           worn-ssd | flaky-net | chaos, optional ":<seed>"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/string_util.h"
#include "embed/embedding_io.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "omega/engine.h"
#include "omega/report.h"

#include <fstream>

namespace {

using namespace omega;

struct CliOptions {
  std::string graph = "PK";
  std::string system = "omega";
  std::string allocator = "eata";
  std::string out;
  std::string trace_json;
  std::string fault_profile;
  int threads = 36;
  size_t dim = 32;
  int cheb = 8;
  bool wofp = true;
  bool nadp = true;
  bool asl = true;
  bool async_staging = false;
  size_t asl_partitions = 0;
  bool cxl = false;
  bool auc = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--graph <path|name>] [--system <name>] "
               "[--threads n] [--dim d] [--cheb k] [--allocator eata|wata|rr] "
               "[--no-wofp] [--no-nadp] [--no-asl] [--async-staging] "
               "[--asl-partitions n] [--cxl] [--out path] "
               "[--auc] [--trace-json path] [--fault-profile name[:seed]]\n",
               argv0);
  return 2;
}

Result<engine::SystemKind> ParseSystem(const std::string& name) {
  static const std::map<std::string, engine::SystemKind> kSystems = {
      {"omega", engine::SystemKind::kOmega},
      {"omega-dram", engine::SystemKind::kOmegaDram},
      {"omega-pm", engine::SystemKind::kOmegaPm},
      {"prone-dram", engine::SystemKind::kProneDram},
      {"prone-hm", engine::SystemKind::kProneHm},
      {"ginex", engine::SystemKind::kGinex},
      {"marius", engine::SystemKind::kMariusGnn},
  };
  const auto it = kSystems.find(name);
  if (it == kSystems.end()) return Status::InvalidArgument("unknown system " + name);
  return it->second;
}

Result<sched::AllocatorKind> ParseAllocator(const std::string& name) {
  if (name == "eata") return sched::AllocatorKind::kEntropyAware;
  if (name == "wata") return sched::AllocatorKind::kWorkloadBalanced;
  if (name == "rr") return sched::AllocatorKind::kRoundRobin;
  return Status::InvalidArgument("unknown allocator " + name);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph" && next()) {
      cli.graph = argv[i];
    } else if (arg == "--system" && i + 1 < argc) {
      cli.system = argv[++i];
    } else if (arg == "--allocator" && i + 1 < argc) {
      cli.allocator = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (arg == "--dim" && i + 1 < argc) {
      cli.dim = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--cheb" && i + 1 < argc) {
      cli.cheb = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      cli.out = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      cli.trace_json = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      cli.trace_json = arg.substr(std::strlen("--trace-json="));
      if (cli.trace_json.empty()) return Usage(argv[0]);
    } else if (arg == "--fault-profile" && i + 1 < argc) {
      cli.fault_profile = argv[++i];
    } else if (arg.rfind("--fault-profile=", 0) == 0) {
      cli.fault_profile = arg.substr(std::strlen("--fault-profile="));
      if (cli.fault_profile.empty()) return Usage(argv[0]);
    } else if (arg == "--no-wofp") {
      cli.wofp = false;
    } else if (arg == "--no-nadp") {
      cli.nadp = false;
    } else if (arg == "--no-asl") {
      cli.asl = false;
    } else if (arg == "--async-staging") {
      cli.async_staging = true;
    } else if (arg == "--asl-partitions" && i + 1 < argc) {
      cli.asl_partitions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--cxl") {
      cli.cxl = true;
    } else if (arg == "--auc") {
      cli.auc = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (cli.threads <= 0 || cli.dim == 0 || cli.cheb <= 0) return Usage(argv[0]);

  // Load the graph: dataset name first, then as a file path.
  Result<graph::Graph> loaded = graph::LoadDatasetByName(cli.graph);
  if (!loaded.ok()) loaded = graph::LoadEdgeListText(cli.graph);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load graph '%s': %s\n", cli.graph.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = loaded.value();
  std::printf("graph %s: %u nodes, %llu arcs\n", cli.graph.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs()));

  auto system = ParseSystem(cli.system);
  auto allocator = ParseAllocator(cli.allocator);
  if (!system.ok() || !allocator.ok()) return Usage(argv[0]);

  auto ms = std::make_unique<memsim::MemorySystem>(
      memsim::TopologyConfig{},
      cli.cxl ? memsim::CxlProfiles() : memsim::DefaultProfiles());
  if (!cli.fault_profile.empty()) {
    auto plan = memsim::FaultPlanFromProfile(cli.fault_profile);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return Usage(argv[0]);
    }
    ms->SetFaultPlan(plan.value());
    if (ms->faults_enabled()) {
      std::printf("fault injection: profile %s (seed %llu)\n",
                  cli.fault_profile.c_str(),
                  static_cast<unsigned long long>(plan.value().seed));
    }
  }
  ThreadPool pool(static_cast<size_t>(cli.threads));

  engine::EngineOptions options;
  options.system = system.value();
  options.num_threads = cli.threads;
  options.prone.dim = cli.dim;
  options.prone.chebyshev_order = cli.cheb;
  options.features.allocator = allocator.value();
  options.features.use_wofp = cli.wofp;
  options.features.use_nadp = cli.nadp;
  options.features.use_asl = cli.asl;
  options.features.async_staging = cli.async_staging;
  options.features.asl_fixed_partitions = cli.asl_partitions;
  options.evaluate_quality = cli.auc;

  const exec::Context ctx(ms.get(), &pool, cli.threads);
  auto report = engine::RunEmbedding(g, cli.graph, options, ctx);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
    if (!cli.trace_json.empty()) {
      // Emit the failed cell so downstream tooling still sees the run.
      const engine::RunReport failed =
          engine::FailedReport(options.system, cli.graph, report.status());
      std::ofstream f(cli.trace_json);
      f << engine::ReportToJson(failed) << "\n";
    }
    return 1;
  }
  const engine::RunReport& r = report.value();
  std::printf("system %s on %s memory profiles:\n", r.system.c_str(),
              cli.cxl ? "CXL" : "DRAM+PM");
  std::printf("  read      %s\n", HumanSeconds(r.read_seconds).c_str());
  std::printf("  factorize %s\n", HumanSeconds(r.factorize_seconds).c_str());
  std::printf("  propagate %s\n", HumanSeconds(r.propagate_seconds).c_str());
  std::printf("  total     %s (simulated)\n", HumanSeconds(r.total_seconds).c_str());
  std::printf("  remote DRAM/PM traffic: %.1f%%\n", r.remote_fraction * 100.0);
  if (r.faults_enabled) {
    std::printf("  faults    %s\n",
                memsim::FaultCountersSummary(r.faults).c_str());
  }
  if (r.link_auc.has_value()) std::printf("  link AUC  %.3f\n", *r.link_auc);

  if (!cli.trace_json.empty()) {
    std::ofstream f(cli.trace_json);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", cli.trace_json.c_str());
      return 1;
    }
    f << engine::ReportToJson(r) << "\n";
    std::printf("trace written to %s (%zu phases)\n", cli.trace_json.c_str(),
                r.phases.size());
  }

  if (!cli.out.empty() && r.embedding.rows() > 0) {
    const bool tsv = cli.out.size() > 4 &&
                     cli.out.compare(cli.out.size() - 4, 4, ".tsv") == 0;
    const Status st = tsv ? embed::SaveEmbeddingTsv(r.embedding, cli.out)
                          : embed::SaveEmbeddingBinary(r.embedding, cli.out);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to save embedding: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("embedding written to %s (%zu x %zu)\n", cli.out.c_str(),
                r.embedding.rows(), r.embedding.cols());
  }
  return 0;
}
