#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# (optionally) repeat the build+tests under ASan+UBSan.
#
# Usage:
#   tools/check.sh            # release-with-asserts build + ctest
#   tools/check.sh --sanitize # additionally build/test with -DOMEGA_SANITIZE=ON
#   tools/check.sh --tsan     # additionally build/test with -DOMEGA_TSAN=ON
#   tools/check.sh --faults   # additionally run the fault-injection suites
#                             # (fault/stream/golden) under a Debug+ASan build
#   tools/check.sh --async    # additionally smoke the async-staging path
#                             # (buffer_test + bench_ablation_tiers --smoke --async)
#   tools/check.sh --serve    # additionally smoke the serving layer
#                             # (serve_test + bench_serving --smoke)
#   tools/check.sh --dynamic  # additionally run the dynamic-graph suites
#                             # (dynamic_test under Debug+ASan +
#                             # bench_update_throughput --smoke)
#   tools/check.sh --pim      # additionally run the PIM-offload suites
#                             # (pim_test + fault_test under Debug+ASan +
#                             # bench_pim_offload --smoke)
#   tools/check.sh --durable  # additionally run the durability suites
#                             # (durable_test + fault_test under Debug+ASan +
#                             # bench_recovery --smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
TSAN=0
FAULTS=0
ASYNC=0
SERVE=0
DYNAMIC=0
PIM=0
DURABLE=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN=1 ;;
    --faults) FAULTS=1 ;;
    --async) ASYNC=1 ;;
    --serve) SERVE=1 ;;
    --dynamic) DYNAMIC=1 ;;
    --pim) PIM=1 ;;
    --durable) DURABLE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

echo "== tier-1: build + ctest =="
run_suite build

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan build + ctest =="
  run_suite build-asan -DOMEGA_SANITIZE=ON
fi

if [[ "$FAULTS" == 1 ]]; then
  echo "== fault injection: Debug + ASan fault-path suites =="
  # The retry/degrade/surface paths are branch-heavy and mostly dormant in
  # healthy runs; exercise them with asserts and ASan on. The golden test is
  # excluded here (it pins release-build report bytes and runs the full fig12
  # sweep); it runs in the tier-1 suite above.
  cmake -B build-faults -S . -DCMAKE_BUILD_TYPE=Debug -DOMEGA_SANITIZE=ON
  cmake --build build-faults -j "$JOBS" --target fault_test stream_test memsim_test
  ctest --test-dir build-faults --output-on-failure -j "$JOBS" \
    -R '^(fault_test|stream_test|memsim_test)$'
fi

if [[ "$TSAN" == 1 ]]; then
  echo "== sanitizers: TSan build + threaded suites =="
  # The threaded kernels (pool, SpMM, plan reuse incl. lazy WoFP slots, and
  # the BufferManager's concurrent pin/unpin) are what TSan is after; the
  # full suite under TSan is prohibitively slow.
  cmake -B build-tsan -S . -DOMEGA_TSAN=ON
  cmake --build build-tsan -j "$JOBS" --target common_test spmm_test plan_test buffer_test serve_test dynamic_test pim_test durable_test
  ctest --test-dir build-tsan --output-on-failure \
    -R '^(common_test|spmm_test|plan_test|buffer_test|serve_test|dynamic_test|pim_test|durable_test)$'
fi

if [[ "$ASYNC" == 1 ]]; then
  echo "== async staging: buffer suite + overlap smoke =="
  # Reuses the tier-1 build from above: the buffer/staging suite plus a
  # PK-sized tier-ablation run with overlapped staging on.
  ctest --test-dir build --output-on-failure -R '^buffer_test$'
  ./build/bench/bench_ablation_tiers --smoke --async
fi

if [[ "$SERVE" == 1 ]]; then
  echo "== serving layer: serve suite + batched-vs-per-request smoke =="
  # Reuses the tier-1 build from above: the serving suite plus a small
  # closed-loop run of both scheduler modes.
  ctest --test-dir build --output-on-failure -R '^serve_test$'
  ./build/bench/bench_serving --smoke
fi

if [[ "$DYNAMIC" == 1 ]]; then
  echo "== dynamic graphs: Debug+ASan suites + update-throughput smoke =="
  # Op-log merge, CSDB delta overlays, and the incremental refresh are
  # pointer-heavy rebuild paths; run them with asserts and ASan on, then
  # smoke the end-to-end update pipeline from the tier-1 build.
  cmake -B build-dynamic -S . -DCMAKE_BUILD_TYPE=Debug -DOMEGA_SANITIZE=ON
  cmake --build build-dynamic -j "$JOBS" --target dynamic_test
  ctest --test-dir build-dynamic --output-on-failure -R '^dynamic_test$'
  ./build/bench/bench_update_throughput --smoke
fi

if [[ "$PIM" == 1 ]]; then
  echo "== PIM offload: Debug+ASan suites + placement smoke =="
  # The bank-link retry/degrade path and the subset allocators are the
  # branch-heavy parts; run them with asserts and ASan on, then smoke the
  # three placement policies end to end from the tier-1 build (the harness
  # itself fails on any cross-policy embedding mismatch).
  cmake -B build-pim -S . -DCMAKE_BUILD_TYPE=Debug -DOMEGA_SANITIZE=ON
  cmake --build build-pim -j "$JOBS" --target pim_test fault_test
  ctest --test-dir build-pim --output-on-failure -R '^(pim_test|fault_test)$'
  ./build/bench/bench_pim_offload --smoke
fi

if [[ "$DURABLE" == 1 ]]; then
  echo "== durability: Debug+ASan crash matrix + recovery smoke =="
  # The torn-write scan, snapshot-group fallback, and shared-log replay are
  # byte-walking state machines best run with asserts and ASan poisoning;
  # then smoke the cadence-vs-recovery sweep from the tier-1 build.
  cmake -B build-durable -S . -DCMAKE_BUILD_TYPE=Debug -DOMEGA_SANITIZE=ON
  cmake --build build-durable -j "$JOBS" --target durable_test fault_test
  ctest --test-dir build-durable --output-on-failure \
    -R '^(durable_test|fault_test)$'
  ./build/bench/bench_recovery --smoke
fi

echo "OK"
