// Tour of the heterogeneous-memory substrate API: device profiles, the
// bandwidth probe (the paper's Fig. 9 measurement), capacity accounting
// with tier-aware allocation, and ASL's streaming-partition sizing (Eq. 9).
//
// Useful as a template for building other PM-aware systems on the substrate.

#include <cstdio>

#include "common/string_util.h"
#include "memsim/bandwidth_probe.h"
#include "memsim/sim_buffer.h"
#include "stream/asl.h"

int main() {
  using namespace omega;
  using namespace omega::memsim;

  auto ms = MemorySystem::CreateDefault();
  std::printf("simulated machine: %d sockets x %d cores, %s DRAM + %s PM per socket\n",
              ms->topology().num_sockets(), ms->topology().config().cores_per_socket,
              HumanBytes(ms->CapacityBytes(Tier::kDram)).c_str(),
              HumanBytes(ms->CapacityBytes(Tier::kPm)).c_str());

  // --- 1. Probe the PM device the way the paper measured Fig. 9. -----------
  std::printf("\nPM bandwidth at 18 threads (GB/s):\n");
  std::printf("%-8s %-6s %-8s %8s\n", "op", "pat", "local", "GB/s");
  for (MemOp op : {MemOp::kRead, MemOp::kWrite}) {
    for (Pattern pat : {Pattern::kSequential, Pattern::kRandom}) {
      for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
        const auto s = ProbeBandwidth(ms.get(), Tier::kPm, op, pat, loc, 18,
                                      64ULL << 20);
        std::printf("%-8s %-6s %-8s %8.2f\n", MemOpName(op), PatternName(pat),
                    LocalityName(loc), s.gbps);
      }
    }
  }

  // --- 2. Place typed buffers on tiers; capacity is enforced. --------------
  auto dram_buf = SimBuffer<float>::Create(ms.get(), 1 << 20, Tier::kDram, 0);
  auto pm_buf = SimBuffer<float>::Create(ms.get(), 8 << 20, Tier::kPm, 0);
  std::printf("\nplaced %s on DRAM socket 0, %s on PM socket 0\n",
              HumanBytes(dram_buf.value().bytes()).c_str(),
              HumanBytes(pm_buf.value().bytes()).c_str());
  auto too_big =
      SimBuffer<float>::Create(ms.get(), 64 << 20, Tier::kDram, 0);  // 256 MB
  std::printf("oversized DRAM allocation: %s\n",
              too_big.ok() ? "unexpectedly succeeded"
                           : too_big.status().ToString().c_str());

  // --- 3. Charge classified traffic against a worker clock. ----------------
  SimClock clock;
  WorkerCtx ctx;
  ctx.clock = &clock;
  ctx.cpu_socket = 0;
  ctx.active_threads = 4;
  ms->ChargeAccess(&ctx, pm_buf.value().placement(), MemOp::kRead,
                   Pattern::kSequential, pm_buf.value().bytes());
  ms->ChargeAccess(&ctx, pm_buf.value().placement(), MemOp::kRead,
                   Pattern::kRandom, pm_buf.value().bytes(),
                   pm_buf.value().bytes() / 64);
  std::printf("\nstreaming then gathering %s from PM costs %s of simulated time\n",
              HumanBytes(pm_buf.value().bytes()).c_str(),
              HumanSeconds(clock.seconds()).c_str());

  // --- 4. Size an ASL streaming pass over an oversized dense matrix. -------
  stream::AslConfig cfg;
  cfg.dense_rows = 1 << 18;
  cfg.dense_cols = 16;
  cfg.sparse_bytes = 4ULL << 20;
  cfg.dram_budget = ms->CapacityBytes(Tier::kDram) * 2;
  auto parts = stream::OptimalPartitions(cfg);
  if (parts.ok()) {
    std::printf(
        "\nASL (Eq. 9): a %s dense matrix streams through the %s DRAM budget "
        "in %zu column partitions\n",
        HumanBytes(cfg.dense_rows * cfg.dense_cols * 4).c_str(),
        HumanBytes(cfg.dram_budget).c_str(), parts.value());
    stream::AslStreamer streamer(exec::Context(ms.get()), cfg,
                                 {Tier::kPm, Placement::kInterleaved},
                                 {Tier::kDram, Placement::kInterleaved});
    auto run = streamer.Run([](size_t, size_t, size_t) { return 0.004; });
    if (run.ok()) {
      std::printf("pipelined pass: %s vs %s unoverlapped (%.0f%% of load hidden)\n",
                  HumanSeconds(run.value().total_seconds).c_str(),
                  HumanSeconds(run.value().serial_seconds).c_str(),
                  run.value().OverlapEfficiency() * 100.0);
    }
  } else {
    std::printf("ASL sizing failed: %s\n", parts.status().ToString().c_str());
  }
  return 0;
}
