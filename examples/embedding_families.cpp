// The three graph-embedding families of the paper's Fig. 2 — random-walk
// (DeepWalk/node2vec), matrix factorization (ProNE, OMeGa's prototype), and
// GNN message passing — side by side on the same graph and the same
// simulated DRAM+PM machine.
//
// This reproduces the paper's motivating comparison in miniature: the
// random-walk family pays per-sample embedding-table updates, ProNE's MF
// pipeline concentrates everything into SpMM (where OMeGa's optimizations
// bite), and the GNN forward pass rides the same kernels.

#include <cstdio>

#include "embed/gnn.h"
#include "embed/quality.h"
#include "embed/random_walk.h"
#include "graph/datasets.h"
#include "numa/nadp.h"
#include "omega/engine.h"

int main(int argc, char** argv) {
  using namespace omega;
  const char* dataset = argc > 1 ? argv[1] : "PK";
  auto loaded = graph::LoadDatasetByName(dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset);
    return 1;
  }
  const graph::Graph& g = loaded.value();
  std::printf("dataset %s analogue: %u nodes, %llu arcs\n\n", dataset,
              g.num_nodes(), static_cast<unsigned long long>(g.num_arcs()));

  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(16);
  const size_t dim = 32;

  std::printf("%-28s %14s %10s\n", "family", "simulated time", "link AUC");
  std::printf("%.*s\n", 56, "--------------------------------------------------------");

  auto report_row = [&](const char* name, double seconds,
                        const linalg::DenseMatrix& vectors) {
    auto auc = embed::LinkPredictionAuc(g, vectors, 1500, 9);
    std::printf("%-28s %11.2f ms %10.3f\n", name, seconds * 1e3,
                auc.ok() ? auc.value() : 0.0);
  };

  // 1. Random walks + SGNS (DeepWalk), embedding tables on DRAM+PM.
  {
    embed::WalkOptions walks;
    walks.walks_per_node = 8;
    walks.walk_length = 24;
    embed::SgnsOptions sgns;
    sgns.dim = dim;
    auto result = embed::DeepWalkEmbed(
        g, walks, sgns, ms.get(),
        {memsim::Tier::kPm, memsim::Placement::kInterleaved}, 16);
    if (result.ok()) {
      report_row("random walk (DeepWalk)", result.value().simulated_seconds,
                 result.value().vectors);
    }
  }

  // 2. Matrix factorization (ProNE) under the full OMeGa stack.
  {
    auto options = engine::EngineOptions{};
    options.system = engine::SystemKind::kOmega;
    options.num_threads = 16;
    options.prone.dim = dim;
    auto report = engine::RunEmbedding(g, dataset, options, exec::Context(ms.get(), &pool));
    if (report.ok()) {
      report_row("matrix factorization (OMeGa)", report.value().embed_seconds,
                 report.value().embedding);
    }
  }

  // 3. GNN forward pass on the same charged kernels.
  {
    const graph::CsdbMatrix adjacency = graph::CsdbMatrix::FromGraph(g);
    auto executor = [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
                        linalg::DenseMatrix* out) -> Result<double> {
      *out = linalg::DenseMatrix(m.num_rows(), in.cols());
      numa::NadpOptions opts;
      opts.num_threads = 16;
      return numa::NadpSpmm(m, in, out, opts, exec::Context(ms.get(), &pool)).phase_seconds;
    };
    embed::GnnOptions gnn;
    gnn.output_dim = dim;
    auto result =
        embed::GnnForward(adjacency, linalg::DenseMatrix(), gnn, executor);
    if (result.ok()) {
      // GNN rows are in CSDB space; map back for the quality check.
      linalg::DenseMatrix original(result.value().embeddings.rows(), dim);
      const auto& perm = adjacency.perm();
      for (size_t c = 0; c < dim; ++c) {
        for (size_t r = 0; r < original.rows(); ++r) {
          original.At(perm[r], c) = result.value().embeddings.At(r, c);
        }
      }
      report_row("GNN forward (2-layer mean)",
                 result.value().spmm_seconds + result.value().dense_seconds,
                 original);
    }
  }

  std::printf(
      "\nThe MF family concentrates its cost in SpMM, which is exactly where\n"
      "OMeGa's EaTA/WoFP/NaDP apply — the paper's reason for building on "
      "ProNE.\n(Untrained GNN forward features carry less link signal than the "
      "trained\nfamilies; it is shown for kernel parity, not accuracy.)\n");
  return 0;
}
