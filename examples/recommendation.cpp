// Recommendation on a bipartite user/product graph — the Alibaba-style
// scenario from the paper's introduction ("more than two billion user-product
// edges, forming a giant bipartite graph for its recommendation tasks", §I),
// scaled down.
//
// Users and products are embedded into the same space from the co-purchase
// structure; recommendations for a user are the highest-scoring products the
// user has not interacted with yet.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "embed/quality.h"
#include "graph/graph.h"
#include "omega/engine.h"

namespace {

using namespace omega;

// Synthesizes a bipartite interaction graph with power-law product
// popularity and user clusters with shared taste, so recommendations have
// learnable structure.
graph::Graph MakeBipartite(graph::NodeId num_users, graph::NodeId num_products,
                           uint32_t clusters, uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < num_users; ++u) {
    const uint32_t cluster = u % clusters;
    const uint32_t interactions = 5 + static_cast<uint32_t>(rng.NextBounded(15));
    for (uint32_t i = 0; i < interactions; ++i) {
      graph::NodeId product;
      if (rng.NextDouble() < 0.75) {
        // In-cluster product, Zipf-ish popularity inside the cluster slice.
        const graph::NodeId slice = num_products / clusters;
        const double z = rng.NextDouble();
        product = cluster * slice +
                  static_cast<graph::NodeId>(slice * z * z);  // skew to head
      } else {
        product = static_cast<graph::NodeId>(rng.NextBounded(num_products));
      }
      edges.push_back(
          graph::Edge{u, num_users + std::min(product, num_products - 1), 1.0f});
    }
  }
  return graph::Graph::FromEdges(num_users + num_products, edges, true).value();
}

}  // namespace

int main() {
  const graph::NodeId kUsers = 1200;
  const graph::NodeId kProducts = 800;
  const uint32_t kClusters = 8;
  const graph::Graph g = MakeBipartite(kUsers, kProducts, kClusters, 4242);
  std::printf("bipartite graph: %u users, %u products, %llu arcs\n", kUsers,
              kProducts, static_cast<unsigned long long>(g.num_arcs()));

  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(16);
  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = 16;
  options.prone.dim = 32;
  auto report = engine::RunEmbedding(g, "alibaba-analogue", options, exec::Context(ms.get(), &pool));
  if (!report.ok()) {
    std::fprintf(stderr, "embedding failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const linalg::DenseMatrix& emb = report.value().embedding;
  std::printf("embedded in %.3f simulated ms\n\n",
              report.value().embed_seconds * 1e3);

  // Recommend for three sample users.
  uint32_t in_cluster_hits = 0;
  uint32_t total_recs = 0;
  for (graph::NodeId user : {graph::NodeId{0}, graph::NodeId{5}, graph::NodeId{42}}) {
    // Score all products the user has not touched.
    std::vector<std::pair<double, graph::NodeId>> scored;
    const graph::NodeId* nbrs = g.neighbors(user);
    for (graph::NodeId p = 0; p < kProducts; ++p) {
      const graph::NodeId node = kUsers + p;
      if (std::binary_search(nbrs, nbrs + g.degree(user), node)) continue;
      scored.emplace_back(embed::EmbeddingScore(emb, user, node), p);
    }
    std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("user %4u (cluster %u) -> recommended products:", user,
                user % kClusters);
    for (int i = 0; i < 5; ++i) {
      const graph::NodeId p = scored[i].second;
      const uint32_t product_cluster = p / (kProducts / kClusters);
      std::printf(" %u(c%u)", p, product_cluster);
      in_cluster_hits += product_cluster == user % kClusters;
      ++total_recs;
    }
    std::printf("\n");
  }
  std::printf(
      "\n%u of %u recommendations fall in the user's taste cluster "
      "(random would give ~%.1f).\n",
      in_cluster_hits, total_recs, static_cast<double>(total_recs) / kClusters);
  return 0;
}
