// Quickstart: embed a graph with OMeGa on the simulated DRAM+PM machine.
//
//   1. load (or synthesize) a graph,
//   2. run the full OMeGa engine (CSDB + EaTA + WoFP + NaDP + ASL),
//   3. inspect the timings, the traffic profile, and the embedding.
//
// Usage: quickstart [edge_list.txt]
// Without an argument a scaled soc-Pokec analogue is generated.

#include <cstdio>

#include "embed/quality.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "omega/engine.h"

int main(int argc, char** argv) {
  using namespace omega;

  // 1. Obtain a graph.
  Result<graph::Graph> loaded =
      argc > 1 ? graph::LoadEdgeListText(argv[1])
               : graph::LoadDatasetByName("PK");
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = loaded.value();
  std::printf("graph: %u nodes, %llu arcs, max degree %u\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs()), g.max_degree());

  // 2. Build the simulated heterogeneous-memory machine and run OMeGa.
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(16);

  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = 16;
  options.prone.dim = 32;
  options.evaluate_quality = true;

  auto report = engine::RunEmbedding(g, "quickstart", options, exec::Context(ms.get(), &pool));
  if (!report.ok()) {
    std::fprintf(stderr, "embedding failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const engine::RunReport& r = report.value();

  // 3. Inspect the results.
  std::printf("\nsimulated timings on the DRAM+PM machine:\n");
  std::printf("  graph reading     : %9.3f ms\n", r.read_seconds * 1e3);
  std::printf("  factorization     : %9.3f ms  (randomized tSVD)\n",
              r.factorize_seconds * 1e3);
  std::printf("  spectral propagate: %9.3f ms  (Chebyshev SpMMs)\n",
              r.propagate_seconds * 1e3);
  std::printf("  total             : %9.3f ms\n", r.total_seconds * 1e3);
  std::printf("remote DRAM/PM traffic fraction: %.1f%%\n",
              r.remote_fraction * 100.0);
  if (r.link_auc.has_value()) {
    std::printf("link-prediction AUC: %.3f\n", *r.link_auc);
  }

  std::printf("\nfirst 3 embedding rows (of %zu x %zu):\n", r.embedding.rows(),
              r.embedding.cols());
  for (size_t row = 0; row < 3 && row < r.embedding.rows(); ++row) {
    std::printf("  node %zu: [", row);
    for (size_t c = 0; c < 6 && c < r.embedding.cols(); ++c) {
      std::printf("%s%+.3f", c ? ", " : "", r.embedding.At(row, c));
    }
    std::printf(", ...]\n");
  }

  // Nearest neighbors of node 0 in embedding space.
  const auto similar = embed::TopKSimilar(r.embedding, 0, 5);
  std::printf("\nnodes most similar to node 0:");
  for (graph::NodeId v : similar) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}
