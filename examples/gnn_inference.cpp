// GNN inference on heterogeneous memory — the paper's generality claim (§VI:
// EaTA and WoFP "optimize SpMM parallel efficiency for graph embedding,
// applicable to any storage system").
//
// A 2-layer GraphSAGE-style mean-aggregation network runs its per-layer
// aggregations through three kernel configurations on the simulated DRAM+PM
// machine, showing the same optimization stack serving a different model
// family than ProNE.

#include <cstdio>

#include "embed/gnn.h"
#include "graph/datasets.h"
#include "graph/traversal.h"
#include "numa/nadp.h"

int main(int argc, char** argv) {
  using namespace omega;
  const char* dataset = argc > 1 ? argv[1] : "OR";
  auto loaded = graph::LoadDatasetByName(dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset);
    return 1;
  }
  const graph::Graph& g = loaded.value();
  const graph::CsdbMatrix adjacency = graph::CsdbMatrix::FromGraph(g);
  std::printf("dataset %s analogue: %u nodes, %llu arcs, %u components\n", dataset,
              g.num_nodes(), static_cast<unsigned long long>(g.num_arcs()),
              graph::CountComponents(g));

  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(16);

  embed::GnnOptions gnn;
  gnn.num_layers = 2;
  gnn.hidden_dim = 64;
  gnn.output_dim = 32;

  struct Config {
    const char* name;
    bool wofp;
    bool nadp;
    sched::AllocatorKind allocator;
  };
  const Config configs[] = {
      {"baseline (WaTA, Interleaved)", false, false,
       sched::AllocatorKind::kWorkloadBalanced},
      {"+ EaTA + WoFP", true, false, sched::AllocatorKind::kEntropyAware},
      {"full OMeGa stack", true, true, sched::AllocatorKind::kEntropyAware},
  };

  std::printf("\n2-layer mean-aggregation GNN forward pass (d_hidden=%zu):\n",
              gnn.hidden_dim);
  double baseline = 0.0;
  for (const Config& config : configs) {
    auto executor = [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
                        linalg::DenseMatrix* out) -> Result<double> {
      *out = linalg::DenseMatrix(m.num_rows(), in.cols());
      numa::NadpOptions opts;
      opts.num_threads = 16;
      opts.allocator = config.allocator;
      opts.use_wofp = config.wofp;
      opts.enabled = config.nadp;
      return numa::NadpSpmm(m, in, out, opts, exec::Context(ms.get(), &pool)).phase_seconds;
    };
    auto result =
        embed::GnnForward(adjacency, linalg::DenseMatrix(), gnn, executor);
    if (!result.ok()) {
      std::fprintf(stderr, "forward pass failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const double total =
        result.value().spmm_seconds + result.value().dense_seconds;
    if (baseline == 0.0) baseline = total;
    std::printf("  %-30s aggregation %8.3f ms + weights %6.3f ms  (%.2fx)\n",
                config.name, result.value().spmm_seconds * 1e3,
                result.value().dense_seconds * 1e3, baseline / total);
  }

  // A quick structural sanity check: GNN embeddings should roughly track
  // PageRank importance for hub nodes (both aggregate neighborhoods).
  auto pr = graph::PageRank(g).value();
  const auto top = graph::TopPageRankNodes(pr, 5);
  std::printf("\ntop PageRank hubs:");
  for (graph::NodeId v : top) std::printf(" %u (%.4f)", v, pr.scores[v]);
  std::printf("\n");
  return 0;
}
