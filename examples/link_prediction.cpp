// Link prediction — the Twitter-style task from the paper's introduction
// ("on top of which it is required to perform tasks such as link prediction
// and classification", §I).
//
// Protocol: hold out 10% of the edges, embed the remaining graph with OMeGa,
// then score held-out edges against random non-edges by embedding dot
// product. The AUC quantifies how much link structure the embedding carries;
// a degree-product heuristic serves as the classical baseline.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "embed/quality.h"
#include "graph/datasets.h"
#include "omega/engine.h"

namespace {

using namespace omega;

struct Split {
  graph::Graph train;
  std::vector<graph::Edge> held_out;
};

// Removes ~fraction of edges (never disconnecting degree-1 endpoints).
Split HoldOutEdges(const graph::Graph& g, double fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> train_edges;
  std::vector<graph::Edge> held_out;
  std::vector<uint32_t> remaining_degree(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    remaining_degree[v] = g.degree(v);
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const graph::NodeId* nbrs = g.neighbors(u);
    const float* wts = g.weights(u);
    for (uint32_t i = 0; i < g.degree(u); ++i) {
      const graph::NodeId v = nbrs[i];
      if (v <= u) continue;  // visit each undirected edge once
      if (rng.NextDouble() < fraction && remaining_degree[u] > 1 &&
          remaining_degree[v] > 1) {
        held_out.push_back(graph::Edge{u, v, wts[i]});
        --remaining_degree[u];
        --remaining_degree[v];
      } else {
        train_edges.push_back(graph::Edge{u, v, wts[i]});
      }
    }
  }
  Split split{graph::Graph::FromEdges(g.num_nodes(), train_edges, true).value(),
              std::move(held_out)};
  return split;
}

double PairAuc(const std::vector<double>& pos, const std::vector<double>& neg) {
  uint64_t wins = 0;
  uint64_t ties = 0;
  for (size_t i = 0; i < pos.size(); ++i) {
    const double n = neg[i % neg.size()];
    wins += pos[i] > n;
    ties += pos[i] == n;
  }
  return (wins + 0.5 * ties) / static_cast<double>(pos.size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* dataset = argc > 1 ? argv[1] : "LJ";
  auto loaded = graph::LoadDatasetByName(dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "unknown dataset %s: %s\n", dataset,
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = loaded.value();
  std::printf("dataset %s analogue: %u nodes, %llu arcs\n", dataset, g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs()));

  const Split split = HoldOutEdges(g, 0.1, 99);
  std::printf("held out %zu edges; training graph has %llu arcs\n",
              split.held_out.size(),
              static_cast<unsigned long long>(split.train.num_arcs()));

  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(16);
  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = 16;
  options.prone.dim = 32;
  // Keep raw magnitudes: for link prediction the embedding norm carries the
  // node-popularity signal alongside the structural directions.
  options.prone.l2_normalize_rows = false;
  auto report =
      engine::RunEmbedding(split.train, dataset, options, exec::Context(ms.get(), &pool));
  if (!report.ok()) {
    std::fprintf(stderr, "embedding failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded in %.3f simulated ms\n",
              report.value().embed_seconds * 1e3);

  // Score held-out edges vs random non-edges.
  const linalg::DenseMatrix& emb = report.value().embedding;
  Rng rng(7);
  std::vector<double> pos_emb;
  std::vector<double> pos_deg;
  for (const graph::Edge& e : split.held_out) {
    pos_emb.push_back(embed::EmbeddingScore(emb, e.src, e.dst));
    pos_deg.push_back(static_cast<double>(g.degree(e.src)) * g.degree(e.dst));
  }
  // Degree-matched negatives: endpoints drawn proportionally to degree (the
  // arc-endpoint distribution), so the comparison measures structure rather
  // than popularity bias.
  const auto& arc_endpoints = g.neighbor_array();
  std::vector<double> neg_emb;
  std::vector<double> neg_deg;
  while (neg_emb.size() < pos_emb.size()) {
    const graph::NodeId u = arc_endpoints[rng.NextBounded(arc_endpoints.size())];
    const graph::NodeId v = arc_endpoints[rng.NextBounded(arc_endpoints.size())];
    if (u == v) continue;
    const graph::NodeId* begin = g.neighbors(u);
    if (std::binary_search(begin, begin + g.degree(u), v)) continue;
    neg_emb.push_back(embed::EmbeddingScore(emb, u, v));
    neg_deg.push_back(static_cast<double>(g.degree(u)) * g.degree(v));
  }

  std::printf("\nheld-out link prediction AUC:\n");
  std::printf("  OMeGa embedding dot product : %.3f\n", PairAuc(pos_emb, neg_emb));
  std::printf("  degree-product heuristic    : %.3f\n", PairAuc(pos_deg, neg_deg));
  std::printf("  random guess                : 0.500\n");
  return 0;
}
