// Golden byte-identity test: runs the small fig12 configuration through the
// same report builder as bench_fig12_overall and pins the output's MD5. Any
// change to the simulated charge order, the cost model, or the report
// formatting shifts these bytes and fails here instead of silently drifting
// the paper's headline figure. The hash below is the seed repo's output; it
// must also match `md5sum <(./build/bench/bench_fig12_overall)`.
//
// Faults are NOT enabled here — this is the disabled-injector contract: with
// no FaultPlan, every fault-aware access path must reduce exactly to the
// legacy charge sequence.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "common/md5.h"
#include "common/thread_pool.h"
#include "durable/checkpoint.h"
#include "graph/rmat.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"

namespace omega {
namespace {

TEST(Md5Test, KnownVectors) {
  EXPECT_EQ(Md5Hex(std::string("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex(std::string("abc")), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(GoldenTest, Fig12OverallReportBytesPinned) {
  // Phase tracing appends per-phase tables to the report; the golden bytes
  // are the untraced output.
  unsetenv("OMEGA_PHASE_TRACE");
  bench::Env env = bench::MakeEnv(36);
  const std::string report = bench::Fig12OverallReport(env);
  EXPECT_EQ(Md5Hex(report), "e154cb3a41daab5edc72f0445958aaa8")
      << "fig12 report bytes drifted; if the change is intentional, rerun "
         "./build/bench/bench_fig12_overall and update the hash here and in "
         "any seed baselines.";
}

TEST(GoldenTest, CheckpointingPreservesEmbeddingBytes) {
  // Checkpointing charges simulated time but must not perturb the computed
  // embedding: with a store attached (cadence 1, no crash) the output bytes
  // are identical to the plain run's.
  graph::RmatParams rmat;
  rmat.scale = 10;
  rmat.num_edges = 1 << 13;
  rmat.seed = 5;
  const graph::Graph g = graph::GenerateRmat(rmat).value();

  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = 4;
  options.prone.dim = 16;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 4;

  auto run = [&](bool durable_on) {
    auto ms = memsim::MemorySystem::CreateDefault();
    engine::EngineOptions opts = options;
    durable::CheckpointStore store(ms.get(), durable::CheckpointOptions{});
    if (durable_on) {
      opts.durability.store = &store;
      opts.durability.checkpoint_every = 1;
    }
    ThreadPool pool(4);
    auto report = engine::RunEmbedding(g, "rmat", opts,
                                       exec::Context(ms.get(), &pool, 4));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? std::move(report).value() : engine::RunReport{};
  };

  const engine::RunReport plain = run(false);
  const engine::RunReport checkpointed = run(true);
  ASSERT_GT(plain.embedding.bytes(), 0u);
  ASSERT_EQ(plain.embedding.bytes(), checkpointed.embedding.bytes());
  EXPECT_EQ(std::memcmp(plain.embedding.data(), checkpointed.embedding.data(),
                        plain.embedding.bytes()),
            0);
  // The durable run pays for its checkpoints; the per-stage simulated math
  // is otherwise byte-identical.
  EXPECT_GT(checkpointed.ckpt_seconds, 0.0);
  EXPECT_EQ(std::memcmp(&plain.read_seconds, &checkpointed.read_seconds,
                        sizeof(double)),
            0);
  EXPECT_EQ(plain.ckpt_seconds, 0.0);
}

}  // namespace
}  // namespace omega
