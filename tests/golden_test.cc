// Golden byte-identity test: runs the small fig12 configuration through the
// same report builder as bench_fig12_overall and pins the output's MD5. Any
// change to the simulated charge order, the cost model, or the report
// formatting shifts these bytes and fails here instead of silently drifting
// the paper's headline figure. The hash below is the seed repo's output; it
// must also match `md5sum <(./build/bench/bench_fig12_overall)`.
//
// Faults are NOT enabled here — this is the disabled-injector contract: with
// no FaultPlan, every fault-aware access path must reduce exactly to the
// legacy charge sequence.

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_util.h"
#include "common/md5.h"

namespace omega {
namespace {

TEST(Md5Test, KnownVectors) {
  EXPECT_EQ(Md5Hex(std::string("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex(std::string("abc")), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(GoldenTest, Fig12OverallReportBytesPinned) {
  // Phase tracing appends per-phase tables to the report; the golden bytes
  // are the untraced output.
  unsetenv("OMEGA_PHASE_TRACE");
  bench::Env env = bench::MakeEnv(36);
  const std::string report = bench::Fig12OverallReport(env);
  EXPECT_EQ(Md5Hex(report), "e154cb3a41daab5edc72f0445958aaa8")
      << "fig12 report bytes drifted; if the change is intentional, rerun "
         "./build/bench/bench_fig12_overall and update the hash here and in "
         "any seed baselines.";
}

}  // namespace
}  // namespace omega
