// Unit tests for the column-panel SpMM kernels (sparse/spmm_kernels.h):
// panel-tail widths, zero-degree rows, single-row ranges, SIMD vs scalar
// panel vs per-column oracle agreement, the fixed-reduction-order bit
// guarantees, the hoisted charge metadata, and engine-level embedding
// determinism across host thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "omega/engine.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"
#include "sparse/spmm_kernels.h"
#include "sparse/spmm_plan.h"

namespace omega::sparse {
namespace {

using graph::CsdbMatrix;
using graph::CsrMatrix;
using graph::Graph;
using linalg::DenseMatrix;

// Panel-tail coverage: below / at / above one panel, plus the bench width.
const size_t kWidths[] = {1, 7, 8, 9, 128};

class SpmmKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 9;
    params.num_edges = 4000;
    graph_ = std::make_unique<Graph>(graph::GenerateRmat(params).value());
    a_ = CsdbMatrix::FromGraph(*graph_);
    csr_ = ToCsr(a_).value();
  }

  DenseMatrix Dense(size_t d) const {
    return linalg::GaussianMatrix(a_.num_cols(), d, 101 + static_cast<int>(d));
  }

  DenseMatrix Oracle(const DenseMatrix& b) const {
    sched::Workload w;
    w.ranges.push_back(sched::RowRange{0, a_.num_rows()});
    DenseMatrix c(a_.num_rows(), b.cols());
    ComputeWorkloadCsdbPerColumn(a_, b, &c, w);
    return c;
  }

  std::unique_ptr<Graph> graph_;
  CsdbMatrix a_;
  CsrMatrix csr_;
};

TEST_F(SpmmKernelsTest, CsdbPanelMatchesOracleAtEveryTailWidth) {
  for (size_t d : kWidths) {
    const DenseMatrix b = Dense(d);
    const DenseMatrix expected = Oracle(b);
    DenseMatrix c(a_.num_rows(), d);
    kernels::CsdbPanelSpmm(a_, b, &c, 0, a_.num_rows(), 0, d);
    // The panel path may fuse its multiply-adds (one rounding per nonzero
    // where the oracle takes two), so agreement is tight but not bitwise.
    EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-4) << "d=" << d;
  }
}

TEST_F(SpmmKernelsTest, CsrPanelMatchesOracleAtEveryTailWidth) {
  for (size_t d : kWidths) {
    const DenseMatrix b = Dense(d);
    DenseMatrix expected(a_.num_rows(), d);
    ComputeWorkloadCsrPerColumn(csr_, b, &expected, 0, csr_.num_rows());
    DenseMatrix c(a_.num_rows(), d);
    kernels::CsrPanelSpmm(csr_, b, &c, 0, csr_.num_rows(), 0, d);
    EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-4) << "d=" << d;
  }
}

// The TU-wide rounding policy (explicit FMA everywhere or nowhere) makes the
// vector and scalar panel paths land on identical bits, which is what the
// SIMD-vs-scalar CI matrix relies on within one build.
TEST_F(SpmmKernelsTest, SimdAndScalarPanelsAreBitIdentical) {
  for (size_t d : kWidths) {
    const DenseMatrix b = Dense(d);
    DenseMatrix best(a_.num_rows(), d);
    DenseMatrix scalar(a_.num_rows(), d);
    kernels::CsdbPanelSpmm(a_, b, &best, 0, a_.num_rows(), 0, d);
    kernels::CsdbPanelSpmmScalar(a_, b, &scalar, 0, a_.num_rows(), 0, d);
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(best, scalar), 0.0) << "csdb d=" << d;

    DenseMatrix csr_best(a_.num_rows(), d);
    DenseMatrix csr_scalar(a_.num_rows(), d);
    kernels::CsrPanelSpmm(csr_, b, &csr_best, 0, csr_.num_rows(), 0, d);
    kernels::CsrPanelSpmmScalar(csr_, b, &csr_scalar, 0, csr_.num_rows(), 0, d);
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(csr_best, csr_scalar), 0.0)
        << "csr d=" << d;
  }
}

// NaDP/ASL slice the column range at thread-dependent boundaries; an element
// must not care which panel slicing computed it.
TEST_F(SpmmKernelsTest, ColumnRangeSlicingIsBitIdentical) {
  const size_t d = 19;
  const DenseMatrix b = Dense(d);
  DenseMatrix whole(a_.num_rows(), d);
  kernels::CsdbPanelSpmm(a_, b, &whole, 0, a_.num_rows(), 0, d);

  DenseMatrix sliced(a_.num_rows(), d);
  const size_t cuts[] = {0, 3, 11, 12, d};
  for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
    kernels::CsdbPanelSpmm(a_, b, &sliced, 0, a_.num_rows(), cuts[i],
                           cuts[i + 1]);
  }
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(whole, sliced), 0.0);
}

TEST_F(SpmmKernelsTest, SingleRowRangesReproduceTheFullResult) {
  const size_t d = 9;
  const DenseMatrix b = Dense(d);
  DenseMatrix expected(a_.num_rows(), d);
  kernels::CsdbPanelSpmm(a_, b, &expected, 0, a_.num_rows(), 0, d);
  // Per-row invocations must land on the same bits as the full range: each
  // element's reduction order is a property of its row, not of the slicing.
  DenseMatrix c(a_.num_rows(), d);
  for (uint32_t r = 0; r < a_.num_rows(); ++r) {
    kernels::CsdbPanelSpmm(a_, b, &c, r, r + 1, 0, d);
  }
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(c, expected), 0.0);
}

TEST_F(SpmmKernelsTest, ZeroDegreeRowsAreWrittenAsZero) {
  // Trailing degree-0 block: 3 connected rows + 2 isolated ones.
  const std::vector<uint32_t> degrees = {3, 2, 2, 0, 0};
  const std::vector<graph::NodeId> cols = {0, 1, 4, 2, 3, 0, 2};
  const std::vector<float> vals = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f, 7.f};
  const CsdbMatrix m =
      CsdbMatrix::FromParts(5, 5, degrees, cols, vals).value();
  const DenseMatrix b = linalg::GaussianMatrix(5, 9, 3);
  for (size_t col_end : {size_t{8}, size_t{9}}) {  // full panel and tail
    DenseMatrix c(5, 9);
    c.Fill(123.0f);  // the kernel must overwrite, not accumulate
    kernels::CsdbPanelSpmm(m, b, &c, 0, 5, 0, col_end);
    sched::Workload w;
    w.ranges.push_back(sched::RowRange{0, 5});
    DenseMatrix expected(5, 9);
    expected.Fill(123.0f);
    ComputeWorkloadCsdbPerColumn(m, b, &expected, w, 0, col_end);
    EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-6);
    for (uint32_t r = 3; r < 5; ++r) {
      for (size_t t = 0; t < col_end; ++t) {
        EXPECT_EQ(c.At(r, t), 0.0f) << "row " << r << " col " << t;
      }
    }
  }
}

TEST_F(SpmmKernelsTest, EmptyAndClampedRangesAreSafe) {
  const size_t d = 8;
  const DenseMatrix b = Dense(d);
  DenseMatrix c(a_.num_rows(), d);
  // Empty row range, empty column range, row range past the end.
  kernels::CsdbPanelSpmm(a_, b, &c, 5, 5, 0, d);
  kernels::CsdbPanelSpmm(a_, b, &c, 0, a_.num_rows(), 3, 3);
  kernels::CsdbPanelSpmm(a_, b, &c, a_.num_rows(), a_.num_rows() + 10, 0, d);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(c, DenseMatrix(a_.num_rows(), d)), 0.0);

  // ComputeWorkloadCsr's unified clamp: col_begin beyond b.cols() is a no-op.
  DenseMatrix c2(a_.num_rows(), d);
  ComputeWorkloadCsr(csr_, b, &c2, 0, csr_.num_rows(), d + 5, SIZE_MAX);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(c2, DenseMatrix(a_.num_rows(), d)), 0.0);
}

// The hoisted charge metadata must reproduce the walking overload's charges
// to the last bit (same clock advances, same breakdown).
TEST_F(SpmmKernelsTest, ChargeMetaIsByteIdenticalToTheWalk) {
  auto ms = memsim::MemorySystem::CreateDefault();
  sched::AllocatorOptions opts;
  opts.num_threads = 4;
  const auto workloads =
      sched::Allocate(a_, sched::AllocatorKind::kEntropyAware, opts);
  for (const sched::Workload& w : workloads) {
    const CsdbChargeMeta meta = ScanChargeMetaCsdb(a_, w);
    memsim::SimClock walk_clock;
    memsim::SimClock meta_clock;
    memsim::WorkerCtx walk_ctx{0, 0, 4, &walk_clock};
    memsim::WorkerCtx meta_ctx{0, 0, 4, &meta_clock};
    const SpmmCostBreakdown walked = ChargeWorkloadCsdb(
        a_, 8, w, SpmmPlacements{}, ms.get(), &walk_ctx, nullptr);
    const SpmmCostBreakdown from_meta =
        ChargeWorkloadCsdb(a_, 8, meta, SpmmPlacements{}, ms.get(), &meta_ctx);
    EXPECT_EQ(walk_clock.seconds(), meta_clock.seconds());
    for (int i = 0; i < kNumSpmmOps; ++i) {
      EXPECT_EQ(walked.seconds[i], from_meta.seconds[i])
          << SpmmOpName(static_cast<SpmmOp>(i));
    }
  }
}

// End-to-end: the engine's embedding (panel kernels under NaDP/WoFP column
// slicing) must not change a single bit with the host thread count.
TEST(SpmmKernelsEngineTest, EmbeddingBitIdenticalAcrossThreadCounts) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 8000;
  params.seed = 11;
  const Graph g = graph::GenerateRmat(params).value();

  linalg::DenseMatrix reference;
  for (int threads : {1, 2, 8}) {
    auto ms = memsim::MemorySystem::CreateDefault();
    ThreadPool pool(threads);
    engine::EngineOptions opts;
    opts.system = engine::SystemKind::kOmega;
    opts.num_threads = threads;
    opts.prone.dim = 8;
    opts.prone.oversample = 4;
    opts.prone.chebyshev_order = 4;
    auto report =
        engine::RunEmbedding(g, "det", opts, exec::Context(ms.get(), &pool));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (threads == 1) {
      reference = report.value().embedding;
      continue;
    }
    EXPECT_EQ(
        DenseMatrix::MaxAbsDiff(reference, report.value().embedding), 0.0)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace omega::sparse
