// Edge-case and failure-injection tests: pathological graph shapes, empty
// workloads, capacity pressure, concurrent accounting, and invalid inputs
// across the stack.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "omega/engine.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"
#include "stream/asl.h"

namespace omega {
namespace {

using graph::CsdbMatrix;
using graph::Edge;
using graph::Graph;

Graph StarGraph(graph::NodeId leaves) {
  std::vector<Edge> edges;
  for (graph::NodeId i = 1; i <= leaves; ++i) edges.push_back({0, i, 1.0f});
  return Graph::FromEdges(leaves + 1, edges, true).value();
}

Graph PathGraph(graph::NodeId n) {
  std::vector<Edge> edges;
  for (graph::NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1u, 1.0f});
  return Graph::FromEdges(n, edges, true).value();
}

Graph CompleteGraph(graph::NodeId n) {
  std::vector<Edge> edges;
  for (graph::NodeId i = 0; i < n; ++i) {
    for (graph::NodeId j = i + 1; j < n; ++j) edges.push_back({i, j, 1.0f});
  }
  return Graph::FromEdges(n, edges, true).value();
}

// --- Pathological graph shapes through CSDB + SpMM ---------------------------

class ShapeTest : public ::testing::TestWithParam<const char*> {
 protected:
  Graph MakeGraph() const {
    const std::string name = GetParam();
    if (name == "star") return StarGraph(63);
    if (name == "path") return PathGraph(64);
    if (name == "complete") return CompleteGraph(24);
    // Two disconnected cliques + isolated nodes.
    std::vector<Edge> edges;
    for (graph::NodeId i = 0; i < 8; ++i) {
      for (graph::NodeId j = i + 1; j < 8; ++j) {
        edges.push_back({i, j, 1.0f});
        edges.push_back({i + 8u, j + 8u, 1.0f});
      }
    }
    return Graph::FromEdges(20, edges, true).value();  // nodes 16..19 isolated
  }
};

TEST_P(ShapeTest, CsdbInvariantsHold) {
  const Graph g = MakeGraph();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  EXPECT_EQ(m.nnz(), g.num_arcs());
  EXPECT_EQ(m.num_blocks(), g.num_distinct_degrees());
  uint64_t ptr = 0;
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    ASSERT_EQ(m.RowPtr(r), ptr);
    ptr += m.RowDegree(r);
  }
}

TEST_P(ShapeTest, SpmmCorrectUnderEveryAllocator) {
  const Graph g = MakeGraph();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(m.num_cols(), 4, 2);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(m, b, &expected).ok());
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(4);
  for (auto kind :
       {sched::AllocatorKind::kRoundRobin, sched::AllocatorKind::kWorkloadBalanced,
        sched::AllocatorKind::kEntropyAware}) {
    sched::AllocatorOptions opts;
    opts.num_threads = 4;
    linalg::DenseMatrix c(m.num_rows(), 4);
    sparse::ParallelSpmm(m, b, &c, sched::Allocate(m, kind, opts),
                         sparse::SpmmPlacements{}, exec::Context(ms.get(), &pool));
    ASSERT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4)
        << GetParam() << "/" << sched::AllocatorName(kind);
  }
}

TEST_P(ShapeTest, EmbeddingPipelineSurvives) {
  const Graph g = MakeGraph();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  embed::ProneOptions opts;
  opts.dim = 4;
  opts.oversample = 2;
  opts.chebyshev_order = 4;
  auto result = embed::ProneEmbed(
      m, opts,
      [](const CsdbMatrix& a, const linalg::DenseMatrix& in,
         linalg::DenseMatrix* out) -> Result<double> {
        OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(a, in, out));
        return 0.0;
      });
  ASSERT_TRUE(result.ok()) << GetParam() << ": " << result.status().ToString();
  EXPECT_EQ(result.value().vectors.rows(), g.num_nodes());
  // No NaNs, even for isolated nodes.
  for (size_t r = 0; r < result.value().vectors.rows(); ++r) {
    for (size_t c = 0; c < result.value().vectors.cols(); ++c) {
      EXPECT_FALSE(std::isnan(result.value().vectors.At(r, c)))
          << GetParam() << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeTest,
                         ::testing::Values("star", "path", "complete",
                                           "cliques_with_isolated"),
                         [](const auto& info) { return std::string(info.param); });

// --- Allocators on degenerate degree distributions ----------------------------

TEST(DegenerateAllocatorTest, SingleHubDoesNotStarveThreads) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(StarGraph(500));
  sched::AllocatorOptions opts;
  opts.num_threads = 8;
  for (auto kind : {sched::AllocatorKind::kWorkloadBalanced,
                    sched::AllocatorKind::kEntropyAware}) {
    const auto workloads = sched::Allocate(m, kind, opts);
    uint64_t total = 0;
    for (const auto& w : workloads) total += w.nnz;
    EXPECT_EQ(total, m.nnz()) << sched::AllocatorName(kind);
    // The hub row dominates; thread 0 holds it, others share the leaves.
    EXPECT_GE(workloads[0].nnz, 500u) << sched::AllocatorName(kind);
  }
}

TEST(DegenerateAllocatorTest, RegularGraphSplitsEvenly) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(PathGraph(1025));
  sched::AllocatorOptions opts;
  opts.num_threads = 8;
  const auto eata = sched::AllocateEata(m, opts);
  const double fair = static_cast<double>(m.nnz()) / 8.0;
  for (const auto& w : eata) {
    if (w.empty()) continue;
    EXPECT_NEAR(static_cast<double>(w.nnz), fair, fair * 0.35);
  }
}

// --- Empty / tiny workloads ------------------------------------------------------

TEST(EmptyWorkloadTest, SpmmOnEmptyWorkloadIsFree) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(PathGraph(16));
  const linalg::DenseMatrix b = linalg::GaussianMatrix(16, 2, 1);
  linalg::DenseMatrix c(16, 2);
  auto ms = memsim::MemorySystem::CreateDefault();
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  sched::Workload empty;
  const auto bd = sparse::ExecuteWorkloadCsdb(m, b, &c, empty,
                                              sparse::SpmmPlacements{}, ms.get(),
                                              &ctx);
  EXPECT_DOUBLE_EQ(bd.Total(), 0.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

TEST(EmptyWorkloadTest, WofpOnEmptyWorkload) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(PathGraph(16));
  auto ms = memsim::MemorySystem::CreateDefault();
  sched::Workload empty;
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  const auto in_degrees = prefetch::ComputeInDegrees(m);
  auto p = prefetch::WofpPrefetcher::Build(m, empty, in_degrees,
                                           prefetch::WofpOptions{}, ms.get(), &ctx);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->store().size(), 0u);
}

TEST(TinyGraphTest, EngineRejectsDimLargerThanGraph) {
  const Graph g = PathGraph(8);
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(2);
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 2;
  opts.prone.dim = 16;  // dim + oversample > 8 nodes
  const auto report = engine::RunEmbedding(g, "tiny", opts, exec::Context(ms.get(), &pool));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

// --- Concurrency / capacity pressure ----------------------------------------------

TEST(ConcurrencyTest, ReserveReleaseIsThreadSafe) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  std::atomic<int> failures{0};
  pool.RunOnAll([&](size_t worker) {
    const memsim::Placement p{memsim::Tier::kPm, static_cast<int>(worker % 2)};
    for (int i = 0; i < 2000; ++i) {
      if (ms->Reserve(p, 1024).ok()) {
        ms->Release(p, 1024);
      } else {
        failures++;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ms->UsedBytes(memsim::Tier::kPm, 0), 0u);
  EXPECT_EQ(ms->UsedBytes(memsim::Tier::kPm, 1), 0u);
}

TEST(ConcurrencyTest, TrafficCountersAreAtomicAcrossWorkers) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  ms->ResetTraffic();
  pool.RunOnAll([&](size_t) {
    for (int i = 0; i < 1000; ++i) {
      ms->AccessSeconds({memsim::Tier::kDram, 0}, 0, memsim::MemOp::kRead,
                        memsim::Pattern::kSequential, 64, 1, 8);
    }
  });
  EXPECT_EQ(ms->Traffic().TotalBytes(), 8u * 1000 * 64);
}

TEST(CapacityPressureTest, EngineFailsCleanlyAndReleasesOnPartialReserve) {
  // Fill PM almost fully; the OMeGa run must fail with CapacityExceeded and
  // leave no leaked reservations behind.
  auto ms = memsim::MemorySystem::CreateDefault();
  const size_t cap = ms->CapacityBytes(memsim::Tier::kPm);
  ASSERT_TRUE(ms->Reserve({memsim::Tier::kPm, 0}, cap - 1024).ok());
  ASSERT_TRUE(ms->Reserve({memsim::Tier::kPm, 1}, cap - 1024).ok());
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  const Graph g = graph::GenerateRmat(params).value();
  ThreadPool pool(4);
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 4;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  const auto report = engine::RunEmbedding(g, "full", opts, exec::Context(ms.get(), &pool));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCapacityExceeded());
  EXPECT_EQ(ms->UsedBytes(memsim::Tier::kPm, 0), cap - 1024);
  EXPECT_EQ(ms->UsedBytes(memsim::Tier::kPm, 1), cap - 1024);
  ms->Release({memsim::Tier::kPm, 0}, cap - 1024);
  ms->Release({memsim::Tier::kPm, 1}, cap - 1024);
}

// --- ASL degenerate configurations -----------------------------------------------

TEST(AslEdgeTest, SinglePartitionWhenBudgetIsHuge) {
  auto ms = memsim::MemorySystem::CreateDefault();
  stream::AslConfig cfg;
  cfg.dense_rows = 1024;
  cfg.dense_cols = 8;
  cfg.sparse_bytes = 1024;
  cfg.dram_budget = 1ULL << 40;
  const auto n = stream::OptimalPartitions(cfg);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  stream::AslStreamer streamer(exec::Context(ms.get()), cfg,
                               {memsim::Tier::kPm, 0},
                               {memsim::Tier::kDram, 0});
  int calls = 0;
  auto run = streamer.Run([&](size_t, size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 8u);
    return 0.001;
  });
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(calls, 1);
}

TEST(AslEdgeTest, PartitionCountClampedToColumns) {
  stream::AslConfig cfg;
  cfg.dense_rows = 1 << 20;
  cfg.dense_cols = 3;  // fewer columns than the Eq. 9 partition count
  cfg.sparse_bytes = 0;
  cfg.dram_budget = 2 * cfg.dense_rows * cfg.dense_cols * 4 + (1 << 20);
  const auto n = stream::OptimalPartitions(cfg);
  ASSERT_TRUE(n.ok());
  EXPECT_LE(n.value(), 3u);
}

// --- NaDP degenerate thread counts ------------------------------------------------

TEST(NadpEdgeTest, SingleThreadSingleSocketStillCorrect) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(StarGraph(100));
  const linalg::DenseMatrix b = linalg::GaussianMatrix(m.num_cols(), 4, 9);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(m, b, &expected).ok());
  memsim::TopologyConfig topo;
  topo.num_sockets = 1;
  memsim::MemorySystem one_socket(topo, memsim::DefaultProfiles());
  ThreadPool pool(1);
  numa::NadpOptions opts;
  opts.num_threads = 1;
  linalg::DenseMatrix c(m.num_rows(), 4);
  numa::NadpSpmm(m, b, &c, opts, exec::Context(&one_socket, &pool));
  EXPECT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4);
}

}  // namespace
}  // namespace omega
