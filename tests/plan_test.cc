// Plan/execute split tests: a reused plan must be *exactly* equivalent to
// per-call planning — bit-identical embeddings and byte-identical simulated
// seconds (DESIGN.md's two-clock contract) — across thread counts, NaDP
// modes, WoFP on/off, and the CSR baseline kernels.

#include <gtest/gtest.h>

#include <cstring>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "omega/baselines.h"
#include "sparse/csdb_ops.h"
#include "sparse/fused.h"
#include "sparse/semi_external.h"
#include "sparse/spmm_plan.h"

namespace omega {
namespace {

using graph::CsdbMatrix;
using graph::CsrMatrix;
using linalg::DenseMatrix;
using numa::NadpOptions;
using numa::NadpResult;
using sparse::CsrSpmmPlan;

CsdbMatrix TestMatrix(uint32_t scale = 10, uint64_t edges = 15000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  return CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
}

bool BitIdentical(const DenseMatrix& x, const DenseMatrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(), x.bytes()) == 0;
}

// Byte-exact equality of two NadpResults (EXPECT_EQ on doubles: the plan
// path must replay the *same* charges, not approximately the same).
void ExpectIdenticalResults(const NadpResult& a, const NadpResult& b) {
  EXPECT_EQ(a.phase_seconds, b.phase_seconds);
  EXPECT_EQ(a.wofp_build_seconds, b.wofp_build_seconds);
  EXPECT_EQ(a.nnz_processed, b.nnz_processed);
  ASSERT_EQ(a.thread_seconds.size(), b.thread_seconds.size());
  for (size_t t = 0; t < a.thread_seconds.size(); ++t) {
    EXPECT_EQ(a.thread_seconds[t], b.thread_seconds[t]) << "thread " << t;
  }
  for (int op = 0; op < sparse::kNumSpmmOps; ++op) {
    EXPECT_EQ(a.breakdown.seconds[op], b.breakdown.seconds[op]) << "op " << op;
  }
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = TestMatrix();
    b_ = linalg::GaussianMatrix(a_.num_cols(), 8, 5);
    ms_ = memsim::MemorySystem::CreateDefault();
    pool_ = std::make_unique<ThreadPool>(8);
  }

  exec::Context Ctx() { return exec::Context(ms_.get(), pool_.get()); }

  CsdbMatrix a_;
  DenseMatrix b_;
  std::unique_ptr<memsim::MemorySystem> ms_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(PlanTest, NadpPlanReuseIsSimulationIdenticalAcrossModes) {
  for (const int threads : {1, 2, 8}) {
    for (const bool enabled : {false, true}) {
      for (const bool use_wofp : {false, true}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " enabled=" + std::to_string(enabled) +
                     " wofp=" + std::to_string(use_wofp));
        NadpOptions opts;
        opts.num_threads = threads;
        opts.enabled = enabled;
        opts.use_wofp = use_wofp;

        DenseMatrix c_percall(a_.num_rows(), b_.cols());
        const NadpResult r_percall = NadpSpmm(a_, b_, &c_percall, opts, Ctx());

        const numa::NadpPlan plan = numa::NadpPlan::Build(a_, opts, Ctx());
        ASSERT_TRUE(plan.valid());
        DenseMatrix c_plan(a_.num_rows(), b_.cols());
        const NadpResult r_plan = NadpExecute(plan, a_, b_, &c_plan, Ctx());
        ExpectIdenticalResults(r_percall, r_plan);
        EXPECT_TRUE(BitIdentical(c_percall, c_plan));

        // Second execute through the same plan: still identical — the WoFP
        // warm-up charges are replayed on every call, not just the first.
        DenseMatrix c_again(a_.num_rows(), b_.cols());
        const NadpResult r_again = NadpExecute(plan, a_, b_, &c_again, Ctx());
        ExpectIdenticalResults(r_percall, r_again);
        EXPECT_TRUE(BitIdentical(c_percall, c_again));
      }
    }
  }
}

TEST_F(PlanTest, NadpPlanReuseIdenticalOnColumnRanges) {
  // ASL hands NadpExecute one column partition at a time; the per-call
  // recomputed column blocks must match per-call planning on every range.
  NadpOptions opts;
  opts.num_threads = 8;
  opts.use_wofp = true;
  const numa::NadpPlan plan = numa::NadpPlan::Build(a_, opts, Ctx());
  for (const auto& [begin, end] :
       std::vector<std::pair<size_t, size_t>>{{0, 4}, {4, 8}, {0, 8}, {3, 5}}) {
    SCOPED_TRACE("cols=[" + std::to_string(begin) + "," + std::to_string(end) + ")");
    DenseMatrix c_percall(a_.num_rows(), b_.cols());
    const NadpResult r_percall =
        NadpSpmm(a_, b_, &c_percall, opts, Ctx(), begin, end);
    DenseMatrix c_plan(a_.num_rows(), b_.cols());
    const NadpResult r_plan =
        NadpExecute(plan, a_, b_, &c_plan, Ctx(), begin, end);
    ExpectIdenticalResults(r_percall, r_plan);
    EXPECT_TRUE(BitIdentical(c_percall, c_plan));
  }
}

TEST_F(PlanTest, NadpPlanMatchesInvalidation) {
  NadpOptions opts;
  opts.num_threads = 8;
  const numa::NadpPlan plan = numa::NadpPlan::Build(a_, opts, Ctx());
  EXPECT_TRUE(plan.Matches(a_, opts));

  NadpOptions changed = opts;
  changed.beta = 0.5;
  EXPECT_FALSE(plan.Matches(a_, changed));
  changed = opts;
  changed.num_threads = 4;
  EXPECT_FALSE(plan.Matches(a_, changed));
  changed = opts;
  changed.use_wofp = !opts.use_wofp;
  EXPECT_FALSE(plan.Matches(a_, changed));
  changed = opts;
  changed.wofp.sigma = 0.2;
  EXPECT_FALSE(plan.Matches(a_, changed));

  const CsdbMatrix other = TestMatrix(9, 9000);
  EXPECT_FALSE(plan.Matches(other, opts));
  EXPECT_FALSE(numa::NadpPlan().Matches(a_, opts));  // invalid plans never match

  numa::NadpPlanCache cache;
  EXPECT_FALSE(cache.Contains(a_, opts));
  cache.Get(a_, opts, Ctx());
  EXPECT_TRUE(cache.Contains(a_, opts));
  EXPECT_FALSE(cache.Contains(a_, changed));
}

TEST_F(PlanTest, MoreThreadsThanRowsThroughPlanPath) {
  // 8 simulated threads over a 4-row matrix: some workers get empty or no
  // workloads; the plan path must mirror the per-call early exits exactly.
  const CsdbMatrix tiny = TestMatrix(2, 12);
  ASSERT_LT(tiny.num_rows(), 8u);
  const DenseMatrix b = linalg::GaussianMatrix(tiny.num_cols(), 4, 7);
  DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(tiny, b, &expected).ok());

  for (const bool enabled : {false, true}) {
    for (const bool use_wofp : {false, true}) {
      SCOPED_TRACE("enabled=" + std::to_string(enabled) +
                   " wofp=" + std::to_string(use_wofp));
      NadpOptions opts;
      opts.num_threads = 8;
      opts.enabled = enabled;
      opts.use_wofp = use_wofp;
      DenseMatrix c_percall(tiny.num_rows(), b.cols());
      const NadpResult r_percall = NadpSpmm(tiny, b, &c_percall, opts, Ctx());
      const numa::NadpPlan plan = numa::NadpPlan::Build(tiny, opts, Ctx());
      DenseMatrix c_plan(tiny.num_rows(), b.cols());
      const NadpResult r_plan = NadpExecute(plan, tiny, b, &c_plan, Ctx());
      ExpectIdenticalResults(r_percall, r_plan);
      EXPECT_TRUE(BitIdentical(c_percall, c_plan));
      EXPECT_LT(DenseMatrix::MaxAbsDiff(c_plan, expected), 1e-4);
    }
  }
}

TEST_F(PlanTest, CsrSpmmPlanPartsCoverMatrix) {
  const CsrMatrix csr = sparse::ToCsr(a_).value();
  for (const auto split :
       {CsrSpmmPlan::Split::kEqualRows, CsrSpmmPlan::Split::kEqualNnz}) {
    const CsrSpmmPlan plan = CsrSpmmPlan::Build(csr, 8, split);
    ASSERT_TRUE(plan.valid());
    ASSERT_EQ(plan.parts().size(), 8u);
    uint64_t nnz = 0;
    uint32_t row = 0;
    for (const sparse::CsrPlanPart& part : plan.parts()) {
      EXPECT_EQ(part.row_begin, row);
      row = part.row_end;
      nnz += part.nnz;
    }
    EXPECT_EQ(row, csr.num_rows());
    EXPECT_EQ(nnz, csr.nnz());
  }
  const CsrSpmmPlan rows_plan =
      CsrSpmmPlan::Build(csr, 8, CsrSpmmPlan::Split::kEqualRows);
  EXPECT_TRUE(rows_plan.Matches(csr, 8, CsrSpmmPlan::Split::kEqualRows));
  EXPECT_FALSE(rows_plan.Matches(csr, 8, CsrSpmmPlan::Split::kEqualNnz));
  EXPECT_FALSE(rows_plan.Matches(csr, 4, CsrSpmmPlan::Split::kEqualRows));
}

TEST_F(PlanTest, FusedMmPlanReuseMatchesPerCall) {
  const CsrMatrix csr = sparse::ToCsr(a_).value();
  sparse::FusedMmOptions opts;
  opts.num_threads = 8;

  DenseMatrix c_percall(csr.num_rows(), b_.cols());
  const auto r_percall = FusedMmSpmm(csr, b_, &c_percall, opts, Ctx());
  ASSERT_TRUE(r_percall.ok());

  const CsrSpmmPlan plan =
      CsrSpmmPlan::Build(csr, opts.num_threads, CsrSpmmPlan::Split::kEqualRows);
  for (int pass = 0; pass < 2; ++pass) {
    DenseMatrix c_plan(csr.num_rows(), b_.cols());
    const auto r_plan = FusedMmSpmm(csr, b_, &c_plan, opts, plan, Ctx());
    ASSERT_TRUE(r_plan.ok());
    EXPECT_EQ(r_percall.value().phase_seconds, r_plan.value().phase_seconds);
    for (int t = 0; t < opts.num_threads; ++t) {
      EXPECT_EQ(r_percall.value().thread_seconds[t],
                r_plan.value().thread_seconds[t]);
    }
    EXPECT_TRUE(BitIdentical(c_percall, c_plan));
  }
}

TEST_F(PlanTest, SemiExternalPlanReuseMatchesPerCall) {
  const CsrMatrix csr = sparse::ToCsr(a_).value();
  sparse::SemiExternalOptions opts;
  opts.num_threads = 8;
  opts.dram_budget_bytes = 1ULL << 20;  // force a spill fraction

  DenseMatrix c_percall(csr.num_rows(), b_.cols());
  const auto r_percall = SemiExternalSpmm(csr, b_, &c_percall, opts, Ctx());

  const CsrSpmmPlan plan =
      CsrSpmmPlan::Build(csr, opts.num_threads, CsrSpmmPlan::Split::kEqualNnz);
  for (int pass = 0; pass < 2; ++pass) {
    DenseMatrix c_plan(csr.num_rows(), b_.cols());
    const auto r_plan = SemiExternalSpmm(csr, b_, &c_plan, opts, plan, Ctx());
    EXPECT_EQ(r_percall.phase_seconds, r_plan.phase_seconds);
    EXPECT_EQ(r_percall.nnz_processed, r_plan.nnz_processed);
    for (int t = 0; t < opts.num_threads; ++t) {
      EXPECT_EQ(r_percall.thread_seconds[t], r_plan.thread_seconds[t]);
    }
    EXPECT_TRUE(BitIdentical(c_percall, c_plan));
  }
}

TEST_F(PlanTest, StaticCsrSpmmPlanPathIdentical) {
  const CsrMatrix csr = sparse::ToCsr(a_).value();
  sparse::SpmmPlacements pl;
  pl.index = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
  pl.sparse = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
  pl.dense = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
  pl.result = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
  const exec::Context ctx = Ctx().WithThreads(8);

  DenseMatrix c_percall(csr.num_rows(), b_.cols());
  const auto r_percall = engine::StaticCsrSpmm(csr, b_, &c_percall, pl, ctx);

  const CsrSpmmPlan plan =
      CsrSpmmPlan::Build(csr, 8, CsrSpmmPlan::Split::kEqualRows);
  DenseMatrix c_plan(csr.num_rows(), b_.cols());
  const auto r_plan = engine::StaticCsrSpmm(csr, b_, &c_plan, pl, ctx, &plan);
  EXPECT_EQ(r_percall.phase_seconds, r_plan.phase_seconds);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(r_percall.thread_seconds[t], r_plan.thread_seconds[t]);
  }
  EXPECT_TRUE(BitIdentical(c_percall, c_plan));
}

TEST_F(PlanTest, SpmmPlanReuseThroughParallelSpmm) {
  sched::AllocatorOptions aopts;
  aopts.num_threads = 8;
  const sparse::SpmmPlan plan = sparse::SpmmPlan::Build(
      a_, sched::AllocatorKind::kEntropyAware, aopts, /*with_in_degrees=*/true);
  ASSERT_TRUE(plan.valid());
  ASSERT_TRUE(plan.has_in_degrees());

  sparse::SpmmPlacements pl;
  DenseMatrix c_percall(a_.num_rows(), b_.cols());
  const auto workloads =
      sched::Allocate(a_, sched::AllocatorKind::kEntropyAware, aopts);
  const auto r_percall =
      sparse::ParallelSpmm(a_, b_, &c_percall, workloads, pl, Ctx());

  DenseMatrix c_plan(a_.num_rows(), b_.cols());
  const auto r_plan = sparse::ParallelSpmm(a_, b_, &c_plan, plan, pl, Ctx());
  EXPECT_EQ(r_percall.phase_seconds, r_plan.phase_seconds);
  EXPECT_EQ(r_percall.nnz_processed, r_plan.nnz_processed);
  EXPECT_TRUE(BitIdentical(c_percall, c_plan));
}

}  // namespace
}  // namespace omega
