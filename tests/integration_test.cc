// Integration tests: the full pipeline on dataset analogues, determinism,
// Table II's allocator ordering on real SpMM executions, and the composed
// optimization stack (EaTA + WoFP + NaDP together).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "omega/engine.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"

namespace omega {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<graph::Graph>(graph::LoadDatasetByName("PK").value());
    a_ = graph::CsdbMatrix::FromGraph(*g_);
    ms_ = memsim::MemorySystem::CreateDefault();
    pool_ = std::make_unique<ThreadPool>(12);
  }

  std::unique_ptr<graph::Graph> g_;
  graph::CsdbMatrix a_;
  std::unique_ptr<memsim::MemorySystem> ms_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(IntegrationTest, TableTwoOrderingOnRealSpmm) {
  // Table II: EaTA <= WaTA < RR for one SpMM on a real dataset analogue.
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a_.num_cols(), 16, 1);
  linalg::DenseMatrix c(a_.num_rows(), 16);
  sched::AllocatorOptions opts;
  opts.num_threads = 12;
  auto run = [&](sched::AllocatorKind kind) {
    const auto workloads = sched::Allocate(a_, kind, opts);
    return sparse::ParallelSpmm(a_, b, &c, workloads, sparse::SpmmPlacements{},
                                exec::Context(ms_.get(), pool_.get()))
        .phase_seconds;
  };
  const double rr = run(sched::AllocatorKind::kRoundRobin);
  const double wata = run(sched::AllocatorKind::kWorkloadBalanced);
  const double eata = run(sched::AllocatorKind::kEntropyAware);
  EXPECT_GT(rr, wata * 1.5) << "RR should trail WaTA badly on skewed graphs";
  EXPECT_LE(eata, wata * 1.02) << "EaTA should not lose to WaTA";
}

TEST_F(IntegrationTest, Figure13TailLatencyShape) {
  // EaTA's thread-time distribution is tighter than WaTA's.
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a_.num_cols(), 16, 2);
  linalg::DenseMatrix c(a_.num_rows(), 16);
  sched::AllocatorOptions opts;
  opts.num_threads = 12;
  auto stddev = [&](sched::AllocatorKind kind) {
    const auto workloads = sched::Allocate(a_, kind, opts);
    const auto result = sparse::ParallelSpmm(a_, b, &c, workloads,
                                             sparse::SpmmPlacements{}, exec::Context(ms_.get(), pool_.get()));
    double mean = 0.0;
    for (double s : result.thread_seconds) mean += s;
    mean /= result.thread_seconds.size();
    double var = 0.0;
    for (double s : result.thread_seconds) var += (s - mean) * (s - mean);
    return std::sqrt(var / result.thread_seconds.size()) / mean;
  };
  EXPECT_LT(stddev(sched::AllocatorKind::kEntropyAware),
            stddev(sched::AllocatorKind::kWorkloadBalanced) + 1e-9);
}

TEST_F(IntegrationTest, FullStackBeatsEachAblation) {
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a_.num_cols(), 16, 3);
  linalg::DenseMatrix c(a_.num_rows(), 16);
  numa::NadpOptions full;
  full.num_threads = 12;
  full.use_wofp = true;
  auto time_of = [&](const numa::NadpOptions& o) {
    return numa::NadpSpmm(a_, b, &c, o, exec::Context(ms_.get(), pool_.get())).phase_seconds;
  };
  numa::NadpOptions no_wofp = full;
  no_wofp.use_wofp = false;
  numa::NadpOptions no_nadp = full;
  no_nadp.enabled = false;
  numa::NadpOptions rr = full;
  rr.allocator = sched::AllocatorKind::kRoundRobin;
  const double t_full = time_of(full);
  EXPECT_LT(t_full, time_of(no_wofp));
  EXPECT_LT(t_full, time_of(no_nadp));
  EXPECT_LT(t_full, time_of(rr));
}

TEST_F(IntegrationTest, SimulatedTimeIsDeterministic) {
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 8;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  opts.prone.chebyshev_order = 4;
  auto r1 = engine::RunEmbedding(*g_, "PK", opts, exec::Context(ms_.get(), pool_.get()));
  auto r2 = engine::RunEmbedding(*g_, "PK", opts, exec::Context(ms_.get(), pool_.get()));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().embed_seconds, r2.value().embed_seconds);
  EXPECT_EQ(linalg::DenseMatrix::MaxAbsDiff(r1.value().embedding,
                                            r2.value().embedding),
            0.0);
}

TEST_F(IntegrationTest, ThreadScalingIsMonotone) {
  // Fig. 17a: runtime decreases with thread count.
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a_.num_cols(), 16, 4);
  linalg::DenseMatrix c(a_.num_rows(), 16);
  double prev = 1e30;
  for (int threads : {2, 4, 8}) {
    numa::NadpOptions opts;
    opts.num_threads = threads;
    opts.use_wofp = false;
    const double t =
        numa::NadpSpmm(a_, b, &c, opts, exec::Context(ms_.get(), pool_.get())).phase_seconds;
    EXPECT_LT(t, prev) << threads << " threads";
    prev = t;
  }
}

TEST_F(IntegrationTest, EmbeddingQualityOnDatasetAnalogue) {
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 8;
  opts.prone.dim = 16;
  opts.prone.oversample = 8;
  opts.evaluate_quality = true;
  opts.quality_samples = 1000;
  auto report = engine::RunEmbedding(*g_, "PK", opts, exec::Context(ms_.get(), pool_.get()));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().link_auc.has_value());
  // Structure-carrying embedding on a real analogue graph.
  EXPECT_GT(*report.value().link_auc, 0.6);
}

TEST_F(IntegrationTest, AllDatasetAnaloguesEmbedUnderOmega) {
  // Smallest three analogues run end-to-end quickly; asserts no capacity or
  // numeric failures across dataset shapes.
  ThreadPool pool(8);
  for (const char* name : {"PK", "LJ", "OR"}) {
    const graph::Graph g = graph::LoadDatasetByName(name).value();
    engine::EngineOptions opts;
    opts.system = engine::SystemKind::kOmega;
    opts.num_threads = 8;
    opts.prone.dim = 8;
    opts.prone.oversample = 4;
    opts.prone.chebyshev_order = 4;
    auto report = engine::RunEmbedding(g, name, opts, exec::Context(ms_.get(), &pool));
    ASSERT_TRUE(report.ok()) << name << ": " << report.status().ToString();
    EXPECT_GT(report.value().embed_seconds, 0.0) << name;
  }
}

}  // namespace
}  // namespace omega
