// Unit tests for the dense linear algebra stack: matrix ops, GEMM variants,
// Householder QR, Jacobi eigendecomposition, and the randomized tSVD.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.h"
#include "linalg/eigen.h"
#include "linalg/gemm.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"
#include "linalg/randomized_svd.h"

namespace omega::linalg {
namespace {

TEST(DenseMatrixTest, ColumnMajorLayout) {
  DenseMatrix m(3, 2);
  m.At(0, 0) = 1;
  m.At(2, 1) = 5;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[5], 5);  // col 1, row 2 => index 1*3+2
  EXPECT_EQ(m.ColData(1)[2], 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.bytes(), 24u);
}

TEST(DenseMatrixTest, AddScaledAndScale) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 2);
  a.Fill(1.0f);
  b.Fill(2.0f);
  ASSERT_TRUE(a.AddScaled(b, 0.5f).ok());
  EXPECT_FLOAT_EQ(a.At(1, 1), 2.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.At(0, 0), 4.0f);
  DenseMatrix wrong(3, 2);
  EXPECT_FALSE(a.AddScaled(wrong, 1.0f).ok());
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix m(2, 2);
  m.At(0, 0) = 3;
  m.At(1, 1) = 4;
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0, 1e-9);
}

TEST(DenseMatrixTest, SliceColsAndTranspose) {
  DenseMatrix m(2, 3);
  for (size_t c = 0; c < 3; ++c)
    for (size_t r = 0; r < 2; ++r) m.At(r, c) = static_cast<float>(10 * r + c);
  const DenseMatrix slice = m.SliceCols(1, 3);
  EXPECT_EQ(slice.cols(), 2u);
  EXPECT_FLOAT_EQ(slice.At(1, 0), 11.0f);
  const DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_FLOAT_EQ(t.At(2, 1), m.At(1, 2));
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 2);
  b.At(1, 0) = 0.25f;
  EXPECT_NEAR(DenseMatrix::MaxAbsDiff(a, b), 0.25, 1e-9);
  DenseMatrix c(3, 2);
  EXPECT_TRUE(std::isinf(DenseMatrix::MaxAbsDiff(a, c)));
}

TEST(GemmTest, MatchesHandComputedProduct) {
  DenseMatrix a(2, 3);
  DenseMatrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  const float av[] = {1, 2, 3, 4, 5, 6};
  const float bv[] = {7, 8, 9, 10, 11, 12};
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = av[r * 3 + c];
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 2; ++c) b.At(r, c) = bv[r * 2 + c];
  DenseMatrix c;
  ASSERT_TRUE(Gemm(a, b, &c).ok());
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
  EXPECT_FALSE(Gemm(a, a, &c).ok());  // inner dim mismatch
}

TEST(GemmTest, TransposedVariantsAgreeWithExplicitTranspose) {
  const DenseMatrix a = GaussianMatrix(7, 4, 1);
  const DenseMatrix b = GaussianMatrix(7, 5, 2);
  DenseMatrix at_b;
  ASSERT_TRUE(GemmTransA(a, b, &at_b).ok());
  DenseMatrix reference;
  ASSERT_TRUE(Gemm(a.Transposed(), b, &reference).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(at_b, reference), 1e-4);

  const DenseMatrix c = GaussianMatrix(6, 4, 3);
  DenseMatrix a_ct;
  ASSERT_TRUE(GemmTransB(a, c, &a_ct).ok());
  DenseMatrix reference2;
  ASSERT_TRUE(Gemm(a, c.Transposed(), &reference2).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(a_ct, reference2), 1e-4);
}

// The blocked kernel must agree with the scalar reference bit-for-bit (same
// ascending-k reduction chain) on shapes that exercise partial tiles.
TEST(GemmTest, BlockedMatchesNaiveOnAwkwardShapes) {
  struct Shape {
    size_t m, k, n;
  };
  const Shape shapes[] = {
      {1, 1, 1},       // single element
      {129, 67, 33},   // prime-ish, none a tile multiple
      {1000, 3, 5},    // tall-skinny
      {63, 200, 2},    // k spans > 1 k-block, partial row tile
      {64, 128, 8},    // exact tile/block multiples
  };
  for (const Shape& s : shapes) {
    const DenseMatrix a = GaussianMatrix(s.m, s.k, 11);
    const DenseMatrix b = GaussianMatrix(s.k, s.n, 12);
    DenseMatrix blocked;
    DenseMatrix naive;
    ASSERT_TRUE(Gemm(a, b, &blocked).ok());
    ASSERT_TRUE(GemmNaive(a, b, &naive).ok());
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(blocked, naive), 0.0)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmTest, HandlesEmptyInnerDimension) {
  // k = 0: the product is defined and all-zero.
  const DenseMatrix a(4, 0);
  const DenseMatrix b(0, 3);
  DenseMatrix c;
  ASSERT_TRUE(Gemm(a, b, &c).ok());
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    for (size_t i = 0; i < 4; ++i) EXPECT_EQ(c.At(i, j), 0.0f);
  }
}

// Regression: writing the output used to destroy an aliased input operand
// (*c = DenseMatrix(...) frees the storage `a` still points to).
TEST(GemmTest, InPlaceOutputAliasingIsSafe) {
  const DenseMatrix a0 = GaussianMatrix(9, 9, 21);
  const DenseMatrix b0 = GaussianMatrix(9, 9, 22);
  DenseMatrix expected;
  ASSERT_TRUE(Gemm(a0, b0, &expected).ok());

  DenseMatrix a = a0;
  ASSERT_TRUE(Gemm(a, b0, &a).ok());  // c aliases a
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(a, expected), 0.0);

  DenseMatrix b = b0;
  ASSERT_TRUE(Gemm(a0, b, &b).ok());  // c aliases b
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(b, expected), 0.0);

  DenseMatrix expected_ata;
  ASSERT_TRUE(GemmTransA(a0, a0, &expected_ata).ok());
  DenseMatrix self = a0;
  ASSERT_TRUE(GemmTransA(self, self, &self).ok());  // c aliases both operands
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(self, expected_ata), 0.0);

  DenseMatrix expected_abt;
  ASSERT_TRUE(GemmTransB(a0, b0, &expected_abt).ok());
  DenseMatrix ab = a0;
  ASSERT_TRUE(GemmTransB(ab, b0, &ab).ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(ab, expected_abt), 0.0);
}

// Host-side parallelism must not change a single output bit (fixed-order
// per-element reductions; see gemm.h).
TEST(GemmTest, PooledResultsBitIdenticalToSerial) {
  ThreadPool pool(8);
  const DenseMatrix a = GaussianMatrix(300, 70, 31);
  const DenseMatrix b = GaussianMatrix(70, 40, 32);
  DenseMatrix serial;
  DenseMatrix pooled;
  ASSERT_TRUE(Gemm(a, b, &serial).ok());
  ASSERT_TRUE(Gemm(a, b, &pooled, &pool).ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial, pooled), 0.0);

  const DenseMatrix tall = GaussianMatrix(300, 40, 33);
  DenseMatrix serial_t;
  DenseMatrix pooled_t;
  ASSERT_TRUE(GemmTransA(a, tall, &serial_t).ok());
  ASSERT_TRUE(GemmTransA(a, tall, &pooled_t, &pool).ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial_t, pooled_t), 0.0);

  const DenseMatrix wide = GaussianMatrix(40, 70, 34);
  DenseMatrix serial_b;
  DenseMatrix pooled_b;
  ASSERT_TRUE(GemmTransB(a, wide, &serial_b).ok());
  ASSERT_TRUE(GemmTransB(a, wide, &pooled_b, &pool).ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial_b, pooled_b), 0.0);
}

TEST(QrTest, PooledResultsBitIdenticalToSerial) {
  ThreadPool pool(8);
  const DenseMatrix a = GaussianMatrix(500, 24, 41);
  DenseMatrix q1, r1, q8, r8;
  ASSERT_TRUE(ReducedQr(a, &q1, &r1).ok());
  ASSERT_TRUE(ReducedQr(a, &q8, &r8, &pool).ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(q1, q8), 0.0);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(r1, r8), 0.0);
}

TEST(SvdTest, PooledResultsBitIdenticalToSerial) {
  // Same operator, 1 worker vs 8 workers: identical embedding bytes.
  const DenseMatrix op = GaussianMatrix(120, 120, 51);
  MatMulFn apply = [&](const DenseMatrix& in, DenseMatrix* out) {
    return Gemm(op, in, out);
  };
  MatMulFn apply_t = [&](const DenseMatrix& in, DenseMatrix* out) {
    return GemmTransA(op, in, out);
  };
  RandomizedSvdOptions serial_opts;
  serial_opts.rank = 8;
  serial_opts.power_iterations = 2;
  auto serial = RandomizedSvd(120, 120, apply, apply_t, serial_opts);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(8);
  RandomizedSvdOptions pooled_opts = serial_opts;
  pooled_opts.pool = &pool;
  auto pooled = RandomizedSvd(120, 120, apply, apply_t, pooled_opts);
  ASSERT_TRUE(pooled.ok());

  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial.value().u, pooled.value().u), 0.0);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial.value().v, pooled.value().v), 0.0);
  ASSERT_EQ(serial.value().singular.size(), pooled.value().singular.size());
  for (size_t i = 0; i < serial.value().singular.size(); ++i) {
    EXPECT_EQ(serial.value().singular[i], pooled.value().singular[i]);
  }
}

TEST(RandomMatrixTest, DeterministicAndOrderIndependent) {
  const DenseMatrix a = GaussianMatrix(100, 8, 42);
  const DenseMatrix b = GaussianMatrix(100, 8, 42);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(a, b), 0.0);
  const DenseMatrix c = GaussianMatrix(100, 8, 43);
  EXPECT_GT(DenseMatrix::MaxAbsDiff(a, c), 0.1);
}

TEST(RandomMatrixTest, UniformRespectsBounds) {
  const DenseMatrix u = UniformMatrix(50, 4, 7, -2.0f, 3.0f);
  for (size_t c = 0; c < u.cols(); ++c) {
    for (size_t r = 0; r < u.rows(); ++r) {
      EXPECT_GE(u.At(r, c), -2.0f);
      EXPECT_LT(u.At(r, c), 3.0f);
    }
  }
}

TEST(QrTest, ReconstructsAndOrthonormal) {
  const DenseMatrix a = GaussianMatrix(50, 6, 11);
  DenseMatrix q;
  DenseMatrix r;
  ASSERT_TRUE(ReducedQr(a, &q, &r).ok());
  ASSERT_EQ(q.rows(), 50u);
  ASSERT_EQ(q.cols(), 6u);
  // Q^T Q = I.
  DenseMatrix qtq;
  ASSERT_TRUE(GemmTransA(q, q, &qtq).ok());
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(qtq.At(i, j), i == j ? 1.0 : 0.0, 1e-4) << i << "," << j;
    }
  }
  // QR = A.
  DenseMatrix qr;
  ASSERT_TRUE(Gemm(q, r, &qr).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(qr, a), 1e-3);
  // R upper triangular.
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < i; ++j) EXPECT_FLOAT_EQ(r.At(i, j), 0.0f);
  }
}

TEST(QrTest, RejectsWideMatrix) {
  const DenseMatrix a = GaussianMatrix(3, 5, 1);
  DenseMatrix q;
  EXPECT_FALSE(ReducedQr(a, &q, nullptr).ok());
}

TEST(QrTest, HandlesRankDeficiency) {
  // Two identical columns: QR must not blow up.
  DenseMatrix a(10, 2);
  for (size_t r = 0; r < 10; ++r) {
    a.At(r, 0) = static_cast<float>(r + 1);
    a.At(r, 1) = static_cast<float>(r + 1);
  }
  DenseMatrix q;
  DenseMatrix r;
  ASSERT_TRUE(ReducedQr(a, &q, &r).ok());
  DenseMatrix qr;
  ASSERT_TRUE(Gemm(q, r, &qr).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(qr, a), 1e-3);
}

TEST(EigenTest, DiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig.value().eigenvalues[1], 1.0, 1e-9);
}

TEST(EigenTest, ReconstructsRandomSymmetricMatrix) {
  const size_t k = 12;
  const DenseMatrix g = GaussianMatrix(k, k, 5);
  DenseMatrix a;
  ASSERT_TRUE(GemmTransA(g, g, &a).ok());  // symmetric PSD
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const auto& vals = eig.value().eigenvalues;
  for (size_t i = 1; i < k; ++i) EXPECT_LE(vals[i], vals[i - 1] + 1e-9);
  // V diag(w) V^T == A.
  DenseMatrix scaled = eig.value().eigenvectors;
  for (size_t c = 0; c < k; ++c) {
    for (size_t r = 0; r < k; ++r) {
      scaled.At(r, c) *= static_cast<float>(vals[c]);
    }
  }
  DenseMatrix recon;
  ASSERT_TRUE(GemmTransB(scaled, eig.value().eigenvectors, &recon).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(recon, a), 1e-2);
}

TEST(EigenTest, RejectsAsymmetric) {
  DenseMatrix a(2, 2);
  a.At(0, 1) = 5;
  EXPECT_FALSE(SymmetricEigen(a).ok());
  DenseMatrix rect(2, 3);
  EXPECT_FALSE(SymmetricEigen(rect).ok());
}

// Builds a dense operator with known singular values via U diag(s) V^T.
class SvdFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const size_t n = 60;
    const size_t m = 40;
    DenseMatrix qu;
    DenseMatrix qv;
    ASSERT_TRUE(ReducedQr(GaussianMatrix(n, 10, 1), &qu, nullptr).ok());
    ASSERT_TRUE(ReducedQr(GaussianMatrix(m, 10, 2), &qv, nullptr).ok());
    singular_ = {50, 40, 30, 20, 10, 5, 2, 1, 0.5, 0.1};
    DenseMatrix scaled = qu;
    for (size_t c = 0; c < 10; ++c) {
      for (size_t r = 0; r < n; ++r) {
        scaled.At(r, c) *= static_cast<float>(singular_[c]);
      }
    }
    ASSERT_TRUE(GemmTransB(scaled, qv, &a_).ok());  // n x m
  }

  std::vector<double> singular_;
  DenseMatrix a_;
};

TEST_F(SvdFixture, RecoversLeadingSingularValues) {
  MatMulFn apply = [&](const DenseMatrix& in, DenseMatrix* out) {
    return Gemm(a_, in, out);
  };
  MatMulFn apply_t = [&](const DenseMatrix& in, DenseMatrix* out) {
    return GemmTransA(a_, in, out);
  };
  RandomizedSvdOptions opts;
  opts.rank = 5;
  opts.oversample = 6;
  opts.power_iterations = 2;
  auto svd = RandomizedSvd(a_.rows(), a_.cols(), apply, apply_t, opts);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(svd.value().singular[i], singular_[i], singular_[i] * 0.02 + 0.05)
        << "sigma_" << i;
  }
  // U and V columns orthonormal.
  DenseMatrix utu;
  ASSERT_TRUE(GemmTransA(svd.value().u, svd.value().u, &utu).ok());
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(utu.At(i, i), 1.0, 1e-3);
  // Rank-5 reconstruction error is bounded by sigma_6.
  DenseMatrix us = svd.value().u;
  for (size_t c = 0; c < 5; ++c) {
    for (size_t r = 0; r < us.rows(); ++r) {
      us.At(r, c) *= static_cast<float>(svd.value().singular[c]);
    }
  }
  DenseMatrix recon;
  ASSERT_TRUE(GemmTransB(us, svd.value().v, &recon).ok());
  ASSERT_TRUE(recon.AddScaled(a_, -1.0f).ok());
  EXPECT_LT(recon.FrobeniusNorm(), 3.0 * singular_[5] + 1.0);
}

TEST_F(SvdFixture, ValidatesOptions) {
  MatMulFn apply = [&](const DenseMatrix& in, DenseMatrix* out) {
    return Gemm(a_, in, out);
  };
  RandomizedSvdOptions opts;
  opts.rank = 0;
  EXPECT_FALSE(RandomizedSvd(60, 40, apply, apply, opts).ok());
  opts.rank = 39;
  opts.oversample = 8;  // exceeds m
  EXPECT_FALSE(RandomizedSvd(60, 40, apply, apply, opts).ok());
}

}  // namespace
}  // namespace omega::linalg
