// Unit tests for thread allocation (§III-B): the entropy accumulator (Eq. 3),
// scatter factor (Eq. 5), and the RR/WaTA/EaTA allocators (Algorithm 2) —
// including the coverage/disjointness invariants and the load-balance
// properties Table II and Fig. 13 rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/rmat.h"
#include "sched/allocators.h"
#include "sched/entropy.h"

namespace omega::sched {
namespace {

using graph::CsdbMatrix;
using graph::Graph;

CsdbMatrix SkewedMatrix(uint32_t scale = 11, uint64_t edges = 30000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  params.a = 0.65;
  params.b = 0.15;
  params.c = 0.15;
  params.d = 0.05;
  return CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
}

TEST(EntropyAccumulatorTest, MatchesDirectFormula) {
  // Rows with degrees 4, 3, 1: H = sum -(d/8) log(d/8).
  EntropyAccumulator acc;
  acc.AddRow(4);
  acc.AddRow(3);
  acc.AddRow(1);
  const double w = 8.0;
  double expect = 0.0;
  for (double d : {4.0, 3.0, 1.0}) expect += -(d / w) * std::log(d / w);
  EXPECT_NEAR(acc.Entropy(), expect, 1e-12);
  EXPECT_EQ(acc.nnz(), 8u);
  EXPECT_EQ(acc.rows(), 3u);
}

TEST(EntropyAccumulatorTest, RemoveUndoesAdd) {
  EntropyAccumulator acc;
  acc.AddRow(5);
  acc.AddRow(2);
  const double h2 = acc.Entropy();
  acc.AddRow(9);
  acc.RemoveRow(9);
  EXPECT_NEAR(acc.Entropy(), h2, 1e-12);
}

TEST(EntropyAccumulatorTest, UniformRowsMaximizeEntropy) {
  // k equal rows give H = log k, the maximum for k rows.
  EntropyAccumulator uniform;
  for (int i = 0; i < 16; ++i) uniform.AddRow(3);
  EXPECT_NEAR(uniform.Entropy(), std::log(16.0), 1e-12);
  EntropyAccumulator skewed;
  skewed.AddRow(33);
  for (int i = 0; i < 15; ++i) skewed.AddRow(1);
  EXPECT_LT(skewed.Entropy(), uniform.Entropy());
}

TEST(EntropyAccumulatorTest, EmptyAndZeroDegreeRows) {
  EntropyAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Entropy(), 0.0);
  acc.AddRow(0);
  EXPECT_DOUBLE_EQ(acc.Entropy(), 0.0);
  EXPECT_EQ(acc.rows(), 1u);
  EXPECT_EQ(acc.nnz(), 0u);
}

TEST(ScatterFactorTest, EquationFiveEndpoints) {
  const uint32_t v = 1024;
  const double beta = 0.4;
  // Z = 0 (fully sequential): W_sca = 1.
  EXPECT_NEAR(ScatterFactor(0.0, v, beta), 1.0, 1e-12);
  // Z = 1 (fully random): W_sca = beta.
  EXPECT_NEAR(ScatterFactor(std::log(static_cast<double>(v)), v, beta), beta, 1e-12);
  // Monotone decreasing in entropy for beta < 1.
  EXPECT_GT(ScatterFactor(1.0, v, beta), ScatterFactor(2.0, v, beta));
}

TEST(ScatterFactorTest, NormalizedEntropyClamped) {
  EXPECT_DOUBLE_EQ(NormalizedEntropy(100.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEntropy(-1.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEntropy(1.0, 1), 0.0);
}

class AllocatorInvariants : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(AllocatorInvariants, CoversEveryRowExactlyOnce) {
  const CsdbMatrix a = SkewedMatrix();
  AllocatorOptions opts;
  opts.num_threads = 7;
  const auto workloads = Allocate(a, GetParam(), opts);
  ASSERT_EQ(workloads.size(), 7u);
  std::vector<int> covered(a.num_rows(), 0);
  uint64_t total_nnz = 0;
  for (const Workload& w : workloads) {
    for (const RowRange& range : w.ranges) {
      for (uint32_t r = range.begin; r < range.end; ++r) covered[r]++;
    }
    total_nnz += w.nnz;
  }
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(covered[r], 1) << "row " << r << " under "
                             << AllocatorName(GetParam());
  }
  EXPECT_EQ(total_nnz, a.nnz());
}

TEST_P(AllocatorInvariants, AnnotationsArePopulated) {
  const CsdbMatrix a = SkewedMatrix();
  AllocatorOptions opts;
  opts.num_threads = 4;
  for (const Workload& w : Allocate(a, GetParam(), opts)) {
    if (w.empty()) continue;
    EXPECT_GT(w.entropy, 0.0);
    EXPECT_GT(w.scatter, 0.0);
    EXPECT_LE(w.scatter, 1.0);
    EXPECT_GT(w.num_rows, 0u);
  }
}

TEST_P(AllocatorInvariants, SingleThreadGetsEverything) {
  const CsdbMatrix a = SkewedMatrix(9, 3000);
  AllocatorOptions opts;
  opts.num_threads = 1;
  const auto workloads = Allocate(a, GetParam(), opts);
  ASSERT_EQ(workloads.size(), 1u);
  EXPECT_EQ(workloads[0].nnz, a.nnz());
  EXPECT_EQ(workloads[0].num_rows, a.num_rows());
}

TEST_P(AllocatorInvariants, MoreThreadsThanRows) {
  // 8-node graph, 32 threads: no crashes, full coverage, empties allowed.
  graph::RmatParams params;
  params.scale = 3;
  params.num_edges = 20;
  const CsdbMatrix a =
      CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  AllocatorOptions opts;
  opts.num_threads = 32;
  const auto workloads = Allocate(a, GetParam(), opts);
  ASSERT_EQ(workloads.size(), 32u);
  uint64_t nnz = 0;
  for (const Workload& w : workloads) nnz += w.nnz;
  EXPECT_EQ(nnz, a.nnz());
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, AllocatorInvariants,
                         ::testing::Values(AllocatorKind::kRoundRobin,
                                           AllocatorKind::kWorkloadBalanced,
                                           AllocatorKind::kEntropyAware),
                         [](const auto& info) {
                           return std::string(AllocatorName(info.param));
                         });

double MaxNnz(const std::vector<Workload>& ws) {
  uint64_t mx = 0;
  for (const auto& w : ws) mx = std::max(mx, w.nnz);
  return static_cast<double>(mx);
}

TEST(AllocatorComparisonTest, RoundRobinIsImbalancedOnSkewedGraphs) {
  // Degree-sorted rows + equal-row chunks => the first chunk dwarfs the rest.
  const CsdbMatrix a = SkewedMatrix();
  AllocatorOptions opts;
  opts.num_threads = 8;
  const auto rr = AllocateRoundRobin(a, opts);
  const auto wata = AllocateWata(a, opts);
  const double fair = static_cast<double>(a.nnz()) / 8.0;
  EXPECT_GT(MaxNnz(rr), 2.0 * fair);
  EXPECT_LT(MaxNnz(wata), 1.5 * fair);
}

TEST(AllocatorComparisonTest, WataBalancesNnz) {
  const CsdbMatrix a = SkewedMatrix();
  AllocatorOptions opts;
  opts.num_threads = 6;
  const auto wata = AllocateWata(a, opts);
  const double fair = static_cast<double>(a.nnz()) / 6.0;
  for (const Workload& w : wata) {
    if (w.empty()) continue;
    EXPECT_LT(static_cast<double>(w.nnz), 2.0 * fair);
  }
}

TEST(AllocatorComparisonTest, EataReducesTimeModelSpread) {
  // Under the paper's cost model T_i ~ W_i / W_sca_i (Eq. 4), EaTA's
  // adjusted budgets must spread less than WaTA's equal budgets.
  const CsdbMatrix a = SkewedMatrix(12, 80000);
  AllocatorOptions opts;
  opts.num_threads = 12;
  const auto wata = AllocateWata(a, opts);
  const auto eata = AllocateEata(a, opts);
  auto model_spread = [&](const std::vector<Workload>& ws) {
    std::vector<double> t;
    for (const Workload& w : ws) {
      if (!w.empty()) t.push_back(static_cast<double>(w.nnz) / w.scatter);
    }
    double mean = 0.0;
    for (double v : t) mean += v;
    mean /= t.size();
    double var = 0.0;
    for (double v : t) var += (v - mean) * (v - mean);
    return std::sqrt(var / t.size()) / mean;  // coefficient of variation
  };
  EXPECT_LE(model_spread(eata), model_spread(wata) * 1.05);
}

TEST(AllocatorComparisonTest, EataKeepsContiguousRanges) {
  const CsdbMatrix a = SkewedMatrix();
  AllocatorOptions opts;
  opts.num_threads = 5;
  uint32_t next = 0;
  for (const Workload& w : AllocateEata(a, opts)) {
    for (const RowRange& range : w.ranges) {
      EXPECT_EQ(range.begin, next);
      next = range.end;
    }
  }
  EXPECT_EQ(next, a.num_rows());
}

TEST(WorkloadTest, RefreshCountsSumsRanges) {
  const CsdbMatrix a = SkewedMatrix(8, 1000);
  Workload w;
  w.ranges.push_back(RowRange{0, 10});
  w.ranges.push_back(RowRange{20, 25});
  RefreshCounts(a, &w);
  EXPECT_EQ(w.num_rows, 15u);
  uint64_t expect = 0;
  for (uint32_t r = 0; r < 10; ++r) expect += a.RowDegree(r);
  for (uint32_t r = 20; r < 25; ++r) expect += a.RowDegree(r);
  EXPECT_EQ(w.nnz, expect);
}

TEST(WorkloadTest, EmptyRangeHandled) {
  const CsdbMatrix a = SkewedMatrix(8, 1000);
  Workload w;
  w.ranges.push_back(RowRange{5, 5});
  RefreshCounts(a, &w);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.num_rows, 0u);
}

}  // namespace
}  // namespace omega::sched
