// Unit tests for the heterogeneous-memory simulator: calibrated profile
// ratios from the paper, cost-model behaviour, capacity accounting,
// interleaved placement, traffic counters, and the Fig. 9 bandwidth probe.

#include <gtest/gtest.h>

#include "memsim/bandwidth_probe.h"
#include "memsim/memory_system.h"
#include "memsim/sim_buffer.h"

namespace omega::memsim {
namespace {

class MemsimTest : public ::testing::Test {
 protected:
  void SetUp() override { ms_ = MemorySystem::CreateDefault(); }
  std::unique_ptr<MemorySystem> ms_;
};

TEST(ProfileTest, PmReadBandwidthIsAboutOneThirdOfDram) {
  const ProfileSet set = DefaultProfiles();
  const double dram = set.Get(Tier::kDram)
                          .Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal)
                          .peak_gbps;
  const double pm = set.Get(Tier::kPm)
                        .Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal)
                        .peak_gbps;
  EXPECT_NEAR(dram / pm, 3.0, 0.35);  // paper: PM reads ~1/3 DRAM
}

TEST(ProfileTest, PmWriteBandwidthIsAboutOneSixthOfDram) {
  const ProfileSet set = DefaultProfiles();
  const double dram = set.Get(Tier::kDram)
                          .Curve(MemOp::kWrite, Pattern::kSequential, Locality::kLocal)
                          .peak_gbps;
  const double pm = set.Get(Tier::kPm)
                        .Curve(MemOp::kWrite, Pattern::kSequential, Locality::kLocal)
                        .peak_gbps;
  EXPECT_NEAR(dram / pm, 6.0, 0.35);  // paper: PM writes ~1/6 DRAM
}

TEST(ProfileTest, PmSeqReadBeatsRandomByPaperRatios) {
  // Fig. 9: local seq read peak is 2.41x local random and 2.45x remote random.
  const ProfileSet set = DefaultProfiles();
  const DeviceProfile& pm = set.Get(Tier::kPm);
  const double seq_local =
      pm.Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal).peak_gbps;
  const double rand_local =
      pm.Curve(MemOp::kRead, Pattern::kRandom, Locality::kLocal).peak_gbps;
  const double rand_remote =
      pm.Curve(MemOp::kRead, Pattern::kRandom, Locality::kRemote).peak_gbps;
  EXPECT_NEAR(seq_local / rand_local, 2.41, 0.1);
  EXPECT_NEAR(seq_local / rand_remote, 2.45, 0.1);
}

TEST(ProfileTest, PmLocalWritesBeatRemoteWritesByPaperRatios) {
  // Fig. 9: local seq write is 3.23x remote seq write, 4.99x remote random.
  const ProfileSet set = DefaultProfiles();
  const DeviceProfile& pm = set.Get(Tier::kPm);
  const double seq_local =
      pm.Curve(MemOp::kWrite, Pattern::kSequential, Locality::kLocal).peak_gbps;
  EXPECT_NEAR(
      seq_local /
          pm.Curve(MemOp::kWrite, Pattern::kSequential, Locality::kRemote).peak_gbps,
      3.23, 0.1);
  EXPECT_NEAR(
      seq_local /
          pm.Curve(MemOp::kWrite, Pattern::kRandom, Locality::kRemote).peak_gbps,
      4.99, 0.1);
}

TEST(ProfileTest, PmRemoteSeqReadComparableToLocal) {
  // Fig. 9's headline: remote sequential reads are nearly free under NUMA.
  const ProfileSet set = DefaultProfiles();
  const DeviceProfile& pm = set.Get(Tier::kPm);
  const double local =
      pm.Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal).peak_gbps;
  const double remote =
      pm.Curve(MemOp::kRead, Pattern::kSequential, Locality::kRemote).peak_gbps;
  EXPECT_GT(remote / local, 0.9);
}

TEST(ProfileTest, PmLatencyMultipliersMatchPaper) {
  const ProfileSet set = DefaultProfiles();
  const DeviceProfile& dram = set.Get(Tier::kDram);
  const DeviceProfile& pm = set.Get(Tier::kPm);
  EXPECT_NEAR(pm.LatencyNs(Locality::kLocal) / dram.LatencyNs(Locality::kLocal), 4.2,
              0.05);
  EXPECT_NEAR(pm.LatencyNs(Locality::kRemote) / dram.LatencyNs(Locality::kRemote),
              3.3, 0.05);
}

TEST(BandwidthCurveTest, SaturatesAtPeak) {
  BandwidthCurve curve{2.0, 10.0};
  EXPECT_DOUBLE_EQ(curve.AggregateGbps(1), 2.0);
  EXPECT_DOUBLE_EQ(curve.AggregateGbps(4), 8.0);
  EXPECT_DOUBLE_EQ(curve.AggregateGbps(16), 10.0);
  EXPECT_DOUBLE_EQ(curve.PerThreadGbps(16), 10.0 / 16);
  EXPECT_DOUBLE_EQ(curve.AggregateGbps(0), 2.0);  // clamped to one thread
}

TEST_F(MemsimTest, CostScalesLinearlyWithBytes) {
  AccessRun run;
  run.bytes = 1 << 20;
  run.accesses = 1;
  const double t1 = ms_->cost_model().AccessSeconds(Tier::kPm, run, 1);
  run.bytes = 2 << 20;
  const double t2 = ms_->cost_model().AccessSeconds(Tier::kPm, run, 1);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST_F(MemsimTest, RandomCostExceedsSequentialCost) {
  AccessRun seq{MemOp::kRead, Pattern::kSequential, Locality::kLocal, 1 << 20, 1};
  AccessRun rand{MemOp::kRead, Pattern::kRandom, Locality::kLocal, 1 << 20, 16384};
  EXPECT_GT(ms_->cost_model().AccessSeconds(Tier::kPm, rand, 1),
            ms_->cost_model().AccessSeconds(Tier::kPm, seq, 1));
}

TEST_F(MemsimTest, ZeroChargeIsFree) {
  AccessRun run;
  run.bytes = 0;
  run.accesses = 0;
  EXPECT_DOUBLE_EQ(ms_->cost_model().AccessSeconds(Tier::kDram, run, 1), 0.0);
}

TEST_F(MemsimTest, ComputeSecondsMatchesRate) {
  const double rate = ms_->cost_model().profiles().cpu_ops_per_second;
  EXPECT_NEAR(ms_->cost_model().ComputeSeconds(static_cast<size_t>(rate)), 1.0,
              1e-9);
}

TEST_F(MemsimTest, ReserveAndReleaseTracksUsage) {
  const Placement p{Tier::kDram, 0};
  ASSERT_TRUE(ms_->Reserve(p, 1 << 20).ok());
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 1u << 20);
  ms_->Release(p, 1 << 20);
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 0u);
}

TEST_F(MemsimTest, ReserveFailsWhenDeviceFull) {
  const Placement p{Tier::kDram, 0};
  const size_t cap = ms_->CapacityBytes(Tier::kDram);
  ASSERT_TRUE(ms_->Reserve(p, cap).ok());
  const Status st = ms_->Reserve(p, 1);
  EXPECT_TRUE(st.IsCapacityExceeded());
  ms_->Release(p, cap);
}

TEST_F(MemsimTest, PmCapacityIsEightTimesDram) {
  EXPECT_EQ(ms_->CapacityBytes(Tier::kPm), 8 * ms_->CapacityBytes(Tier::kDram));
}

TEST_F(MemsimTest, SsdCapacityUnbounded) {
  EXPECT_EQ(ms_->CapacityBytes(Tier::kSsd), SIZE_MAX);
  EXPECT_EQ(ms_->AvailableBytes(Tier::kSsd, 0), SIZE_MAX);
}

TEST_F(MemsimTest, InterleavedReservationSpreadsAcrossSockets) {
  const Placement p{Tier::kDram, Placement::kInterleaved};
  ASSERT_TRUE(ms_->Reserve(p, 2 << 20).ok());
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 1u << 20);
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 1), 1u << 20);
  ms_->Release(p, 2 << 20);
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 0u);
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 1), 0u);
}

TEST_F(MemsimTest, InterleavedCostBetweenLocalAndRemote) {
  const size_t bytes = 16 << 20;
  const double local = ms_->AccessSeconds({Tier::kPm, 0}, 0, MemOp::kWrite,
                                          Pattern::kSequential, bytes, 1, 1);
  const double remote = ms_->AccessSeconds({Tier::kPm, 1}, 0, MemOp::kWrite,
                                           Pattern::kSequential, bytes, 1, 1);
  const double mixed =
      ms_->AccessSeconds({Tier::kPm, Placement::kInterleaved}, 0, MemOp::kWrite,
                         Pattern::kSequential, bytes, 2, 1);
  EXPECT_GT(mixed, local);
  EXPECT_LT(mixed, remote);
}

TEST_F(MemsimTest, TrafficCountersClassifyLocality) {
  ms_->ResetTraffic();
  ms_->AccessSeconds({Tier::kPm, 0}, 0, MemOp::kRead, Pattern::kSequential, 1000, 1,
                     1);
  ms_->AccessSeconds({Tier::kPm, 1}, 0, MemOp::kRead, Pattern::kSequential, 3000, 1,
                     1);
  const TrafficSnapshot snap = ms_->Traffic();
  EXPECT_EQ(snap.LocalityBytes(Locality::kLocal), 1000u);
  EXPECT_EQ(snap.LocalityBytes(Locality::kRemote), 3000u);
  EXPECT_NEAR(snap.RemoteFraction(), 0.75, 1e-9);
  EXPECT_EQ(snap.TierBytes(Tier::kPm), 4000u);
  EXPECT_EQ(snap.TotalBytes(), 4000u);
}

TEST_F(MemsimTest, ChargeAdvancesWorkerClock) {
  SimClock clock;
  WorkerCtx ctx;
  ctx.clock = &clock;
  ctx.cpu_socket = 0;
  ctx.active_threads = 1;
  ms_->ChargeAccess(&ctx, {Tier::kDram, 0}, MemOp::kRead, Pattern::kSequential,
                    12ull << 30, 1);
  EXPECT_NEAR(clock.seconds(), 1.0, 0.1);  // 12 GB at 12 GB/s per thread
  ms_->ChargeCompute(&ctx, 4000000000ull);
  EXPECT_NEAR(clock.seconds(), 2.0, 0.1);
}

TEST_F(MemsimTest, SimBufferReservesAndReleases) {
  {
    auto buf = SimBuffer<float>::Create(ms_.get(), 1024, Tier::kDram, 0);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 4096u);
    EXPECT_EQ(buf.value().size(), 1024u);
    buf.value()[0] = 1.5f;
    EXPECT_EQ(buf.value()[0], 1.5f);
    // Move transfers ownership without double-release.
    SimBuffer<float> moved = std::move(buf).value();
    EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 4096u);
    EXPECT_EQ(moved.size(), 1024u);
  }
  EXPECT_EQ(ms_->UsedBytes(Tier::kDram, 0), 0u);
}

TEST_F(MemsimTest, SimBufferFailsPastCapacity) {
  const size_t cap = ms_->CapacityBytes(Tier::kDram);
  auto buf = SimBuffer<uint8_t>::Create(ms_.get(), cap + 1, Tier::kDram, 0);
  EXPECT_FALSE(buf.ok());
  EXPECT_TRUE(buf.status().IsCapacityExceeded());
}

TEST_F(MemsimTest, ClockGroupAggregates) {
  ClockGroup group(3);
  group.clock(0).Advance(1.0);
  group.clock(1).Advance(3.0);
  group.clock(2).Advance(2.0);
  EXPECT_DOUBLE_EQ(group.MaxSeconds(), 3.0);
  EXPECT_DOUBLE_EQ(group.MinSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(group.TotalSeconds(), 6.0);
  group.Reset();
  EXPECT_DOUBLE_EQ(group.MaxSeconds(), 0.0);
}

TEST_F(MemsimTest, SocketOfWorkerBlocksContiguously) {
  const Topology& topo = ms_->topology();
  EXPECT_EQ(topo.SocketOfWorker(0, 8), 0);
  EXPECT_EQ(topo.SocketOfWorker(3, 8), 0);
  EXPECT_EQ(topo.SocketOfWorker(4, 8), 1);
  EXPECT_EQ(topo.SocketOfWorker(7, 8), 1);
  EXPECT_EQ(topo.SocketOfWorker(0, 1), 0);
}

// --- Fig. 9 probe: the simulated device reproduces the published curves. ---

TEST_F(MemsimTest, ProbeBandwidthIncreasesThenSaturates) {
  const size_t bytes = 64 << 20;
  const double bw1 =
      ProbeBandwidth(ms_.get(), Tier::kPm, MemOp::kRead, Pattern::kSequential,
                     Locality::kLocal, 1, bytes)
          .gbps;
  const double bw8 =
      ProbeBandwidth(ms_.get(), Tier::kPm, MemOp::kRead, Pattern::kSequential,
                     Locality::kLocal, 8, bytes)
          .gbps;
  const double bw18 =
      ProbeBandwidth(ms_.get(), Tier::kPm, MemOp::kRead, Pattern::kSequential,
                     Locality::kLocal, 18, bytes)
          .gbps;
  EXPECT_GT(bw8, bw1 * 3);
  EXPECT_NEAR(bw18, 33.0, 2.0);  // saturates at the calibrated peak
}

TEST_F(MemsimTest, ProbeLocalWritesBeatRemoteWrites) {
  const size_t bytes = 64 << 20;
  for (Pattern pat : {Pattern::kSequential, Pattern::kRandom}) {
    const double local = ProbeBandwidth(ms_.get(), Tier::kPm, MemOp::kWrite, pat,
                                        Locality::kLocal, 18, bytes)
                             .gbps;
    const double remote = ProbeBandwidth(ms_.get(), Tier::kPm, MemOp::kWrite, pat,
                                         Locality::kRemote, 18, bytes)
                              .gbps;
    EXPECT_GT(local, remote * 2.0);
  }
}

TEST_F(MemsimTest, ProbeTierSweepsAllCombinations) {
  const auto samples = ProbeTier(ms_.get(), Tier::kPm, {1, 2, 4}, 1 << 20);
  EXPECT_EQ(samples.size(), 2u * 2u * 2u * 3u);
  for (const auto& s : samples) EXPECT_GT(s.gbps, 0.0);
}

}  // namespace
}  // namespace omega::memsim
