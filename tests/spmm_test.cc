// Unit tests for the charged SpMM kernels (Algorithm 1): numerical
// correctness against the reference kernel, cost-breakdown structure, cache
// interception, column ranges, and the CSR/SEM/FusedMM variants.

#include <gtest/gtest.h>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"
#include "sparse/fused.h"
#include "sparse/semi_external.h"
#include "sparse/spmm.h"

namespace omega::sparse {
namespace {

using graph::CsdbMatrix;
using graph::Graph;
using linalg::DenseMatrix;

class SpmmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 9;
    params.num_edges = 4000;
    graph_ = std::make_unique<Graph>(graph::GenerateRmat(params).value());
    a_ = CsdbMatrix::FromGraph(*graph_);
    b_ = linalg::GaussianMatrix(a_.num_cols(), 8, 77);
    ms_ = memsim::MemorySystem::CreateDefault();
    ASSERT_TRUE(ReferenceSpmm(a_, b_, &expected_).ok());
  }

  sched::Workload FullWorkload() const {
    sched::Workload w;
    w.ranges.push_back(sched::RowRange{0, a_.num_rows()});
    sched::RefreshCounts(a_, &w);
    return w;
  }

  std::unique_ptr<Graph> graph_;
  CsdbMatrix a_;
  DenseMatrix b_;
  DenseMatrix expected_;
  std::unique_ptr<memsim::MemorySystem> ms_;
};

TEST_F(SpmmTest, SingleWorkloadMatchesReference) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  const SpmmCostBreakdown bd =
      ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                          &ctx);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(bd.Total(), 0.0);
  EXPECT_NEAR(clock.seconds(), bd.Total(), 1e-12);
}

TEST_F(SpmmTest, BreakdownHasAllComponentsAndGatherDominates) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  const SpmmCostBreakdown bd =
      ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                          &ctx);
  for (int i = 0; i < kNumSpmmOps; ++i) {
    EXPECT_GT(bd.seconds[i], 0.0) << SpmmOpName(static_cast<SpmmOp>(i));
  }
  // Fig. 7a: get_dense_nnz dominates the execution time on PM.
  const double gather = bd.seconds[static_cast<int>(SpmmOp::kGetDenseNnz)];
  for (int i = 0; i < kNumSpmmOps; ++i) {
    if (i == static_cast<int>(SpmmOp::kGetDenseNnz)) continue;
    EXPECT_GT(gather, bd.seconds[i]) << SpmmOpName(static_cast<SpmmOp>(i));
  }
}

TEST_F(SpmmTest, DramPlacementIsFasterThanPm) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  SpmmPlacements pm;  // defaults: sparse+dense on PM
  SpmmPlacements dram;
  dram.sparse = {memsim::Tier::kDram, 0};
  dram.dense = {memsim::Tier::kDram, 0};
  memsim::SimClock clock_pm;
  memsim::SimClock clock_dram;
  memsim::WorkerCtx ctx_pm{0, 0, 1, &clock_pm};
  memsim::WorkerCtx ctx_dram{0, 0, 1, &clock_dram};
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), pm, ms_.get(), &ctx_pm);
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), dram, ms_.get(), &ctx_dram);
  EXPECT_GT(clock_pm.seconds(), 1.5 * clock_dram.seconds());
}

TEST_F(SpmmTest, RemoteDensePlacementCostsMore) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  SpmmPlacements local;
  SpmmPlacements remote = local;
  remote.dense = {memsim::Tier::kPm, 1};  // ctx runs on socket 0
  memsim::SimClock cl;
  memsim::SimClock cr;
  memsim::WorkerCtx ctx_l{0, 0, 1, &cl};
  memsim::WorkerCtx ctx_r{0, 0, 1, &cr};
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), local, ms_.get(), &ctx_l);
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), remote, ms_.get(), &ctx_r);
  EXPECT_GT(cr.seconds(), cl.seconds());
}

// A cache that claims to hold everything: all gathers must hit DRAM.
class AllCache : public DenseCacheView {
 public:
  bool Contains(graph::NodeId) const override { return true; }
  memsim::Placement placement() const override {
    return {memsim::Tier::kDram, 0};
  }
};

TEST_F(SpmmTest, CacheInterceptsGathersAndSpeedsUp) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  AllCache cache;
  memsim::SimClock with;
  memsim::SimClock without;
  memsim::WorkerCtx ctx_w{0, 0, 1, &with};
  memsim::WorkerCtx ctx_wo{0, 0, 1, &without};
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                      &ctx_w, &cache);
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                      &ctx_wo, nullptr);
  EXPECT_LT(with.seconds(), without.seconds());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
}

TEST_F(SpmmTest, ColumnRangeComputesOnlyThatRange) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(), &ctx,
                      nullptr, 2, 5);
  for (size_t t = 2; t < 5; ++t) {
    for (size_t r = 0; r < c.rows(); ++r) {
      EXPECT_NEAR(c.At(r, t), expected_.At(r, t), 1e-4);
    }
  }
  // Untouched columns stay zero.
  for (size_t r = 0; r < c.rows(); ++r) {
    EXPECT_EQ(c.At(r, 0), 0.0f);
    EXPECT_EQ(c.At(r, 7), 0.0f);
  }
}

TEST_F(SpmmTest, CostScalesWithColumnCount) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  memsim::SimClock narrow;
  memsim::SimClock wide;
  memsim::WorkerCtx ctx_n{0, 0, 1, &narrow};
  memsim::WorkerCtx ctx_w{0, 0, 1, &wide};
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                      &ctx_n, nullptr, 0, 2);
  ExecuteWorkloadCsdb(a_, b_, &c, FullWorkload(), SpmmPlacements{}, ms_.get(),
                      &ctx_w, nullptr, 0, 8);
  EXPECT_NEAR(wide.seconds() / narrow.seconds(), 4.0, 0.5);
}

TEST_F(SpmmTest, ParallelSpmmMatchesReferenceAcrossAllocators) {
  ThreadPool pool(8);
  for (auto kind :
       {sched::AllocatorKind::kRoundRobin, sched::AllocatorKind::kWorkloadBalanced,
        sched::AllocatorKind::kEntropyAware}) {
    sched::AllocatorOptions opts;
    opts.num_threads = 8;
    const auto workloads = sched::Allocate(a_, kind, opts);
    DenseMatrix c(a_.num_rows(), b_.cols());
    const ParallelSpmmResult result =
        ParallelSpmm(a_, b_, &c, workloads, SpmmPlacements{}, exec::Context(ms_.get(), &pool));
    EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4)
        << sched::AllocatorName(kind);
    EXPECT_EQ(result.nnz_processed, a_.nnz());
    EXPECT_GT(result.phase_seconds, 0.0);
    EXPECT_EQ(result.thread_seconds.size(), 8u);
    // Phase time is the straggler.
    double mx = 0.0;
    for (double s : result.thread_seconds) mx = std::max(mx, s);
    EXPECT_DOUBLE_EQ(result.phase_seconds, mx);
    EXPECT_GT(result.ThroughputNnzPerSec(), 0.0);
  }
}

TEST_F(SpmmTest, MoreThreadsReducePhaseTime) {
  ThreadPool pool(16);
  sched::AllocatorOptions opts;
  opts.num_threads = 2;
  auto w2 = sched::Allocate(a_, sched::AllocatorKind::kEntropyAware, opts);
  opts.num_threads = 16;
  auto w16 = sched::Allocate(a_, sched::AllocatorKind::kEntropyAware, opts);
  DenseMatrix c(a_.num_rows(), b_.cols());
  const double t2 =
      ParallelSpmm(a_, b_, &c, w2, SpmmPlacements{}, exec::Context(ms_.get(), &pool)).phase_seconds;
  const double t16 =
      ParallelSpmm(a_, b_, &c, w16, SpmmPlacements{}, exec::Context(ms_.get(), &pool)).phase_seconds;
  EXPECT_GT(t2, 2.0 * t16);
}

TEST_F(SpmmTest, CsrKernelMatchesReference) {
  const auto csr = ToCsr(a_).value();
  DenseMatrix c(a_.num_rows(), b_.cols());
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  ExecuteWorkloadCsr(csr, b_, &c, 0, csr.num_rows(), SpmmPlacements{}, ms_.get(),
                     &ctx);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(clock.seconds(), 0.0);
}

TEST_F(SpmmTest, SemiExternalMatchesReferenceAndChargesSsd) {
  const auto csr = ToCsr(a_).value();
  ThreadPool pool(4);
  SemiExternalOptions opts;
  opts.num_threads = 4;
  opts.dram_budget_bytes = 1ULL << 30;  // everything fits: no spill
  DenseMatrix c(csr.num_rows(), b_.cols());
  ms_->ResetTraffic();
  const auto result = SemiExternalSpmm(csr, b_, &c, opts, exec::Context(ms_.get(), &pool));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(result.phase_seconds, 0.0);
  EXPECT_GT(ms_->Traffic().TierBytes(memsim::Tier::kSsd), 0u);
}

TEST_F(SpmmTest, SemiExternalSpillsMakeItSlower) {
  const auto csr = ToCsr(a_).value();
  ThreadPool pool(4);
  SemiExternalOptions fit;
  fit.num_threads = 4;
  fit.dram_budget_bytes = 1ULL << 30;
  SemiExternalOptions spill = fit;
  spill.dram_budget_bytes = b_.bytes() / 4;  // force spilling
  DenseMatrix c(csr.num_rows(), b_.cols());
  const double t_fit =
      SemiExternalSpmm(csr, b_, &c, fit, exec::Context(ms_.get(), &pool)).phase_seconds;
  const double t_spill =
      SemiExternalSpmm(csr, b_, &c, spill, exec::Context(ms_.get(), &pool)).phase_seconds;
  EXPECT_GT(t_spill, 2.0 * t_fit);
}

TEST_F(SpmmTest, FusedMmMatchesReferenceInDram) {
  const auto csr = ToCsr(a_).value();
  ThreadPool pool(4);
  FusedMmOptions opts;
  opts.num_threads = 4;
  DenseMatrix c(csr.num_rows(), b_.cols());
  auto result = FusedMmSpmm(csr, b_, &c, opts, exec::Context(ms_.get(), &pool));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(result.value().phase_seconds, 0.0);
}

TEST_F(SpmmTest, FusedMmFailsPastDramCapacity) {
  // Shrink the simulated DRAM below the working set.
  memsim::TopologyConfig topo;
  topo.dram_bytes_per_socket = 1 << 10;
  memsim::MemorySystem tiny(topo, memsim::DefaultProfiles());
  const auto csr = ToCsr(a_).value();
  ThreadPool pool(2);
  FusedMmOptions opts;
  opts.num_threads = 2;
  DenseMatrix c(csr.num_rows(), b_.cols());
  auto result = FusedMmSpmm(csr, b_, &c, opts, exec::Context(&tiny, &pool));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCapacityExceeded());
}

TEST(SpmmBreakdownTest, AccumulateAndName) {
  SpmmCostBreakdown a;
  a.seconds[0] = 1.0;
  SpmmCostBreakdown b;
  b.seconds[0] = 2.0;
  b.seconds[4] = 3.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds[0], 3.0);
  EXPECT_DOUBLE_EQ(a.Total(), 6.0);
  EXPECT_STREQ(SpmmOpName(SpmmOp::kGetDenseNnz), "get_dense_nnz");
}

}  // namespace
}  // namespace omega::sparse
