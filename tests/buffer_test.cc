// Tests of the tier-agnostic BufferManager and the async staging layer:
// pin/unpin semantics, eviction policies, the overlap-charging math, and the
// end-to-end async-staging contract (off == seed bit-identical, on closes
// the PM->DRAM gap and keeps fault accounting intact).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "buffer/staging.h"
#include "graph/datasets.h"
#include "graph/rmat.h"
#include "memsim/fault.h"
#include "memsim/memory_system.h"
#include "memsim/sim_clock.h"
#include "omega/engine.h"
#include "omega/report.h"

namespace omega {
namespace {

using buffer::BufferManager;
using buffer::EvictionPolicy;
using buffer::PageKey;
using buffer::PinHandle;
using memsim::Placement;
using memsim::Tier;

constexpr size_t kPage = 4096;

std::unique_ptr<memsim::MemorySystem> DefaultMs() {
  return memsim::MemorySystem::CreateDefault();
}

TEST(BufferManagerTest, PinMissThenHitUpdatesStats) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {0, EvictionPolicy::kLru});
  const PageKey key{Tier::kDram, 0, 7};
  {
    auto pin = mgr.Pin(key, kPage);
    ASSERT_TRUE(pin.ok());
    EXPECT_TRUE(pin.value().valid());
    EXPECT_EQ(pin.value().bytes(), kPage);
    EXPECT_EQ(pin.value().key(), key);
    auto again = mgr.Pin(key, kPage);
    ASSERT_TRUE(again.ok());
    const BufferManager::Stats stats = mgr.GetStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.resident_bytes, kPage);
    EXPECT_EQ(stats.pinned_bytes, kPage);
  }
  // Handles released: the frame stays resident but unpinned.
  const BufferManager::Stats stats = mgr.GetStats();
  EXPECT_EQ(stats.resident_bytes, kPage);
  EXPECT_EQ(stats.pinned_bytes, 0u);
}

TEST(BufferManagerTest, CapacityOfOneFrameEvictsLru) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {kPage, EvictionPolicy::kLru});
  { auto a = mgr.Pin({Tier::kDram, 0, 1}, kPage); ASSERT_TRUE(a.ok()); }
  { auto b = mgr.Pin({Tier::kDram, 0, 2}, kPage); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(mgr.GetStats().evictions, 1u);
  EXPECT_EQ(mgr.GetStats().resident_bytes, kPage);
  EXPECT_FALSE(mgr.Lookup({Tier::kDram, 0, 1}).valid());
  EXPECT_TRUE(mgr.Lookup({Tier::kDram, 0, 2}).valid());
}

TEST(BufferManagerTest, OneBytePoolRejectsLargerPage) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {1, EvictionPolicy::kLru});
  auto pin = mgr.Pin({Tier::kDram, 0, 1}, kPage);
  ASSERT_FALSE(pin.ok());
  EXPECT_TRUE(pin.status().IsCapacityExceeded());
  // A page that fits the 1-byte budget is fine.
  auto tiny = mgr.Pin({Tier::kDram, 0, 2}, 1);
  EXPECT_TRUE(tiny.ok());
}

TEST(BufferManagerTest, PinEverythingReturnsCapacityExceededNotDeadlock) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {2 * kPage, EvictionPolicy::kLru});
  auto a = mgr.Pin({Tier::kDram, 0, 1}, kPage);
  auto b = mgr.Pin({Tier::kDram, 0, 2}, kPage);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both resident frames are pinned: the third pin must fail with a Status,
  // not block waiting for an unpin that never comes.
  auto c = mgr.Pin({Tier::kDram, 0, 3}, kPage);
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsCapacityExceeded());
  // Releasing one pin makes room again.
  a.value().Release();
  auto d = mgr.Pin({Tier::kDram, 0, 3}, kPage);
  EXPECT_TRUE(d.ok());
}

TEST(BufferManagerTest, ZeroSizePagesAreLegal) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {kPage, EvictionPolicy::kLru});
  auto pin = mgr.Pin({Tier::kPm, 0, 1}, 0);
  ASSERT_TRUE(pin.ok());
  EXPECT_TRUE(pin.value().valid());
  EXPECT_EQ(pin.value().bytes(), 0u);
  EXPECT_EQ(mgr.GetStats().resident_bytes, 0u);
}

TEST(BufferManagerTest, RePinWithDifferentSizeIsInvalidArgument) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {0, EvictionPolicy::kLru});
  auto a = mgr.Pin({Tier::kDram, 0, 1}, kPage);
  ASSERT_TRUE(a.ok());
  auto b = mgr.Pin({Tier::kDram, 0, 1}, 2 * kPage);
  ASSERT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsInvalidArgument());
}

TEST(BufferManagerTest, HotFramesSurviveEvictionUnderHotPinned) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {2 * kPage, EvictionPolicy::kHotPinned});
  { auto a = mgr.Pin({Tier::kDram, 0, 1}, kPage); ASSERT_TRUE(a.ok()); }
  ASSERT_TRUE(mgr.MarkHot({Tier::kDram, 0, 1}).ok());
  { auto b = mgr.Pin({Tier::kDram, 0, 2}, kPage); ASSERT_TRUE(b.ok()); }
  // Room for only one more page: the unpinned-but-hot frame 1 must survive,
  // frame 2 is the eviction victim.
  { auto c = mgr.Pin({Tier::kDram, 0, 3}, kPage); ASSERT_TRUE(c.ok()); }
  EXPECT_TRUE(mgr.Lookup({Tier::kDram, 0, 1}).valid());
  EXPECT_FALSE(mgr.Lookup({Tier::kDram, 0, 2}).valid());
}

TEST(BufferManagerTest, LruPolicyIgnoresHotMark) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {kPage, EvictionPolicy::kLru});
  { auto a = mgr.Pin({Tier::kDram, 0, 1}, kPage); ASSERT_TRUE(a.ok()); }
  ASSERT_TRUE(mgr.MarkHot({Tier::kDram, 0, 1}).ok());
  { auto b = mgr.Pin({Tier::kDram, 0, 2}, kPage); ASSERT_TRUE(b.ok()); }
  // Under plain LRU the hot mark carries no exemption.
  EXPECT_FALSE(mgr.Lookup({Tier::kDram, 0, 1}).valid());
}

TEST(BufferManagerTest, EvictsLeastRecentlyUsedFirst) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {3 * kPage, EvictionPolicy::kLru});
  for (uint64_t id = 1; id <= 3; ++id) {
    auto pin = mgr.Pin({Tier::kDram, 0, id}, kPage);
    ASSERT_TRUE(pin.ok());
  }
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(mgr.Lookup({Tier::kDram, 0, 1}).valid());
  { auto d = mgr.Pin({Tier::kDram, 0, 4}, kPage); ASSERT_TRUE(d.ok()); }
  EXPECT_TRUE(mgr.Lookup({Tier::kDram, 0, 1}).valid());
  EXPECT_FALSE(mgr.Lookup({Tier::kDram, 0, 2}).valid());
  EXPECT_TRUE(mgr.Lookup({Tier::kDram, 0, 3}).valid());
}

TEST(BufferManagerTest, MaterializedPagesExposeHostMemory) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {0, EvictionPolicy::kLru});
  auto acc = mgr.Pin({Tier::kDram, 0, 1}, 64);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc.value().data(), nullptr);  // accounting-only page
  auto mat = mgr.Pin({Tier::kDram, 0, 2}, 64, /*materialize=*/true);
  ASSERT_TRUE(mat.ok());
  ASSERT_NE(mat.value().data(), nullptr);
  mat.value().data()[0] = std::byte{0xAB};
}

TEST(BufferManagerTest, UniqueKeysNeverCollide) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {0, EvictionPolicy::kLru});
  const PageKey a = mgr.UniqueKey(Tier::kDram, 0);
  const PageKey b = mgr.UniqueKey(Tier::kDram, 0);
  EXPECT_FALSE(a == b);
}

TEST(BufferManagerTest, ConcurrentPinUnpinFromEightThreads) {
  auto ms = DefaultMs();
  BufferManager mgr(ms.get(), {8 * kPage, EvictionPolicy::kLru});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        // 12 keys over an 8-frame budget: pins, hits, and evictions race.
        const PageKey key{Tier::kDram, 0, static_cast<uint64_t>((t + i) % 12)};
        auto pin = mgr.Pin(key, kPage);
        if (!pin.ok()) {
          failures++;
          continue;
        }
        PinHandle copy = pin.value();  // exercise the re-pin path
        copy.Release();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const BufferManager::Stats stats = mgr.GetStats();
  EXPECT_EQ(stats.pinned_bytes, 0u);
  EXPECT_LE(stats.resident_bytes, 8 * kPage);
  EXPECT_EQ(stats.hits + stats.misses, 8u * 200u);
}

TEST(OverlapMathTest, OverlappedSecondsClosedForm) {
  using memsim::SimClock;
  // Degenerate legs.
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(2.0, 0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(0.0, 2.0, 3.0), 2.0);
  // No contention: perfect hiding up to the longer leg.
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(3.0, 1.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(1.0, 3.0, 1.0), 3.0);
  // Contention: duration = max(c, f + c * (1 - 1/s)). Small fetches hide
  // completely behind dominant compute; larger ones push past it.
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(4.0, 1.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(4.0, 3.0, 2.0), 5.0);
  // Slowdowns below 1 clamp to 1.
  EXPECT_DOUBLE_EQ(SimClock::OverlappedSeconds(4.0, 1.0, 0.5), 4.0);
  // Duration never exceeds the serial sum and never undercuts either leg.
  for (double c : {0.5, 1.0, 4.0}) {
    for (double f : {0.25, 1.0, 2.0}) {
      for (double s : {1.0, 2.0, 8.0}) {
        const double d = SimClock::OverlappedSeconds(c, f, s);
        EXPECT_GE(d, std::max(c, f));
        EXPECT_LE(d, c + f + 1e-12);
      }
    }
  }
}

TEST(OverlapMathTest, ChargeOverlappedAdvancesClockAndReturnsHidden) {
  memsim::SimClock clock;
  const double hidden = clock.ChargeOverlapped(4.0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(hidden, 4.0 + 3.0 - 5.0);
}

TEST(StagingTest, FetchSlowdownAtLeastOne) {
  auto ms = DefaultMs();
  const Placement pm{Tier::kPm, Placement::kInterleaved};
  const Placement dram{Tier::kDram, Placement::kInterleaved};
  EXPECT_GE(buffer::FetchSlowdown(ms.get(), pm, dram, 1), 1.0);
  // More compute threads leave less spare bandwidth for the fetch stream.
  EXPECT_GE(buffer::FetchSlowdown(ms.get(), pm, dram, 36),
            buffer::FetchSlowdown(ms.get(), pm, dram, 1));
}

TEST(StagingTest, StageFetchMatchesStageSecondsWhenHealthy) {
  const Placement pm{Tier::kPm, Placement::kInterleaved};
  const Placement dram{Tier::kDram, Placement::kInterleaved};
  auto a = DefaultMs();
  auto b = DefaultMs();
  const double plain = buffer::StageSeconds(a.get(), 1 << 20, pm, dram);
  buffer::StageFetchConfig cfg;
  cfg.from = pm;
  cfg.to = dram;
  auto fetched = buffer::StageFetch(b.get(), 1 << 20, cfg);
  ASSERT_TRUE(fetched.ok());
  EXPECT_DOUBLE_EQ(fetched.value().seconds, plain);
  EXPECT_EQ(fetched.value().retries, 0u);
  EXPECT_FALSE(fetched.value().degraded);
}

// --- End-to-end async staging ----------------------------------------------

graph::Graph SmallGraph() {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 6000;
  return graph::GenerateRmat(params).value();
}

engine::EngineOptions SmallOptions(int threads, bool async) {
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = threads;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  opts.prone.chebyshev_order = 4;
  opts.features.async_staging = async;
  return opts;
}

TEST(AsyncStagingTest, OffAndOnProduceBitIdenticalEmbeddings) {
  // The async path changes only simulated charging (column partitioning of
  // the same deterministic kernels), never the host math: embeddings must
  // match bit-for-bit, at every thread count, with staging on or off.
  const graph::Graph g = SmallGraph();
  linalg::DenseMatrix reference;
  for (int threads : {1, 2, 8}) {
    auto ms = memsim::MemorySystem::CreateDefault();
    ThreadPool pool(static_cast<size_t>(threads));
    for (bool async : {false, true}) {
      auto report =
          engine::RunEmbedding(g, "test", SmallOptions(threads, async),
                               exec::Context(ms.get(), &pool));
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      const linalg::DenseMatrix& emb = report.value().embedding;
      if (reference.rows() == 0) {
        reference = emb;
        continue;
      }
      ASSERT_EQ(emb.rows(), reference.rows());
      ASSERT_EQ(emb.cols(), reference.cols());
      for (size_t r = 0; r < emb.rows(); ++r) {
        for (size_t c = 0; c < emb.cols(); ++c) {
          ASSERT_EQ(emb.At(r, c), reference.At(r, c))
              << "threads=" << threads << " async=" << async << " at (" << r
              << ", " << c << ")";
        }
      }
    }
  }
}

TEST(AsyncStagingTest, ReportsOverlapAccountingInPhases) {
  const graph::Graph g = SmallGraph();
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  auto report = engine::RunEmbedding(g, "test", SmallOptions(8, true),
                                     exec::Context(ms.get(), &pool));
  ASSERT_TRUE(report.ok());
  double fetch = 0.0;
  for (const exec::PhaseRecord& p : report.value().phases) {
    fetch += p.fetch_seconds;
    EXPECT_GE(p.hidden_seconds, 0.0);
    EXPECT_LE(p.hidden_seconds, p.fetch_seconds + 1e-12);
    EXPECT_LE(p.OverlapEfficiency(), 1.0 + 1e-12);
  }
  EXPECT_GT(fetch, 0.0);
  // The JSON writer surfaces the same accounting.
  const std::string json = engine::ReportToJson(report.value());
  EXPECT_NE(json.find("\"overlap_efficiency\""), std::string::npos);

  // Async off: no phase reports staging-fetch accounting.
  auto sync = engine::RunEmbedding(g, "test", SmallOptions(8, false),
                                   exec::Context(ms.get(), &pool));
  ASSERT_TRUE(sync.ok());
  for (const exec::PhaseRecord& p : sync.value().phases) {
    EXPECT_EQ(p.fetch_seconds, 0.0);
    EXPECT_EQ(p.hidden_seconds, 0.0);
  }
}

TEST(AsyncStagingTest, ClosesAtLeastFortyPercentOfDramGapOnPk) {
  const auto g = graph::LoadDatasetByName("PK");
  ASSERT_TRUE(g.ok());
  ThreadPool pool(36);

  auto run = [&](engine::SystemKind kind, bool async) {
    auto ms = memsim::MemorySystem::CreateDefault();
    engine::EngineOptions opts;
    opts.system = kind;
    opts.num_threads = 36;
    opts.features.async_staging = async;
    auto report = engine::RunEmbedding(g.value(), "PK", opts,
                                       exec::Context(ms.get(), &pool));
    EXPECT_TRUE(report.ok());
    return report.value().total_seconds;
  };

  const double sync_s = run(engine::SystemKind::kOmega, false);
  const double async_s = run(engine::SystemKind::kOmega, true);
  const double dram_s = run(engine::SystemKind::kOmegaDram, false);
  ASSERT_GT(sync_s, dram_s);
  EXPECT_LT(async_s, sync_s);
  EXPECT_GE(async_s, dram_s);
  const double gap_closed = (sync_s - async_s) / (sync_s - dram_s);
  EXPECT_GE(gap_closed, 0.4) << "sync=" << sync_s << " async=" << async_s
                             << " dram=" << dram_s;
}

TEST(AsyncStagingTest, FaultProfilesStayAccountedWithAsyncOn) {
  const graph::Graph g = SmallGraph();
  for (const char* profile : {"worn-ssd", "pm-stall"}) {
    auto ms = memsim::MemorySystem::CreateDefault();
    ms->SetFaultPlan(memsim::FaultPlanFromProfile(profile).value());
    ThreadPool pool(8);
    auto report = engine::RunEmbedding(g, "test", SmallOptions(8, true),
                                       exec::Context(ms.get(), &pool));
    ASSERT_TRUE(report.ok()) << profile << ": " << report.status().ToString();
    EXPECT_TRUE(report.value().faults.Accounted())
        << profile << ": injected faults must equal retried+degraded+surfaced";
  }
}

TEST(AsyncStagingTest, PinnedPartitionsSurviveDegradeAndLogOverride) {
  // A PM home that keeps failing degrades ASL loads; with a user-pinned
  // partition count the engine must keep the pinned value and record the
  // dedicated override phase instead of re-solving Eq. 9.
  const graph::Graph g = SmallGraph();
  auto ms = memsim::MemorySystem::CreateDefault();
  memsim::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 11;
  memsim::FaultRates rates;
  rates.media = 0.9;
  plan.SetTier(Tier::kPm, rates);
  ms->SetFaultPlan(plan);
  ThreadPool pool(8);

  engine::EngineOptions opts = SmallOptions(8, true);
  opts.features.asl_fixed_partitions = 3;
  auto report =
      engine::RunEmbedding(g, "test", opts, exec::Context(ms.get(), &pool));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool pinned_record = false;
  bool resolve_record = false;
  for (const exec::PhaseRecord& p : report.value().phases) {
    if (p.name == "fault.asl.degrade (fixed-partitions pinned)")
      pinned_record = true;
    if (p.name == "fault.asl.degrade") resolve_record = true;
  }
  EXPECT_TRUE(pinned_record);
  EXPECT_FALSE(resolve_record);
  EXPECT_TRUE(report.value().faults.Accounted());
}

}  // namespace
}  // namespace omega
