// Unit tests for the common runtime: Status/Result, RNG, string utilities,
// and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/topk.h"

namespace omega {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Doubled(Result<int> in) {
  OMEGA_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_TRUE(Doubled(Status::Internal("boom")).status().code() ==
              StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, GaussianHasReasonableMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(SplitMixTest, HashesDistinctInputsApart) {
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  EXPECT_NE(SplitMix64(0), 0u);
}

TEST(StringUtilTest, SplitTokens) {
  const auto tokens = SplitTokens("a b\tc  d", " \t");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[3], "d");
  EXPECT_TRUE(SplitTokens("", " ").empty());
  EXPECT_TRUE(SplitTokens("   ", " ").empty());
}

TEST(StringUtilTest, HumanCountMatchesPaperStyle) {
  EXPECT_EQ(HumanCount(803), "803");
  EXPECT_EQ(HumanCount(1630000), "1.63 M");
  EXPECT_EQ(HumanCount(2410000000ULL), "2.41 B");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KiB");
  EXPECT_EQ(HumanBytes(96ULL << 20), "96.00 MiB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(12.345), "12.35 s");
  EXPECT_EQ(HumanSeconds(0.01234), "12.34 ms");
  EXPECT_EQ(HumanSeconds(0.0000123), "12.30 us");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("omega", "om"));
  EXPECT_FALSE(StartsWith("om", "omega"));
}

TEST(ThreadPoolTest, RunsOnEveryWorkerExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);
  std::vector<std::atomic<int>> hits(8);
  pool.RunOnAll([&](size_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RepeatedPhases) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.RunOnAll([&](size_t) { counter++; });
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](size_t, size_t begin, size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolTest, ParallelForDynamicCoversRangeDisjointly) {
  ThreadPool pool(4);
  for (const size_t chunk : {1, 7, 64, 1000}) {
    std::vector<std::atomic<int>> touched(257);
    pool.ParallelForDynamic(257, chunk, [&](size_t, size_t begin, size_t end) {
      EXPECT_LT(begin, end);
      for (size_t i = begin; i < end; ++i) touched[i]++;
    });
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1) << "chunk=" << chunk;
  }
}

TEST(ThreadPoolTest, ParallelForDynamicEmptyAndAlignedRanges) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.ParallelForDynamic(0, 16, [&](size_t, size_t, size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  // n an exact multiple of the chunk size: every chunk is full-width.
  pool.ParallelForDynamic(48, 16, [&](size_t, size_t begin, size_t end) {
    EXPECT_EQ(end - begin, 16u);
    calls++;
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ParallelForDynamicWorkerIndicesAreStable) {
  // Worker w must only ever run on pool thread w: record the thread id the
  // pool reports for each worker index and check consistency across chunks.
  ThreadPool pool(4);
  std::vector<std::atomic<const void*>> seen(4);
  for (auto& s : seen) s.store(nullptr);
  std::atomic<bool> mismatch{false};
  for (int round = 0; round < 8; ++round) {
    pool.ParallelForDynamic(64, 1, [&](size_t w, size_t, size_t) {
      ASSERT_LT(w, 4u);
      thread_local int marker = 0;
      const void* self = &marker;  // distinct per OS thread
      const void* expected = nullptr;
      if (!seen[w].compare_exchange_strong(expected, self) && expected != self) {
        mismatch = true;
      }
    });
  }
  EXPECT_FALSE(mismatch.load());
}

TEST(TopKTest, SelectsBestCandidatesBestFirst) {
  TopK top(3);
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f, 0.3f, 0.8f};
  for (uint32_t i = 0; i < 6; ++i) top.Offer(i, scores[i]);
  EXPECT_EQ(top.size(), 3u);
  const std::vector<ScoredId> winners = top.Take();
  ASSERT_EQ(winners.size(), 3u);
  EXPECT_EQ(winners[0].id, 1u);  // 0.9
  EXPECT_EQ(winners[1].id, 5u);  // 0.8
  EXPECT_EQ(winners[2].id, 3u);  // 0.7
  EXPECT_EQ(top.size(), 0u);  // Take() drains the selector
}

TEST(TopKTest, TiesBreakTowardSmallerId) {
  TopK top(2);
  top.Offer(7, 1.0f);
  top.Offer(3, 1.0f);
  top.Offer(5, 1.0f);
  const std::vector<ScoredId> winners = top.Take();
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0].id, 3u);
  EXPECT_EQ(winners[1].id, 5u);
}

TEST(TopKTest, OrderIndependentOfOfferOrder) {
  std::vector<ScoredId> candidates;
  Rng rng(77);
  for (uint32_t i = 0; i < 200; ++i) {
    candidates.push_back({i, static_cast<float>(rng.NextBounded(50))});
  }
  TopK forward(10);
  for (const ScoredId& c : candidates) forward.Offer(c);
  TopK backward(10);
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    backward.Offer(*it);
  }
  EXPECT_EQ(forward.Take(), backward.Take());
}

TEST(TopKTest, ZeroKKeepsNothing) {
  TopK top(0);
  top.Offer(1, 5.0f);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_TRUE(top.Take().empty());
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({4.0}, 99.0), 4.0);
  const std::vector<double> v = {30.0, 10.0, 20.0, 40.0};  // unsorted input
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 75.0), 32.5);
}

TEST(StdDevTest, PopulationStdDev) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0);
}

TEST(StringUtilTest, JsonQuotedEscapes) {
  EXPECT_EQ(JsonQuoted("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuoted("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonQuoted("line\nbreak\ttab\rcr"),
            "\"line\\nbreak\\ttab\\rcr\"");
  EXPECT_EQ(JsonQuoted(std::string("nul\x01" "byte")), "\"nul\\u0001byte\"");
  EXPECT_EQ(JsonQuoted(""), "\"\"");
}

TEST(ThreadPoolTest, ParallelForDynamicSkewedWorkIsShared) {
  // With single-index chunks and one slow index, the fast indices must still
  // all be processed (dynamic draining), regardless of which worker is stuck.
  ThreadPool pool(4);
  std::atomic<int> processed{0};
  pool.ParallelForDynamic(100, 1, [&](size_t, size_t begin, size_t) {
    if (begin == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    processed++;
  });
  EXPECT_EQ(processed.load(), 100);
}

}  // namespace
}  // namespace omega
