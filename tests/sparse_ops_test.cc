// Unit tests for the CSDB operators (§III-A): add/subtract/transpose,
// scaling, normalization, SpMV, densification, CSR conversion, and the
// reference SpMM.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "sparse/csdb_ops.h"

namespace omega::sparse {
namespace {

using graph::CsdbMatrix;
using graph::Edge;
using graph::Graph;
using linalg::DenseMatrix;

Graph SmallGraph() {
  std::vector<Edge> edges = {{0, 1, 2.0f}, {0, 2, 1.0f}, {1, 2, 3.0f}, {2, 3, 1.0f}};
  return Graph::FromEdges(4, edges, true).value();
}

CsdbMatrix SmallMatrix() { return CsdbMatrix::FromGraph(SmallGraph()); }

TEST(CsdbOpsTest, ToDenseIsSymmetricForUndirectedGraph) {
  const CsdbMatrix m = SmallMatrix();
  const DenseMatrix d = ToDense(m);
  for (size_t i = 0; i < d.rows(); ++i) {
    for (size_t j = 0; j < d.cols(); ++j) {
      EXPECT_FLOAT_EQ(d.At(i, j), d.At(j, i));
    }
  }
}

TEST(CsdbOpsTest, AddSamePattern) {
  const CsdbMatrix m = SmallMatrix();
  auto sum = Add(m, m, 1.0f, 2.0f);
  ASSERT_TRUE(sum.ok());
  const DenseMatrix expect = ToDense(m);
  const DenseMatrix actual = ToDense(sum.value());
  // Same pattern: result rows keep degree order, values tripled.
  for (size_t i = 0; i < expect.rows(); ++i) {
    for (size_t j = 0; j < expect.cols(); ++j) {
      EXPECT_FLOAT_EQ(actual.At(i, j), 3.0f * expect.At(i, j));
    }
  }
}

TEST(CsdbOpsTest, SubtractSelfIsEmpty) {
  const CsdbMatrix m = SmallMatrix();
  auto diff = Subtract(m, m);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().nnz(), 0u);  // exact zeros dropped
}

TEST(CsdbOpsTest, AddDifferentPatternsMergesAndResorts) {
  // a: row degrees [2,1,0]; b: different pattern.
  auto a = CsdbMatrix::FromParts(3, 3, {2, 1, 0}, {1, 2, 0}, {1, 1, 1}).value();
  auto b = CsdbMatrix::FromParts(3, 3, {1, 1, 1}, {0, 2, 2}, {5, 5, 5}).value();
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  // Result degrees must be non-increasing (CSDB invariant).
  const auto& m = sum.value();
  for (uint32_t r = 1; r < m.num_rows(); ++r) {
    EXPECT_LE(m.RowDegree(r), m.RowDegree(r - 1));
  }
  EXPECT_EQ(m.nnz(), 6u);
  // Check one merged value through the perm: input row 0 had {1:1, 2:1} plus
  // b row 0 {0:5}.
  ASSERT_EQ(m.perm().size(), 3u);
  // Find the result row corresponding to input row 0.
  uint32_t r0 = 3;
  for (uint32_t r = 0; r < 3; ++r) {
    if (m.perm()[r] == 0) r0 = r;
  }
  ASSERT_LT(r0, 3u);
  EXPECT_EQ(m.RowDegree(r0), 3u);
}

TEST(CsdbOpsTest, AddRejectsShapeMismatch) {
  auto a = CsdbMatrix::FromParts(2, 2, {1, 0}, {0}, {1}).value();
  auto b = CsdbMatrix::FromParts(3, 3, {1, 0, 0}, {0}, {1}).value();
  EXPECT_FALSE(Add(a, b).ok());
}

TEST(CsdbOpsTest, TransposeOfSymmetricMatrixKeepsValues) {
  const CsdbMatrix m = SmallMatrix();
  auto t = Transpose(m);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().nnz(), m.nnz());
  // Transposing a symmetric matrix: dense forms must match after undoing the
  // result's row permutation.
  const DenseMatrix dm = ToDense(m);
  const DenseMatrix dt = ToDense(t.value());
  const auto& perm = t.value().perm();
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    for (uint32_t c = 0; c < m.num_cols(); ++c) {
      // dt row r is input column perm[r].
      EXPECT_FLOAT_EQ(dt.At(r, c), dm.At(c, perm[r]));
    }
  }
}

TEST(CsdbOpsTest, TransposeOfAsymmetricPattern) {
  auto a = CsdbMatrix::FromParts(3, 3, {2, 0, 0}, {1, 2}, {7, 9}).value();
  auto t = Transpose(a);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().nnz(), 2u);
  const DenseMatrix dt = ToDense(t.value());
  // Transpose has entries (1,0)=7 and (2,0)=9; rows re-sorted by degree, so
  // locate them via the perm.
  const auto& perm = t.value().perm();
  for (uint32_t r = 0; r < 3; ++r) {
    if (perm[r] == 1) {
      EXPECT_FLOAT_EQ(dt.At(r, 0), 7.0f);
    }
    if (perm[r] == 2) {
      EXPECT_FLOAT_EQ(dt.At(r, 0), 9.0f);
    }
  }
}

TEST(CsdbOpsTest, ScaleValues) {
  CsdbMatrix m = SmallMatrix();
  const float before = m.nnz_list()[0];
  ScaleValues(&m, 2.0f);
  EXPECT_FLOAT_EQ(m.nnz_list()[0], 2.0f * before);
}

TEST(CsdbOpsTest, ApplyElementwiseSeesCorrectCoordinates) {
  CsdbMatrix m = SmallMatrix();
  // Encode row and column into the value, then verify placement.
  ApplyElementwise(&m, [](uint32_t row, graph::NodeId col, float) {
    return static_cast<float>(row * 100 + col);
  });
  const auto& cols = m.col_list();
  for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) {
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      EXPECT_FLOAT_EQ(m.nnz_list()[cur.ptr() + k],
                      static_cast<float>(cur.row() * 100 + cols[cur.ptr() + k]));
    }
  }
}

TEST(CsdbOpsTest, RowSumsAndRowNormalize) {
  CsdbMatrix m = SmallMatrix();
  const auto sums = RowSums(m);
  EXPECT_EQ(sums.size(), m.num_rows());
  RowNormalize(&m);
  const auto normalized_sums = RowSums(m);
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    if (sums[r] > 0) {
      EXPECT_NEAR(normalized_sums[r], 1.0, 1e-5);
    }
  }
}

TEST(CsdbOpsTest, SymmetricNormalizeKeepsSymmetry) {
  CsdbMatrix m = SmallMatrix();
  SymmetricNormalize(&m);
  const DenseMatrix d = ToDense(m);
  for (size_t i = 0; i < d.rows(); ++i) {
    for (size_t j = 0; j < d.cols(); ++j) {
      EXPECT_NEAR(d.At(i, j), d.At(j, i), 1e-6);
    }
  }
  // Spectral radius of D^-1/2 A D^-1/2 is <= 1 (power-iteration estimate).
  std::vector<float> x(m.num_rows(), 1.0f);
  std::vector<float> y;
  double norm = 0.0;
  for (int it = 0; it < 60; ++it) {
    ASSERT_TRUE(SpMV(m, x, &y).ok());
    norm = 0.0;
    for (float v : y) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    ASSERT_GT(norm, 0.0);
    for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(y[i] / norm);
  }
  EXPECT_LE(norm, 1.0 + 1e-3);
}

TEST(CsdbOpsTest, SpMVMatchesDense) {
  const CsdbMatrix m = SmallMatrix();
  const DenseMatrix d = ToDense(m);
  std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> y;
  ASSERT_TRUE(SpMV(m, x, &y).ok());
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    float expect = 0.0f;
    for (uint32_t c = 0; c < 4; ++c) expect += d.At(r, c) * x[c];
    EXPECT_NEAR(y[r], expect, 1e-5);
  }
  std::vector<float> wrong(3, 1.0f);
  EXPECT_FALSE(SpMV(m, wrong, &y).ok());
}

TEST(CsdbOpsTest, ToCsrPreservesRowsAndValues) {
  const CsdbMatrix m = SmallMatrix();
  auto csr = ToCsr(m);
  ASSERT_TRUE(csr.ok());
  EXPECT_EQ(csr.value().nnz(), m.nnz());
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    EXPECT_EQ(csr.value().RowDegree(r), m.RowDegree(r));
    EXPECT_EQ(csr.value().RowBegin(r), m.RowPtr(r));
  }
  EXPECT_EQ(csr.value().col_idx(), m.col_list());
}

TEST(CsdbOpsTest, ReferenceSpmmMatchesDenseProduct) {
  graph::RmatParams params;
  params.scale = 8;
  params.num_edges = 2000;
  const Graph g = graph::GenerateRmat(params).value();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  const DenseMatrix b = linalg::GaussianMatrix(m.num_cols(), 5, 3);
  DenseMatrix c;
  ASSERT_TRUE(ReferenceSpmm(m, b, &c).ok());
  const DenseMatrix dm = ToDense(m);
  DenseMatrix expect(m.num_rows(), 5);
  for (size_t t = 0; t < 5; ++t) {
    for (size_t r = 0; r < m.num_rows(); ++r) {
      double acc = 0.0;
      for (size_t k = 0; k < m.num_cols(); ++k) {
        acc += static_cast<double>(dm.At(r, k)) * b.At(k, t);
      }
      expect.At(r, t) = static_cast<float>(acc);
    }
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expect), 1e-2);
  DenseMatrix wrong;
  const DenseMatrix bad = linalg::GaussianMatrix(m.num_cols() + 1, 5, 3);
  EXPECT_FALSE(ReferenceSpmm(m, bad, &wrong).ok());
}

}  // namespace
}  // namespace omega::sparse
