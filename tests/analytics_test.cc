// Tests for the graph analytics utilities (BFS, components, PageRank) and
// the GNN forward pass on the charged SpMM kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/gnn.h"
#include "graph/rmat.h"
#include "graph/traversal.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "sparse/csdb_ops.h"

namespace omega {
namespace {

using graph::Edge;
using graph::Graph;

Graph TwoTriangles() {
  // Triangle {0,1,2} and triangle {3,4,5}, disconnected.
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                             {3, 4, 1}, {4, 5, 1}, {3, 5, 1}};
  return Graph::FromEdges(6, edges, true).value();
}

TEST(BfsTest, DistancesOnPath) {
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  const Graph g = Graph::FromEdges(4, edges, true).value();
  const auto dist = graph::BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(BfsTest, UnreachableNodesAreMax) {
  const Graph g = TwoTriangles();
  const auto dist = graph::BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], UINT32_MAX);
  EXPECT_EQ(dist[5], UINT32_MAX);
  EXPECT_EQ(graph::BfsDistances(g, 99)[0], UINT32_MAX);  // bad source
}

TEST(ComponentsTest, TwoTrianglesHaveTwoComponents) {
  const Graph g = TwoTriangles();
  EXPECT_EQ(graph::CountComponents(g), 2u);
  const auto labels = graph::ConnectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(ComponentsTest, RmatIsMostlyOneGiantComponent) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  const Graph g = graph::GenerateRmat(params).value();
  const auto labels = graph::ConnectedComponents(g);
  uint32_t giant = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) giant += labels[v] == labels[0];
  EXPECT_GT(static_cast<double>(giant) / g.num_nodes(), 0.5);
}

TEST(PageRankTest, SumsToOneAndConverges) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  const Graph g = graph::GenerateRmat(params).value();
  auto pr = graph::PageRank(g);
  ASSERT_TRUE(pr.ok());
  double sum = 0.0;
  for (double s : pr.value().scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(pr.value().iterations, 100);
  EXPECT_LT(pr.value().final_delta, 1e-8);
}

TEST(PageRankTest, HubScoresHighest) {
  // Star: the hub must dominate.
  std::vector<Edge> edges;
  for (graph::NodeId i = 1; i <= 20; ++i) edges.push_back({0, i, 1});
  const Graph g = Graph::FromEdges(21, edges, true).value();
  auto pr = graph::PageRank(g);
  ASSERT_TRUE(pr.ok());
  const auto top = graph::TopPageRankNodes(pr.value(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_GT(pr.value().scores[0], 5.0 * pr.value().scores[1]);
}

TEST(PageRankTest, UniformOnRegularGraph) {
  // Cycle: every node has the same score.
  std::vector<Edge> edges;
  for (graph::NodeId i = 0; i < 32; ++i) edges.push_back({i, (i + 1u) % 32, 1});
  const Graph g = Graph::FromEdges(32, edges, true).value();
  auto pr = graph::PageRank(g);
  ASSERT_TRUE(pr.ok());
  for (double s : pr.value().scores) EXPECT_NEAR(s, 1.0 / 32, 1e-9);
}

TEST(PageRankTest, ValidatesOptions) {
  const Graph g = TwoTriangles();
  graph::PageRankOptions bad;
  bad.damping = 1.5;
  EXPECT_FALSE(graph::PageRank(g, bad).ok());
  bad.damping = 0.85;
  bad.max_iterations = 0;
  EXPECT_FALSE(graph::PageRank(g, bad).ok());
}

// --- GNN forward pass ----------------------------------------------------------

embed::SpmmExecutor PlainExecutor() {
  return [](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
            linalg::DenseMatrix* out) -> Result<double> {
    OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(m, in, out));
    return 0.01;
  };
}

class GnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 8;
    params.num_edges = 2000;
    adjacency_ = graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  }
  graph::CsdbMatrix adjacency_;
};

TEST_F(GnnTest, ProducesNormalizedEmbeddings) {
  embed::GnnOptions opts;
  opts.output_dim = 16;
  auto result =
      embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts, PlainExecutor());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().embeddings.rows(), adjacency_.num_rows());
  EXPECT_EQ(result.value().embeddings.cols(), 16u);
  // One SpMM per layer.
  EXPECT_NEAR(result.value().spmm_seconds, 0.02, 1e-12);
  EXPECT_GT(result.value().dense_seconds, 0.0);
  for (size_t r = 0; r < result.value().embeddings.rows(); ++r) {
    double norm = 0.0;
    for (size_t c = 0; c < 16; ++c) {
      const double v = result.value().embeddings.At(r, c);
      EXPECT_FALSE(std::isnan(v));
      norm += v * v;
    }
    EXPECT_NEAR(norm, 1.0, 1e-3);
  }
}

TEST_F(GnnTest, DeterministicForSeed) {
  embed::GnnOptions opts;
  auto a = embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts,
                             PlainExecutor());
  auto b = embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts,
                             PlainExecutor());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(linalg::DenseMatrix::MaxAbsDiff(a.value().embeddings,
                                            b.value().embeddings),
            0.0);
  opts.seed = 99;
  auto c = embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts,
                             PlainExecutor());
  ASSERT_TRUE(c.ok());
  EXPECT_GT(linalg::DenseMatrix::MaxAbsDiff(a.value().embeddings,
                                            c.value().embeddings),
            0.01);
}

TEST_F(GnnTest, AcceptsExplicitFeatures) {
  const linalg::DenseMatrix features =
      linalg::GaussianMatrix(adjacency_.num_rows(), 8, 3);
  embed::GnnOptions opts;
  opts.num_layers = 3;
  opts.hidden_dim = 12;
  opts.output_dim = 6;
  auto result = embed::GnnForward(adjacency_, features, opts, PlainExecutor());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().embeddings.cols(), 6u);
  EXPECT_NEAR(result.value().spmm_seconds, 0.03, 1e-12);  // 3 layers
}

TEST_F(GnnTest, ValidatesInput) {
  embed::GnnOptions opts;
  opts.num_layers = 0;
  EXPECT_FALSE(
      embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts, PlainExecutor())
          .ok());
  opts.num_layers = 2;
  const linalg::DenseMatrix wrong = linalg::GaussianMatrix(7, 4, 1);
  EXPECT_FALSE(embed::GnnForward(adjacency_, wrong, opts, PlainExecutor()).ok());
}

TEST_F(GnnTest, RunsOnChargedOmegaKernels) {
  // The §VI claim: the same optimizations serve GNN aggregation unchanged.
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(4);
  auto charged = [&](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
                     linalg::DenseMatrix* out) -> Result<double> {
    *out = linalg::DenseMatrix(m.num_rows(), in.cols());
    numa::NadpOptions opts;
    opts.num_threads = 4;
    return numa::NadpSpmm(m, in, out, opts, exec::Context(ms.get(), &pool)).phase_seconds;
  };
  embed::GnnOptions opts;
  auto charged_result =
      embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts, charged);
  ASSERT_TRUE(charged_result.ok()) << charged_result.status().ToString();
  EXPECT_GT(charged_result.value().spmm_seconds, 0.0);
  // Numerically identical to the reference executor.
  auto reference =
      embed::GnnForward(adjacency_, linalg::DenseMatrix(), opts, PlainExecutor());
  ASSERT_TRUE(reference.ok());
  EXPECT_LT(linalg::DenseMatrix::MaxAbsDiff(charged_result.value().embeddings,
                                            reference.value().embeddings),
            1e-4);
}

}  // namespace
}  // namespace omega
