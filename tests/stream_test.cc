// Unit tests for ASL (§III-E): the Eq. 9 partition count, column partitioning,
// load costing, and the double-buffered pipeline overlap.

#include <gtest/gtest.h>

#include "stream/asl.h"

namespace omega::stream {
namespace {

TEST(OptimalPartitionsTest, EquationNine) {
  // 3 d|V|s / (M_total - M_s - 2 d|V|s), d|V|s = 4 MB here.
  AslConfig cfg;
  cfg.dense_rows = 1 << 20;
  cfg.dense_cols = 1;
  cfg.element_bytes = 4;
  cfg.sparse_bytes = 1 << 20;         // 1 MB
  cfg.dram_budget = 12ULL << 20;      // 12 MB => denom = 12 - 1 - 8 = 3 MB
  auto n = OptimalPartitions(cfg);
  ASSERT_TRUE(n.ok());
  // 3*4/3 = 4 partitions, clamped to dense_cols = 1.
  EXPECT_EQ(n.value(), 1u);
  cfg.dense_cols = 16;
  cfg.dram_budget = (1ULL << 20) + 2 * 16 * (4ULL << 20) + (48ULL << 20);
  // denom = 48 MB, 3*d|V|s = 192 MB => n = 4.
  n = OptimalPartitions(cfg);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 4u);
}

TEST(OptimalPartitionsTest, FailsWhenResidentSetTooLarge) {
  AslConfig cfg;
  cfg.dense_rows = 1 << 20;
  cfg.dense_cols = 8;
  cfg.sparse_bytes = 1 << 20;
  cfg.dram_budget = 4 << 20;  // smaller than 2*d|V|s
  const auto n = OptimalPartitions(cfg);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsCapacityExceeded());
}

TEST(PartitionColumnsTest, CoversRangeWithoutOverlap) {
  size_t covered = 0;
  for (size_t k = 0; k < 3; ++k) {
    auto [begin, end] = PartitionColumns(10, 3, k);
    EXPECT_EQ(begin, covered);
    covered = end;
  }
  EXPECT_EQ(covered, 10u);
  auto [b, e] = PartitionColumns(10, 3, 2);
  EXPECT_EQ(e - b, 2u);  // 4 + 4 + 2
}

class AslTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ms_ = memsim::MemorySystem::CreateDefault();
    cfg_.dense_rows = 1 << 18;
    cfg_.dense_cols = 32;
    cfg_.element_bytes = 4;
    cfg_.sparse_bytes = 1 << 20;
    // Budget chosen so Eq. 9 yields a handful of partitions.
    cfg_.dram_budget = cfg_.sparse_bytes +
                       2 * cfg_.dense_rows * cfg_.dense_cols * 4 + (24ULL << 20);
  }

  AslStreamer MakeStreamer() {
    return AslStreamer(exec::Context(ms_.get()), cfg_,
                       {memsim::Tier::kPm, memsim::Placement::kInterleaved},
                       {memsim::Tier::kDram, memsim::Placement::kInterleaved});
  }

  std::unique_ptr<memsim::MemorySystem> ms_;
  AslConfig cfg_;
};

TEST_F(AslTest, LoadSecondsScaleWithWidth) {
  AslStreamer s = MakeStreamer();
  const double one = s.LoadSeconds(0, 8);
  const double two = s.LoadSeconds(0, 16);
  EXPECT_NEAR(two / one, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(s.LoadSeconds(4, 4), 0.0);
}

TEST_F(AslTest, RunVisitsEveryColumnOnce) {
  AslStreamer s = MakeStreamer();
  std::vector<int> seen(cfg_.dense_cols, 0);
  auto result = s.Run([&](size_t, size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) seen[c]++;
    return 0.001;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_GT(result.value().partitions.size(), 1u);
}

TEST_F(AslTest, PipelineOverlapsLoadsWithCompute) {
  AslStreamer s = MakeStreamer();
  // Compute much slower than loads: total ~= load_0 + sum(compute).
  auto slow = s.Run([&](size_t, size_t, size_t) { return 0.5; });
  ASSERT_TRUE(slow.ok());
  const size_t n = slow.value().partitions.size();
  EXPECT_NEAR(slow.value().total_seconds,
              slow.value().partitions[0].load_seconds + 0.5 * n, 1e-9);
  EXPECT_GT(slow.value().OverlapEfficiency(), 0.0);
  EXPECT_LT(slow.value().total_seconds, slow.value().serial_seconds);

  // Compute free: total = sum of loads (loads serialize on the single
  // streaming channel).
  auto fast = s.Run([&](size_t, size_t, size_t) { return 0.0; });
  ASSERT_TRUE(fast.ok());
  double load_sum = 0.0;
  for (const auto& p : fast.value().partitions) load_sum += p.load_seconds;
  EXPECT_NEAR(fast.value().total_seconds, load_sum, 1e-9);
}

TEST_F(AslTest, RunPropagatesSizingFailure) {
  cfg_.dram_budget = 1 << 20;  // impossible
  AslStreamer s = MakeStreamer();
  auto result = s.Run([&](size_t, size_t, size_t) { return 0.0; });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCapacityExceeded());
}

TEST_F(AslTest, FixedPartitionsZeroSolvesAndOneIsSinglePass) {
  // fixed_partitions = 0 takes the Eq. 9 solve path.
  cfg_.fixed_partitions = 0;
  auto solved = MakeStreamer().Run([](size_t, size_t, size_t) { return 0.0; });
  ASSERT_TRUE(solved.ok());
  auto expect_n = OptimalPartitions(cfg_);
  ASSERT_TRUE(expect_n.ok());
  EXPECT_EQ(solved.value().partitions.size(), expect_n.value());

  // fixed_partitions = 1: a single partition covering every column; nothing
  // overlaps, so total == serial == load + compute.
  cfg_.fixed_partitions = 1;
  auto one = MakeStreamer().Run([](size_t, size_t, size_t) { return 0.25; });
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one.value().partitions.size(), 1u);
  EXPECT_EQ(one.value().partitions[0].col_begin, 0u);
  EXPECT_EQ(one.value().partitions[0].col_end, cfg_.dense_cols);
  EXPECT_DOUBLE_EQ(one.value().total_seconds, one.value().serial_seconds);
}

TEST_F(AslTest, MorePartitionsThanColumnsCoversEachColumnOnce) {
  cfg_.fixed_partitions = cfg_.dense_cols + 7;  // trailing empty partitions
  AslStreamer s = MakeStreamer();
  std::vector<int> seen(cfg_.dense_cols, 0);
  auto result = s.Run([&](size_t, size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) seen[c]++;
    return 0.0;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (int c : seen) EXPECT_EQ(c, 1);
  // Partitions past the last column are empty and cost nothing.
  for (size_t k = cfg_.dense_cols; k < result.value().partitions.size(); ++k) {
    const auto& p = result.value().partitions[k];
    EXPECT_EQ(p.col_begin, p.col_end);
    EXPECT_DOUBLE_EQ(p.load_seconds, 0.0);
  }
}

// An always-failing PM class drives every partition load through the retry
// loop into semi-external degradation; the run completes, flags the rebuild,
// and satisfies the accounting identity.
TEST_F(AslTest, DegradesToSemiExternalWhenPmKeepsFailing) {
  memsim::FaultPlan plan;
  plan.enabled = true;
  plan.at(memsim::Tier::kPm, memsim::MemOp::kRead,
          memsim::Pattern::kSequential).media = 1.0;
  ms_->SetFaultPlan(plan);

  cfg_.fixed_partitions = 4;
  auto degraded = MakeStreamer().Run([](size_t, size_t, size_t) { return 0.0; });
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded.value().degraded_partitions, 4u);
  EXPECT_TRUE(degraded.value().rebuild_recommended);
  EXPECT_EQ(degraded.value().load_retries,
            4u * static_cast<unsigned>(cfg_.max_load_retries));
  const memsim::FaultCounters c = ms_->Faults();
  EXPECT_TRUE(c.Accounted());
  EXPECT_EQ(c.degraded, 4u);

  // The degraded pass streams from the slower SSD home on top of the wasted
  // PM attempts, so it must cost more than a healthy pass.
  ms_->SetFaultPlan(memsim::FaultPlan{});
  auto healthy = MakeStreamer().Run([](size_t, size_t, size_t) { return 0.0; });
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().degraded_partitions, 0u);
  EXPECT_FALSE(healthy.value().rebuild_recommended);
  EXPECT_GT(degraded.value().total_seconds, healthy.value().total_seconds);
}

TEST_F(AslTest, SurfacesIOErrorWhenDegradationDisallowed) {
  memsim::FaultPlan plan;
  plan.enabled = true;
  plan.at(memsim::Tier::kPm, memsim::MemOp::kRead,
          memsim::Pattern::kSequential).media = 1.0;
  ms_->SetFaultPlan(plan);

  cfg_.fixed_partitions = 4;
  cfg_.allow_degraded = false;
  auto result = MakeStreamer().Run([](size_t, size_t, size_t) { return 0.0; });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(ms_->Faults().surfaced, 1u);
  EXPECT_TRUE(ms_->Faults().Accounted());
}

}  // namespace
}  // namespace omega::stream
