// Tests for the random-walk embedding family: the alias sampler, walk
// generation (DeepWalk and node2vec biasing), and the SGNS trainer.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/alias_sampler.h"
#include "embed/quality.h"
#include "embed/random_walk.h"
#include "graph/rmat.h"

namespace omega {
namespace {

using graph::Edge;
using graph::Graph;

TEST(AliasSamplerTest, MatchesDistribution) {
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  AliasSampler sampler(weights);
  Rng rng(1);
  std::map<size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(&rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(AliasSamplerTest, HandlesZeroWeightsAndEmpty) {
  Rng rng(2);
  AliasSampler empty;
  EXPECT_EQ(empty.Sample(&rng), 0u);
  EXPECT_TRUE(empty.empty());

  AliasSampler zeros(std::vector<double>{0.0, 0.0});
  EXPECT_EQ(zeros.Sample(&rng), 0u);

  // Entries with zero weight are never drawn.
  AliasSampler mixed(std::vector<double>{0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 1000; ++i) {
    const size_t s = mixed.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler one(std::vector<double>{42.0});
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.Sample(&rng), 0u);
}

class WalkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 8;
    params.num_edges = 2000;
    g_ = std::make_unique<Graph>(graph::GenerateRmat(params).value());
  }
  std::unique_ptr<Graph> g_;
};

TEST_F(WalkTest, WalksAreValidPaths) {
  embed::WalkOptions opts;
  opts.walks_per_node = 2;
  opts.walk_length = 10;
  auto corpus = embed::GenerateWalks(*g_, opts);
  ASSERT_TRUE(corpus.ok());
  ASSERT_GT(corpus.value().num_walks(), 0u);
  for (size_t w = 0; w < corpus.value().num_walks(); ++w) {
    const graph::NodeId* walk = corpus.value().nodes.data() + w * 10;
    for (uint32_t i = 1; i < 10; ++i) {
      const graph::NodeId* nbrs = g_->neighbors(walk[i - 1]);
      ASSERT_TRUE(std::binary_search(nbrs, nbrs + g_->degree(walk[i - 1]), walk[i]))
          << "walk " << w << " step " << i << " is not an edge";
    }
  }
}

TEST_F(WalkTest, DeterministicAndSeedSensitive) {
  embed::WalkOptions opts;
  opts.walks_per_node = 1;
  opts.walk_length = 8;
  const auto a = embed::GenerateWalks(*g_, opts).value();
  const auto b = embed::GenerateWalks(*g_, opts).value();
  EXPECT_EQ(a.nodes, b.nodes);
  opts.seed = 99;
  const auto c = embed::GenerateWalks(*g_, opts).value();
  EXPECT_NE(a.nodes, c.nodes);
}

TEST_F(WalkTest, IsolatedNodesSkipped) {
  std::vector<Edge> edges = {{0, 1, 1.0f}};
  const Graph g = Graph::FromEdges(5, edges, true).value();
  embed::WalkOptions opts;
  opts.walks_per_node = 3;
  opts.walk_length = 4;
  const auto corpus = embed::GenerateWalks(g, opts).value();
  EXPECT_EQ(corpus.num_walks(), 6u);  // only nodes 0 and 1 walk
  for (graph::NodeId v : corpus.nodes) EXPECT_LE(v, 1u);
}

TEST_F(WalkTest, Node2vecReturnBiasControlsBacktracking) {
  // Low p => frequent returns to the previous node; high p suppresses them.
  auto backtrack_rate = [&](double p) {
    embed::WalkOptions opts;
    opts.walks_per_node = 4;
    opts.walk_length = 20;
    opts.p = p;
    opts.q = 1.0;
    const auto corpus = embed::GenerateWalks(*g_, opts).value();
    uint64_t backtracks = 0;
    uint64_t steps = 0;
    for (size_t w = 0; w < corpus.num_walks(); ++w) {
      const graph::NodeId* walk = corpus.nodes.data() + w * 20;
      for (uint32_t i = 2; i < 20; ++i) {
        backtracks += walk[i] == walk[i - 2];
        ++steps;
      }
    }
    return static_cast<double>(backtracks) / steps;
  };
  EXPECT_GT(backtrack_rate(0.1), 2.0 * backtrack_rate(10.0));
}

TEST_F(WalkTest, ValidatesOptions) {
  embed::WalkOptions opts;
  opts.walk_length = 1;
  EXPECT_FALSE(embed::GenerateWalks(*g_, opts).ok());
  opts.walk_length = 10;
  opts.walks_per_node = 0;
  EXPECT_FALSE(embed::GenerateWalks(*g_, opts).ok());
  opts.walks_per_node = 1;
  opts.p = 0.0;
  EXPECT_FALSE(embed::GenerateWalks(*g_, opts).ok());
}

TEST_F(WalkTest, SgnsLearnsStructure) {
  embed::WalkOptions walks;
  walks.walks_per_node = 6;
  walks.walk_length = 20;
  embed::SgnsOptions sgns;
  sgns.dim = 16;
  sgns.epochs = 2;
  auto result = embed::DeepWalkEmbed(*g_, walks, sgns);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().vectors.rows(), g_->num_nodes());
  EXPECT_GT(result.value().updates, 0u);
  auto auc = embed::LinkPredictionAuc(*g_, result.value().vectors, 500, 7);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(auc.value(), 0.6);
}

TEST_F(WalkTest, SgnsChargesSimulatedMachine) {
  embed::WalkOptions walks;
  walks.walks_per_node = 2;
  walks.walk_length = 10;
  embed::SgnsOptions sgns;
  sgns.dim = 8;
  auto ms = memsim::MemorySystem::CreateDefault();
  auto on_dram = embed::DeepWalkEmbed(*g_, walks, sgns, ms.get(),
                                      {memsim::Tier::kDram, 0}, 8);
  auto on_pm = embed::DeepWalkEmbed(*g_, walks, sgns, ms.get(),
                                    {memsim::Tier::kPm, 0}, 8);
  ASSERT_TRUE(on_dram.ok());
  ASSERT_TRUE(on_pm.ok());
  EXPECT_GT(on_dram.value().simulated_seconds, 0.0);
  // The random-walk family is hurt by PM exactly like SpMM's gathers.
  EXPECT_GT(on_pm.value().simulated_seconds,
            1.5 * on_dram.value().simulated_seconds);
}

TEST_F(WalkTest, SgnsValidatesInput) {
  embed::SgnsOptions sgns;
  embed::WalkCorpus empty;
  EXPECT_FALSE(embed::TrainSgns(*g_, empty, sgns).ok());
  embed::WalkCorpus corpus;
  corpus.walk_length = 4;
  corpus.nodes = {0, 1, 0, 1};
  sgns.dim = 0;
  EXPECT_FALSE(embed::TrainSgns(*g_, corpus, sgns).ok());
}

}  // namespace
}  // namespace omega
