// Unit tests for the end-to-end engines: every system runs on a small graph,
// capacity failures surface as in the paper, and the headline orderings
// (OMeGa between DRAM-only and PM-only; OMeGa >> ProNE-HM) hold.

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/rmat.h"
#include "omega/baselines.h"
#include "omega/distributed_sim.h"
#include "omega/engine.h"
#include "omega/report.h"

namespace omega::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 9;
    params.num_edges = 6000;
    g_ = std::make_unique<graph::Graph>(graph::GenerateRmat(params).value());
    ms_ = memsim::MemorySystem::CreateDefault();
    pool_ = std::make_unique<ThreadPool>(8);
  }

  EngineOptions Options(SystemKind kind) {
    EngineOptions opts;
    opts.system = kind;
    opts.num_threads = 8;
    opts.prone.dim = 8;
    opts.prone.oversample = 4;
    opts.prone.chebyshev_order = 4;
    return opts;
  }

  Result<RunReport> Run(SystemKind kind) {
    return RunEmbedding(*g_, "test", Options(kind), exec::Context(ms_.get(), pool_.get()));
  }

  std::unique_ptr<graph::Graph> g_;
  std::unique_ptr<memsim::MemorySystem> ms_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(EngineTest, EverySystemRunsOnSmallGraph) {
  for (SystemKind kind :
       {SystemKind::kOmega, SystemKind::kOmegaDram, SystemKind::kOmegaPm,
        SystemKind::kProneDram, SystemKind::kProneHm, SystemKind::kGinex,
        SystemKind::kMariusGnn, SystemKind::kDistGer, SystemKind::kDistDgl}) {
    auto report = Run(kind);
    ASSERT_TRUE(report.ok()) << SystemName(kind) << ": "
                             << report.status().ToString();
    EXPECT_GT(report.value().total_seconds, 0.0) << SystemName(kind);
    EXPECT_GT(report.value().read_seconds, 0.0) << SystemName(kind);
    EXPECT_EQ(report.value().system, SystemName(kind));
  }
}

TEST_F(EngineTest, EmbeddingSystemsProduceEmbeddings) {
  for (SystemKind kind : {SystemKind::kOmega, SystemKind::kProneDram,
                          SystemKind::kGinex}) {
    auto report = Run(kind);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().embedding.rows(), g_->num_nodes()) << SystemName(kind);
    EXPECT_EQ(report.value().embedding.cols(), 8u);
  }
}

TEST_F(EngineTest, OmegaAndProneProduceIdenticalEmbeddings) {
  // OMeGa is a systems contribution: the model output must match the ProNE
  // baseline bit-for-bit modulo kernel ordering (same seeds, same math).
  auto omega = Run(SystemKind::kOmega);
  auto prone = Run(SystemKind::kProneDram);
  ASSERT_TRUE(omega.ok());
  ASSERT_TRUE(prone.ok());
  EXPECT_LT(linalg::DenseMatrix::MaxAbsDiff(omega.value().embedding,
                                            prone.value().embedding),
            1e-3);
}

TEST_F(EngineTest, DramIsIdealPmIsWorstOmegaInBetween) {
  // Fig. 12's internal ordering on graphs where all three run.
  const double t_dram = Run(SystemKind::kOmegaDram).value().embed_seconds;
  const double t_omega = Run(SystemKind::kOmega).value().embed_seconds;
  const double t_pm = Run(SystemKind::kOmegaPm).value().embed_seconds;
  EXPECT_LE(t_dram, t_omega * 1.05);
  EXPECT_GT(t_pm, t_omega);
}

TEST_F(EngineTest, OmegaBeatsProneHmByALargeFactor) {
  const double t_omega = Run(SystemKind::kOmega).value().embed_seconds;
  const double t_hm = Run(SystemKind::kProneHm).value().embed_seconds;
  EXPECT_GT(t_hm / t_omega, 3.0);  // paper reports 33.65x on real scale
}

TEST_F(EngineTest, OmegaDramBeatsProneDram) {
  const double t_omega = Run(SystemKind::kOmegaDram).value().embed_seconds;
  const double t_prone = Run(SystemKind::kProneDram).value().embed_seconds;
  EXPECT_GT(t_prone / t_omega, 1.5);  // paper reports 4.99x
}

TEST_F(EngineTest, QualityEvaluationProducesAuc) {
  EngineOptions opts = Options(SystemKind::kOmega);
  opts.evaluate_quality = true;
  opts.quality_samples = 300;
  auto report = RunEmbedding(*g_, "test", opts, exec::Context(ms_.get(), pool_.get()));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().link_auc.has_value());
  EXPECT_GT(*report.value().link_auc, 0.55);
}

TEST_F(EngineTest, DramOnlySystemsOomOnLargeGraphs) {
  // A graph whose working set exceeds the simulated 48 MB of total DRAM.
  graph::RmatParams params;
  params.scale = 15;
  params.num_edges = 2400000;
  const graph::Graph big = graph::GenerateRmat(params).value();
  EngineOptions opts = Options(SystemKind::kOmegaDram);
  opts.prone.dim = 32;
  opts.prone.oversample = 8;
  auto dram = RunEmbedding(big, "big", opts, exec::Context(ms_.get(), pool_.get()));
  ASSERT_FALSE(dram.ok());
  EXPECT_TRUE(dram.status().IsCapacityExceeded());

  opts.system = SystemKind::kProneDram;
  auto prone = RunEmbedding(big, "big", opts, exec::Context(ms_.get(), pool_.get()));
  ASSERT_FALSE(prone.ok());
  EXPECT_TRUE(prone.status().IsCapacityExceeded());
}

TEST_F(EngineTest, ReservationsAreReleasedAfterRuns) {
  ASSERT_TRUE(Run(SystemKind::kOmega).ok());
  ASSERT_TRUE(Run(SystemKind::kOmegaDram).ok());
  for (int socket = 0; socket < 2; ++socket) {
    EXPECT_EQ(ms_->UsedBytes(memsim::Tier::kDram, socket), 0u);
    EXPECT_EQ(ms_->UsedBytes(memsim::Tier::kPm, socket), 0u);
  }
}

TEST_F(EngineTest, FeatureTogglesChangeRuntime) {
  EngineOptions base = Options(SystemKind::kOmega);
  EngineOptions no_wofp = base;
  no_wofp.features.use_wofp = false;
  EngineOptions no_nadp = base;
  no_nadp.features.use_nadp = false;
  const double t_full =
      RunEmbedding(*g_, "t", base, exec::Context(ms_.get(), pool_.get())).value().embed_seconds;
  const double t_no_wofp =
      RunEmbedding(*g_, "t", no_wofp, exec::Context(ms_.get(), pool_.get())).value().embed_seconds;
  const double t_no_nadp =
      RunEmbedding(*g_, "t", no_nadp, exec::Context(ms_.get(), pool_.get())).value().embed_seconds;
  EXPECT_GT(t_no_wofp, t_full);  // Fig. 14
  EXPECT_GT(t_no_nadp, t_full);  // Fig. 15
}

TEST_F(EngineTest, DistributedAnaloguesOrdering) {
  // Fig. 18a: DistGER outperforms DistDGL.
  const double t_ger = Run(SystemKind::kDistGer).value().total_seconds;
  const double t_dgl = Run(SystemKind::kDistDgl).value().total_seconds;
  EXPECT_GT(t_dgl, t_ger);
}

TEST_F(EngineTest, SsdSystemsSlowerThanOmega) {
  const double t_omega = Run(SystemKind::kOmega).value().total_seconds;
  const double t_ginex = Run(SystemKind::kGinex).value().total_seconds;
  const double t_marius = Run(SystemKind::kMariusGnn).value().total_seconds;
  EXPECT_GT(t_ginex, t_omega);
  EXPECT_GT(t_marius, t_omega);
  EXPECT_GT(t_ginex, t_marius);  // paper: 5.49x vs 2.07x behind OMeGa
}

TEST(GraphReadCostTest, CsdbReadsFasterThanCsr) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const exec::Context ctx(ms.get(), nullptr, 8);
  const double csr =
      SimulatedGraphReadSeconds(ctx, GraphFormat::kCsr, 200000, 4096);
  const double csdb =
      SimulatedGraphReadSeconds(ctx, GraphFormat::kCsdb, 200000, 4096);
  // Fig. 19a: CSDB accelerates reading by ~1.35x.
  EXPECT_GT(csr / csdb, 1.1);
  EXPECT_LT(csr / csdb, 2.5);
}

TEST(WorkingSetTest, GrowsWithDimAndNodes) {
  embed::ProneOptions prone;
  prone.dim = 32;
  prone.oversample = 8;
  const size_t small = DenseWorkingSetBytes(1000, prone);
  const size_t big = DenseWorkingSetBytes(10000, prone);
  EXPECT_EQ(big, 10 * small);
  prone.dim = 64;
  EXPECT_GT(DenseWorkingSetBytes(1000, prone), small);
  EXPECT_EQ(SparseBytes(1000), 8000u);
}

TEST(ReportTest, TablePrinterAlignsColumns) {
  TablePrinter table({"Graph", "Time"});
  table.AddRow({"PK", "1.00 s"});
  table.AddRow({"LongName", "2.00 s"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Graph"), std::string::npos);
  EXPECT_NE(out.find("LongName"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, RuntimeCellFormats) {
  EXPECT_EQ(RuntimeCell(1.5), "1.50 s");
  EXPECT_EQ(RuntimeCell(0.0, true), "OOM");
  EXPECT_EQ(RuntimeCell(100000.0), "> 1 day");
}

TEST(ReportTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_NEAR(GeometricMean({5.0, 0.0, -1.0}), 5.0, 1e-9);  // non-positive skipped
}

}  // namespace
}  // namespace omega::engine
